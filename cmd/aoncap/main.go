// Command aoncap is the analytic capacity model offline: it replays a
// recorded session artifact (the CSV aongate dumps) — or a calibration
// artifact's demand seeds — through internal/capacity and prints
// Figure-5/6-style predicted-vs-measured tables.
//
// Two table families come out:
//
//   - Replay (-csv): every session sample becomes one row — the load the
//     sample observed, what the model predicts at that load, and the
//     per-row throughput/p99 error. This is the "model error per load
//     point" view that says where the M/M/c abstraction tracks the live
//     gateway and where it drifts.
//
//   - Scaling (-widths): the model re-solved at each worker-pool width —
//     predicted saturation throughput, the admissible load under the p99
//     target, and the scaling factor relative to the first width. The
//     analytic twin of the paper's Figures 5/6 one-unit→two-unit curves,
//     and of `aonload -sweep`'s measured table.
//
// The worker demand seeds from (highest precedence first): -demand-us,
// the session's minimum positive p50 (the closest the session got to a
// no-contention service time), a calibration artifact's recorded live
// p50 (-calibration with -usecase), or the built-in per-use-case seed
// table (capacity.SeedDemands — covers FR/CBR/SV/DPI/AUTH/XJ) so a bare
// -usecase answers before any artifact exists.
//
// Usage:
//
//	aoncap -csv session.csv
//	aoncap -csv session.csv -widths 1,2,4,8 -target-p99 50ms
//	aoncap -calibration aon-calibration.json -usecase CBR -widths 1,2,4
//	aoncap -demand-us 900 -widths 1,2,4,8,16 -replicas 2
//	aoncap -usecase XJ -widths 1,2,4   # built-in use-case seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/capacity"
	"repro/internal/harness"
	"repro/internal/session"
	"repro/internal/workload"
)

func main() {
	csvPath := flag.String("csv", "", "session artifact (CSV written by aongate) to replay against the model")
	calPath := flag.String("calibration", "", "calibration artifact (hwreport -timeline) to seed demands from")
	ucName := flag.String("usecase", "CBR", "use case whose calibration entry seeds the demand (-calibration mode)")
	demandUS := flag.Float64("demand-us", 0, "override the per-message worker demand in microseconds")
	targetP99 := flag.Duration("target-p99", 100*time.Millisecond, "latency bound for admissible-load columns")
	widths := flag.String("widths", "", "comma-separated pool widths for the predicted scaling table (e.g. 1,2,4,8)")
	replicas := flag.Int("replicas", 1, "backend replicas sharing the forward demand in the scaling table")
	forwardUS := flag.Float64("forward-us", 0, "per-message forward (backend round-trip) demand in microseconds")
	backendConns := flag.Int("backend-conns", 8, "modeled per-backend connection-pool bound (with -forward-us)")
	flag.Parse()

	if *targetP99 <= 0 {
		fatal("-target-p99 must be positive")
	}
	widthList, err := parseWidths(*widths)
	if err != nil {
		fatal(err.Error())
	}

	var rows []session.CSVRow
	if *csvPath != "" {
		f, err := os.Open(*csvPath)
		if err != nil {
			fatal(err.Error())
		}
		rows, err = session.ReadCSV(f)
		f.Close()
		if err != nil {
			fatal(err.Error())
		}
	}

	demand, width, source := seedDemand(rows, *calPath, *ucName, *demandUS)
	var demands capacity.StageDemands
	if demand > 0 {
		demands = capacity.StageDemands{Process: demand, Forward: *forwardUS / 1e6}
	} else if seed, ok := capacity.SeedDemands(*ucName); ok {
		// Last resort: the built-in per-use-case seed table, so a bare
		// `aoncap -usecase XJ -widths 1,2,4` answers before any session
		// or calibration artifact exists.
		demands = seed
		demands.Forward = *forwardUS / 1e6
		demand = demands.WorkerDemand()
		source = fmt.Sprintf("built-in %s use-case seed", *ucName)
	} else {
		fatal("no demand seed: give -csv, -calibration, or -demand-us (or -usecase with a built-in seed: " +
			strings.Join(capacity.SeededUseCases(), ",") + ")")
	}
	fmt.Printf("aoncap: worker demand %.0fus (%s), target p99 %v\n", demands.WorkerDemand()*1e6, source, *targetP99)
	topo := capacity.GatewayTopology{Workers: width, Backends: *replicas}
	if *forwardUS > 0 {
		topo.BackendConns = *backendConns
	}

	if len(rows) > 0 {
		replayTable(rows, demands, topo, *targetP99)
	}
	if len(widthList) > 0 {
		scalingTable(widthList, demands, topo, *targetP99)
	}
	if len(rows) == 0 && len(widthList) == 0 {
		// Bare demand seed: a default scaling table is the useful answer.
		scalingTable([]int{1, 2, 4, 8}, demands, topo, *targetP99)
	}
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "aoncap:", msg)
	os.Exit(2)
}

func parseWidths(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -widths entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// seedDemand resolves the per-message worker demand (seconds) and the
// pool width the replay should model.
func seedDemand(rows []session.CSVRow, calPath, ucName string, overrideUS float64) (demand float64, width int, source string) {
	width = 1
	for _, r := range rows {
		if r.Workers > width {
			width = r.Workers
		}
	}
	if overrideUS > 0 {
		return overrideUS / 1e6, width, "-demand-us override"
	}
	if len(rows) > 0 {
		// The session's smallest positive p50 is the closest it came to a
		// no-contention service time.
		min := uint64(0)
		for _, r := range rows {
			if r.LatencyP50US > 0 && (min == 0 || r.LatencyP50US < min) {
				min = r.LatencyP50US
			}
		}
		if min > 0 {
			return float64(min) / 1e6, width, "session min p50"
		}
	}
	if calPath != "" {
		uc, err := workload.ParseUseCase(ucName)
		if err != nil {
			fatal(err.Error())
		}
		cal, err := harness.LoadCalibration(calPath)
		if err != nil {
			fatal(err.Error())
		}
		e, ok := cal.EntryFor(uc, width)
		if !ok || e.LiveP50US <= 0 {
			fatal(fmt.Sprintf("calibration has no live p50 for %s (record with hwreport -timeline)", ucName))
		}
		if e.Width > 0 {
			width = e.Width
		}
		return e.LiveP50US / 1e6, width, fmt.Sprintf("calibration %s", harness.EntryKey(uc, e.Width))
	}
	return 0, width, ""
}

// replayTable prints the per-sample predicted-vs-measured comparison.
func replayTable(rows []session.CSVRow, d capacity.StageDemands, topo capacity.GatewayTopology, target time.Duration) {
	fmt.Printf("\nreplay: model at width %d vs %d session samples\n", topo.Workers, len(rows))
	fmt.Printf("%8s %10s %10s %10s %7s %10s %10s %7s\n",
		"t(ms)", "offered/s", "meas/s", "pred/s", "err%", "meas-p99", "pred-p99", "err%")
	m := capacity.GatewayModel(d, topo)
	var sumTputErr, sumP99Err float64
	var n int
	for _, r := range rows {
		if r.Messages == 0 && r.Shed == 0 {
			continue // idle sample: nothing to compare
		}
		offered := r.OfferedPerSec()
		p := m.Predict(offered)
		tputErr := errPct(p.ThroughputPerSec, r.MsgsPerSec)
		p99Err := errPct(p.P99US, float64(r.LatencyP99US))
		fmt.Printf("%8d %10.0f %10.0f %10.0f %7.1f %10d %10.0f %7.1f\n",
			r.TMS, offered, r.MsgsPerSec, p.ThroughputPerSec, tputErr,
			r.LatencyP99US, p.P99US, p99Err)
		sumTputErr += tputErr
		sumP99Err += p99Err
		n++
	}
	if n > 0 {
		fmt.Printf("mean abs error over %d samples: throughput %.1f%%, p99 %.1f%%\n",
			n, sumTputErr/float64(n), sumP99Err/float64(n))
	} else {
		fmt.Println("(session has no loaded samples)")
	}
}

// scalingTable prints the predicted width sweep — the analytic Figure
// 5/6.
func scalingTable(widths []int, d capacity.StageDemands, topo capacity.GatewayTopology, target time.Duration) {
	fmt.Printf("\npredicted scaling (p99 target %v, %d backend replica(s))\n", target, topo.Backends)
	fmt.Printf("%6s %12s %14s %10s %8s\n", "width", "capacity/s", "admissible/s", "p99@adm", "scaling")
	var base float64
	for _, w := range widths {
		t := topo
		t.Workers = w
		m := capacity.GatewayModel(d, t)
		sat := m.Predict(1e12).ThroughputPerSec // offered far beyond any capacity
		adm := m.MaxLoadForP99(float64(target.Microseconds()))
		p99 := m.Predict(adm).P99US
		if base == 0 {
			base = sat
		}
		scaling := 0.0
		if base > 0 {
			scaling = sat / base
		}
		fmt.Printf("%6d %12.0f %14.0f %10.0f %8.2f\n", w, sat, adm, p99, scaling)
	}
}

func errPct(pred, meas float64) float64 {
	if meas <= 0 {
		return 0
	}
	e := 100 * (pred - meas) / meas
	if e < 0 {
		return -e
	}
	return e
}
