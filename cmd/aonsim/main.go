// Command aonsim runs the paper's experiments on the simulated machines
// and prints paper-vs-measured tables plus the qualitative shape checks
// for every table and figure in the evaluation.
//
// Usage:
//
//	aonsim -exp all                 # everything (default)
//	aonsim -exp fig2|table3         # netperf baselines
//	aonsim -exp fig3|table4|fig4|fig5|table5|table6
//	aonsim -exp specs               # Table 1 / Table 2
//	aonsim -msgs 1200 -warmup 200   # measurement sizing
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/perf/machine"
	"repro/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment: specs, fig2, table3, fig3, table4, fig4, fig5, table5, table6, ext, all")
	msgs := flag.Int("msgs", 600, "measured messages per AON run")
	warm := flag.Int("warmup", 120, "warmup messages per AON run")
	measureMs := flag.Float64("netperf-ms", 8, "netperf measurement window (simulated ms)")
	checks := flag.Bool("checks", true, "run the qualitative shape checks")
	calIn := flag.String("calibration", "", "apply a live calibration artifact (written by hwreport -timeline) to the simulated counter predictions")
	flag.Parse()

	var cal *harness.Calibration
	if *calIn != "" {
		var err error
		cal, err = harness.LoadCalibration(*calIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aonsim:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "aonsim: applying calibration %s (recorded against %s)\n", *calIn, cal.Config)
		if cal.Identity() {
			fmt.Fprintln(os.Stderr, "aonsim: calibration carries identity scales (recorded without live perf events); predictions unchanged")
		}
	}

	needNetperf := *exp == "all" || *exp == "fig2" || *exp == "table3"
	needAON := *exp == "all" || *exp == "fig3" || *exp == "table4" ||
		*exp == "fig4" || *exp == "fig5" || *exp == "table5" || *exp == "table6"

	if *exp == "specs" || *exp == "all" {
		fmt.Println("Table 1: Specifications of the systems under test")
		fmt.Println(machine.SpecsTable())
		fmt.Println("Table 2: Notations for systems under test")
		for _, id := range machine.AllConfigs {
			fmt.Printf("  %-5s %s\n", id, id.Explanation())
		}
		fmt.Println()
	}

	var nmx harness.NetperfMatrix
	if needNetperf {
		opts := harness.DefaultNetperfOpts
		opts.MeasureMs = *measureMs
		fmt.Fprintln(os.Stderr, "running netperf baselines...")
		nmx = harness.RunNetperfMatrix(opts)
	}
	var amx harness.AONMatrix
	if needAON {
		opts := harness.DefaultAONOpts
		opts.MeasureMsgs = *msgs
		opts.WarmupMsgs = *warm
		fmt.Fprintln(os.Stderr, "running XML server application matrix...")
		var err error
		amx, err = harness.RunAONMatrix(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aonsim:", err)
			os.Exit(1)
		}
		cal.ApplyMatrix(amx)
	}

	show := func(name string, t harness.Table, cs []harness.ShapeCheck) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Println(t.Render())
		if *checks && cs != nil {
			fmt.Println(harness.FormatChecks(cs))
		}
	}

	if nmx != nil {
		show("fig2", harness.Figure2Table(nmx), harness.Figure2Checks(nmx))
		if *exp == "all" || *exp == "table3" {
			for _, t := range harness.Table3Tables(nmx) {
				fmt.Println(t.Render())
			}
			if *checks {
				fmt.Println(harness.FormatChecks(harness.Table3Checks(nmx)))
			}
		}
	}
	if amx != nil {
		if *exp == "all" {
			fmt.Println(harness.ThroughputTable(amx).Render())
		}
		show("fig3", harness.Figure3Table(amx), harness.Figure3Checks(amx))
		show("table4", harness.Table4Table(amx), harness.Table4Checks(amx))
		show("fig4", harness.Figure4Table(amx), harness.Figure4Checks(amx))
		show("fig5", harness.Figure5Table(amx), harness.Figure5Checks(amx))
		show("table5", harness.Table5Table(amx), harness.Table5Checks(amx))
		show("table6", harness.Table6Table(amx), harness.Table6Checks(amx))
	}

	if *exp == "ext" || *exp == "all" {
		runExtensions(*msgs, *warm)
	}

	if *checks && nmx != nil && amx != nil && *exp == "all" {
		failed := harness.FailedChecks(harness.AllChecks(nmx, amx))
		fmt.Printf("shape checks failed: %d\n", len(failed))
		if len(failed) > 0 {
			fmt.Println(harness.FormatChecks(failed))
		}
	}
}

// runExtensions reports the paper's future-work operations (DPI, AUTH)
// and the multicore extension across the dual-processing transitions.
func runExtensions(msgs, warm int) {
	opts := harness.DefaultAONOpts
	opts.MeasureMsgs = msgs
	opts.WarmupMsgs = warm
	fmt.Println("Extensions (paper future work, Section 6)")
	for _, uc := range workload.ExtendedUseCases {
		fmt.Printf("  %s:", uc)
		base := map[machine.ConfigID]float64{}
		for _, id := range machine.AllConfigs {
			r, err := harness.RunAON(id, uc, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "aonsim:", err)
				os.Exit(1)
			}
			base[id] = r.Mbps
			fmt.Printf("  %s=%.0fMbps", id, r.Mbps)
		}
		fmt.Println()
		for _, p := range harness.ScalingPairs {
			fmt.Printf("    scaling %-12s %.2f\n", p.Name, base[p.To]/base[p.From])
		}
	}
	fmt.Println("  multicore (SV):")
	var first float64
	for _, id := range []machine.ConfigID{machine.OneCPm, machine.TwoCPm, machine.FourCPm} {
		r, err := harness.RunAON(id, workload.SV, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aonsim:", err)
			os.Exit(1)
		}
		if first == 0 {
			first = r.Mbps
		}
		fmt.Printf("    %-5s %8.0f Mbps  scaling %.2f\n", id, r.Mbps, r.Mbps/first)
	}
}
