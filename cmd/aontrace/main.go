// Command aontrace assembles distributed traces from every vantage
// point of an AON deployment and renders a critical-path report: which
// stage — client, gateway read/queue/parse/process/forward/write, or
// backend serve — owns the latency of the requests the tail samplers
// kept (shed, errored, idle-reaped, slow, plus a 1-in-N sample of the
// ordinary fast majority).
//
// Spans join purely by trace ID, never by comparing clocks across
// nodes, so gateway and backend may disagree on wall time and the
// report stays correct: per-span durations are node-local monotonic
// measurements, and self-time is a span's duration minus its direct
// children's.
//
// Usage:
//
//	aontrace -addrs localhost:8080,localhost:9081      # live GET /traces
//	aontrace -in fleet-out/traces.jsonl                # aonfleet artifact
//	aontrace -in gw.jsonl,be.jsonl -load report.json   # mix files + aonload client spans
//	aontrace -addrs localhost:8080 -top 5 -rank 20     # more exemplars, deeper ranking
//
// -addrs polls each node's GET /traces (aongate -trace gateways and
// aonback backends serve the same shape); -in reads span-per-line or
// trace-per-line JSONL (fleet traces.jsonl, or /traces output piped
// through jq); -load reads aonload -out report JSON and contributes its
// client_spans. All sources are pooled and deduplicated before
// assembly. Exits 1 when no spans were found anywhere.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/dtrace"
	"repro/internal/gateway"
)

func main() {
	addrs := flag.String("addrs", "", "comma-separated node addresses to poll for GET /traces (gateways and backends)")
	in := flag.String("in", "", "comma-separated span JSONL paths (aonfleet traces.jsonl, or raw span-per-line files)")
	load := flag.String("load", "", "comma-separated aonload report JSON paths; their client_spans join the pool")
	top := flag.Int("top", 0, "slowest traces rendered as span trees (0 = default 3)")
	rank := flag.Int("rank", 0, "spans listed in the by-self-time ranking (0 = default 10)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-node timeout for -addrs polls")
	flag.Parse()

	if *addrs == "" && *in == "" && *load == "" {
		fmt.Fprintln(os.Stderr, "aontrace: nothing to read — pass -addrs, -in, or -load (see -h)")
		os.Exit(2)
	}

	var spans []dtrace.Span
	failed := 0
	for _, path := range splitList(*in) {
		got, err := readSpanFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aontrace:", err)
			failed++
			continue
		}
		fmt.Fprintf(os.Stderr, "aontrace: %s: %d spans\n", path, len(got))
		spans = append(spans, got...)
	}
	for _, path := range splitList(*load) {
		got, err := readLoadReport(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aontrace:", err)
			failed++
			continue
		}
		fmt.Fprintf(os.Stderr, "aontrace: %s: %d client spans\n", path, len(got))
		spans = append(spans, got...)
	}
	client := &http.Client{Timeout: *timeout}
	for _, addr := range splitList(*addrs) {
		got, node, err := fetchTraces(client, addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aontrace: %s: %v\n", addr, err)
			failed++
			continue
		}
		fmt.Fprintf(os.Stderr, "aontrace: %s (%s): %d spans\n", addr, node, len(got))
		spans = append(spans, got...)
	}

	if len(spans) == 0 {
		fmt.Fprintln(os.Stderr, "aontrace: no spans found")
		os.Exit(1)
	}
	traces := dtrace.Assemble(spans)
	dtrace.FormatReport(os.Stdout, traces, dtrace.ReportOptions{
		TopTraces: *top,
		RankSpans: *rank,
	})
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "aontrace: %d source(s) failed\n", failed)
		os.Exit(1)
	}
}

// splitList turns a comma-separated flag into trimmed non-empty entries.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// readSpanFile loads one JSONL file of spans (bare Span lines or
// whole-Trace lines — both shapes the fleet and /traces emit).
func readSpanFile(path string) ([]dtrace.Span, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	spans, err := dtrace.ReadSpansJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spans, nil
}

// readLoadReport pulls the client_spans array out of an aonload -out
// report.
func readLoadReport(path string) ([]dtrace.Span, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep struct {
		ClientSpans []dtrace.Span `json:"client_spans"`
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep.ClientSpans, nil
}

// fetchTraces polls one node's GET /traces.
func fetchTraces(client *http.Client, addr string) ([]dtrace.Span, string, error) {
	resp, err := client.Get("http://" + addr + "/traces")
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		msg := string(body)
		if len(msg) > 200 {
			msg = msg[:200]
		}
		return nil, "", fmt.Errorf("GET /traces: %s: %s", resp.Status, msg)
	}
	var tr gateway.TracesResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		return nil, "", fmt.Errorf("GET /traces: %w", err)
	}
	var spans []dtrace.Span
	for _, t := range tr.Traces {
		spans = append(spans, t.Spans...)
	}
	return spans, tr.Node, nil
}
