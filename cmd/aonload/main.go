// Command aonload is the open-loop client driver for the live AON
// gateway: N concurrent keep-alive connections POSTing AONBench order
// documents, reporting msgs/s, Mbps, latency percentiles, and routing
// outcomes as a final JSON report — one command per side makes a run.
//
// Usage:
//
//	aonload -addr localhost:8080 -usecase CBR -conns 16 -duration 10s
//	aonload -usecase SV -n 5000 -size 5120 -invalid-every 3
//	aonload -sweep 1,2,4 -usecase SV -n 2000   # self-hosted scaling table
//	aonload -sweep 1,2 -usecase FR -selfback   # ... with real forwarding
//
// -sweep replays the paper's 1-unit→2-unit scaling question (Figures 5/6)
// on the live machine: for each width it sets GOMAXPROCS, starts an
// in-process gateway on loopback with an equal-width worker pool, drives
// it, and prints a scaling table. Like the paper's netperf loopback mode,
// client and server share the machine, so the curve shape — not the
// absolute msgs/s — is the comparable result.
//
// In sweep mode, -selfback stands up in-process order/error backends on
// loopback (or -order/-error point at running cmd/aonback instances), so
// the swept gateway forwards for real: the table gains the order
// backend's p50 round-trip latency and the upstream retry count.
//
// -counters adds the paper's counter columns to the sweep table: per-
// GOMAXPROCS CPI and BrMPR measured with perf_event_open (Tables 4/6
// next to the Figures 5/6 scaling curve) plus the GC CPU share. Where
// perf events are denied the sweep still completes, printing runtime-
// metrics-backed rows with model-predicted derived values and a one-line
// notice.
//
// In sweep mode, -trace-every N (default 16) additionally samples one
// request in N through per-stage monotonic stamps, and a per-stage
// p50/p99 table (read/queue/parse/process/forward/write) prints after
// the scaling table — the live analogue of the paper's per-phase
// profile next to its scaling figures. -timeline runs a sampling
// session inside each swept gateway.
//
// Against a tracing gateway (aongate -trace), -trace-client N originates
// a distributed trace on every Nth request per connection: an
// X-AON-Trace header carries a client-minted trace ID, the gateway
// adopts it, and the report JSON gains a client_spans array — the
// client's own view of each traced request, which cmd/aontrace (-load)
// and cmd/aonfleet join with the gateway and backend spans into full
// cross-node traces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/gateway"
	"repro/internal/hwcount"
	"repro/internal/upstream"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "gateway address")
	ucName := flag.String("usecase", "FR", "use case: FR, CBR, SV, DPI, AUTH, XJ")
	conns := flag.Int("conns", 8, "concurrent keep-alive connections")
	msgs := flag.Int("n", 0, "total messages (0 = run for -duration)")
	duration := flag.Duration("duration", 0, "run length (0 = send -n messages; both 0 = 1000 messages)")
	size := flag.Int("size", workload.MessageBytes, "approximate POST body bytes")
	invalidEvery := flag.Int("invalid-every", 0, "make every Nth message schema-invalid (0 = never)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	seed := flag.Uint64("seed", 0, "message-generator seed (0 = legacy stream); same seed replays identical traffic")
	outPath := flag.String("out", "", "also write the final JSON report to this file (cmd/aonfleet reads it back)")
	sweep := flag.String("sweep", "", "comma-separated GOMAXPROCS widths for a self-hosted scaling run (e.g. 1,2,4)")
	order := flag.String("order", "", "sweep mode: order backend address for the swept gateway")
	errAddr := flag.String("error", "", "sweep mode: error backend address for the swept gateway")
	selfback := flag.Bool("selfback", false, "sweep mode: self-host order/error backends on loopback")
	respSize := flag.Int("resp-size", 128, "self-hosted backend response body bytes")
	hwCounters := flag.Bool("counters", false, "sweep mode: per-width CPI/BrMPR columns from perf_event_open (runtime-metrics fallback where denied)")
	timeline := flag.Bool("timeline", false, "sweep mode: run a sampling session per width (implies -counters)")
	sampleInterval := flag.Duration("sample-interval", 100*time.Millisecond, "sampling period for -timeline (must be positive)")
	traceEvery := flag.Int("trace-every", 16, "sweep mode: trace 1 in every N requests through pipeline stages; per-stage table after the sweep (0 = off)")
	targetP99 := flag.Duration("target-p99", 100*time.Millisecond, "sweep mode: p99 bound for the model table's admissible-load column")
	traceClient := flag.Int("trace-client", 0, "originate a distributed trace every Nth request per connection via X-AON-Trace; traced requests land in the report's client_spans (0 = off)")
	traceNode := flag.String("trace-node", "", "node name stamped on client spans (default client; aonfleet passes role/id)")
	flag.Parse()

	uc, err := workload.ParseUseCase(*ucName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aonload:", err)
		os.Exit(2)
	}
	if *sampleInterval <= 0 {
		fmt.Fprintf(os.Stderr, "aonload: -sample-interval must be positive, got %v\n", *sampleInterval)
		os.Exit(2)
	}
	if *traceEvery < 0 {
		fmt.Fprintf(os.Stderr, "aonload: -trace-every must be >= 0, got %d\n", *traceEvery)
		os.Exit(2)
	}
	if *traceClient < 0 {
		fmt.Fprintf(os.Stderr, "aonload: -trace-client must be >= 0, got %d\n", *traceClient)
		os.Exit(2)
	}
	if (*hwCounters || *timeline) && !hwcount.Supported() {
		fmt.Fprintln(os.Stderr, "aonload: -counters/-timeline need perf events, which this OS does not support")
		os.Exit(2)
	}
	cfg := gateway.LoadConfig{
		Addr:         *addr,
		UseCase:      uc,
		Conns:        *conns,
		Messages:     *msgs,
		Duration:     *duration,
		Size:         *size,
		InvalidEvery: *invalidEvery,
		Timeout:      *timeout,
		Seed:         *seed,
		TraceEvery:   *traceClient,
		TraceNode:    *traceNode,
	}

	if *sweep != "" {
		procs, err := parseProcs(*sweep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aonload:", err)
			os.Exit(2)
		}
		up := upstream.Config{Order: *order, Error: *errAddr}
		if *selfback {
			for _, role := range []string{"order", "error"} {
				b, err := upstream.StartBackend("127.0.0.1:0", upstream.BackendConfig{
					Name: role, RespBytes: *respSize,
				})
				if err != nil {
					fmt.Fprintln(os.Stderr, "aonload: backend:", err)
					os.Exit(1)
				}
				defer b.Close()
				if role == "order" {
					up.Order = b.Addr().String()
				} else {
					up.Error = b.Addr().String()
				}
			}
		}
		rows, err := gateway.RunSweep(procs, cfg, gateway.Config{
			UseCase:        uc,
			Upstream:       up,
			Counters:       *hwCounters,
			Timeline:       *timeline,
			SampleInterval: *sampleInterval,
			TraceEvery:     *traceEvery,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "aonload:", err)
			os.Exit(1)
		}
		mode := "in-place"
		if up.Enabled() {
			mode = fmt.Sprintf("forwarding (order=%s error=%s)", up.Order, up.Error)
		}
		fmt.Fprintf(os.Stderr, "aonload: %s scaling sweep, %d conns, %d-byte messages, %s\n",
			uc, cfg.Conns, cfg.Size, mode)
		if *hwCounters && len(rows) > 0 && rows[0].Server.Counters != nil {
			c := rows[0].Server.Counters
			if c.Mode == "runtime-only" {
				fmt.Fprintf(os.Stderr, "aonload: counters: %s\n", c.Notice)
			} else {
				fmt.Fprintf(os.Stderr, "aonload: counters: hardware mode (perf_event_open)\n")
			}
		}
		fmt.Fprint(os.Stderr, gateway.FormatSweepTable(rows))
		if st := gateway.FormatStageTable(rows); st != "" {
			fmt.Fprintf(os.Stderr, "\nper-stage latency (sampled 1 in %d):\n%s", *traceEvery, st)
		}
		if mt := gateway.FormatModelTable(rows, *targetP99); mt != "" {
			fmt.Fprintf(os.Stderr, "\ncapacity model vs measured (per load point):\n%s", mt)
		}
		b, _ := json.MarshalIndent(rows, "", "  ")
		fmt.Println(string(b))
		writeOut(*outPath, b)
		return
	}

	rep, err := RunAndReport(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aonload:", err)
		os.Exit(1)
	}
	b, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(b))
	writeOut(*outPath, b)
}

// writeOut mirrors the stdout report into -out when set, so callers
// that capture logs (cmd/aonfleet) still get a clean machine-readable
// artifact.
func writeOut(path string, b []byte) {
	if path == "" {
		return
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "aonload: -out:", err)
		os.Exit(1)
	}
}

// RunAndReport runs one load generation pass and summarizes to stderr.
func RunAndReport(cfg gateway.LoadConfig) (gateway.Report, error) {
	rep, err := gateway.RunLoad(cfg)
	if err != nil {
		return rep, err
	}
	fmt.Fprintf(os.Stderr,
		"aonload: %s  %d conns  %.0f msgs/s  %.1f Mbps  p50=%dus p99=%dus  ok=%d shed=%d err=%d\n",
		rep.UseCase, rep.Conns, rep.MsgsPerSec, rep.Mbps,
		rep.Latency.P50US, rep.Latency.P99US, rep.OK, rep.Shed, rep.HTTPErrors+rep.NetErrors)
	if n := len(rep.ClientSpans); n > 0 {
		fmt.Fprintf(os.Stderr, "aonload: originated %d distributed traces (client_spans in the report)\n", n)
	}
	return rep, nil
}

func parseProcs(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -sweep entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}
