// Command netperfsim runs the netperf workalike on one simulated
// configuration and prints throughput and the counter-derived metrics —
// the equivalent of one Figure 2 bar plus its Table 3 column.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/netperf"
	"repro/internal/perf/counters"
	"repro/internal/perf/machine"
)

func main() {
	cfg := flag.String("config", "1CPm", "system under test: 1CPm, 2CPm, 1LPx, 2LPx, 2PPx")
	mode := flag.String("mode", "loopback", "loopback or end-to-end")
	ms := flag.Float64("ms", 8, "measurement window (simulated ms)")
	raw := flag.Bool("raw", false, "dump raw counters")
	flag.Parse()

	id := machine.ConfigID(*cfg)
	valid := false
	for _, c := range machine.AllConfigs {
		if c == id {
			valid = true
		}
	}
	if !valid {
		fmt.Fprintf(os.Stderr, "netperfsim: unknown config %q\n", *cfg)
		os.Exit(2)
	}
	m := netperf.Loopback
	if *mode == "end-to-end" {
		m = netperf.EndToEnd
	} else if *mode != "loopback" {
		fmt.Fprintf(os.Stderr, "netperfsim: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	opts := harness.DefaultNetperfOpts
	opts.MeasureMs = *ms
	r := harness.RunNetperf(id, m, opts)
	fmt.Printf("netperf %s on %s: %.0f Mbps\n", m, id, r.Mbps)
	fmt.Printf("  %s\n", r.Metrics)
	if *raw {
		fmt.Println(counters.Set(r.Raw).Format())
	}
}
