// Command xmlbench exercises the XML substrate standalone: it parses an
// AONBench message, evaluates the CBR routing expression, validates
// against the purchase-order schema, and reports both functional results
// and the abstract instruction mix each kernel emits — the raw material
// behind the paper's Table 5 branch frequencies.
package main

import (
	"flag"
	"fmt"
	"os"

	aon "repro/internal/core"
	"repro/internal/perf/trace"
	"repro/internal/workload"
	"repro/internal/xmldom"
	"repro/internal/xpath"
	"repro/internal/xsd"
)

func main() {
	n := flag.Int("n", 8, "messages to process")
	expr := flag.String("xpath", aon.RouteExprSource, "XPath expression to evaluate")
	flag.Parse()

	compiled, err := xpath.Compile(*expr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmlbench:", err)
		os.Exit(1)
	}
	schema := workload.OrderSchema()
	arena := trace.NewArena(1<<30, 1<<24)

	var parseMix, xpathMix, svMix trace.Counting
	matches, valid := 0, 0
	for i := 0; i < *n; i++ {
		msg := workload.SOAPMessage(i)
		doc, err := xmldom.ParseInstrumented(msg, &parseMix, 0x10000, arena)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmlbench: message %d: %v\n", i, err)
			os.Exit(1)
		}
		val, err := xpath.NewEvaluator(&xpathMix).EvalString(compiled, doc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmlbench: message %d: %v\n", i, err)
			os.Exit(1)
		}
		if val == aon.RouteMatchValue {
			matches++
		}
		if xsd.NewValidator(schema, &svMix).Valid(doc) {
			valid++
		}
	}

	fmt.Printf("processed %d AONBench messages (%d bytes each)\n", *n, workload.MessageBytes)
	fmt.Printf("  CBR %q matched: %d/%d\n", *expr, matches, *n)
	fmt.Printf("  SV schema-valid: %d/%d\n", valid, *n)
	report := func(name string, c trace.Counting) {
		fmt.Printf("  %-12s instr=%8d loads=%7d stores=%7d branches=%7d (%.1f%% branches, %.1f%% taken)\n",
			name, c.Instr, c.Loads, c.Stores, c.Branches,
			100*float64(c.Branches)/float64(c.Instr),
			100*float64(c.Taken)/float64(c.Branches))
	}
	report("parse", parseMix)
	report("xpath", xpathMix)
	report("validate", svMix)
}
