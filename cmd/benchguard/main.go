// Command benchguard gates CI on the hot path's allocation budget. It
// parses `go test -bench -benchmem` output on stdin, compares every
// guarded benchmark's allocs/op against the committed baseline
// (BENCH_hotpath.json), and exits non-zero when a guarded benchmark
// regresses above its threshold — or is missing from the input, so a
// renamed benchmark cannot silently drop its guard.
//
//	go test -run '^$' -bench 'BenchmarkGateway(FR|CBR|SV)$' -benchmem . | benchguard
//	go test -run '^$' -bench ... -benchmem . | benchguard -update   # refresh recorded numbers
//
// Only allocs/op is gated: it is deterministic for a fixed code path,
// while ns/op on shared CI runners is too noisy for a hard threshold.
// ns/op and B/op are still recorded in the baseline as the paper trail
// behind EXPERIMENTS.md.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Entry is one benchmark's committed record.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// MaxAllocsPerOp is the gate: measured allocs/op above this fails.
	MaxAllocsPerOp int64 `json:"max_allocs_per_op"`
}

// Baseline is the BENCH_hotpath.json shape.
type Baseline struct {
	Note       string           `json:"note"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

type measured struct {
	ns     float64
	bytes  int64
	allocs int64
}

// benchLine matches one -benchmem result row; the -N GOMAXPROCS suffix
// is stripped so baselines are portable across runner core counts.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+[\d.]+ MB/s)?\s+(\d+) B/op\s+(\d+) allocs/op`)

func main() {
	baselinePath := flag.String("baseline", "BENCH_hotpath.json",
		"committed baseline file with per-benchmark allocation thresholds")
	update := flag.Bool("update", false,
		"rewrite the baseline's recorded numbers from the measured input (existing thresholds are preserved)")
	flag.Parse()

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fatalf("benchguard: %v", err)
	}

	got := map[string]measured{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		b, _ := strconv.ParseInt(m[3], 10, 64)
		allocs, _ := strconv.ParseInt(m[4], 10, 64)
		got[m[1]] = measured{ns: ns, bytes: b, allocs: allocs}
	}
	if err := sc.Err(); err != nil {
		fatalf("benchguard: reading stdin: %v", err)
	}
	if len(got) == 0 {
		fatalf("benchguard: no benchmark result lines on stdin (run with -bench ... -benchmem)")
	}

	if *update {
		for name, m := range got {
			e := base.Benchmarks[name]
			if e.MaxAllocsPerOp == 0 {
				// New benchmark: seed a threshold with headroom so
				// warmup jitter does not flap the gate.
				e.MaxAllocsPerOp = 2*m.allocs + 4
			}
			e.NsPerOp, e.BytesPerOp, e.AllocsPerOp = m.ns, m.bytes, m.allocs
			base.Benchmarks[name] = e
		}
		if err := writeBaseline(*baselinePath, base); err != nil {
			fatalf("benchguard: %v", err)
		}
		fmt.Printf("benchguard: updated %s with %d benchmarks\n", *baselinePath, len(got))
		return
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		e := base.Benchmarks[name]
		m, ok := got[name]
		if !ok {
			fmt.Printf("FAIL %-28s guarded benchmark missing from input\n", name)
			failed = true
			continue
		}
		status := "ok  "
		if m.allocs > e.MaxAllocsPerOp {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-28s %6d allocs/op (max %d, recorded %d)  %10.0f ns/op (recorded %.0f)\n",
			status, name, m.allocs, e.MaxAllocsPerOp, e.AllocsPerOp, m.ns, e.NsPerOp)
	}
	if failed {
		fatalf("benchguard: allocation budget exceeded — if the regression is intentional, re-run with -update and review the diff")
	}
}

func loadBaseline(path string) (*Baseline, error) {
	base := &Baseline{Benchmarks: map[string]Entry{}}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return base, nil // -update bootstraps a fresh file
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(raw, base); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if base.Benchmarks == nil {
		base.Benchmarks = map[string]Entry{}
	}
	return base, nil
}

func writeBaseline(path string, base *Baseline) error {
	raw, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
