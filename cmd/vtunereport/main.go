// Command vtunereport runs the XML server application under the sampling
// profiler — the paper's VTune methodology — and prints the per-CPU
// utilization and counter timeline for one configuration and use case.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	aon "repro/internal/core"
	"repro/internal/harness"
	"repro/internal/netsim"
	"repro/internal/perf/machine"
	"repro/internal/sim/sched"
	"repro/internal/vtune"
	"repro/internal/workload"
)

func main() {
	cfg := flag.String("config", "2CPm", "system under test: 1CPm, 2CPm, 1LPx, 2LPx, 2PPx")
	ucFlag := flag.String("usecase", "CBR", "FR, CBR or SV")
	msgs := flag.Int("msgs", 300, "messages to process")
	intervalUs := flag.Float64("interval-us", 500, "sampling interval (simulated microseconds)")
	timeline := flag.Bool("timeline", false, "print the full sample timeline")
	flag.Parse()

	var uc workload.UseCase
	switch *ucFlag {
	case "FR":
		uc = workload.FR
	case "CBR":
		uc = workload.CBR
	case "SV":
		uc = workload.SV
	default:
		fmt.Fprintf(os.Stderr, "vtunereport: unknown use case %q\n", *ucFlag)
		os.Exit(2)
	}

	m := machine.New(machine.ConfigID(*cfg), machine.Options{})
	e := sched.NewEngine(m)
	rx := netsim.NewLink(m, harness.GigabitBps)
	tx := netsim.NewLink(m, harness.GigabitBps)
	nic := netsim.NewNIC(e, e.Space.NewProcess(), rx, tx)
	s, err := aon.New(e, nic, aon.Config{UseCase: uc})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vtunereport:", err)
		os.Exit(1)
	}
	s.SpawnThreads()
	aon.NewClient(s, uc, 32).Start()

	prof := vtune.New(e, *intervalUs*1e-6*m.Spec.ClockHz)
	prof.Start(0)
	target := uint64(*msgs)
	e.Run(func(*sched.Engine) bool { return s.Stats.Messages >= target })
	prof.Stop()

	fmt.Printf("%s %s: processed %d messages in %.2f simulated ms\n",
		*cfg, uc, s.Stats.Messages, 1e3*m.Seconds(m.MaxNow()))
	util := prof.Utilization()
	cpus := make([]int, 0, len(util))
	for c := range util {
		cpus = append(cpus, c)
	}
	sort.Ints(cpus)
	for _, c := range cpus {
		fmt.Printf("  cpu%d mean utilization: %.1f%%\n", c, 100*util[c])
	}
	if *timeline {
		fmt.Println(prof.Report())
	}
}
