// Command hwreport closes the loop between the two halves of the
// reproduction: for each paper use case (FR, CBR, SV) it runs the
// simulated machine (the internal/vtune counter methodology, as
// cmd/vtunereport does) to get the model's predicted CPI / L2MPI /
// branch-frequency / BrMPR, then stands up the live gateway with the
// perf_event_open measurement layer on loopback, drives it with real
// load, and prints a side-by-side text (or -json) report of simulated
// prediction vs live hardware measurement.
//
// On hosts where perf events are denied (unprivileged containers, CI)
// the live column degrades to the runtime-only fallback and the report
// says so — the command never fails for lack of a PMU.
//
// Usage:
//
//	hwreport                         # 2CPm prediction vs live, all three use cases
//	hwreport -config 2PPx -n 5000    # different simulated config, longer live run
//	hwreport -json                   # machine-readable rows
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/gateway"
	"repro/internal/harness"
	"repro/internal/hwcount"
	"repro/internal/perf/counters"
	"repro/internal/perf/machine"
	"repro/internal/workload"
)

// Row is one use case's comparison: the simulated machine's predicted
// metrics next to the live gateway's measured (or fallback) ones.
type Row struct {
	UseCase      string                    `json:"usecase"`
	SimConfig    string                    `json:"sim_config"`
	SimMsgsPerS  float64                   `json:"sim_msgs_per_sec"`
	Sim          counters.Metrics          `json:"sim"`
	LiveMode     string                    `json:"live_mode"`
	LiveMsgsPerS float64                   `json:"live_msgs_per_sec"`
	Live         hwcount.Derived           `json:"live"`
	LiveCounters *gateway.CountersSnapshot `json:"live_counters,omitempty"`
}

func main() {
	cfgName := flag.String("config", "2CPm", "simulated system: 1CPm, 2CPm, 1LPx, 2LPx, 2PPx")
	simMsgs := flag.Int("sim-msgs", 240, "simulated messages per use case (measurement window)")
	liveMsgs := flag.Int("n", 2000, "live messages per use case")
	conns := flag.Int("conns", 8, "live concurrent connections")
	size := flag.Int("size", workload.MessageBytes, "live POST body bytes")
	asJSON := flag.Bool("json", false, "emit JSON rows instead of the text table")
	flag.Parse()

	var rows []Row
	for _, uc := range []workload.UseCase{workload.FR, workload.CBR, workload.SV} {
		row, err := compare(machine.ConfigID(*cfgName), uc, *simMsgs, *liveMsgs, *conns, *size)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hwreport:", err)
			os.Exit(1)
		}
		rows = append(rows, row)
	}

	if *asJSON {
		b, _ := json.MarshalIndent(rows, "", "  ")
		fmt.Println(string(b))
		return
	}
	fmt.Printf("hwreport: simulated %s prediction vs live loopback measurement\n", *cfgName)
	fmt.Printf("%-4s %6s | %8s %8s %8s | %8s %8s %8s  %s\n",
		"uc", "metric", "sim", "live", "ratio", "sim-mps", "live-mps", "", "live source")
	for _, r := range rows {
		src := r.LiveMode
		if r.LiveCounters != nil && r.LiveCounters.DerivedSource == "model" {
			src = "model fallback — " + r.LiveCounters.Notice
		}
		fmt.Printf("%-4s %6s | %8.2f %8.2f %8s | %8.0f %8.0f %8s  %s\n",
			r.UseCase, "CPI", r.Sim.CPI, r.Live.CPI, ratio(r.Live.CPI, r.Sim.CPI),
			r.SimMsgsPerS, r.LiveMsgsPerS, "", src)
		fmt.Printf("%-4s %6s | %8.2f %8.2f %8s |\n",
			"", "BrMPR%", r.Sim.BrMPR, r.Live.BrMPR, ratio(r.Live.BrMPR, r.Sim.BrMPR))
		fmt.Printf("%-4s %6s | %8.2f %8.2f %8s |\n",
			"", "BrFrq%", r.Sim.BranchFreq, r.Live.BranchFreq, ratio(r.Live.BranchFreq, r.Sim.BranchFreq))
		fmt.Printf("%-4s %6s | %8.2f %8.2f %8s |\n",
			"", "MPI%", r.Sim.L2MPI, r.Live.CacheMPI, ratio(r.Live.CacheMPI, r.Sim.L2MPI))
	}
	fmt.Println("ratio = live/sim; MPI compares simulated L2MPI with live last-level cache MPI.")
}

func ratio(live, sim float64) string {
	if sim == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", live/sim)
}

// compare produces one row: simulate, then measure live.
func compare(id machine.ConfigID, uc workload.UseCase, simMsgs, liveMsgs, conns, size int) (Row, error) {
	opts := harness.DefaultAONOpts
	opts.MeasureMsgs = simMsgs
	sim, err := harness.RunAON(id, uc, opts)
	if err != nil {
		return Row{}, fmt.Errorf("simulate %s %s: %w", id, uc, err)
	}

	srv, err := gateway.New(gateway.Config{UseCase: uc, Counters: true})
	if err != nil {
		return Row{}, err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return Row{}, err
	}
	rep, loadErr := gateway.RunLoad(gateway.LoadConfig{
		Addr: srv.Addr().String(), UseCase: uc,
		Conns: conns, Messages: liveMsgs, Size: size,
	})
	snap := srv.Snapshot()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	shutErr := srv.Shutdown(ctx)
	cancel()
	if loadErr != nil {
		return Row{}, fmt.Errorf("live %s: %w", uc, loadErr)
	}
	if shutErr != nil {
		return Row{}, fmt.Errorf("live %s shutdown: %w", uc, shutErr)
	}

	row := Row{
		UseCase:      uc.String(),
		SimConfig:    string(id),
		SimMsgsPerS:  sim.MsgPerSec,
		Sim:          sim.Metrics,
		LiveMsgsPerS: rep.MsgsPerSec,
	}
	if c := snap.Counters; c != nil {
		row.LiveMode = c.Mode
		row.Live = c.Derived
		row.LiveCounters = c
	}
	return row, nil
}
