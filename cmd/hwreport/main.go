// Command hwreport closes the loop between the two halves of the
// reproduction: for each paper use case (FR, CBR, SV) it runs the
// simulated machine (the internal/vtune counter methodology, as
// cmd/vtunereport does) to get the model's predicted CPI / L2MPI /
// branch-frequency / BrMPR, then stands up the live gateway with the
// perf_event_open measurement layer on loopback, drives it with real
// load, and prints a side-by-side text (or -json) report of simulated
// prediction vs live hardware measurement.
//
// On hosts where perf events are denied (unprivileged containers, CI)
// the live column degrades to the runtime-only fallback and the report
// says so — the command never fails for lack of a PMU.
//
// Usage:
//
//	hwreport                         # 2CPm prediction vs live, all three use cases
//	hwreport -config 2PPx -n 5000    # different simulated config, longer live run
//	hwreport -json                   # machine-readable rows
//
// With -timeline the live side runs a full sampling session instead of
// one snapshot: the gateway samples its measurement layer every
// -sample-interval while load runs for -live-duration, the session's
// mean CPI / cache-MPI / BrMPR is replayed against the model's
// prediction, and the per-use-case live/sim ratios are written as a
// calibration artifact (-calibration-out). A later run — or any caller
// of harness.LoadCalibration — can ingest it with -calibration, which
// scales the simulated predictions by the recorded ratios. Sessions
// recorded in the runtime-only fallback write identity scales (the
// model cannot calibrate itself) and the report says so.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/gateway"
	"repro/internal/harness"
	"repro/internal/hwcount"
	"repro/internal/perf/counters"
	"repro/internal/perf/machine"
	"repro/internal/workload"
)

// Row is one use case's comparison: the simulated machine's predicted
// metrics next to the live gateway's measured (or fallback) ones.
type Row struct {
	UseCase      string                    `json:"usecase"`
	Width        int                       `json:"width,omitempty"` // -timeline -widths: live worker-pool width
	SimConfig    string                    `json:"sim_config"`
	SimMsgsPerS  float64                   `json:"sim_msgs_per_sec"`
	Sim          counters.Metrics          `json:"sim"`
	Calibrated   bool                      `json:"calibrated,omitempty"` // sim column scaled by -calibration
	LiveMode     string                    `json:"live_mode"`
	LiveMsgsPerS float64                   `json:"live_msgs_per_sec"`
	Live         hwcount.Derived           `json:"live"`
	LiveSamples  int                       `json:"live_samples,omitempty"` // -timeline: session samples averaged
	LiveCounters *gateway.CountersSnapshot `json:"live_counters,omitempty"`
}

func main() {
	cfgName := flag.String("config", "2CPm", "simulated system: 1CPm, 2CPm, 1LPx, 2LPx, 2PPx")
	simMsgs := flag.Int("sim-msgs", 240, "simulated messages per use case (measurement window)")
	liveMsgs := flag.Int("n", 2000, "live messages per use case")
	conns := flag.Int("conns", 8, "live concurrent connections")
	size := flag.Int("size", workload.MessageBytes, "live POST body bytes")
	asJSON := flag.Bool("json", false, "emit JSON rows instead of the text table")
	tlMode := flag.Bool("timeline", false, "replay a live sampling session per use case against the model and write a calibration artifact")
	sampleInterval := flag.Duration("sample-interval", 100*time.Millisecond, "-timeline: sampling period (must be positive)")
	liveDur := flag.Duration("live-duration", 2*time.Second, "-timeline: live load length per use case")
	calOut := flag.String("calibration-out", "aon-calibration.json", "-timeline: where to write the calibration artifact")
	calIn := flag.String("calibration", "", "apply a calibration artifact (written by -timeline) to the simulated predictions")
	widths := flag.String("widths", "", "-timeline: comma-separated worker-pool widths to record per-width calibration entries at (e.g. 1,2,4); empty records one width-agnostic entry per use case")
	flag.Parse()

	if *sampleInterval <= 0 {
		fmt.Fprintf(os.Stderr, "hwreport: -sample-interval must be positive, got %v\n", *sampleInterval)
		os.Exit(2)
	}
	var cal *harness.Calibration
	if *calIn != "" {
		var err error
		cal, err = harness.LoadCalibration(*calIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hwreport:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "hwreport: applying calibration %s (recorded against %s)\n", *calIn, cal.Config)
		if cal.Identity() {
			fmt.Fprintln(os.Stderr, "hwreport: calibration carries identity scales (recorded without live perf events); predictions unchanged")
		}
	}

	var widthList []int
	if *widths != "" {
		for _, part := range strings.Split(*widths, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "hwreport: bad -widths entry %q\n", part)
				os.Exit(2)
			}
			widthList = append(widthList, n)
		}
	}

	if *tlMode {
		runTimeline(machine.ConfigID(*cfgName), *simMsgs, *conns, *size, *sampleInterval, *liveDur, *calOut, cal, *asJSON, widthList)
		return
	}
	if len(widthList) > 0 {
		fmt.Fprintln(os.Stderr, "hwreport: -widths requires -timeline")
		os.Exit(2)
	}

	var rows []Row
	for _, uc := range []workload.UseCase{workload.FR, workload.CBR, workload.SV} {
		row, err := compare(machine.ConfigID(*cfgName), uc, *simMsgs, *liveMsgs, *conns, *size, cal)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hwreport:", err)
			os.Exit(1)
		}
		rows = append(rows, row)
	}

	if *asJSON {
		b, _ := json.MarshalIndent(rows, "", "  ")
		fmt.Println(string(b))
		return
	}
	fmt.Printf("hwreport: simulated %s prediction vs live loopback measurement\n", *cfgName)
	fmt.Printf("%-4s %6s | %8s %8s %8s | %8s %8s %8s  %s\n",
		"uc", "metric", "sim", "live", "ratio", "sim-mps", "live-mps", "", "live source")
	for _, r := range rows {
		src := r.LiveMode
		if r.LiveCounters != nil && r.LiveCounters.DerivedSource == "model" {
			src = "model fallback — " + r.LiveCounters.Notice
		}
		fmt.Printf("%-4s %6s | %8.2f %8.2f %8s | %8.0f %8.0f %8s  %s\n",
			r.UseCase, "CPI", r.Sim.CPI, r.Live.CPI, ratio(r.Live.CPI, r.Sim.CPI),
			r.SimMsgsPerS, r.LiveMsgsPerS, "", src)
		fmt.Printf("%-4s %6s | %8.2f %8.2f %8s |\n",
			"", "BrMPR%", r.Sim.BrMPR, r.Live.BrMPR, ratio(r.Live.BrMPR, r.Sim.BrMPR))
		fmt.Printf("%-4s %6s | %8.2f %8.2f %8s |\n",
			"", "BrFrq%", r.Sim.BranchFreq, r.Live.BranchFreq, ratio(r.Live.BranchFreq, r.Sim.BranchFreq))
		fmt.Printf("%-4s %6s | %8.2f %8.2f %8s |\n",
			"", "MPI%", r.Sim.L2MPI, r.Live.CacheMPI, ratio(r.Live.CacheMPI, r.Sim.L2MPI))
	}
	fmt.Println("ratio = live/sim; MPI compares simulated L2MPI with live last-level cache MPI.")
}

func ratio(live, sim float64) string {
	if sim == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", live/sim)
}

// compare produces one row: simulate, then measure live.
func compare(id machine.ConfigID, uc workload.UseCase, simMsgs, liveMsgs, conns, size int, cal *harness.Calibration) (Row, error) {
	sim, err := simulate(id, uc, simMsgs, cal)
	if err != nil {
		return Row{}, err
	}

	srv, err := gateway.New(gateway.Config{UseCase: uc, Counters: true})
	if err != nil {
		return Row{}, err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return Row{}, err
	}
	rep, loadErr := gateway.RunLoad(gateway.LoadConfig{
		Addr: srv.Addr().String(), UseCase: uc,
		Conns: conns, Messages: liveMsgs, Size: size,
	})
	snap := srv.Snapshot()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	shutErr := srv.Shutdown(ctx)
	cancel()
	if loadErr != nil {
		return Row{}, fmt.Errorf("live %s: %w", uc, loadErr)
	}
	if shutErr != nil {
		return Row{}, fmt.Errorf("live %s shutdown: %w", uc, shutErr)
	}

	row := Row{
		UseCase:      uc.String(),
		SimConfig:    string(id),
		SimMsgsPerS:  sim.MsgPerSec,
		Sim:          sim.Metrics,
		Calibrated:   cal != nil,
		LiveMsgsPerS: rep.MsgsPerSec,
	}
	if c := snap.Counters; c != nil {
		row.LiveMode = c.Mode
		row.Live = c.Derived
		row.LiveCounters = c
	}
	return row, nil
}

// simulate runs the model for one use case and applies the loaded
// calibration (a no-op when cal is nil).
func simulate(id machine.ConfigID, uc workload.UseCase, simMsgs int, cal *harness.Calibration) (harness.AONResult, error) {
	opts := harness.DefaultAONOpts
	opts.MeasureMsgs = simMsgs
	sim, err := harness.RunAON(id, uc, opts)
	if err != nil {
		return sim, fmt.Errorf("simulate %s %s: %w", id, uc, err)
	}
	sim.Metrics = cal.Apply(uc, sim.Metrics)
	return sim, nil
}

// runTimeline is the -timeline mode: one sampling session per use case
// (and, with -widths, per pool width) replayed against the model,
// producing both the comparison table and the calibration artifact.
func runTimeline(id machine.ConfigID, simMsgs, conns, size int, interval, dur time.Duration, calOut string, cal *harness.Calibration, asJSON bool, widths []int) {
	if len(widths) == 0 {
		widths = []int{0} // one width-agnostic entry per use case
	}
	out := &harness.Calibration{Config: string(id), Entries: map[string]harness.CalibrationEntry{}}
	var rows []Row
	for _, uc := range []workload.UseCase{workload.FR, workload.CBR, workload.SV} {
		for _, w := range widths {
			row, entry, err := timelineCompare(id, uc, simMsgs, conns, size, interval, dur, cal, w)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hwreport:", err)
				os.Exit(1)
			}
			out.Entries[harness.EntryKey(uc, w)] = entry
			rows = append(rows, row)
		}
	}
	if err := out.WriteFile(calOut); err != nil {
		fmt.Fprintln(os.Stderr, "hwreport:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "hwreport: wrote calibration artifact to %s\n", calOut)
	if out.Identity() {
		fmt.Fprintln(os.Stderr, "hwreport: session ran without live perf events — artifact carries identity scales")
	}

	if asJSON {
		b, _ := json.MarshalIndent(struct {
			Rows        []Row                `json:"rows"`
			Calibration *harness.Calibration `json:"calibration"`
		}{rows, out}, "", "  ")
		fmt.Println(string(b))
		return
	}
	fmt.Printf("hwreport: simulated %s prediction vs live sampling session (%v interval, %v load)\n", id, interval, dur)
	fmt.Printf("%-4s %5s %8s | %8s %8s %8s %8s | %10s %9s | %s\n",
		"uc", "width", "samples", "sim-cpi", "live-cpi", "scale", "mpi-scl", "live-mps", "p50(us)", "live source")
	for _, r := range rows {
		key := r.UseCase
		if r.Width > 0 {
			key = fmt.Sprintf("%s@%d", r.UseCase, r.Width)
		}
		e := out.Entries[key]
		width := "-"
		if r.Width > 0 {
			width = strconv.Itoa(r.Width)
		}
		fmt.Printf("%-4s %5s %8d | %8.2f %8.2f %8.2f %8.2f | %10.0f %9.0f | %s\n",
			r.UseCase, width, e.Samples, e.SimCPI, e.LiveCPI, e.CPIScale, e.MPIScale,
			e.LiveMsgsPerSec, e.LiveP50US, e.LiveSource)
	}
	fmt.Println("scale = live/sim ratio the artifact stores; 1.00 on model-sourced sessions.")
}

// timelineCompare runs one use case's sampling session at the given
// pool width (0: the gateway default) and averages the session's derived
// metrics into a calibration entry.
func timelineCompare(id machine.ConfigID, uc workload.UseCase, simMsgs, conns, size int, interval, dur time.Duration, cal *harness.Calibration, width int) (Row, harness.CalibrationEntry, error) {
	sim, err := simulate(id, uc, simMsgs, cal)
	if err != nil {
		return Row{}, harness.CalibrationEntry{}, err
	}

	srv, err := gateway.New(gateway.Config{UseCase: uc, Workers: width, Timeline: true, SampleInterval: interval})
	if err != nil {
		return Row{}, harness.CalibrationEntry{}, err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return Row{}, harness.CalibrationEntry{}, err
	}
	rep, loadErr := gateway.RunLoad(gateway.LoadConfig{
		Addr: srv.Addr().String(), UseCase: uc,
		Conns: conns, Duration: dur, Size: size,
	})
	samples := srv.TimelineSamples(0)
	snap := srv.Snapshot()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	shutErr := srv.Shutdown(ctx)
	cancel()
	if loadErr != nil {
		return Row{}, harness.CalibrationEntry{}, fmt.Errorf("live %s: %w", uc, loadErr)
	}
	if shutErr != nil {
		return Row{}, harness.CalibrationEntry{}, fmt.Errorf("live %s shutdown: %w", uc, shutErr)
	}

	// Average the session. Hardware-sourced samples win: if any exist,
	// only they feed the mean (a transient fallback window should not
	// dilute real measurements); otherwise the model-sourced samples
	// stand in and the entry pins identity scales.
	source := "model"
	for _, s := range samples {
		if s.DerivedSource == "hw" {
			source = "hw"
			break
		}
	}
	var n int
	var cpi, mpi, brmpr float64
	for _, s := range samples {
		if s.DerivedSource != source || s.CPI <= 0 {
			continue
		}
		cpi += s.CPI
		mpi += s.CacheMPI
		brmpr += s.BrMPR
		n++
	}
	if n > 0 {
		cpi, mpi, brmpr = cpi/float64(n), mpi/float64(n), brmpr/float64(n)
	}
	entry := harness.NewCalibrationEntry(sim.Metrics, cpi, mpi, brmpr, n, source)
	entry.Width = width
	entry.LiveP50US = float64(rep.Latency.P50US)
	entry.LiveMsgsPerSec = rep.MsgsPerSec

	row := Row{
		UseCase:      uc.String(),
		Width:        width,
		SimConfig:    string(id),
		SimMsgsPerS:  sim.MsgPerSec,
		Sim:          sim.Metrics,
		Calibrated:   cal != nil,
		LiveMsgsPerS: rep.MsgsPerSec,
		Live:         hwcount.Derived{CPI: cpi, CacheMPI: mpi, BrMPR: brmpr},
		LiveSamples:  n,
	}
	if c := snap.Counters; c != nil {
		row.LiveMode = c.Mode
		row.Live.BranchFreq = c.Derived.BranchFreq
	}
	return row, entry, nil
}
