//go:build !unix

package main

import "os"

// notifyUsr1 is a no-op where SIGUSR1 does not exist; the shutdown dump
// still writes the timeline CSV.
func notifyUsr1(chan<- os.Signal) {}
