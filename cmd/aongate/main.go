// Command aongate serves the live AON gateway: a real TCP/HTTP server
// running the paper's FR/CBR/SV pipelines (plus the DPI/AUTH extensions)
// on live bytes with a worker pool sized to GOMAXPROCS, 503 admission
// control, and a /stats endpoint.
//
// Usage:
//
//	aongate -addr :8080                      # serve, default use case FR
//	aongate -usecase SV -workers 2 -queue 8  # pin pool and queue depth
//	curl http://localhost:8080/stats         # live metrics JSON
//
// Request paths select the use case per message (/service/FR, /service/CBR,
// /service/SV, /service/DPI, /service/AUTH); other paths run -usecase.
// SIGINT/SIGTERM drains gracefully (bounded by -drain) and prints the
// final metrics snapshot as JSON on stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/gateway"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	ucName := flag.String("usecase", "FR", "default use case: FR, CBR, SV, DPI, AUTH")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4x workers)")
	maxBody := flag.Int("max-body", 1<<20, "max POST body bytes")
	expr := flag.String("expr", "", "CBR XPath override (default //quantity/text())")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
	flag.Parse()

	uc, err := workload.ParseUseCase(*ucName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aongate:", err)
		os.Exit(2)
	}
	srv, err := gateway.New(gateway.Config{
		UseCase:      uc,
		Workers:      *workers,
		QueueDepth:   *queue,
		MaxBodyBytes: *maxBody,
		Expr:         *expr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "aongate:", err)
		os.Exit(2)
	}
	if err := srv.Start(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "aongate:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "aongate: listening on %s (usecase=%s workers=%d GOMAXPROCS=%d)\n",
		srv.Addr(), uc, srv.Workers(), runtime.GOMAXPROCS(0))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "aongate: draining...")

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "aongate: drain incomplete:", err)
	}
	b, _ := json.MarshalIndent(srv.Metrics.Snapshot(), "", "  ")
	fmt.Println(string(b))
}
