// Command aongate serves the live AON gateway: a real TCP/HTTP server
// running the paper's FR/CBR/SV pipelines (plus the DPI/AUTH extensions)
// on live bytes with a worker pool sized to GOMAXPROCS, 503 admission
// control, and a /stats endpoint.
//
// Usage:
//
//	aongate -addr :8080                      # serve, default use case FR
//	aongate -usecase SV -workers 2 -queue 8  # pin pool and queue depth
//	aongate -order host1:9081 -error host1:9082  # forward to real backends
//	curl http://localhost:8080/stats         # live metrics JSON
//
// Request paths select the use case per message (/service/FR, /service/CBR,
// /service/SV, /service/DPI, /service/AUTH); other paths run -usecase.
//
// With -order/-error set (cmd/aonback instances, local or remote), the
// gateway is the paper's true forwarding proxy: pipeline outcomes are
// relayed to the routed backend over pooled keep-alive connections with
// retries, background health probing, and 502/504 mapping; /stats gains
// a per-backend "upstream" section. Without them it answers in place.
//
// With -counters, /stats gains a "counters" section: windowed
// perf_event_open deltas and derived CPI/cache-MPI/BrMPR (the paper's
// VTune metrics on live hardware) including a per-worker skew view (each
// pool worker pins its OS thread and opens its own event group),
// degrading to runtime-metrics-only with a startup notice where perf
// events are denied.
//
// With -timeline (implies -counters), the gateway runs a VTune-style
// sampling session: every -sample-interval it snapshots counter windows,
// throughput deltas, latency percentiles, runtime and pool gauges into a
// bounded ring served on GET /timeline?last=N. SIGUSR1 dumps the ring as
// CSV to -timeline-out without stopping the server; shutdown writes the
// final ring there too. With -timeline-flush-interval (implies -timeline),
// -timeline-out becomes an append-only CSV instead: new samples are
// appended incrementally each interval (header written once, exactly-once
// rows), so a crash loses at most one interval and long sessions are not
// bounded by the ring — SIGUSR1 then forces an immediate flush rather
// than a whole-ring dump. -trace-every N samples one request in N through
// per-stage monotonic stamps, served as the /stats "stages" section.
//
// With -adaptive, an analytic M/M/c capacity controller
// (internal/capacity) runs beside the pool: every -adapt-interval it
// reads the traced stage demands and the last window's load, solves the
// queueing model, and resizes the worker pool and the 503 admission
// bound toward -target-p99 — falling back to the static -workers/-queue
// settings when observations go stale or the model diverges from
// measurement. /stats gains a "capacity" section with the decision,
// predicted-vs-observed error, and per-use-case model error.
//
// With -trace, the gateway runs the distributed tracing plane
// (internal/dtrace): every request records real spans around
// read/queue/parse/process/forward/write, adopts the client's
// X-AON-Trace ID when present (aonload -trace-client, aoncamp
// trace_every), propagates context on upstream forwards so aonback
// records a joined server-side span, and tail-samples completed traces
// into a ring served on GET /traces?last=N — shed/idle-reaped/5xx and
// slow requests always kept, 1-in—trace-keep-every otherwise. Tail
// outcomes additionally emit a rate-limited structured slow-request
// line (trace ID, use case, outcome, per-stage breakdown) on stderr.
// cmd/aontrace assembles /traces output across nodes into critical-path
// reports; cmd/aonfleet scrapes it into a fleet-wide traces.jsonl.
//
// -pprof serves net/http/pprof on a separate listener (off by default):
// aongate -pprof localhost:6060, then `go tool pprof
// http://localhost:6060/debug/pprof/profile`.
//
// SIGINT/SIGTERM drains gracefully (bounded by -drain) and prints the
// final metrics snapshot as JSON on stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux (served only via -pprof)
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/gateway"
	"repro/internal/hwcount"
	"repro/internal/session"
	"repro/internal/upstream"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	ucName := flag.String("usecase", "FR", "default use case: FR, CBR, SV, DPI, AUTH")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4x workers)")
	maxBody := flag.Int("max-body", 1<<20, "max POST body bytes")
	expr := flag.String("expr", "", "CBR XPath override (default //quantity/text())")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
	idle := flag.Duration("idle-timeout", 0, "client connection read deadline (0 = 60s default, negative disables)")
	order := flag.String("order", "", "order backend address (enables upstream forwarding)")
	errAddr := flag.String("error", "", "error backend address (enables upstream forwarding)")
	upRetries := flag.Int("up-retries", 0, "extra upstream tries on dial/IO failure (0 = default 2)")
	upTimeout := flag.Duration("up-timeout", 0, "per-try upstream deadline (0 = default 5s)")
	upIdle := flag.Int("up-idle", 0, "max idle keep-alive conns per backend (0 = default 8)")
	upMinIdle := flag.Int("up-min-idle", 0, "pre-warm each backend pool to this many idle conns (0 = off)")
	upLifetime := flag.Duration("up-max-lifetime", 0, "evict pooled backend conns older than this (0 = no limit)")
	hwCounters := flag.Bool("counters", false, "enable the live measurement layer: perf_event_open counters on /stats (falls back to runtime metrics where perf is denied)")
	timeline := flag.Bool("timeline", false, "run a sampling session: fixed-interval samples on GET /timeline (implies -counters)")
	sampleInterval := flag.Duration("sample-interval", 100*time.Millisecond, "timeline sampling period (must be positive)")
	sampleCap := flag.Int("sample-cap", 0, "timeline ring capacity in samples (0 = 600)")
	traceEvery := flag.Int("trace-every", 0, "trace request stages for 1 in every N requests (0 = off)")
	timelineOut := flag.String("timeline-out", "aon-timeline.csv", "CSV path for timeline dumps (SIGUSR1 and shutdown)")
	timelineFlush := flag.Duration("timeline-flush-interval", 0, "append new timeline samples to -timeline-out every interval (implies -timeline; crash-safe, header written once; 0 = whole-ring dumps on SIGUSR1/shutdown only)")
	adaptive := flag.Bool("adaptive", false, "run the capacity controller: the M/M/c model resizes the worker pool and moves the 503 admission bound from live observations (implies -trace-every)")
	targetP99 := flag.Duration("target-p99", 0, "adaptive mode: p99 latency bound the controller sizes for (0 = default 100ms)")
	adaptInterval := flag.Duration("adapt-interval", 0, "adaptive mode: control-loop period (0 = default 500ms)")
	minWorkers := flag.Int("min-workers", 0, "adaptive mode: pool floor (0 = default 1)")
	maxWorkers := flag.Int("max-workers", 0, "adaptive mode: pool ceiling (0 = default 4x -workers)")
	maxInflight := flag.Int64("max-inflight", 0, "adaptive mode: admission-bound ceiling (0 = default 16x(workers+queue))")
	trace := flag.Bool("trace", false, "run the distributed tracing plane: per-request spans, X-AON-Trace adoption/propagation, tail-sampled ring on GET /traces, slow-request log on stderr")
	traceNode := flag.String("trace-node", "", "node name stamped on this gateway's spans (default gateway; aonfleet passes role/id)")
	traceSlowOver := flag.Duration("trace-slow-over", 0, "tail sampling: always keep traces slower than this (0 = default 50ms, negative disables the slow rule)")
	traceKeepEvery := flag.Int("trace-keep-every", 0, "tail sampling: keep 1 in N ordinary traces (0 = default 64)")
	traceCap := flag.Int("trace-cap", 0, "kept-trace ring capacity (0 = default 256)")
	slowLogPerSec := flag.Int("slow-log-rate", 0, "slow-request log lines per second before suppression (0 = default 10)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
	flag.Parse()

	uc, err := workload.ParseUseCase(*ucName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aongate:", err)
		os.Exit(2)
	}
	if *sampleInterval <= 0 {
		fmt.Fprintf(os.Stderr, "aongate: -sample-interval must be positive, got %v\n", *sampleInterval)
		os.Exit(2)
	}
	if *traceEvery < 0 {
		fmt.Fprintf(os.Stderr, "aongate: -trace-every must be >= 0, got %d\n", *traceEvery)
		os.Exit(2)
	}
	if *timelineFlush < 0 {
		fmt.Fprintf(os.Stderr, "aongate: -timeline-flush-interval must be >= 0, got %v\n", *timelineFlush)
		os.Exit(2)
	}
	if (*hwCounters || *timeline || *timelineFlush > 0) && !hwcount.Supported() {
		fmt.Fprintln(os.Stderr, "aongate: -counters/-timeline need perf events, which this OS does not support")
		os.Exit(2)
	}

	// Incremental flush mode: -timeline-out becomes an append-only CSV
	// that survives a crash — each interval writes only the samples the
	// ring gained since the last flush, and the header is written once
	// (only when the file starts empty, so restarts keep appending).
	var flushFile *os.File
	var flushDst *session.Appender
	if *timelineFlush > 0 {
		f, err := os.OpenFile(*timelineOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aongate: -timeline-out:", err)
			os.Exit(1)
		}
		st, err := f.Stat()
		if err != nil {
			fmt.Fprintln(os.Stderr, "aongate: -timeline-out:", err)
			os.Exit(1)
		}
		flushFile = f
		flushDst = session.NewAppender(f, st.Size() == 0)
		defer flushFile.Close()
	}

	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aongate: -pprof:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "aongate: pprof on http://%s/debug/pprof/\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "aongate: pprof:", err)
			}
		}()
	}

	var slowLog io.Writer
	if *trace {
		slowLog = os.Stderr
	}
	srv, err := gateway.New(gateway.Config{
		UseCase:      uc,
		Workers:      *workers,
		QueueDepth:   *queue,
		MaxBodyBytes: *maxBody,
		Expr:         *expr,
		IdleTimeout:  *idle,
		Upstream: upstream.Config{
			Order:             *order,
			Error:             *errAddr,
			Retries:           *upRetries,
			TryTimeout:        *upTimeout,
			MaxIdlePerBackend: *upIdle,
			MinIdlePerBackend: *upMinIdle,
			MaxConnLifetime:   *upLifetime,
		},
		Counters:              *hwCounters,
		Timeline:              *timeline,
		SampleInterval:        *sampleInterval,
		SampleCapacity:        *sampleCap,
		TimelineFlush:         flushDst,
		TimelineFlushInterval: *timelineFlush,
		TraceEvery:            *traceEvery,
		Adaptive:              *adaptive,
		TargetP99:             *targetP99,
		AdaptInterval:         *adaptInterval,
		MinWorkers:            *minWorkers,
		MaxWorkers:            *maxWorkers,
		MaxInflight:           *maxInflight,
		Trace:                 *trace,
		TraceNode:             *traceNode,
		TraceSlowOver:         *traceSlowOver,
		TraceKeepEvery:        *traceKeepEvery,
		TraceCapacity:         *traceCap,
		SlowLog:               slowLog,
		SlowLogPerSec:         *slowLogPerSec,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "aongate:", err)
		os.Exit(2)
	}
	if err := srv.Start(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "aongate:", err)
		os.Exit(1)
	}
	mode := "in-place"
	if *order != "" || *errAddr != "" {
		mode = fmt.Sprintf("forwarding (order=%s error=%s)", *order, *errAddr)
	}
	fmt.Fprintf(os.Stderr, "aongate: listening on %s (usecase=%s workers=%d GOMAXPROCS=%d mode=%s)\n",
		srv.Addr(), uc, srv.Workers(), runtime.GOMAXPROCS(0), mode)
	if cmode, notice := srv.CountersMode(); cmode != "off" {
		fmt.Fprintf(os.Stderr, "aongate: counters mode=%s", cmode)
		if notice != "" {
			fmt.Fprintf(os.Stderr, " — %s", notice)
		}
		fmt.Fprintln(os.Stderr)
	}

	switch {
	case flushDst != nil:
		fmt.Fprintf(os.Stderr, "aongate: sampling session every %v (GET /timeline), appending to %s every %v\n",
			*sampleInterval, *timelineOut, *timelineFlush)
	case *timeline:
		fmt.Fprintf(os.Stderr, "aongate: sampling session every %v (GET /timeline, SIGUSR1 dumps CSV to %s)\n",
			*sampleInterval, *timelineOut)
	}
	if *adaptive {
		fmt.Fprintln(os.Stderr, "aongate: adaptive capacity control on (/stats carries the capacity section)")
	}
	if *trace {
		fmt.Fprintln(os.Stderr, "aongate: distributed tracing on (GET /traces, slow-request log on stderr)")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	usr1 := make(chan os.Signal, 1)
	notifyUsr1(usr1)
	for running := true; running; {
		select {
		case <-usr1:
			if flushDst != nil {
				// Flush mode: push pending samples to the append file now
				// instead of re-dumping the whole ring over it.
				if n, err := srv.FlushTimeline(); err != nil {
					fmt.Fprintln(os.Stderr, "aongate: timeline flush:", err)
				} else {
					fmt.Fprintf(os.Stderr, "aongate: flushed %d timeline samples to %s\n", n, *timelineOut)
				}
			} else {
				// On-demand dump: snapshot the ring to CSV, keep serving.
				dumpTimeline(srv, *timelineOut)
			}
		case <-sig:
			running = false
		}
	}
	fmt.Fprintln(os.Stderr, "aongate: draining...")

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "aongate: drain incomplete:", err)
	}
	if *timeline && flushDst == nil {
		// The ring outlives the stopped sampler, so the shutdown dump
		// includes the session's final samples. In flush mode the final
		// samples were already appended by the shutdown-path flush.
		dumpTimeline(srv, *timelineOut)
	}
	b, _ := json.MarshalIndent(srv.Snapshot(), "", "  ")
	fmt.Println(string(b))
}

// dumpTimeline writes the sampling session's kept ring as CSV.
func dumpTimeline(srv *gateway.Server, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aongate: timeline dump:", err)
		return
	}
	n, werr := srv.WriteTimelineCSV(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintln(os.Stderr, "aongate: timeline dump:", werr)
		return
	}
	fmt.Fprintf(os.Stderr, "aongate: wrote %d timeline samples to %s\n", n, path)
}
