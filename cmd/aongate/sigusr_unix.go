//go:build unix

package main

import (
	"os"
	"os/signal"
	"syscall"
)

// notifyUsr1 wires SIGUSR1 — the on-demand timeline CSV dump trigger —
// on platforms that have it.
func notifyUsr1(c chan<- os.Signal) {
	signal.Notify(c, syscall.SIGUSR1)
}
