// Command aonfleet is the one-command front end for multi-process (and
// multi-machine) AON experiments: it reads a declarative JSON topology,
// launches the aonback/aongate fleet in dependency order — backends,
// then gateways, each readiness-probed on /stats before the next tier
// starts — or attaches to already-running instances by address (no SSH,
// no agent: any node reachable over HTTP can join), keeps a cross-node
// sampling session running by scraping every node's /stats and
// /timeline on a fixed interval, and, with -sweep, drives one load
// point per configured connection count.
//
// Usage:
//
//	aonfleet -config fleet.json -sweep      # launch, sweep, report, stop
//	aonfleet -config fleet.json             # launch + observe until ^C
//	aonfleet -config fleet.json -print-report
//
// A config with a "campaign" block (a full internal/campaign scenario
// spec: phased traffic shapes plus scripted fault storms) replaces the
// sweep: the fleet launches, the campaign runs against the first
// gateway — with empty "backends" filled from the topology's backend
// nodes so fault steps hit their live POST /fault endpoints — and the
// per-phase report lands next to the fleet report. "sweep.conns" and
// "campaign" are mutually exclusive.
//
// Topology config (see EXPERIMENTS.md for the full walkthrough):
//
//	{
//	  "out_dir": "fleet-out",
//	  "bin_dir": ".",
//	  "nodes": [
//	    {"role": "backend", "endpoint": "order", "addr": "127.0.0.1:9081", "count": 2},
//	    {"role": "backend", "endpoint": "error", "addr": "127.0.0.1:9091"},
//	    {"role": "gateway", "addr": "127.0.0.1:8080"},
//	    {"role": "load"}
//	  ],
//	  "sweep": {"conns": [1, 2, 4, 8], "messages": 2000, "usecase": "FR"}
//	}
//
// Remote machines join via "attach": true plus their address — start
// aonback/aongate there by hand (or under systemd), and aonfleet merges
// their samples into the same session. Cross-node alignment is by each
// node's own monotonic sample clock (rel_ms = t_ms - the node's first
// sample), never by comparing wall clocks across machines.
//
// Artifacts land in out_dir: per-node logs, merged-session.jsonl
// (written as scraped — crash-safe), per-node session CSVs, a merged
// CSV (node/role/rel_ms columns prefixed; still readable by the stock
// session tooling and cmd/aoncap), load reports per sweep point, and
// fleet-report.txt — the combined Figure-5/6-style view with per-node
// and fleet-total throughput, p50/p99, CPI/cache-MPI where nodes carry
// counters, and capacity model-error columns when a gateway runs
// -adaptive (add it via the gateway node's "flags").
//
// Exit status: 0 only when the campaign completed and every launched
// node exited cleanly; any node failure, readiness timeout, or sweep
// error is non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/fleet"
)

func main() {
	cfgPath := flag.String("config", "fleet.json", "fleet topology JSON")
	sweep := flag.Bool("sweep", false, "drive the configured sweep campaign, then shut the fleet down")
	printReport := flag.Bool("print-report", true, "print the combined fleet report to stdout")
	flag.Parse()

	cfg, err := fleet.LoadFile(*cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aonfleet:", err)
		os.Exit(2)
	}
	co, err := fleet.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aonfleet:", err)
		os.Exit(2)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if err := co.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "aonfleet:", err)
		co.Shutdown()
		os.Exit(1)
	}

	campaignErr := runCampaign(co, cfg, *sweep, sig)

	report, finishErr := co.Finish()
	if finishErr != nil {
		fmt.Fprintln(os.Stderr, "aonfleet:", finishErr)
	} else if *printReport {
		fmt.Print(report)
		if cr := co.CampaignReport(); cr != "" {
			fmt.Print(cr)
		}
	}
	shutdownErr := co.Shutdown()
	if shutdownErr != nil {
		fmt.Fprintln(os.Stderr, "aonfleet:", shutdownErr)
	}
	if campaignErr != nil || finishErr != nil || shutdownErr != nil {
		os.Exit(1)
	}
}

// runCampaign drives the configured load: a scenario campaign when the
// config carries one (its presence is the opt-in — no flag needed), the
// connection sweep under -sweep, or an observe-only hold until a signal
// arrives. Both drivers are interruptible via the process signal.
func runCampaign(co *fleet.Coordinator, cfg *fleet.Config, sweep bool, sig chan os.Signal) error {
	if cfg.Campaign != nil {
		return interruptible(co.RunCampaign, "campaign", sig)
	}
	if sweep {
		return interruptible(co.RunSweep, "sweep", sig)
	}
	fmt.Fprintln(os.Stderr, "aonfleet: fleet up, scraping; ^C to stop")
	<-sig
	return nil
}

// interruptible runs the driver in a goroutine so a signal can abandon
// it (the fleet teardown still runs).
func interruptible(run func() error, what string, sig chan os.Signal) error {
	done := make(chan error, 1)
	go func() { done <- run() }()
	select {
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "aonfleet:", err)
		}
		return err
	case s := <-sig:
		return fmt.Errorf("aonfleet: %s interrupted by %v", what, s)
	}
}
