// Command aonback is the minimal order/error endpoint of the paper's
// end-to-end FR topology: the separate backend the AON device forwards
// to. Run one per endpoint (typically an "order" and an "error"
// instance), point cmd/aongate at them with -order/-error, and the
// gateway becomes a true forwarding proxy — on one machine over
// loopback, or across two machines for the paper's real netperf-style
// end-to-end setup.
//
// Usage:
//
//	aonback -addr :9081 -name order                 # order endpoint
//	aonback -addr :9082 -name error                 # error endpoint
//	aonback -addr :9081 -resp-size 2048 -delay 2ms  # heavier reverse path
//
// -resp-size pads the JSON ack (reverse-path wire cost); -delay emulates
// backend service time. SIGINT/SIGTERM prints the final request/byte
// counters as JSON on stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/upstream"
)

func main() {
	addr := flag.String("addr", ":9081", "listen address")
	name := flag.String("name", "order", "endpoint role tag: order or error")
	respSize := flag.Int("resp-size", 128, "approximate response body bytes")
	delay := flag.Duration("delay", 0, "per-request service delay")
	flag.Parse()

	srv, err := upstream.StartBackend(*addr, upstream.BackendConfig{
		Name:      *name,
		RespBytes: *respSize,
		Delay:     *delay,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "aonback:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "aonback: %s endpoint listening on %s (resp-size=%d delay=%s)\n",
		*name, srv.Addr(), *respSize, *delay)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
	fmt.Printf(`{"name":%q,"requests":%d,"dropped":%d,"bytes_in":%d,"bytes_out":%d,"uptime":%q}`+"\n",
		*name, srv.Requests.Load(), srv.Failed.Load(),
		srv.BytesIn.Load(), srv.BytesOut.Load(), time.Since(startTime).Round(time.Millisecond))
}

var startTime = time.Now()
