// Command aonback is the minimal order/error endpoint of the paper's
// end-to-end FR topology: the separate backend the AON device forwards
// to. Run one per endpoint (typically an "order" and an "error"
// instance), point cmd/aongate at them with -order/-error, and the
// gateway becomes a true forwarding proxy — on one machine over
// loopback, or across two machines for the paper's real netperf-style
// end-to-end setup.
//
// Usage:
//
//	aonback -addr :9081 -name order                 # order endpoint
//	aonback -addr :9082 -name error                 # error endpoint
//	aonback -addr :9081 -resp-size 2048 -delay 2ms  # heavier reverse path
//	aonback -addr :9081 -fail-first 50              # fault injection
//	curl http://localhost:9081/stats                # live counters JSON
//	curl http://localhost:9081/fault                # live fault state
//	curl -d '{"error_rate":0.2}' http://localhost:9081/fault  # script a fault
//
// -resp-size pads the JSON ack (reverse-path wire cost); -delay emulates
// backend service time; -fail-first N drops the first N requests without
// responding (connection closed — exercises the gateway's retry and
// health-probe paths). POST /fault scripts runtime fault storms —
// fail-next-N, error-rate, latency-inflation, down-for-duration — which
// is how cmd/aoncamp drives scripted fault campaigns; -seed keys the
// deterministic error-rate draw. GET /stats serves the live counters as
// JSON — request/drop/byte totals, the fault-injection state, and the
// service latency histogram — which is how cmd/aonfleet scrapes backends
// into the merged cross-node session. SIGINT/SIGTERM prints the same
// snapshot on stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux (served only via -pprof)
	"os"
	"os/signal"
	"syscall"

	"repro/internal/upstream"
)

func main() {
	addr := flag.String("addr", ":9081", "listen address")
	name := flag.String("name", "order", "endpoint role tag: order or error")
	respSize := flag.Int("resp-size", 128, "approximate response body bytes")
	delay := flag.Duration("delay", 0, "per-request service delay")
	failFirst := flag.Int("fail-first", 0, "drop the first N requests without responding (fault injection)")
	seed := flag.Uint64("seed", 0, "seed for the deterministic error-rate fault draw")
	traceNode := flag.String("trace-node", "", "node name stamped on this backend's trace spans (default -name; aonfleet passes role/id)")
	traceCap := flag.Int("trace-cap", 0, "kept-trace ring capacity (0 = default 1024)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6061; empty = off)")
	flag.Parse()

	if *failFirst < 0 {
		fmt.Fprintf(os.Stderr, "aonback: -fail-first must be >= 0, got %d\n", *failFirst)
		os.Exit(2)
	}
	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aonback: -pprof:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "aonback: pprof on http://%s/debug/pprof/\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "aonback: pprof:", err)
			}
		}()
	}
	srv, err := upstream.StartBackend(*addr, upstream.BackendConfig{
		Name:          *name,
		RespBytes:     *respSize,
		Delay:         *delay,
		FailFirst:     *failFirst,
		Seed:          *seed,
		TraceNode:     *traceNode,
		TraceCapacity: *traceCap,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "aonback:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "aonback: %s endpoint listening on %s (resp-size=%d delay=%s fail-first=%d seed=%d), stats on GET /stats, fault control on POST /fault\n",
		*name, srv.Addr(), *respSize, *delay, *failFirst, *seed)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
	b, _ := json.MarshalIndent(srv.Stats(), "", "  ")
	fmt.Println(string(b))
}
