// Command aoncamp runs a scenario campaign against a live AON gateway:
// a JSON spec describing time-phased traffic shapes (constant, ramp,
// diurnal, flash crowd, slow-loris) and scripted backend fault storms,
// executed phase by phase while the gateway's /stats surface is sampled
// into a phase-tagged session timeline. The output is a per-phase
// Figure-5/6-style report — offered vs delivered load, latency
// percentiles, stage windows, capacity model-error columns — plus
// crash-safe JSONL/CSV artifacts the stock session readers parse.
//
// Usage:
//
//	aoncamp -spec campaign.json -addr localhost:8080
//	aoncamp -spec campaign.json -selfgate -selfback 2 -out artifacts/
//	aoncamp -spec campaign.json -selfgate -idle-timeout 150ms   # slow-loris demo
//
// -selfgate stands the gateway up in-process on loopback (like
// `aonload -sweep` does), so one command runs a whole campaign; with
// -selfback N it also self-hosts N fault-injectable backends, rewiring
// the spec's backends list to them (first = order route, second = error
// route). Fault steps in the spec then land on live POST /fault
// endpoints.
//
// Artifacts land in -out: session.jsonl + session.csv (written by the
// runner, flushed per row), campaign-report.txt (the formatted report),
// campaign-result.json (the full machine-readable result).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/campaign"
	"repro/internal/gateway"
	"repro/internal/upstream"
)

func main() {
	specPath := flag.String("spec", "", "campaign spec JSON file (required)")
	addr := flag.String("addr", "", "gateway address (overrides the spec's addr)")
	out := flag.String("out", "aon-campaign", "artifact directory (session JSONL/CSV, report, result JSON)")
	seed := flag.Uint64("seed", 0, "override the spec's generator seed (0 = keep the spec's)")
	selfgate := flag.Bool("selfgate", false, "self-host an in-process gateway on loopback")
	workers := flag.Int("workers", 2, "selfgate: worker-pool width")
	idle := flag.Duration("idle-timeout", 2*time.Second, "selfgate: client idle timeout (slow-loris phases shed when their trickle interval exceeds this)")
	traceEvery := flag.Int("trace-every", 4, "selfgate: stage-trace 1 in N requests (0 = off; stage and model report columns need it)")
	selfback := flag.Int("selfback", 0, "self-host N loopback backends and point the spec's backends list at them")
	respSize := flag.Int("resp-size", 128, "self-hosted backend response body bytes")
	backDelay := flag.Duration("back-delay", 0, "self-hosted backend service delay per message")
	printReport := flag.Bool("print-report", true, "print the formatted report to stderr")
	flag.Parse()

	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "aoncamp: -spec is required")
		os.Exit(2)
	}
	spec, err := campaign.LoadSpec(*specPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aoncamp:", err)
		os.Exit(2)
	}
	if *seed != 0 {
		spec.Seed = *seed
	}

	// Self-hosted backends: replace the spec's backend list so fault
	// steps hit live /fault endpoints, and (with -selfgate) wire them as
	// the gateway's order/error routes.
	if *selfback > 0 {
		var addrs []string
		for i := 0; i < *selfback; i++ {
			name := "order"
			if i == 1 {
				name = "error"
			} else if i > 1 {
				name = fmt.Sprintf("back-%d", i)
			}
			b, err := upstream.StartBackend("127.0.0.1:0", upstream.BackendConfig{
				Name: name, RespBytes: *respSize, Delay: *backDelay, Seed: spec.Seed + uint64(i),
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "aoncamp: backend:", err)
				os.Exit(1)
			}
			defer b.Close()
			addrs = append(addrs, b.Addr().String())
			fmt.Fprintf(os.Stderr, "aoncamp: backend %s on %s (POST /fault live)\n", name, b.Addr())
		}
		spec.Backends = addrs
	}
	// Validation runs after the -selfback rewiring so fault steps are
	// checked against the backends that will actually serve them.
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "aoncamp:", err)
		os.Exit(2)
	}

	target := *addr
	if *selfgate {
		up := upstream.Config{}
		if len(spec.Backends) > 0 {
			up.Order = spec.Backends[0]
		}
		if len(spec.Backends) > 1 {
			up.Error = spec.Backends[1]
		}
		srv, err := gateway.New(gateway.Config{
			Workers:     *workers,
			TraceEvery:  *traceEvery,
			IdleTimeout: *idle,
			Upstream:    up,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "aoncamp: gateway:", err)
			os.Exit(1)
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			fmt.Fprintln(os.Stderr, "aoncamp: gateway:", err)
			os.Exit(1)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		target = srv.Addr().String()
		mode := "in-place"
		if up.Enabled() {
			mode = fmt.Sprintf("forwarding (order=%s error=%s)", up.Order, up.Error)
		}
		fmt.Fprintf(os.Stderr, "aoncamp: gateway on %s, %d workers, idle timeout %v, %s\n",
			target, *workers, *idle, mode)
	}

	res, err := campaign.Run(spec, campaign.Options{
		Addr:   target,
		OutDir: *out,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "aoncamp:", err)
		os.Exit(1)
	}

	report := campaign.FormatReport(res)
	resultJSON, _ := json.MarshalIndent(res, "", "  ")
	if *out != "" {
		writeArtifact(filepath.Join(*out, "campaign-report.txt"), []byte(report))
		writeArtifact(filepath.Join(*out, "campaign-result.json"), append(resultJSON, '\n'))
	}
	if *printReport {
		fmt.Fprint(os.Stderr, report)
	}
	fmt.Println(string(resultJSON))
}

func writeArtifact(path string, b []byte) {
	if err := os.WriteFile(path, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "aoncamp:", err)
		os.Exit(1)
	}
}
