package repro

import (
	"fmt"
	"testing"

	"repro/internal/harness"
	"repro/internal/perf/machine"
	"repro/internal/workload"
)

// BenchmarkExtensionUseCases runs the paper's future-work operations —
// deep packet inspection and HMAC-SHA1 message authentication (Section 6)
// — across the dual-processing transitions, extending Figure 3's spectrum
// beyond SV.
func BenchmarkExtensionUseCases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i > 0 {
			continue
		}
		fmt.Println("Extension: future-work use cases (DPI, AUTH) on the Figure 3 grid")
		for _, uc := range workload.ExtendedUseCases {
			results := map[machine.ConfigID]harness.AONResult{}
			for _, id := range machine.AllConfigs {
				r, err := harness.RunAON(id, uc, benchAONOpts)
				if err != nil {
					b.Fatal(err)
				}
				results[id] = r
			}
			fmt.Printf("%s throughput (Mbps):", uc)
			for _, id := range machine.AllConfigs {
				fmt.Printf("  %s=%.0f", id, results[id].Mbps)
			}
			fmt.Println()
			for _, p := range harness.ScalingPairs {
				from, to := results[p.From].Mbps, results[p.To].Mbps
				fmt.Printf("  scaling %-12s %.2f\n", p.Name, to/from)
			}
			r := results[machine.OneCPm]
			fmt.Printf("  1CPm metrics: %s\n", r.Metrics)
		}
	}
}

// BenchmarkExtensionMulticore extends the study to a four-core machine
// (the paper's other named future work): SV scaling from one to two to
// four Pentium M cores sharing one L2.
func BenchmarkExtensionMulticore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i > 0 {
			continue
		}
		fmt.Println("Extension: multicore scaling (SV on 1, 2, 4 Pentium M cores)")
		var base float64
		for _, id := range []machine.ConfigID{machine.OneCPm, machine.TwoCPm, machine.FourCPm} {
			r, err := harness.RunAON(id, workload.SV, benchAONOpts)
			if err != nil {
				b.Fatal(err)
			}
			if base == 0 {
				base = r.Mbps
			}
			fmt.Printf("  %-5s %8.0f Mbps  scaling %.2f  CPI=%.2f BTPI=%.2f%%\n",
				id, r.Mbps, r.Mbps/base, r.Metrics.CPI, r.Metrics.BTPI)
		}
		fmt.Println("  (the softirq serialized on CPU0 and the gigabit ingress bound the curve)")
	}
}
