package repro

import (
	"context"
	"testing"
	"time"

	"repro/internal/gateway"
	"repro/internal/upstream"
	"repro/internal/workload"
)

// benchGateway measures the live gateway end to end over loopback: one
// keep-alive connection posting AONBench 5 KB order documents, full
// socket/framing/pipeline/response round trip per iteration. SetBytes is
// the request wire size, so ns/op and MB/s are directly comparable to
// the simulated per-message costs.
func benchGateway(b *testing.B, uc workload.UseCase) {
	benchGatewayCfg(b, uc, gateway.Config{UseCase: uc})
}

func benchGatewayCfg(b *testing.B, uc workload.UseCase, cfg gateway.Config) {
	srv, err := gateway.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	cl, err := gateway.Dial(srv.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	// A small pool of distinct messages keeps content varied (both CBR
	// routes, realistic branch behavior) without generation on the path.
	const pool = 16
	reqs := make([][]byte, pool)
	for i := range reqs {
		reqs[i] = workload.HTTPRequest(i, uc)
	}
	b.SetBytes(int64(len(reqs[0])))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := cl.Do(reqs[i%pool], 30*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Status != 200 {
			b.Fatalf("status %d", resp.Status)
		}
	}
}

func BenchmarkGatewayFR(b *testing.B)  { benchGateway(b, workload.FR) }
func BenchmarkGatewayCBR(b *testing.B) { benchGateway(b, workload.CBR) }
func BenchmarkGatewaySV(b *testing.B)  { benchGateway(b, workload.SV) }

// BenchmarkGatewayTracing guards the stage-trace overhead: the off/
// sampled/every sub-benchmarks are the same CBR round trip with tracing
// disabled, sampling 1-in-16 (the aonload sweep default), and stamping
// every request. The sampled case is the acceptance bar — it must stay
// within ~3% of off (compare ns/op across sub-benchmarks; the stamps are
// a few time.Now calls plus lock-free histogram adds on 1/16 of
// requests, invisible next to a socket round trip).
func BenchmarkGatewayTracing(b *testing.B) {
	for _, c := range []struct {
		name  string
		every int
	}{{"off", 0}, {"sampled16", 16}, {"every", 1}} {
		b.Run(c.name, func(b *testing.B) {
			benchGatewayCfg(b, workload.CBR, gateway.Config{
				UseCase:    workload.CBR,
				TraceEvery: c.every,
			})
		})
	}
}

// BenchmarkGatewayFRDTraced guards the distributed-tracing overhead:
// the same FR round trip as BenchmarkGatewayFR with Config.Trace on, so
// every request acquires a pooled recorder, stamps real spans around
// every stage, and runs the tail-sampling decision (default 1-in-64
// probabilistic keep). The acceptance bar is ns/op within ~3% of
// BenchmarkGatewayFR — the recorder is pooled and span stamping is a
// handful of time.Now calls, so the delta must stay in the noise of a
// loopback round trip. BenchmarkGatewayFR itself must not move at all
// (allocs/op 4, gated by cmd/benchguard): the untraced path costs two
// nil checks and a pointer reset.
func BenchmarkGatewayFRDTraced(b *testing.B) {
	benchGatewayCfg(b, workload.FR, gateway.Config{
		UseCase: workload.FR,
		Trace:   true,
	})
}

// BenchmarkGatewayFRForwarded is BenchmarkGatewayFR with a real upstream
// hop: the gateway forwards every message to a loopback order backend
// over the keep-alive pool and relays the ack. The delta against
// BenchmarkGatewayFR is the forwarding overhead — the second network
// round trip the paper's end-to-end FR topology adds over in-place mode.
func BenchmarkGatewayFRForwarded(b *testing.B) {
	be, err := upstream.StartBackend("127.0.0.1:0", upstream.BackendConfig{Name: "order"})
	if err != nil {
		b.Fatal(err)
	}
	defer be.Close()
	benchGatewayCfg(b, workload.FR, gateway.Config{
		UseCase:  workload.FR,
		Upstream: upstream.Config{Order: be.Addr().String()},
	})
}
