// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation section, printing paper-vs-measured comparisons and
// the qualitative shape checks, plus the ablation benches DESIGN.md calls
// out. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark runs its full experiment once per b.N iteration; the
// interesting output is the printed tables (b.N is forced to stay small by
// the experiment runtime).
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/harness"
	"repro/internal/netperf"
	"repro/internal/perf/machine"
	"repro/internal/workload"
)

// Experiment sizing for the benches: large enough for steady state.
var benchNetperfOpts = harness.NetperfOpts{WarmupMs: 2, MeasureMs: 8}
var benchAONOpts = harness.AONOpts{WarmupMsgs: 150, MeasureMsgs: 700, Window: 32}

// The matrices are expensive; share them across benchmarks within one
// `go test -bench` process.
var (
	netperfOnce sync.Once
	netperfMx   harness.NetperfMatrix
	aonOnce     sync.Once
	aonMx       harness.AONMatrix
	aonErr      error
)

func netperfMatrix() harness.NetperfMatrix {
	netperfOnce.Do(func() { netperfMx = harness.RunNetperfMatrix(benchNetperfOpts) })
	return netperfMx
}

func aonMatrix(b *testing.B) harness.AONMatrix {
	aonOnce.Do(func() { aonMx, aonErr = harness.RunAONMatrix(benchAONOpts) })
	if aonErr != nil {
		b.Fatal(aonErr)
	}
	return aonMx
}

func reportChecks(b *testing.B, checks []harness.ShapeCheck) {
	b.Helper()
	failed := harness.FailedChecks(checks)
	fmt.Println(harness.FormatChecks(checks))
	b.ReportMetric(float64(len(checks)-len(failed)), "checks-ok")
	b.ReportMetric(float64(len(failed)), "checks-failed")
}

// BenchmarkFigure2NetperfThroughput regenerates Figure 2.
func BenchmarkFigure2NetperfThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mx := netperfMatrix()
		if i == 0 {
			fmt.Println(harness.Figure2Table(mx).Render())
			reportChecks(b, harness.Figure2Checks(mx))
		}
	}
}

// BenchmarkTable3NetperfMetrics regenerates Table 3.
func BenchmarkTable3NetperfMetrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mx := netperfMatrix()
		if i == 0 {
			for _, t := range harness.Table3Tables(mx) {
				fmt.Println(t.Render())
			}
			reportChecks(b, harness.Table3Checks(mx))
		}
	}
}

// BenchmarkFigure3Scaling regenerates Figure 3.
func BenchmarkFigure3Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mx := aonMatrix(b)
		if i == 0 {
			fmt.Println(harness.ThroughputTable(mx).Render())
			fmt.Println(harness.Figure3Table(mx).Render())
			reportChecks(b, harness.Figure3Checks(mx))
		}
	}
}

// BenchmarkTable4CPI regenerates Table 4.
func BenchmarkTable4CPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mx := aonMatrix(b)
		if i == 0 {
			fmt.Println(harness.Table4Table(mx).Render())
			reportChecks(b, harness.Table4Checks(mx))
		}
	}
}

// BenchmarkFigure4L2MPI regenerates Figure 4.
func BenchmarkFigure4L2MPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mx := aonMatrix(b)
		if i == 0 {
			fmt.Println(harness.Figure4Table(mx).Render())
			reportChecks(b, harness.Figure4Checks(mx))
		}
	}
}

// BenchmarkFigure5BTPI regenerates Figure 5.
func BenchmarkFigure5BTPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mx := aonMatrix(b)
		if i == 0 {
			fmt.Println(harness.Figure5Table(mx).Render())
			reportChecks(b, harness.Figure5Checks(mx))
		}
	}
}

// BenchmarkTable5BranchFreq regenerates Table 5.
func BenchmarkTable5BranchFreq(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mx := aonMatrix(b)
		if i == 0 {
			fmt.Println(harness.Table5Table(mx).Render())
			reportChecks(b, harness.Table5Checks(mx))
		}
	}
}

// BenchmarkTable6BrMPR regenerates Table 6.
func BenchmarkTable6BrMPR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mx := aonMatrix(b)
		if i == 0 {
			fmt.Println(harness.Table6Table(mx).Render())
			reportChecks(b, harness.Table6Checks(mx))
		}
	}
}

// ---- Ablations (DESIGN.md section 5) ----

// BenchmarkAblationNoCoherence shows that free cross-cache transfers erase
// the 2PPx loopback collapse.
func BenchmarkAblationNoCoherence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := harness.RunNetperf(machine.TwoPPx, netperf.Loopback, benchNetperfOpts)
		ref := harness.RunNetperf(machine.OneLPx, netperf.Loopback, benchNetperfOpts)
		opts := benchNetperfOpts
		opts.Machine.FreeCoherence = true
		abl := harness.RunNetperf(machine.TwoPPx, netperf.Loopback, opts)
		if i == 0 {
			fmt.Printf("Ablation: coherence cost removed (2PPx loopback)\n")
			fmt.Printf("  1LPx baseline:            %8.0f Mbps\n", ref.Mbps)
			fmt.Printf("  2PPx faithful:            %8.0f Mbps (collapse: %.2fx of 1LPx)\n", base.Mbps, base.Mbps/ref.Mbps)
			fmt.Printf("  2PPx free coherence:      %8.0f Mbps (%.2fx of 1LPx)\n", abl.Mbps, abl.Mbps/ref.Mbps)
			b.ReportMetric(abl.Mbps/base.Mbps, "speedup-from-ablation")
		}
	}
}

// BenchmarkAblationPrivateL2 shows that giving each Pentium M core a
// private L2 half changes the 2CPm loopback behaviour.
func BenchmarkAblationPrivateL2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := harness.RunNetperf(machine.TwoCPm, netperf.Loopback, benchNetperfOpts)
		opts := benchNetperfOpts
		opts.Machine.PrivateL2 = true
		abl := harness.RunNetperf(machine.TwoCPm, netperf.Loopback, opts)
		if i == 0 {
			fmt.Printf("Ablation: private per-core L2 halves (2CPm loopback)\n")
			fmt.Printf("  shared L2 (faithful):     %8.0f Mbps  CPI=%.2f\n", base.Mbps, base.Metrics.CPI)
			fmt.Printf("  private L2 halves:        %8.0f Mbps  CPI=%.2f\n", abl.Mbps, abl.Metrics.CPI)
			b.ReportMetric(abl.Mbps/base.Mbps, "ratio")
		}
	}
}

// BenchmarkAblationPrivatePredictor shows that per-thread predictors
// remove the Hyperthreading misprediction inflation (Table 6, finding 6).
func BenchmarkAblationPrivatePredictor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, err := harness.RunAON(machine.TwoLPx, workload.SV, benchAONOpts)
		if err != nil {
			b.Fatal(err)
		}
		opts := benchAONOpts
		opts.Machine.PrivatePredictors = true
		abl, err := harness.RunAON(machine.TwoLPx, workload.SV, opts)
		if err != nil {
			b.Fatal(err)
		}
		ref, err := harness.RunAON(machine.OneLPx, workload.SV, benchAONOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("Ablation: private per-SMT-thread predictors (SV on 2LPx)\n")
			fmt.Printf("  1LPx BrMPR:               %6.2f%%\n", ref.Metrics.BrMPR)
			fmt.Printf("  2LPx shared predictor:    %6.2f%%\n", base.Metrics.BrMPR)
			fmt.Printf("  2LPx private predictors:  %6.2f%%\n", abl.Metrics.BrMPR)
			b.ReportMetric(base.Metrics.BrMPR-abl.Metrics.BrMPR, "brmpr-delta")
		}
	}
}

// BenchmarkAblationNoPrefetch shows the Pentium M stream prefetcher's
// contribution to bus traffic (Section 5.4's Smart Memory Access account).
func BenchmarkAblationNoPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, err := harness.RunAON(machine.OneCPm, workload.FR, benchAONOpts)
		if err != nil {
			b.Fatal(err)
		}
		opts := benchAONOpts
		opts.Machine.NoPrefetch = true
		abl, err := harness.RunAON(machine.OneCPm, workload.FR, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("Ablation: stream prefetchers disabled (FR on 1CPm)\n")
			fmt.Printf("  with prefetch (faithful): BTPI=%.2f%%  %8.0f Mbps\n", base.Metrics.BTPI, base.Mbps)
			fmt.Printf("  without prefetch:         BTPI=%.2f%%  %8.0f Mbps\n", abl.Metrics.BTPI, abl.Mbps)
			b.ReportMetric(base.Metrics.BTPI/abl.Metrics.BTPI, "btpi-ratio")
		}
	}
}

// BenchmarkAblationCodegen shows that using the Pentium M retirement
// profile on both platforms collapses the Table 5 branch-frequency gap.
func BenchmarkAblationCodegen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pm, err := harness.RunAON(machine.OneCPm, workload.SV, benchAONOpts)
		if err != nil {
			b.Fatal(err)
		}
		xe, err := harness.RunAON(machine.OneLPx, workload.SV, benchAONOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("Codegen profiles: SV branch frequency PM=%.0f%% Xeon=%.0f%% (ratio %.2f; paper: 27%% vs 15%%)\n",
				pm.Metrics.BranchFreq, xe.Metrics.BranchFreq,
				pm.Metrics.BranchFreq/xe.Metrics.BranchFreq)
			b.ReportMetric(pm.Metrics.BranchFreq/xe.Metrics.BranchFreq, "pm-to-xeon-ratio")
		}
	}
}

// ---- Micro-benchmarks of the substrate itself ----

// BenchmarkXMLParse measures the real (host) cost of parsing one AONBench
// message with instrumentation attached.
func BenchmarkXMLParse(b *testing.B) {
	msg := workload.SOAPMessage(7)
	b.SetBytes(int64(len(msg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parseForBench(msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedMessage measures host time per fully simulated CBR
// message on the dual-core machine (simulator efficiency).
func BenchmarkSimulatedMessage(b *testing.B) {
	opts := harness.AONOpts{WarmupMsgs: 20, MeasureMsgs: b.N, Window: 32}
	if opts.MeasureMsgs < 50 {
		opts.MeasureMsgs = 50
	}
	b.ResetTimer()
	if _, err := harness.RunAON(machine.TwoCPm, workload.CBR, opts); err != nil {
		b.Fatal(err)
	}
}
