package session

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the fixed dump schema. Per-worker metrics are flattened
// to the skew extremes (min/max CPI across workers) so the row width
// stays constant regardless of pool size; the full per-worker detail
// lives in the JSON forms (/timeline and the /stats timeline section).
var csvHeader = []string{
	"t_ms", "window_sec",
	"messages", "msgs_per_sec", "bytes_in", "shed",
	"latency_p50_us", "latency_p99_us",
	"cpi", "cache_mpi_pct", "br_mpr_pct", "derived_source",
	"workers", "worker_cpi_min", "worker_cpi_max",
	"goroutines", "gc_cpu_pct", "sched_lat_p99_us",
	"upstream_idle_conns", "upstream_healthy",
}

// CSVHeader returns a copy of the session artifact's column names, for
// writers that extend the schema with leading columns (the fleet's
// merged cross-node CSV prefixes node identity) while staying readable
// by ReadCSV, which locates columns by name.
func CSVHeader() []string {
	out := make([]string, len(csvHeader))
	copy(out, csvHeader)
	return out
}

// CSVRecord flattens one sample into the csvHeader column order.
func CSVRecord(s Sample) []string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	cpiMin, cpiMax := workerCPIBounds(s.Workers)
	return []string{
		strconv.FormatInt(s.TMS, 10), f(s.WindowSec),
		u(s.Messages), f(s.MsgsPerSec), u(s.BytesIn), u(s.Shed),
		u(s.LatencyP50US), u(s.LatencyP99US),
		f(s.CPI), f(s.CacheMPI), f(s.BrMPR), s.DerivedSource,
		strconv.Itoa(len(s.Workers)), f(cpiMin), f(cpiMax),
		strconv.Itoa(s.Goroutines), f(s.GCCPUPct), f(s.SchedLatP99US),
		strconv.Itoa(s.UpstreamIdle), strconv.Itoa(s.UpstreamHealthy),
	}
}

// WriteCSV dumps samples (chronological) in the fixed schema — the
// session artifact aongate writes on SIGUSR1/shutdown and CI uploads.
func WriteCSV(w io.Writer, samples []Sample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, s := range samples {
		if err := cw.Write(CSVRecord(s)); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("session: csv flush: %w", err)
	}
	return nil
}

func workerCPIBounds(ws []WorkerSample) (min, max float64) {
	for i, w := range ws {
		if i == 0 || w.CPI < min {
			min = w.CPI
		}
		if i == 0 || w.CPI > max {
			max = w.CPI
		}
	}
	return min, max
}

// Appender writes the session CSV schema incrementally: the header goes
// out exactly once (suppressed when the writer was handed an already-
// populated file), then each Append flushes its rows through to the
// underlying writer before returning — the crash-safety contract the
// gateway's periodic timeline flush and the fleet coordinator rely on:
// whatever Append has returned from is on disk, whatever comes later is
// a clean appended row, never a torn rewrite.
type Appender struct {
	cw        *csv.Writer
	headerDue bool
	rows      int
}

// NewAppender wraps w. writeHeader=false resumes an existing artifact
// (the file already carries a header from a previous run).
func NewAppender(w io.Writer, writeHeader bool) *Appender {
	return &Appender{cw: csv.NewWriter(w), headerDue: writeHeader}
}

// Append writes the samples and flushes. Safe to call with no samples
// (it still emits a due header, making even an idle session's artifact
// well-formed).
func (a *Appender) Append(samples []Sample) error {
	if a.headerDue {
		if err := a.cw.Write(csvHeader); err != nil {
			return err
		}
		a.headerDue = false
	}
	for _, s := range samples {
		if err := a.cw.Write(CSVRecord(s)); err != nil {
			return err
		}
		a.rows++
	}
	a.cw.Flush()
	if err := a.cw.Error(); err != nil {
		return fmt.Errorf("session: csv append: %w", err)
	}
	return nil
}

// Rows reports how many sample rows this appender has written.
func (a *Appender) Rows() int { return a.rows }
