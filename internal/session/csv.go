package session

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the fixed dump schema. Per-worker metrics are flattened
// to the skew extremes (min/max CPI across workers) so the row width
// stays constant regardless of pool size; the full per-worker detail
// lives in the JSON forms (/timeline and the /stats timeline section).
var csvHeader = []string{
	"t_ms", "window_sec",
	"messages", "msgs_per_sec", "bytes_in", "shed",
	"latency_p50_us", "latency_p99_us",
	"cpi", "cache_mpi_pct", "br_mpr_pct", "derived_source",
	"workers", "worker_cpi_min", "worker_cpi_max",
	"goroutines", "gc_cpu_pct", "sched_lat_p99_us",
	"upstream_idle_conns", "upstream_healthy",
}

// WriteCSV dumps samples (chronological) in the fixed schema — the
// session artifact aongate writes on SIGUSR1/shutdown and CI uploads.
func WriteCSV(w io.Writer, samples []Sample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for _, s := range samples {
		cpiMin, cpiMax := workerCPIBounds(s.Workers)
		row := []string{
			strconv.FormatInt(s.TMS, 10), f(s.WindowSec),
			u(s.Messages), f(s.MsgsPerSec), u(s.BytesIn), u(s.Shed),
			u(s.LatencyP50US), u(s.LatencyP99US),
			f(s.CPI), f(s.CacheMPI), f(s.BrMPR), s.DerivedSource,
			strconv.Itoa(len(s.Workers)), f(cpiMin), f(cpiMax),
			strconv.Itoa(s.Goroutines), f(s.GCCPUPct), f(s.SchedLatP99US),
			strconv.Itoa(s.UpstreamIdle), strconv.Itoa(s.UpstreamHealthy),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("session: csv flush: %w", err)
	}
	return nil
}

func workerCPIBounds(ws []WorkerSample) (min, max float64) {
	for i, w := range ws {
		if i == 0 || w.CPI < min {
			min = w.CPI
		}
		if i == 0 || w.CPI > max {
			max = w.CPI
		}
	}
	return min, max
}
