// Package session records VTune-style sampling sessions for the live
// gateway: a fixed-interval sampler (default 100ms, the granularity the
// paper's VTune sampling sessions ran at) snapshots the measurement
// layer into a bounded ring-buffer timeline. Where PR 3's windowed
// /stats reading shows *that* CPI differs across use cases, the timeline
// shows *when* — counter and latency values over time, per worker — the
// raw material for the paper's CPI-over-time figures.
//
// The package is deliberately generic: the sampler owns the clock, the
// ring, and the lifecycle; the caller (the gateway) supplies a sample
// function that flattens whatever it observes — counter windows,
// throughput deltas, pool gauges — into a Sample. That keeps session
// free of any dependency on the measurement packages and reusable by
// other subsystems.
package session

import (
	"fmt"
	"sync"
	"time"
)

// WorkerSample is one worker's derived counter window inside a Sample —
// the per-thread view that exposes CPI/cache/branch skew across the pool
// instead of one process-wide average.
type WorkerSample struct {
	Worker int `json:"worker"`
	// CPI, CacheMPI, BrMPR follow the paper's Section 3.3 definitions
	// (see internal/hwcount.Derived).
	CPI           float64 `json:"cpi"`
	CacheMPI      float64 `json:"cache_mpi_pct"`
	BrMPR         float64 `json:"br_mpr_pct"`
	DerivedSource string  `json:"derived_source"` // "hw" or "model"
}

// Sample is one fixed-interval observation: gateway throughput deltas
// over the window, the latency view, the derived counter metrics
// (process aggregate plus per-worker), runtime-health gauges, and the
// upstream pool gauges when the gateway forwards.
type Sample struct {
	// TMS is the sample's wall-clock time in Unix milliseconds.
	TMS int64 `json:"t_ms"`
	// WindowSec is the measurement window this sample closed.
	WindowSec float64 `json:"window_sec"`

	// Gateway deltas over the window.
	Messages   uint64  `json:"messages"`
	BytesIn    uint64  `json:"bytes_in"`
	Shed       uint64  `json:"shed"`
	MsgsPerSec float64 `json:"msgs_per_sec"`

	// Latency percentiles at sample time (cumulative histogram — the
	// bounded-memory compromise; the *timeline* of these values is still
	// time-resolved because each sample re-reads them).
	LatencyP50US uint64 `json:"latency_p50_us"`
	LatencyP99US uint64 `json:"latency_p99_us"`

	// Derived counter metrics for the window: process aggregate...
	CPI           float64 `json:"cpi"`
	CacheMPI      float64 `json:"cache_mpi_pct"`
	BrMPR         float64 `json:"br_mpr_pct"`
	DerivedSource string  `json:"derived_source"` // "hw" or "model"
	// ...and the per-worker skew.
	Workers []WorkerSample `json:"workers,omitempty"`

	// Runtime gauges.
	Goroutines    int     `json:"goroutines"`
	GCCPUPct      float64 `json:"gc_cpu_pct"`
	SchedLatP99US float64 `json:"sched_lat_p99_us"`

	// Upstream pool gauges (zero when the gateway answers in place).
	UpstreamIdle    int `json:"upstream_idle_conns,omitempty"`
	UpstreamHealthy int `json:"upstream_healthy,omitempty"`
}

// Ring is the bounded sample buffer: the newest Capacity samples win,
// older ones fall off. Safe for concurrent Add and Last.
type Ring struct {
	mu    sync.Mutex
	buf   []Sample
	total uint64 // lifetime samples added
}

// NewRing sizes a ring; capacity <= 0 panics (the sampler validates).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic(fmt.Sprintf("session: ring capacity %d, want > 0", capacity))
	}
	return &Ring{buf: make([]Sample, 0, capacity)}
}

// Add appends one sample, evicting the oldest when full.
func (r *Ring) Add(s Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.total%uint64(cap(r.buf))] = s
	}
	r.total++
}

// Last returns the most recent n samples in chronological order (all
// kept samples when n <= 0 or n exceeds what the ring holds).
func (r *Ring) Last(n int) []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := len(r.buf)
	if n <= 0 || n > kept {
		n = kept
	}
	out := make([]Sample, 0, n)
	// Oldest kept sample is at total-kept; we want the last n of the
	// kept window, i.e. indices [total-n, total).
	for i := r.total - uint64(n); i < r.total; i++ {
		out = append(out, r.buf[i%uint64(cap(r.buf))])
	}
	return out
}

// Since returns the samples whose lifetime index is >= afterTotal (i.e.
// everything added after a previous call reported newTotal == afterTotal)
// plus the ring's current lifetime total. Samples that have already been
// evicted are silently gone — the caller polled too slowly for the ring
// capacity. This is the incremental-flush primitive: a persister tracks
// the returned total as its watermark and never re-reads a sample.
func (r *Ring) Since(afterTotal uint64) ([]Sample, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if afterTotal > r.total {
		// Watermark from a different (restarted) ring: start over.
		afterTotal = 0
	}
	n := r.total - afterTotal
	if kept := uint64(len(r.buf)); n > kept {
		n = kept
	}
	out := make([]Sample, 0, n)
	for i := r.total - n; i < r.total; i++ {
		out = append(out, r.buf[i%uint64(cap(r.buf))])
	}
	return out, r.total
}

// Total is the lifetime sample count (including evicted ones).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Kept is how many samples the ring currently holds.
func (r *Ring) Kept() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Config parameterizes a sampling session.
type Config struct {
	// Interval is the sampling period; 0 means the 100ms default (the
	// VTune sampling-session granularity). Negative is rejected.
	Interval time.Duration
	// Capacity bounds the ring; 0 means 600 samples (one minute at the
	// default interval). Negative is rejected.
	Capacity int
}

// DefaultInterval is the paper-style sampling period.
const DefaultInterval = 100 * time.Millisecond

// DefaultCapacity keeps one minute of samples at the default interval.
const DefaultCapacity = 600

// Sampler drives one sampling session: a background goroutine calls fn
// every interval and records the result. Close stops and joins it.
type Sampler struct {
	ring     *Ring
	interval time.Duration
	fn       func() Sample

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// Start begins a session. fn is called from the sampler goroutine only,
// so it may keep unsynchronized previous-window state of its own.
func Start(cfg Config, fn func() Sample) (*Sampler, error) {
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("session: sampling interval %v, want > 0", cfg.Interval)
	}
	if cfg.Capacity < 0 {
		return nil, fmt.Errorf("session: ring capacity %d, want > 0", cfg.Capacity)
	}
	if fn == nil {
		return nil, fmt.Errorf("session: nil sample function")
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = DefaultCapacity
	}
	s := &Sampler{
		ring:     NewRing(cfg.Capacity),
		interval: cfg.Interval,
		fn:       fn,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.loop()
	return s, nil
}

func (s *Sampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.ring.Add(s.fn())
		}
	}
}

// Close stops the session and joins the sampler goroutine; after Close
// returns, fn will never be called again. Idempotent.
func (s *Sampler) Close() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}

// Interval reports the sampling period in effect.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Last returns the most recent n samples in chronological order.
func (s *Sampler) Last(n int) []Sample { return s.ring.Last(n) }

// Since returns the samples recorded after a previous Since call reported
// newTotal == afterTotal, plus the new watermark. See Ring.Since.
func (s *Sampler) Since(afterTotal uint64) ([]Sample, uint64) { return s.ring.Since(afterTotal) }

// Total is the lifetime sample count.
func (s *Sampler) Total() uint64 { return s.ring.Total() }

// Kept is how many samples the ring currently holds.
func (s *Sampler) Kept() int { return s.ring.Kept() }
