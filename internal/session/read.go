package session

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVRow is one parsed line of a session artifact — the flattened schema
// WriteCSV emits. Worker detail stays flattened (the CSV never carried
// it); the fields here are the ones replay consumers (cmd/aoncap's
// predicted-vs-measured tables) need.
type CSVRow struct {
	TMS          int64
	WindowSec    float64
	Messages     uint64
	MsgsPerSec   float64
	BytesIn      uint64
	Shed         uint64
	LatencyP50US uint64
	LatencyP99US uint64
	CPI          float64
	CacheMPI     float64
	BrMPR        float64
	Source       string
	Workers      int
	Goroutines   int
	GCCPUPct     float64
}

// OfferedPerSec is the row's arrival rate including shed messages.
func (r CSVRow) OfferedPerSec() float64 {
	if r.WindowSec <= 0 {
		return r.MsgsPerSec
	}
	return r.MsgsPerSec + float64(r.Shed)/r.WindowSec
}

// ReadCSV parses a session artifact written by WriteCSV. Columns are
// located by header name, so the reader tolerates schema growth (new
// trailing columns) and survives column reordering.
func ReadCSV(r io.Reader) ([]CSVRow, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("session: csv header: %w", err)
	}
	col := map[string]int{}
	for i, name := range header {
		col[name] = i
	}
	for _, required := range []string{"t_ms", "window_sec", "messages", "msgs_per_sec"} {
		if _, ok := col[required]; !ok {
			return nil, fmt.Errorf("session: csv missing column %q", required)
		}
	}
	var out []CSVRow
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("session: csv row %d: %w", len(out)+2, err)
		}
		// A field parser per row: absent columns (older schema) and empty
		// cells stay zero — that's schema tolerance — but a non-empty cell
		// that doesn't parse is corruption, reported as a row-level error
		// naming the column rather than silently read as zero.
		p := fieldParser{rec: rec, col: col}
		tms := p.i64("t_ms")
		row := CSVRow{
			TMS:          tms,
			WindowSec:    p.f("window_sec"),
			Messages:     p.u("messages"),
			MsgsPerSec:   p.f("msgs_per_sec"),
			BytesIn:      p.u("bytes_in"),
			Shed:         p.u("shed"),
			LatencyP50US: p.u("latency_p50_us"),
			LatencyP99US: p.u("latency_p99_us"),
			CPI:          p.f("cpi"),
			CacheMPI:     p.f("cache_mpi_pct"),
			BrMPR:        p.f("br_mpr_pct"),
			Source:       p.s("derived_source"),
			Workers:      p.i("workers"),
			Goroutines:   p.i("goroutines"),
			GCCPUPct:     p.f("gc_cpu_pct"),
		}
		if p.get(rec, "t_ms") == "" {
			p.fail("t_ms", "") // t_ms is mandatory: an empty cell is corruption too
		}
		if p.err != nil {
			return nil, fmt.Errorf("session: csv row %d: %w", len(out)+2, p.err)
		}
		out = append(out, row)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("session: csv has no sample rows")
	}
	return out, nil
}

// fieldParser reads one record's cells by column name, accumulating the
// first malformed-cell error. Missing columns and empty cells parse as
// zero values (schema tolerance); non-empty garbage is an error.
type fieldParser struct {
	rec []string
	col map[string]int
	err error
}

func (p *fieldParser) get(rec []string, name string) string {
	i, ok := p.col[name]
	if !ok || i >= len(rec) {
		return ""
	}
	return rec[i]
}

func (p *fieldParser) fail(name, raw string) {
	if p.err == nil {
		p.err = fmt.Errorf("bad %s %q", name, raw)
	}
}

func (p *fieldParser) s(name string) string { return p.get(p.rec, name) }

func (p *fieldParser) f(name string) float64 {
	raw := p.get(p.rec, name)
	if raw == "" {
		return 0
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		p.fail(name, raw)
	}
	return v
}

func (p *fieldParser) u(name string) uint64 {
	raw := p.get(p.rec, name)
	if raw == "" {
		return 0
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		p.fail(name, raw)
	}
	return v
}

func (p *fieldParser) i(name string) int {
	raw := p.get(p.rec, name)
	if raw == "" {
		return 0
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		p.fail(name, raw)
	}
	return v
}

func (p *fieldParser) i64(name string) int64 {
	raw := p.get(p.rec, name)
	if raw == "" {
		return 0
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		p.fail(name, raw)
	}
	return v
}
