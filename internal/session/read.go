package session

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVRow is one parsed line of a session artifact — the flattened schema
// WriteCSV emits. Worker detail stays flattened (the CSV never carried
// it); the fields here are the ones replay consumers (cmd/aoncap's
// predicted-vs-measured tables) need.
type CSVRow struct {
	TMS          int64
	WindowSec    float64
	Messages     uint64
	MsgsPerSec   float64
	BytesIn      uint64
	Shed         uint64
	LatencyP50US uint64
	LatencyP99US uint64
	CPI          float64
	CacheMPI     float64
	BrMPR        float64
	Source       string
	Workers      int
	Goroutines   int
	GCCPUPct     float64
}

// OfferedPerSec is the row's arrival rate including shed messages.
func (r CSVRow) OfferedPerSec() float64 {
	if r.WindowSec <= 0 {
		return r.MsgsPerSec
	}
	return r.MsgsPerSec + float64(r.Shed)/r.WindowSec
}

// ReadCSV parses a session artifact written by WriteCSV. Columns are
// located by header name, so the reader tolerates schema growth (new
// trailing columns) and survives column reordering.
func ReadCSV(r io.Reader) ([]CSVRow, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("session: csv header: %w", err)
	}
	col := map[string]int{}
	for i, name := range header {
		col[name] = i
	}
	for _, required := range []string{"t_ms", "window_sec", "messages", "msgs_per_sec"} {
		if _, ok := col[required]; !ok {
			return nil, fmt.Errorf("session: csv missing column %q", required)
		}
	}
	get := func(rec []string, name string) string {
		i, ok := col[name]
		if !ok || i >= len(rec) {
			return ""
		}
		return rec[i]
	}
	pf := func(s string) float64 { v, _ := strconv.ParseFloat(s, 64); return v }
	pu := func(s string) uint64 { v, _ := strconv.ParseUint(s, 10, 64); return v }
	pi := func(s string) int { v, _ := strconv.Atoi(s); return v }

	var out []CSVRow
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("session: csv row %d: %w", len(out)+2, err)
		}
		tms, err := strconv.ParseInt(get(rec, "t_ms"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("session: csv row %d: bad t_ms %q", len(out)+2, get(rec, "t_ms"))
		}
		out = append(out, CSVRow{
			TMS:          tms,
			WindowSec:    pf(get(rec, "window_sec")),
			Messages:     pu(get(rec, "messages")),
			MsgsPerSec:   pf(get(rec, "msgs_per_sec")),
			BytesIn:      pu(get(rec, "bytes_in")),
			Shed:         pu(get(rec, "shed")),
			LatencyP50US: pu(get(rec, "latency_p50_us")),
			LatencyP99US: pu(get(rec, "latency_p99_us")),
			CPI:          pf(get(rec, "cpi")),
			CacheMPI:     pf(get(rec, "cache_mpi_pct")),
			BrMPR:        pf(get(rec, "br_mpr_pct")),
			Source:       get(rec, "derived_source"),
			Workers:      pi(get(rec, "workers")),
			Goroutines:   pi(get(rec, "goroutines")),
			GCCPUPct:     pf(get(rec, "gc_cpu_pct")),
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("session: csv has no sample rows")
	}
	return out, nil
}
