package session

import (
	"bytes"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// TestFlushRace pins the incremental-flush contract under concurrency:
// while a producer goroutine Adds samples (the sampler tick), several
// flusher goroutines race Since→Append cycles over a shared watermark —
// the same mutex discipline gateway.FlushTimeline uses to let the
// periodic interval flusher and the SIGUSR1-forced flush interleave.
// Every sample must land on the artifact exactly once, in order, under
// a single CSV header. Run with -race.
func TestFlushRace(t *testing.T) {
	const total = 2000
	r := NewRing(total) // roomy: no evictions, so exactly-once is checkable
	var buf bytes.Buffer
	a := NewAppender(&buf, true)

	// flushMu serialises Since + Append + watermark update as one unit;
	// the ring itself is safe for concurrent Add/Since, but interleaving
	// two flush cycles would double-append the overlap.
	var flushMu sync.Mutex
	var mark uint64
	flush := func() {
		flushMu.Lock()
		defer flushMu.Unlock()
		samples, wm := r.Since(mark)
		if err := a.Append(samples); err != nil {
			t.Errorf("append: %v", err)
		}
		mark = wm
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			r.Add(Sample{TMS: int64(i)})
			if i%64 == 0 {
				runtime.Gosched()
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					flush()
				}
			}
		}()
	}
	<-done
	wg.Wait()
	flush() // the shutdown-path tail flush

	if a.Rows() != total {
		t.Fatalf("appender wrote %d rows, want %d", a.Rows(), total)
	}
	if strings.Count(buf.String(), "t_ms,") != 1 {
		t.Fatalf("header written more than once")
	}
	rows, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("artifact unreadable: %v", err)
	}
	if len(rows) != total {
		t.Fatalf("artifact has %d rows, want %d", len(rows), total)
	}
	for i, row := range rows {
		if row.TMS != int64(i) {
			t.Fatalf("row %d has t_ms %d: samples duplicated or dropped", i, row.TMS)
		}
	}
}
