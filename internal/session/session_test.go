package session

import (
	"bytes"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRingWraparound pins the bounded-timeline contract: a ring of
// capacity 4 fed 10 samples keeps exactly the newest 4, in
// chronological order, while Total still reports the lifetime count.
func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Add(Sample{TMS: int64(i)})
	}
	if got := r.Total(); got != 10 {
		t.Fatalf("total=%d want 10", got)
	}
	if got := r.Kept(); got != 4 {
		t.Fatalf("kept=%d want 4", got)
	}
	got := r.Last(0)
	want := []int64{6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("Last(0) returned %d samples, want %d", len(got), len(want))
	}
	for i, s := range got {
		if s.TMS != want[i] {
			t.Fatalf("Last(0)[%d].TMS=%d want %d (full: %+v)", i, s.TMS, want[i], got)
		}
	}
	// A partial read returns the newest n, still chronological.
	got = r.Last(2)
	if len(got) != 2 || got[0].TMS != 8 || got[1].TMS != 9 {
		t.Fatalf("Last(2)=%+v want [8 9]", got)
	}
	// Asking for more than kept caps at kept.
	if got := r.Last(100); len(got) != 4 {
		t.Fatalf("Last(100) returned %d samples, want 4", len(got))
	}
}

// TestRingBeforeWrap covers the fill phase: fewer samples than capacity.
func TestRingBeforeWrap(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 3; i++ {
		r.Add(Sample{TMS: int64(i)})
	}
	got := r.Last(0)
	if len(got) != 3 || got[0].TMS != 0 || got[2].TMS != 2 {
		t.Fatalf("Last(0)=%+v want [0 1 2]", got)
	}
}

// TestRingConcurrent hammers Add and Last concurrently; run under -race
// this is the timeline's concurrent sample/read safety proof. Every
// reader must observe a chronologically ordered window.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				r.Add(Sample{TMS: int64(i)})
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				got := r.Last(0)
				for j := 1; j < len(got); j++ {
					if got[j].TMS != got[j-1].TMS+1 {
						t.Errorf("non-contiguous window: %d then %d", got[j-1].TMS, got[j].TMS)
						return
					}
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestSamplerLifecycle runs a real session: samples accumulate at the
// interval, Close joins the goroutine (no leak), and fn is never called
// after Close returns.
func TestSamplerLifecycle(t *testing.T) {
	before := runtime.NumGoroutine()
	var calls atomic.Int64
	s, err := Start(Config{Interval: time.Millisecond, Capacity: 8}, func() Sample {
		return Sample{TMS: calls.Add(1)}
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Total() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d samples after 5s", s.Total())
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	after := calls.Load()
	time.Sleep(10 * time.Millisecond)
	if got := calls.Load(); got != after {
		t.Fatalf("fn called after Close: %d -> %d", after, got)
	}
	s.Close() // idempotent
	// The sampler goroutine must be gone; allow scheduler settle time.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines %d > %d before Start — sampler leaked", runtime.NumGoroutine(), before)
}

// TestSamplerValidation rejects broken configs up front.
func TestSamplerValidation(t *testing.T) {
	if _, err := Start(Config{Interval: -time.Second}, func() Sample { return Sample{} }); err == nil {
		t.Fatal("negative interval accepted")
	}
	if _, err := Start(Config{Capacity: -1}, func() Sample { return Sample{} }); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := Start(Config{}, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
	s, err := Start(Config{}, func() Sample { return Sample{} })
	if err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	defer s.Close()
	if s.Interval() != DefaultInterval {
		t.Fatalf("interval=%v want default %v", s.Interval(), DefaultInterval)
	}
}

// TestWriteCSV pins the dump shape: header plus one row per sample with
// per-worker CPI flattened to min/max.
func TestWriteCSV(t *testing.T) {
	samples := []Sample{
		{TMS: 1000, WindowSec: 0.1, Messages: 42, MsgsPerSec: 420, CPI: 1.5,
			DerivedSource: "hw",
			Workers: []WorkerSample{
				{Worker: 0, CPI: 1.2}, {Worker: 1, CPI: 1.9},
			}},
		{TMS: 1100, WindowSec: 0.1, DerivedSource: "model"},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, samples); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines, want header + 2 rows:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "t_ms,window_sec,messages") {
		t.Fatalf("unexpected header %q", lines[0])
	}
	if !strings.Contains(lines[1], ",2,1.2,1.9,") {
		t.Fatalf("row 1 missing worker count and CPI bounds: %q", lines[1])
	}
	if !strings.Contains(lines[2], "model") {
		t.Fatalf("row 2 missing derived source: %q", lines[2])
	}
}

// TestReadCSVRoundTrip pins the reader against the writer: a dumped
// session parses back with the replay-relevant fields intact, and the
// offered-load helper folds shed messages back into the arrival rate.
func TestReadCSVRoundTrip(t *testing.T) {
	samples := []Sample{
		{TMS: 1000, WindowSec: 0.5, Messages: 100, MsgsPerSec: 200, Shed: 50,
			LatencyP50US: 800, LatencyP99US: 4000, CPI: 1.5, DerivedSource: "hw",
			Workers:    []WorkerSample{{Worker: 0, CPI: 1.2}, {Worker: 1, CPI: 1.9}},
			Goroutines: 12, GCCPUPct: 0.5},
		{TMS: 1500, WindowSec: 0.5, Messages: 120, MsgsPerSec: 240, DerivedSource: "model"},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, samples); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows=%d want 2", len(rows))
	}
	r := rows[0]
	if r.TMS != 1000 || r.Messages != 100 || r.MsgsPerSec != 200 || r.Shed != 50 {
		t.Fatalf("row 0 counters: %+v", r)
	}
	if r.LatencyP50US != 800 || r.LatencyP99US != 4000 || r.CPI != 1.5 || r.Source != "hw" {
		t.Fatalf("row 0 metrics: %+v", r)
	}
	if r.Workers != 2 || r.Goroutines != 12 {
		t.Fatalf("row 0 gauges: %+v", r)
	}
	// 200 completed/s + 50 shed over 0.5s = 300 offered/s.
	if got := r.OfferedPerSec(); got != 300 {
		t.Fatalf("offered=%v want 300", got)
	}
	if rows[1].Source != "model" {
		t.Fatalf("row 1: %+v", rows[1])
	}

	// Header-only and missing-column inputs are rejected.
	if _, err := ReadCSV(strings.NewReader("t_ms,window_sec,messages,msgs_per_sec\n")); err == nil {
		t.Fatal("empty session accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Fatal("foreign csv accepted")
	}
}

// TestReadCSVCorruption pins the corrupt-cell contract: a non-empty cell
// that doesn't parse is a row-level error naming the column — never a
// silent zero — while empty cells and absent columns still read as
// zeros (schema tolerance).
func TestReadCSVCorruption(t *testing.T) {
	header := "t_ms,window_sec,messages,msgs_per_sec,cpi\n"
	cases := []struct {
		name, row, wantErr string
	}{
		{"garbage float", "1000,0.1,5,50,not-a-number\n", "cpi"},
		{"garbage uint", "1000,0.1,x,50,1.5\n", "messages"},
		{"garbage t_ms", "zzz,0.1,5,50,1.5\n", "t_ms"},
		{"empty t_ms", ",0.1,5,50,1.5\n", "t_ms"},
	}
	for _, tc := range cases {
		_, err := ReadCSV(strings.NewReader(header + tc.row))
		if err == nil {
			t.Fatalf("%s: corrupt row accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: error %q does not name column %q", tc.name, err, tc.wantErr)
		}
		if !strings.Contains(err.Error(), "row 2") {
			t.Fatalf("%s: error %q does not locate the row", tc.name, err)
		}
	}
	// Empty non-mandatory cells stay zeros.
	rows, err := ReadCSV(strings.NewReader(header + "1000,,5,50,\n"))
	if err != nil {
		t.Fatalf("empty cells rejected: %v", err)
	}
	if rows[0].WindowSec != 0 || rows[0].CPI != 0 || rows[0].Messages != 5 {
		t.Fatalf("row: %+v", rows[0])
	}
	// Extra leading columns (the fleet's merged CSV) are tolerated: the
	// reader locates columns by name.
	merged := "node,role,rel_ms," + header + "gw0,gateway,120,1000,0.1,5,50,1.5\n"
	rows, err = ReadCSV(strings.NewReader(merged))
	if err != nil {
		t.Fatalf("merged fleet csv rejected: %v", err)
	}
	if rows[0].TMS != 1000 || rows[0].CPI != 1.5 {
		t.Fatalf("merged row: %+v", rows[0])
	}
}

// TestRingSince pins the incremental-flush primitive: successive Since
// calls hand out each sample exactly once, and a watermark that outran
// the ring (slow poller) silently skips evicted samples.
func TestRingSince(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 3; i++ {
		r.Add(Sample{TMS: int64(i)})
	}
	got, wm := r.Since(0)
	if len(got) != 3 || wm != 3 || got[0].TMS != 0 || got[2].TMS != 2 {
		t.Fatalf("Since(0)=%+v wm=%d", got, wm)
	}
	if got, wm = r.Since(wm); len(got) != 0 || wm != 3 {
		t.Fatalf("idle Since=%+v wm=%d want empty,3", got, wm)
	}
	// Overrun: 6 more samples into a capacity-4 ring — only the kept 4
	// come back, oldest two are gone.
	for i := 3; i < 9; i++ {
		r.Add(Sample{TMS: int64(i)})
	}
	got, wm = r.Since(wm)
	if len(got) != 4 || wm != 9 || got[0].TMS != 5 || got[3].TMS != 8 {
		t.Fatalf("overrun Since=%+v wm=%d", got, wm)
	}
	// A stale watermark from a restarted ring restarts from scratch.
	if got, _ = r.Since(1 << 40); len(got) != 4 {
		t.Fatalf("stale watermark returned %d samples, want 4", len(got))
	}
}

// TestAppender pins the incremental CSV contract: one header, rows
// flushed per Append, and resume mode (writeHeader=false) emitting rows
// only — together they append into one well-formed artifact.
func TestAppender(t *testing.T) {
	var buf bytes.Buffer
	a := NewAppender(&buf, true)
	if err := a.Append(nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Append([]Sample{{TMS: 1}, {TMS: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Append([]Sample{{TMS: 3}}); err != nil {
		t.Fatal(err)
	}
	if a.Rows() != 3 {
		t.Fatalf("rows=%d want 3", a.Rows())
	}
	// Resume into the same buffer: no second header.
	b := NewAppender(&buf, false)
	if err := b.Append([]Sample{{TMS: 4}}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("artifact has %d lines, want header + 4 rows:\n%s", len(lines), buf.String())
	}
	if strings.Count(buf.String(), "t_ms,") != 1 {
		t.Fatalf("header repeated:\n%s", buf.String())
	}
	rows, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[3].TMS != 4 {
		t.Fatalf("round trip rows: %+v", rows)
	}
}
