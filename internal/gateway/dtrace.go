package gateway

import (
	"fmt"
	"io"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dtrace"
)

// dtraceState is the gateway side of the distributed tracing plane
// (internal/dtrace): the tail sampler holding kept traces for GET
// /traces, plus the optional rate-limited slow-request log. Where the
// stage tracer aggregates sampled stage latencies into histograms, this
// keeps whole individual requests — every request records spans into a
// pooled recorder, and the *outcome* decides whether the trace
// survives (tail-based sampling: shed/idle-reaped/5xx and slow always,
// 1-in-N otherwise).
type dtraceState struct {
	node string
	tail *dtrace.Tail
	slow *slowLogger
}

func newDtraceState(cfg Config) *dtraceState {
	d := &dtraceState{
		node: cfg.TraceNode,
		tail: dtrace.NewTail(dtrace.TailConfig{
			Capacity:   cfg.TraceCapacity,
			SlowOverUS: cfg.TraceSlowOver.Microseconds(),
			KeepEvery:  cfg.TraceKeepEvery,
		}),
	}
	if d.node == "" {
		d.node = "gateway"
	}
	if cfg.SlowLog != nil {
		perSec := cfg.SlowLogPerSec
		if perSec == 0 {
			perSec = 10
		}
		d.slow = &slowLogger{w: cfg.SlowLog, perSec: perSec}
	}
	return d
}

// finish closes a recorder the connection reader still owns — the
// shed/draining/idle-timeout paths, which never reach a worker — and
// hands it to offer.
func (d *dtraceState) finish(rec *dtrace.Recorder, uc, outcome string, status int) {
	rec.Annotate(uc, outcome, status)
	rec.Finish(time.Now())
	d.offer(rec)
}

// offer runs the tail-sampling decision on a completed request's
// recorder, emits the slow-request log line for tail outcomes, and
// recycles the recorder. The annotated root span carries everything the
// decision needs.
func (d *dtraceState) offer(rec *dtrace.Recorder) {
	spans := rec.Spans()
	var outcome string
	var status int
	if len(spans) > 0 {
		outcome, status = spans[0].Outcome, spans[0].Status
	}
	isErr := status >= 500 || outcome == "shed" || outcome == "draining" || outcome == "idle-timeout"
	d.tail.Offer(rec, isErr)
	if isErr && d.slow != nil {
		d.slow.log(spans)
	}
	dtrace.PutRecorder(rec)
}

// slowLogger writes one structured line per tail-outcome request
// (shed, idle-timeout, 5xx), rate-limited per wall-clock second so an
// overload burst can't turn the log into its own overload. It runs
// only on already-slow/shed requests, so its allocations are off the
// hot path by construction.
type slowLogger struct {
	w      io.Writer
	perSec int

	mu      sync.Mutex
	sec     int64
	n       int
	dropped uint64
}

// log formats the request's spans as one key=value line:
//
//	slow-request trace=… uc=… outcome=… status=… total=… read=… queue=…
func (l *slowLogger) log(spans []dtrace.Span) {
	if len(spans) == 0 {
		return
	}
	now := time.Now().Unix()
	l.mu.Lock()
	defer l.mu.Unlock()
	if now != l.sec {
		if l.dropped > 0 {
			fmt.Fprintf(l.w, "slow-request suppressed=%d (rate limit %d/s)\n", l.dropped, l.perSec)
		}
		l.sec, l.n, l.dropped = now, 0, 0
	}
	if l.n >= l.perSec {
		l.dropped++
		return
	}
	l.n++
	root := &spans[0]
	buf := make([]byte, 0, 256)
	buf = append(buf, "slow-request trace="...)
	buf = root.TraceID.AppendHex(buf)
	buf = appendKV(buf, "uc", root.UseCase)
	buf = appendKV(buf, "outcome", root.Outcome)
	buf = append(buf, " status="...)
	buf = strconv.AppendInt(buf, int64(root.Status), 10)
	buf = append(buf, " total="...)
	buf = append(buf, root.Dur().String()...)
	for i := 1; i < len(spans); i++ {
		buf = appendKV(buf, spans[i].Name, spans[i].Dur().String())
	}
	buf = append(buf, '\n')
	l.w.Write(buf)
}

func appendKV(buf []byte, k, v string) []byte {
	if v == "" {
		v = "-"
	}
	buf = append(buf, ' ')
	buf = append(buf, k...)
	buf = append(buf, '=')
	return append(buf, v...)
}

// TraceInfo is the /stats "traces" section: the tail sampler's keep
// accounting. The kept traces themselves are served by GET /traces.
type TraceInfo struct {
	Node string           `json:"node"`
	Tail dtrace.TailStats `json:"tail"`
}

func (s *Server) traceInfo() *TraceInfo {
	if s.dtr == nil {
		return nil
	}
	return &TraceInfo{Node: s.dtr.node, Tail: s.dtr.tail.Stats()}
}

// Traces returns up to n kept traces, oldest first (n <= 0 means all);
// nil when tracing is off.
func (s *Server) Traces(n int) []dtrace.Trace {
	if s.dtr == nil {
		return nil
	}
	return s.dtr.tail.Last(n)
}

// TracesResponse is the GET /traces endpoint's JSON shape — the same
// shape aonback serves, so the fleet scraper and aontrace read both
// ends with one decoder.
type TracesResponse struct {
	Node   string           `json:"node"`
	Tail   dtrace.TailStats `json:"tail"`
	Traces []dtrace.Trace   `json:"traces"`
}

// tracesResponse serves GET /traces?last=N (all kept traces when last
// is absent).
func (s *Server) tracesResponse(query string) (*TracesResponse, error) {
	if s.dtr == nil {
		return nil, fmt.Errorf("tracing disabled (enable Config.Trace / -trace)")
	}
	n := 0
	if query != "" {
		vals, err := url.ParseQuery(query)
		if err != nil {
			return nil, fmt.Errorf("bad query: %v", err)
		}
		if raw := strings.TrimSpace(vals.Get("last")); raw != "" {
			n, err = strconv.Atoi(raw)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad last=%q, want a non-negative integer", raw)
			}
		}
	}
	return &TracesResponse{
		Node:   s.dtr.node,
		Tail:   s.dtr.tail.Stats(),
		Traces: s.dtr.tail.Last(n),
	}, nil
}
