package gateway

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/session"
	"repro/internal/workload"
)

// TestTimelineFlushRace hammers FlushTimeline — the SIGUSR1-forced
// flush path — from several goroutines while the periodic interval
// flusher runs and load is in flight. Whatever interleaving the
// scheduler picks, the artifact must end up with every recorded sample
// exactly once, in order, under a single CSV header. Run with -race.
func TestTimelineFlushRace(t *testing.T) {
	t.Setenv(ForceRuntimeOnlyEnv, "1") // deterministic in either world
	var buf syncBuffer
	srv := startServer(t, Config{
		Workers:               2,
		UseCase:               workload.FR,
		SampleInterval:        2 * time.Millisecond,
		SampleCapacity:        4096, // never overrun during the test, so rows==total holds
		TimelineFlush:         session.NewAppender(&buf, true),
		TimelineFlushInterval: 3 * time.Millisecond,
	})
	addr := srv.Addr().String()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := srv.FlushTimeline(); err != nil {
					t.Errorf("forced flush: %v", err)
					return
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}

	if _, err := RunLoad(LoadConfig{Addr: addr, UseCase: workload.FR, Conns: 4, Messages: 50}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	total := srv.timeline.sampler.Total()
	if total == 0 {
		t.Fatal("session recorded no samples")
	}
	rows, err := session.ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("flushed artifact unreadable: %v\nartifact:\n%s", err, buf.String())
	}
	if uint64(len(rows)) != total {
		t.Fatalf("artifact has %d rows, session recorded %d samples", len(rows), total)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].TMS < rows[i-1].TMS {
			t.Fatalf("rows out of order at %d: %d then %d", i, rows[i-1].TMS, rows[i].TMS)
		}
	}
	if strings.Count(buf.String(), "t_ms,") != 1 {
		t.Fatalf("header written more than once:\n%s", buf.String())
	}
}
