package gateway

import (
	"sync"
	"time"

	"repro/internal/capacity"
	"repro/internal/lhist"
	"repro/internal/workload"
)

// capacityLoop is the adaptive-admission control loop: a periodic
// goroutine that windows the gateway's live counters into a
// capacity.Observation, runs the analytic model's controller, and
// applies the decision — resizing the worker pool and moving the
// admission bound. All windowing state (prev* fields) is touched only
// from the loop goroutine; the published view behind mu is what /stats
// reads.
type capacityLoop struct {
	s        *Server
	ctrl     *capacity.Controller
	interval time.Duration

	stopCh chan struct{}
	doneCh chan struct{}

	// Loop-goroutine-only windowing state.
	prevAt     time.Time
	prevMsgs   uint64
	prevShed   uint64
	prevLat    lhist.Counts
	prevUCLat  [numTraceUseCases]lhist.Counts
	prevStages [numTraceSlots][numStages]lhist.Counts

	mu       sync.Mutex
	lastObs  observedWindow
	lastDec  capacity.Decision
	perUC    map[string]UseCaseModelError
	haveTick bool
}

// observedWindow is the measured side of one control tick, published on
// /stats next to the model's prediction.
type observedWindow struct {
	WindowSec     float64 `json:"window_sec"`
	OfferedPerSec float64 `json:"offered_per_sec"`
	GoodputPerSec float64 `json:"goodput_per_sec"`
	P99US         uint64  `json:"p99_us"`
	// Per-stage mean service demands (microseconds) seeding the model.
	ReadUS    float64 `json:"read_us"`
	ParseUS   float64 `json:"parse_us"`
	ProcessUS float64 `json:"process_us"`
	ForwardUS float64 `json:"forward_us"`
	WriteUS   float64 `json:"write_us"`
}

// UseCaseModelError is the per-use-case model check the acceptance
// criteria ask for: that use case's own model predicted against its own
// measured goodput over the same window.
type UseCaseModelError struct {
	OfferedPerSec   float64 `json:"offered_per_sec"`
	PredictedPerSec float64 `json:"predicted_per_sec"`
	ErrPct          float64 `json:"err_pct"`
}

// CapacitySnapshot is the /stats "capacity" section.
type CapacitySnapshot struct {
	Enabled          bool    `json:"enabled"`
	TargetP99US      int64   `json:"target_p99_us"`
	AdaptIntervalMS  int64   `json:"adapt_interval_ms"`
	Workers          int     `json:"workers"`
	AdmissionBound   int64   `json:"admission_bound"`
	InitialBound     int64   `json:"initial_bound"`
	Fallback         bool    `json:"fallback"`
	Reason           string  `json:"reason"`
	AdmissiblePerSec float64 `json:"admissible_per_sec"`
	// Model-vs-measured error over the last window.
	ThroughputErrPct float64 `json:"throughput_err_pct"`
	P99ErrPct        float64 `json:"p99_err_pct"`

	Observed   *observedWindow              `json:"observed,omitempty"`
	Predicted  *capacity.Prediction         `json:"predicted,omitempty"`
	PerUseCase map[string]UseCaseModelError `json:"per_usecase,omitempty"`
	Counters   capacity.ControllerCounters  `json:"counters"`
}

// newCapacityLoop wires the controller to the server's knobs. cfg is
// already defaulted by New.
func newCapacityLoop(s *Server) *capacityLoop {
	ctrl, err := capacity.NewController(capacity.ControllerConfig{
		TargetP99:     s.cfg.TargetP99,
		StaticWorkers: s.cfg.Workers,
		StaticBound:   int64(s.cfg.Workers + s.cfg.QueueDepth),
		MinWorkers:    s.cfg.MinWorkers,
		MaxWorkers:    s.cfg.MaxWorkers,
		MaxInflight:   s.cfg.MaxInflight,
	})
	if err != nil {
		// Config was validated by New; a failure here is a programming
		// error, surfaced loudly.
		panic("gateway: capacity controller config: " + err.Error())
	}
	return &capacityLoop{
		s:        s,
		ctrl:     ctrl,
		interval: s.cfg.AdaptInterval,
		stopCh:   make(chan struct{}),
		doneCh:   make(chan struct{}),
	}
}

func (cl *capacityLoop) start() {
	cl.prevAt = time.Now()
	go cl.run()
}

// stop joins the loop goroutine; after it returns no resize or bound
// store can happen, so shutdown may safely close the job queue.
func (cl *capacityLoop) stop() {
	close(cl.stopCh)
	<-cl.doneCh
}

func (cl *capacityLoop) run() {
	defer close(cl.doneCh)
	t := time.NewTicker(cl.interval)
	defer t.Stop()
	for {
		select {
		case <-cl.stopCh:
			return
		case now := <-t.C:
			cl.tick(now)
		}
	}
}

// stageDemandSec reads one stage's windowed mean demand in seconds,
// aggregated across the use-case tracer slots (the control-plane GET
// slot is excluded — GETs never hold a worker). Falls back to the
// cumulative mean while the window is empty, so a freshly started
// gateway gets demands as soon as the first traced requests land.
func stageDemandSec(cur, prev *[numTraceSlots][numStages]lhist.Counts, st Stage) float64 {
	var winN, winSum, cumN, cumSum uint64
	for slot := 0; slot < numTraceUseCases; slot++ {
		c := cur[slot][st]
		w := c.Sub(prev[slot][st])
		winN += w.N
		winSum += w.SumUS
		cumN += c.N
		cumSum += c.SumUS
	}
	if winN > 0 {
		return float64(winSum) / float64(winN) / 1e6
	}
	if cumN > 0 {
		return float64(cumSum) / float64(cumN) / 1e6
	}
	return 0
}

// tick runs one control step: window the counters, observe, decide,
// apply, publish.
func (cl *capacityLoop) tick(now time.Time) {
	s := cl.s
	window := now.Sub(cl.prevAt).Seconds()
	if window <= 0 {
		return
	}

	msgs := s.Metrics.Messages.Load()
	shed := s.Metrics.Shed.Load()
	lat := s.Metrics.Latency.Counts()
	var stages [numTraceSlots][numStages]lhist.Counts
	for slot := 0; slot < numTraceSlots; slot++ {
		for st := Stage(0); st < numStages; st++ {
			stages[slot][st] = s.tracer.stageCounts(slot, st)
		}
	}

	goodput := float64(msgs-cl.prevMsgs) / window
	offered := goodput + float64(shed-cl.prevShed)/window
	latWin := lat.Sub(cl.prevLat)
	p99 := time.Duration(latWin.Quantile(0.99)) * time.Microsecond

	demands := capacity.StageDemands{
		Read:    stageDemandSec(&stages, &cl.prevStages, StageRead),
		Parse:   stageDemandSec(&stages, &cl.prevStages, StageParse),
		Process: stageDemandSec(&stages, &cl.prevStages, StageProcess),
		Forward: stageDemandSec(&stages, &cl.prevStages, StageForward),
		Write:   stageDemandSec(&stages, &cl.prevStages, StageWrite),
	}

	workers := int(s.poolSize.Load())
	backendConns, backends := 0, 0
	if s.fwd != nil && demands.Forward > 0 {
		backendConns = s.cfg.Upstream.MaxIdlePerBackend
		if backendConns <= 0 {
			backendConns = 8 // the upstream package's default
		}
		backends = 1
	}

	obs := capacity.Observation{
		At:            now,
		OfferedPerSec: offered,
		GoodputPerSec: goodput,
		P99:           p99,
		Demands:       demands,
		Workers:       workers,
		BackendConns:  backendConns,
		Backends:      backends,
	}
	dec := cl.ctrl.Decide(now, obs)

	// Apply: the admission bound is a single atomic store; the pool
	// resize is serialized against shutdown by setPoolSize itself.
	s.admitBound.Store(dec.Bound)
	if dec.Workers != workers {
		s.setPoolSize(dec.Workers)
	}

	perUC := cl.perUseCaseErrors(&stages, window, workers, backendConns, backends)

	// Publish for /stats, then roll the window.
	cl.mu.Lock()
	cl.lastObs = observedWindow{
		WindowSec:     window,
		OfferedPerSec: offered,
		GoodputPerSec: goodput,
		P99US:         latWin.Quantile(0.99),
		ReadUS:        demands.Read * 1e6,
		ParseUS:       demands.Parse * 1e6,
		ProcessUS:     demands.Process * 1e6,
		ForwardUS:     demands.Forward * 1e6,
		WriteUS:       demands.Write * 1e6,
	}
	cl.lastDec = dec
	if len(perUC) > 0 {
		cl.perUC = perUC
	}
	cl.haveTick = true
	cl.mu.Unlock()

	cl.prevAt = now
	cl.prevMsgs = msgs
	cl.prevShed = shed
	cl.prevLat = lat
	for i := range s.Metrics.LatencyByUC {
		cl.prevUCLat[i] = s.Metrics.LatencyByUC[i].Counts()
	}
	cl.prevStages = stages
}

// perUseCaseErrors builds each active use case's own model from its own
// windowed stage demands and compares predicted throughput against that
// use case's measured completion rate — the per-use-case model check the
// /stats capacity section reports.
func (cl *capacityLoop) perUseCaseErrors(stages *[numTraceSlots][numStages]lhist.Counts, window float64, workers, backendConns, backends int) map[string]UseCaseModelError {
	s := cl.s
	var out map[string]UseCaseModelError
	for uc := 0; uc < numTraceUseCases; uc++ {
		ucLat := s.Metrics.LatencyByUC[uc].Counts()
		done := float64(ucLat.Sub(cl.prevUCLat[uc]).N) / window
		if done <= 0 {
			continue
		}
		one := func(st Stage) float64 {
			w := stages[uc][st].Sub(cl.prevStages[uc][st])
			if w.N > 0 {
				return w.MeanUS() / 1e6
			}
			if c := stages[uc][st]; c.N > 0 {
				return c.MeanUS() / 1e6
			}
			return 0
		}
		d := capacity.StageDemands{
			Read: one(StageRead), Parse: one(StageParse), Process: one(StageProcess),
			Forward: one(StageForward), Write: one(StageWrite),
		}
		if d.WorkerDemand() <= 0 {
			continue
		}
		m := capacity.GatewayModel(d, capacity.GatewayTopology{
			Workers: workers, BackendConns: backendConns, Backends: backends,
		})
		p := m.Predict(done)
		errPct := 0.0
		if done > 0 {
			errPct = 100 * abs(p.ThroughputPerSec-done) / done
		}
		if out == nil {
			out = map[string]UseCaseModelError{}
		}
		out[workload.UseCase(uc).String()] = UseCaseModelError{
			OfferedPerSec:   done,
			PredictedPerSec: p.ThroughputPerSec,
			ErrPct:          errPct,
		}
	}
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// snapshot renders the /stats capacity section.
func (cl *capacityLoop) snapshot() *CapacitySnapshot {
	s := cl.s
	cl.mu.Lock()
	defer cl.mu.Unlock()
	snap := &CapacitySnapshot{
		Enabled:         true,
		TargetP99US:     s.cfg.TargetP99.Microseconds(),
		AdaptIntervalMS: cl.interval.Milliseconds(),
		Workers:         int(s.poolSize.Load()),
		AdmissionBound:  s.admitBound.Load(),
		InitialBound:    s.cfg.MaxInflight,
		Counters:        cl.ctrl.Counters(),
	}
	if !cl.haveTick {
		snap.Reason = "no control tick yet"
		return snap
	}
	snap.Fallback = cl.lastDec.Fallback
	snap.Reason = cl.lastDec.Reason
	snap.AdmissiblePerSec = cl.lastDec.AdmissibleLoad
	snap.ThroughputErrPct = cl.lastDec.ThroughputErrPct
	snap.P99ErrPct = cl.lastDec.P99ErrPct
	obs := cl.lastObs
	snap.Observed = &obs
	pred := cl.lastDec.Predicted
	snap.Predicted = &pred
	if len(cl.perUC) > 0 {
		snap.PerUseCase = make(map[string]UseCaseModelError, len(cl.perUC))
		for k, v := range cl.perUC {
			snap.PerUseCase[k] = v
		}
	}
	return snap
}
