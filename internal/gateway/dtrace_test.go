package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dtrace"
	"repro/internal/upstream"
	"repro/internal/workload"
)

// getTraces issues GET /traces against a gateway or backend address and
// decodes the shared response shape.
func getTraces(t *testing.T, addr, query string) TracesResponse {
	t.Helper()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	path := "/traces"
	if query != "" {
		path += "?" + query
	}
	resp, err := cl.Do([]byte("GET "+path+" HTTP/1.1\r\nHost: x\r\n\r\n"), 5*time.Second)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	if resp.Status != 200 {
		t.Fatalf("GET %s status %d body %s", path, resp.Status, resp.Body)
	}
	var tr TracesResponse
	if err := json.Unmarshal(resp.Body, &tr); err != nil {
		t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, resp.Body)
	}
	return tr
}

// TestDTraceForwardedEndToEnd is the tracing acceptance path: a traced
// client drives FR through a tracing gateway that forwards to a real
// order backend, and the three nodes' span sets must assemble into one
// trace — client request span, adopted gateway stage spans, backend
// serve span — joined purely by trace ID with intact parent links.
func TestDTraceForwardedEndToEnd(t *testing.T) {
	order := startBackend(t, upstream.BackendConfig{Name: "order"})
	srv := startServer(t, Config{
		Workers:        2,
		Trace:          true,
		TraceKeepEvery: 1, // keep every trace: the assertions are deterministic
		Upstream:       upstream.Config{Order: order.Addr().String()},
	})

	rep, err := RunLoad(LoadConfig{
		Addr:       srv.Addr().String(),
		UseCase:    workload.FR,
		Conns:      2,
		Messages:   40,
		TraceEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 40 || rep.Forwarded != 40 {
		t.Fatalf("FR: ok=%d forwarded=%d, want 40/40", rep.OK, rep.Forwarded)
	}
	if len(rep.ClientSpans) != 40 {
		t.Fatalf("client spans: got %d, want 40", len(rep.ClientSpans))
	}
	for _, sp := range rep.ClientSpans {
		if sp.Node != "client" || sp.Name != "request" || sp.TraceID.IsZero() || sp.SpanID.IsZero() {
			t.Fatalf("malformed client span %+v", sp)
		}
	}

	// Gateway side: every request was traced and kept.
	gw := getTraces(t, srv.Addr().String(), "")
	if gw.Node != "gateway" {
		t.Fatalf("gateway node=%q", gw.Node)
	}
	if gw.Tail.Seen != 40 || gw.Tail.Kept != 40 {
		t.Fatalf("gateway tail seen=%d kept=%d, want 40/40", gw.Tail.Seen, gw.Tail.Kept)
	}
	// Backend side: every forwarded request carried the propagated header.
	be := getTraces(t, order.Addr().String(), "")
	if be.Node != "order" {
		t.Fatalf("backend node=%q", be.Node)
	}
	if be.Tail.Kept != 40 {
		t.Fatalf("backend tail kept=%d, want 40", be.Tail.Kept)
	}

	// Pool every span from all three vantage points and assemble.
	var spans []dtrace.Span
	spans = append(spans, rep.ClientSpans...)
	for _, tr := range gw.Traces {
		spans = append(spans, tr.Spans...)
	}
	for _, tr := range be.Traces {
		spans = append(spans, tr.Spans...)
	}
	asm := dtrace.Assemble(spans)
	if len(asm) != 40 {
		t.Fatalf("assembled %d traces, want 40", len(asm))
	}

	wantStages := []string{"read", "queue", "parse", "process", "forward", "write"}
	for _, at := range asm {
		if got := strings.Join(at.Nodes, ","); got != "client,gateway,order" {
			t.Fatalf("trace %v nodes=%q, want client,gateway,order", at.TraceID, got)
		}
		// Exactly one root: the client request span.
		if len(at.Roots) != 1 {
			t.Fatalf("trace %v has %d roots", at.TraceID, len(at.Roots))
		}
		var client, gwRoot, fwd, serve *dtrace.Span
		byName := map[string]*dtrace.Span{}
		for i := range at.Spans {
			sp := &at.Spans[i]
			switch {
			case sp.Node == "client":
				client = sp
			case sp.Node == "gateway" && sp.Name == "gateway":
				gwRoot = sp
			case sp.Node == "gateway" && sp.Name == "forward":
				fwd = sp
			case sp.Node == "order" && sp.Name == "serve":
				serve = sp
			}
			if sp.Node == "gateway" {
				byName[sp.Name] = sp
			}
		}
		if client == nil || gwRoot == nil || fwd == nil || serve == nil {
			t.Fatalf("trace %v missing a span: client=%v gw=%v fwd=%v serve=%v",
				at.TraceID, client != nil, gwRoot != nil, fwd != nil, serve != nil)
		}
		// Parent links: client → gateway root → forward → backend serve.
		if gwRoot.ParentID != client.SpanID {
			t.Fatalf("gateway root parent %v, want client span %v", gwRoot.ParentID, client.SpanID)
		}
		if fwd.ParentID != gwRoot.SpanID {
			t.Fatalf("forward parent %v, want gateway root %v", fwd.ParentID, gwRoot.SpanID)
		}
		if serve.ParentID != fwd.SpanID {
			t.Fatalf("serve parent %v, want forward span %v", serve.ParentID, fwd.SpanID)
		}
		if serve.TraceID != client.TraceID {
			t.Fatalf("serve trace %v != client trace %v", serve.TraceID, client.TraceID)
		}
		for _, name := range wantStages {
			if byName[name] == nil {
				t.Fatalf("trace %v missing gateway stage %q (have %v)", at.TraceID, name, at.Spans)
			}
		}
		if gwRoot.UseCase != "FR" || gwRoot.Outcome != "forwarded" || gwRoot.Status != 200 {
			t.Fatalf("gateway root annotation %+v", gwRoot)
		}
	}

	// The assembled report renders without error and names all nodes.
	var buf bytes.Buffer
	dtrace.FormatReport(&buf, asm, dtrace.ReportOptions{})
	out := buf.String()
	for _, want := range []string{"assembled traces: 40", "cross-node traces: 40/40", "order", "forward"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}

	// /stats carries the tail summary.
	snap := srv.Snapshot()
	if snap.Traces == nil || snap.Traces.Tail.Kept != 40 {
		t.Fatalf("stats traces section %+v", snap.Traces)
	}
}

// TestDTraceTailSampling exercises the probabilistic keep rule end to
// end: with KeepEvery=8 and fast non-error requests, roughly 1-in-8
// survive the tail decision.
func TestDTraceTailSampling(t *testing.T) {
	srv := startServer(t, Config{
		Workers:        2,
		Trace:          true,
		TraceKeepEvery: 8,
		TraceSlowOver:  -1, // disable the slow rule: loopback jitter must not flip keeps
	})
	rep, err := RunLoad(LoadConfig{Addr: srv.Addr().String(), UseCase: workload.FR, Conns: 2, Messages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 64 {
		t.Fatalf("ok=%d, want 64", rep.OK)
	}
	tr := getTraces(t, srv.Addr().String(), "")
	if tr.Tail.Seen != 64 {
		t.Fatalf("tail seen=%d, want 64", tr.Tail.Seen)
	}
	if tr.Tail.Kept != 8 || tr.Tail.KeptProb != 8 {
		t.Fatalf("tail kept=%d kept_prob=%d, want 8/8 (%+v)", tr.Tail.Kept, tr.Tail.KeptProb, tr.Tail)
	}
	// last=N slicing.
	if got := getTraces(t, srv.Addr().String(), "last=3"); len(got.Traces) != 3 {
		t.Fatalf("last=3 returned %d traces", len(got.Traces))
	}
}

// TestDTraceShedKeptAndSlowLogged drives the queue-full path with
// tracing on: shed requests must always survive tail sampling (they are
// exactly the requests worth a post-mortem) and must emit structured
// slow-request log lines.
func TestDTraceShedKeptAndSlowLogged(t *testing.T) {
	var slow syncBuffer
	srv := startServer(t, Config{
		Workers:        1,
		QueueDepth:     1,
		ProcessDelay:   20 * time.Millisecond,
		Trace:          true,
		TraceKeepEvery: 1 << 30, // effectively kill the probabilistic rule: only tail outcomes survive
		TraceSlowOver:  -1,      // and the slow rule too
		SlowLog:        &slow,
	})

	const conns = 8
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for m := 0; m < 10; m++ {
				if _, err := cl.Do(workload.HTTPRequest(i*10+m, workload.FR), 5*time.Second); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	shed := srv.Metrics.Shed.Load()
	if shed == 0 {
		t.Fatal("no sheds under saturation — test premise broken")
	}
	tr := getTraces(t, srv.Addr().String(), "")
	if tr.Tail.KeptErr != shed || tr.Tail.Kept != shed {
		t.Fatalf("tail kept=%d kept_err=%d, want both == shed count %d", tr.Tail.Kept, tr.Tail.KeptErr, shed)
	}
	var found bool
	for _, kept := range tr.Traces {
		root := kept.Spans[0]
		if root.Outcome != "shed" || root.Status != 503 {
			t.Fatalf("kept trace root %+v, want outcome=shed status=503", root)
		}
		found = true
	}
	if !found {
		t.Fatal("no kept shed traces")
	}
	log := slow.String()
	if !strings.Contains(log, "slow-request trace=") || !strings.Contains(log, "outcome=shed") || !strings.Contains(log, "status=503") {
		t.Fatalf("slow log missing shed line:\n%s", log)
	}
}

// TestDTraceIdleTimeoutKept reaps a mid-request stall and asserts the
// synthetic idle-timeout trace lands in the ring and the slow log.
func TestDTraceIdleTimeoutKept(t *testing.T) {
	var slow syncBuffer
	srv := startServer(t, Config{
		Workers:        1,
		IdleTimeout:    100 * time.Millisecond,
		Trace:          true,
		TraceKeepEvery: 1 << 30,
		TraceSlowOver:  -1,
		SlowLog:        &slow,
	})
	c, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A partial request: headers promised, body never sent.
	if _, err := c.Write([]byte("POST /order HTTP/1.1\r\nContent-Length: 100\r\n\r\n")); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if srv.Metrics.IdleTimeouts.Load() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle timeout never fired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	tr := getTraces(t, srv.Addr().String(), "")
	if tr.Tail.Kept != 1 || tr.Tail.KeptErr != 1 {
		t.Fatalf("tail %+v, want exactly the idle-timeout trace kept", tr.Tail)
	}
	root := tr.Traces[0].Spans[0]
	if root.Outcome != "idle-timeout" || root.Node != "gateway" {
		t.Fatalf("kept root %+v, want outcome=idle-timeout", root)
	}
	if !strings.Contains(slow.String(), "outcome=idle-timeout") {
		t.Fatalf("slow log missing idle-timeout line:\n%s", slow.String())
	}
}

// TestDTraceDisabled404 checks /traces answers 404 when tracing is off
// and that /stats omits the traces section.
func TestDTraceDisabled404(t *testing.T) {
	srv := startServer(t, Config{Workers: 1})
	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Do([]byte("GET /traces HTTP/1.1\r\nHost: x\r\n\r\n"), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 404 {
		t.Fatalf("GET /traces with tracing off: status %d, want 404", resp.Status)
	}
	if snap := srv.Snapshot(); snap.Traces != nil {
		t.Fatalf("stats traces section present with tracing off: %+v", snap.Traces)
	}
}

// TestDTraceConfigValidation rejects the nonsense knob values.
func TestDTraceConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Trace: true, TraceCapacity: -1},
		{SlowLogPerSec: -1},
	} {
		if _, err := New(cfg); err == nil {
			t.Fatalf("New(%+v) accepted invalid config", cfg)
		}
	}
}

// TestSlowLogRateLimit exercises the per-second budget and the
// suppressed-count line directly.
func TestSlowLogRateLimit(t *testing.T) {
	var buf bytes.Buffer
	l := &slowLogger{w: &buf, perSec: 2}
	spans := []dtrace.Span{{TraceID: 1, SpanID: 2, Node: "gateway", Name: "gateway", DurUS: 1000, Outcome: "shed", Status: 503}}

	// Pin the window to "now" and exhaust the budget.
	l.sec = time.Now().Unix()
	l.n = l.perSec
	for i := 0; i < 3; i++ {
		l.log(spans)
	}
	if got := buf.String(); got != "" {
		t.Fatalf("over-budget lines emitted:\n%s", got)
	}
	if l.dropped != 3 {
		t.Fatalf("dropped=%d, want 3", l.dropped)
	}
	// Roll the window: the suppression summary and the new line appear.
	l.sec = 0
	l.log(spans)
	out := buf.String()
	if !strings.Contains(out, "suppressed=3") {
		t.Fatalf("missing suppression summary:\n%s", out)
	}
	if !strings.Contains(out, "slow-request trace=0000000000000001 uc=- outcome=shed status=503 total=1ms") {
		t.Fatalf("missing rolled-window line:\n%s", out)
	}
}

// TestDTraceParseErrorAnnotated asserts a malformed XML body is traced
// with the parse-error outcome and a 400 status (not a tail keep —
// 4xx is the client's fault — unless probabilistically sampled).
func TestDTraceParseErrorAnnotated(t *testing.T) {
	srv := startServer(t, Config{
		Workers:        1,
		Trace:          true,
		TraceKeepEvery: 1,
	})
	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	body := "<orde" // truncated XML
	req := fmt.Sprintf("POST /service/CBR HTTP/1.1\r\nContent-Type: text/xml\r\nContent-Length: %d\r\n\r\n%s", len(body), body)
	resp, err := cl.Do([]byte(req), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 400 {
		t.Fatalf("status %d, want 400", resp.Status)
	}
	tr := getTraces(t, srv.Addr().String(), "")
	if len(tr.Traces) != 1 {
		t.Fatalf("kept %d traces, want 1", len(tr.Traces))
	}
	root := tr.Traces[0].Spans[0]
	if root.Outcome != "parse-error" || root.Status != 400 {
		t.Fatalf("root %+v, want outcome=parse-error status=400", root)
	}
}
