package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/session"
	"repro/internal/workload"
)

// fetchJSON GETs target from the gateway and decodes the JSON body into v.
func fetchJSON(t *testing.T, addr, target string, v any) int {
	t.Helper()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Do([]byte(fmt.Sprintf("GET %s HTTP/1.1\r\nHost: x\r\n\r\n", target)), 5*time.Second)
	if err != nil {
		t.Fatalf("GET %s: %v", target, err)
	}
	if resp.Status == 200 {
		if err := json.Unmarshal(resp.Body, v); err != nil {
			t.Fatalf("GET %s: body not JSON: %v\n%s", target, err, resp.Body)
		}
	}
	return resp.Status
}

// TestTimelineEndpoint is the sampling session's acceptance path, run in
// both operating modes: whatever the host grants (hw where perf exists,
// the runtime-only fallback elsewhere) and the env-forced fallback. In
// either mode /timeline must return >= 2 samples whose per-worker
// derived blocks are populated and labeled with their source.
func TestTimelineEndpoint(t *testing.T) {
	modes := []struct {
		name  string
		force bool
	}{{"host-mode", false}, {"forced-fallback", true}}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			if m.force {
				t.Setenv(ForceRuntimeOnlyEnv, "1")
			} else if os.Getenv(ForceRuntimeOnlyEnv) != "" {
				t.Skipf("%s set in environment", ForceRuntimeOnlyEnv)
			}
			srv := startServer(t, Config{
				Workers:        2,
				UseCase:        workload.CBR,
				Timeline:       true,
				SampleInterval: 10 * time.Millisecond,
			})
			addr := srv.Addr().String()
			if _, err := RunLoad(LoadConfig{Addr: addr, UseCase: workload.CBR, Conns: 2, Messages: 60}); err != nil {
				t.Fatal(err)
			}
			// Let the 10ms sampler tick a few times past the load.
			deadline := time.Now().Add(2 * time.Second)
			var tr TimelineResponse
			for {
				if st := fetchJSON(t, addr, "/timeline", &tr); st != 200 {
					t.Fatalf("GET /timeline status %d", st)
				}
				if tr.SamplesReturned >= 2 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("timeline never reached 2 samples: %+v", tr)
				}
				time.Sleep(10 * time.Millisecond)
			}
			if tr.IntervalMS != 10 {
				t.Fatalf("interval_ms=%v, want 10", tr.IntervalMS)
			}
			var sawMsgs bool
			for _, s := range tr.Samples {
				if s.DerivedSource == "" || s.CPI <= 0 {
					t.Fatalf("sample missing derived metrics: %+v", s)
				}
				if m.force && s.DerivedSource != "model" {
					t.Fatalf("forced fallback sample labeled %q, want model", s.DerivedSource)
				}
				if len(s.Workers) != 2 {
					t.Fatalf("sample has %d worker entries, want 2: %+v", len(s.Workers), s)
				}
				for _, w := range s.Workers {
					if w.DerivedSource == "" || w.CPI <= 0 {
						t.Fatalf("worker entry missing derived metrics: %+v", w)
					}
				}
				if s.Messages > 0 {
					sawMsgs = true
				}
			}
			if !sawMsgs {
				t.Fatalf("no sample recorded message throughput: %+v", tr.Samples)
			}

			// ?last=N bounds the response; bad N is rejected.
			if st := fetchJSON(t, addr, "/timeline?last=1", &tr); st != 200 || tr.SamplesReturned != 1 {
				t.Fatalf("last=1: status=%d returned=%d", st, tr.SamplesReturned)
			}
			var bad struct{}
			if st := fetchJSON(t, addr, "/timeline?last=x", &bad); st != 404 {
				t.Fatalf("last=x: status=%d, want 404", st)
			}

			// /stats carries the session summary.
			var snap Snapshot
			if st := fetchJSON(t, addr, "/stats", &snap); st != 200 {
				t.Fatalf("GET /stats status %d", st)
			}
			if snap.Timeline == nil || snap.Timeline.SamplesTotal < 2 || snap.Timeline.Last == nil {
				t.Fatalf("stats timeline section missing or empty: %+v", snap.Timeline)
			}

			// The CSV dump carries the same ring.
			var sb strings.Builder
			n, err := srv.WriteTimelineCSV(&sb)
			if err != nil || n < 2 {
				t.Fatalf("WriteTimelineCSV: n=%d err=%v", n, err)
			}
			if !strings.HasPrefix(sb.String(), "t_ms,") {
				t.Fatalf("CSV missing header:\n%s", sb.String()[:80])
			}
		})
	}
}

// TestTimelineDisabled404 keeps the endpoint opt-in: without
// Config.Timeline, /timeline is a 404 and /stats has no timeline section.
func TestTimelineDisabled404(t *testing.T) {
	srv := startServer(t, Config{Workers: 1})
	var v struct{}
	if st := fetchJSON(t, srv.Addr().String(), "/timeline", &v); st != 404 {
		t.Fatalf("status=%d, want 404", st)
	}
	if snap := srv.Snapshot(); snap.Timeline != nil {
		t.Fatalf("timeline section present without Config.Timeline: %+v", snap.Timeline)
	}
	if _, err := srv.WriteTimelineCSV(&strings.Builder{}); err == nil {
		t.Fatal("WriteTimelineCSV succeeded without a session")
	}
}

// TestWorkerGroupLifecycle proves the per-worker measurement teardown:
// every registered worker unregisters on exit, every opened per-thread
// event group is closed (no fd leak), and the worker goroutines join.
func TestWorkerGroupLifecycle(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, err := New(Config{Workers: 3, UseCase: workload.CBR, Counters: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	hwMode := false
	if mode, _ := srv.CountersMode(); mode == "hw" {
		hwMode = true
	}

	// Workers register as their goroutines come up.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, live := srv.counters.workerGroupStats(); live == 3 {
			break
		}
		if time.Now().After(deadline) {
			_, _, live := srv.counters.workerGroupStats()
			t.Fatalf("only %d/3 workers registered", live)
		}
		time.Sleep(time.Millisecond)
	}
	opened, _, _ := srv.counters.workerGroupStats()
	if hwMode && opened != 3 {
		t.Fatalf("hw mode opened %d per-thread groups, want 3", opened)
	}
	if fds, ok := countFDs(); ok && hwMode && fds == 0 {
		t.Fatal("hw mode but no open fds counted") // sanity on the counter itself
	}

	if _, err := RunLoad(LoadConfig{Addr: srv.Addr().String(), UseCase: workload.CBR, Conns: 2, Messages: 30}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	opened, closed, live := srv.counters.workerGroupStats()
	if live != 0 {
		t.Fatalf("%d workers still registered after shutdown", live)
	}
	if opened != closed {
		t.Fatalf("per-thread groups leaked: opened=%d closed=%d", opened, closed)
	}

	// The pool goroutines joined (Shutdown waits on workerWG); allow the
	// runtime a moment to retire them before comparing.
	deadline = time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+1 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// countFDs reports the process's open descriptor count where /proc
// exposes it.
func countFDs() (int, bool) {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return 0, false
	}
	return len(ents), true
}

// TestWorkerGroupFDsReleased is the fd-leak test proper: across a full
// start/load/shutdown cycle with the measurement layer on, the process's
// descriptor count returns to its baseline. Only meaningful where /proc
// exists; the group accounting in TestWorkerGroupLifecycle covers the
// rest.
func TestWorkerGroupFDsReleased(t *testing.T) {
	if _, ok := countFDs(); !ok {
		t.Skip("no /proc/self/fd on this platform")
	}
	// One warmup cycle so lazily-created runtime fds (epoll, etc.) exist
	// before the baseline is taken.
	cycle := func() {
		srv, err := New(Config{Workers: 3, UseCase: workload.CBR, Counters: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		if _, err := RunLoad(LoadConfig{Addr: srv.Addr().String(), UseCase: workload.CBR, Conns: 2, Messages: 20}); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
	}
	cycle()
	base, _ := countFDs()
	cycle()
	after, _ := countFDs()
	if after > base {
		t.Fatalf("fd count grew across a gateway cycle: %d -> %d", base, after)
	}
}

// TestStageTracing exercises the per-request stage trace: with every
// request sampled, the /stats stages section must carry per-use-case
// read/queue/parse/process/write populations, and the per-use-case
// latency histograms must split accordingly.
func TestStageTracing(t *testing.T) {
	srv := startServer(t, Config{Workers: 2, UseCase: workload.CBR, TraceEvery: 1})
	addr := srv.Addr().String()
	if _, err := RunLoad(LoadConfig{Addr: addr, UseCase: workload.CBR, Conns: 2, Messages: 40}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunLoad(LoadConfig{Addr: addr, UseCase: workload.SV, Conns: 2, Messages: 30}); err != nil {
		t.Fatal(err)
	}

	snap := srv.Snapshot()
	if snap.Stages == nil {
		t.Fatal("no stages section with TraceEvery=1")
	}
	for _, uc := range []string{"CBR", "SV"} {
		st, ok := snap.Stages[uc]
		if !ok {
			t.Fatalf("stages missing %s: %v", uc, snap.Stages)
		}
		for _, name := range []string{"read", "queue", "parse", "process", "write"} {
			h, ok := st[name]
			if !ok || h.Count == 0 {
				t.Fatalf("%s stage %q empty: %+v", uc, name, st)
			}
		}
		if _, ok := st["forward"]; ok {
			t.Fatalf("%s traced a forward stage with no backends", uc)
		}
		lh, ok := snap.LatencyByUseCase[uc]
		if !ok || lh.Count == 0 {
			t.Fatalf("latency_by_usecase missing %s: %+v", uc, snap.LatencyByUseCase)
		}
	}
	if snap.LatencyByUseCase["CBR"].Count != 40 || snap.LatencyByUseCase["SV"].Count != 30 {
		t.Fatalf("per-use-case latency counts: %+v", snap.LatencyByUseCase)
	}

	// The stage table renderer picks the traces up from sweep rows.
	table := FormatStageTable([]SweepResult{{Procs: 2, Server: snap}})
	if !strings.Contains(table, "CBR") || !strings.Contains(table, "read p50/p99") {
		t.Fatalf("stage table missing traced rows:\n%s", table)
	}
}

// TestTracingOffByDefault keeps the trace opt-in and the sampler honest:
// without TraceEvery there is no stages section.
func TestTracingOffByDefault(t *testing.T) {
	srv := startServer(t, Config{Workers: 1})
	if _, err := RunLoad(LoadConfig{Addr: srv.Addr().String(), UseCase: workload.CBR, Conns: 1, Messages: 10}); err != nil {
		t.Fatal(err)
	}
	if snap := srv.Snapshot(); snap.Stages != nil {
		t.Fatalf("stages section present without TraceEvery: %+v", snap.Stages)
	}
}

// TestObservabilityConfigValidation rejects nonsensical sampling knobs
// with errors instead of silently running a broken session.
func TestObservabilityConfigValidation(t *testing.T) {
	bad := []Config{
		{SampleInterval: -time.Second},
		{SampleCapacity: -1},
		{TraceEvery: -2},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("New(%+v) accepted invalid config", cfg)
		}
	}
	// Timeline implies the measurement layer.
	srv := startServer(t, Config{Workers: 1, Timeline: true, SampleInterval: 10 * time.Millisecond})
	if mode, _ := srv.CountersMode(); mode == "off" {
		t.Fatal("Timeline did not imply Counters")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the flush goroutine writes
// while the test reads progress.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTimelineFlush pins continuous persistence: with a flush target
// configured, samples land on the artifact incrementally while the
// server is still serving (crash safety — no dump-at-exit required),
// each sample exactly once, and shutdown appends the ring's tail. The
// artifact must round-trip through session.ReadCSV with strictly
// increasing timestamps (duplicate-free).
func TestTimelineFlush(t *testing.T) {
	t.Setenv(ForceRuntimeOnlyEnv, "1") // deterministic in either world
	var buf syncBuffer
	srv := startServer(t, Config{
		Workers:               2,
		UseCase:               workload.CBR,
		SampleInterval:        5 * time.Millisecond,
		TimelineFlush:         session.NewAppender(&buf, true),
		TimelineFlushInterval: 10 * time.Millisecond,
	})
	if srv.timeline == nil {
		t.Fatal("TimelineFlush did not imply Timeline")
	}
	addr := srv.Addr().String()
	if _, err := RunLoad(LoadConfig{Addr: addr, UseCase: workload.CBR, Conns: 2, Messages: 40}); err != nil {
		t.Fatal(err)
	}
	// Incremental: rows appear while the server is live.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := strings.Count(buf.String(), "\n"); n >= 3 { // header + 2 rows
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no incremental flush after 2s; artifact:\n%s", buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// On-demand flush (the SIGUSR1 path) interleaves safely with the
	// periodic flusher and never duplicates samples.
	if _, err := srv.FlushTimeline(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	total := srv.timeline.sampler.Total()
	rows, err := session.ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("flushed artifact unreadable: %v\nartifact:\n%s", err, buf.String())
	}
	if uint64(len(rows)) != total {
		t.Fatalf("artifact has %d rows, session recorded %d samples", len(rows), total)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].TMS < rows[i-1].TMS {
			t.Fatalf("rows out of order at %d: %d then %d", i, rows[i-1].TMS, rows[i].TMS)
		}
	}
	if strings.Count(buf.String(), "t_ms,") != 1 {
		t.Fatalf("header written more than once:\n%s", buf.String())
	}
}

// TestTimelineFlushValidation: a negative flush interval is rejected;
// a flush target without an interval stays inert (no session implied).
func TestTimelineFlushValidation(t *testing.T) {
	if _, err := New(Config{TimelineFlushInterval: -time.Second}); err == nil {
		t.Fatal("negative flush interval accepted")
	}
	srv, err := New(Config{TimelineFlush: session.NewAppender(&bytes.Buffer{}, true)})
	if err != nil {
		t.Fatal(err)
	}
	if srv.cfg.Timeline {
		t.Fatal("flush target without interval implied a session")
	}
}
