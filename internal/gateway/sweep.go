package gateway

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"
)

// SweepResult is one row of the scaling study: the gateway run with n
// workers on GOMAXPROCS=n.
type SweepResult struct {
	Procs  int      `json:"gomaxprocs"`
	Report Report   `json:"report"`
	Server Snapshot `json:"server"`
}

// RunSweep measures throughput scaling the way the paper's Figures 5/6
// measure 1-unit→2-unit scaling, but on the live machine: for each entry
// of procs it sets GOMAXPROCS, starts an in-process gateway on loopback
// with a worker pool of the same width, drives it with cfg, and tears it
// down. Like the paper's netperf loopback mode, client and server share
// the machine, so absolute numbers are conservative; the *shape* of the
// curve is the comparable result.
func RunSweep(procs []int, cfg LoadConfig, gw Config) ([]SweepResult, error) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var out []SweepResult
	for _, n := range procs {
		if n <= 0 {
			return out, fmt.Errorf("gateway: invalid GOMAXPROCS %d", n)
		}
		runtime.GOMAXPROCS(n)
		g := gw
		g.Workers = n
		srv, err := New(g)
		if err != nil {
			return out, err
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			return out, err
		}
		c := cfg
		c.Addr = srv.Addr().String()
		rep, runErr := RunLoad(c)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		snap := srv.Snapshot()
		shutErr := srv.Shutdown(ctx)
		cancel()
		if runErr != nil {
			return out, runErr
		}
		if shutErr != nil {
			return out, fmt.Errorf("gateway: shutdown at GOMAXPROCS=%d: %w", n, shutErr)
		}
		out = append(out, SweepResult{Procs: n, Report: rep, Server: snap})
	}
	return out, nil
}

// FormatSweepTable renders the paper-style scaling table: absolute
// throughput per width plus the scaling factor relative to the first row
// (the paper's "performance scalability from one processing unit to two",
// Section 4.2). When the gateway ran in forwarding mode, two upstream
// columns appear: the order backend's p50 round-trip latency (the
// device→endpoint hop the end-to-end FR topology adds) and total retries
// across backends.
func FormatSweepTable(rows []SweepResult) string {
	forwarding := false
	for _, r := range rows {
		if len(r.Server.Upstream) > 0 {
			forwarding = true
			break
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %9s %9s %9s %9s %8s",
		"GOMAXPROCS", "msgs/s", "Mbps", "p50(us)", "p99(us)", "shed", "scaling")
	if forwarding {
		fmt.Fprintf(&b, " %10s %8s", "up-p50(us)", "retries")
	}
	b.WriteByte('\n')
	var base float64
	for _, r := range rows {
		if base == 0 {
			base = r.Report.MsgsPerSec
		}
		scaling := 0.0
		if base > 0 {
			scaling = r.Report.MsgsPerSec / base
		}
		fmt.Fprintf(&b, "%-10d %10.0f %9.1f %9d %9d %9d %8.2f",
			r.Procs, r.Report.MsgsPerSec, r.Report.Mbps,
			r.Report.Latency.P50US, r.Report.Latency.P99US,
			r.Report.Shed, scaling)
		if forwarding {
			var upP50, retries uint64
			if o, ok := r.Server.Upstream["order"]; ok {
				upP50 = o.Latency.P50US
			}
			for _, s := range r.Server.Upstream {
				retries += s.Retries
			}
			fmt.Fprintf(&b, " %10d %8d", upP50, retries)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
