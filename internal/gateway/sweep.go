package gateway

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/capacity"
)

// SweepResult is one row of the scaling study: the gateway run with n
// workers on GOMAXPROCS=n.
type SweepResult struct {
	Procs  int      `json:"gomaxprocs"`
	Report Report   `json:"report"`
	Server Snapshot `json:"server"`
}

// RunSweep measures throughput scaling the way the paper's Figures 5/6
// measure 1-unit→2-unit scaling, but on the live machine: for each entry
// of procs it sets GOMAXPROCS, starts an in-process gateway on loopback
// with a worker pool of the same width, drives it with cfg, and tears it
// down. Like the paper's netperf loopback mode, client and server share
// the machine, so absolute numbers are conservative; the *shape* of the
// curve is the comparable result.
func RunSweep(procs []int, cfg LoadConfig, gw Config) ([]SweepResult, error) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var out []SweepResult
	for _, n := range procs {
		if n <= 0 {
			return out, fmt.Errorf("gateway: invalid GOMAXPROCS %d", n)
		}
		runtime.GOMAXPROCS(n)
		g := gw
		g.Workers = n
		srv, err := New(g)
		if err != nil {
			return out, err
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			return out, err
		}
		c := cfg
		c.Addr = srv.Addr().String()
		rep, runErr := RunLoad(c)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		snap := srv.Snapshot()
		shutErr := srv.Shutdown(ctx)
		cancel()
		if runErr != nil {
			return out, runErr
		}
		if shutErr != nil {
			return out, fmt.Errorf("gateway: shutdown at GOMAXPROCS=%d: %w", n, shutErr)
		}
		out = append(out, SweepResult{Procs: n, Report: rep, Server: snap})
	}
	return out, nil
}

// FormatSweepTable renders the paper-style scaling table: absolute
// throughput per width plus the scaling factor relative to the first row
// (the paper's "performance scalability from one processing unit to two",
// Section 4.2). When the gateway ran in forwarding mode, two upstream
// columns appear: the order backend's p50 round-trip latency (the
// device→endpoint hop the end-to-end FR topology adds) and total retries
// across backends. When the measurement layer was on, three counter
// columns follow — CPI and BrMPR per width (the paper's Tables 4/6 next
// to its Figures 5/6 throughput) and the GC CPU share; in the
// runtime-only fallback the derived values are model predictions, marked
// * and explained by a footer line.
func FormatSweepTable(rows []SweepResult) string {
	forwarding, counters := false, false
	for _, r := range rows {
		if len(r.Server.Upstream) > 0 {
			forwarding = true
		}
		if r.Server.Counters != nil {
			counters = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %9s %9s %9s %9s %8s",
		"GOMAXPROCS", "msgs/s", "Mbps", "p50(us)", "p99(us)", "shed", "scaling")
	if forwarding {
		fmt.Fprintf(&b, " %10s %8s", "up-p50(us)", "retries")
	}
	if counters {
		fmt.Fprintf(&b, " %8s %8s %6s", "cpi", "brmpr%", "gc%")
	}
	b.WriteByte('\n')
	var base float64
	fallback := ""
	for _, r := range rows {
		if base == 0 {
			base = r.Report.MsgsPerSec
		}
		scaling := 0.0
		if base > 0 {
			scaling = r.Report.MsgsPerSec / base
		}
		fmt.Fprintf(&b, "%-10d %10.0f %9.1f %9d %9d %9d %8.2f",
			r.Procs, r.Report.MsgsPerSec, r.Report.Mbps,
			r.Report.Latency.P50US, r.Report.Latency.P99US,
			r.Report.Shed, scaling)
		if forwarding {
			var upP50, retries uint64
			if o, ok := r.Server.Upstream["order"]; ok {
				upP50 = o.Latency.P50US
			}
			for _, s := range r.Server.Upstream {
				retries += s.Retries
			}
			fmt.Fprintf(&b, " %10d %8d", upP50, retries)
		}
		if counters {
			if c := r.Server.Counters; c != nil {
				mark := ""
				if c.DerivedSource == "model" {
					mark = "*"
					if fallback == "" {
						fallback = c.Notice
					}
				}
				fmt.Fprintf(&b, " %8s %8s %6.1f",
					fmt.Sprintf("%.2f%s", c.Derived.CPI, mark),
					fmt.Sprintf("%.2f%s", c.Derived.BrMPR, mark),
					100*c.Runtime.GCCPUFraction)
			} else {
				fmt.Fprintf(&b, " %8s %8s %6s", "-", "-", "-")
			}
		}
		b.WriteByte('\n')
	}
	if fallback != "" {
		fmt.Fprintf(&b, "* model prediction — %s\n", fallback)
	}
	return b.String()
}

// FormatStageTable renders the sweep's per-stage latency breakdown: for
// each width and each use case that traced requests, the sampled
// p50/p99 of every pipeline stage (read→queue→parse→process→forward→
// write, microseconds). This is the live analogue of the paper's
// per-phase profile next to its scaling figures — it shows *where* the
// added width went (queue wait collapsing, parse staying flat, ...).
// Empty when no row carried stage traces.
func FormatStageTable(rows []SweepResult) string {
	any := false
	for _, r := range rows {
		if len(r.Server.Stages) > 0 {
			any = true
			break
		}
	}
	if !any {
		return ""
	}
	stages := StageNames()
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-7s", "GOMAXPROCS", "usecase")
	for _, st := range stages {
		fmt.Fprintf(&b, " %13s", st+" p50/p99")
	}
	b.WriteString("  (us)\n")
	for _, r := range rows {
		for _, uc := range stageUseCaseOrder(r.Server.Stages) {
			fmt.Fprintf(&b, "%-10d %-7s", r.Procs, uc)
			for _, st := range stages {
				s, ok := r.Server.Stages[uc][st]
				if !ok || s.Count == 0 {
					fmt.Fprintf(&b, " %13s", "-")
					continue
				}
				fmt.Fprintf(&b, " %13s", fmt.Sprintf("%d/%d", s.P50US, s.P99US))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// stageUseCaseOrder lists the snapshot's slots in pipeline-enum order
// (the control-plane GET row last) so the table is stable across runs.
func stageUseCaseOrder(s StageSnapshot) []string {
	var out []string
	for slot := 0; slot < numTraceSlots; slot++ {
		name := traceSlotName(slot)
		if _, ok := s[name]; ok {
			out = append(out, name)
		}
	}
	return out
}

// sweepStageDemands rebuilds capacity.StageDemands from a sweep row's
// stage snapshot: per-stage means aggregated across the use-case rows
// (the control-plane GET row excluded), weighted by trace count.
func sweepStageDemands(s StageSnapshot) capacity.StageDemands {
	mean := func(stage string) float64 {
		var n uint64
		var sum float64
		for uc, stages := range s {
			if uc == "GET" {
				continue
			}
			if h, ok := stages[stage]; ok {
				sum += h.MeanUS * float64(h.Count)
				n += h.Count
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n) / 1e6
	}
	return capacity.StageDemands{
		Read:    mean("read"),
		Parse:   mean("parse"),
		Process: mean("process"),
		Forward: mean("forward"),
		Write:   mean("write"),
	}
}

// FormatModelTable renders the analytic capacity model next to the
// measured sweep — per width, the model is seeded with that row's own
// traced stage demands and solved at the row's offered load, so each
// line carries the model's throughput and p99 error at that load point
// (the live half of the paper's Figures 5/6 against the analytic half).
// Empty when no row carries stage traces.
func FormatModelTable(rows []SweepResult, targetP99 time.Duration) string {
	any := false
	for _, r := range rows {
		if len(r.Server.Stages) > 0 {
			any = true
			break
		}
	}
	if !any {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %7s %9s %9s %7s %12s\n",
		"GOMAXPROCS", "offered/s", "meas/s", "pred/s", "err%", "meas-p99", "pred-p99", "err%", "admissible/s")
	for _, r := range rows {
		d := sweepStageDemands(r.Server.Stages)
		if d.WorkerDemand() <= 0 {
			fmt.Fprintf(&b, "%-10d %10s (no stage traces)\n", r.Procs, "-")
			continue
		}
		m := capacity.GatewayModel(d, capacity.GatewayTopology{Workers: r.Procs})
		offered := r.Report.MsgsPerSec
		if r.Report.DurationSec > 0 {
			offered = float64(r.Report.Sent) / r.Report.DurationSec
		}
		p := m.Predict(offered)
		tputErr := pctErr(p.ThroughputPerSec, r.Report.MsgsPerSec)
		p99Err := pctErr(p.P99US, float64(r.Report.Latency.P99US))
		adm := m.MaxLoadForP99(float64(targetP99.Microseconds()))
		fmt.Fprintf(&b, "%-10d %10.0f %10.0f %10.0f %7.1f %9d %9.0f %7.1f %12.0f\n",
			r.Procs, offered, r.Report.MsgsPerSec, p.ThroughputPerSec, tputErr,
			r.Report.Latency.P99US, p.P99US, p99Err, adm)
	}
	fmt.Fprintf(&b, "model seeded from each row's traced stage demands; admissible/s = highest load with predicted p99 <= %v\n", targetP99)
	return b.String()
}

// pctErr is |pred-meas| as a percentage of meas (0 when unmeasured).
func pctErr(pred, meas float64) float64 {
	if meas <= 0 {
		return 0
	}
	e := 100 * (pred - meas) / meas
	if e < 0 {
		return -e
	}
	return e
}
