package gateway

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/workload"
)

// SweepResult is one row of the scaling study: the gateway run with n
// workers on GOMAXPROCS=n.
type SweepResult struct {
	Procs  int      `json:"gomaxprocs"`
	Report Report   `json:"report"`
	Server Snapshot `json:"server"`
}

// RunSweep measures throughput scaling the way the paper's Figures 5/6
// measure 1-unit→2-unit scaling, but on the live machine: for each entry
// of procs it sets GOMAXPROCS, starts an in-process gateway on loopback
// with a worker pool of the same width, drives it with cfg, and tears it
// down. Like the paper's netperf loopback mode, client and server share
// the machine, so absolute numbers are conservative; the *shape* of the
// curve is the comparable result.
func RunSweep(procs []int, cfg LoadConfig, gw Config) ([]SweepResult, error) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var out []SweepResult
	for _, n := range procs {
		if n <= 0 {
			return out, fmt.Errorf("gateway: invalid GOMAXPROCS %d", n)
		}
		runtime.GOMAXPROCS(n)
		g := gw
		g.Workers = n
		srv, err := New(g)
		if err != nil {
			return out, err
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			return out, err
		}
		c := cfg
		c.Addr = srv.Addr().String()
		rep, runErr := RunLoad(c)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		snap := srv.Snapshot()
		shutErr := srv.Shutdown(ctx)
		cancel()
		if runErr != nil {
			return out, runErr
		}
		if shutErr != nil {
			return out, fmt.Errorf("gateway: shutdown at GOMAXPROCS=%d: %w", n, shutErr)
		}
		out = append(out, SweepResult{Procs: n, Report: rep, Server: snap})
	}
	return out, nil
}

// FormatSweepTable renders the paper-style scaling table: absolute
// throughput per width plus the scaling factor relative to the first row
// (the paper's "performance scalability from one processing unit to two",
// Section 4.2). When the gateway ran in forwarding mode, two upstream
// columns appear: the order backend's p50 round-trip latency (the
// device→endpoint hop the end-to-end FR topology adds) and total retries
// across backends. When the measurement layer was on, three counter
// columns follow — CPI and BrMPR per width (the paper's Tables 4/6 next
// to its Figures 5/6 throughput) and the GC CPU share; in the
// runtime-only fallback the derived values are model predictions, marked
// * and explained by a footer line.
func FormatSweepTable(rows []SweepResult) string {
	forwarding, counters := false, false
	for _, r := range rows {
		if len(r.Server.Upstream) > 0 {
			forwarding = true
		}
		if r.Server.Counters != nil {
			counters = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %9s %9s %9s %9s %8s",
		"GOMAXPROCS", "msgs/s", "Mbps", "p50(us)", "p99(us)", "shed", "scaling")
	if forwarding {
		fmt.Fprintf(&b, " %10s %8s", "up-p50(us)", "retries")
	}
	if counters {
		fmt.Fprintf(&b, " %8s %8s %6s", "cpi", "brmpr%", "gc%")
	}
	b.WriteByte('\n')
	var base float64
	fallback := ""
	for _, r := range rows {
		if base == 0 {
			base = r.Report.MsgsPerSec
		}
		scaling := 0.0
		if base > 0 {
			scaling = r.Report.MsgsPerSec / base
		}
		fmt.Fprintf(&b, "%-10d %10.0f %9.1f %9d %9d %9d %8.2f",
			r.Procs, r.Report.MsgsPerSec, r.Report.Mbps,
			r.Report.Latency.P50US, r.Report.Latency.P99US,
			r.Report.Shed, scaling)
		if forwarding {
			var upP50, retries uint64
			if o, ok := r.Server.Upstream["order"]; ok {
				upP50 = o.Latency.P50US
			}
			for _, s := range r.Server.Upstream {
				retries += s.Retries
			}
			fmt.Fprintf(&b, " %10d %8d", upP50, retries)
		}
		if counters {
			if c := r.Server.Counters; c != nil {
				mark := ""
				if c.DerivedSource == "model" {
					mark = "*"
					if fallback == "" {
						fallback = c.Notice
					}
				}
				fmt.Fprintf(&b, " %8s %8s %6.1f",
					fmt.Sprintf("%.2f%s", c.Derived.CPI, mark),
					fmt.Sprintf("%.2f%s", c.Derived.BrMPR, mark),
					100*c.Runtime.GCCPUFraction)
			} else {
				fmt.Fprintf(&b, " %8s %8s %6s", "-", "-", "-")
			}
		}
		b.WriteByte('\n')
	}
	if fallback != "" {
		fmt.Fprintf(&b, "* model prediction — %s\n", fallback)
	}
	return b.String()
}

// FormatStageTable renders the sweep's per-stage latency breakdown: for
// each width and each use case that traced requests, the sampled
// p50/p99 of every pipeline stage (read→queue→parse→process→forward→
// write, microseconds). This is the live analogue of the paper's
// per-phase profile next to its scaling figures — it shows *where* the
// added width went (queue wait collapsing, parse staying flat, ...).
// Empty when no row carried stage traces.
func FormatStageTable(rows []SweepResult) string {
	any := false
	for _, r := range rows {
		if len(r.Server.Stages) > 0 {
			any = true
			break
		}
	}
	if !any {
		return ""
	}
	stages := StageNames()
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-7s", "GOMAXPROCS", "usecase")
	for _, st := range stages {
		fmt.Fprintf(&b, " %13s", st+" p50/p99")
	}
	b.WriteString("  (us)\n")
	for _, r := range rows {
		for _, uc := range stageUseCaseOrder(r.Server.Stages) {
			fmt.Fprintf(&b, "%-10d %-7s", r.Procs, uc)
			for _, st := range stages {
				s, ok := r.Server.Stages[uc][st]
				if !ok || s.Count == 0 {
					fmt.Fprintf(&b, " %13s", "-")
					continue
				}
				fmt.Fprintf(&b, " %13s", fmt.Sprintf("%d/%d", s.P50US, s.P99US))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// stageUseCaseOrder lists the snapshot's use cases in pipeline-enum
// order so the table is stable across runs.
func stageUseCaseOrder(s StageSnapshot) []string {
	var out []string
	for uci := 0; uci < numTraceUseCases; uci++ {
		name := workload.UseCase(uci).String()
		if _, ok := s[name]; ok {
			out = append(out, name)
		}
	}
	return out
}
