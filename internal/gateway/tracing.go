package gateway

import (
	"sync/atomic"
	"time"

	"repro/internal/lhist"
	"repro/internal/workload"
)

// Stage names one segment of a request's path through the gateway —
// the live analogue of the paper's per-phase VTune breakdown: where the
// end-to-end latency histogram says how long a message took, the stage
// trace says where it went.
type Stage int

const (
	// StageRead: wire→memory — framing the request off the socket,
	// first byte to complete body (keep-alive idle time excluded).
	StageRead Stage = iota
	// StageQueue: admission queue wait, enqueue to worker dequeue — the
	// paper's thread-pool queueing delay made visible.
	StageQueue
	// StageParse: the full HTTP parse on the worker.
	StageParse
	// StageProcess: the use-case pipeline — route/validate/inspect.
	StageProcess
	// StageForward: the upstream round trip (forwarding mode only).
	StageForward
	// StageWrite: serializing and writing the response to the client.
	StageWrite
	numStages
)

var stageNames = [numStages]string{
	"read", "queue", "parse", "process", "forward", "write",
}

func (s Stage) String() string {
	if s < 0 || s >= numStages {
		return "invalid"
	}
	return stageNames[s]
}

// numTraceUseCases covers FR/CBR/SV plus the DPI/AUTH/XJ extensions.
const numTraceUseCases = 6

// traceSlotControl is the extra tracer slot for control-plane GETs
// (/stats, /timeline): they bypass the worker pool, but untraced they
// would silently skew nothing while still costing read/process/write
// time on the connection readers — so they get their own row ("GET")
// in the stage breakdown instead.
const traceSlotControl = numTraceUseCases

// numTraceSlots is every use case plus the control-plane slot.
const numTraceSlots = numTraceUseCases + 1

// traceSlotName labels a tracer slot for snapshots and tables.
func traceSlotName(slot int) string {
	if slot == traceSlotControl {
		return "GET"
	}
	return workload.UseCase(slot).String()
}

// stageTracer aggregates cheap monotonic stamps into per-use-case,
// per-stage latency histograms. Requests are sampled 1-in-every so the
// stamps stay off most messages' paths (BenchmarkGatewayTracing guards
// the overhead at <= 3%); the histograms themselves are lock-free, so
// traced requests pay only a handful of time.Now calls and atomic adds.
type stageTracer struct {
	every uint32
	seq   atomic.Uint32
	hists [numTraceSlots][numStages]lhist.Hist
}

// newStageTracer samples one request in every (minimum 1 = every
// request).
func newStageTracer(every int) *stageTracer {
	if every < 1 {
		every = 1
	}
	return &stageTracer{every: uint32(every)}
}

// sample decides whether the next request is traced.
func (t *stageTracer) sample() bool {
	return t.seq.Add(1)%t.every == 0
}

// observe records one stage duration for a traced request.
func (t *stageTracer) observe(uc workload.UseCase, st Stage, d time.Duration) {
	if uc < 0 || int(uc) >= numTraceUseCases || st < 0 || st >= numStages {
		return
	}
	t.hists[uc][st].Observe(d)
}

// observeControl records one stage duration for a traced control-plane
// GET (the /stats path never reaches a worker, so only read/process/
// write carry signal).
func (t *stageTracer) observeControl(st Stage, d time.Duration) {
	if st < 0 || st >= numStages {
		return
	}
	t.hists[traceSlotControl][st].Observe(d)
}

// stageCounts reads one slot+stage histogram's raw counts — the
// capacity control loop's windowing primitive for service demands.
func (t *stageTracer) stageCounts(slot int, st Stage) lhist.Counts {
	return t.hists[slot][st].Counts()
}

// StageSnapshot is the /stats "stages" section: per use case, per stage
// percentile reads of the sampled trace population.
type StageSnapshot map[string]map[string]lhist.Snapshot

// snapshot renders every slot (use case or control plane) that traced
// at least one request.
func (t *stageTracer) snapshot() StageSnapshot {
	out := StageSnapshot{}
	for slot := 0; slot < numTraceSlots; slot++ {
		var stages map[string]lhist.Snapshot
		for st := Stage(0); st < numStages; st++ {
			s := t.hists[slot][st].Snapshot()
			if s.Count == 0 {
				continue
			}
			if stages == nil {
				stages = map[string]lhist.Snapshot{}
			}
			stages[st.String()] = s
		}
		if stages != nil {
			out[traceSlotName(slot)] = stages
		}
	}
	return out
}

// StageNames lists the trace stages in pipeline order, for table
// renderers that want stable column order.
func StageNames() []string {
	out := make([]string, numStages)
	for i := range out {
		out[i] = stageNames[i]
	}
	return out
}
