package gateway

import (
	"sync/atomic"
	"time"

	"repro/internal/lhist"
	"repro/internal/workload"
)

// Stage names one segment of a request's path through the gateway —
// the live analogue of the paper's per-phase VTune breakdown: where the
// end-to-end latency histogram says how long a message took, the stage
// trace says where it went.
type Stage int

const (
	// StageRead: wire→memory — framing the request off the socket,
	// first byte to complete body (keep-alive idle time excluded).
	StageRead Stage = iota
	// StageQueue: admission queue wait, enqueue to worker dequeue — the
	// paper's thread-pool queueing delay made visible.
	StageQueue
	// StageParse: the full HTTP parse on the worker.
	StageParse
	// StageProcess: the use-case pipeline — route/validate/inspect.
	StageProcess
	// StageForward: the upstream round trip (forwarding mode only).
	StageForward
	// StageWrite: serializing and writing the response to the client.
	StageWrite
	numStages
)

var stageNames = [numStages]string{
	"read", "queue", "parse", "process", "forward", "write",
}

func (s Stage) String() string {
	if s < 0 || s >= numStages {
		return "invalid"
	}
	return stageNames[s]
}

// numTraceUseCases covers FR/CBR/SV plus the DPI/AUTH extensions.
const numTraceUseCases = 5

// stageTracer aggregates cheap monotonic stamps into per-use-case,
// per-stage latency histograms. Requests are sampled 1-in-every so the
// stamps stay off most messages' paths (BenchmarkGatewayTracing guards
// the overhead at <= 3%); the histograms themselves are lock-free, so
// traced requests pay only a handful of time.Now calls and atomic adds.
type stageTracer struct {
	every uint32
	seq   atomic.Uint32
	hists [numTraceUseCases][numStages]lhist.Hist
}

// newStageTracer samples one request in every (minimum 1 = every
// request).
func newStageTracer(every int) *stageTracer {
	if every < 1 {
		every = 1
	}
	return &stageTracer{every: uint32(every)}
}

// sample decides whether the next request is traced.
func (t *stageTracer) sample() bool {
	return t.seq.Add(1)%t.every == 0
}

// observe records one stage duration for a traced request.
func (t *stageTracer) observe(uc workload.UseCase, st Stage, d time.Duration) {
	if uc < 0 || int(uc) >= numTraceUseCases || st < 0 || st >= numStages {
		return
	}
	t.hists[uc][st].Observe(d)
}

// StageSnapshot is the /stats "stages" section: per use case, per stage
// percentile reads of the sampled trace population.
type StageSnapshot map[string]map[string]lhist.Snapshot

// snapshot renders every use case that traced at least one request.
func (t *stageTracer) snapshot() StageSnapshot {
	out := StageSnapshot{}
	for uci := 0; uci < numTraceUseCases; uci++ {
		var stages map[string]lhist.Snapshot
		for st := Stage(0); st < numStages; st++ {
			s := t.hists[uci][st].Snapshot()
			if s.Count == 0 {
				continue
			}
			if stages == nil {
				stages = map[string]lhist.Snapshot{}
			}
			stages[st.String()] = s
		}
		if stages != nil {
			out[workload.UseCase(uci).String()] = stages
		}
	}
	return out
}

// StageNames lists the trace stages in pipeline order, for table
// renderers that want stable column order.
func StageNames() []string {
	out := make([]string, numStages)
	for i := range out {
		out[i] = stageNames[i]
	}
	return out
}
