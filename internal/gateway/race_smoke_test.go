package gateway

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
	"repro/internal/xj"
	"repro/internal/xmldom"
)

// TestPooledReuseRaceSmoke hammers the pooled hot path in the shapes
// most likely to expose a lifetime bug in buffer recycling: pipelined
// keep-alive bursts (several requests in flight on one connection),
// mixed use cases churning the shared pools from many connections at
// once, and slow-loris stallers holding partial headers while frames
// recycle around them. The XJ connections assert byte-exact response
// bodies against an off-path DOM translation — a recycled frame or
// response buffer overwritten while its response is still being written
// shows up here as corrupt JSON even when the race detector's sampling
// misses the unsynchronized access.
func TestPooledReuseRaceSmoke(t *testing.T) {
	srv := startServer(t, Config{Workers: 4, IdleTimeout: 2 * time.Second})
	addr := srv.Addr().String()

	// Expected XJ translations, computed with the plain DOM parser so the
	// oracle shares no pooled state with the server under test.
	const pool = 8
	expected := make([][]byte, pool)
	for i := range expected {
		doc, err := xmldom.Parse(workload.SOAPMessage(i))
		if err != nil {
			t.Fatal(err)
		}
		if expected[i], err = xj.Translate(doc); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	fail := func(format string, args ...any) {
		select {
		case errCh <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Slow-loris stallers: park half-written headers on live connections
	// while the pools churn, then vanish.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := net.Dial("tcp", addr)
			if err != nil {
				fail("loris dial: %v", err)
				return
			}
			defer c.Close()
			if _, err := c.Write([]byte("POST /service/XJ HTTP/1.1\r\nContent-Le")); err != nil {
				fail("loris write: %v", err)
				return
			}
			time.Sleep(300 * time.Millisecond)
		}()
	}

	// Pipelined XJ connections: bursts of three requests written
	// back-to-back, responses checked byte-for-byte in order.
	const depth, rounds = 3, 25
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := net.Dial("tcp", addr)
			if err != nil {
				fail("xj dial: %v", err)
				return
			}
			defer c.Close()
			br := bufio.NewReaderSize(c, 32<<10)
			var batch []byte
			for round := 0; round < rounds; round++ {
				var idx [depth]int
				batch = batch[:0]
				for k := 0; k < depth; k++ {
					idx[k] = (g + round*depth + k) % pool
					batch = append(batch, workload.HTTPRequest(idx[k], workload.XJ)...)
				}
				if _, err := c.Write(batch); err != nil {
					fail("xj conn %d write: %v", g, err)
					return
				}
				for k := 0; k < depth; k++ {
					resp, err := readResponse(br)
					if err != nil {
						fail("xj conn %d round %d: %v", g, round, err)
						return
					}
					if resp.Status != 200 || resp.Outcome != "translated" {
						fail("xj conn %d round %d: status=%d outcome=%q", g, round, resp.Status, resp.Outcome)
						return
					}
					if !bytes.Equal(resp.Body, expected[idx[k]]) {
						fail("xj conn %d round %d msg %d: corrupt body\n got %q\nwant %q",
							g, round, idx[k], resp.Body, expected[idx[k]])
						return
					}
				}
			}
		}(g)
	}

	// Mixed-use-case churn across additional connections, so frames and
	// response buffers of different sizes interleave in the same pools.
	for _, uc := range []workload.UseCase{workload.FR, workload.CBR, workload.SV, workload.DPI} {
		wg.Add(1)
		go func(uc workload.UseCase) {
			defer wg.Done()
			rep, err := RunLoad(LoadConfig{Addr: addr, UseCase: uc, Conns: 3, Messages: 150})
			if err != nil {
				fail("%s load: %v", uc, err)
				return
			}
			if rep.OK != 150 {
				fail("%s load: ok=%d of 150 (%+v)", uc, rep.OK, rep)
			}
		}(uc)
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
