package gateway

import (
	"strings"
	"testing"
	"time"

	"repro/internal/lhist"
)

// TestFormatModelTable feeds the sweep's model renderer synthetic rows
// with known stage demands and checks the predicted columns against the
// closed-form M/M/1 answer.
func TestFormatModelTable(t *testing.T) {
	if got := FormatModelTable(nil, 100*time.Millisecond); got != "" {
		t.Fatalf("empty rows should render nothing, got:\n%s", got)
	}

	// 1000us of process demand per message at width 1: capacity is
	// 1000 msgs/s; offered 500/s is rho=0.5.
	stages := StageSnapshot{
		"CBR": {
			"process": lhist.Snapshot{Count: 100, MeanUS: 1000},
		},
		// The control-plane GET row must not pollute the demand means.
		"GET": {
			"process": lhist.Snapshot{Count: 100, MeanUS: 1e6},
		},
	}
	rows := []SweepResult{{
		Procs: 1,
		Report: Report{
			Sent: 500, OK: 480, DurationSec: 1,
			MsgsPerSec: 480,
			Latency:    HistSnapshot{P99US: 5000},
		},
		Server: Snapshot{Stages: stages},
	}}

	table := FormatModelTable(rows, 100*time.Millisecond)
	for _, want := range []string{"GOMAXPROCS", "offered/s", "pred/s", "admissible/s"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	// Offered = Sent/DurationSec = 500; at rho=0.5 the model completes
	// everything offered, so pred/s must print 500.
	if !strings.Contains(table, " 500 ") {
		t.Fatalf("expected predicted throughput 500 in table:\n%s", table)
	}

	d := sweepStageDemands(stages)
	if d.WorkerDemand() != 1000.0/1e6 {
		t.Fatalf("worker demand = %g, want 0.001 (GET row must be excluded)", d.WorkerDemand())
	}

	// A row without traces degrades to a marker line, not a bogus model.
	rows = append(rows, SweepResult{Procs: 2, Server: Snapshot{Stages: StageSnapshot{}}})
	table = FormatModelTable(rows, 100*time.Millisecond)
	if !strings.Contains(table, "no stage traces") {
		t.Fatalf("traceless row should be marked:\n%s", table)
	}
}
