package gateway

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestExtendedUseCasesLive drives the DPI and XJ routes end to end on a
// live gateway: DPI must exercise both verdicts (clean messages forward,
// every DirtyEvery-th embeds a signature and routes to error), XJ must
// answer the translated JSON document, and both must appear in the
// per-use-case latency and stage surfaces.
func TestExtendedUseCasesLive(t *testing.T) {
	srv := startServer(t, Config{Workers: 2, TraceEvery: 1})
	addr := srv.Addr().String()

	// DPI: the pool has 64 distinct messages, DirtyEvery=5 of which are
	// dirty, so both verdicts must appear and sum to OK.
	rep, err := RunLoad(LoadConfig{Addr: addr, UseCase: workload.DPI, Conns: 3, Messages: 120})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 120 {
		t.Fatalf("DPI: ok=%d, want 120 (%+v)", rep.OK, rep)
	}
	if rep.Forwarded == 0 || rep.RoutedError == 0 {
		t.Fatalf("DPI: forwarded=%d blocked=%d, want both non-zero", rep.Forwarded, rep.RoutedError)
	}
	if rep.Forwarded+rep.RoutedError != rep.OK {
		t.Fatalf("DPI: outcomes %d+%d != ok %d", rep.Forwarded, rep.RoutedError, rep.OK)
	}

	// XJ: every message translates; the response body is the translated
	// JSON document, not the routing-verdict stub.
	rep, err = RunLoad(LoadConfig{Addr: addr, UseCase: workload.XJ, Conns: 2, Messages: 60})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 60 || rep.Translated != 60 {
		t.Fatalf("XJ: ok=%d translated=%d, want 60/60 (%+v)", rep.OK, rep.Translated, rep)
	}

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Do(workload.HTTPRequest(3, workload.XJ), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || resp.Outcome != "translated" || resp.Route != "order" {
		t.Fatalf("XJ response: status=%d outcome=%q route=%q", resp.Status, resp.Outcome, resp.Route)
	}
	var doc map[string]any
	if err := json.Unmarshal(resp.Body, &doc); err != nil {
		t.Fatalf("XJ body is not JSON: %v\n%.200s", err, resp.Body)
	}
	if _, ok := doc["soap:Envelope"]; !ok {
		t.Fatalf("XJ body missing translated envelope: %.200s", resp.Body)
	}

	// Both extensions surface in /stats: outcome counters, per-use-case
	// latency histograms, and stage traces.
	snap := srv.Snapshot()
	if snap.Translated != 61 {
		t.Fatalf("snapshot translated=%d, want 61", snap.Translated)
	}
	for _, uc := range []string{"DPI", "XJ"} {
		if _, ok := snap.LatencyByUseCase[uc]; !ok {
			t.Fatalf("latency_by_usecase missing %s: %v", uc, snap.LatencyByUseCase)
		}
		stages, ok := snap.Stages[uc]
		if !ok {
			t.Fatalf("stages missing %s", uc)
		}
		if stages["process"].Count == 0 {
			t.Fatalf("%s process stage untraced: %+v", uc, stages)
		}
	}
	if snap.Workers != 2 {
		t.Fatalf("snapshot workers=%d, want 2", snap.Workers)
	}
}
