package gateway

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dtrace"
	"repro/internal/httpmsg"
	"repro/internal/workload"
)

// Client is a single keep-alive connection speaking the gateway protocol —
// the unit the load generator multiplies.
type Client struct {
	c  net.Conn
	br *bufio.Reader
}

// Dial opens one connection to a gateway.
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c, br: bufio.NewReaderSize(c, 32<<10)}, nil
}

// Close tears the connection down.
func (cl *Client) Close() error { return cl.c.Close() }

// ClientResp is one parsed gateway response.
type ClientResp struct {
	Status  int
	Route   string // X-AON-Route: "order" or "error"
	Outcome string // X-AON-Outcome: forwarded|match|error|valid|parse-error
	Body    []byte
	Bytes   int // wire bytes read
}

// Do writes one raw request and reads the response.
func (cl *Client) Do(raw []byte, timeout time.Duration) (*ClientResp, error) {
	if timeout > 0 {
		cl.c.SetDeadline(time.Now().Add(timeout))
	}
	if _, err := cl.c.Write(raw); err != nil {
		return nil, err
	}
	return readResponse(cl.br)
}

// readResponse parses a status line, headers, and Content-Length body.
// Header lines are scanned as ReadSlice views (no per-line allocation);
// ClientResp and Body are fresh allocations because callers keep them
// across requests.
func readResponse(br *bufio.Reader) (*ClientResp, error) {
	line, err := br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	resp := &ClientResp{Bytes: len(line)}
	sl := bytes.TrimRight(line, "\r\n")
	sp1 := bytes.IndexByte(sl, ' ')
	if sp1 < 0 || !bytes.HasPrefix(sl, []byte("HTTP/1.")) {
		return nil, fmt.Errorf("gateway: malformed status line %q", line)
	}
	status := sl[sp1+1:]
	if i := bytes.IndexByte(status, ' '); i >= 0 {
		status = status[:i]
	}
	resp.Status, err = strconv.Atoi(string(status))
	if err != nil {
		return nil, fmt.Errorf("gateway: bad status %q", status)
	}
	clen := 0
	for {
		line, err := br.ReadSlice('\n')
		if err != nil {
			return nil, err
		}
		resp.Bytes += len(line)
		h := bytes.TrimRight(line, "\r\n")
		if len(h) == 0 {
			break
		}
		i := bytes.IndexByte(h, ':')
		if i <= 0 {
			continue
		}
		name, val := bytes.TrimSpace(h[:i]), bytes.TrimSpace(h[i+1:])
		switch {
		case bytes.EqualFold(name, []byte("Content-Length")):
			clen, _ = strconv.Atoi(string(val))
		case bytes.EqualFold(name, []byte(RouteHeader)):
			resp.Route = internToken(val)
		case bytes.EqualFold(name, []byte("X-AON-Outcome")):
			resp.Outcome = internToken(val)
		}
	}
	if clen > 0 {
		resp.Body = make([]byte, clen)
		if _, err := io.ReadFull(br, resp.Body); err != nil {
			return nil, err
		}
		resp.Bytes += clen
	}
	return resp, nil
}

// internToken maps the small closed set of route/outcome header values
// to static strings, so the client's per-response accounting does not
// allocate. Unknown values still get a fresh copy.
func internToken(b []byte) string {
	for _, s := range [...]string{
		"order", "error", "forwarded", "match", "valid", "translated", "parse-error",
	} {
		if string(b) == s { // compiled to an alloc-free comparison
			return s
		}
	}
	return string(b)
}

// LoadConfig parameterizes one load-generation run.
type LoadConfig struct {
	Addr    string
	UseCase workload.UseCase
	// Conns is the number of concurrent keep-alive connections (default 1).
	Conns int
	// Messages caps the run at a total message count (0 = unlimited,
	// Duration governs).
	Messages int
	// Duration caps the run at wall time (0 = unlimited, Messages
	// governs; both 0 defaults to 1000 messages).
	Duration time.Duration
	// Size is the approximate POST body size (0 = the paper's 5 KB).
	Size int
	// InvalidEvery makes every Nth message schema-invalid (0 = never) so
	// the SV pipeline exercises both verdicts.
	InvalidEvery int
	// Timeout bounds each request round trip (default 30s).
	Timeout time.Duration
	// Pool is the number of distinct pre-generated messages cycled
	// through (default 64): generation stays off the hot path while
	// caches still see varied content.
	Pool int
	// Seed perturbs the deterministic message generators (0 = the legacy
	// stream), so distinct campaign runs can drive distinct but
	// reproducible traffic.
	Seed uint64
	// TraceEvery originates a distributed trace on every Nth request per
	// connection (0 = never): an X-AON-Trace header is injected so the
	// gateway adopts the client's trace ID, and the client's own
	// request span lands in Report.ClientSpans — the client leg of
	// cross-node trace assembly.
	TraceEvery int
	// TraceNode names this load generator in client spans (default
	// "client").
	TraceNode string
}

// Report is the load generator's final accounting, emitted as JSON by
// cmd/aonload so one command per side yields a complete run record.
type Report struct {
	UseCase     string       `json:"usecase"`
	Conns       int          `json:"conns"`
	SizeBytes   int          `json:"size_bytes"`
	DurationSec float64      `json:"duration_sec"`
	Sent        uint64       `json:"sent"`
	OK          uint64       `json:"ok_200"`
	Shed        uint64       `json:"shed_503"`
	HTTPErrors  uint64       `json:"http_errors"`
	NetErrors   uint64       `json:"net_errors"`
	Forwarded   uint64       `json:"forwarded"`
	Match       uint64       `json:"routed_match"`
	RoutedError uint64       `json:"routed_error"`
	Valid       uint64       `json:"validation_ok"`
	Translated  uint64       `json:"translated"`
	ParseErrors uint64       `json:"parse_errors"`
	BytesOut    uint64       `json:"bytes_out"`
	BytesIn     uint64       `json:"bytes_in"`
	MsgsPerSec  float64      `json:"msgs_per_sec"`
	Mbps        float64      `json:"mbps"` // request payload bits per second
	Latency     HistSnapshot `json:"latency"`
	// ClientSpans holds the client-side request spans of originated
	// traces (TraceEvery > 0), bounded so a long run can't grow the
	// report without limit. aontrace and the fleet coordinator join them
	// with gateway/backend spans by trace ID.
	ClientSpans []dtrace.Span `json:"client_spans,omitempty"`
}

// Client-span bounds: per connection and per merged report.
const (
	maxConnClientSpans   = 1024
	maxReportClientSpans = 4096
)

// RunLoad drives a gateway with Conns concurrent connections posting
// AONBench order documents, open-loop with keep-alive, and reports
// throughput, latency percentiles, and outcome counts.
func RunLoad(cfg LoadConfig) (Report, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.Size <= 0 {
		cfg.Size = workload.MessageBytes
	}
	if cfg.Messages <= 0 && cfg.Duration <= 0 {
		cfg.Messages = 1000
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Pool <= 0 {
		cfg.Pool = 64
	}
	if cfg.TraceNode == "" {
		cfg.TraceNode = "client"
	}

	// Pre-generate the request pool. Indices keep workload.SOAPMessage's
	// deterministic i%2 CBR split; InvalidEvery swaps in a schema-broken
	// body at the same size.
	pool := make([][]byte, cfg.Pool)
	for i := range pool {
		if cfg.InvalidEvery > 0 && i%cfg.InvalidEvery == cfg.InvalidEvery-1 {
			body := workload.InvalidSOAPMessageSeeded(i, cfg.Size, cfg.Seed)
			pool[i] = RawPost(cfg.UseCase, body)
		} else {
			pool[i] = workload.HTTPRequestSeeded(i, cfg.UseCase, cfg.Size, cfg.Seed)
		}
	}

	var (
		budget   atomic.Int64
		rep      Report
		mu       sync.Mutex
		hist     Hist
		wg       sync.WaitGroup
		deadline time.Time
	)
	budget.Store(int64(cfg.Messages))
	if cfg.Duration > 0 {
		deadline = time.Now().Add(cfg.Duration)
	}
	rep.UseCase = cfg.UseCase.String()
	rep.Conns = cfg.Conns
	rep.SizeBytes = cfg.Size

	start := time.Now()
	for c := 0; c < cfg.Conns; c++ {
		wg.Add(1)
		go func(connIdx int) {
			defer wg.Done()
			var local Report
			defer func() {
				mu.Lock()
				mergeReport(&rep, &local)
				mu.Unlock()
			}()
			cl, err := Dial(cfg.Addr)
			if err != nil {
				local.NetErrors++
				return
			}
			defer cl.Close()
			var trbuf []byte // trace-injected request scratch, reused
			for k := 0; ; k++ {
				if cfg.Messages > 0 && budget.Add(-1) < 0 {
					return
				}
				if cfg.Duration > 0 && !time.Now().Before(deadline) {
					return
				}
				raw := pool[(connIdx+k*cfg.Conns)%len(pool)]
				// Every TraceEvery-th request originates a trace: inject the
				// context header (into a reused scratch copy — the shared
				// pool entry is never mutated) and keep the client span.
				var traceID, spanID dtrace.ID
				traced := cfg.TraceEvery > 0 && k%cfg.TraceEvery == 0 &&
					len(local.ClientSpans) < maxConnClientSpans
				if traced {
					traceID, spanID = dtrace.NewID(), dtrace.NewID()
					trbuf = dtrace.InjectHeader(trbuf[:0], raw, traceID, spanID)
					raw = trbuf
				}
				t0 := time.Now()
				resp, err := cl.Do(raw, cfg.Timeout)
				if traced {
					sp := dtrace.Span{
						TraceID: traceID,
						SpanID:  spanID,
						Node:    cfg.TraceNode,
						Name:    "request",
						StartUS: t0.UnixMicro(),
						DurUS:   time.Since(t0).Microseconds(),
					}
					if err == nil {
						sp.Outcome, sp.Status = resp.Outcome, resp.Status
					} else {
						sp.Outcome = "net-error"
					}
					local.ClientSpans = append(local.ClientSpans, sp)
				}
				if err != nil {
					local.NetErrors++
					return
				}
				local.Sent++
				local.BytesOut += uint64(len(raw))
				local.BytesIn += uint64(resp.Bytes)
				switch {
				case resp.Status == 200:
					local.OK++
					hist.Observe(time.Since(t0))
					switch resp.Outcome {
					case "forwarded":
						local.Forwarded++
					case "match":
						local.Match++
					case "error":
						local.RoutedError++
					case "valid":
						local.Valid++
					case "translated":
						local.Translated++
					}
				case resp.Status == 503:
					local.Shed++
				default:
					local.HTTPErrors++
					if resp.Outcome == "parse-error" || resp.Status == 400 {
						local.ParseErrors++
					}
				}
			}
		}(c)
	}
	wg.Wait()

	rep.DurationSec = time.Since(start).Seconds()
	if rep.DurationSec > 0 {
		rep.MsgsPerSec = float64(rep.OK) / rep.DurationSec
		rep.Mbps = float64(rep.BytesOut) * 8 / 1e6 / rep.DurationSec
	}
	rep.Latency = hist.Snapshot()
	if rep.Sent == 0 && rep.NetErrors > 0 {
		return rep, fmt.Errorf("gateway: no messages delivered to %s", cfg.Addr)
	}
	return rep, nil
}

// RawPost wraps an arbitrary body in the standard AON POST — the same
// framing workload.HTTPRequest emits, for callers (the campaign runner,
// invalid-message pools) that bring their own body.
func RawPost(uc workload.UseCase, body []byte) []byte {
	return httpmsg.FormatRequest(&httpmsg.Request{
		Method: "POST",
		Target: fmt.Sprintf("/service/%s", uc),
		Proto:  "HTTP/1.1",
		Headers: []httpmsg.Header{
			{Name: "Host", Value: "aon-gw.example.com"},
			{Name: "Content-Type", Value: "text/xml; charset=utf-8"},
			{Name: "Connection", Value: "keep-alive"},
			{Name: "Content-Length", Value: fmt.Sprint(len(body))},
		},
		Body: body,
	})
}

func mergeReport(dst, src *Report) {
	dst.Sent += src.Sent
	dst.OK += src.OK
	dst.Shed += src.Shed
	dst.HTTPErrors += src.HTTPErrors
	dst.NetErrors += src.NetErrors
	dst.Forwarded += src.Forwarded
	dst.Match += src.Match
	dst.RoutedError += src.RoutedError
	dst.Valid += src.Valid
	dst.Translated += src.Translated
	dst.ParseErrors += src.ParseErrors
	dst.BytesOut += src.BytesOut
	dst.BytesIn += src.BytesIn
	if room := maxReportClientSpans - len(dst.ClientSpans); room > 0 {
		spans := src.ClientSpans
		if len(spans) > room {
			spans = spans[:room]
		}
		dst.ClientSpans = append(dst.ClientSpans, spans...)
	}
}
