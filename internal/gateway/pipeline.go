package gateway

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dpi"
	"repro/internal/httpmsg"
	"repro/internal/perf/trace"
	"repro/internal/wcrypto"
	"repro/internal/workload"
	"repro/internal/xj"
	"repro/internal/xmldom"
	"repro/internal/xpath"
	"repro/internal/xsd"
)

// Outcome classifies what the gateway did with one message — the live
// equivalent of the per-message branches the simulated server counts in
// aon.Stats.
type Outcome int

const (
	// OutForwarded: FR — the request was proxied unchanged.
	OutForwarded Outcome = iota
	// OutMatch: CBR — //quantity/text() equalled the routing value; the
	// message goes to the order endpoint.
	OutMatch
	// OutNoMatch: CBR/SV/DPI/AUTH — routed to the error endpoint.
	OutNoMatch
	// OutValid: SV — the message validated against the order schema.
	OutValid
	// OutParseError: malformed HTTP or XML; the client gets a 400.
	OutParseError
	// OutTranslated: XJ — the XML body was rewritten as JSON; the
	// translated document rides onward to the order endpoint (or back to
	// the client in in-place mode).
	OutTranslated
)

func (o Outcome) String() string {
	switch o {
	case OutForwarded:
		return "forwarded"
	case OutMatch:
		return "match"
	case OutNoMatch:
		return "error"
	case OutValid:
		return "valid"
	case OutParseError:
		return "parse-error"
	case OutTranslated:
		return "translated"
	}
	return "invalid"
}

// RouteHeader is the response header carrying the routing decision, so an
// open-loop client can assert outcomes without a second channel.
const RouteHeader = "X-AON-Route"

// routeOf maps an outcome to the endpoint name the device would forward
// to: "order" for the intended endpoint, "error" otherwise.
func routeOf(o Outcome) string {
	switch o {
	case OutForwarded, OutMatch, OutValid, OutTranslated:
		return "order"
	default:
		return "error"
	}
}

// Pipeline holds the pre-compiled artifacts for the use-case processing:
// the CBR XPath, the SV schema, and the DPI automaton are built once at
// server start (the paper's device pre-stores the lookup expression and
// schema, Section 3.2.1) and shared read-only across workers.
type Pipeline struct {
	expr    *xpath.Expr
	eval    *xpath.Evaluator // stateless; shared read-only across workers
	schema  *xsd.Schema
	matcher *dpi.Matcher
	def     workload.UseCase
}

// NewPipeline compiles the routing expression and resolves the schema.
// Empty expr defaults to the paper's //quantity/text(); nil schema
// defaults to the AONBench order schema. def is the use case applied when
// a request path does not select one.
func NewPipeline(def workload.UseCase, expr string, schema *xsd.Schema) (*Pipeline, error) {
	if expr == "" {
		expr = "//quantity/text()"
	}
	e, err := xpath.Compile(expr)
	if err != nil {
		return nil, fmt.Errorf("gateway: bad routing expression: %w", err)
	}
	if schema == nil {
		schema = workload.OrderSchema()
	}
	return &Pipeline{
		expr:    e,
		eval:    xpath.NewEvaluator(nil),
		schema:  schema,
		matcher: dpi.MustNewMatcher(dpi.DefaultSignatures),
		def:     def,
	}, nil
}

// RouteMatchValue is the CBR routing condition value.
const RouteMatchValue = "1"

// SelectUseCase picks the use case for a request: the last path segment of
// the target selects one by name (/service/CBR), otherwise the pipeline's
// default applies. This lets a single gateway serve the whole grid.
func (p *Pipeline) SelectUseCase(target string) workload.UseCase {
	if i := strings.LastIndexByte(target, '/'); i >= 0 {
		if uc, err := workload.ParseUseCase(target[i+1:]); err == nil {
			return uc
		}
	}
	return p.def
}

// Process runs the use-case pipeline on a parsed request.
//
// XML-processing cases parse through a pooled StreamParser: the tree is
// views into req.Body (the connection's pooled frame) and pooled node
// slabs, both valid for exactly the duration of this call — every
// consumer (XPath evaluation, schema validation, XJ translation) copies
// what it returns, and the deferred Release recycles the parser only
// after those consumers ran.
func (p *Pipeline) Process(uc workload.UseCase, req *httpmsg.Request) Outcome {
	switch uc {
	case workload.FR:
		// Forwarding only: the target rewrite is the whole content path.
		httpmsg.RewriteTarget(req, trace.Nop{})
		return OutForwarded
	case workload.CBR:
		sp := xmldom.AcquireStreamParser()
		defer sp.Release()
		doc, err := sp.Parse(req.Body)
		if err != nil {
			return OutParseError
		}
		val, err := p.eval.EvalString(p.expr, doc)
		if err != nil {
			return OutParseError
		}
		if val == RouteMatchValue {
			return OutMatch
		}
		return OutNoMatch
	case workload.SV:
		sp := xmldom.AcquireStreamParser()
		defer sp.Release()
		doc, err := sp.Parse(req.Body)
		if err != nil {
			return OutParseError
		}
		if len(xsd.Validate(p.schema, doc)) == 0 {
			return OutValid
		}
		return OutNoMatch
	case workload.DPI:
		if p.matcher.Contains(req.Body) {
			return OutNoMatch
		}
		return OutForwarded
	case workload.AUTH:
		claimed, ok := req.Get("X-AON-MAC")
		if !ok {
			return OutParseError
		}
		mac := wcrypto.HMAC(workload.AuthKey, req.Body, nil, 0)
		if hex.EncodeToString(mac[:]) == claimed {
			return OutForwarded
		}
		return OutNoMatch
	case workload.XJ:
		sp := xmldom.AcquireStreamParser()
		defer sp.Release()
		doc, err := sp.Parse(req.Body)
		if err != nil {
			return OutParseError
		}
		translated, err := xj.Translate(doc)
		if err != nil {
			return OutParseError
		}
		// Protocol translation rewrites the message in place: the JSON
		// body (a fresh buffer — it must outlive this call) and its
		// headers ride onward through forwarding, or back to the client
		// in in-place mode.
		req.Body = translated
		setHeader(req, "Content-Type", "application/json")
		setHeader(req, "Content-Length", strconv.Itoa(len(translated)))
		return OutTranslated
	}
	return OutParseError
}

// setHeader replaces the named header's value in place (appending when
// absent), keeping a rewritten request self-consistent.
func setHeader(req *httpmsg.Request, name, value string) {
	for i := range req.Headers {
		if strings.EqualFold(req.Headers[i].Name, name) {
			req.Headers[i].Value = value
			return
		}
	}
	req.Headers = append(req.Headers, httpmsg.Header{Name: name, Value: value})
}
