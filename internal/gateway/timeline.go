package gateway

import (
	"fmt"
	"io"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/runstats"
	"repro/internal/session"
)

// timelineState is the gateway side of a sampling session: the sampler
// itself, a dedicated counter view (so the timeline's 100ms windows
// never steal the /stats scrape's deltas), and the previous cumulative
// gateway counters for per-window throughput deltas. The prev fields are
// touched only from the sampler goroutine.
//
// When a flush target is configured, a second goroutine drains the ring
// to it incrementally: flushMark is the lifetime-total watermark of the
// last persisted sample, guarded by flushMu because shutdown's final
// flush and SIGUSR1's on-demand flush run on other goroutines.
type timelineState struct {
	sampler *session.Sampler
	view    *counterView

	prevMsgs  uint64
	prevBytes uint64
	prevShed  uint64

	flushMu   sync.Mutex
	flushDst  *session.Appender
	flushMark uint64
	flushStop chan struct{}
	flushDone chan struct{}
}

// startTimeline brings the sampling session up; called from Start after
// the listener exists so samples always describe a serving gateway.
func (s *Server) startTimeline() error {
	tl := &timelineState{view: newCounterView(s.counters)}
	sampler, err := session.Start(session.Config{
		Interval: s.cfg.SampleInterval,
		Capacity: s.cfg.SampleCapacity,
	}, func() session.Sample { return s.takeSample(tl) })
	if err != nil {
		return err
	}
	tl.sampler = sampler
	s.timeline = tl
	if s.cfg.TimelineFlush != nil && s.cfg.TimelineFlushInterval > 0 {
		tl.flushDst = s.cfg.TimelineFlush
		tl.flushStop = make(chan struct{})
		tl.flushDone = make(chan struct{})
		go s.flushLoop(tl)
	}
	return nil
}

// flushLoop appends newly recorded samples to the flush target every
// TimelineFlushInterval — the crash-safe persistence path: whatever the
// ring has seen is on disk within one flush interval, so a session
// survives its process (the fleet coordinator's requirement for nodes
// that restart mid-campaign).
func (s *Server) flushLoop(tl *timelineState) {
	defer close(tl.flushDone)
	t := time.NewTicker(s.cfg.TimelineFlushInterval)
	defer t.Stop()
	for {
		select {
		case <-tl.flushStop:
			return
		case <-t.C:
			s.FlushTimeline()
		}
	}
}

// FlushTimeline appends every sample recorded since the previous flush
// to the configured flush target, returning how many samples it wrote.
// No-op (0, nil) without a flush target. Safe to call concurrently with
// the periodic flusher — aongate's SIGUSR1 handler calls it on demand.
func (s *Server) FlushTimeline() (int, error) {
	tl := s.timeline
	if tl == nil || tl.flushDst == nil {
		return 0, nil
	}
	tl.flushMu.Lock()
	defer tl.flushMu.Unlock()
	samples, mark := tl.sampler.Since(tl.flushMark)
	if err := tl.flushDst.Append(samples); err != nil {
		return 0, err
	}
	tl.flushMark = mark
	return len(samples), nil
}

// takeSample flattens one fixed-interval observation: gateway metric
// deltas, latency percentiles, the counter window with per-worker skew,
// runtime gauges, and upstream pool gauges.
func (s *Server) takeSample(tl *timelineState) session.Sample {
	now := time.Now()
	smp := session.Sample{TMS: now.UnixMilli()}

	msgs := s.Metrics.Messages.Load()
	bytesIn := s.Metrics.BytesIn.Load()
	shed := s.Metrics.Shed.Load()
	smp.Messages = msgs - tl.prevMsgs
	smp.BytesIn = bytesIn - tl.prevBytes
	smp.Shed = shed - tl.prevShed
	tl.prevMsgs, tl.prevBytes, tl.prevShed = msgs, bytesIn, shed

	lat := s.Metrics.Latency.Snapshot()
	smp.LatencyP50US, smp.LatencyP99US = lat.P50US, lat.P99US

	windowSec, derived, source, _, _, workers := tl.view.window()
	smp.WindowSec = windowSec
	if windowSec > 0 {
		smp.MsgsPerSec = float64(smp.Messages) / windowSec
	}
	smp.CPI, smp.CacheMPI, smp.BrMPR = derived.CPI, derived.CacheMPI, derived.BrMPR
	smp.DerivedSource = source
	smp.Workers = make([]session.WorkerSample, len(workers))
	for i, w := range workers {
		smp.Workers[i] = session.WorkerSample{
			Worker:        w.Worker,
			CPI:           w.Derived.CPI,
			CacheMPI:      w.Derived.CacheMPI,
			BrMPR:         w.Derived.BrMPR,
			DerivedSource: w.DerivedSource,
		}
	}

	rt := runstats.Read()
	smp.Goroutines = rt.Goroutines
	smp.GCCPUPct = 100 * rt.GCCPUFraction
	smp.SchedLatP99US = rt.SchedLatP99US

	if s.fwd != nil {
		for _, b := range s.fwd.Snapshot() {
			smp.UpstreamIdle += b.IdleConns
			if b.Healthy {
				smp.UpstreamHealthy++
			}
		}
	}
	return smp
}

// closeTimeline stops the sampling session and joins its goroutines.
// The flusher stops first, then the sampler, then one final flush — so
// the persisted artifact carries the session's last samples.
func (s *Server) closeTimeline() {
	tl := s.timeline
	if tl == nil {
		return
	}
	if tl.flushStop != nil {
		close(tl.flushStop)
		<-tl.flushDone
	}
	tl.sampler.Close()
	if tl.flushDst != nil {
		s.FlushTimeline()
	}
}

// TimelineInfo is the /stats "timeline" section: the session's vitals
// plus the newest sample, so one scrape shows whether the session is
// alive and what it last saw. The full ring is served by /timeline.
type TimelineInfo struct {
	IntervalMS   float64         `json:"interval_ms"`
	SamplesTotal uint64          `json:"samples_total"`
	SamplesKept  int             `json:"samples_kept"`
	Last         *session.Sample `json:"last,omitempty"`
}

func (s *Server) timelineInfo() *TimelineInfo {
	if s.timeline == nil {
		return nil
	}
	sp := s.timeline.sampler
	info := &TimelineInfo{
		IntervalMS:   float64(sp.Interval()) / float64(time.Millisecond),
		SamplesTotal: sp.Total(),
		SamplesKept:  sp.Kept(),
	}
	if last := sp.Last(1); len(last) == 1 {
		info.Last = &last[0]
	}
	return info
}

// TimelineSamples returns the most recent n recorded samples (all kept
// samples when n <= 0); nil when no session is running.
func (s *Server) TimelineSamples(n int) []session.Sample {
	if s.timeline == nil {
		return nil
	}
	return s.timeline.sampler.Last(n)
}

// WriteTimelineCSV dumps the kept timeline in the session CSV schema —
// the artifact aongate writes on SIGUSR1 and at shutdown. Returns the
// number of samples written.
func (s *Server) WriteTimelineCSV(w io.Writer) (int, error) {
	if s.timeline == nil {
		return 0, fmt.Errorf("gateway: no sampling session running")
	}
	samples := s.timeline.sampler.Last(0)
	return len(samples), session.WriteCSV(w, samples)
}

// TimelineResponse is the /timeline endpoint's JSON shape.
type TimelineResponse struct {
	IntervalMS      float64          `json:"interval_ms"`
	SamplesTotal    uint64           `json:"samples_total"`
	SamplesReturned int              `json:"samples_returned"`
	Samples         []session.Sample `json:"samples"`
}

// timelineResponse serves GET /timeline?last=N (all kept samples when
// last is absent).
func (s *Server) timelineResponse(query string) (*TimelineResponse, error) {
	if s.timeline == nil {
		return nil, fmt.Errorf("no sampling session running (enable Config.Timeline / -timeline)")
	}
	n := 0
	if query != "" {
		vals, err := url.ParseQuery(query)
		if err != nil {
			return nil, fmt.Errorf("bad query: %v", err)
		}
		if raw := strings.TrimSpace(vals.Get("last")); raw != "" {
			n, err = strconv.Atoi(raw)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad last=%q, want a non-negative integer", raw)
			}
		}
	}
	sp := s.timeline.sampler
	samples := sp.Last(n)
	return &TimelineResponse{
		IntervalMS:      float64(sp.Interval()) / float64(time.Millisecond),
		SamplesTotal:    sp.Total(),
		SamplesReturned: len(samples),
		Samples:         samples,
	}, nil
}
