package gateway

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/hwcount"
	"repro/internal/perf/machine"
	"repro/internal/runstats"
	"repro/internal/workload"
)

// ForceRuntimeOnlyEnv, when set in the environment, makes the
// measurement layer skip perf_event_open entirely and run in the
// runtime-only fallback even on perf-capable hosts — the deterministic
// lever CI uses to exercise both modes on one machine.
const ForceRuntimeOnlyEnv = "AON_NO_PERF"

// WorkerCounters is one worker's derived counter window: the per-thread
// event group the worker opened after pinning its goroutine, read as a
// delta. In the fallback mode the derived block is the model prediction
// and DerivedSource says so — the shape stays identical so dashboards
// and the timeline never branch on mode.
type WorkerCounters struct {
	Worker        int             `json:"worker"`
	Derived       hwcount.Derived `json:"derived"`
	DerivedSource string          `json:"derived_source"` // "hw" or "model"
	Multiplexed   bool            `json:"multiplexed,omitempty"`
}

// CountersSnapshot is the /stats "counters" section: the live
// measurement layer's windowed view. In "hw" mode the events and derived
// metrics come from real perf counters (deltas since the previous
// snapshot — scrape /stats periodically and each response is one
// measurement window). In "runtime-only" mode perf events were
// unavailable; the runtime section still carries real observations and
// the derived block falls back to the simulator's calibrated model
// prediction so dashboards keep a reference value (DerivedSource says
// which you got). Workers is the per-worker skew view — one entry per
// pool worker, each backed by its own thread-scoped event group.
type CountersSnapshot struct {
	Mode          string            `json:"mode"` // "hw" or "runtime-only"
	Notice        string            `json:"notice,omitempty"`
	WindowSec     float64           `json:"window_sec"`
	Multiplexed   bool              `json:"multiplexed,omitempty"`
	Events        map[string]uint64 `json:"events,omitempty"` // windowed scaled deltas
	Derived       hwcount.Derived   `json:"derived"`
	DerivedSource string            `json:"derived_source"` // "hw" or "model"
	Workers       []WorkerCounters  `json:"workers,omitempty"`
	Runtime       runstats.Snapshot `json:"runtime"`
}

// workerCounter is one registered pool worker: its thread-scoped event
// group when the host granted one, or a model-backed placeholder.
type workerCounter struct {
	id  int
	grp *hwcount.Group // nil: fallback, derived metrics come from the model
}

// counterSampler owns the gateway's measurement layer: the process-wide
// perf event set when the host grants one, the per-worker thread groups
// as workers register, and the runtime sampler always. Windowing state
// lives in counterViews so independent consumers (the /stats scrape and
// the 100ms timeline) each get honest windows instead of stealing each
// other's deltas.
type counterSampler struct {
	uc     workload.UseCase
	grp    *hwcount.Group // nil: runtime-only mode
	notice string

	mu      sync.Mutex
	workers map[int]*workerCounter
	// Lifetime per-worker group accounting, the fd-leak test surface:
	// after shutdown opened == closed must hold.
	groupsOpened uint64
	groupsClosed uint64
}

// newCounterSampler opens the perf event set; on failure (no PMU,
// paranoid level, seccomp, non-Linux) it records the reason and the
// sampler serves runtime-only snapshots — degradation, never an error.
// In the fallback it also warms the model's cache-MPI prediction in the
// background so the first snapshots don't block on a simulator run.
func newCounterSampler(uc workload.UseCase) *counterSampler {
	cs := &counterSampler{uc: uc, workers: map[int]*workerCounter{}}
	if os.Getenv(ForceRuntimeOnlyEnv) != "" {
		cs.notice = fmt.Sprintf("perf events disabled by %s; runtime-metrics-only mode", ForceRuntimeOnlyEnv)
		go warmModelDerived(uc)
		return cs
	}
	g, err := hwcount.Open()
	if err != nil {
		cs.notice = fmt.Sprintf("perf events unavailable (%v); runtime-metrics-only mode", err)
		go warmModelDerived(uc)
		return cs
	}
	cs.grp = g
	if g.UserOnly() {
		cs.notice = "kernel-mode cycles excluded (perf_event_paranoid); user-space counts only"
	}
	return cs
}

// mode reports the sampler's operating mode and the one-line notice (if
// any) for CLI startup banners.
func (cs *counterSampler) mode() (mode, notice string) {
	if cs == nil {
		return "off", ""
	}
	if cs.grp == nil {
		return "runtime-only", cs.notice
	}
	return "hw", cs.notice
}

// registerWorker gives pool worker id its own counter group. The caller
// must have pinned its goroutine with runtime.LockOSThread first — the
// group counts the calling OS thread only, which is exactly what makes
// the per-worker skew meaningful. In fallback mode (no process group)
// the worker is registered with a model-backed placeholder.
func (cs *counterSampler) registerWorker(id int) *workerCounter {
	wc := &workerCounter{id: id}
	if cs.grp != nil {
		if g, err := hwcount.OpenThread(); err == nil {
			wc.grp = g
		}
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.workers[id] = wc
	if wc.grp != nil {
		cs.groupsOpened++
	}
	return wc
}

// unregisterWorker closes the worker's event group (releasing its fds)
// and removes it from the skew view. Called from the worker's deferred
// exit path, so shutting the pool down provably closes every group.
func (cs *counterSampler) unregisterWorker(wc *workerCounter) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	delete(cs.workers, wc.id)
	if wc.grp != nil {
		wc.grp.Close()
		cs.groupsClosed++
	}
}

// workerGroupStats reports lifetime per-worker group open/close counts
// and the live registration count — the worker-exit test's assertions.
func (cs *counterSampler) workerGroupStats() (opened, closed uint64, live int) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.groupsOpened, cs.groupsClosed, len(cs.workers)
}

// close releases the process-wide event set. Per-worker groups are
// closed by their owning workers' exit paths, which the server joins
// before calling this.
func (cs *counterSampler) close() {
	if cs != nil && cs.grp != nil {
		cs.grp.Close()
	}
}

// counterView is one consumer's windowing state over the shared sampler:
// previous process-wide counts plus previous per-worker counts, so each
// consumer's deltas cover exactly the span since *its* last read.
type counterView struct {
	cs *counterSampler

	mu          sync.Mutex
	prevAt      time.Time
	prev        hwcount.Counts
	prevWorkers map[int]hwcount.Counts
}

func newCounterView(cs *counterSampler) *counterView {
	return &counterView{cs: cs, prevAt: time.Now(), prevWorkers: map[int]hwcount.Counts{}}
}

// window closes one measurement window: the process-wide delta-derived
// metrics plus the per-worker skew, each labeled with its source.
func (v *counterView) window() (windowSec float64, derived hwcount.Derived,
	source string, events map[string]uint64, multiplexed bool, workers []WorkerCounters) {
	cs := v.cs
	v.mu.Lock()
	defer v.mu.Unlock()
	now := time.Now()
	windowSec = now.Sub(v.prevAt).Seconds()
	v.prevAt = now

	if cs.grp == nil {
		derived, source = modelDerived(cs.uc), "model"
		workers = v.fallbackWorkers(derived)
		return
	}
	r, err := cs.grp.Read()
	if err != nil {
		derived, source = modelDerived(cs.uc), "model"
		workers = v.fallbackWorkers(derived)
		return
	}
	delta := r.Counts.Sub(v.prev)
	v.prev = r.Counts
	multiplexed = r.Multiplexed
	events = delta.EventsMap()
	// An idle window (no instructions retired since the last read)
	// derives from the cumulative totals instead, so ratios never read
	// zero just because the reader raced the load.
	if delta.Get(hwcount.Instructions) == 0 {
		delta = r.Counts
	}
	derived, source = hwcount.Derive(delta), "hw"
	workers = v.workerWindows()
	return
}

// workerWindows reads every registered worker's thread group as a delta
// against this view's previous read. Workers whose group could not be
// opened (or whose read fails) publish the model prediction instead.
func (v *counterView) workerWindows() []WorkerCounters {
	cs := v.cs
	cs.mu.Lock()
	defer cs.mu.Unlock()
	model := modelDerived(cs.uc)
	out := make([]WorkerCounters, 0, len(cs.workers))
	seen := make(map[int]bool, len(cs.workers))
	for id, wc := range cs.workers {
		seen[id] = true
		w := WorkerCounters{Worker: id, Derived: model, DerivedSource: "model"}
		if wc.grp != nil {
			if r, err := wc.grp.Read(); err == nil {
				delta := r.Counts.Sub(v.prevWorkers[id])
				v.prevWorkers[id] = r.Counts
				if delta.Get(hwcount.Instructions) == 0 {
					delta = r.Counts
				}
				w.Derived, w.DerivedSource = hwcount.Derive(delta), "hw"
				w.Multiplexed = r.Multiplexed
			}
		}
		out = append(out, w)
	}
	for id := range v.prevWorkers {
		if !seen[id] {
			delete(v.prevWorkers, id) // worker exited; drop its window state
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// fallbackWorkers lists every registered worker with the model-predicted
// derived block — the runtime-only mode's per-worker view, so the
// timeline's shape is identical in both modes.
func (v *counterView) fallbackWorkers(model hwcount.Derived) []WorkerCounters {
	cs := v.cs
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := make([]WorkerCounters, 0, len(cs.workers))
	for id := range cs.workers {
		out = append(out, WorkerCounters{Worker: id, Derived: model, DerivedSource: "model"})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// snapshot takes one full measurement window shaped for /stats: counter
// deltas since this view's last call plus a fresh runtime reading.
func (v *counterView) snapshot() *CountersSnapshot {
	out := &CountersSnapshot{Runtime: runstats.Read()}
	mode, notice := v.cs.mode()
	out.Mode, out.Notice = mode, notice
	out.WindowSec, out.Derived, out.DerivedSource, out.Events, out.Multiplexed, out.Workers = v.window()
	if out.DerivedSource == "model" {
		// A read failure on an opened group degrades this window only.
		out.Mode = "runtime-only"
		if out.Notice == "" {
			out.Notice = "perf read failed; runtime-metrics-only window"
		}
	}
	return out
}

// modelDerived is the runtime-only fallback's reference point: the
// simulated machine's calibrated prediction for this use case on the
// paper's 2CPm configuration (the dual-core Pentium M the reproduction
// is anchored to) — CPI and branch metrics from paper Tables 4-6 via the
// harness's published-value tables, cache-MPI from the simulator's own
// prediction (the paper publishes no per-use-case L2MPI), all labeled
// derived_source=model. The simulator prediction is cached and warmed in
// the background; until it lands, CacheMPI reads zero.
func modelDerived(uc workload.UseCase) hwcount.Derived {
	key := uc
	if _, ok := harness.PaperCPI[key]; !ok {
		key = workload.CBR // DPI/AUTH extensions: nearest published mix
	}
	d := hwcount.Derived{
		CPI:        harness.PaperCPI[key][machine.TwoCPm],
		BranchFreq: harness.PaperBranchFreq[key][machine.TwoCPm],
		BrMPR:      harness.PaperBrMPR[key][machine.TwoCPm],
	}
	if m, ok := harness.TryPredictedMetrics(machine.TwoCPm, key); ok {
		d.CacheMPI = m.L2MPI
	}
	return d
}

// warmModelDerived computes the fallback's simulator-predicted metrics
// off the serving path (a model run costs ~0.5s; snapshot paths only do
// the non-blocking cache lookup).
func warmModelDerived(uc workload.UseCase) {
	key := uc
	if _, ok := harness.PaperCPI[key]; !ok {
		key = workload.CBR
	}
	harness.PredictedMetrics(machine.TwoCPm, key)
}
