package gateway

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/hwcount"
	"repro/internal/perf/machine"
	"repro/internal/runstats"
	"repro/internal/workload"
)

// CountersSnapshot is the /stats "counters" section: the live
// measurement layer's windowed view. In "hw" mode the events and derived
// metrics come from real perf counters (deltas since the previous
// snapshot — scrape /stats periodically and each response is one
// measurement window). In "runtime-only" mode perf events were
// unavailable; the runtime section still carries real observations and
// the derived block falls back to the simulator's calibrated model
// prediction so dashboards keep a reference value (DerivedSource says
// which you got).
type CountersSnapshot struct {
	Mode          string            `json:"mode"` // "hw" or "runtime-only"
	Notice        string            `json:"notice,omitempty"`
	WindowSec     float64           `json:"window_sec"`
	Multiplexed   bool              `json:"multiplexed,omitempty"`
	Events        map[string]uint64 `json:"events,omitempty"` // windowed scaled deltas
	Derived       hwcount.Derived   `json:"derived"`
	DerivedSource string            `json:"derived_source"` // "hw" or "model"
	Runtime       runstats.Snapshot `json:"runtime"`
}

// counterSampler owns the gateway's measurement layer: the perf event
// set when the host grants one, the runtime sampler always, and the
// previous reading for windowed deltas.
type counterSampler struct {
	uc     workload.UseCase
	grp    *hwcount.Group // nil: runtime-only mode
	notice string

	mu     sync.Mutex
	prev   hwcount.Counts
	prevAt time.Time
}

// newCounterSampler opens the perf event set; on failure (no PMU,
// paranoid level, seccomp, non-Linux) it records the reason and the
// sampler serves runtime-only snapshots — degradation, never an error.
func newCounterSampler(uc workload.UseCase) *counterSampler {
	cs := &counterSampler{uc: uc, prevAt: time.Now()}
	g, err := hwcount.Open()
	if err != nil {
		cs.notice = fmt.Sprintf("perf events unavailable (%v); runtime-metrics-only mode", err)
		return cs
	}
	cs.grp = g
	if g.UserOnly() {
		cs.notice = "kernel-mode cycles excluded (perf_event_paranoid); user-space counts only"
	}
	return cs
}

// mode reports the sampler's operating mode and the one-line notice (if
// any) for CLI startup banners.
func (cs *counterSampler) mode() (mode, notice string) {
	if cs == nil {
		return "off", ""
	}
	if cs.grp == nil {
		return "runtime-only", cs.notice
	}
	return "hw", cs.notice
}

// snapshot takes one measurement window: counter deltas since the last
// call plus a fresh runtime reading.
func (cs *counterSampler) snapshot() *CountersSnapshot {
	out := &CountersSnapshot{Runtime: runstats.Read()}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	now := time.Now()
	out.WindowSec = now.Sub(cs.prevAt).Seconds()
	cs.prevAt = now

	if cs.grp == nil {
		out.Mode = "runtime-only"
		out.Notice = cs.notice
		out.Derived = modelDerived(cs.uc)
		out.DerivedSource = "model"
		return out
	}
	r, err := cs.grp.Read()
	if err != nil {
		out.Mode = "runtime-only"
		out.Notice = fmt.Sprintf("perf read failed (%v); runtime-metrics-only mode", err)
		out.Derived = modelDerived(cs.uc)
		out.DerivedSource = "model"
		return out
	}
	delta := r.Counts.Sub(cs.prev)
	cs.prev = r.Counts
	out.Mode = "hw"
	out.Notice = cs.notice
	out.Multiplexed = r.Multiplexed
	out.Events = delta.EventsMap()
	// An idle window (no instructions retired since the last scrape)
	// derives from the cumulative totals instead, so ratios never read
	// zero just because the scraper raced the load.
	if delta.Get(hwcount.Instructions) == 0 {
		delta = r.Counts
	}
	out.Derived = hwcount.Derive(delta)
	out.DerivedSource = "hw"
	return out
}

func (cs *counterSampler) close() {
	if cs != nil && cs.grp != nil {
		cs.grp.Close()
	}
}

// modelDerived is the runtime-only fallback's reference point: the
// simulated machine's calibrated prediction for this use case on the
// paper's 2CPm configuration (the dual-core Pentium M the reproduction
// is anchored to) — paper Tables 4-6 via the harness's published-value
// tables. L2MPI per use case is not published, so CacheMPI stays zero.
func modelDerived(uc workload.UseCase) hwcount.Derived {
	key := uc
	if _, ok := harness.PaperCPI[key]; !ok {
		key = workload.CBR // DPI/AUTH extensions: nearest published mix
	}
	return hwcount.Derived{
		CPI:        harness.PaperCPI[key][machine.TwoCPm],
		BranchFreq: harness.PaperBranchFreq[key][machine.TwoCPm],
		BrMPR:      harness.PaperBrMPR[key][machine.TwoCPm],
	}
}
