package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/upstream"
	"repro/internal/workload"
)

// startServer brings up a gateway on loopback and registers teardown.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

// TestEndToEndUseCases is the acceptance path: one live gateway, driven by
// the cmd/aonload client code (RunLoad) for all three paper use cases,
// asserting routing outcomes and non-zero throughput.
func TestEndToEndUseCases(t *testing.T) {
	srv := startServer(t, Config{Workers: 2})
	addr := srv.Addr().String()

	// FR: every message forwards to the order endpoint.
	rep, err := RunLoad(LoadConfig{Addr: addr, UseCase: workload.FR, Conns: 4, Messages: 120})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 120 || rep.Forwarded != 120 {
		t.Fatalf("FR: ok=%d forwarded=%d, want 120/120 (%+v)", rep.OK, rep.Forwarded, rep)
	}
	if rep.MsgsPerSec <= 0 {
		t.Fatalf("FR: non-positive throughput %v", rep.MsgsPerSec)
	}

	// CBR: workload.SOAPMessage gives quantity==1 for even indices, so
	// both routing outcomes must appear, matches ~half.
	rep, err = RunLoad(LoadConfig{Addr: addr, UseCase: workload.CBR, Conns: 3, Messages: 120})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 120 {
		t.Fatalf("CBR: ok=%d, want 120 (%+v)", rep.OK, rep)
	}
	if rep.Match == 0 || rep.RoutedError == 0 {
		t.Fatalf("CBR: match=%d error=%d, want both non-zero", rep.Match, rep.RoutedError)
	}
	if rep.Match+rep.RoutedError != rep.OK {
		t.Fatalf("CBR: outcomes %d+%d != ok %d", rep.Match, rep.RoutedError, rep.OK)
	}

	// SV: every third message is schema-invalid; both verdicts must appear.
	rep, err = RunLoad(LoadConfig{Addr: addr, UseCase: workload.SV, Conns: 3, Messages: 90, InvalidEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 90 {
		t.Fatalf("SV: ok=%d, want 90 (%+v)", rep.OK, rep)
	}
	if rep.Valid == 0 || rep.RoutedError == 0 {
		t.Fatalf("SV: valid=%d invalid=%d, want both non-zero", rep.Valid, rep.RoutedError)
	}
	if rep.Latency.Count == 0 || rep.Latency.P99US == 0 {
		t.Fatalf("SV: empty latency histogram %+v", rep.Latency)
	}

	// Server-side counters mirror what the clients saw.
	snap := srv.Metrics.Snapshot()
	if snap.Messages != 330 {
		t.Fatalf("server messages=%d, want 330", snap.Messages)
	}
	if snap.RoutedMatch == 0 || snap.ValidationOK == 0 || snap.RoutedError == 0 || snap.Forwarded == 0 {
		t.Fatalf("server outcome counters missing a class: %+v", snap)
	}
	if snap.BytesIn == 0 || snap.BytesOut == 0 {
		t.Fatalf("server byte counters zero: %+v", snap)
	}
}

// TestAdmissionControlSheds shows the queue-full path: with one worker
// stalled per message and a depth-1 queue, concurrent clients must see
// 503s while accepted work still completes — shedding, not collapse.
func TestAdmissionControlSheds(t *testing.T) {
	srv := startServer(t, Config{
		Workers:      1,
		QueueDepth:   1,
		ProcessDelay: 20 * time.Millisecond,
	})

	const conns = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	var ok200, shed503 uint64
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for k := 0; k < 5; k++ {
				resp, err := cl.Do(workload.HTTPRequest(i*5+k, workload.FR), 10*time.Second)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				switch resp.Status {
				case 200:
					ok200++
				case 503:
					shed503++
				default:
					t.Errorf("unexpected status %d", resp.Status)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	if shed503 == 0 {
		t.Fatalf("expected 503 shedding with a full queue (ok=%d shed=%d)", ok200, shed503)
	}
	if ok200 == 0 {
		t.Fatalf("admission control starved all work (shed=%d)", shed503)
	}
	snap := srv.Metrics.Snapshot()
	if snap.Shed != shed503 {
		t.Fatalf("server shed counter %d != client-observed %d", snap.Shed, shed503)
	}
	if snap.Messages != ok200 {
		t.Fatalf("server messages %d != client-observed 200s %d", snap.Messages, ok200)
	}
}

// TestStatsEndpoint exercises the observability surface over the wire.
func TestStatsEndpoint(t *testing.T) {
	srv := startServer(t, Config{Workers: 1})
	addr := srv.Addr().String()
	if _, err := RunLoad(LoadConfig{Addr: addr, UseCase: workload.CBR, Messages: 10}); err != nil {
		t.Fatal(err)
	}

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Do([]byte("GET /stats HTTP/1.1\r\nHost: x\r\n\r\n"), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Fatalf("GET /stats status %d", resp.Status)
	}
	var snap Snapshot
	if err := json.Unmarshal(resp.Body, &snap); err != nil {
		t.Fatalf("stats body not JSON: %v\n%s", err, resp.Body)
	}
	if snap.Messages != 10 || snap.Latency.Count != 10 {
		t.Fatalf("stats snapshot wrong: %+v", snap)
	}

	// Unknown GET path is a 404, and the connection stays usable.
	resp, err = cl.Do([]byte("GET /nope HTTP/1.1\r\nHost: x\r\n\r\n"), 5*time.Second)
	if err != nil || resp.Status != 404 {
		t.Fatalf("GET /nope: resp=%+v err=%v", resp, err)
	}
}

// TestMalformedRequest checks the 400 path counts a parse error and
// closes the connection.
func TestMalformedRequest(t *testing.T) {
	srv := startServer(t, Config{Workers: 1})
	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Do([]byte("POST /service/CBR HTTP/1.1\r\nContent-Length: nope\r\n\r\n"), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 400 {
		t.Fatalf("malformed framing: status %d, want 400", resp.Status)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Metrics.Snapshot().ParseErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("parse error not counted")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPathDispatch confirms one gateway serves the whole grid via the
// request path, with the configured use case as fallback.
func TestPathDispatch(t *testing.T) {
	srv := startServer(t, Config{Workers: 1, UseCase: workload.SV})
	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Path names CBR: index 0 has quantity 1 → match.
	resp, err := cl.Do(workload.HTTPRequest(0, workload.CBR), 5*time.Second)
	if err != nil || resp.Outcome != "match" {
		t.Fatalf("CBR via path: resp=%+v err=%v", resp, err)
	}
	// Unrecognized path falls back to the configured SV.
	body := workload.SOAPMessage(4)
	raw := []byte("POST /other HTTP/1.1\r\nHost: x\r\nContent-Length: " +
		strconv.Itoa(len(body)) + "\r\n\r\n" + string(body))
	resp, err = cl.Do(raw, 5*time.Second)
	if err != nil || resp.Outcome != "valid" {
		t.Fatalf("default SV: resp=%+v err=%v", resp, err)
	}
}

// TestGracefulShutdown: in-flight work completes, then new connections
// are refused.
func TestGracefulShutdown(t *testing.T) {
	srv, err := New(Config{Workers: 2, ProcessDelay: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()

	// Launch a request that will still be in flight when Shutdown starts.
	done := make(chan *ClientResp, 1)
	go func() {
		cl, err := Dial(addr)
		if err != nil {
			done <- nil
			return
		}
		defer cl.Close()
		resp, err := cl.Do(workload.HTTPRequest(1, workload.FR), 10*time.Second)
		if err != nil {
			done <- nil
			return
		}
		done <- resp
	}()
	time.Sleep(10 * time.Millisecond) // let it reach the worker

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if resp := <-done; resp == nil || resp.Status != 200 {
		t.Fatalf("in-flight request lost during drain: %+v", resp)
	}
	if _, err := Dial(addr); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

// TestSweepSmoke runs the scaling harness end to end at tiny scale.
func TestSweepSmoke(t *testing.T) {
	rows, err := RunSweep([]int{1, 2},
		LoadConfig{UseCase: workload.CBR, Conns: 2, Messages: 40, Size: 2048},
		Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Procs != 1 || rows[1].Procs != 2 {
		t.Fatalf("rows: %+v", rows)
	}
	for _, r := range rows {
		if r.Report.OK != 40 {
			t.Fatalf("GOMAXPROCS=%d: ok=%d want 40", r.Procs, r.Report.OK)
		}
		if r.Server.Messages != 40 {
			t.Fatalf("GOMAXPROCS=%d: server messages=%d", r.Procs, r.Server.Messages)
		}
	}
	table := FormatSweepTable(rows)
	if !strings.Contains(table, "GOMAXPROCS") || !strings.Contains(table, "scaling") {
		t.Fatalf("table missing columns:\n%s", table)
	}
}

// startBackend brings up one order/error endpoint with teardown.
func startBackend(t *testing.T, cfg upstream.BackendConfig) *upstream.BackendServer {
	t.Helper()
	be, err := upstream.StartBackend("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(be.Close)
	return be
}

// TestForwardingEndToEnd is the paper's end-to-end FR topology on
// loopback: gateway → order/error backends over pooled keep-alive
// connections, driven by the aonload client code, with the upstream
// section visible in the stats snapshot. Run under -race in CI.
func TestForwardingEndToEnd(t *testing.T) {
	order := startBackend(t, upstream.BackendConfig{Name: "order"})
	errBE := startBackend(t, upstream.BackendConfig{Name: "error"})
	srv := startServer(t, Config{Workers: 2, Upstream: upstream.Config{
		Order: order.Addr().String(),
		Error: errBE.Addr().String(),
	}})
	addr := srv.Addr().String()

	// FR: every message forwards to the order backend; the client sees
	// the backend's ack body relayed, not a synthesized verdict.
	rep, err := RunLoad(LoadConfig{Addr: addr, UseCase: workload.FR, Conns: 4, Messages: 80})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 80 || rep.Forwarded != 80 {
		t.Fatalf("FR: ok=%d forwarded=%d, want 80/80 (%+v)", rep.OK, rep.Forwarded, rep)
	}
	if got := order.Requests.Load(); got != 80 {
		t.Fatalf("order backend saw %d requests, want 80", got)
	}

	// CBR: the two verdicts split across the two backends.
	rep, err = RunLoad(LoadConfig{Addr: addr, UseCase: workload.CBR, Conns: 2, Messages: 60})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 60 || rep.Match == 0 || rep.RoutedError == 0 {
		t.Fatalf("CBR: ok=%d match=%d error=%d (%+v)", rep.OK, rep.Match, rep.RoutedError, rep)
	}
	if errBE.Requests.Load() == 0 {
		t.Fatal("error backend saw no CBR-routed traffic")
	}
	if order.Requests.Load()+errBE.Requests.Load() != 140 {
		t.Fatalf("backends saw %d+%d requests, want 140 total",
			order.Requests.Load(), errBE.Requests.Load())
	}

	// The relayed body is the backend's, and the stats snapshot carries
	// the per-backend upstream section with reuse accounting.
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Do(workload.HTTPRequest(0, workload.FR), 5*time.Second)
	if err != nil || resp.Status != 200 {
		t.Fatalf("direct FR: resp=%+v err=%v", resp, err)
	}
	if !strings.Contains(string(resp.Body), `"backend":"order"`) {
		t.Fatalf("response body not relayed from backend: %.120s", resp.Body)
	}
	snap := srv.Snapshot()
	up, ok := snap.Upstream["order"]
	if !ok {
		t.Fatalf("snapshot missing upstream section: %+v", snap)
	}
	if up.Forwarded == 0 || up.Latency.Count != up.Forwarded {
		t.Fatalf("upstream order counters: %+v", up)
	}
	if up.PoolHits == 0 {
		t.Fatal("keep-alive pool never reused a connection")
	}
	if up.Dials > uint64(4+2+1) {
		t.Fatalf("dials=%d — pooling not bounding socket churn", up.Dials)
	}
	if snap.UpstreamErrs != 0 {
		t.Fatalf("unexpected upstream errors: %d", snap.UpstreamErrs)
	}
}

// TestForwardingBackendDown: with the backend gone, clients get a
// prompt 502 (never a hang), the gateway counts upstream errors, and the
// backend is marked down after the failure threshold.
func TestForwardingBackendDown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	srv := startServer(t, Config{Workers: 1, Upstream: upstream.Config{
		Order:         deadAddr,
		Retries:       1,
		BackoffBase:   time.Millisecond,
		DialTimeout:   200 * time.Millisecond,
		FailThreshold: 2,
		ProbeInterval: time.Hour, // no recovery during this test
	}})
	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 4; i++ {
		t0 := time.Now()
		resp, err := cl.Do(workload.HTTPRequest(i, workload.FR), 5*time.Second)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Status != 502 {
			t.Fatalf("request %d: status %d, want 502", i, resp.Status)
		}
		if el := time.Since(t0); el > 2*time.Second {
			t.Fatalf("request %d took %v — 502 must be prompt", i, el)
		}
	}
	snap := srv.Snapshot()
	if snap.UpstreamErrs != 4 {
		t.Fatalf("upstream_errors=%d, want 4", snap.UpstreamErrs)
	}
	up := snap.Upstream["order"]
	if up.Healthy {
		t.Fatal("backend should be marked down")
	}
	if up.FastFails == 0 {
		t.Fatal("circuit never fast-failed — every 502 paid a dial")
	}
}

// TestForwardingTimeoutMapsTo504: a backend slower than the per-try
// deadline turns into a client-facing 504.
func TestForwardingTimeoutMapsTo504(t *testing.T) {
	slow := startBackend(t, upstream.BackendConfig{Name: "order", Delay: 300 * time.Millisecond})
	srv := startServer(t, Config{Workers: 1, Upstream: upstream.Config{
		Order:       slow.Addr().String(),
		Retries:     -1, // no retries: one deadline expiry answers
		TryTimeout:  40 * time.Millisecond,
		BackoffBase: time.Millisecond,
	}})
	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Do(workload.HTTPRequest(0, workload.FR), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 504 {
		t.Fatalf("status %d, want 504", resp.Status)
	}
	if up := srv.Snapshot().Upstream["order"]; up.Timeouts == 0 {
		t.Fatalf("upstream timeouts=%d, want >0", up.Timeouts)
	}
}

// TestIdleTimeoutReapsStalledConn: a client that stalls mid-request (and
// one that never speaks) is disconnected by the read deadline instead of
// pinning its reader goroutine forever.
func TestIdleTimeoutReapsStalledConn(t *testing.T) {
	srv := startServer(t, Config{Workers: 1, IdleTimeout: 80 * time.Millisecond})
	addr := srv.Addr().String()

	// Stalls mid-request: headers promise a body that never arrives.
	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	if _, err := stalled.Write([]byte("POST /service/FR HTTP/1.1\r\nContent-Length: 100\r\n\r\npartial")); err != nil {
		t.Fatal(err)
	}
	// Never speaks at all.
	silent, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()

	for _, c := range []net.Conn{stalled, silent} {
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Fatal("stalled connection not closed by the gateway")
		} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatal("gateway still holding the stalled connection after 2s")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Metrics.IdleTimeouts.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("idle_timeouts=%d, want 2", srv.Metrics.IdleTimeouts.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A live client on the same server is unaffected between requests
	// that arrive faster than the deadline.
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 3; i++ {
		time.Sleep(20 * time.Millisecond)
		if resp, err := cl.Do(workload.HTTPRequest(i, workload.FR), 5*time.Second); err != nil || resp.Status != 200 {
			t.Fatalf("live client request %d: resp=%+v err=%v", i, resp, err)
		}
	}
}

// TestPipelinedRequests: two framed POSTs in one write come back as two
// in-order responses on the same connection — the buffered reader frames
// them without another wire read, so the idle deadline can't misfire.
func TestPipelinedRequests(t *testing.T) {
	srv := startServer(t, Config{Workers: 2, IdleTimeout: 200 * time.Millisecond})
	c, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// FR then CBR(index 0 → match): distinct outcomes prove ordering.
	batch := append(append([]byte{}, workload.HTTPRequest(0, workload.FR)...),
		workload.HTTPRequest(0, workload.CBR)...)
	if _, err := c.Write(batch); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReaderSize(c, 32<<10)
	first, err := readResponse(br)
	if err != nil || first.Status != 200 || first.Outcome != "forwarded" {
		t.Fatalf("first pipelined response: %+v err=%v", first, err)
	}
	second, err := readResponse(br)
	if err != nil || second.Status != 200 || second.Outcome != "match" {
		t.Fatalf("second pipelined response: %+v err=%v", second, err)
	}

	// The connection is still keep-alive: a third, sequential request works.
	if _, err := c.Write(workload.HTTPRequest(2, workload.SV)); err != nil {
		t.Fatal(err)
	}
	third, err := readResponse(br)
	if err != nil || third.Status != 200 {
		t.Fatalf("post-pipeline request: %+v err=%v", third, err)
	}
	if got := srv.Metrics.Messages.Load(); got != 3 {
		t.Fatalf("server messages=%d, want 3", got)
	}
}

// TestHistQuantiles pins the histogram math.
func TestHistQuantiles(t *testing.T) {
	var h Hist
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * time.Microsecond) // buckets up to 2^7
	}
	s := h.Snapshot()
	if s.Count != 100 || s.MaxUS != 100 {
		t.Fatalf("count=%d max=%d", s.Count, s.MaxUS)
	}
	if s.P50US < 32 || s.P50US > 128 {
		t.Fatalf("p50=%d out of log-bucket range", s.P50US)
	}
	if s.P99US < s.P50US {
		t.Fatalf("p99=%d < p50=%d", s.P99US, s.P50US)
	}
	if s.MeanUS < 49 || s.MeanUS > 52 {
		t.Fatalf("mean=%f", s.MeanUS)
	}
}
