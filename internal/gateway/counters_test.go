package gateway

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestStatsCountersSection is the measurement layer's acceptance path:
// with Config.Counters on, /stats must carry a counters section with a
// positive measurement window, sane derived metrics (CPI > 0 in either
// mode — measured in "hw" mode, model-predicted in the runtime-only
// fallback), and live runtime observations. The test passes identically
// on perf-capable and perf-denied hosts; which mode ran is logged.
func TestStatsCountersSection(t *testing.T) {
	srv := startServer(t, Config{Workers: 2, UseCase: workload.CBR, Counters: true})
	addr := srv.Addr().String()
	if _, err := RunLoad(LoadConfig{Addr: addr, UseCase: workload.CBR, Conns: 2, Messages: 60}); err != nil {
		t.Fatal(err)
	}

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Do([]byte("GET /stats HTTP/1.1\r\nHost: x\r\n\r\n"), 5*time.Second)
	if err != nil || resp.Status != 200 {
		t.Fatalf("GET /stats: resp=%+v err=%v", resp, err)
	}
	var snap Snapshot
	if err := json.Unmarshal(resp.Body, &snap); err != nil {
		t.Fatalf("stats body not JSON: %v\n%s", err, resp.Body)
	}
	c := snap.Counters
	if c == nil {
		t.Fatalf("stats missing counters section:\n%s", resp.Body)
	}
	t.Logf("counters mode=%s notice=%q cpi=%.2f", c.Mode, c.Notice, c.Derived.CPI)

	switch c.Mode {
	case "hw":
		if c.DerivedSource != "hw" {
			t.Fatalf("hw mode with derived_source=%q", c.DerivedSource)
		}
		if c.Events["instructions"] == 0 && c.Events["cpu-cycles"] == 0 {
			t.Fatalf("hw mode with empty event window: %v", c.Events)
		}
	case "runtime-only":
		if c.DerivedSource != "model" {
			t.Fatalf("fallback mode with derived_source=%q", c.DerivedSource)
		}
		if c.Notice == "" || !strings.Contains(c.Notice, "runtime-metrics-only") {
			t.Fatalf("fallback mode must carry the one-line notice, got %q", c.Notice)
		}
	default:
		t.Fatalf("unknown counters mode %q", c.Mode)
	}
	if c.Derived.CPI <= 0 {
		t.Fatalf("CPI=%v, want > 0 (mode %s)", c.Derived.CPI, c.Mode)
	}
	if c.WindowSec <= 0 {
		t.Fatalf("window_sec=%v, want > 0", c.WindowSec)
	}
	if c.Runtime.Goroutines <= 0 || c.Runtime.GOMAXPROCS <= 0 {
		t.Fatalf("runtime section not populated: %+v", c.Runtime)
	}

	// A second scrape is a fresh (shorter) window, not a repeat.
	resp, err = cl.Do([]byte("GET /stats HTTP/1.1\r\nHost: x\r\n\r\n"), 5*time.Second)
	if err != nil || resp.Status != 200 {
		t.Fatalf("second /stats: resp=%+v err=%v", resp, err)
	}
	var snap2 Snapshot
	if err := json.Unmarshal(resp.Body, &snap2); err != nil {
		t.Fatal(err)
	}
	if snap2.Counters == nil || snap2.Counters.WindowSec >= c.WindowSec {
		t.Fatalf("second window %v not shorter than first %v",
			snap2.Counters.WindowSec, c.WindowSec)
	}
}

// TestCountersOffByDefault keeps the measurement layer opt-in: no
// counters section unless Config.Counters asks for it.
func TestCountersOffByDefault(t *testing.T) {
	srv := startServer(t, Config{Workers: 1})
	if snap := srv.Snapshot(); snap.Counters != nil {
		t.Fatalf("counters section present without Config.Counters: %+v", snap.Counters)
	}
	if mode, _ := srv.CountersMode(); mode != "off" {
		t.Fatalf("mode=%q want off", mode)
	}
}

// TestSweepCountersColumns runs the scaling harness with the measurement
// layer on: every row carries a counters snapshot and the rendered table
// gains the CPI/BrMPR columns next to throughput — the paper's Tables
// 4/6 beside its Figures 5/6.
func TestSweepCountersColumns(t *testing.T) {
	rows, err := RunSweep([]int{1, 2},
		LoadConfig{UseCase: workload.CBR, Conns: 2, Messages: 40, Size: 2048},
		Config{Counters: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		c := r.Server.Counters
		if c == nil {
			t.Fatalf("GOMAXPROCS=%d row missing counters", r.Procs)
		}
		if c.Derived.CPI <= 0 {
			t.Fatalf("GOMAXPROCS=%d CPI=%v, want > 0", r.Procs, c.Derived.CPI)
		}
	}
	table := FormatSweepTable(rows)
	if !strings.Contains(table, "cpi") || !strings.Contains(table, "brmpr%") {
		t.Fatalf("table missing counter columns:\n%s", table)
	}
	if rows[0].Server.Counters.Mode == "runtime-only" &&
		!strings.Contains(table, "* model prediction") {
		t.Fatalf("fallback sweep table missing the model-prediction footer:\n%s", table)
	}
}
