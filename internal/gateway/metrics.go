package gateway

import (
	"sync/atomic"
	"time"

	"repro/internal/lhist"
	"repro/internal/upstream"
	"repro/internal/workload"
)

// Hist is the shared log2-bucketed latency histogram (internal/lhist),
// aliased here so the gateway API reads as before the upstream subsystem
// also needed it.
type Hist = lhist.Hist

// HistSnapshot is a point-in-time percentile read.
type HistSnapshot = lhist.Snapshot

// rateRing tracks per-second message completions without locks: slot
// sec%len holds the count for wall-clock second sec, lazily reset when the
// ring wraps onto a stale second.
type rateRing struct {
	slots [8]struct {
		sec atomic.Int64
		n   atomic.Uint64
	}
}

func (r *rateRing) tick(now time.Time) {
	sec := now.Unix()
	s := &r.slots[sec%int64(len(r.slots))]
	if s.sec.Load() != sec {
		if s.sec.Swap(sec) != sec {
			s.n.Store(0)
		}
	}
	s.n.Add(1)
}

// lastSecond returns the completed count for the most recent *finished*
// wall-clock second (the current second is still filling).
func (r *rateRing) lastSecond(now time.Time) uint64 {
	want := now.Unix() - 1
	s := &r.slots[want%int64(len(r.slots))]
	if s.sec.Load() != want {
		return 0
	}
	return s.n.Load()
}

// Metrics is the gateway's live counter set — the socket-world mirror of
// the simulator's aon.Stats, plus the queue/shedding counters that only
// exist when load is real.
type Metrics struct {
	start time.Time

	Conns        atomic.Uint64 // connections accepted
	ActiveConns  atomic.Int64  // currently open connections
	Messages     atomic.Uint64 // messages fully processed and answered
	BytesIn      atomic.Uint64 // request bytes read off sockets
	BytesOut     atomic.Uint64 // response bytes written
	RoutedMatch  atomic.Uint64 // CBR: matched the routing condition
	RoutedError  atomic.Uint64 // routed to the error endpoint
	ValidationOK atomic.Uint64 // SV: schema-valid messages
	Forwarded    atomic.Uint64 // FR/DPI/AUTH: proxied to the intended endpoint
	Translated   atomic.Uint64 // XJ: messages rewritten XML→JSON
	ParseErrors  atomic.Uint64 // malformed HTTP/XML (400s)
	Shed         atomic.Uint64 // admission control rejections (503s)
	UpstreamErrs atomic.Uint64 // forwarding failures answered 502/504
	IdleTimeouts atomic.Uint64 // client connections reaped by the read deadline

	Latency Hist
	// LatencyByUC splits the service-time histogram per use case
	// (FR/CBR/SV plus the DPI/AUTH extensions), so end-to-end latency is
	// comparable per workload — and lines up with the per-use-case stage
	// traces.
	LatencyByUC [numTraceUseCases]Hist
	rate        rateRing
}

// NewMetrics starts the clock.
func NewMetrics() *Metrics { return &Metrics{start: time.Now()} }

// Done records one completed message with its service latency,
// attributed to the use case that processed it.
func (m *Metrics) Done(outcome Outcome, uc workload.UseCase, d time.Duration) {
	m.Messages.Add(1)
	m.Latency.Observe(d)
	if uc >= 0 && int(uc) < len(m.LatencyByUC) {
		m.LatencyByUC[uc].Observe(d)
	}
	m.rate.tick(time.Now())
	switch outcome {
	case OutForwarded:
		m.Forwarded.Add(1)
	case OutMatch:
		m.RoutedMatch.Add(1)
	case OutNoMatch:
		m.RoutedError.Add(1)
	case OutValid:
		m.ValidationOK.Add(1)
	case OutParseError:
		m.ParseErrors.Add(1)
	case OutTranslated:
		m.Translated.Add(1)
	}
}

// Snapshot is the JSON shape served on /stats and printed at shutdown.
type Snapshot struct {
	UptimeSec    float64 `json:"uptime_sec"`
	Conns        uint64  `json:"conns"`
	ActiveConns  int64   `json:"active_conns"`
	Messages     uint64  `json:"messages"`
	BytesIn      uint64  `json:"bytes_in"`
	BytesOut     uint64  `json:"bytes_out"`
	RoutedMatch  uint64  `json:"routed_match"`
	RoutedError  uint64  `json:"routed_error"`
	ValidationOK uint64  `json:"validation_ok"`
	Forwarded    uint64  `json:"forwarded"`
	Translated   uint64  `json:"translated"`
	ParseErrors  uint64  `json:"parse_errors"`
	Shed         uint64  `json:"shed_503"`
	UpstreamErrs uint64  `json:"upstream_errors"`
	IdleTimeouts uint64  `json:"idle_timeouts"`
	MsgsPerSec   float64 `json:"msgs_per_sec"`  // lifetime average
	LastSecMsgs  uint64  `json:"last_sec_msgs"` // most recent full second
	MbpsIn       float64 `json:"mbps_in"`       // lifetime average
	// Workers is the current worker-pool width (filled by
	// Server.Snapshot; adaptive mode resizes it at runtime). Campaign and
	// fleet scrapers seed the capacity model's station width from it.
	Workers int          `json:"workers"`
	Latency HistSnapshot `json:"latency"`
	// LatencyByUseCase carries one latency histogram per use case that
	// served at least one message, keyed "FR"/"CBR"/"SV"/"DPI"/"AUTH"/"XJ".
	LatencyByUseCase map[string]HistSnapshot `json:"latency_by_usecase,omitempty"`
	// Upstream is the per-backend forwarding view (nil when the gateway
	// answers in place — no backends configured).
	Upstream map[string]upstream.Snapshot `json:"upstream,omitempty"`
	// Counters is the live measurement layer (nil when Config.Counters is
	// off): windowed perf-counter deltas and derived CPI/BrMPR in "hw"
	// mode, runtime metrics always, model-predicted derived metrics in
	// the "runtime-only" fallback, plus the per-worker skew view.
	Counters *CountersSnapshot `json:"counters,omitempty"`
	// Stages is the sampled per-use-case stage trace (nil when tracing
	// is off): read/queue/parse/process/forward/write percentiles.
	Stages StageSnapshot `json:"stages,omitempty"`
	// Timeline summarizes the sampling session (nil when none runs); the
	// full ring is served by GET /timeline.
	Timeline *TimelineInfo `json:"timeline,omitempty"`
	// Traces summarizes the distributed-trace tail sampler (nil when
	// Config.Trace is off); the kept traces are served by GET /traces.
	Traces *TraceInfo `json:"traces,omitempty"`
	// Capacity is the adaptive-admission control view (nil when
	// Config.Adaptive is off): the model's latest observation, prediction,
	// decision, and model-vs-measured error.
	Capacity *CapacitySnapshot `json:"capacity,omitempty"`
}

// Snapshot reads every counter.
func (m *Metrics) Snapshot() Snapshot {
	now := time.Now()
	up := now.Sub(m.start).Seconds()
	if up <= 0 {
		up = 1e-9
	}
	msgs := m.Messages.Load()
	in := m.BytesIn.Load()
	var byUC map[string]HistSnapshot
	for i := range m.LatencyByUC {
		s := m.LatencyByUC[i].Snapshot()
		if s.Count == 0 {
			continue
		}
		if byUC == nil {
			byUC = map[string]HistSnapshot{}
		}
		byUC[workload.UseCase(i).String()] = s
	}
	return Snapshot{
		UptimeSec:        up,
		Conns:            m.Conns.Load(),
		ActiveConns:      m.ActiveConns.Load(),
		Messages:         msgs,
		BytesIn:          in,
		BytesOut:         m.BytesOut.Load(),
		RoutedMatch:      m.RoutedMatch.Load(),
		RoutedError:      m.RoutedError.Load(),
		ValidationOK:     m.ValidationOK.Load(),
		Forwarded:        m.Forwarded.Load(),
		Translated:       m.Translated.Load(),
		ParseErrors:      m.ParseErrors.Load(),
		Shed:             m.Shed.Load(),
		UpstreamErrs:     m.UpstreamErrs.Load(),
		IdleTimeouts:     m.IdleTimeouts.Load(),
		MsgsPerSec:       float64(msgs) / up,
		LastSecMsgs:      m.rate.lastSecond(now),
		MbpsIn:           float64(in) * 8 / 1e6 / up,
		Latency:          m.Latency.Snapshot(),
		LatencyByUseCase: byUC,
	}
}
