package gateway

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestPoolResize exercises the resizable worker pool directly: grow and
// shrink move the live width, retired workers exit cleanly, and the
// gateway keeps serving across both transitions.
func TestPoolResize(t *testing.T) {
	srv := startServer(t, Config{Workers: 2})
	addr := srv.Addr().String()

	if got := srv.Workers(); got != 2 {
		t.Fatalf("initial width %d, want 2", got)
	}
	srv.setPoolSize(6)
	if got := srv.Workers(); got != 6 {
		t.Fatalf("after grow width %d, want 6", got)
	}
	if rep, err := RunLoad(LoadConfig{Addr: addr, UseCase: workload.FR, Conns: 4, Messages: 80}); err != nil || rep.OK != 80 {
		t.Fatalf("load after grow: rep=%+v err=%v", rep, err)
	}
	srv.setPoolSize(1)
	if got := srv.Workers(); got != 1 {
		t.Fatalf("after shrink width %d, want 1", got)
	}
	if rep, err := RunLoad(LoadConfig{Addr: addr, UseCase: workload.FR, Conns: 2, Messages: 40}); err != nil || rep.OK != 40 {
		t.Fatalf("load after shrink: rep=%+v err=%v", rep, err)
	}
}

// TestAdaptiveConfigValidation pins the knob validation New applies.
func TestAdaptiveConfigValidation(t *testing.T) {
	bad := []Config{
		{TargetP99: -time.Second},
		{AdaptInterval: -time.Second},
		{MinWorkers: -1},
		{MaxWorkers: -1},
		{MaxInflight: -1},
		{Adaptive: true, Workers: 2, MinWorkers: 4, MaxWorkers: 2},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	// Adaptive defaults: tracing implied, bound starts at the ceiling.
	srv, err := New(Config{Adaptive: true, Workers: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if srv.tracer == nil {
		t.Fatal("adaptive mode must imply stage tracing")
	}
	if srv.capacity == nil {
		t.Fatal("adaptive mode must build the control loop")
	}
	want := int64(16 * (2 + 4))
	if got := srv.admitBound.Load(); got != want {
		t.Fatalf("initial admission bound %d, want ceiling %d", got, want)
	}
}

// TestAdaptiveAdmissionEndToEnd is the control loop live: a gateway with
// an aggressive p99 target and a deliberate per-message stall is driven
// to overload; the model must take decisions, pull the admission bound
// down from its wide-open initial ceiling, and publish the capacity
// section on /stats with both observed and predicted sides filled.
func TestAdaptiveAdmissionEndToEnd(t *testing.T) {
	srv := startServer(t, Config{
		Workers:       2,
		QueueDepth:    4,
		Adaptive:      true,
		TargetP99:     5 * time.Millisecond,
		AdaptInterval: 20 * time.Millisecond,
		TraceEvery:    1,
		ProcessDelay:  2 * time.Millisecond,
	})
	addr := srv.Addr().String()
	initial := srv.cfg.MaxInflight

	// Overload: 8 connections pushing as fast as they can against two
	// workers that each spend >= 2ms per message.
	if _, err := RunLoad(LoadConfig{Addr: addr, UseCase: workload.FR, Conns: 8, Messages: 400}); err != nil {
		t.Fatal(err)
	}

	// The loop is asynchronous: wait for it to both decide and move the
	// bound off the ceiling (2ms demand vs a 5ms p99 target cannot
	// admit anywhere near 16x the static bound).
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := srv.capacity.snapshot()
		if snap.Counters.Decisions > 0 && snap.AdmissionBound != initial {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission bound never moved: %+v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The wire-visible /stats must carry the capacity section.
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Do([]byte("GET /stats HTTP/1.1\r\nHost: x\r\n\r\n"), 5*time.Second)
	if err != nil || resp.Status != 200 {
		t.Fatalf("GET /stats: resp=%+v err=%v", resp, err)
	}
	var snap Snapshot
	if err := json.Unmarshal(resp.Body, &snap); err != nil {
		t.Fatalf("stats body not JSON: %v\n%s", err, resp.Body)
	}
	c := snap.Capacity
	if c == nil || !c.Enabled {
		t.Fatalf("stats missing capacity section: %+v", snap.Capacity)
	}
	if c.AdmissionBound <= 0 || c.AdmissionBound == c.InitialBound {
		t.Fatalf("admission bound %d never left the initial %d", c.AdmissionBound, c.InitialBound)
	}
	if c.Workers <= 0 {
		t.Fatalf("capacity section reports no workers: %+v", c)
	}
	if c.Counters.Decisions == 0 {
		t.Fatalf("no decisions recorded: %+v", c.Counters)
	}
	if c.Observed == nil || c.Observed.ProcessUS <= 0 {
		t.Fatalf("observed window missing stage demands: %+v", c.Observed)
	}
	if c.Predicted == nil || c.Predicted.ThroughputPerSec <= 0 {
		t.Fatalf("prediction missing: %+v", c.Predicted)
	}
	// GET requests themselves were traced into the control slot.
	if _, ok := snap.Stages["GET"]; !ok {
		t.Fatalf("control-plane GET row missing from stages: %v", snap.Stages)
	}
}

// TestAdaptiveShedsUnderOverload shows the moved bound doing its job:
// once the model pulls admission down, sustained overload sheds with
// 503s while goodput continues — the paper-style overload behavior the
// EXPERIMENTS recipe sweeps.
func TestAdaptiveShedsUnderOverload(t *testing.T) {
	srv := startServer(t, Config{
		Workers:       1,
		QueueDepth:    2,
		Adaptive:      true,
		TargetP99:     2 * time.Millisecond,
		AdaptInterval: 15 * time.Millisecond,
		TraceEvery:    1,
		ProcessDelay:  4 * time.Millisecond,
	})
	addr := srv.Addr().String()

	// First wave teaches the model the demand; second wave runs against
	// the tightened bound.
	if _, err := RunLoad(LoadConfig{Addr: addr, UseCase: workload.FR, Conns: 6, Messages: 120}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.capacity.snapshot().Counters.Decisions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("control loop never decided")
		}
		time.Sleep(10 * time.Millisecond)
	}
	rep, err := RunLoad(LoadConfig{Addr: addr, UseCase: workload.FR, Conns: 8, Messages: 240})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 {
		t.Fatalf("adaptive admission starved all goodput: %+v", rep)
	}
	snap := srv.Metrics.Snapshot()
	if snap.Shed == 0 {
		t.Fatalf("overload against a 2ms target with 4ms demand must shed: %+v", rep)
	}
}
