// Package gateway is the live counterpart of the simulated AON device: a
// real TCP server that speaks the paper's protocol — HTTP/1.1 POSTs
// carrying AONBench order documents — and runs the same three pipelines
// (FR proxying, CBR XPath routing, SV schema validation, plus the DPI and
// AUTH extensions) on live bytes using the repo's XML stack.
//
// The structure follows Section 3.2.1 of the paper: a bounded worker pool
// with one worker per logical CPU services an accept queue; admission
// control sheds load with 503s when the queue is full rather than letting
// goroutines (the live analogue of the paper's thread pool) grow without
// bound. A metrics layer mirrors the simulator's aon.Stats with atomics
// and adds latency histograms and per-second throughput, served on GET
// /stats and in the final report, so the GOMAXPROCS=1 vs N scaling curve
// can be measured on real hardware and compared against the simulated
// 1CPm vs 2CPm results.
package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dtrace"
	"repro/internal/httpmsg"
	"repro/internal/perf/trace"
	"repro/internal/session"
	"repro/internal/upstream"
	"repro/internal/workload"
	"repro/internal/xsd"
	"repro/internal/zc"
)

// Config parameterizes a live gateway.
type Config struct {
	// UseCase is the default pipeline when the request path doesn't name
	// one (/service/FR, /service/CBR, ... select per-request).
	UseCase workload.UseCase
	// Workers sizes the worker pool; 0 means one per logical CPU
	// (GOMAXPROCS), the paper's Section 3.2.1 policy.
	Workers int
	// QueueDepth bounds the admission queue between connection readers
	// and workers; 0 means 4x workers. A full queue sheds with 503.
	QueueDepth int
	// MaxBodyBytes rejects larger POSTs with 400; 0 means 1 MiB.
	MaxBodyBytes int
	// Expr overrides the CBR XPath (default //quantity/text()).
	Expr string
	// Schema overrides the SV schema (default the AONBench order schema).
	Schema *xsd.Schema
	// ProcessDelay adds a fixed per-message stall in the worker — a fault
	// -injection knob for emulating a slower device and for testing the
	// admission control deterministically.
	ProcessDelay time.Duration
	// IdleTimeout is the per-read deadline on client connections: a
	// connection that goes quiet (between requests or stalled mid-request)
	// is reaped after this long, so dead clients can't pin connection
	// readers forever. 0 means the 60s default; negative disables.
	IdleTimeout time.Duration
	// Upstream configures real backend forwarding. When a backend is set
	// for a route, pipeline outcomes routed there are forwarded over
	// pooled keep-alive connections and the backend's response is relayed;
	// with no backends the gateway answers in place (the PR 1 behavior).
	Upstream upstream.Config
	// Counters enables the live measurement layer (the paper's VTune
	// methodology on real hardware): a process-wide perf_event_open
	// counter set read as windowed deltas in Snapshot and /stats, plus
	// one thread-scoped event group per pool worker (each worker pins
	// its goroutine) for the per-worker CPI/cache/branch skew view.
	// Degrades to runtime-metrics-only observability where perf is
	// unavailable.
	Counters bool
	// Timeline starts a sampling session (the paper's VTune sampling
	// sessions): a fixed-interval sampler snapshots counter windows,
	// gateway metric deltas, and pool gauges into a bounded ring served
	// on /timeline, summarized on /stats, and dumpable as CSV. Implies
	// Counters.
	Timeline bool
	// SampleInterval is the sampling period; 0 means 100ms. Negative is
	// rejected by New.
	SampleInterval time.Duration
	// SampleCapacity bounds the timeline ring; 0 means 600 samples (one
	// minute at the default interval). Negative is rejected by New.
	SampleCapacity int
	// TimelineFlush, with TimelineFlushInterval > 0, persists the
	// sampling session continuously: a background flusher appends every
	// newly recorded sample to the appender each interval, so the
	// timeline survives a crash or restart instead of living only in the
	// in-memory ring. Implies Timeline.
	TimelineFlush *session.Appender
	// TimelineFlushInterval is the persistence period; 0 disables the
	// flusher (the PR 4 dump-on-signal/shutdown behavior). Negative is
	// rejected by New.
	TimelineFlushInterval time.Duration
	// TraceEvery enables per-request stage tracing, sampling one request
	// in every TraceEvery through monotonic stamps around
	// read→queue→parse→process→forward→write, aggregated into
	// per-use-case per-stage histograms on /stats. 0 disables; negative
	// is rejected by New.
	TraceEvery int
	// Trace enables distributed per-request tracing (internal/dtrace):
	// every request records real spans around the
	// read→queue→parse→process→forward→write stage points into a pooled
	// recorder, adopts an inbound X-AON-Trace context (or mints one),
	// propagates context on upstream forwards, and offers the finished
	// trace to a tail-based sampler — shed/idle-reaped/5xx and slow
	// requests are always kept, the fast majority 1-in-TraceKeepEvery —
	// served on GET /traces. Orthogonal to TraceEvery's aggregate stage
	// histograms.
	Trace bool
	// TraceNode names this process in recorded spans (default
	// "gateway"); fleet mode passes the topology node key so assembled
	// traces attribute time to the right process.
	TraceNode string
	// TraceSlowOver is the tail sampler's always-keep latency bound
	// (default 50ms; negative disables the slow rule).
	TraceSlowOver time.Duration
	// TraceKeepEvery probabilistically keeps 1-in-N ordinary traces
	// (default 64). Negative is rejected by New.
	TraceKeepEvery int
	// TraceCapacity bounds the kept-trace ring (default 256). Negative
	// is rejected by New.
	TraceCapacity int
	// SlowLog, when set with Trace, receives one structured line per
	// shed/idle-timeout/5xx request (trace ID, use case, stage
	// breakdown), rate-limited to SlowLogPerSec lines per second
	// (default 10) so overload can't amplify itself through logging.
	SlowLog io.Writer
	// SlowLogPerSec caps slow-request log lines per wall-clock second
	// (default 10). Negative is rejected by New.
	SlowLogPerSec int
	// Adaptive turns on model-driven admission control: a periodic
	// control loop feeds the analytic capacity model
	// (internal/capacity) with windowed arrival-rate, latency, and
	// stage-demand observations, and the model's decisions resize the
	// worker pool and move the 503 admission bound at runtime — with
	// hysteresis, floor/ceiling clamps, and a hard fallback to the
	// static Workers/QueueDepth flags when observations go stale or the
	// model diverges from measurement. Implies stage tracing (the
	// model's service demands come from the stage tracer; TraceEvery
	// defaults to 8 when unset).
	Adaptive bool
	// TargetP99 is the latency bound adaptive admission defends
	// (default 100ms).
	TargetP99 time.Duration
	// AdaptInterval is the control-loop period (default 500ms).
	AdaptInterval time.Duration
	// MinWorkers/MaxWorkers clamp the adaptive pool width (defaults 1
	// and 4x Workers).
	MinWorkers int
	MaxWorkers int
	// MaxInflight is the adaptive admission bound's ceiling and its
	// initial value — the loop starts wide open and lets the model pull
	// the bound down (default 16x the static bound).
	MaxInflight int64
}

// job is one framed request travelling from a connection reader to a
// worker and back. Jobs are pooled; the resp channel is created once and
// reused for the job's whole pooled lifetime.
type job struct {
	raw   []byte
	start time.Time
	resp  chan response

	traced  bool          // this request is in the stage-trace sample
	readDur time.Duration // wire→memory framing time (traced requests only)

	// rec is the request's distributed-trace recorder (nil with tracing
	// off). Ownership rides with the job: the reader attaches it before
	// enqueue, the worker records stage spans into it, and the reader
	// takes it back on the resp receive — never shared.
	rec *dtrace.Recorder
}

// response carries a formatted answer from a worker back to the
// connection reader. head holds the header block (plus any inlined small
// body); body, when non-nil, is a separately-owned payload written
// vectored after head (writev) instead of being copied. buf, when
// non-nil, is the pooled buffer backing head — the reader recycles it
// after the write completes, which is the lifetime discipline that makes
// the pooling safe.
type response struct {
	head   []byte
	body   []byte
	buf    *[]byte
	close  bool // respond then close the connection
	uc     workload.UseCase
	traced bool // stamp the write stage on the way out
	status int  // HTTP status (tail sampling's error rule reads it)
}

// Hot-path pools. Frames and bufio readers are owned by one connection
// at a time; response buffers by one in-flight response; jobs by one
// admission attempt. Every Get/Put pair is bracketed by a happens-before
// edge (channel send/receive or write completion), so pooled memory is
// never shared between two owners.
var (
	framePool = sync.Pool{New: func() any {
		b := make([]byte, 0, 8<<10)
		return &b
	}}
	brPool = sync.Pool{New: func() any {
		return bufio.NewReaderSize(nil, 32<<10)
	}}
	respBufPool = sync.Pool{New: func() any {
		b := make([]byte, 0, 1<<10)
		return &b
	}}
	jobPool = sync.Pool{New: func() any {
		return &job{resp: make(chan response, 1)}
	}}
)

// Prebuilt shed/drain responses: under overload these are the most
// frequent writes, so they must not cost a format each.
var (
	respQueueFull  = formatError(503, "queue full", false)
	respAdmitBound = formatError(503, "admission bound", false)
	respDraining   = formatError(503, "draining", true)
)

// Server is one live gateway instance.
type Server struct {
	cfg       Config
	pipe      *Pipeline
	fwd       *upstream.Forwarder // nil: answer in place
	counters  *counterSampler     // nil: measurement layer off
	statsView *counterView        // the /stats scrape's own measurement windows
	tracer    *stageTracer        // nil: stage tracing off
	dtr       *dtraceState        // nil: distributed tracing off
	timeline  *timelineState      // nil: no sampling session
	capacity  *capacityLoop       // nil: adaptive admission off
	Metrics   *Metrics

	ln       net.Listener
	jobs     chan *job
	stopping atomic.Bool
	inflight atomic.Int64 // jobs between admission and response write

	// admitBound is the live admission limit: a connection reader sheds
	// with 503 when inflight >= admitBound (0 means unbounded, static
	// mode's queue-full select is then the only brake). The capacity
	// control loop moves it at runtime.
	admitBound atomic.Int64
	poolSize   atomic.Int64 // live worker count (reads for gauges)

	// poolMu serializes pool resizes; workerQuits holds one quit channel
	// per live worker so shrink can retire exactly the newest ones.
	poolMu      sync.Mutex
	workerQuits []chan struct{}
	nextWorker  int

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	acceptWG sync.WaitGroup
	connWG   sync.WaitGroup
	workerWG sync.WaitGroup

	shutOnce sync.Once
	shutErr  error
}

// New builds a server; Start or Serve brings it live.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 60 * time.Second
	}
	if cfg.SampleInterval < 0 {
		return nil, fmt.Errorf("gateway: sampling interval must be positive, got %v", cfg.SampleInterval)
	}
	if cfg.SampleCapacity < 0 {
		return nil, fmt.Errorf("gateway: sample capacity must be positive, got %d", cfg.SampleCapacity)
	}
	if cfg.TraceEvery < 0 {
		return nil, fmt.Errorf("gateway: trace sampling ratio must be positive, got %d", cfg.TraceEvery)
	}
	if cfg.TraceKeepEvery < 0 {
		return nil, fmt.Errorf("gateway: trace keep ratio must be positive, got %d", cfg.TraceKeepEvery)
	}
	if cfg.TraceCapacity < 0 {
		return nil, fmt.Errorf("gateway: trace capacity must be positive, got %d", cfg.TraceCapacity)
	}
	if cfg.SlowLogPerSec < 0 {
		return nil, fmt.Errorf("gateway: slow-log rate must be positive, got %d", cfg.SlowLogPerSec)
	}
	if cfg.TimelineFlushInterval < 0 {
		return nil, fmt.Errorf("gateway: timeline flush interval must be positive, got %v", cfg.TimelineFlushInterval)
	}
	if cfg.TimelineFlush != nil && cfg.TimelineFlushInterval > 0 {
		// Continuous persistence needs a session to persist.
		cfg.Timeline = true
	}
	if cfg.Timeline {
		// A sampling session is a consumer of the measurement layer.
		cfg.Counters = true
	}
	if cfg.TargetP99 < 0 {
		return nil, fmt.Errorf("gateway: target p99 must be positive, got %v", cfg.TargetP99)
	}
	if cfg.AdaptInterval < 0 {
		return nil, fmt.Errorf("gateway: adapt interval must be positive, got %v", cfg.AdaptInterval)
	}
	if cfg.MinWorkers < 0 || cfg.MaxWorkers < 0 {
		return nil, fmt.Errorf("gateway: worker clamps must be positive, got min=%d max=%d", cfg.MinWorkers, cfg.MaxWorkers)
	}
	if cfg.MaxInflight < 0 {
		return nil, fmt.Errorf("gateway: max inflight must be positive, got %d", cfg.MaxInflight)
	}
	if cfg.Adaptive {
		// The model's service demands come from the stage tracer.
		if cfg.TraceEvery == 0 {
			cfg.TraceEvery = 8
		}
		if cfg.TargetP99 == 0 {
			cfg.TargetP99 = 100 * time.Millisecond
		}
		if cfg.AdaptInterval == 0 {
			cfg.AdaptInterval = 500 * time.Millisecond
		}
		if cfg.MinWorkers == 0 {
			cfg.MinWorkers = 1
		}
		if cfg.MaxWorkers == 0 {
			cfg.MaxWorkers = 4 * cfg.Workers
		}
		if cfg.MaxWorkers < cfg.MinWorkers {
			return nil, fmt.Errorf("gateway: max workers %d below min %d", cfg.MaxWorkers, cfg.MinWorkers)
		}
		if cfg.MaxInflight == 0 {
			cfg.MaxInflight = 16 * int64(cfg.Workers+cfg.QueueDepth)
		}
	}
	pipe, err := NewPipeline(cfg.UseCase, cfg.Expr, cfg.Schema)
	if err != nil {
		return nil, err
	}
	var fwd *upstream.Forwarder
	if cfg.Upstream.Enabled() {
		fwd, err = upstream.New(cfg.Upstream)
		if err != nil {
			return nil, err
		}
	}
	queueCap := cfg.QueueDepth
	if cfg.Adaptive {
		// Adaptive mode brakes on the admission bound, not the channel:
		// size the queue so the select-default never sheds below the
		// bound's ceiling (clamped — slots are one pointer each).
		if c := int(cfg.MaxInflight); c > queueCap {
			queueCap = c
		}
		if queueCap > 1<<16 {
			queueCap = 1 << 16
		}
	}
	s := &Server{
		cfg:     cfg,
		pipe:    pipe,
		fwd:     fwd,
		Metrics: NewMetrics(),
		jobs:    make(chan *job, queueCap),
		conns:   map[net.Conn]struct{}{},
	}
	if cfg.Counters {
		s.counters = newCounterSampler(cfg.UseCase)
		s.statsView = newCounterView(s.counters)
	}
	if cfg.TraceEvery > 0 {
		s.tracer = newStageTracer(cfg.TraceEvery)
	}
	if cfg.Trace {
		s.dtr = newDtraceState(cfg)
	}
	if cfg.Adaptive {
		// Start wide open: the first model decision pulls the bound down
		// to what the target p99 admits.
		s.admitBound.Store(cfg.MaxInflight)
		s.capacity = newCapacityLoop(s)
	}
	return s, nil
}

// CountersMode reports the measurement layer's operating mode ("hw",
// "runtime-only", or "off") and its one-line notice, for startup
// banners and sweep headers.
func (s *Server) CountersMode() (mode, notice string) { return s.counters.mode() }

// Workers reports the pool size in effect (the live width once the
// server started; the configured width before).
func (s *Server) Workers() int {
	if n := s.poolSize.Load(); n > 0 {
		return int(n)
	}
	return s.cfg.Workers
}

// setPoolSize grows or shrinks the worker pool to n. Growth spawns
// workers with monotonically increasing ids (so perf worker groups stay
// distinct); shrink closes the newest quit channels — a retiring worker
// finishes its current job first, so no message is dropped. No-op while
// stopping: shutdown owns the pool from then on.
func (s *Server) setPoolSize(n int) {
	if n < 1 {
		n = 1
	}
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	if s.stopping.Load() {
		return
	}
	for len(s.workerQuits) < n {
		quit := make(chan struct{})
		s.workerQuits = append(s.workerQuits, quit)
		s.workerWG.Add(1)
		go s.worker(s.nextWorker, quit)
		s.nextWorker++
	}
	for len(s.workerQuits) > n {
		last := len(s.workerQuits) - 1
		close(s.workerQuits[last])
		s.workerQuits = s.workerQuits[:last]
	}
	s.poolSize.Store(int64(n))
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves in background
// goroutines until Shutdown.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.setPoolSize(s.cfg.Workers)
	s.acceptWG.Add(1)
	go s.acceptLoop()
	if s.cfg.Timeline {
		if err := s.startTimeline(); err != nil {
			s.Shutdown(context.Background())
			return err
		}
	}
	if s.capacity != nil {
		s.capacity.start()
	}
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			if s.stopping.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.Metrics.Conns.Add(1)
		s.Metrics.ActiveConns.Add(1)
		s.connWG.Add(1)
		go s.handleConn(c)
	}
}

func (s *Server) removeConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
	s.Metrics.ActiveConns.Add(-1)
	s.connWG.Done()
}

// handleConn frames keep-alive requests off one socket and runs each
// through admission control. Framing is deliberately cheap (scan to the
// blank line, then Content-Length bytes); the full HTTP parse happens on
// a worker so the connection reader stays I/O-bound.
func (s *Server) handleConn(c net.Conn) {
	defer s.removeConn(c)
	br := brPool.Get().(*bufio.Reader)
	br.Reset(c)
	defer func() {
		br.Reset(nil)
		brPool.Put(br)
	}()
	// The connection owns one pooled frame for its whole life: readRequest
	// appends each message into it, the worker parses views out of it, and
	// the reader only reuses it for the next message after the response
	// write completed — receiving on j.resp is the happens-before edge.
	fp := framePool.Get().(*[]byte)
	defer framePool.Put(fp)
	var nb net.Buffers // reused writev scratch
	for {
		// The idle deadline covers one whole request read: a client that
		// goes quiet between requests *or* stalls mid-request is reaped,
		// so dead clients can't pin connection readers forever. Pipelined
		// requests already buffered are served without touching the wire,
		// so they never trip it.
		if s.cfg.IdleTimeout > 0 {
			c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		// For traced requests the read stage runs first byte → complete
		// body: Peek blocks until the next request's first byte arrives
		// (consuming nothing), so keep-alive idle time never counts as
		// read time. Peek errors fall through to readRequest, which
		// reports them on its existing paths.
		var traced bool
		var tRead time.Time
		if s.tracer != nil || s.dtr != nil {
			if _, err := br.Peek(1); err == nil {
				if s.tracer != nil {
					traced = s.tracer.sample()
				}
				if traced || s.dtr != nil {
					tRead = time.Now()
				}
			}
		}
		raw, err := readRequest(br, s.cfg.MaxBodyBytes, *fp)
		*fp = raw
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				s.Metrics.IdleTimeouts.Add(1)
				if s.dtr != nil && len(raw) > 0 && !tRead.IsZero() {
					// Reaped mid-request: keep a synthetic trace so the
					// idle-timeout is findable in the tail ring.
					rec := dtrace.GetRecorder(s.dtr.node)
					rec.Begin("gateway", tRead)
					s.dtr.finish(rec, "", "idle-timeout", 0)
				}
				return
			}
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				var fe *frameError
				if errors.As(err, &fe) {
					s.Metrics.ParseErrors.Add(1)
					s.write(c, formatError(400, fe.msg, true))
				}
			}
			return
		}
		s.Metrics.BytesIn.Add(uint64(len(raw)))

		// GET requests (the /stats endpoint) bypass the worker pool so
		// observability survives overload — the whole point of /stats.
		if bytes.HasPrefix(raw, []byte("GET ")) {
			var tProc time.Time
			if traced {
				tProc = time.Now()
				s.tracer.observeControl(StageRead, tProc.Sub(tRead))
			}
			resp := s.handleGet(raw)
			var tWrite time.Time
			if traced {
				tWrite = time.Now()
				s.tracer.observeControl(StageProcess, tWrite.Sub(tProc))
			}
			ok := s.write(c, resp)
			if traced {
				s.tracer.observeControl(StageWrite, time.Since(tWrite))
			}
			if !ok {
				return
			}
			continue
		}

		// Distributed tracing records every request into a pooled
		// recorder; the tail sampler decides at completion whether it
		// survives. rec ownership rides with the job through the worker
		// and returns with the resp receive.
		var rec *dtrace.Recorder
		if s.dtr != nil {
			if tRead.IsZero() {
				tRead = time.Now()
			}
			rec = dtrace.GetRecorder(s.dtr.node)
			rec.Begin("gateway", tRead)
		}
		if s.stopping.Load() {
			if rec != nil {
				s.dtr.finish(rec, "", "draining", 503)
			}
			s.write(c, respDraining)
			return
		}
		// The adaptive admission bound sheds before the queue does: when
		// the model says more concurrency would blow the p99 target, the
		// 503 happens here, at a bound the control loop moves at runtime.
		if bound := s.admitBound.Load(); bound > 0 && s.inflight.Load() >= bound {
			s.Metrics.Shed.Add(1)
			if rec != nil {
				s.dtr.finish(rec, "", "shed", 503)
			}
			if !s.write(c, respAdmitBound) {
				return
			}
			continue
		}
		j := jobPool.Get().(*job)
		j.raw, j.start, j.traced, j.readDur = raw, time.Now(), false, 0
		if traced {
			j.traced, j.readDur = true, j.start.Sub(tRead)
		}
		if rec != nil {
			rec.Add("read", tRead, j.start.Sub(tRead))
			j.rec = rec
		}
		s.inflight.Add(1)
		select {
		case s.jobs <- j:
			r := <-j.resp
			j.raw, j.rec = nil, nil
			jobPool.Put(j)
			var tWrite time.Time
			if r.traced || rec != nil {
				tWrite = time.Now()
			}
			ok := s.writeResp(c, &r, &nb)
			if r.traced {
				s.tracer.observe(r.uc, StageWrite, time.Since(tWrite))
			}
			if rec != nil {
				rec.Add("write", tWrite, time.Since(tWrite))
				rec.Finish(time.Now())
				s.dtr.offer(rec)
			}
			s.inflight.Add(-1)
			if !ok || r.close {
				return
			}
		default:
			s.inflight.Add(-1)
			j.raw, j.rec = nil, nil
			jobPool.Put(j)
			s.Metrics.Shed.Add(1)
			if rec != nil {
				s.dtr.finish(rec, "", "shed", 503)
			}
			if !s.write(c, respQueueFull) {
				return
			}
		}
	}
}

// write sends a response and accounts the bytes; false means the
// connection is dead.
func (s *Server) write(c net.Conn, b []byte) bool {
	n, err := c.Write(b)
	s.Metrics.BytesOut.Add(uint64(n))
	return err == nil
}

// writeResp sends a worker-built response — vectored (writev) when a
// separately-owned body rides along — and recycles the pooled head
// buffer once the write is done. nb is the connection's reused
// net.Buffers scratch (WriteTo consumes its receiver, so a fresh literal
// per call would escape).
func (s *Server) writeResp(c net.Conn, r *response, nb *net.Buffers) bool {
	var n int64
	var err error
	if len(r.body) > 0 {
		*nb = append((*nb)[:0], r.head, r.body)
		n, err = nb.WriteTo(c)
	} else {
		var m int
		m, err = c.Write(r.head)
		n = int64(m)
	}
	s.Metrics.BytesOut.Add(uint64(n))
	if r.buf != nil {
		*r.buf = r.head[:0] // keep capacity grown during formatting
		respBufPool.Put(r.buf)
	}
	return err == nil
}

// wscratch is one worker's reusable parse/format state: the request and
// response structs, their header backing arrays, the verdict-body
// scratch, and the upstream request head. Everything in it is dead by
// the time process returns except bytes already copied into the pooled
// response buffer.
type wscratch struct {
	req    httpmsg.Request
	resp   httpmsg.Response
	hdrs   []httpmsg.Header
	body   []byte // small JSON bodies; always inlined into head
	upReq  httpmsg.Request
	upHdrs []httpmsg.Header
	upHead []byte // upstream request header block
	trval  []byte // propagated X-AON-Trace header value scratch
}

func (s *Server) worker(id int, quit chan struct{}) {
	defer s.workerWG.Done()
	if s.counters != nil {
		// Pin the goroutine to its OS thread so the thread-scoped event
		// group opened by registerWorker counts exactly this worker's
		// execution — the per-worker skew view depends on it.
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
		wc := s.counters.registerWorker(id)
		defer s.counters.unregisterWorker(wc)
	}
	var sc wscratch
	for {
		select {
		case <-quit:
			return
		case j, ok := <-s.jobs:
			if !ok {
				return
			}
			j.resp <- s.process(j, &sc)
		}
	}
}

// process is the worker-side pipeline: full HTTP parse, use-case
// dispatch, response build. The parse is zero-copy (views into j.raw,
// the connection's pooled frame) and the response is formatted into a
// pooled buffer the reader recycles after the write — both safe because
// the reader never touches the frame again until it has received and
// written this response.
func (s *Server) process(j *job, sc *wscratch) response {
	// Stage stamps bracket the worker's phases for traced requests; the
	// ProcessDelay fault-injection stall runs inside the process stage,
	// so an emulated slower device shows up as process demand — which is
	// what the capacity model (and adaptive admission) must see.
	rec := j.rec
	stamp := j.traced || rec != nil
	var tDeq time.Time
	if stamp {
		tDeq = time.Now()
	}
	var tWork time.Time
	if stamp {
		tWork = time.Now()
	}
	req := &sc.req
	if err := httpmsg.ParseRequestInto(j.raw, req); err != nil {
		uc := s.cfg.UseCase // malformed request: no path to select from
		if j.traced {
			s.tracer.observe(uc, StageRead, j.readDur)
			s.tracer.observe(uc, StageQueue, tDeq.Sub(j.start))
			s.tracer.observe(uc, StageParse, time.Since(tWork))
		}
		if rec != nil {
			rec.Add("queue", j.start, tDeq.Sub(j.start))
			rec.Add("parse", tWork, time.Since(tWork))
			rec.Annotate(uc.String(), OutParseError.String(), 400)
		}
		s.Metrics.Done(OutParseError, uc, time.Since(j.start))
		return response{head: formatError(400, err.Error(), true), close: true, uc: uc, traced: j.traced, status: 400}
	}
	if rec != nil {
		// Adopt an inbound trace context (aonload/aoncamp originate
		// traces by injecting the header); the zero-copy Get hands out a
		// view, parsed without allocating.
		if v, ok := req.Get(dtrace.Header); ok {
			if tid, pid, ok := dtrace.ParseHeaderValueString(v); ok {
				rec.Adopt(tid, pid)
			}
		}
	}
	var tParsed time.Time
	if stamp {
		tParsed = time.Now()
	}
	uc := s.pipe.SelectUseCase(req.Target)
	if s.cfg.ProcessDelay > 0 {
		time.Sleep(s.cfg.ProcessDelay)
	}
	out := s.pipe.Process(uc, req)
	var tProcessed time.Time
	if stamp {
		tProcessed = time.Now()
	}
	if j.traced {
		s.tracer.observe(uc, StageRead, j.readDur)
		s.tracer.observe(uc, StageQueue, tDeq.Sub(j.start))
		s.tracer.observe(uc, StageParse, tParsed.Sub(tWork))
		s.tracer.observe(uc, StageProcess, tProcessed.Sub(tParsed))
	}
	if rec != nil {
		rec.Add("queue", j.start, tDeq.Sub(j.start))
		rec.Add("parse", tWork, tParsed.Sub(tWork))
		rec.Add("process", tParsed, tProcessed.Sub(tParsed))
	}
	if out == OutParseError {
		if rec != nil {
			rec.Annotate(uc.String(), out.String(), 400)
		}
		s.Metrics.Done(out, uc, time.Since(j.start))
		return response{head: formatError(400, "unprocessable message", false), uc: uc, traced: j.traced, status: 400}
	}
	connClose := false
	if v, ok := req.Get("Connection"); ok && strings.EqualFold(v, "close") {
		connClose = true
	}
	route := routeOf(out)

	resp := &sc.resp
	*resp = httpmsg.Response{Status: 200, Headers: sc.hdrs[:0]}
	// vbody rides as a separately-owned writev segment (fresh buffers
	// only: the translated XJ payload or the upstream body); inline is
	// worker-scratch and must be copied into the pooled head before the
	// job is handed back.
	var vbody, inline []byte
	if s.fwd != nil && s.fwd.Has(route) {
		// Forwarding mode: the paper's device proxies onward — relay the
		// backend's answer (or map its failure to 502/504, never hang).
		vbody, inline = s.forward(resp, route, uc, out, req, sc, rec)
		if j.traced {
			s.tracer.observe(uc, StageForward, time.Since(tProcessed))
		}
	} else {
		// In-place mode (no backend for this route): synthesize the
		// routing verdict, the PR 1 behavior. XJ answers with its own
		// payload — the pipeline already rewrote req.Body to the
		// translated JSON document (a fresh buffer, so it may ride
		// vectored).
		resp.Headers = append(resp.Headers,
			httpmsg.Header{Name: "Content-Type", Value: "application/json"},
			httpmsg.Header{Name: RouteHeader, Value: route},
			httpmsg.Header{Name: "X-AON-Outcome", Value: out.String()},
		)
		if out == OutTranslated {
			vbody = req.Body
		} else {
			sc.body = appendVerdict(sc.body[:0], uc.String(), out.String(), route)
			inline = sc.body
		}
	}
	if rec != nil {
		rec.Annotate(uc.String(), out.String(), resp.Status)
	}
	s.Metrics.Done(out, uc, time.Since(j.start))
	if connClose {
		resp.Headers = append(resp.Headers, httpmsg.Header{Name: "Connection", Value: "close"})
	}
	buf := respBufPool.Get().(*[]byte)
	head := httpmsg.AppendResponseHeader((*buf)[:0], resp, len(vbody)+len(inline))
	head = append(head, inline...)
	sc.hdrs = resp.Headers[:0] // keep the grown header backing
	return response{head: head, body: vbody, buf: buf, close: connClose, uc: uc, traced: j.traced, status: resp.Status}
}

// appendVerdict appends the in-place routing verdict JSON — the append
// twin of fmt.Sprintf(`{"usecase":%q,...}`) for values that never need
// escaping.
func appendVerdict(dst []byte, uc, out, route string) []byte {
	dst = append(dst, `{"usecase":"`...)
	dst = append(dst, uc...)
	dst = append(dst, `","outcome":"`...)
	dst = append(dst, out...)
	dst = append(dst, `","route":"`...)
	dst = append(dst, route...)
	return append(dst, `"}`...)
}

// forward relays one processed message to the route's backend and fills
// resp from the backend's answer. Forwarding failures map to 502
// (unreachable/down) or 504 (timed out) — bounded by the upstream retry
// budget, so the client never hangs on a dead backend. The upstream
// request header is built in the worker's scratch and written vectored
// with the body view, so forwarding copies no payload bytes. With rec
// set, the trace context propagates on an X-AON-Trace header whose
// parent span ID is minted *before* the round trip — the backend's
// serve span parents under the forward span it rode in on. Returns
// (vectored body, inline body) for the caller's response formatting.
func (s *Server) forward(resp *httpmsg.Response, route string, uc workload.UseCase, out Outcome, req *httpmsg.Request, sc *wscratch, rec *dtrace.Recorder) (vbody, inline []byte) {
	up := &sc.upReq
	*up = httpmsg.Request{
		Method:  "POST",
		Target:  httpmsg.RewriteTarget(req, trace.Nop{}),
		Proto:   "HTTP/1.1",
		Headers: sc.upHdrs[:0],
	}
	up.Headers = append(up.Headers,
		httpmsg.Header{Name: "Host", Value: route},
		httpmsg.Header{Name: "Content-Type", Value: contentTypeOf(req)},
		httpmsg.Header{Name: RouteHeader, Value: route},
		httpmsg.Header{Name: "X-AON-Outcome", Value: out.String()},
		httpmsg.Header{Name: "X-AON-Usecase", Value: uc.String()},
	)
	var fwdID dtrace.ID
	var tFwd time.Time
	if rec != nil {
		fwdID = dtrace.NewID()
		sc.trval = dtrace.AppendHeaderValue(sc.trval[:0], rec.TraceID(), fwdID)
		// The zc view over the worker's scratch is safe: the serializer
		// below copies header values into upHead before the scratch is
		// touched again.
		up.Headers = append(up.Headers,
			httpmsg.Header{Name: dtrace.Header, Value: zc.String(sc.trval)})
		tFwd = time.Now()
	}
	sc.upHead = httpmsg.AppendRequestHeader(sc.upHead[:0], up, len(req.Body))
	sc.upHdrs = up.Headers[:0]
	res, err := s.fwd.RoundTripBuffers(route, sc.upHead, req.Body)
	if rec != nil {
		rec.Child(fwdID, "forward", tFwd, time.Since(tFwd))
	}
	if err != nil {
		s.Metrics.UpstreamErrs.Add(1)
		resp.Status = upstream.StatusFor(err)
		resp.Headers = append(resp.Headers,
			httpmsg.Header{Name: "Content-Type", Value: "application/json"},
			httpmsg.Header{Name: RouteHeader, Value: route},
			httpmsg.Header{Name: "X-AON-Outcome", Value: out.String()},
		)
		sc.body = fmt.Appendf(sc.body[:0], `{"error":%q,"route":%q}`, err.Error(), route)
		return nil, sc.body
	}
	ct := res.ContentType
	if ct == "" {
		ct = "application/octet-stream"
	}
	resp.Status = res.Status
	resp.Headers = append(resp.Headers,
		httpmsg.Header{Name: "Content-Type", Value: ct},
		httpmsg.Header{Name: RouteHeader, Value: route},
		httpmsg.Header{Name: "X-AON-Outcome", Value: out.String()},
		httpmsg.Header{Name: "X-AON-Backend", Value: res.Addr},
	)
	return res.Body, nil
}

// contentTypeOf returns the request's Content-Type (default text/xml).
func contentTypeOf(req *httpmsg.Request) string {
	if v, ok := req.Get("Content-Type"); ok {
		return v
	}
	return "text/xml; charset=utf-8"
}

// handleGet serves the observability surface: GET /stats returns the
// metrics snapshot, GET /timeline?last=N the sampling session's ring;
// anything else is 404.
func (s *Server) handleGet(raw []byte) []byte {
	req, err := httpmsg.ParseRequest(raw)
	if err != nil {
		return formatError(400, err.Error(), false)
	}
	path, query, _ := strings.Cut(req.Target, "?")
	path = strings.TrimSuffix(path, "/")
	switch {
	case strings.HasSuffix(path, "stats"):
		return jsonResponse(s.Snapshot())
	case strings.HasSuffix(path, "timeline"):
		tr, err := s.timelineResponse(query)
		if err != nil {
			return formatError(404, err.Error(), false)
		}
		return jsonResponse(tr)
	case strings.HasSuffix(path, "traces"):
		tr, err := s.tracesResponse(query)
		if err != nil {
			return formatError(404, err.Error(), false)
		}
		return jsonResponse(tr)
	}
	return formatError(404, "not found", false)
}

// jsonResponse builds a 200 with the value marshaled as indented JSON.
func jsonResponse(v any) []byte {
	b, _ := json.MarshalIndent(v, "", "  ")
	return httpmsg.FormatResponse(&httpmsg.Response{
		Status:  200,
		Headers: []httpmsg.Header{{Name: "Content-Type", Value: "application/json"}},
		Body:    b,
	})
}

// formatError builds a small JSON error response.
func formatError(status int, msg string, connClose bool) []byte {
	hs := []httpmsg.Header{{Name: "Content-Type", Value: "application/json"}}
	if status == 503 {
		hs = append(hs, httpmsg.Header{Name: "Retry-After", Value: "1"})
	}
	if connClose {
		hs = append(hs, httpmsg.Header{Name: "Connection", Value: "close"})
	}
	return httpmsg.FormatResponse(&httpmsg.Response{
		Status:  status,
		Headers: hs,
		Body:    []byte(fmt.Sprintf(`{"error":%q}`, msg)),
	})
}

// Snapshot reads the full observability surface: the gateway counters
// plus, in forwarding mode, the per-backend upstream section, plus, with
// the measurement layer on, the hardware/runtime counters section (each
// call closes one /stats measurement window — the timeline samples
// through its own view, so the two never steal each other's deltas),
// plus the stage-trace and sampling-session sections when enabled.
func (s *Server) Snapshot() Snapshot {
	snap := s.Metrics.Snapshot()
	snap.Workers = s.Workers()
	if s.fwd != nil {
		snap.Upstream = s.fwd.Snapshot()
	}
	if s.statsView != nil {
		snap.Counters = s.statsView.snapshot()
	}
	if s.tracer != nil {
		snap.Stages = s.tracer.snapshot()
	}
	snap.Timeline = s.timelineInfo()
	snap.Traces = s.traceInfo()
	if s.capacity != nil {
		snap.Capacity = s.capacity.snapshot()
	}
	return snap
}

// Shutdown drains gracefully: stop accepting, let queued and in-flight
// messages finish (bounded by ctx), then close connections and stop the
// workers. Idempotent; later calls return the first call's result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutOnce.Do(func() { s.shutErr = s.shutdown(ctx) })
	return s.shutErr
}

func (s *Server) shutdown(ctx context.Context) error {
	s.stopping.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	s.acceptWG.Wait()

	// Drain: admission is closed (readers see stopping), so once the
	// queue is empty and nothing is between admission and response
	// write, every accepted message has been answered.
	drained := ctx.Err()
	for {
		if len(s.jobs) == 0 && s.inflight.Load() == 0 {
			break
		}
		select {
		case <-ctx.Done():
			drained = ctx.Err()
		case <-time.After(2 * time.Millisecond):
			continue
		}
		break
	}

	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	// Stop the control loop before closing the queue: it is the only
	// other pool resizer, and setPoolSize must never race close(s.jobs).
	if s.capacity != nil {
		s.capacity.stop()
	}
	// Stop the sampling session before the workers: its last sample then
	// still sees the full pool, and no sampler tick runs against a
	// half-torn-down measurement layer.
	s.closeTimeline()
	close(s.jobs)
	s.workerWG.Wait() // workers close their per-thread groups on exit
	if s.fwd != nil {
		s.fwd.Close()
	}
	s.counters.close()
	return drained
}

// frameError distinguishes malformed framing (answerable with a 400) from
// plain connection teardown.
type frameError struct{ msg string }

func (e *frameError) Error() string { return "gateway: " + e.msg }

var clenName = []byte("Content-Length")

// readRequest frames one HTTP/1.1 message off the wire: header block to
// the blank line, then exactly Content-Length body bytes — all appended
// into buf (the connection's pooled frame), whose possibly-grown slice
// is returned whether or not framing succeeded, so the caller keeps the
// capacity. Lines come via ReadSlice (no per-line allocation; the
// ErrBufferFull continuation keeps oversized lines working). io.EOF
// between messages is a clean close.
func readRequest(br *bufio.Reader, maxBody int, buf []byte) ([]byte, error) {
	buf = buf[:0]
	clen := 0
	for {
		lineStart := len(buf)
		var err error
		for {
			var chunk []byte
			chunk, err = br.ReadSlice('\n')
			buf = append(buf, chunk...)
			if err != bufio.ErrBufferFull {
				break
			}
		}
		if err != nil {
			if err == io.EOF && len(buf) == 0 {
				return buf, io.EOF
			}
			if err == io.EOF {
				return buf, &frameError{"truncated request"}
			}
			return buf, err
		}
		if len(buf) > 64<<10 {
			return buf, &frameError{"header block too large"}
		}
		trimmed := bytes.TrimRight(buf[lineStart:], "\r\n")
		if len(trimmed) == 0 {
			if lineStart == 0 {
				buf = buf[:0] // tolerate blank lines before the request line
				continue
			}
			break // blank line after the header block
		}
		if i := bytes.IndexByte(trimmed, ':'); i > 0 {
			if bytes.EqualFold(bytes.TrimSpace(trimmed[:i]), clenName) {
				n, ok := parseClen(trimmed[i+1:])
				if !ok {
					return buf, &frameError{"bad Content-Length"}
				}
				clen = n
			}
		}
	}
	if clen > maxBody {
		return buf, &frameError{"body exceeds limit"}
	}
	if clen > 0 {
		hlen := len(buf)
		buf = slices.Grow(buf, clen)[:hlen+clen]
		if _, err := io.ReadFull(br, buf[hlen:]); err != nil {
			buf = buf[:hlen]
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return buf, &frameError{"truncated body"}
			}
			return buf, err // e.g. a deadline expiry mid-body stays a net.Error
		}
	}
	return buf, nil
}

// parseClen is the allocation-free strconv.Atoi of a Content-Length
// value: optional sign, decimal digits; negatives and garbage are
// rejected like the Atoi path was.
func parseClen(b []byte) (int, bool) {
	b = bytes.TrimSpace(b)
	if len(b) == 0 {
		return 0, false
	}
	neg := b[0] == '-'
	if b[0] == '-' || b[0] == '+' {
		b = b[1:]
		if len(b) == 0 {
			return 0, false
		}
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
		if n > 1<<50 {
			return 0, false
		}
	}
	if neg {
		return 0, false
	}
	return n, true
}
