package dtrace

import (
	"sync"
	"time"
)

// maxSpans bounds the spans one node records for one request. The
// gateway's pipeline emits at most: root + read + queue + parse +
// process + forward + write = 7; slot 8 is headroom so an added stage
// doesn't silently drop spans.
const maxSpans = 8

// Recorder accumulates one request's spans on one node. Recorders are
// pooled (Get/Put) and hold a fixed-size span array, so tracing a
// request allocates nothing until the trace is *kept* — the tail ring
// copies the spans out on Offer, and only for keepers.
//
// Span 0 is the root (created by Begin); Add/Child attach stage spans
// under it. A Recorder is owned by one goroutine at a time; ownership
// transfers with the job (reader → worker → reader), never shared.
type Recorder struct {
	traceID ID
	rootID  ID
	node    string
	n       int
	spans   [maxSpans]Span
}

var recorderPool = sync.Pool{New: func() any { return new(Recorder) }}

// GetRecorder fetches a pooled recorder for one request on node.
func GetRecorder(node string) *Recorder {
	r := recorderPool.Get().(*Recorder)
	r.traceID = NewID()
	r.rootID = 0
	r.node = node
	r.n = 0
	return r
}

// PutRecorder recycles r. The caller must not touch r (or any Spans()
// view of it) afterwards.
func PutRecorder(r *Recorder) {
	if r != nil {
		recorderPool.Put(r)
	}
}

// TraceID returns the trace this recorder belongs to.
func (r *Recorder) TraceID() ID { return r.traceID }

// RootID returns the root span's ID (zero before Begin).
func (r *Recorder) RootID() ID { return r.rootID }

// Begin opens the root span at start. Stage spans added later nest
// under it; Finish closes it.
func (r *Recorder) Begin(name string, start time.Time) {
	r.rootID = NewID()
	r.n = 1
	r.spans[0] = Span{
		TraceID: r.traceID,
		SpanID:  r.rootID,
		Node:    r.node,
		Name:    name,
		StartUS: start.UnixMicro(),
	}
}

// Adopt joins an inbound trace context: the recorder's trace ID becomes
// traceID and the root span parents under parentID. Callable after
// Begin/Add — the gateway only parses headers in the worker, after the
// read span exists — so already-recorded spans are rewritten in place.
func (r *Recorder) Adopt(traceID, parentID ID) {
	if traceID.IsZero() {
		return
	}
	r.traceID = traceID
	for i := 0; i < r.n; i++ {
		r.spans[i].TraceID = traceID
	}
	if r.n > 0 {
		r.spans[0].ParentID = parentID
	}
}

// Add records a completed stage span under the root. Over-capacity adds
// are dropped (bounded by construction, not by the caller).
func (r *Recorder) Add(name string, start time.Time, d time.Duration) {
	r.Child(NewID(), name, start, d)
}

// Child records a completed span with a caller-chosen ID — the forward
// stage mints its span ID *before* the upstream call so the propagated
// header can name it as the backend span's parent.
func (r *Recorder) Child(id ID, name string, start time.Time, d time.Duration) {
	if r.n >= maxSpans {
		return
	}
	if d < 0 {
		d = 0
	}
	r.spans[r.n] = Span{
		TraceID:  r.traceID,
		SpanID:   id,
		ParentID: r.rootID,
		Node:     r.node,
		Name:     name,
		StartUS:  start.UnixMicro(),
		DurUS:    d.Microseconds(),
	}
	r.n++
}

// Annotate stamps the root span with the request's use case and
// disposition.
func (r *Recorder) Annotate(useCase, outcome string, status int) {
	if r.n == 0 {
		return
	}
	r.spans[0].UseCase = useCase
	r.spans[0].Outcome = outcome
	r.spans[0].Status = status
}

// Finish closes the root span at end.
func (r *Recorder) Finish(end time.Time) {
	if r.n == 0 {
		return
	}
	d := end.UnixMicro() - r.spans[0].StartUS
	if d < 0 {
		d = 0
	}
	r.spans[0].DurUS = d
}

// RootDur returns the closed root span's duration.
func (r *Recorder) RootDur() time.Duration {
	if r.n == 0 {
		return 0
	}
	return time.Duration(r.spans[0].DurUS) * time.Microsecond
}

// Spans views the recorded spans. The view aliases the recorder's
// array: invalid after PutRecorder.
func (r *Recorder) Spans() []Span { return r.spans[:r.n] }
