package dtrace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// AssembledTrace is one request's spans gathered from every node that
// saw it, with the parent/child tree resolved and per-span self-time
// computed (own duration minus the sum of direct children, clamped at
// zero — the overlap-free attribution a critical-path report needs).
type AssembledTrace struct {
	TraceID ID
	Spans   []Span
	// SelfUS[i] is Spans[i]'s self-time in microseconds.
	SelfUS []int64
	// Children[i] lists indexes of Spans[i]'s direct children.
	Children [][]int
	// Roots lists indexes of spans with no resolvable parent, in
	// recorded order (a client "request" span, or the gateway root when
	// the client didn't originate the trace).
	Roots []int
	// Nodes is the distinct set of recording nodes, sorted.
	Nodes []string
}

// RootDurUS returns the duration of the outermost span (the first
// root), the trace's end-to-end latency as its originator saw it.
func (t *AssembledTrace) RootDurUS() int64 {
	if len(t.Roots) == 0 {
		return 0
	}
	return t.Spans[t.Roots[0]].DurUS
}

// rootMeta finds the annotated span to describe the trace by: the
// first root carrying a use case or outcome, else the first root.
func (t *AssembledTrace) rootMeta() *Span {
	for _, i := range t.Roots {
		if t.Spans[i].UseCase != "" || t.Spans[i].Outcome != "" {
			return &t.Spans[i]
		}
	}
	for i := range t.Spans {
		if t.Spans[i].UseCase != "" || t.Spans[i].Outcome != "" {
			return &t.Spans[i]
		}
	}
	if len(t.Roots) > 0 {
		return &t.Spans[t.Roots[0]]
	}
	return &t.Spans[0]
}

// Assemble groups spans by trace ID, deduplicates by (trace, span) —
// the same span arrives via both /traces scrapes and JSONL artifacts —
// and resolves each trace's span tree. Traces come back ordered by
// first appearance in the input, so scrape order (roughly arrival
// order) is preserved.
func Assemble(spans []Span) []*AssembledTrace {
	type spanKey struct{ tr, sp ID }
	seen := make(map[spanKey]struct{}, len(spans))
	byTrace := make(map[ID]*AssembledTrace)
	var order []ID
	for _, sp := range spans {
		if sp.TraceID.IsZero() || sp.SpanID.IsZero() {
			continue
		}
		k := spanKey{sp.TraceID, sp.SpanID}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		at := byTrace[sp.TraceID]
		if at == nil {
			at = &AssembledTrace{TraceID: sp.TraceID}
			byTrace[sp.TraceID] = at
			order = append(order, sp.TraceID)
		}
		at.Spans = append(at.Spans, sp)
	}
	out := make([]*AssembledTrace, 0, len(order))
	for _, id := range order {
		at := byTrace[id]
		at.resolve()
		out = append(out, at)
	}
	return out
}

// resolve builds the tree, self-times, roots, and node set.
func (t *AssembledTrace) resolve() {
	idx := make(map[ID]int, len(t.Spans))
	for i := range t.Spans {
		idx[t.Spans[i].SpanID] = i
	}
	t.Children = make([][]int, len(t.Spans))
	t.SelfUS = make([]int64, len(t.Spans))
	nodes := make(map[string]struct{})
	for i := range t.Spans {
		nodes[t.Spans[i].Node] = struct{}{}
		p := t.Spans[i].ParentID
		if !p.IsZero() {
			if pi, ok := idx[p]; ok && pi != i {
				t.Children[pi] = append(t.Children[pi], i)
				continue
			}
		}
		t.Roots = append(t.Roots, i)
	}
	for i := range t.Spans {
		self := t.Spans[i].DurUS
		for _, c := range t.Children[i] {
			self -= t.Spans[c].DurUS
		}
		if self < 0 {
			self = 0
		}
		t.SelfUS[i] = self
	}
	t.Nodes = make([]string, 0, len(nodes))
	for n := range nodes {
		t.Nodes = append(t.Nodes, n)
	}
	sort.Strings(t.Nodes)
}

// quantile returns the q-quantile of sorted int64s (nearest-rank).
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// ReportOptions tunes FormatReport.
type ReportOptions struct {
	// TopTraces is how many slowest traces to render as trees (default 3).
	TopTraces int
	// RankSpans is how many slowest individual spans to list (default 10).
	RankSpans int
}

// FormatReport renders the critical-path report: per (node, span-name)
// self-time aggregates with p50/p99 and share of total self-time, a
// slowest-span ranking, and span trees for the slowest traces (the p99
// exemplars the whole tracing plane exists to surface).
func FormatReport(w io.Writer, traces []*AssembledTrace, opt ReportOptions) {
	if opt.TopTraces == 0 {
		opt.TopTraces = 3
	}
	if opt.RankSpans == 0 {
		opt.RankSpans = 10
	}
	fmt.Fprintf(w, "assembled traces: %d\n", len(traces))
	if len(traces) == 0 {
		return
	}

	// Fleet-wide latency distribution over root durations.
	rootDur := make([]int64, 0, len(traces))
	multi := 0
	for _, t := range traces {
		rootDur = append(rootDur, t.RootDurUS())
		if len(t.Nodes) > 1 {
			multi++
		}
	}
	sort.Slice(rootDur, func(i, j int) bool { return rootDur[i] < rootDur[j] })
	fmt.Fprintf(w, "cross-node traces: %d/%d   root latency p50=%s p99=%s max=%s\n\n",
		multi, len(traces), fmtUS(quantile(rootDur, 0.50)), fmtUS(quantile(rootDur, 0.99)), fmtUS(rootDur[len(rootDur)-1]))

	// Per (node, name) self-time aggregation — where the fleet's time
	// actually goes, overlap-free.
	type aggKey struct{ node, name string }
	type agg struct {
		key   aggKey
		n     int
		sumUS int64
		durs  []int64
	}
	aggs := make(map[aggKey]*agg)
	var totalSelf int64
	for _, t := range traces {
		for i := range t.Spans {
			k := aggKey{t.Spans[i].Node, t.Spans[i].Name}
			a := aggs[k]
			if a == nil {
				a = &agg{key: k}
				aggs[k] = a
			}
			a.n++
			a.sumUS += t.SelfUS[i]
			a.durs = append(a.durs, t.SelfUS[i])
			totalSelf += t.SelfUS[i]
		}
	}
	rows := make([]*agg, 0, len(aggs))
	for _, a := range aggs {
		rows = append(rows, a)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].sumUS > rows[j].sumUS })
	fmt.Fprintf(w, "critical path — self-time by node/stage (share of %s total):\n", fmtUS(totalSelf))
	fmt.Fprintf(w, "  %-24s %-10s %8s %8s %10s %10s %7s\n", "node", "span", "count", "share", "self p50", "self p99", "")
	for _, a := range rows {
		sort.Slice(a.durs, func(i, j int) bool { return a.durs[i] < a.durs[j] })
		share := 0.0
		if totalSelf > 0 {
			share = 100 * float64(a.sumUS) / float64(totalSelf)
		}
		fmt.Fprintf(w, "  %-24s %-10s %8d %7.1f%% %10s %10s %s\n",
			a.key.node, a.key.name, a.n, share,
			fmtUS(quantile(a.durs, 0.50)), fmtUS(quantile(a.durs, 0.99)), bar(share))
	}
	fmt.Fprintln(w)

	// Slowest individual spans — the single worst segments fleet-wide.
	type ranked struct {
		t *AssembledTrace
		i int
	}
	var all []ranked
	for _, t := range traces {
		for i := range t.Spans {
			all = append(all, ranked{t, i})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		return all[i].t.SelfUS[all[i].i] > all[j].t.SelfUS[all[j].i]
	})
	n := opt.RankSpans
	if n > len(all) {
		n = len(all)
	}
	fmt.Fprintf(w, "slowest spans (by self-time):\n")
	for _, r := range all[:n] {
		sp := &r.t.Spans[r.i]
		fmt.Fprintf(w, "  %10s  %-24s %-10s trace=%s\n",
			fmtUS(r.t.SelfUS[r.i]), sp.Node, sp.Name, sp.TraceID)
	}
	fmt.Fprintln(w)

	// Slowest-trace exemplar trees.
	byDur := make([]*AssembledTrace, len(traces))
	copy(byDur, traces)
	sort.Slice(byDur, func(i, j int) bool { return byDur[i].RootDurUS() > byDur[j].RootDurUS() })
	n = opt.TopTraces
	if n > len(byDur) {
		n = len(byDur)
	}
	fmt.Fprintf(w, "slowest traces:\n")
	for _, t := range byDur[:n] {
		m := t.rootMeta()
		fmt.Fprintf(w, "trace %s  %s  uc=%s outcome=%s status=%d  nodes=%s\n",
			t.TraceID, fmtUS(t.RootDurUS()), orDash(m.UseCase), orDash(m.Outcome), m.Status,
			strings.Join(t.Nodes, ","))
		for _, r := range t.Roots {
			t.writeTree(w, r, 1)
		}
	}
}

func (t *AssembledTrace) writeTree(w io.Writer, i, depth int) {
	sp := &t.Spans[i]
	fmt.Fprintf(w, "%s%-*s %10s  (self %s)  [%s]\n",
		strings.Repeat("  ", depth), 24-2*depth, sp.Name, fmtUS(sp.DurUS), fmtUS(t.SelfUS[i]), sp.Node)
	kids := append([]int(nil), t.Children[i]...)
	// Children in start order within one node; cross-node children keep
	// recorded order (clocks are not comparable).
	sort.SliceStable(kids, func(a, b int) bool {
		sa, sb := &t.Spans[kids[a]], &t.Spans[kids[b]]
		return sa.Node == sb.Node && sa.StartUS < sb.StartUS
	})
	for _, c := range kids {
		t.writeTree(w, c, depth+1)
	}
}

func fmtUS(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%.2fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func bar(pct float64) string {
	n := int(pct / 4)
	if n > 25 {
		n = 25
	}
	return strings.Repeat("#", n)
}
