// Package dtrace is the gateway's distributed per-request tracing plane:
// where the stage tracer (internal/gateway) aggregates sampled stamps
// into histograms, dtrace keeps the *individual* request — a trace ID
// minted at admission (or adopted from the client's X-AON-Trace header),
// one span per pipeline stage, context propagated on upstream forwards,
// and a server-side span recorded in the backend — so a p99 exemplar can
// be followed across process boundaries and attributed to parse, queue,
// or backend time. Completed traces land in a bounded ring behind
// tail-based sampling: slow, shed, errored, and idle-reaped requests are
// always kept, the ordinary fast majority probabilistically, so the ring
// holds exactly the requests worth drilling into.
//
// The paper's multi-level methodology stops at aggregate CPI and
// cache-miss attribution; RZBENCH-style evaluation (PAPERS.md) needs the
// per-request view once the topology spans machines — shared-resource
// coupling shows up in tail exemplars, never in means.
package dtrace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"time"
)

// Header is the context-propagation header: "X-AON-Trace:
// <traceID>-<parentSpanID>", both 16 lowercase hex digits. aonload and
// aoncamp inject it to originate traces at the client; the gateway adopts
// an inbound ID (or mints one) and re-injects it on upstream forwards so
// aonback's server span joins the same trace.
const Header = "X-AON-Trace"

// ID is a 64-bit trace or span identifier, rendered as 16 hex digits.
// The zero ID means "absent" (no parent, not traced).
type ID uint64

// NewID mints a non-zero random ID. math/rand/v2's global generator is
// allocation-free and lock-free, so minting stays off the hot path's
// allocation budget.
func NewID() ID {
	for {
		if id := ID(rand.Uint64()); id != 0 {
			return id
		}
	}
}

// IsZero reports whether the ID is absent.
func (id ID) IsZero() bool { return id == 0 }

const hexDigits = "0123456789abcdef"

// AppendHex appends the 16-digit lowercase hex form to dst.
func (id ID) AppendHex(dst []byte) []byte {
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, hexDigits[(uint64(id)>>shift)&0xf])
	}
	return dst
}

// String renders the 16-digit hex form.
func (id ID) String() string {
	return string(id.AppendHex(make([]byte, 0, 16)))
}

// MarshalJSON renders the ID as a quoted 16-digit hex string — stable
// across languages and grep-friendly in JSONL artifacts.
func (id ID) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 18)
	b = append(b, '"')
	b = id.AppendHex(b)
	return append(b, '"'), nil
}

// UnmarshalJSON accepts the quoted hex form (and bare integers, for
// hand-written fixtures).
func (id *ID) UnmarshalJSON(b []byte) error {
	if len(b) >= 2 && b[0] == '"' {
		v, ok := parseHex(b[1 : len(b)-1])
		if !ok {
			return fmt.Errorf("dtrace: bad id %s", b)
		}
		*id = v
		return nil
	}
	var n uint64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("dtrace: bad id %s", b)
	}
	*id = ID(n)
	return nil
}

// parseHex parses 1..16 hex digits.
func parseHex(b []byte) (ID, bool) {
	if len(b) == 0 || len(b) > 16 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return ID(v), true
}

// AppendHeaderValue appends the X-AON-Trace value
// "<traceID>-<parentSpanID>" to dst — the append-to-dst twin of
// fmt.Sprintf("%016x-%016x", ...), so header injection costs no
// allocation on the forward path.
func AppendHeaderValue(dst []byte, traceID, spanID ID) []byte {
	dst = traceID.AppendHex(dst)
	dst = append(dst, '-')
	return spanID.AppendHex(dst)
}

// ParseHeaderValue parses "<traceID>-<parentSpanID>". A missing or
// malformed value returns ok=false; a trace ID of zero is rejected (it
// would collide every orphan span into one trace).
func ParseHeaderValue(b []byte) (traceID, parentID ID, ok bool) {
	if len(b) != 33 || b[16] != '-' {
		return 0, 0, false
	}
	traceID, ok = parseHex(b[:16])
	if !ok || traceID.IsZero() {
		return 0, 0, false
	}
	parentID, ok = parseHex(b[17:])
	if !ok {
		return 0, 0, false
	}
	return traceID, parentID, true
}

// ParseHeaderValueString is ParseHeaderValue over a string view — the
// zero-copy parse hands header values out as strings aliasing the frame.
func ParseHeaderValueString(s string) (traceID, parentID ID, ok bool) {
	if len(s) != 33 || s[16] != '-' {
		return 0, 0, false
	}
	traceID, ok = parseHex([]byte(s[:16])) // 16-byte conversion: stack-allocated
	if !ok || traceID.IsZero() {
		return 0, 0, false
	}
	parentID, ok = parseHex([]byte(s[17:]))
	if !ok {
		return 0, 0, false
	}
	return traceID, parentID, true
}

// Span is one timed segment of a request on one node. StartUS is the
// recording node's own wall clock in microseconds: spans are joined
// across nodes by trace ID only — never by comparing start times across
// machines (the same no-cross-clock rule the fleet merger applies to
// samples).
type Span struct {
	TraceID  ID `json:"trace_id"`
	SpanID   ID `json:"span_id"`
	ParentID ID `json:"parent_id,omitempty"`
	// Node names the recording process ("client", "gateway",
	// "backend/order", or the fleet node key).
	Node string `json:"node"`
	// Name is the span's role: "request" (client), "gateway" (root),
	// "read"/"queue"/"parse"/"process"/"forward"/"write" (stages),
	// "serve" (backend).
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	// UseCase/Outcome/Status annotate root and serve spans: the pipeline
	// that handled the request and how it ended.
	UseCase string `json:"usecase,omitempty"`
	Outcome string `json:"outcome,omitempty"`
	Status  int    `json:"status,omitempty"`
}

// Dur returns the span's duration.
func (s *Span) Dur() time.Duration { return time.Duration(s.DurUS) * time.Microsecond }

// Trace is one request's recorded spans from one node — the unit the
// tail ring stores and GET /traces serves. Fleet assembly merges the
// per-node traces that share a TraceID.
type Trace struct {
	TraceID ID     `json:"trace_id"`
	Spans   []Span `json:"spans"`
}

// ReadSpansJSONL reads spans from a JSONL stream holding either bare
// Span lines or Trace lines (both appear in fleet artifacts), skipping
// blank lines.
// InjectHeader copies the raw HTTP request into dst with an X-AON-Trace
// header spliced in before the header block's terminating blank line —
// how aonload and aoncamp originate traces at the client without
// re-rendering the pooled request bytes. A frame without CRLFCRLF comes
// back unmodified (copied).
func InjectHeader(dst, raw []byte, traceID, spanID ID) []byte {
	i := bytes.Index(raw, []byte("\r\n\r\n"))
	if i < 0 {
		return append(dst, raw...)
	}
	dst = append(dst, raw[:i+2]...)
	dst = append(dst, Header...)
	dst = append(dst, ": "...)
	dst = AppendHeaderValue(dst, traceID, spanID)
	dst = append(dst, '\r', '\n')
	return append(dst, raw[i+2:]...)
}

func ReadSpansJSONL(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	var out []Span
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		// A Trace line has a "spans" array; a Span line doesn't. Probe
		// with the richer shape first.
		var tr Trace
		if err := json.Unmarshal(b, &tr); err == nil && len(tr.Spans) > 0 {
			out = append(out, tr.Spans...)
			continue
		}
		var sp Span
		if err := json.Unmarshal(b, &sp); err != nil {
			return nil, fmt.Errorf("dtrace: jsonl line %d: %w", line, err)
		}
		if sp.TraceID.IsZero() {
			return nil, fmt.Errorf("dtrace: jsonl line %d: span without trace_id", line)
		}
		out = append(out, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dtrace: jsonl: %w", err)
	}
	return out, nil
}
