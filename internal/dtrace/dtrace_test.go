package dtrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHeaderValueRoundTrip(t *testing.T) {
	tr, sp := NewID(), NewID()
	v := AppendHeaderValue(nil, tr, sp)
	if len(v) != 33 {
		t.Fatalf("header value %q: want 33 bytes", v)
	}
	gtr, gsp, ok := ParseHeaderValue(v)
	if !ok || gtr != tr || gsp != sp {
		t.Fatalf("ParseHeaderValue(%q) = %v %v %v; want %v %v true", v, gtr, gsp, ok, tr, sp)
	}
	gtr, gsp, ok = ParseHeaderValueString(string(v))
	if !ok || gtr != tr || gsp != sp {
		t.Fatalf("ParseHeaderValueString(%q) = %v %v %v", v, gtr, gsp, ok)
	}
}

func TestParseHeaderValueRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"",
		"deadbeef",
		"0000000000000000-1111111111111111", // zero trace ID
		"111111111111111g-2222222222222222", // bad hex
		"11111111111111112222222222222222",  // missing dash
		"1111111111111111-22222222222222221",
	} {
		if _, _, ok := ParseHeaderValueString(in); ok {
			t.Errorf("ParseHeaderValueString(%q) accepted", in)
		}
	}
}

func TestIDJSONRoundTrip(t *testing.T) {
	id := ID(0xdeadbeef01020304)
	b, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"deadbeef01020304"` {
		t.Fatalf("marshal = %s", b)
	}
	var got ID
	if err := json.Unmarshal(b, &got); err != nil || got != id {
		t.Fatalf("unmarshal = %v, %v", got, err)
	}
}

func TestRecorderLifecycle(t *testing.T) {
	r := GetRecorder("gw")
	defer PutRecorder(r)
	t0 := time.Now()
	r.Begin("gateway", t0)
	r.Add("read", t0, 5*time.Microsecond)
	fid := NewID()
	r.Child(fid, "forward", t0.Add(10*time.Microsecond), 100*time.Microsecond)
	r.Annotate("FR", "forwarded", 200)
	r.Finish(t0.Add(150 * time.Microsecond))
	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans", len(spans))
	}
	root := spans[0]
	if root.Name != "gateway" || root.UseCase != "FR" || root.Status != 200 || root.DurUS < 100 {
		t.Fatalf("root = %+v", root)
	}
	for _, sp := range spans[1:] {
		if sp.ParentID != root.SpanID || sp.TraceID != root.TraceID {
			t.Fatalf("child not parented to root: %+v", sp)
		}
	}
	if spans[2].SpanID != fid {
		t.Fatalf("forward span ID not caller-chosen: %v != %v", spans[2].SpanID, fid)
	}
}

func TestRecorderAdoptRewritesRecordedSpans(t *testing.T) {
	r := GetRecorder("gw")
	defer PutRecorder(r)
	t0 := time.Now()
	r.Begin("gateway", t0)
	r.Add("read", t0, time.Microsecond)
	clientTrace, clientSpan := NewID(), NewID()
	r.Adopt(clientTrace, clientSpan)
	for _, sp := range r.Spans() {
		if sp.TraceID != clientTrace {
			t.Fatalf("span kept old trace ID: %+v", sp)
		}
	}
	if r.Spans()[0].ParentID != clientSpan {
		t.Fatalf("root not parented under client span: %+v", r.Spans()[0])
	}
	if r.TraceID() != clientTrace {
		t.Fatalf("TraceID() = %v", r.TraceID())
	}
}

func TestRecorderBounded(t *testing.T) {
	r := GetRecorder("gw")
	defer PutRecorder(r)
	r.Begin("root", time.Now())
	for i := 0; i < 2*maxSpans; i++ {
		r.Add("stage", time.Now(), time.Microsecond)
	}
	if len(r.Spans()) != maxSpans {
		t.Fatalf("recorder not bounded: %d spans", len(r.Spans()))
	}
}

func TestTailKeepRules(t *testing.T) {
	tail := NewTail(TailConfig{Capacity: 16, SlowOverUS: 1000, KeepEvery: 4})
	offer := func(durUS int64, isErr bool) bool {
		r := GetRecorder("gw")
		defer PutRecorder(r)
		r.Begin("gateway", time.Now())
		r.spans[0].DurUS = durUS
		return tail.Offer(r, isErr)
	}
	if !offer(10, true) {
		t.Fatal("errored trace dropped")
	}
	if !offer(5000, false) {
		t.Fatal("slow trace dropped")
	}
	kept := 0
	for i := 0; i < 40; i++ {
		if offer(10, false) {
			kept++
		}
	}
	if kept != 10 {
		t.Fatalf("probabilistic keep = %d/40, want 10 (1-in-4)", kept)
	}
	st := tail.Stats()
	if st.KeptErr != 1 || st.KeptSlow != 1 || st.KeptProb != 10 || st.Seen != 42 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRingEvictionAndOrder(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Add(Trace{TraceID: ID(i)})
	}
	got := r.Last(0)
	if len(got) != 3 || got[0].TraceID != 3 || got[2].TraceID != 5 {
		t.Fatalf("Last(0) = %+v", got)
	}
	got = r.Last(2)
	if len(got) != 2 || got[0].TraceID != 4 {
		t.Fatalf("Last(2) = %+v", got)
	}
	if r.Kept() != 5 {
		t.Fatalf("Kept = %d", r.Kept())
	}
}

func TestTailConcurrent(t *testing.T) {
	tail := NewTail(TailConfig{Capacity: 64, SlowOverUS: -1, KeepEvery: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r := GetRecorder("gw")
				r.Begin("gateway", time.Now())
				tail.Offer(r, i%7 == 0)
				PutRecorder(r)
			}
		}()
	}
	wg.Wait()
	st := tail.Stats()
	if st.Seen != 1600 || st.Kept != st.KeptErr+st.KeptSlow+st.KeptProb {
		t.Fatalf("stats = %+v", st)
	}
}

// buildFleetSpans fabricates a forwarded request seen by client,
// gateway, and backend, all joined by one trace ID.
func buildFleetSpans(trace ID) []Span {
	cli, gw, fwd, be := NewID(), NewID(), NewID(), NewID()
	return []Span{
		{TraceID: trace, SpanID: cli, Node: "client", Name: "request", StartUS: 1000, DurUS: 900},
		{TraceID: trace, SpanID: gw, ParentID: cli, Node: "gateway", Name: "gateway", StartUS: 1010, DurUS: 800, UseCase: "FR", Outcome: "forwarded", Status: 200},
		{TraceID: trace, SpanID: NewID(), ParentID: gw, Node: "gateway", Name: "parse", StartUS: 1020, DurUS: 100},
		{TraceID: trace, SpanID: fwd, ParentID: gw, Node: "gateway", Name: "forward", StartUS: 1200, DurUS: 500},
		{TraceID: trace, SpanID: be, ParentID: fwd, Node: "backend0", Name: "serve", StartUS: 50, DurUS: 300, Status: 200},
	}
}

func TestAssembleJoinsAcrossNodesAndDedups(t *testing.T) {
	trace := NewID()
	spans := buildFleetSpans(trace)
	// Duplicate arrivals (scrape + artifact) must collapse.
	spans = append(spans, spans...)
	// A second, single-node trace.
	other := NewID()
	spans = append(spans, Span{TraceID: other, SpanID: NewID(), Node: "gateway", Name: "gateway", DurUS: 50})

	traces := Assemble(spans)
	if len(traces) != 2 {
		t.Fatalf("assembled %d traces", len(traces))
	}
	at := traces[0]
	if at.TraceID != trace || len(at.Spans) != 5 {
		t.Fatalf("trace 0: id=%v spans=%d", at.TraceID, len(at.Spans))
	}
	if len(at.Nodes) != 3 || at.Nodes[0] != "backend0" || at.Nodes[1] != "client" || at.Nodes[2] != "gateway" {
		t.Fatalf("nodes = %v", at.Nodes)
	}
	if len(at.Roots) != 1 || at.Spans[at.Roots[0]].Name != "request" {
		t.Fatalf("roots = %v", at.Roots)
	}
	// forward's self-time excludes the backend serve span it parents.
	for i := range at.Spans {
		switch at.Spans[i].Name {
		case "forward":
			if at.SelfUS[i] != 200 { // 500 - 300
				t.Fatalf("forward self = %d", at.SelfUS[i])
			}
		case "gateway":
			if at.SelfUS[i] != 200 { // 800 - 100 - 500
				t.Fatalf("gateway self = %d", at.SelfUS[i])
			}
		}
	}
	if at.RootDurUS() != 900 {
		t.Fatalf("root dur = %d", at.RootDurUS())
	}
}

func TestFormatReport(t *testing.T) {
	var spans []Span
	for i := 0; i < 5; i++ {
		spans = append(spans, buildFleetSpans(NewID())...)
	}
	traces := Assemble(spans)
	var buf bytes.Buffer
	FormatReport(&buf, traces, ReportOptions{TopTraces: 2, RankSpans: 5})
	out := buf.String()
	for _, want := range []string{
		"assembled traces: 5",
		"cross-node traces: 5/5",
		"critical path",
		"serve",
		"slowest spans",
		"slowest traces",
		"nodes=backend0,client,gateway",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReadSpansJSONLBothShapes(t *testing.T) {
	trace := NewID()
	spans := buildFleetSpans(trace)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	// Two bare spans, then a Trace line with the rest.
	for _, sp := range spans[:2] {
		if err := enc.Encode(sp); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Encode(Trace{TraceID: trace, Spans: spans[2:]}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpansJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(spans) {
		t.Fatalf("read %d spans, want %d", len(got), len(spans))
	}
	if len(Assemble(got)) != 1 {
		t.Fatal("round-tripped spans did not assemble into one trace")
	}
}
