package dtrace

import (
	"slices"
	"sync"
	"sync/atomic"
)

// Ring is a bounded, mutex-guarded store of kept traces. The mutex is
// held only to copy a pre-built Trace in or slice the window out —
// no allocation, parsing, or I/O under the lock — so contention stays
// negligible next to the request work that produced the trace.
type Ring struct {
	mu    sync.Mutex
	buf   []Trace
	next  int
	total uint64
}

// NewRing makes a ring keeping the last capacity traces (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Trace, 0, capacity)}
}

// Add keeps tr, evicting the oldest once full.
func (r *Ring) Add(tr Trace) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, tr)
	} else {
		r.buf[r.next] = tr
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Last returns up to n kept traces, oldest first (n<=0 means all).
// The returned slice is fresh; the Trace span slices are shared with
// the ring but never mutated after Add.
func (r *Ring) Last(n int) []Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Trace, 0, len(r.buf))
	// Chronological order: next..end wrapped before start..next.
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Kept returns how many traces were ever added (including evicted).
func (r *Ring) Kept() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// TailConfig tunes tail-based sampling.
type TailConfig struct {
	// Capacity bounds the kept-trace ring (default 256).
	Capacity int
	// SlowOverUS always keeps traces whose root duration is at least
	// this many microseconds (default 50ms). 0 uses the default; a
	// negative value disables the slow rule.
	SlowOverUS int64
	// KeepEvery probabilistically keeps 1-in-N ordinary traces
	// (default 64). 0 uses the default; negative keeps none.
	KeepEvery int
}

func (c TailConfig) withDefaults() TailConfig {
	if c.Capacity == 0 {
		c.Capacity = 256
	}
	if c.SlowOverUS == 0 {
		c.SlowOverUS = 50_000
	}
	if c.KeepEvery == 0 {
		c.KeepEvery = 64
	}
	return c
}

// TailStats summarizes the tail sampler's keep decisions.
type TailStats struct {
	Seen     uint64 `json:"seen"`
	Kept     uint64 `json:"kept"`
	KeptErr  uint64 `json:"kept_err"`
	KeptSlow uint64 `json:"kept_slow"`
	KeptProb uint64 `json:"kept_prob"`
}

// Tail decides, once a request has *finished*, whether its trace is
// worth keeping — the defining property of tail-based sampling: the
// decision sees the outcome, so every shed/errored/idle-reaped/slow
// request survives while the boring fast majority is thinned to a
// 1-in-N trickle.
type Tail struct {
	cfg      TailConfig
	seq      atomic.Uint64
	seen     atomic.Uint64
	keptErr  atomic.Uint64
	keptSlow atomic.Uint64
	keptProb atomic.Uint64
	ring     *Ring
}

// NewTail builds a tail sampler (zero-value cfg fields take defaults).
func NewTail(cfg TailConfig) *Tail {
	cfg = cfg.withDefaults()
	return &Tail{cfg: cfg, ring: NewRing(cfg.Capacity)}
}

// Offer decides r's fate. isErr marks shed/errored/idle-reaped
// requests (always kept); rootDurUS is the root span duration for the
// slow rule. Keeping copies the spans out of the pooled recorder — the
// only per-trace allocation, and only for keepers — so the caller may
// PutRecorder immediately after. Returns whether the trace was kept.
func (t *Tail) Offer(r *Recorder, isErr bool) bool {
	t.seen.Add(1)
	keep := false
	switch {
	case isErr:
		t.keptErr.Add(1)
		keep = true
	case t.cfg.SlowOverUS >= 0 && r.n > 0 && r.spans[0].DurUS >= t.cfg.SlowOverUS:
		t.keptSlow.Add(1)
		keep = true
	case t.cfg.KeepEvery > 0 && t.seq.Add(1)%uint64(t.cfg.KeepEvery) == 0:
		t.keptProb.Add(1)
		keep = true
	}
	if !keep {
		return false
	}
	t.ring.Add(Trace{TraceID: r.traceID, Spans: slices.Clone(r.Spans())})
	return true
}

// Keep stores pre-built spans unconditionally (backend serve spans:
// losing one would break cross-node assembly of a gateway-kept trace,
// so the backend keeps everything and lets ring eviction bound memory).
func (t *Tail) Keep(traceID ID, spans []Span) {
	t.seen.Add(1)
	t.ring.Add(Trace{TraceID: traceID, Spans: slices.Clone(spans)})
}

// Last returns up to n kept traces, oldest first.
func (t *Tail) Last(n int) []Trace { return t.ring.Last(n) }

// Stats snapshots the keep counters.
func (t *Tail) Stats() TailStats {
	return TailStats{
		Seen:     t.seen.Load(),
		Kept:     t.ring.Kept(),
		KeptErr:  t.keptErr.Load(),
		KeptSlow: t.keptSlow.Load(),
		KeptProb: t.keptProb.Load(),
	}
}
