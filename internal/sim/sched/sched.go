// Package sched is the operating-system layer of the simulation: it maps
// software threads onto the logical CPUs of a simulated machine, runs them
// cooperatively, charges context switches (with TLB flushes on address-
// space changes), accounts idle time, and provides the timed-event and
// wait-queue primitives the network substrate and workloads build on.
//
// The paper's server application "uses POSIX threads to utilize multiple
// CPUs or cores ... kept equal to the number of (logical) CPUs" (Section
// 3.2.1); this package is the equivalent of that pthread/SMP-kernel layer
// for the simulated machine.
package sched

import (
	"container/heap"
	"fmt"

	"repro/internal/perf/cpu"
	"repro/internal/perf/machine"
	"repro/internal/perf/trace"
)

// Proc is the behavior of a software thread. Step is invoked every time
// the thread is scheduled; it performs a bounded amount of work through
// the Ctx and returns what the thread wants to do next. Procs must
// tolerate spurious wakeups: a Step after a Wait must re-check its
// condition and Wait again if it no longer holds.
type Proc interface {
	Step(ctx *Ctx) Status
}

// ProcFunc adapts a function to the Proc interface.
type ProcFunc func(ctx *Ctx) Status

// Step implements Proc.
func (f ProcFunc) Step(ctx *Ctx) Status { return f(ctx) }

// StatusKind says what a thread does after a Step.
type StatusKind int

const (
	// Yield keeps the thread runnable; the scheduler may run a sibling
	// thread on the same CPU first (round-robin).
	Yield StatusKind = iota
	// Sleep blocks the thread until an absolute cycle time.
	Sleep
	// Wait blocks the thread until a Waiter is signaled.
	Wait
	// Done terminates the thread.
	Done
)

// Status is a Step's verdict.
type Status struct {
	Kind  StatusKind
	Until float64 // Sleep: absolute wake time in cycles
	On    *Waiter // Wait: condition to block on
}

// StatusYield returns a Yield status.
func StatusYield() Status { return Status{Kind: Yield} }

// StatusSleep returns a Sleep-until status.
func StatusSleep(until float64) Status { return Status{Kind: Sleep, Until: until} }

// StatusWait returns a Wait-on status.
func StatusWait(w *Waiter) Status { return Status{Kind: Wait, On: w} }

// StatusDone returns a Done status.
func StatusDone() Status { return Status{Kind: Done} }

type threadState int

const (
	stateReady threadState = iota
	stateBlocked
	stateDone
)

// KernelProcessID marks kernel-context threads (softirq): they run in
// whatever address space is current, so switching to or from them never
// flushes the TLB.
const KernelProcessID = 0

// Thread is one software thread bound to a logical CPU.
type Thread struct {
	Name      string
	ProcessID int // address-space identity; switches between different IDs flush the TLB
	CPU       int // logical CPU binding
	// Priority orders threads that become runnable at the same instant:
	// higher runs first. Softirq threads outrank user threads, matching
	// kernel preemption semantics at the step granularity the engine
	// can express.
	Priority int

	proc    Proc
	state   threadState
	readyAt float64 // earliest cycle the thread may run
}

// Ready reports whether the thread is runnable (possibly in the future).
func (t *Thread) Ready() bool { return t.state == stateReady }

// Finished reports whether the thread has completed.
func (t *Thread) Finished() bool { return t.state == stateDone }

// Waiter is a wait queue (condition-variable analogue). Signal wakes all
// waiting threads and fires all registered one-shot callbacks; each waker
// re-checks its condition (spurious wakeups are part of the contract).
type Waiter struct {
	waiting []*Thread
	fns     []func(now float64)
}

// OnSignal registers a one-shot callback fired at the next Signal. It is
// how event-driven actors (traffic sources, NICs) block on backpressure
// without occupying a simulated CPU.
func (w *Waiter) OnSignal(fn func(now float64)) {
	w.fns = append(w.fns, fn)
}

// Signal wakes every waiting thread at cycle now and fires callbacks.
func (w *Waiter) Signal(now float64) {
	for _, t := range w.waiting {
		if t.state == stateBlocked {
			t.state = stateReady
			if now > t.readyAt {
				t.readyAt = now
			}
		}
	}
	w.waiting = w.waiting[:0]
	if len(w.fns) > 0 {
		fns := w.fns
		w.fns = nil
		for _, fn := range fns {
			fn(now)
		}
	}
}

// Ctx is what a Proc sees while running.
type Ctx struct {
	E      *Engine
	Thread *Thread
	LC     *cpu.LCPU
}

// Now returns the running thread's current cycle time.
func (c *Ctx) Now() float64 { return c.LC.NowF() }

// Exec runs a micro-op stream on the thread's logical CPU, advancing time.
func (c *Ctx) Exec(ops []trace.Op) { c.LC.Execute(ops) }

// ExecBuffer runs a trace buffer on the thread's logical CPU.
func (c *Ctx) ExecBuffer(b *trace.Buffer) { c.LC.Execute(b.Ops) }

// event is a timed callback (packet delivery, timer).
type event struct {
	at  float64
	seq uint64 // FIFO tiebreak for equal times
	fn  func(now float64)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// cpuSlot is the per-logical-CPU run queue.
type cpuSlot struct {
	lc           *cpu.LCPU
	threads      []*Thread
	lastThread   *Thread
	rr           int
	lastDispatch uint64 // engine step at which this slot last ran
}

// Engine drives the whole simulation: one machine, its threads, and the
// timed-event queue. It is strictly single-goroutine.
type Engine struct {
	M     *machine.Machine
	Space *trace.AddressSpace

	slots    []*cpuSlot
	threads  []*Thread
	events   eventHeap
	eventSeq uint64

	// Steps counts Proc invocations, a progress measure for watchdogs.
	Steps uint64
}

// NewEngine wraps a machine in a scheduler.
func NewEngine(m *machine.Machine) *Engine {
	e := &Engine{M: m, Space: trace.NewAddressSpace()}
	for _, lc := range m.LCPUs {
		e.slots = append(e.slots, &cpuSlot{lc: lc})
	}
	return e
}

// CPUs returns the number of logical CPUs available for binding.
func (e *Engine) CPUs() int { return len(e.slots) }

// Spawn creates a thread bound to logical CPU cpuIdx, belonging to the
// given address space, and makes it runnable at time startAt.
func (e *Engine) Spawn(name string, cpuIdx, processID int, startAt float64, p Proc) *Thread {
	if cpuIdx < 0 || cpuIdx >= len(e.slots) {
		panic(fmt.Sprintf("sched: spawn %q on CPU %d of %d", name, cpuIdx, len(e.slots)))
	}
	t := &Thread{Name: name, ProcessID: processID, CPU: cpuIdx, proc: p, state: stateReady, readyAt: startAt}
	e.threads = append(e.threads, t)
	e.slots[cpuIdx].threads = append(e.slots[cpuIdx].threads, t)
	return t
}

// At schedules fn to run at cycle t (clamped to be non-negative).
func (e *Engine) At(t float64, fn func(now float64)) {
	if t < 0 {
		t = 0
	}
	e.eventSeq++
	heap.Push(&e.events, event{at: t, seq: e.eventSeq, fn: fn})
}

// nextThread picks, for one slot, the runnable thread with the earliest
// effective start, preferring round-robin fairness among simultaneously
// ready threads.
func (s *cpuSlot) nextThread() (*Thread, float64) {
	var best *Thread
	var bestStart float64
	n := len(s.threads)
	for i := 0; i < n; i++ {
		t := s.threads[(s.rr+i)%n]
		if t.state != stateReady {
			continue
		}
		start := t.readyAt
		if now := s.lc.NowF(); now > start {
			start = now
		}
		if best == nil || start < bestStart ||
			(start == bestStart && t.Priority > best.Priority) {
			best, bestStart = t, start
		}
	}
	return best, bestStart
}

// Run executes the simulation until stop returns true, or until no thread
// is runnable and no event is pending (quiescence). It returns the final
// machine time in cycles.
func (e *Engine) Run(stop func(e *Engine) bool) float64 {
	for {
		if stop != nil && stop(e) {
			break
		}

		// Earliest runnable thread across all CPUs. Ties on start time
		// go to the least-recently-dispatched CPU so equal-time wakeups
		// (both workers woken by the same queue push) share the work —
		// without this, a worker bound to CPU1 starves behind CPU0's.
		var slot *cpuSlot
		var thread *Thread
		var start float64
		for _, s := range e.slots {
			t, st := s.nextThread()
			if t == nil {
				continue
			}
			better := thread == nil || st < start ||
				(st == start && s.lastDispatch < slot.lastDispatch)
			if better {
				slot, thread, start = s, t, st
			}
		}

		// Earliest event.
		haveEvent := len(e.events) > 0
		if thread == nil && !haveEvent {
			break // quiescent
		}
		if haveEvent && (thread == nil || e.events[0].at <= start) {
			ev := heap.Pop(&e.events).(event)
			ev.fn(ev.at)
			continue
		}

		// Run the chosen thread for one step.
		lc := slot.lc
		lc.SyncTo(start)
		if slot.lastThread != thread {
			if last := slot.lastThread; last != nil {
				sameSpace := last.ProcessID == thread.ProcessID ||
					last.ProcessID == KernelProcessID ||
					thread.ProcessID == KernelProcessID
				lc.ContextSwitch(sameSpace)
			}
			slot.lastThread = thread
		}
		slot.rr++
		slot.lastDispatch = e.Steps
		// The running flag drives SMT issue-slot sharing: it stays set
		// across Yields (the thread still occupies the logical CPU) and
		// clears when the thread blocks, sleeps or exits, so a sibling
		// hardware thread sees the pipeline freed during I/O waits —
		// the mechanism behind Hyperthreading's better scaling on
		// I/O-intensive workloads (Section 5.1).
		lc.SetRunning(true)
		e.Steps++
		st := thread.proc.Step(&Ctx{E: e, Thread: thread, LC: lc})

		switch st.Kind {
		case Yield:
			thread.readyAt = lc.NowF()
		case Sleep:
			thread.state = stateReady
			thread.readyAt = st.Until
			lc.SetRunning(false)
		case Wait:
			thread.state = stateBlocked
			st.On.waiting = append(st.On.waiting, thread)
			lc.SetRunning(false)
		case Done:
			thread.state = stateDone
			lc.SetRunning(false)
		}
	}
	return e.M.MaxNow()
}

// AllDone reports whether every spawned thread has finished.
func (e *Engine) AllDone() bool {
	for _, t := range e.threads {
		if t.state != stateDone {
			return false
		}
	}
	return true
}
