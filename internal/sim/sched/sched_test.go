package sched

import (
	"testing"

	"repro/internal/perf/machine"
	"repro/internal/perf/trace"
)

func engine(id machine.ConfigID) *Engine {
	return NewEngine(machine.New(id, machine.Options{}))
}

func TestRunToCompletion(t *testing.T) {
	e := engine(machine.OneCPm)
	steps := 0
	e.Spawn("t", 0, 1, 0, ProcFunc(func(ctx *Ctx) Status {
		steps++
		ctx.Exec([]trace.Op{{Kind: trace.ALU, N: 100}})
		if steps == 5 {
			return StatusDone()
		}
		return StatusYield()
	}))
	end := e.Run(nil)
	if steps != 5 {
		t.Fatalf("steps = %d", steps)
	}
	if end <= 0 {
		t.Fatal("no simulated time passed")
	}
	if !e.AllDone() {
		t.Fatal("thread not done")
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	e := engine(machine.OneCPm)
	var woke float64
	first := true
	e.Spawn("sleeper", 0, 1, 0, ProcFunc(func(ctx *Ctx) Status {
		if first {
			first = false
			return StatusSleep(50_000)
		}
		woke = ctx.Now()
		return StatusDone()
	}))
	e.Run(nil)
	if woke < 50_000 {
		t.Fatalf("woke at %.0f", woke)
	}
}

func TestWaitAndSignal(t *testing.T) {
	e := engine(machine.TwoCPm)
	var w Waiter
	order := []string{}
	e.Spawn("waiter", 1, 1, 0, ProcFunc(func(ctx *Ctx) Status {
		if len(order) == 0 || order[len(order)-1] != "signalled" {
			return StatusWait(&w)
		}
		order = append(order, "woke")
		return StatusDone()
	}))
	e.Spawn("signaller", 0, 2, 0, ProcFunc(func(ctx *Ctx) Status {
		ctx.Exec([]trace.Op{{Kind: trace.ALU, N: 1000}})
		order = append(order, "signalled")
		w.Signal(ctx.Now())
		return StatusDone()
	}))
	e.Run(nil)
	if len(order) != 2 || order[1] != "woke" {
		t.Fatalf("order = %v", order)
	}
}

func TestSpuriousWakeupTolerated(t *testing.T) {
	e := engine(machine.OneCPm)
	var w Waiter
	available := false
	consumed := false
	waits := 0
	e.Spawn("consumer", 0, 1, 0, ProcFunc(func(ctx *Ctx) Status {
		if !available {
			waits++
			return StatusWait(&w)
		}
		consumed = true
		return StatusDone()
	}))
	e.Spawn("noise", 0, 2, 0, ProcFunc(func(ctx *Ctx) Status {
		w.Signal(ctx.Now()) // spurious: condition not yet true
		return StatusDone()
	}))
	e.Spawn("producer", 0, 3, 100_000, ProcFunc(func(ctx *Ctx) Status {
		available = true
		w.Signal(ctx.Now())
		return StatusDone()
	}))
	e.Run(nil)
	if !consumed {
		t.Fatal("consumer never ran after the real signal")
	}
	if waits < 2 {
		t.Fatalf("expected a spurious wake then re-wait, got %d waits", waits)
	}
}

func TestOnSignalCallback(t *testing.T) {
	e := engine(machine.OneCPm)
	var w Waiter
	fired := 0.0
	w.OnSignal(func(now float64) { fired = now })
	e.Spawn("sig", 0, 1, 0, ProcFunc(func(ctx *Ctx) Status {
		ctx.Exec([]trace.Op{{Kind: trace.ALU, N: 500}})
		w.Signal(ctx.Now())
		return StatusDone()
	}))
	e.Run(nil)
	if fired <= 0 {
		t.Fatal("callback not fired")
	}
	// One-shot: a second signal must not re-fire.
	fired = -1
	w.Signal(123)
	if fired != -1 {
		t.Fatal("callback fired twice")
	}
}

func TestTimedEvents(t *testing.T) {
	e := engine(machine.OneCPm)
	var times []float64
	e.At(300, func(now float64) { times = append(times, now) })
	e.At(100, func(now float64) { times = append(times, now) })
	e.At(200, func(now float64) { times = append(times, now) })
	e.Run(nil)
	if len(times) != 3 || times[0] != 100 || times[1] != 200 || times[2] != 300 {
		t.Fatalf("event order = %v", times)
	}
}

func TestEventFIFOOnTies(t *testing.T) {
	e := engine(machine.OneCPm)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(100, func(float64) { order = append(order, i) })
	}
	e.Run(nil)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestPriorityPreference(t *testing.T) {
	e := engine(machine.OneCPm)
	var order []string
	var w Waiter
	lo := e.Spawn("low", 0, 1, 0, ProcFunc(func(ctx *Ctx) Status {
		if len(order) > 2 {
			return StatusDone()
		}
		order = append(order, "low")
		return StatusYield()
	}))
	hi := e.Spawn("high", 0, 1, 0, ProcFunc(func(ctx *Ctx) Status {
		if len(order) > 2 {
			return StatusDone()
		}
		order = append(order, "high")
		return StatusYield()
	}))
	hi.Priority = 10
	_ = lo
	_ = w
	e.Run(func(e *Engine) bool { return len(order) >= 3 })
	if order[0] != "high" {
		t.Fatalf("priority ignored: %v", order)
	}
}

func TestContextSwitchBetweenProcesses(t *testing.T) {
	e := engine(machine.OneCPm)
	count := 0
	mk := func() Proc {
		return ProcFunc(func(ctx *Ctx) Status {
			count++
			ctx.Exec([]trace.Op{{Kind: trace.ALU, N: 10}})
			if count > 6 {
				return StatusDone()
			}
			return StatusYield()
		})
	}
	e.Spawn("a", 0, 1, 0, mk())
	e.Spawn("b", 0, 2, 0, mk())
	e.Run(nil)
	// Alternation with distinct address spaces must have charged context
	// switches: busy time exceeds pure instruction time.
	lc := e.M.LCPUs[0]
	if lc.Busy() < 2*1500 {
		t.Fatalf("busy %.0f suggests no context switches charged", lc.Busy())
	}
}

func TestKernelThreadsSkipTLBFlush(t *testing.T) {
	// A kernel-context thread interleaving with one user process must not
	// cause TLB flushes (same-space switches): the user thread's warmed
	// translations survive.
	e := engine(machine.OneCPm)
	addr := e.Space.NewProcess().Alloc(4096)
	phase := 0
	e.Spawn("user", 0, 1, 0, ProcFunc(func(ctx *Ctx) Status {
		phase++
		ctx.Exec([]trace.Op{{Kind: trace.Load, Addr: addr, N: 1}})
		if phase >= 6 {
			return StatusDone()
		}
		return StatusYield()
	}))
	e.Spawn("softirq", 0, KernelProcessID, 0, ProcFunc(func(ctx *Ctx) Status {
		if phase >= 6 {
			return StatusDone()
		}
		ctx.Exec([]trace.Op{{Kind: trace.ALU, N: 10}})
		return StatusYield()
	}))
	e.Run(nil)
	// After warmup the user thread's loads must hit the TLB: total TLB
	// misses stay at the single cold one.
	var total uint64
	for _, lc := range e.M.LCPUs {
		total += lc.Counters.Get(2) // not exported by name here; see below
	}
	_ = total // counted via counters in the machine test; here we assert liveness
	if phase < 6 {
		t.Fatal("user thread starved")
	}
}

func TestQuiescenceWithoutDeadlock(t *testing.T) {
	e := engine(machine.OneCPm)
	var w Waiter
	e.Spawn("stuck", 0, 1, 0, ProcFunc(func(ctx *Ctx) Status {
		return StatusWait(&w) // never signalled
	}))
	end := e.Run(nil) // must terminate by quiescence
	_ = end
	if e.AllDone() {
		t.Fatal("blocked thread reported done")
	}
}

func TestSpawnPanicsOnBadCPU(t *testing.T) {
	e := engine(machine.OneCPm)
	defer func() {
		if recover() == nil {
			t.Fatal("bad CPU accepted")
		}
	}()
	e.Spawn("x", 7, 1, 0, ProcFunc(func(*Ctx) Status { return StatusDone() }))
}

func TestRotatingTieBreak(t *testing.T) {
	// Two workers on two CPUs consuming from one queue must share the
	// work when wakeups tie (the starvation regression).
	e := engine(machine.TwoCPm)
	var w Waiter
	work := 0
	counts := [2]int{}
	mkWorker := func(cpu int) Proc {
		return ProcFunc(func(ctx *Ctx) Status {
			if work <= 0 {
				return StatusWait(&w)
			}
			work--
			counts[cpu]++
			ctx.Exec([]trace.Op{{Kind: trace.ALU, N: 1000}})
			return StatusYield()
		})
	}
	e.Spawn("w0", 0, 1, 0, mkWorker(0))
	e.Spawn("w1", 1, 1, 0, mkWorker(1))
	for i := 0; i < 40; i++ {
		at := float64(i) * 2000
		e.At(at, func(now float64) {
			work++
			w.Signal(now)
		})
	}
	e.Run(nil)
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("a worker starved: %v", counts)
	}
}
