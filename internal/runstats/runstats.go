// Package runstats is the always-available half of the live measurement
// layer: a runtime/metrics sampler covering the Go-runtime analogues of
// the paper's system-level observations — scheduler latency (the
// software cousin of queueing before a processing unit), GC pause and GC
// CPU share (cycles the application didn't get), goroutine population
// and GOMAXPROCS (the live processing-unit count).
//
// Unlike internal/hwcount it needs no privileges and works on every
// platform, so runs where perf events are denied (unprivileged
// containers, CI) degrade to runstats-only observability instead of
// failing.
package runstats

import (
	"math"
	"runtime"
	"runtime/metrics"
)

// The fixed sample set, stable since Go 1.20.
const (
	mGoroutines = "/sched/goroutines:goroutines"
	mSchedLat   = "/sched/latencies:seconds"
	mGCPauses   = "/gc/pauses:seconds"
	mGCCycles   = "/gc/cycles/total:gc-cycles"
	mHeapBytes  = "/memory/classes/heap/objects:bytes"
	mGCCPU      = "/cpu/classes/gc/total:cpu-seconds"
	mTotalCPU   = "/cpu/classes/total:cpu-seconds"
)

var sampleNames = []string{
	mGoroutines, mSchedLat, mGCPauses, mGCCycles, mHeapBytes, mGCCPU, mTotalCPU,
}

// Snapshot is one point-in-time runtime reading, shaped for the
// gateway's /stats counters section.
type Snapshot struct {
	Goroutines    int     `json:"goroutines"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	HeapBytes     uint64  `json:"heap_bytes"`
	GCCycles      uint64  `json:"gc_cycles"`
	GCCPUFraction float64 `json:"gc_cpu_fraction"`
	GCPauseP50US  float64 `json:"gc_pause_p50_us"`
	GCPauseP99US  float64 `json:"gc_pause_p99_us"`
	SchedLatP50US float64 `json:"sched_lat_p50_us"`
	SchedLatP99US float64 `json:"sched_lat_p99_us"`
}

// Read takes one snapshot. Histogram-derived percentiles are cumulative
// since process start — adequate for spotting a run whose scheduler or
// GC is the bottleneck, which is all the fallback mode promises.
func Read() Snapshot {
	samples := make([]metrics.Sample, len(sampleNames))
	for i := range samples {
		samples[i].Name = sampleNames[i]
	}
	metrics.Read(samples)

	s := Snapshot{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	var gcCPU, totalCPU float64
	for _, smp := range samples {
		switch smp.Name {
		case mGoroutines:
			if smp.Value.Kind() == metrics.KindUint64 {
				s.Goroutines = int(smp.Value.Uint64())
			}
		case mGCCycles:
			if smp.Value.Kind() == metrics.KindUint64 {
				s.GCCycles = smp.Value.Uint64()
			}
		case mHeapBytes:
			if smp.Value.Kind() == metrics.KindUint64 {
				s.HeapBytes = smp.Value.Uint64()
			}
		case mGCCPU:
			if smp.Value.Kind() == metrics.KindFloat64 {
				gcCPU = smp.Value.Float64()
			}
		case mTotalCPU:
			if smp.Value.Kind() == metrics.KindFloat64 {
				totalCPU = smp.Value.Float64()
			}
		case mSchedLat:
			if smp.Value.Kind() == metrics.KindFloat64Histogram {
				h := smp.Value.Float64Histogram()
				s.SchedLatP50US = 1e6 * Quantile(h, 0.50)
				s.SchedLatP99US = 1e6 * Quantile(h, 0.99)
			}
		case mGCPauses:
			if smp.Value.Kind() == metrics.KindFloat64Histogram {
				h := smp.Value.Float64Histogram()
				s.GCPauseP50US = 1e6 * Quantile(h, 0.50)
				s.GCPauseP99US = 1e6 * Quantile(h, 0.99)
			}
		}
	}
	if totalCPU > 0 {
		s.GCCPUFraction = gcCPU / totalCPU
	}
	return s
}

// Quantile reads quantile q (0..1) from a runtime/metrics histogram,
// returning the upper bound of the bucket where the cumulative count
// crosses the target — the same upper-bound convention internal/lhist
// uses. Unbounded edge buckets fall back to their finite side; an empty
// histogram reads zero.
func Quantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen > target {
			// Bucket i spans Buckets[i] .. Buckets[i+1].
			hi := h.Buckets[i+1]
			if !isFinite(hi) {
				return h.Buckets[i] // +Inf bucket: report its lower edge
			}
			return hi
		}
	}
	// All mass at or below the last bucket; return its finite bound.
	last := h.Buckets[len(h.Buckets)-1]
	if !isFinite(last) {
		return h.Buckets[len(h.Buckets)-2]
	}
	return last
}

func isFinite(f float64) bool { return !math.IsInf(f, 0) && !math.IsNaN(f) }
