package runstats

import (
	"math"
	"runtime"
	"runtime/metrics"
	"testing"
)

// TestQuantileHandComputed pins the histogram quantile math on an
// injected histogram: 10 observations across three buckets
// (0,1]=5 (1,3]=3 (3,4]=2. The convention matches internal/lhist
// (strictly-greater cumulative, upper bucket bound): the p50 target of 5
// is not exceeded by the first bucket's 5, so p50 reports the second
// bucket's upper bound 3; p90 lands in the third (upper bound 4); p10 in
// the first (upper bound 1).
func TestQuantileHandComputed(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{5, 3, 2},
		Buckets: []float64{0, 1, 3, 4},
	}
	if got := Quantile(h, 0.50); got != 3 {
		t.Fatalf("p50=%v want 3", got)
	}
	if got := Quantile(h, 0.90); got != 4 {
		t.Fatalf("p90=%v want 4", got)
	}
	if got := Quantile(h, 0.10); got != 1 {
		t.Fatalf("p10=%v want 1", got)
	}
}

// TestQuantileInfEdges handles the +-Inf edge buckets runtime/metrics
// histograms really have: mass in the +Inf bucket reports the finite
// lower edge instead of infinity.
func TestQuantileInfEdges(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{1, 1, 8},
		Buckets: []float64{math.Inf(-1), 1, 2, math.Inf(1)},
	}
	got := Quantile(h, 0.99)
	if math.IsInf(got, 0) || got != 2 {
		t.Fatalf("p99=%v want the finite edge 2", got)
	}
}

// TestQuantileEmpty keeps the empty histogram at zero.
func TestQuantileEmpty(t *testing.T) {
	h := &metrics.Float64Histogram{Counts: []uint64{0, 0}, Buckets: []float64{0, 1, 2}}
	if got := Quantile(h, 0.99); got != 0 {
		t.Fatalf("empty histogram quantile=%v want 0", got)
	}
}

// TestReadSane takes a live snapshot after forcing a GC and checks the
// invariant fields — this is the fallback observability mode, so it must
// hold on any platform without privileges.
func TestReadSane(t *testing.T) {
	runtime.GC()
	s := Read()
	if s.Goroutines <= 0 {
		t.Fatalf("goroutines=%d, want > 0", s.Goroutines)
	}
	if s.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Fatalf("gomaxprocs=%d want %d", s.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
	if s.HeapBytes == 0 {
		t.Fatal("heap_bytes=0")
	}
	if s.GCCycles == 0 {
		t.Fatal("gc_cycles=0 after runtime.GC()")
	}
	if s.GCCPUFraction < 0 || s.GCCPUFraction > 1 {
		t.Fatalf("gc_cpu_fraction=%v out of [0,1]", s.GCCPUFraction)
	}
	if s.GCPauseP99US < s.GCPauseP50US || s.SchedLatP99US < s.SchedLatP50US {
		t.Fatalf("percentile ordering violated: %+v", s)
	}
}
