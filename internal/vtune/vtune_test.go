package vtune

import (
	"strings"
	"testing"

	"repro/internal/perf/machine"
	"repro/internal/perf/trace"
	"repro/internal/sim/sched"
)

func TestSamplingCollectsDeltas(t *testing.T) {
	m := machine.New(machine.TwoCPm, machine.Options{})
	e := sched.NewEngine(m)
	steps := 0
	e.Spawn("busy", 0, 1, 0, sched.ProcFunc(func(ctx *sched.Ctx) sched.Status {
		steps++
		ctx.Exec([]trace.Op{{Kind: trace.ALU, N: 5000}})
		if steps >= 40 {
			return sched.StatusDone()
		}
		return sched.StatusYield()
	}))
	p := New(e, 20_000)
	p.Start(0)
	e.Run(func(*sched.Engine) bool { return steps >= 40 })
	p.Stop()

	samples := p.Samples()
	if len(samples) < 4 {
		t.Fatalf("only %d samples", len(samples))
	}
	var instr uint64
	for _, s := range samples {
		instr += s.Delta.Get(1) // InstrRetired
	}
	if instr == 0 {
		t.Fatal("samples carry no instruction deltas")
	}

	util := p.Utilization()
	if util[0] <= 0.5 {
		t.Fatalf("busy CPU utilization %.2f", util[0])
	}
	if u, ok := util[1]; ok && u > 0.1 {
		t.Fatalf("idle CPU utilization %.2f", u)
	}

	rep := p.Report()
	for _, want := range []string{"cycle", "cpu", "util%", "CPI"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestStopEndsSampling(t *testing.T) {
	m := machine.New(machine.OneCPm, machine.Options{})
	e := sched.NewEngine(m)
	p := New(e, 1000)
	p.Start(0)
	p.Stop()
	e.Spawn("t", 0, 1, 0, sched.ProcFunc(func(ctx *sched.Ctx) sched.Status {
		ctx.Exec([]trace.Op{{Kind: trace.ALU, N: 100000}})
		return sched.StatusDone()
	}))
	e.Run(nil)
	if len(p.Samples()) > 1 {
		t.Fatalf("sampling continued after Stop: %d samples", len(p.Samples()))
	}
}
