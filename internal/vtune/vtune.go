// Package vtune reproduces the paper's measurement methodology: a
// sampling profiler that periodically snapshots every logical CPU's
// on-chip performance counters during a run (Section 3.3 uses Intel VTune
// in sampling mode "to get a global picture of processor utilization for
// both system and application level activities").
//
// The profiler rides the simulation's event queue: at every sampling
// interval it records per-CPU counter deltas, from which reports derive
// utilization timelines and interval metrics.
package vtune

import (
	"fmt"
	"strings"

	"repro/internal/perf/counters"
	"repro/internal/sim/sched"
)

// Sample is one sampling interval's observation for one logical CPU.
type Sample struct {
	CPU     int
	AtCycle float64
	Delta   counters.Set // events since the previous sample on this CPU
	Busy    float64      // busy cycles in the interval
}

// Profiler collects samples from a running engine.
type Profiler struct {
	E        *sched.Engine
	Interval float64 // cycles between samples

	samples  []Sample
	last     []counters.Set
	lastBusy []float64
	stopped  bool
}

// New creates a profiler sampling every interval cycles.
func New(e *sched.Engine, interval float64) *Profiler {
	return &Profiler{
		E:        e,
		Interval: interval,
		last:     make([]counters.Set, len(e.M.LCPUs)),
		lastBusy: make([]float64, len(e.M.LCPUs)),
	}
}

// Start arms the first sampling event at cycle at.
func (p *Profiler) Start(at float64) {
	for i, lc := range p.E.M.LCPUs {
		p.last[i] = lc.Counters.Snapshot()
		p.lastBusy[i] = lc.Busy()
	}
	p.E.At(at+p.Interval, p.tick)
}

// Stop ends sampling after the current interval.
func (p *Profiler) Stop() { p.stopped = true }

func (p *Profiler) tick(now float64) {
	if p.stopped {
		return
	}
	for i, lc := range p.E.M.LCPUs {
		cur := lc.Counters.Snapshot()
		busy := lc.Busy()
		p.samples = append(p.samples, Sample{
			CPU:     i,
			AtCycle: now,
			Delta:   cur.Sub(p.last[i]),
			Busy:    busy - p.lastBusy[i],
		})
		p.last[i] = cur
		p.lastBusy[i] = busy
	}
	p.E.At(now+p.Interval, p.tick)
}

// Samples returns everything collected so far.
func (p *Profiler) Samples() []Sample { return p.samples }

// Report renders a utilization and CPI timeline per logical CPU.
func (p *Profiler) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "vtune-style sampling report (interval %.0f cycles)\n", p.Interval)
	fmt.Fprintf(&b, "%10s %4s %8s %10s %8s %10s %10s\n",
		"cycle", "cpu", "util%", "instr", "CPI", "l2miss", "busTxns")
	for _, s := range p.samples {
		instr := s.Delta.Get(counters.InstrRetired)
		cpi := 0.0
		if instr > 0 {
			cpi = p.Interval / float64(instr)
		}
		fmt.Fprintf(&b, "%10.0f %4d %8.1f %10d %8.2f %10d %10d\n",
			s.AtCycle, s.CPU, 100*s.Busy/p.Interval, instr, cpi,
			s.Delta.Get(counters.L2Misses), s.Delta.Get(counters.BusTxns))
	}
	return b.String()
}

// Utilization aggregates mean busy fraction per CPU over all samples.
func (p *Profiler) Utilization() map[int]float64 {
	sum := map[int]float64{}
	n := map[int]int{}
	for _, s := range p.samples {
		sum[s.CPU] += s.Busy / p.Interval
		n[s.CPU]++
	}
	out := map[int]float64{}
	for cpu, total := range sum {
		out[cpu] = total / float64(n[cpu])
	}
	return out
}
