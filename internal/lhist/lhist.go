// Package lhist is a lock-free log2-bucketed latency histogram shared by
// the live subsystems (the gateway's service-time metrics and the
// upstream forwarder's per-backend latency). Bucket k holds observations
// in [2^(k-1), 2^k) microseconds; 40 buckets cover ~13 days, far beyond
// any request latency.
package lhist

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist accumulates durations; all methods are safe for concurrent use.
type Hist struct {
	buckets [40]atomic.Uint64
	count   atomic.Uint64
	sumUS   atomic.Uint64
	maxUS   atomic.Uint64
}

// Observe records one duration.
func (h *Hist) Observe(d time.Duration) {
	us := uint64(d.Microseconds())
	b := bits.Len64(us)
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
	for {
		cur := h.maxUS.Load()
		if us <= cur || h.maxUS.CompareAndSwap(cur, us) {
			break
		}
	}
}

// Merge folds other's observations into h. Both histograms may keep
// taking Observe calls concurrently; the merge is atomic per field, not
// across fields, so a snapshot taken mid-merge can see partial totals —
// the same staleness any concurrent Snapshot already tolerates.
func (h *Hist) Merge(other *Hist) {
	for i := range other.buckets {
		if c := other.buckets[i].Load(); c > 0 {
			h.buckets[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sumUS.Add(other.sumUS.Load())
	om := other.maxUS.Load()
	for {
		cur := h.maxUS.Load()
		if om <= cur || h.maxUS.CompareAndSwap(cur, om) {
			break
		}
	}
}

// Counts is a raw cumulative read of the histogram, the windowing
// primitive: two Counts taken at different times Sub into a windowed
// view whose quantiles and mean cover exactly that span — what the
// capacity control loop reads, where the cumulative Snapshot would lag
// minutes behind a load shift.
type Counts struct {
	Buckets [40]uint64
	N       uint64
	SumUS   uint64
}

// Counts reads the histogram's raw totals.
func (h *Hist) Counts() Counts {
	var c Counts
	for i := range h.buckets {
		c.Buckets[i] = h.buckets[i].Load()
	}
	c.N = h.count.Load()
	c.SumUS = h.sumUS.Load()
	return c
}

// Sub returns the window c − prev (counts observed since prev was
// taken). prev must be an earlier read of the same histogram.
func (c Counts) Sub(prev Counts) Counts {
	out := Counts{N: c.N - prev.N, SumUS: c.SumUS - prev.SumUS}
	for i := range c.Buckets {
		out.Buckets[i] = c.Buckets[i] - prev.Buckets[i]
	}
	return out
}

// Quantile reads percentile q from the counts with the same
// upper-bucket-bound convention as Snapshot. Zero when empty.
func (c Counts) Quantile(q float64) uint64 {
	if c.N == 0 {
		return 0
	}
	target := uint64(q * float64(c.N))
	var seen uint64
	for i, n := range c.Buckets {
		seen += n
		if seen > target {
			return uint64(1) << uint(i)
		}
	}
	return uint64(1) << uint(len(c.Buckets)-1)
}

// MeanUS is the mean over the counted window (0 when empty).
func (c Counts) MeanUS() float64 {
	if c.N == 0 {
		return 0
	}
	return float64(c.SumUS) / float64(c.N)
}

// Snapshot is a point-in-time percentile read.
type Snapshot struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  uint64  `json:"p50_us"`
	P90US  uint64  `json:"p90_us"`
	P99US  uint64  `json:"p99_us"`
	MaxUS  uint64  `json:"max_us"`
}

// Snapshot reads the histogram. Percentiles are upper bucket bounds, so
// they over-report by at most 2x — adequate for a scaling comparison,
// and stated in the docs.
func (h *Hist) Snapshot() Snapshot {
	var counts [40]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := Snapshot{Count: total, MaxUS: h.maxUS.Load()}
	if total == 0 {
		return s
	}
	s.MeanUS = float64(h.sumUS.Load()) / float64(total)
	quantile := func(q float64) uint64 {
		target := uint64(q * float64(total))
		var seen uint64
		for i, c := range counts {
			seen += c
			if seen > target {
				return uint64(1) << uint(i) // upper bound of bucket i
			}
		}
		return s.MaxUS
	}
	s.P50US = quantile(0.50)
	s.P90US = quantile(0.90)
	s.P99US = quantile(0.99)
	return s
}
