package lhist

import (
	"sync"
	"testing"
	"time"
)

// TestQuantiles pins the log2-bucket math: percentiles are upper bucket
// bounds, mean and max are exact.
func TestQuantiles(t *testing.T) {
	var h Hist
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.MaxUS != 100 {
		t.Fatalf("count=%d max=%d", s.Count, s.MaxUS)
	}
	if s.P50US < 32 || s.P50US > 128 {
		t.Fatalf("p50=%d out of log-bucket range", s.P50US)
	}
	if s.P99US < s.P50US {
		t.Fatalf("p99=%d < p50=%d", s.P99US, s.P50US)
	}
	if s.MeanUS < 49 || s.MeanUS > 52 {
		t.Fatalf("mean=%f", s.MeanUS)
	}
}

// TestEmpty keeps the zero-value snapshot well-defined.
func TestEmpty(t *testing.T) {
	var h Hist
	s := h.Snapshot()
	if s.Count != 0 || s.MaxUS != 0 || s.MeanUS != 0 {
		t.Fatalf("zero hist snapshot: %+v", s)
	}
}

// TestConcurrentObserve exercises the atomics under -race.
func TestConcurrentObserve(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(g*1000+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count=%d want 8000", s.Count)
	}
}
