package lhist

import (
	"sync"
	"testing"
	"time"
)

// TestQuantiles pins the log2-bucket math: percentiles are upper bucket
// bounds, mean and max are exact.
func TestQuantiles(t *testing.T) {
	var h Hist
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.MaxUS != 100 {
		t.Fatalf("count=%d max=%d", s.Count, s.MaxUS)
	}
	if s.P50US < 32 || s.P50US > 128 {
		t.Fatalf("p50=%d out of log-bucket range", s.P50US)
	}
	if s.P99US < s.P50US {
		t.Fatalf("p99=%d < p50=%d", s.P99US, s.P50US)
	}
	if s.MeanUS < 49 || s.MeanUS > 52 {
		t.Fatalf("mean=%f", s.MeanUS)
	}
}

// TestEmpty keeps the zero-value snapshot well-defined: all quantiles
// of an empty histogram are zero, not garbage upper bounds.
func TestEmpty(t *testing.T) {
	var h Hist
	s := h.Snapshot()
	if s.Count != 0 || s.MaxUS != 0 || s.MeanUS != 0 {
		t.Fatalf("zero hist snapshot: %+v", s)
	}
	if s.P50US != 0 || s.P90US != 0 || s.P99US != 0 {
		t.Fatalf("empty hist quantiles must be zero: %+v", s)
	}
}

// TestSingleSample: with one observation every percentile is that
// sample's bucket upper bound, and mean/max are the sample itself.
func TestSingleSample(t *testing.T) {
	var h Hist
	h.Observe(100 * time.Microsecond)
	s := h.Snapshot()
	if s.Count != 1 || s.MaxUS != 100 || s.MeanUS != 100 {
		t.Fatalf("single-sample snapshot: %+v", s)
	}
	// 100us lands in [64,128): upper bound 128 for every percentile.
	if s.P50US != 128 || s.P90US != 128 || s.P99US != 128 {
		t.Fatalf("single-sample quantiles: %+v", s)
	}
}

// TestMergeDisjointRanges: merging a fast histogram into a slow one must
// equal observing both ranges in a single histogram — counts, sum, max,
// and the quantiles that straddle the two populations.
func TestMergeDisjointRanges(t *testing.T) {
	var fast, slow, want Hist
	for i := 0; i < 120; i++ {
		d := time.Duration(i+1) * time.Microsecond // 1..120us
		fast.Observe(d)
		want.Observe(d)
	}
	for i := 0; i < 80; i++ {
		d := time.Duration(10000+i) * time.Microsecond // ~10ms
		slow.Observe(d)
		want.Observe(d)
	}
	slow.Merge(&fast)
	got, exp := slow.Snapshot(), want.Snapshot()
	if got != exp {
		t.Fatalf("merged snapshot %+v != combined %+v", got, exp)
	}
	if got.Count != 200 || got.MaxUS != 10079 {
		t.Fatalf("merged totals: %+v", got)
	}
	// p50 straddles the boundary: 60% of the samples are <=120us, so the
	// median upper bound stays in the fast population's buckets...
	if got.P50US > 128 {
		t.Fatalf("p50=%d should stay in the fast range", got.P50US)
	}
	// ...while p90/p99 land in the slow population.
	if got.P99US < 10000 {
		t.Fatalf("p99=%d should reach the slow range", got.P99US)
	}
}

// TestMergeIntoEmpty: merging into a zero-value histogram is a copy.
func TestMergeIntoEmpty(t *testing.T) {
	var src, dst Hist
	for i := 0; i < 50; i++ {
		src.Observe(time.Duration(i+1) * time.Millisecond)
	}
	dst.Merge(&src)
	if got, exp := dst.Snapshot(), src.Snapshot(); got != exp {
		t.Fatalf("merge-into-empty %+v != source %+v", got, exp)
	}
}

// TestConcurrentObserveAndMerge exercises Merge racing Observe on both
// sides under -race: totals must come out exact once all writers stop.
func TestConcurrentObserveAndMerge(t *testing.T) {
	var src, dst Hist
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				dst.Observe(time.Duration(g*1000+i+1) * time.Microsecond)
			}
		}(g)
	}
	for i := 0; i < 1000; i++ {
		src.Observe(time.Duration(i+1) * time.Microsecond)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		dst.Merge(&src)
	}()
	wg.Wait()
	if s := dst.Snapshot(); s.Count != 5000 {
		t.Fatalf("count=%d want 5000", s.Count)
	}
}

// TestCountsWindowing pins the windowing primitive: Sub isolates the
// observations between two reads, and the windowed quantile/mean see
// only that population — a fast first window must not drag down a slow
// second one.
func TestCountsWindowing(t *testing.T) {
	var h Hist
	for i := 0; i < 120; i++ {
		h.Observe(time.Duration(i%100+1) * time.Microsecond) // fast window
	}
	first := h.Counts()
	if first.N != 120 || first.Quantile(0.5) > 128 {
		t.Fatalf("first window: %+v", first)
	}
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(10000+i) * time.Microsecond) // slow window
	}
	window := h.Counts().Sub(first)
	if window.N != 100 {
		t.Fatalf("window count %d, want 100", window.N)
	}
	if q := window.Quantile(0.5); q < 10000 {
		t.Fatalf("windowed p50 %d polluted by the first window", q)
	}
	if m := window.MeanUS(); m < 10000 || m > 10100 {
		t.Fatalf("windowed mean %v", m)
	}
	// Cumulative quantile still straddles both populations.
	if q := h.Counts().Quantile(0.5); q > 256 {
		t.Fatalf("cumulative p50 %d", q)
	}
	// Empty windows answer zeros, not garbage.
	var empty Counts
	if empty.Quantile(0.99) != 0 || empty.MeanUS() != 0 {
		t.Fatalf("empty counts: q=%d mean=%v", empty.Quantile(0.99), empty.MeanUS())
	}
}

// TestConcurrentObserve exercises the atomics under -race.
func TestConcurrentObserve(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(g*1000+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count=%d want 8000", s.Count)
	}
}
