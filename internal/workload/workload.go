// Package workload generates the paper's AON traffic: HTTP POST requests
// carrying 5-Kbyte SOAP envelopes with a <quantity> element for the XPath
// //quantity/text() routing decision and filler text to reach the
// AONBench-specified message size (Section 3.2.1), plus the XSD schema the
// SV use case validates against.
//
// Messages are deterministic per index but varied in content (item counts,
// SKUs, filler wording), so branch predictors and caches see realistic
// diversity rather than a single repeated byte pattern.
package workload

import (
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/dpi"
	"repro/internal/httpmsg"
	"repro/internal/wcrypto"
	"repro/internal/xsd"
)

// MessageBytes is the AONBench message size the paper uses.
const MessageBytes = 5 * 1024

// UseCase enumerates the three XML server application use cases.
type UseCase int

const (
	// FR is HTTP Forward Request: pure proxying, no content processing.
	FR UseCase = iota
	// CBR is Content-Based Routing: XPath lookup over the message.
	CBR
	// SV is Schema Validation: the message is validated against the
	// pre-stored purchase-order schema.
	SV
	// DPI is deep packet inspection: multi-pattern signature matching
	// over the payload. One of the operations the paper's future work
	// names (Section 6); not part of the published evaluation grid.
	DPI
	// AUTH is message authentication: HMAC-SHA1 verification of the
	// payload ("crypto functions" in the paper's future work). The most
	// CPU-bound point on the spectrum.
	AUTH
	// XJ is XML→JSON protocol translation: the message is parsed and
	// re-emitted as JSON (the "protocol translation" AON operation).
	// Parse-dominated like SV, plus a serialization stage.
	XJ
)

func (u UseCase) String() string {
	switch u {
	case FR:
		return "FR"
	case CBR:
		return "CBR"
	case SV:
		return "SV"
	case DPI:
		return "DPI"
	case AUTH:
		return "AUTH"
	case XJ:
		return "XJ"
	}
	return "invalid"
}

// ParseUseCase maps a use-case name ("FR", "cbr", ...) to its UseCase.
func ParseUseCase(s string) (UseCase, error) {
	for _, uc := range append(append([]UseCase{}, AllUseCases...), ExtendedUseCases...) {
		if strings.EqualFold(s, uc.String()) {
			return uc, nil
		}
	}
	return FR, fmt.Errorf("workload: unknown use case %q", s)
}

// AllUseCases lists the paper's use cases in its network-I/O-intensive to
// CPU-intensive order; the evaluation grid (Figures 3-5, Tables 4-6)
// covers exactly these.
var AllUseCases = []UseCase{FR, CBR, SV}

// ExtendedUseCases are the future-work operations (Section 6) implemented
// beyond the paper's grid.
var ExtendedUseCases = []UseCase{DPI, AUTH, XJ}

// OrderSchemaXSD is the purchase-order schema the SV use case validates
// incoming messages against.
const OrderSchemaXSD = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:complexType name="itemType">
    <xs:sequence>
      <xs:element name="sku" type="xs:string"/>
      <xs:element name="quantity" type="xs:positiveInteger"/>
      <xs:element name="price" type="xs:decimal"/>
      <xs:element name="description" type="xs:string" minOccurs="0"/>
    </xs:sequence>
  </xs:complexType>
  <xs:element name="Envelope">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="Header" minOccurs="0">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="transactionID" type="xs:string"/>
              <xs:element name="timestamp" type="xs:string" minOccurs="0"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="Body">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="purchaseOrder">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="customer" type="xs:string"/>
                    <xs:element name="orderDate" type="xs:date"/>
                    <xs:element name="item" type="itemType" maxOccurs="unbounded"/>
                    <xs:element name="filler" type="xs:string" maxOccurs="unbounded"/>
                  </xs:sequence>
                  <xs:attribute name="id" type="xs:string" use="required"/>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`

// OrderSchema returns the compiled SV schema (compiled once).
func OrderSchema() *xsd.Schema { return orderSchema }

var orderSchema = xsd.MustParseSchema(OrderSchemaXSD)

// rng is a small deterministic generator so message i is always the same.
type rng uint64

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return x
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

var fillerWords = []string{
	"transit", "warehouse", "pallet", "invoice", "manifest", "customs",
	"expedite", "fragile", "insured", "logistics", "consignment", "carrier",
	"routing", "dispatch", "terminal", "handling",
}

var customers = []string{
	"ACME Networks", "Globex Manufacturing", "Initech Services",
	"Umbrella Logistics", "Stark Industrial", "Wayne Enterprises",
}

// SOAPMessage builds message i: a SOAP envelope around a purchase order
// whose first item quantity is "1" for a fraction of messages (the CBR
// routing condition), padded with filler elements to MessageBytes.
func SOAPMessage(i int) []byte { return SOAPMessageSized(i, MessageBytes) }

// SOAPMessageSized is SOAPMessage with an explicit approximate target size
// in bytes. The order preamble (~1 KB) is a floor; above it the message is
// padded with <filler> elements to roughly the requested size, so the live
// load generator can sweep message sizes around the paper's 5 KB default.
// At least one filler element is always emitted (the schema requires one).
func SOAPMessageSized(i, size int) []byte {
	return SOAPMessageSeeded(i, size, 0)
}

// SOAPMessageSeeded is SOAPMessageSized under an explicit campaign seed:
// the seed perturbs the per-index generator state so two campaign runs
// with the same seed replay byte-identical traffic while distinct seeds
// produce distinct (still deterministic) message populations. Seed 0 is
// the legacy stream — SOAPMessageSized output is unchanged.
func SOAPMessageSeeded(i, size int, seed uint64) []byte {
	r := rng(uint64(i)*2654435761 + 88172645463325252 + seed*0x9E3779B97F4A7C15)
	r.next()

	var b strings.Builder
	b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	b.WriteString(`<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">` + "\n")
	fmt.Fprintf(&b, "<soap:Header><transactionID>txn-%08d</transactionID><timestamp>2007-03-%02d</timestamp></soap:Header>\n", i, 1+r.intn(28))
	b.WriteString("<soap:Body>\n")
	fmt.Fprintf(&b, `<purchaseOrder id="po-%06d">`+"\n", i)
	fmt.Fprintf(&b, "<customer>%s</customer>\n", customers[r.intn(len(customers))])
	fmt.Fprintf(&b, "<orderDate>2007-%02d-%02d</orderDate>\n", 1+r.intn(12), 1+r.intn(28))

	items := 2 + r.intn(4)
	for k := 0; k < items; k++ {
		qty := 1 + r.intn(5)
		if k == 0 {
			// Half the messages match the paper's routing condition
			// //quantity/text() = "1".
			if i%2 == 0 {
				qty = 1
			} else {
				qty = 2 + r.intn(4)
			}
		}
		fmt.Fprintf(&b, "<item><sku>SKU-%04d</sku><quantity>%d</quantity><price>%d.%02d</price><description>%s %s</description></item>\n",
			r.intn(10000), qty, 1+r.intn(500), r.intn(100),
			fillerWords[r.intn(len(fillerWords))], fillerWords[r.intn(len(fillerWords))])
	}

	// Filler elements to reach the target size (AONBench default 5 KB).
	const close = "</purchaseOrder>\n</soap:Body>\n</soap:Envelope>\n"
	first := true
	for first || b.Len() < size-len(close)-40 {
		first = false
		b.WriteString("<filler>")
		for b.Len() < size-len(close)-60 {
			b.WriteString(fillerWords[r.intn(len(fillerWords))])
			b.WriteByte(' ')
			if r.intn(6) == 0 {
				break
			}
		}
		b.WriteString("</filler>\n")
	}
	b.WriteString(close)
	return []byte(b.String())
}

// AuthKey is the pre-shared device key for the AUTH use case.
var AuthKey = []byte("aon-device-key-2007")

// TamperEvery makes every Nth AUTH request carry a corrupted MAC, so the
// authentication path exercises both verdicts.
const TamperEvery = 7

// DirtyEvery makes every Nth DPI message carry an embedded inspection
// signature, so the deep-packet-inspection path exercises both verdicts
// (clean → forwarded, dirty → blocked).
const DirtyEvery = 5

// DirtySignature returns the signature embedded in dirty DPI message i
// ("" for clean messages). Signatures cycle through the matcher's
// default rule set so every automaton terminal state gets traffic.
func DirtySignature(i int, signatures []string) string {
	if len(signatures) == 0 || i%DirtyEvery != DirtyEvery-1 {
		return ""
	}
	return signatures[(i/DirtyEvery)%len(signatures)]
}

// HTTPRequest wraps message i in the HTTP POST the clients send. AUTH
// requests carry an X-AON-MAC header with the HMAC-SHA1 of the body
// (corrupted for every TamperEvery-th message).
func HTTPRequest(i int, uc UseCase) []byte {
	return HTTPRequestSized(i, uc, MessageBytes)
}

// HTTPRequestSized is HTTPRequest with an explicit approximate body size.
func HTTPRequestSized(i int, uc UseCase, size int) []byte {
	return HTTPRequestSeeded(i, uc, size, 0)
}

// HTTPRequestSeeded is HTTPRequestSized under an explicit campaign seed
// (see SOAPMessageSeeded). Seed 0 reproduces the legacy byte stream.
func HTTPRequestSeeded(i int, uc UseCase, size int, seed uint64) []byte {
	body := SOAPMessageSeeded(i, size, seed)
	if uc == DPI {
		if sig := DirtySignature(i, dpi.DefaultSignatures); sig != "" {
			// Splice the signature into the first filler element; DPI
			// matches raw bytes and never parses, so signatures that are
			// not XML-safe are fine here.
			body = []byte(strings.Replace(string(body), "<filler>", "<filler>"+sig+" ", 1))
		}
	}
	req := &httpmsg.Request{
		Method: "POST",
		Target: fmt.Sprintf("http://aon-gw.example.com/service/%s", uc),
		Proto:  "HTTP/1.1",
		Headers: []httpmsg.Header{
			{Name: "Host", Value: "aon-gw.example.com"},
			{Name: "Content-Type", Value: "text/xml; charset=utf-8"},
			{Name: "SOAPAction", Value: `"urn:purchaseOrder"`},
			{Name: "Connection", Value: "keep-alive"},
			{Name: "Content-Length", Value: fmt.Sprint(len(body))},
		},
		Body: body,
	}
	if uc == AUTH {
		mac := wcrypto.HMAC(AuthKey, body, nil, 0)
		hexMAC := hex.EncodeToString(mac[:])
		if i%TamperEvery == TamperEvery-1 {
			hexMAC = "00" + hexMAC[2:]
		}
		req.Headers = append(req.Headers, httpmsg.Header{Name: "X-AON-MAC", Value: hexMAC})
	}
	return httpmsg.FormatRequest(req)
}

// InvalidSOAPMessage returns message i mutated so schema validation fails
// (the paper notes "a modified input message can verify whether the XML
// server application is executing this use case correctly").
func InvalidSOAPMessage(i int) []byte {
	return InvalidSOAPMessageSized(i, MessageBytes)
}

// InvalidSOAPMessageSized is InvalidSOAPMessage at an explicit size.
func InvalidSOAPMessageSized(i, size int) []byte {
	return InvalidSOAPMessageSeeded(i, size, 0)
}

// InvalidSOAPMessageSeeded is InvalidSOAPMessageSized under an explicit
// campaign seed (see SOAPMessageSeeded).
func InvalidSOAPMessageSeeded(i, size int, seed uint64) []byte {
	msg := string(SOAPMessageSeeded(i, size, seed))
	return []byte(strings.Replace(msg, "<quantity>", "<quantity>x", 1))
}

// NetperfBuffer returns the netperf send buffer: netperf transmits an
// uninitialized (zero) buffer repeatedly; size follows the benchmark's
// default send size.
func NetperfBuffer(size int) []byte { return make([]byte, size) }
