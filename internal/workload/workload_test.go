package workload

import (
	"bytes"
	"testing"

	"repro/internal/dpi"
	"repro/internal/httpmsg"
	"repro/internal/xmldom"
	"repro/internal/xpath"
	"repro/internal/xsd"
)

func TestSOAPMessageSizeAndDeterminism(t *testing.T) {
	for i := 0; i < 20; i++ {
		msg := SOAPMessage(i)
		if len(msg) < MessageBytes-300 || len(msg) > MessageBytes+100 {
			t.Fatalf("message %d size %d, want ~%d (AONBench 5KB)", i, len(msg), MessageBytes)
		}
		if !bytes.Equal(msg, SOAPMessage(i)) {
			t.Fatalf("message %d not deterministic", i)
		}
	}
	if bytes.Equal(SOAPMessage(1), SOAPMessage(2)) {
		t.Fatal("distinct messages identical")
	}
}

func TestSOAPMessageWellFormedAndValid(t *testing.T) {
	schema := OrderSchema()
	for i := 0; i < 20; i++ {
		doc, err := xmldom.Parse(SOAPMessage(i))
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if errs := xsd.Validate(schema, doc); len(errs) != 0 {
			t.Fatalf("message %d invalid: %v", i, errs[0])
		}
	}
}

func TestRoutingConditionDistribution(t *testing.T) {
	// Even-indexed messages match //quantity/text() = "1".
	expr := xpath.MustCompile(`//quantity/text()`)
	ev := xpath.NewEvaluator(nil)
	for i := 0; i < 10; i++ {
		doc, err := xmldom.Parse(SOAPMessage(i))
		if err != nil {
			t.Fatal(err)
		}
		val, err := ev.EvalString(expr, doc)
		if err != nil {
			t.Fatal(err)
		}
		want := i%2 == 0
		if (val == "1") != want {
			t.Fatalf("message %d routing value %q, want match=%v", i, val, want)
		}
	}
}

func TestInvalidSOAPMessageFailsValidation(t *testing.T) {
	schema := OrderSchema()
	doc, err := xmldom.Parse(InvalidSOAPMessage(3))
	if err != nil {
		t.Fatal(err)
	}
	if errs := xsd.Validate(schema, doc); len(errs) == 0 {
		t.Fatal("modified message passed validation")
	}
}

func TestHTTPRequestParses(t *testing.T) {
	for _, uc := range AllUseCases {
		raw := HTTPRequest(5, uc)
		req, err := httpmsg.ParseRequest(raw)
		if err != nil {
			t.Fatalf("%v: %v", uc, err)
		}
		if req.Method != "POST" {
			t.Fatalf("%v method %s", uc, req.Method)
		}
		if req.ContentLength() != len(req.Body) {
			t.Fatalf("%v content length mismatch", uc)
		}
		if _, err := xmldom.Parse(req.Body); err != nil {
			t.Fatalf("%v body: %v", uc, err)
		}
	}
}

func TestUseCaseStrings(t *testing.T) {
	if FR.String() != "FR" || CBR.String() != "CBR" || SV.String() != "SV" {
		t.Fatal("use case names wrong")
	}
	if UseCase(9).String() != "invalid" {
		t.Fatal("invalid use case not flagged")
	}
	if len(AllUseCases) != 3 {
		t.Fatal("use case list wrong")
	}
}

func TestSeededGenerators(t *testing.T) {
	// Seed 0 must reproduce the legacy stream byte for byte.
	for i := 0; i < 8; i++ {
		if !bytes.Equal(SOAPMessageSeeded(i, MessageBytes, 0), SOAPMessage(i)) {
			t.Fatalf("message %d: seed 0 diverges from legacy stream", i)
		}
		if !bytes.Equal(HTTPRequestSeeded(i, CBR, MessageBytes, 0), HTTPRequest(i, CBR)) {
			t.Fatalf("request %d: seed 0 diverges from legacy stream", i)
		}
	}
	// Distinct seeds give distinct but internally deterministic streams.
	a := SOAPMessageSeeded(3, MessageBytes, 42)
	if bytes.Equal(a, SOAPMessage(3)) {
		t.Fatal("seed 42 identical to seed 0")
	}
	if !bytes.Equal(a, SOAPMessageSeeded(3, MessageBytes, 42)) {
		t.Fatal("seeded message not deterministic")
	}
	// Seeded messages stay well-formed and schema-valid.
	doc, err := xmldom.Parse(a)
	if err != nil {
		t.Fatalf("seeded message: %v", err)
	}
	if errs := xsd.Validate(OrderSchema(), doc); len(errs) != 0 {
		t.Fatalf("seeded message invalid: %v", errs[0])
	}
}

func TestDirtySignature(t *testing.T) {
	sigs := []string{"alpha", "beta"}
	dirty := 0
	for i := 0; i < 4*DirtyEvery; i++ {
		sig := DirtySignature(i, sigs)
		if want := i%DirtyEvery == DirtyEvery-1; (sig != "") != want {
			t.Fatalf("message %d: dirty=%v want %v", i, sig != "", want)
		}
		if sig != "" {
			dirty++
		}
	}
	if dirty != 4 {
		t.Fatalf("dirty count %d, want 4", dirty)
	}
	// Signatures cycle through the set.
	if DirtySignature(DirtyEvery-1, sigs) != "alpha" || DirtySignature(2*DirtyEvery-1, sigs) != "beta" {
		t.Fatal("signatures do not cycle in order")
	}
	if DirtySignature(DirtyEvery-1, nil) != "" {
		t.Fatal("empty signature set must yield clean messages")
	}
}

func TestDPIDirtyRequestEmbedsSignature(t *testing.T) {
	// Every DirtyEvery-th DPI request carries a default signature;
	// clean ones carry none.
	dirtyIdx := DirtyEvery - 1
	raw := HTTPRequestSized(dirtyIdx, DPI, MessageBytes)
	req, err := httpmsg.ParseRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	sig := DirtySignature(dirtyIdx, dpi.DefaultSignatures)
	if sig == "" || !bytes.Contains(req.Body, []byte(sig)) {
		t.Fatalf("dirty DPI request missing signature %q", sig)
	}
	if req.ContentLength() != len(req.Body) {
		t.Fatal("dirty DPI request content length mismatch")
	}
	clean, err := httpmsg.ParseRequest(HTTPRequestSized(0, DPI, MessageBytes))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range dpi.DefaultSignatures {
		if bytes.Contains(clean.Body, []byte(s)) {
			t.Fatalf("clean DPI request contains signature %q", s)
		}
	}
}

func TestNetperfBuffer(t *testing.T) {
	b := NetperfBuffer(16 << 10)
	if len(b) != 16<<10 {
		t.Fatalf("buffer size %d", len(b))
	}
}
