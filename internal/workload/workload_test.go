package workload

import (
	"bytes"
	"testing"

	"repro/internal/httpmsg"
	"repro/internal/xmldom"
	"repro/internal/xpath"
	"repro/internal/xsd"
)

func TestSOAPMessageSizeAndDeterminism(t *testing.T) {
	for i := 0; i < 20; i++ {
		msg := SOAPMessage(i)
		if len(msg) < MessageBytes-300 || len(msg) > MessageBytes+100 {
			t.Fatalf("message %d size %d, want ~%d (AONBench 5KB)", i, len(msg), MessageBytes)
		}
		if !bytes.Equal(msg, SOAPMessage(i)) {
			t.Fatalf("message %d not deterministic", i)
		}
	}
	if bytes.Equal(SOAPMessage(1), SOAPMessage(2)) {
		t.Fatal("distinct messages identical")
	}
}

func TestSOAPMessageWellFormedAndValid(t *testing.T) {
	schema := OrderSchema()
	for i := 0; i < 20; i++ {
		doc, err := xmldom.Parse(SOAPMessage(i))
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if errs := xsd.Validate(schema, doc); len(errs) != 0 {
			t.Fatalf("message %d invalid: %v", i, errs[0])
		}
	}
}

func TestRoutingConditionDistribution(t *testing.T) {
	// Even-indexed messages match //quantity/text() = "1".
	expr := xpath.MustCompile(`//quantity/text()`)
	ev := xpath.NewEvaluator(nil)
	for i := 0; i < 10; i++ {
		doc, err := xmldom.Parse(SOAPMessage(i))
		if err != nil {
			t.Fatal(err)
		}
		val, err := ev.EvalString(expr, doc)
		if err != nil {
			t.Fatal(err)
		}
		want := i%2 == 0
		if (val == "1") != want {
			t.Fatalf("message %d routing value %q, want match=%v", i, val, want)
		}
	}
}

func TestInvalidSOAPMessageFailsValidation(t *testing.T) {
	schema := OrderSchema()
	doc, err := xmldom.Parse(InvalidSOAPMessage(3))
	if err != nil {
		t.Fatal(err)
	}
	if errs := xsd.Validate(schema, doc); len(errs) == 0 {
		t.Fatal("modified message passed validation")
	}
}

func TestHTTPRequestParses(t *testing.T) {
	for _, uc := range AllUseCases {
		raw := HTTPRequest(5, uc)
		req, err := httpmsg.ParseRequest(raw)
		if err != nil {
			t.Fatalf("%v: %v", uc, err)
		}
		if req.Method != "POST" {
			t.Fatalf("%v method %s", uc, req.Method)
		}
		if req.ContentLength() != len(req.Body) {
			t.Fatalf("%v content length mismatch", uc)
		}
		if _, err := xmldom.Parse(req.Body); err != nil {
			t.Fatalf("%v body: %v", uc, err)
		}
	}
}

func TestUseCaseStrings(t *testing.T) {
	if FR.String() != "FR" || CBR.String() != "CBR" || SV.String() != "SV" {
		t.Fatal("use case names wrong")
	}
	if UseCase(9).String() != "invalid" {
		t.Fatal("invalid use case not flagged")
	}
	if len(AllUseCases) != 3 {
		t.Fatal("use case list wrong")
	}
}

func TestNetperfBuffer(t *testing.T) {
	b := NetperfBuffer(16 << 10)
	if len(b) != 16<<10 {
		t.Fatalf("buffer size %d", len(b))
	}
}
