//go:build linux && arm64

package hwcount

// sysPerfEventOpen is the perf_event_open(2) syscall number on arm64.
const sysPerfEventOpen = 241
