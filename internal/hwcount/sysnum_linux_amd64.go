//go:build linux && amd64

package hwcount

// sysPerfEventOpen is the perf_event_open(2) syscall number on x86-64.
const sysPerfEventOpen = 298
