// Package hwcount reads real on-chip performance counters for the live
// gateway — the hardware half of the paper's VTune methodology (Section
// 3.3). Where internal/perf/counters models the event bank inside the
// simulator, hwcount opens the genuine article through the Linux
// perf_event_open(2) syscall, cgo-free: an event set covering the paper's
// measurement list (cycles, instructions retired, last-level cache
// references/misses, branches retired/mispredicted), opened per-process
// so the whole serving path is attributed, and read with
// time_enabled/time_running scaling so multiplexed counters stay honest.
//
// The derived-metrics layer mirrors the paper's definitions exactly:
// CPI = clockticks / instructions retired, cache MPI (the L2MPI analog) =
// 100 x LLC misses / instructions, BrMPR = 100 x mispredicted branches /
// retired branches, branch frequency = 100 x branches / instructions.
//
// Hosts without perf access (unprivileged containers, CI, non-Linux) make
// Open return an error; callers degrade to internal/runstats and keep
// serving — counters are observability, never a hard dependency.
package hwcount

import "errors"

// Event identifies one hardware event in the fixed measurement set. The
// set matches the paper's VTune event list, translated to the generalized
// PERF_TYPE_HARDWARE events every perf-capable kernel exposes.
type Event int

const (
	// Cycles is PERF_COUNT_HW_CPU_CYCLES — the paper's clockticks.
	Cycles Event = iota
	// Instructions is PERF_COUNT_HW_INSTRUCTIONS — instructions retired.
	Instructions
	// CacheRefs is PERF_COUNT_HW_CACHE_REFERENCES — last-level cache
	// accesses, the denominator context for miss ratios.
	CacheRefs
	// CacheMisses is PERF_COUNT_HW_CACHE_MISSES — last-level cache
	// misses, the live analog of the paper's L2 misses.
	CacheMisses
	// Branches is PERF_COUNT_HW_BRANCH_INSTRUCTIONS — branches retired.
	Branches
	// BranchMisses is PERF_COUNT_HW_BRANCH_MISSES — mispredicted
	// branches retired.
	BranchMisses
	// NumEvents is the size of the fixed event set.
	NumEvents
)

var eventNames = [NumEvents]string{
	"cpu-cycles",
	"instructions",
	"cache-references",
	"cache-misses",
	"branch-instructions",
	"branch-misses",
}

func (e Event) String() string {
	if e < 0 || e >= NumEvents {
		return "invalid"
	}
	return eventNames[e]
}

// ErrUnsupported means this platform cannot open perf events at all
// (non-Linux build, or an architecture without a syscall number wired).
var ErrUnsupported = errors.New("hwcount: perf events unsupported on this platform")

// Counts is one scaled reading of the full event set.
type Counts [NumEvents]uint64

// Get returns event e's count.
func (c Counts) Get(e Event) uint64 { return c[e] }

// Sub returns c - old per event — the windowed delta between two reads.
func (c Counts) Sub(old Counts) Counts {
	var d Counts
	for i := range c {
		d[i] = c[i] - old[i]
	}
	return d
}

// Reading is one measurement: scaled counts plus the scheduling times
// that produced the scaling.
type Reading struct {
	Counts Counts
	// TimeEnabledNS and TimeRunningNS are the event-set scheduling times:
	// enabled is how long the set was armed, running how long it actually
	// occupied hardware counters. Running < enabled means the kernel
	// multiplexed the set and the counts were extrapolated.
	TimeEnabledNS uint64
	TimeRunningNS uint64
	// Multiplexed reports running < enabled for at least one event.
	Multiplexed bool
}

// ScaleValue extrapolates a raw counter value for multiplexing: when the
// kernel time-shares hardware counters across event sets, an event only
// counts while scheduled (time_running); scaling by enabled/running
// estimates the full-window value, the same correction perf(1) applies.
// A counter that never ran reads zero.
func ScaleValue(raw, enabledNS, runningNS uint64) uint64 {
	if runningNS == 0 {
		return 0
	}
	if runningNS >= enabledNS {
		return raw
	}
	return uint64(float64(raw) * float64(enabledNS) / float64(runningNS))
}

// Derived are the paper's ratio metrics computed from a live counter
// window, using exactly the Section 3.3 definitions.
type Derived struct {
	// CPI is cycles per instruction retired (paper Table 4).
	CPI float64 `json:"cpi"`
	// CacheMPI is last-level cache misses per instruction retired, as %
	// — the live analog of the paper's L2MPI.
	CacheMPI float64 `json:"cache_mpi_pct"`
	// CacheMissRatio is misses per cache reference, as %.
	CacheMissRatio float64 `json:"cache_miss_ratio_pct"`
	// BranchFreq is branches retired per instruction retired, as %
	// (paper Table 5).
	BranchFreq float64 `json:"branch_freq_pct"`
	// BrMPR is mispredicted branches per branch retired, as % (paper
	// Table 6).
	BrMPR float64 `json:"br_mpr_pct"`
}

// Derive computes the paper's metrics from one counter window.
func Derive(c Counts) Derived {
	var d Derived
	if instr := float64(c.Get(Instructions)); instr > 0 {
		d.CPI = float64(c.Get(Cycles)) / instr
		d.CacheMPI = 100 * float64(c.Get(CacheMisses)) / instr
		d.BranchFreq = 100 * float64(c.Get(Branches)) / instr
	}
	if refs := float64(c.Get(CacheRefs)); refs > 0 {
		d.CacheMissRatio = 100 * float64(c.Get(CacheMisses)) / refs
	}
	if br := float64(c.Get(Branches)); br > 0 {
		d.BrMPR = 100 * float64(c.Get(BranchMisses)) / br
	}
	return d
}

// EventsMap renders a Counts as an event-name-keyed map — the JSON shape
// the gateway's /stats counters section serves.
func (c Counts) EventsMap() map[string]uint64 {
	out := make(map[string]uint64, NumEvents)
	for e := Event(0); e < NumEvents; e++ {
		out[e.String()] = c[e]
	}
	return out
}
