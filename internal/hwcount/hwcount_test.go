package hwcount

import (
	"math"
	"runtime"
	"testing"
)

// inject builds a Counts from hand-written raw readings, applying the
// same per-event scaling the live read path applies.
func inject(raw [NumEvents]uint64, enabledNS, runningNS uint64) Counts {
	var c Counts
	for e := Event(0); e < NumEvents; e++ {
		c[e] = ScaleValue(raw[e], enabledNS, runningNS)
	}
	return c
}

// TestScaleValue pins the multiplexing extrapolation: raw * enabled /
// running, exact when the counter ran the whole window, zero when it
// never ran.
func TestScaleValue(t *testing.T) {
	cases := []struct {
		raw, enabled, running, want uint64
	}{
		{1000, 100, 100, 1000}, // ran the whole window: exact
		{1000, 100, 50, 2000},  // ran half the window: doubled
		{900, 300, 100, 2700},  // one third: tripled
		{1000, 100, 0, 0},      // never scheduled: zero, not a divide
		{0, 100, 50, 0},        // nothing counted scales to nothing
		{1000, 50, 100, 1000},  // running > enabled (clock skew): clamp to raw
	}
	for _, c := range cases {
		if got := ScaleValue(c.raw, c.enabled, c.running); got != c.want {
			t.Errorf("ScaleValue(%d,%d,%d)=%d want %d", c.raw, c.enabled, c.running, got, c.want)
		}
	}
}

// TestDeriveHandComputed feeds a hand-built counter window through
// Derive and checks every paper metric against the arithmetic done by
// hand: 10e9 cycles / 4e9 instr = CPI 2.5; 20e6 LLC misses / 4e9 instr =
// 0.5% cache MPI; 1e9 branches / 4e9 instr = 25% branch frequency;
// 30e6 mispredicts / 1e9 branches = 3% BrMPR; 20e6 misses / 80e6 refs =
// 25% miss ratio.
func TestDeriveHandComputed(t *testing.T) {
	var c Counts
	c[Cycles] = 10_000_000_000
	c[Instructions] = 4_000_000_000
	c[CacheRefs] = 80_000_000
	c[CacheMisses] = 20_000_000
	c[Branches] = 1_000_000_000
	c[BranchMisses] = 30_000_000

	d := Derive(c)
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
	if !approx(d.CPI, 2.5) {
		t.Errorf("CPI=%v want 2.5", d.CPI)
	}
	if !approx(d.CacheMPI, 0.5) {
		t.Errorf("CacheMPI=%v want 0.5", d.CacheMPI)
	}
	if !approx(d.CacheMissRatio, 25) {
		t.Errorf("CacheMissRatio=%v want 25", d.CacheMissRatio)
	}
	if !approx(d.BranchFreq, 25) {
		t.Errorf("BranchFreq=%v want 25", d.BranchFreq)
	}
	if !approx(d.BrMPR, 3) {
		t.Errorf("BrMPR=%v want 3", d.BrMPR)
	}
}

// TestDeriveScaledReadings chains scaling into derivation: raw readings
// from a counter set that ran only half its window must derive the same
// ratios as the unscaled ideal, because every event scales by the same
// factor — the property that makes multiplexed CPI trustworthy.
func TestDeriveScaledReadings(t *testing.T) {
	raw := [NumEvents]uint64{}
	raw[Cycles] = 5_000_000
	raw[Instructions] = 2_000_000
	raw[CacheRefs] = 40_000
	raw[CacheMisses] = 10_000
	raw[Branches] = 500_000
	raw[BranchMisses] = 15_000

	half := inject(raw, 2_000_000_000, 1_000_000_000) // multiplexed 50%
	full := inject(raw, 2_000_000_000, 2_000_000_000)

	if half.Get(Cycles) != 2*full.Get(Cycles) {
		t.Fatalf("scaled cycles %d, want doubled %d", half.Get(Cycles), 2*full.Get(Cycles))
	}
	dh, df := Derive(half), Derive(full)
	if math.Abs(dh.CPI-df.CPI) > 1e-9 || math.Abs(dh.BrMPR-df.BrMPR) > 1e-9 {
		t.Fatalf("ratios drifted under uniform scaling: half=%+v full=%+v", dh, df)
	}
	if math.Abs(dh.CPI-2.5) > 1e-9 {
		t.Fatalf("CPI=%v want 2.5", dh.CPI)
	}
}

// TestDeriveEmptyWindow keeps the zero window well-defined: no
// instructions means every per-instruction ratio is zero, not NaN/Inf.
func TestDeriveEmptyWindow(t *testing.T) {
	d := Derive(Counts{})
	if d.CPI != 0 || d.CacheMPI != 0 || d.BrMPR != 0 || d.BranchFreq != 0 || d.CacheMissRatio != 0 {
		t.Fatalf("zero window derived non-zero: %+v", d)
	}
}

// TestCountsSubAndMap covers windowed deltas and the /stats JSON shape.
func TestCountsSubAndMap(t *testing.T) {
	var prev, cur Counts
	for e := Event(0); e < NumEvents; e++ {
		prev[e] = uint64(100 * (int(e) + 1))
		cur[e] = uint64(250 * (int(e) + 1))
	}
	delta := cur.Sub(prev)
	for e := Event(0); e < NumEvents; e++ {
		if want := uint64(150 * (int(e) + 1)); delta.Get(e) != want {
			t.Fatalf("delta[%s]=%d want %d", e, delta.Get(e), want)
		}
	}
	m := delta.EventsMap()
	if len(m) != int(NumEvents) {
		t.Fatalf("events map has %d keys, want %d", len(m), NumEvents)
	}
	if m["cpu-cycles"] != delta.Get(Cycles) || m["branch-misses"] != delta.Get(BranchMisses) {
		t.Fatalf("events map mismatch: %v vs %v", m, delta)
	}
}

// TestOpenThreadLive opportunistically opens a per-thread event set from
// a pinned goroutine — the per-worker counter group path. On perf-denied
// hosts it verifies the error fallback instead. A busy loop on the
// pinned thread must show up in the thread-scoped counters.
func TestOpenThreadLive(t *testing.T) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	g, err := OpenThread()
	if err != nil {
		t.Skipf("per-thread perf events unavailable here (fallback path is live): %v", err)
	}
	defer g.Close()
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	r, err := g.Read()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if r.Counts.Get(Cycles) == 0 || r.Counts.Get(Instructions) == 0 {
		t.Fatalf("thread counters empty after busy loop on the pinned thread: %+v", r.Counts)
	}
	t.Logf("thread group: grouped=%v userOnly=%v cpi=%.2f",
		g.Grouped(), g.UserOnly(), Derive(r.Counts).CPI)
	if err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("second close not idempotent: %v", err)
	}
}

// TestSupportedMatchesOpen keeps the platform predicate honest: on a
// platform where Supported reports false, Open must fail with
// ErrUnsupported; where it reports true, Open may succeed or fail with
// the host's runtime denial, never ErrUnsupported-by-construction.
func TestSupportedMatchesOpen(t *testing.T) {
	if Supported() {
		return // runtime outcome is host-dependent; nothing to pin
	}
	if _, err := Open(); err != ErrUnsupported {
		t.Fatalf("unsupported platform Open error = %v, want ErrUnsupported", err)
	}
	if _, err := OpenThread(); err != ErrUnsupported {
		t.Fatalf("unsupported platform OpenThread error = %v, want ErrUnsupported", err)
	}
}

// TestOpenLive opportunistically opens the real event set. On hosts
// without perf access (no PMU, paranoid, seccomp) it verifies the error
// path instead — both outcomes are the contract.
func TestOpenLive(t *testing.T) {
	g, err := Open()
	if err != nil {
		t.Skipf("perf events unavailable here (fallback path is live): %v", err)
	}
	defer g.Close()
	// Burn some cycles so the window isn't empty.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	r, err := g.Read()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if r.Counts.Get(Cycles) == 0 || r.Counts.Get(Instructions) == 0 {
		t.Fatalf("live counters empty after busy loop: %+v", r.Counts)
	}
	if d := Derive(r.Counts); d.CPI <= 0 {
		t.Fatalf("live CPI %v, want > 0", d.CPI)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := g.Read(); err == nil {
		t.Fatal("read after close should fail")
	}
}
