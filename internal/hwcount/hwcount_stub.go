//go:build !linux || !(amd64 || arm64)

package hwcount

// Group is the unsupported-platform stand-in; Open never produces one.
type Group struct{}

// Supported reports that this platform cannot open perf events at all.
func Supported() bool { return false }

// Open always fails where perf_event_open is unavailable; callers fall
// back to runtime-metrics-only observability.
func Open() (*Group, error) { return nil, ErrUnsupported }

// OpenThread always fails where perf_event_open is unavailable.
func OpenThread() (*Group, error) { return nil, ErrUnsupported }

// Grouped reports false on unsupported platforms.
func (g *Group) Grouped() bool { return false }

// UserOnly reports false on unsupported platforms.
func (g *Group) UserOnly() bool { return false }

// Read never succeeds on unsupported platforms.
func (g *Group) Read() (Reading, error) { return Reading{}, ErrUnsupported }

// Close is a no-op on unsupported platforms.
func (g *Group) Close() error { return nil }
