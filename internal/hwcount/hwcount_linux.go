//go:build linux && (amd64 || arm64)

package hwcount

import (
	"encoding/binary"
	"fmt"
	"syscall"
	"unsafe"
)

// perf_event_attr constants (include/uapi/linux/perf_event.h). Only the
// fields and flags the fixed event set needs are named.
const (
	perfTypeHardware = 0

	// attrBits flag positions.
	attrDisabled      = 1 << 0
	attrInherit       = 1 << 1
	attrExcludeKernel = 1 << 5
	attrExcludeHV     = 1 << 6

	// read_format flags.
	fmtTotalTimeEnabled = 1 << 0
	fmtTotalTimeRunning = 1 << 1
	fmtGroup            = 1 << 3

	// perf_event_open flags.
	flagFDCloexec = 1 << 3

	// ioctls.
	iocEnable = 0x2400
	iocReset  = 0x2403
	iocFlagGroup = 1
)

// hwConfig maps the fixed event set to PERF_COUNT_HW_* config values.
var hwConfig = [NumEvents]uint64{
	Cycles:       0, // PERF_COUNT_HW_CPU_CYCLES
	Instructions: 1, // PERF_COUNT_HW_INSTRUCTIONS
	CacheRefs:    2, // PERF_COUNT_HW_CACHE_REFERENCES
	CacheMisses:  3, // PERF_COUNT_HW_CACHE_MISSES
	Branches:     4, // PERF_COUNT_HW_BRANCH_INSTRUCTIONS
	BranchMisses: 5, // PERF_COUNT_HW_BRANCH_MISSES
}

// perfEventAttr is struct perf_event_attr, PERF_ATTR_SIZE_VER8 (136
// bytes) — the kernel accepts any published size, older kernels reject
// the tail fields only if set, and everything past ReadFormat stays zero
// here except the flag bits.
type perfEventAttr struct {
	Type             uint32
	Size             uint32
	Config           uint64
	Sample           uint64
	SampleType       uint64
	ReadFormat       uint64
	Bits             uint64
	WakeupEvents     uint32
	BpType           uint32
	Ext1             uint64
	Ext2             uint64
	BranchSampleType uint64
	SampleRegsUser   uint64
	SampleStackUser  uint32
	ClockID          int32
	SampleRegsIntr   uint64
	AuxWatermark     uint32
	SampleMaxStack   uint16
	_                uint16
	AuxSampleSize    uint32
	_                uint32
	SigData          uint64
	Config3          uint64
}

// Group is one opened event set. Layouts:
//
//   - grouped: fds[0] is the group leader; one read on it returns every
//     sibling's value with shared time_enabled/time_running
//     (PERF_FORMAT_GROUP).
//   - independent: one fd per event, each read and scaled on its own —
//     the fallback when the kernel refuses grouped reads with inherit
//     (the common case; see Open).
type Group struct {
	fds      [NumEvents]int
	grouped  bool
	userOnly bool
	closed   bool
}

// Grouped reports whether the set was opened as a true perf event group.
func (g *Group) Grouped() bool { return g.grouped }

// UserOnly reports whether kernel-mode cycles are excluded — the
// unprivileged-profile concession when perf_event_paranoid demands it.
func (g *Group) UserOnly() bool { return g.userOnly }

// Supported reports that this platform can attempt perf_event_open at
// all. True here; whether the host actually grants events is decided by
// Open/OpenThread at runtime.
func Supported() bool { return true }

// Open opens the fixed event set for this process (pid 0, any CPU, with
// inherit so threads spawned after the open are counted — Go's scheduler
// creates most Ms lazily, so an Open at startup attributes the serving
// path). Strategies are tried in order of fidelity:
//
//  1. one perf event group (single atomic read, shared scaling)
//  2. independent per-event fds (per-event scaling) — most kernels
//     reject PERF_FORMAT_GROUP combined with inherit, so this is the
//     usual working mode
//
// and each strategy retries with exclude_kernel when the paranoid level
// denies kernel-mode counting. The first error of the last strategy is
// returned when nothing works (no PMU, seccomp, paranoid >= 3).
func Open() (*Group, error) { return openSet(true) }

// OpenThread opens the fixed event set scoped to the calling OS thread
// only (pid 0, no inherit): the per-worker counter group behind the
// gateway's per-worker CPI skew. The caller must pin its goroutine with
// runtime.LockOSThread *before* calling, and keep it pinned for the
// group's lifetime, or the readings attribute a thread the goroutine no
// longer runs on. Without inherit most kernels accept PERF_FORMAT_GROUP,
// so per-thread groups usually get the atomic grouped read that the
// process-wide set is denied.
func OpenThread() (*Group, error) { return openSet(false) }

func openSet(inherit bool) (*Group, error) {
	var lastErr error
	for _, grouped := range []bool{true, false} {
		for _, userOnly := range []bool{false, true} {
			g, err := open(grouped, userOnly, inherit)
			if err == nil {
				return g, nil
			}
			lastErr = err
		}
	}
	return nil, lastErr
}

func open(grouped, userOnly, inherit bool) (*Group, error) {
	g := &Group{grouped: grouped, userOnly: userOnly}
	for i := range g.fds {
		g.fds[i] = -1
	}
	for e := Event(0); e < NumEvents; e++ {
		attr := perfEventAttr{
			Type:   perfTypeHardware,
			Config: hwConfig[e],
			Bits:   attrExcludeHV,
		}
		if inherit {
			attr.Bits |= attrInherit
		}
		attr.Size = uint32(unsafe.Sizeof(attr))
		if userOnly {
			attr.Bits |= attrExcludeKernel
		}
		groupFD := -1
		if grouped {
			if e == Cycles {
				// Leader: opened disabled and armed once the set is
				// complete, carrying the group read format.
				attr.Bits |= attrDisabled
				attr.ReadFormat = fmtGroup | fmtTotalTimeEnabled | fmtTotalTimeRunning
			} else {
				groupFD = g.fds[Cycles]
			}
		} else {
			attr.ReadFormat = fmtTotalTimeEnabled | fmtTotalTimeRunning
		}
		fd, err := perfEventOpen(&attr, 0, -1, groupFD, flagFDCloexec)
		if err != nil {
			g.Close()
			return nil, fmt.Errorf("hwcount: open %s (grouped=%v user-only=%v): %w",
				e, grouped, userOnly, err)
		}
		g.fds[e] = fd
	}
	if grouped {
		if err := ioctl(g.fds[Cycles], iocReset, iocFlagGroup); err != nil {
			g.Close()
			return nil, fmt.Errorf("hwcount: reset group: %w", err)
		}
		if err := ioctl(g.fds[Cycles], iocEnable, iocFlagGroup); err != nil {
			g.Close()
			return nil, fmt.Errorf("hwcount: enable group: %w", err)
		}
	}
	return g, nil
}

// Read takes one scaled measurement of the whole set.
func (g *Group) Read() (Reading, error) {
	if g.closed {
		return Reading{}, fmt.Errorf("hwcount: read on closed group")
	}
	if g.grouped {
		return g.readGrouped()
	}
	return g.readIndependent()
}

// readGrouped parses the PERF_FORMAT_GROUP layout off the leader:
// nr, time_enabled, time_running, then one value per event in open
// order. The whole set shares one scaling window.
func (g *Group) readGrouped() (Reading, error) {
	buf := make([]byte, 8*(3+NumEvents))
	if err := readFull(g.fds[Cycles], buf); err != nil {
		return Reading{}, err
	}
	u64 := func(i int) uint64 { return binary.LittleEndian.Uint64(buf[8*i:]) }
	nr := u64(0)
	if nr != uint64(NumEvents) {
		return Reading{}, fmt.Errorf("hwcount: group read returned %d events, want %d", nr, NumEvents)
	}
	r := Reading{TimeEnabledNS: u64(1), TimeRunningNS: u64(2)}
	r.Multiplexed = r.TimeRunningNS < r.TimeEnabledNS
	for e := Event(0); e < NumEvents; e++ {
		r.Counts[e] = ScaleValue(u64(3+int(e)), r.TimeEnabledNS, r.TimeRunningNS)
	}
	return r, nil
}

// readIndependent reads each event fd on its own:
// value, time_enabled, time_running — each event scales by its own
// window, so unevenly multiplexed events stay individually honest.
func (g *Group) readIndependent() (Reading, error) {
	var r Reading
	var buf [24]byte
	for e := Event(0); e < NumEvents; e++ {
		if err := readFull(g.fds[e], buf[:]); err != nil {
			return Reading{}, fmt.Errorf("hwcount: read %s: %w", e, err)
		}
		raw := binary.LittleEndian.Uint64(buf[0:])
		enabled := binary.LittleEndian.Uint64(buf[8:])
		running := binary.LittleEndian.Uint64(buf[16:])
		r.Counts[e] = ScaleValue(raw, enabled, running)
		if enabled > r.TimeEnabledNS {
			r.TimeEnabledNS = enabled
		}
		if running > r.TimeRunningNS {
			r.TimeRunningNS = running
		}
		if running < enabled {
			r.Multiplexed = true
		}
	}
	return r, nil
}

// Close releases every event fd. Idempotent.
func (g *Group) Close() error {
	if g.closed {
		return nil
	}
	g.closed = true
	for i, fd := range g.fds {
		if fd >= 0 {
			syscall.Close(fd)
			g.fds[i] = -1
		}
	}
	return nil
}

func perfEventOpen(attr *perfEventAttr, pid, cpu, groupFD int, flags uintptr) (int, error) {
	fd, _, errno := syscall.Syscall6(sysPerfEventOpen,
		uintptr(unsafe.Pointer(attr)),
		uintptr(pid), uintptr(cpu), uintptr(groupFD), flags, 0)
	if errno != 0 {
		return -1, errno
	}
	return int(fd), nil
}

func ioctl(fd int, req, arg uintptr) error {
	_, _, errno := syscall.Syscall(syscall.SYS_IOCTL, uintptr(fd), req, arg)
	if errno != 0 {
		return errno
	}
	return nil
}

// readFull reads exactly len(buf) bytes from a counter fd; perf reads
// are atomic and never short on success, so a short read is an error.
func readFull(fd int, buf []byte) error {
	n, err := syscall.Read(fd, buf)
	if err != nil {
		return err
	}
	if n != len(buf) {
		return fmt.Errorf("hwcount: short counter read (%d of %d bytes)", n, len(buf))
	}
	return nil
}
