package upstream

import (
	"sync/atomic"

	"repro/internal/lhist"
)

// metrics is one backend's counter set, folded into the gateway's /stats
// snapshot so the upstream half of a forwarded round trip is observable
// next to the gateway's own service times.
type metrics struct {
	Forwarded atomic.Uint64 // successful round trips
	Retries   atomic.Uint64 // extra tries beyond the first
	Failures  atomic.Uint64 // failed tries (dial or IO)
	Timeouts  atomic.Uint64 // failed tries that were deadline expiries
	FastFails atomic.Uint64 // shed without dialing: circuit open
	Dials     atomic.Uint64 // pool misses (new sockets)
	PoolHits  atomic.Uint64 // pool hits (reused sockets)
	Downs     atomic.Uint64 // transitions to down
	Probes    atomic.Uint64 // background recovery probes attempted
	Prewarmed atomic.Uint64 // conns pre-dialed by the prober to the MinIdle floor
	Latency   lhist.Hist    // successful round-trip latency
}

// Snapshot is one backend's point-in-time JSON shape under the
// gateway's /stats "upstream" section.
type Snapshot struct {
	Addr      string         `json:"addr"`
	Healthy   bool           `json:"healthy"`
	Forwarded uint64         `json:"forwarded"`
	Retries   uint64         `json:"retries"`
	Failures  uint64         `json:"failures"`
	Timeouts  uint64         `json:"timeouts"`
	FastFails uint64         `json:"fastfail_down"`
	Dials     uint64         `json:"dials_pool_miss"`
	PoolHits  uint64         `json:"pool_hits"`
	OpenConns int64          `json:"open_conns"`
	IdleConns int            `json:"idle_conns"`
	Downs     uint64         `json:"marked_down"`
	Probes    uint64         `json:"probes"`
	Prewarmed uint64         `json:"prewarmed_conns"`
	Expired   uint64         `json:"expired_conns"`
	Latency   lhist.Snapshot `json:"latency"`
}

func (b *Backend) snapshot() Snapshot {
	return Snapshot{
		Addr:      b.addr,
		Healthy:   b.hp.healthy(),
		Forwarded: b.m.Forwarded.Load(),
		Retries:   b.m.Retries.Load(),
		Failures:  b.m.Failures.Load(),
		Timeouts:  b.m.Timeouts.Load(),
		FastFails: b.m.FastFails.Load(),
		Dials:     b.m.Dials.Load(),
		PoolHits:  b.m.PoolHits.Load(),
		OpenConns: b.pool.open.Load(),
		IdleConns: b.pool.idleCount(),
		Downs:     b.m.Downs.Load(),
		Probes:    b.m.Probes.Load(),
		Prewarmed: b.m.Prewarmed.Load(),
		Expired:   b.pool.expired.Load(),
		Latency:   b.m.Latency.Snapshot(),
	}
}
