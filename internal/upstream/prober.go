package upstream

import (
	"net"
	"time"
)

// The background prober moves all circuit recovery and pool maintenance
// off the request path. One goroutine per Forwarder wakes every
// ProbeInterval and, per backend:
//
//   - down backend: attempts a TCP connect within DialTimeout. Success
//     restores the circuit and the fresh socket is adopted into the pool
//     (it will serve the first post-recovery request); failure leaves the
//     circuit open until the next tick. Probe dials are counted in the
//     Probes metric, never in Dials — Dials stays a pure request-path
//     pool-miss counter.
//   - healthy backend with MinIdlePerBackend set: tops the idle set up
//     to the floor, so the first requests after startup or an idle lull
//     skip the dial+handshake entirely (counted in Prewarmed).
//
// The goroutine exits when Forwarder.Close is called; Close blocks until
// it has, so tests never leak it.

// maintain is the prober loop. It runs one pass immediately (pre-warm
// should not wait a full interval after startup) and then once per tick.
func (f *Forwarder) maintain() {
	defer f.wg.Done()
	t := time.NewTicker(f.cfg.ProbeInterval)
	defer t.Stop()
	for {
		for _, b := range f.backends {
			b.maintain()
		}
		select {
		case <-f.stop:
			return
		case <-t.C:
		}
	}
}

// maintain runs one prober pass for one backend: probe if down, then
// pre-warm up to the MinIdle floor while healthy.
func (b *Backend) maintain() {
	if !b.hp.healthy() {
		b.m.Probes.Add(1)
		c, err := net.DialTimeout("tcp", b.addr, b.cfg.DialTimeout)
		if err != nil {
			return // still down; next tick retries
		}
		b.hp.onSuccess()
		b.pool.adopt(c)
	}
	for b.cfg.MinIdlePerBackend > 0 && b.pool.idleCount() < b.cfg.MinIdlePerBackend {
		c, err := net.DialTimeout("tcp", b.addr, b.cfg.DialTimeout)
		if err != nil {
			return // backend struggling; request path will notice on its own
		}
		if !b.pool.adopt(c) {
			return // pool filled (or closed) concurrently
		}
		b.m.Prewarmed.Add(1)
	}
}
