package upstream

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// testRequest is a minimal framed POST the backend can discard.
func testRequest(n int) []byte {
	body := fmt.Sprintf(`<order><quantity>%d</quantity></order>`, n)
	return []byte(fmt.Sprintf(
		"POST /service/FR HTTP/1.1\r\nHost: order\r\nContent-Length: %d\r\n\r\n%s",
		len(body), body))
}

// fastCfg keeps retry/backoff/probe delays test-sized.
func fastCfg(order string) Config {
	return Config{
		Order:         order,
		DialTimeout:   500 * time.Millisecond,
		TryTimeout:    2 * time.Second,
		BackoffBase:   time.Millisecond,
		ProbeInterval: 25 * time.Millisecond,
	}
}

// TestPoolReuse: sequential round trips ride one keep-alive socket — one
// dial, the rest pool hits — and the idle/open gauges agree.
func TestPoolReuse(t *testing.T) {
	be, err := StartBackend("127.0.0.1:0", BackendConfig{Name: "order"})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	f, err := New(fastCfg(be.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const n = 10
	for i := 0; i < n; i++ {
		res, err := f.RoundTrip("order", testRequest(i))
		if err != nil {
			t.Fatalf("round trip %d: %v", i, err)
		}
		if res.Status != 200 || res.Backend != "order" {
			t.Fatalf("round trip %d: %+v", i, res)
		}
		if wantReused := i > 0; res.Reused != wantReused {
			t.Fatalf("round trip %d: reused=%v want %v", i, res.Reused, wantReused)
		}
	}
	s := f.Snapshot()["order"]
	if s.Dials != 1 || s.PoolHits != n-1 {
		t.Fatalf("dials=%d hits=%d, want 1/%d", s.Dials, s.PoolHits, n-1)
	}
	if s.OpenConns != 1 || s.IdleConns != 1 {
		t.Fatalf("open=%d idle=%d, want 1/1", s.OpenConns, s.IdleConns)
	}
	if s.Forwarded != n || s.Latency.Count != n {
		t.Fatalf("forwarded=%d latency.count=%d, want %d", s.Forwarded, s.Latency.Count, n)
	}
	if be.Requests.Load() != n {
		t.Fatalf("backend saw %d requests, want %d", be.Requests.Load(), n)
	}
}

// TestRetryThenSuccess: the backend drops the first two exchanges
// mid-flight; the forwarder re-dials and the third try wins.
func TestRetryThenSuccess(t *testing.T) {
	be, err := StartBackend("127.0.0.1:0", BackendConfig{Name: "order", FailFirst: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	cfg := fastCfg(be.Addr().String())
	cfg.Retries = 2
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	res, err := f.RoundTrip("order", testRequest(0))
	if err != nil {
		t.Fatalf("round trip should survive two injected failures: %v", err)
	}
	if res.Tries != 3 {
		t.Fatalf("tries=%d, want 3", res.Tries)
	}
	s := f.Snapshot()["order"]
	if s.Retries != 2 || s.Failures != 2 || s.Forwarded != 1 {
		t.Fatalf("retries=%d failures=%d forwarded=%d, want 2/2/1", s.Retries, s.Failures, s.Forwarded)
	}
	if !s.Healthy {
		t.Fatal("two failures under threshold 3 must not mark down")
	}
}

// TestDownFastFailAndRecovery is the circuit's life cycle: consecutive
// dial failures mark the backend down, traffic then sheds 502 without
// dialing, and once the backend returns, the background prober restores
// it and traffic flows again.
func TestDownFastFailAndRecovery(t *testing.T) {
	// Reserve a port, then close it so dials are refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cfg := fastCfg(addr)
	cfg.Retries = 0
	cfg.FailThreshold = 2
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for i := 0; i < 2; i++ {
		if _, err := f.RoundTrip("order", testRequest(i)); err == nil {
			t.Fatalf("round trip %d should fail against a closed port", i)
		} else if StatusFor(err) != 502 {
			t.Fatalf("round trip %d: status %d, want 502", i, StatusFor(err))
		}
	}
	s := f.Snapshot()["order"]
	if s.Healthy || s.Downs != 1 {
		t.Fatalf("after threshold failures: healthy=%v downs=%d", s.Healthy, s.Downs)
	}

	// Circuit open: fast-fail without another request-path dial (probing
	// is the background prober's job and never counts in Dials).
	dialsBefore := s.Dials
	if _, err := f.RoundTrip("order", testRequest(2)); !errors.Is(err, ErrDown) {
		t.Fatalf("want ErrDown while circuit open, got %v", err)
	}
	s = f.Snapshot()["order"]
	if s.Dials != dialsBefore || s.FastFails == 0 {
		t.Fatalf("fast-fail dialed: dials %d→%d fastfails=%d", dialsBefore, s.Dials, s.FastFails)
	}

	// Backend comes back on the same port; the background prober notices
	// within ProbeInterval and restores the circuit — requests only see
	// ErrDown until then.
	be, err := StartBackend(addr, BackendConfig{Name: "order"})
	if err != nil {
		t.Fatalf("restart backend on %s: %v", addr, err)
	}
	defer be.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := f.RoundTrip("order", testRequest(3))
		if err == nil {
			if res.Status != 200 {
				t.Fatalf("recovered round trip: %+v", res)
			}
			break
		}
		if !errors.Is(err, ErrDown) {
			t.Fatalf("while down, requests must fast-fail with ErrDown, got %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("backend never recovered: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	s = f.Snapshot()["order"]
	if !s.Healthy || s.Probes == 0 {
		t.Fatalf("after recovery: healthy=%v probes=%d", s.Healthy, s.Probes)
	}
}

// TestProberRestoresWithoutTraffic: recovery must not depend on request
// traffic at all — the background prober alone flips the circuit closed
// once the backend is back, and its probe socket is adopted into the
// pool so the first post-recovery request skips the dial.
func TestProberRestoresWithoutTraffic(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cfg := fastCfg(addr)
	cfg.Retries = 0
	cfg.FailThreshold = 1
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if _, err := f.RoundTrip("order", testRequest(0)); err == nil {
		t.Fatal("round trip should fail against a closed port")
	}
	if s := f.Snapshot()["order"]; s.Healthy {
		t.Fatal("one failure at threshold 1 must mark down")
	}

	be, err := StartBackend(addr, BackendConfig{Name: "order"})
	if err != nil {
		t.Fatalf("restart backend on %s: %v", addr, err)
	}
	defer be.Close()

	// No traffic from here on: only the prober can restore the circuit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := f.Snapshot()["order"]
		if s.Healthy {
			if s.Probes == 0 {
				t.Fatalf("restored without a probe? %+v", s)
			}
			if s.IdleConns == 0 {
				t.Fatalf("probe socket not adopted into the pool: %+v", s)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober never restored the backend: %+v", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
	res, err := f.RoundTrip("order", testRequest(1))
	if err != nil || res.Status != 200 {
		t.Fatalf("post-recovery round trip: res=%+v err=%v", res, err)
	}
	if s := f.Snapshot()["order"]; s.PoolHits == 0 {
		t.Fatalf("post-recovery request should ride the adopted socket: %+v", s)
	}
}

// TestPrewarmMinIdle: with a MinIdle floor the prober fills the pool
// before any traffic, and the first requests are pool hits — zero
// request-path dials.
func TestPrewarmMinIdle(t *testing.T) {
	be, err := StartBackend("127.0.0.1:0", BackendConfig{Name: "order"})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	cfg := fastCfg(be.Addr().String())
	cfg.MinIdlePerBackend = 4
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		s := f.Snapshot()["order"]
		if s.IdleConns >= 4 {
			if s.Prewarmed < 4 {
				t.Fatalf("idle floor reached with prewarmed=%d", s.Prewarmed)
			}
			if s.Dials != 0 {
				t.Fatalf("pre-warming must not count as request dials: %+v", s)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never pre-warmed to 4: %+v", s)
		}
		time.Sleep(5 * time.Millisecond)
	}

	res, err := f.RoundTrip("order", testRequest(0))
	if err != nil || res.Status != 200 {
		t.Fatalf("round trip: res=%+v err=%v", res, err)
	}
	if s := f.Snapshot()["order"]; s.Dials != 0 || s.PoolHits != 1 {
		t.Fatalf("first request should be a pool hit on a pre-warmed conn: dials=%d hits=%d",
			s.Dials, s.PoolHits)
	}
}

// TestMaxLifetimeEviction: a pooled conn older than MaxConnLifetime is
// evicted at checkout and replaced with a fresh dial, and the eviction
// is counted.
func TestMaxLifetimeEviction(t *testing.T) {
	be, err := StartBackend("127.0.0.1:0", BackendConfig{Name: "order"})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	cfg := fastCfg(be.Addr().String())
	cfg.MaxConnLifetime = 30 * time.Millisecond
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if _, err := f.RoundTrip("order", testRequest(0)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // pooled conn outlives its lifetime

	res, err := f.RoundTrip("order", testRequest(1))
	if err != nil || res.Status != 200 {
		t.Fatalf("round trip after expiry: res=%+v err=%v", res, err)
	}
	if res.Reused {
		t.Fatal("expired conn must not be reused")
	}
	s := f.Snapshot()["order"]
	if s.Dials != 2 || s.Expired == 0 {
		t.Fatalf("dials=%d expired=%d, want 2 dials and >0 evictions", s.Dials, s.Expired)
	}
	if s.Forwarded != 2 {
		t.Fatalf("forwarded=%d, want 2", s.Forwarded)
	}
}

// TestTryTimeoutMapsTo504: a backend slower than the per-try deadline is
// a 504, counted as a timeout, and the round trip returns promptly.
func TestTryTimeoutMapsTo504(t *testing.T) {
	be, err := StartBackend("127.0.0.1:0", BackendConfig{Name: "order", Delay: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	cfg := fastCfg(be.Addr().String())
	cfg.TryTimeout = 30 * time.Millisecond
	cfg.Retries = 1
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	t0 := time.Now()
	_, err = f.RoundTrip("order", testRequest(0))
	if err == nil {
		t.Fatal("want timeout error")
	}
	if StatusFor(err) != 504 {
		t.Fatalf("status %d, want 504 (%v)", StatusFor(err), err)
	}
	if el := time.Since(t0); el > 2*time.Second {
		t.Fatalf("timed-out round trip took %v — per-try deadline not enforced", el)
	}
	if s := f.Snapshot()["order"]; s.Timeouts == 0 {
		t.Fatalf("timeouts=%d, want >0", s.Timeouts)
	}
}

// TestNoBackendRoute: a route without a configured backend is the
// caller's cue to answer in place.
func TestNoBackendRoute(t *testing.T) {
	be, err := StartBackend("127.0.0.1:0", BackendConfig{Name: "order"})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	f, err := New(fastCfg(be.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Has("error") {
		t.Fatal("error route should be unconfigured")
	}
	if _, err := f.RoundTrip("error", testRequest(0)); !errors.Is(err, ErrNoBackend) {
		t.Fatalf("want ErrNoBackend, got %v", err)
	}
}

// TestConfigValidation: disabled config and junk addresses are rejected.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New on empty config should fail")
	}
	if _, err := New(Config{Order: "no-port"}); err == nil {
		t.Fatal("New on a port-less address should fail")
	}
}

// TestReadResponse pins the response parser: keep-alive detection and
// malformed input.
func TestReadResponse(t *testing.T) {
	res, ka, err := readResponse(bufio.NewReader(strings.NewReader(
		"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\nhi")))
	if err != nil || !ka || res.Status != 200 || string(res.Body) != "hi" {
		t.Fatalf("res=%+v ka=%v err=%v", res, ka, err)
	}
	_, ka, err = readResponse(bufio.NewReader(strings.NewReader(
		"HTTP/1.1 502 Bad Gateway\r\nConnection: close\r\nContent-Length: 0\r\n\r\n")))
	if err != nil || ka {
		t.Fatalf("Connection: close not detected (ka=%v err=%v)", ka, err)
	}
	if _, _, err := readResponse(bufio.NewReader(strings.NewReader("garbage\r\n\r\n"))); err == nil {
		t.Fatal("malformed status line should error")
	}
}

// TestBackendKeepAlive: the backend serves sequential requests on one
// connection and pads responses to the configured size.
func TestBackendKeepAlive(t *testing.T) {
	be, err := StartBackend("127.0.0.1:0", BackendConfig{Name: "error", RespBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	c, err := net.Dial("tcp", be.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	br := bufio.NewReader(c)
	for i := 0; i < 3; i++ {
		if _, err := c.Write(testRequest(i)); err != nil {
			t.Fatal(err)
		}
		res, ka, err := readResponse(br)
		if err != nil || !ka || res.Status != 200 {
			t.Fatalf("req %d: res=%+v ka=%v err=%v", i, res, ka, err)
		}
		if len(res.Body) < 500 || !strings.Contains(string(res.Body), `"backend":"error"`) {
			t.Fatalf("req %d: body %d bytes: %.80s", i, len(res.Body), res.Body)
		}
	}
	if got := be.Requests.Load(); got != 3 {
		t.Fatalf("backend requests=%d, want 3", got)
	}
}

// TestBackendStats pins the backend's /stats control plane: GET /stats
// answers the live counter JSON (request counts, fault-injection state,
// latency histogram) on the same keep-alive socket the data plane uses,
// without counting itself as a message or tripping fault injection.
func TestBackendStats(t *testing.T) {
	be, err := StartBackend("127.0.0.1:0", BackendConfig{
		Name: "order", Delay: 2 * time.Millisecond, FailFirst: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()

	get := func(c net.Conn, br *bufio.Reader, path string) (int, string) {
		t.Helper()
		if _, err := fmt.Fprintf(c, "GET %s HTTP/1.1\r\nHost: order\r\n\r\n", path); err != nil {
			t.Fatal(err)
		}
		res, _, err := readResponse(br)
		if err != nil {
			t.Fatal(err)
		}
		return res.Status, string(res.Body)
	}

	c, err := net.Dial("tcp", be.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	br := bufio.NewReader(c)

	// Before any message: fault injection armed, zero requests.
	status, body := get(c, br, "/stats")
	if status != 200 {
		t.Fatalf("/stats status=%d body=%s", status, body)
	}
	for _, want := range []string{`"name": "order"`, `"requests": 0`, `"fail_first": 1`, `"fault_active": true`, `"t_ms"`, `"latency"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/stats missing %s:\n%s", want, body)
		}
	}

	// First POST trips the injected fault (connection dropped)...
	if _, err := c.Write(testRequest(0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readResponse(br); err == nil {
		t.Fatal("injected fault did not drop the connection")
	}
	// ...the second, on a fresh socket, is served.
	c2, err := net.Dial("tcp", be.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	br2 := bufio.NewReader(c2)
	if _, err := c2.Write(testRequest(1)); err != nil {
		t.Fatal(err)
	}
	if res, _, err := readResponse(br2); err != nil || res.Status != 200 {
		t.Fatalf("post-fault request: res=%+v err=%v", res, err)
	}

	status, body = get(c2, br2, "/stats")
	if status != 200 {
		t.Fatalf("/stats status=%d", status)
	}
	for _, want := range []string{`"requests": 1`, `"dropped": 1`, `"fault_active": false`, `"delay_ms": 2`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/stats missing %s:\n%s", want, body)
		}
	}
	// The served message's latency (>= the 2ms delay) landed in the hist.
	if !strings.Contains(body, `"count": 1`) {
		t.Fatalf("latency histogram not populated:\n%s", body)
	}
	if be.Stats().Latency.P50US < 2000 {
		t.Fatalf("latency p50=%dus, want >= delay 2000us", be.Stats().Latency.P50US)
	}

	// Unknown GET paths 404 but keep the connection usable.
	if status, _ = get(c2, br2, "/nope"); status != 404 {
		t.Fatalf("GET /nope status=%d want 404", status)
	}
	if _, err := c2.Write(testRequest(2)); err != nil {
		t.Fatal(err)
	}
	if res, _, err := readResponse(br2); err != nil || res.Status != 200 {
		t.Fatalf("request after 404: res=%+v err=%v", res, err)
	}
}
