package upstream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"strings"
	"testing"
	"time"
)

// postFault sends a raw POST /fault with the given JSON body and decodes
// the returned state.
func postFault(t *testing.T, c net.Conn, br *bufio.Reader, spec string) FaultState {
	t.Helper()
	if _, err := fmt.Fprintf(c, "POST /fault HTTP/1.1\r\nHost: order\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s", len(spec), spec); err != nil {
		t.Fatal(err)
	}
	res, _, err := readResponse(br)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 {
		t.Fatalf("POST /fault status=%d body=%s", res.Status, res.Body)
	}
	var st FaultState
	if err := json.Unmarshal(res.Body, &st); err != nil {
		t.Fatalf("POST /fault body: %v\n%s", err, res.Body)
	}
	return st
}

// TestFaultEndpoint drives the backend's runtime fault control plane:
// POST /fault scripts error-rate, fail-next, latency-inflation, and
// outage faults mid-run; GET /fault reads the state back; clear resets.
func TestFaultEndpoint(t *testing.T) {
	be, err := StartBackend("127.0.0.1:0", BackendConfig{Name: "order"})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()

	c, err := net.Dial("tcp", be.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	br := bufio.NewReader(c)

	// error_rate=1: every message answers an injected 500 on the same
	// keep-alive socket (a served response, not a dropped connection).
	st := postFault(t, c, br, `{"error_rate":1}`)
	if !st.Active || st.ErrorRate != 1 {
		t.Fatalf("state after error_rate=1: %+v", st)
	}
	if _, err := c.Write(testRequest(0)); err != nil {
		t.Fatal(err)
	}
	res, _, err := readResponse(br)
	if err != nil || res.Status != 500 {
		t.Fatalf("under error_rate=1: res=%+v err=%v", res, err)
	}
	if !strings.Contains(string(res.Body), `"error": "injected"`) {
		t.Fatalf("injected 500 body: %s", res.Body)
	}

	// clear + fail_next=1: next message drops the connection.
	st = postFault(t, c, br, `{"clear":true,"fail_next":1}`)
	if st.ErrorRate != 0 || st.FailNext != 1 {
		t.Fatalf("state after clear+fail_next: %+v", st)
	}
	if _, err := c.Write(testRequest(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readResponse(br); err == nil {
		t.Fatal("fail_next did not drop the connection")
	}

	// Fresh socket: budget exhausted, message served; extra delay shows
	// up in the observed latency.
	c2, err := net.Dial("tcp", be.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	br2 := bufio.NewReader(c2)
	postFault(t, c2, br2, `{"extra_delay_ms":5}`)
	t0 := time.Now()
	if _, err := c2.Write(testRequest(2)); err != nil {
		t.Fatal(err)
	}
	if res, _, err := readResponse(br2); err != nil || res.Status != 200 {
		t.Fatalf("post-budget request: res=%+v err=%v", res, err)
	}
	if d := time.Since(t0); d < 5*time.Millisecond {
		t.Fatalf("extra_delay_ms not applied: round trip %v", d)
	}

	// GET /fault reads the state without changing it.
	if _, err := fmt.Fprintf(c2, "GET /fault HTTP/1.1\r\nHost: order\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	res, _, err = readResponse(br2)
	if err != nil || res.Status != 200 {
		t.Fatalf("GET /fault: res=%+v err=%v", res, err)
	}
	var got FaultState
	if err := json.Unmarshal(res.Body, &got); err != nil {
		t.Fatal(err)
	}
	if got.ExtraDelayMS != 5 || !got.Active || got.Dropped != 1 || got.Errored != 1 {
		t.Fatalf("GET /fault state: %+v", got)
	}

	// down_ms: messages are dropped for the window, control plane stays
	// up, and the window expires on its own.
	postFault(t, c2, br2, `{"clear":true,"down_ms":150}`)
	c3, err := net.Dial("tcp", be.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	br3 := bufio.NewReader(c3)
	if _, err := c3.Write(testRequest(3)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readResponse(br3); err == nil {
		t.Fatal("down window did not drop the message")
	}
	// Control plane survives the outage.
	if st := postFault(t, c2, br2, ``); st.DownRemainingMS <= 0 {
		t.Fatalf("state during outage: %+v", st)
	}
	time.Sleep(160 * time.Millisecond)
	c4, err := net.Dial("tcp", be.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c4.Close()
	br4 := bufio.NewReader(c4)
	if _, err := c4.Write(testRequest(4)); err != nil {
		t.Fatal(err)
	}
	if res, _, err := readResponse(br4); err != nil || res.Status != 200 {
		t.Fatalf("post-outage request: res=%+v err=%v", res, err)
	}

	// /stats carries the fault section and injected-error counters.
	stats := be.Stats()
	if stats.Errored != 1 || stats.Dropped != 2 || stats.FaultPosts < 4 {
		t.Fatalf("stats: errored=%d dropped=%d fault_posts=%d", stats.Errored, stats.Dropped, stats.FaultPosts)
	}
}

// TestErrorHitDeterministic pins the error-rate draw: the same (seq,
// seed) always decides the same way, distinct seeds decide differently,
// and the hit fraction tracks the configured rate.
func TestErrorHitDeterministic(t *testing.T) {
	mk := func(seed uint64, rate float64) *BackendServer {
		s := &BackendServer{cfg: BackendConfig{Seed: seed}}
		s.errRateBits.Store(math.Float64bits(rate))
		return s
	}
	const n = 10000
	a, b := mk(1, 0.3), mk(1, 0.3)
	hits := 0
	for i := uint64(1); i <= n; i++ {
		ha, hb := a.errorHit(i), b.errorHit(i)
		if ha != hb {
			t.Fatalf("seq %d: same seed disagrees", i)
		}
		if ha {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("hit fraction %.3f, want ~0.30", frac)
	}
	other := mk(2, 0.3)
	diff := 0
	for i := uint64(1); i <= 1000; i++ {
		if other.errorHit(i) != a.errorHit(i) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("distinct seeds produced identical error streams")
	}
	if mk(1, 0).errorHit(7) {
		t.Fatal("rate 0 must never hit")
	}
	if !mk(1, 1).errorHit(7) {
		t.Fatal("rate 1 must always hit")
	}
}
