// Package upstream turns the live gateway into a true forwarding proxy —
// the missing half of the paper's topology. The AON device under test is
// a *proxy*: FR is "HTTP Forward Request" and CBR/SV route messages
// onward to an order or error endpoint (Section 3.2.1), so the network
// I/O half of the I/O↔CPU spectrum (the FR extreme of Figures 5/6) only
// exists end-to-end when the gateway actually forwards to a separate
// backend over the network instead of answering in place.
//
// The subsystem is a router (pipeline outcome → backend) over per-backend
// resilient transports: a bounded keep-alive connection pool with dial
// and per-try deadlines, optional pre-warm floor and max-lifetime
// eviction, bounded retries with jittered exponential backoff on dial/IO
// failure, and circuit-style health marking so a dead backend costs a
// fast 502, not a pileup of dial timeouts. Recovery probing and pool
// pre-warming run on a background goroutine (prober.go), never on the
// request path. Per-backend counters and latency histograms fold into
// the gateway's /stats.
package upstream

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Config parameterizes the forwarder. Zero-valued knobs take the
// defaults documented per field; an entirely zero Config disables
// forwarding (Enabled returns false) and the gateway answers in place,
// exactly as before backends existed.
type Config struct {
	// Order and Error are the TCP addresses of the paper's two endpoints.
	// Messages whose pipeline outcome routes to "order" go to Order,
	// "error"-routed messages to Error. Either may be empty; a route with
	// no backend is answered in place by the gateway.
	Order string
	Error string
	// MaxIdlePerBackend bounds each backend's keep-alive idle set
	// (default 8).
	MaxIdlePerBackend int
	// MinIdlePerBackend is the pre-warm floor: the background prober
	// keeps at least this many idle conns per healthy backend, so the
	// first requests after startup or an idle lull skip the dial
	// (0 = no pre-warming). Clamped to MaxIdlePerBackend.
	MinIdlePerBackend int
	// MaxConnLifetime evicts pooled conns older than this at checkout
	// and checkin (0 = no limit).
	MaxConnLifetime time.Duration
	// DialTimeout bounds connection establishment (default 1s).
	DialTimeout time.Duration
	// TryTimeout is the per-try write+read deadline (default 5s).
	TryTimeout time.Duration
	// Retries is the number of extra tries after the first on dial/IO
	// failure (default 2). Negative means no retries.
	Retries int
	// BackoffBase seeds the jittered exponential backoff between tries
	// (default 5ms; doubled per retry, plus up to one base of jitter).
	BackoffBase time.Duration
	// FailThreshold is the consecutive-failure count that marks a backend
	// down (default 3).
	FailThreshold int
	// ProbeInterval is the background prober's wake-up period: down
	// backends get one connect probe, healthy pools get topped up to
	// MinIdlePerBackend, once per interval (default 1s).
	ProbeInterval time.Duration
}

// Enabled reports whether any backend is configured.
func (c Config) Enabled() bool { return c.Order != "" || c.Error != "" }

func (c Config) withDefaults() Config {
	if c.MaxIdlePerBackend <= 0 {
		c.MaxIdlePerBackend = 8
	}
	if c.MinIdlePerBackend < 0 {
		c.MinIdlePerBackend = 0
	}
	if c.MinIdlePerBackend > c.MaxIdlePerBackend {
		c.MinIdlePerBackend = c.MaxIdlePerBackend
	}
	if c.MaxConnLifetime < 0 {
		c.MaxConnLifetime = 0
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = time.Second
	}
	if c.TryTimeout <= 0 {
		c.TryTimeout = 5 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 5 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	return c
}

// Sentinel errors; StatusFor maps them (and raw net errors) to the
// gateway status code.
var (
	// ErrDown fast-fails a round trip while the backend circuit is open.
	ErrDown = errors.New("upstream: backend down")
	// ErrNoBackend means the route has no configured backend; the caller
	// answers in place.
	ErrNoBackend = errors.New("upstream: no backend for route")
)

// StatusFor maps a RoundTrip error to the client-facing status: 504 for
// deadline expiry (the backend exists but did not answer in time), 502
// for everything else (dial refused, IO failure, circuit open).
func StatusFor(err error) int {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return 504
	}
	return 502
}

// Result is one successful upstream round trip.
type Result struct {
	Status      int
	ContentType string
	Body        []byte
	Backend     string // backend name ("order"/"error")
	Addr        string
	Reused      bool // the winning try used a pooled connection
	Tries       int  // total tries spent (1 = first try won)
}

// Backend is one resilient upstream transport: address, pool, circuit
// state, counters.
type Backend struct {
	name string
	addr string
	cfg  Config
	pool *pool
	hp   health
	m    metrics
}

// Forwarder routes pipeline outcomes to backends and owns the
// background prober goroutine.
type Forwarder struct {
	cfg      Config
	backends map[string]*Backend

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New builds a forwarder from the configured backends. Callers should
// check cfg.Enabled() first; New on a disabled config returns an error.
func New(cfg Config) (*Forwarder, error) {
	if !cfg.Enabled() {
		return nil, errors.New("upstream: no backends configured")
	}
	cfg = cfg.withDefaults()
	f := &Forwarder{cfg: cfg, backends: map[string]*Backend{}, stop: make(chan struct{})}
	for name, addr := range map[string]string{"order": cfg.Order, "error": cfg.Error} {
		if addr == "" {
			continue
		}
		if _, _, err := net.SplitHostPort(addr); err != nil {
			return nil, fmt.Errorf("upstream: bad %s backend address %q: %w", name, addr, err)
		}
		f.backends[name] = &Backend{
			name: name,
			addr: addr,
			cfg:  cfg,
			pool: newPool(addr, cfg.MaxIdlePerBackend, cfg.DialTimeout, cfg.MaxConnLifetime),
		}
	}
	f.wg.Add(1)
	go f.maintain()
	return f, nil
}

// Has reports whether a route has a configured backend.
func (f *Forwarder) Has(route string) bool {
	_, ok := f.backends[route]
	return ok
}

// Backend exposes one backend (nil if the route is unconfigured) —
// used by tests and the sweep reporter.
func (f *Forwarder) Backend(route string) *Backend { return f.backends[route] }

// Snapshot reads every backend's counters, keyed by route name.
func (f *Forwarder) Snapshot() map[string]Snapshot {
	out := make(map[string]Snapshot, len(f.backends))
	for name, b := range f.backends {
		out[name] = b.snapshot()
	}
	return out
}

// Close stops the background prober (blocking until its goroutine has
// exited, so tests don't leak it) and tears down every pool's idle
// sockets. Safe to call more than once.
func (f *Forwarder) Close() {
	f.closeOnce.Do(func() {
		close(f.stop)
		f.wg.Wait()
		for _, b := range f.backends {
			b.pool.Close()
		}
	})
}

// RoundTrip forwards one raw HTTP request to the route's backend and
// returns the parsed response. It retries dial/IO failures with jittered
// backoff, fast-fails while the circuit is open, and never blocks past
// (Retries+1) × (TryTimeout + backoff).
func (f *Forwarder) RoundTrip(route string, raw []byte) (*Result, error) {
	return f.RoundTripBuffers(route, raw, nil)
}

// RoundTripBuffers is RoundTrip for callers that keep the request header
// and body in separate buffers (the gateway's zero-copy forward path):
// the two segments go out in one vectored write (writev), so the body —
// typically a view into the pooled request frame — is never copied into
// a combined buffer. Both slices must stay valid until the call returns.
func (f *Forwarder) RoundTripBuffers(route string, head, body []byte) (*Result, error) {
	b, ok := f.backends[route]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoBackend, route)
	}
	return b.roundTrip(head, body)
}

func (b *Backend) roundTrip(head, body []byte) (*Result, error) {
	var lastErr error
	tries := b.cfg.Retries + 1
	for try := 1; try <= tries; try++ {
		if try > 1 {
			b.m.Retries.Add(1)
			b.backoff(try - 1)
		}
		if !b.hp.healthy() {
			// Circuit open: retrying locally is pointless, the caller sheds
			// with 502 immediately. The background prober owns recovery.
			b.m.FastFails.Add(1)
			return nil, fmt.Errorf("%s %s: %w", b.name, b.addr, ErrDown)
		}
		t0 := time.Now()
		res, err := b.try(head, body)
		if err == nil {
			b.hp.onSuccess()
			b.m.Forwarded.Add(1)
			b.m.Latency.Observe(time.Since(t0))
			res.Backend, res.Addr, res.Tries = b.name, b.addr, try
			return res, nil
		}
		lastErr = err
		b.m.Failures.Add(1)
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			b.m.Timeouts.Add(1)
		}
		if b.hp.onFailure(b.cfg.FailThreshold) {
			b.m.Downs.Add(1)
		}
	}
	return nil, fmt.Errorf("upstream %s %s: %w", b.name, b.addr, lastErr)
}

// backoff sleeps the jittered exponential delay before retry n (1-based).
func (b *Backend) backoff(n int) {
	d := b.cfg.BackoffBase << uint(n-1)
	d += time.Duration(rand.Int64N(int64(b.cfg.BackoffBase) + 1))
	time.Sleep(d)
}

// try performs one attempt on one connection: checkout (pool hit or
// fresh dial), per-try deadline, vectored write, read a full response.
// Any IO error closes the socket — a keep-alive conn in unknown state
// must not return to the pool. The net.Buffers is rebuilt per try:
// WriteTo consumes its receiver, and a partially-written first try must
// not leak its progress into the retry.
func (b *Backend) try(head, body []byte) (*Result, error) {
	pc, pooled, err := b.pool.get()
	if err != nil {
		b.m.Dials.Add(1) // the miss happened even though the dial failed
		return nil, err
	}
	if pooled {
		b.m.PoolHits.Add(1)
	} else {
		b.m.Dials.Add(1)
	}
	pc.c.SetDeadline(time.Now().Add(b.cfg.TryTimeout))
	if len(body) > 0 {
		nb := net.Buffers{head, body}
		if _, err := nb.WriteTo(pc.c); err != nil {
			b.pool.discard(pc)
			return nil, err
		}
	} else if _, err := pc.c.Write(head); err != nil {
		b.pool.discard(pc)
		return nil, err
	}
	res, keepAlive, err := readResponse(pc.br)
	if err != nil {
		b.pool.discard(pc)
		return nil, err
	}
	pc.c.SetDeadline(time.Time{})
	res.Reused = pc.reused
	if keepAlive {
		b.pool.put(pc)
	} else {
		b.pool.discard(pc)
	}
	return res, nil
}

// readResponse parses status line, headers (capturing Content-Type,
// Content-Length, Connection), and the body. keepAlive reports whether
// the socket may be pooled afterwards.
func readResponse(br *bufio.Reader) (res *Result, keepAlive bool, err error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, false, err
	}
	parts := strings.SplitN(strings.TrimRight(line, "\r\n"), " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return nil, false, fmt.Errorf("upstream: malformed status line %q", line)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, false, fmt.Errorf("upstream: bad status %q", parts[1])
	}
	res = &Result{Status: status}
	keepAlive = true
	clen := 0
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, false, err
		}
		h := strings.TrimRight(line, "\r\n")
		if h == "" {
			break
		}
		i := strings.IndexByte(h, ':')
		if i <= 0 {
			continue
		}
		name, val := strings.TrimSpace(h[:i]), strings.TrimSpace(h[i+1:])
		switch {
		case strings.EqualFold(name, "Content-Length"):
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, false, fmt.Errorf("upstream: bad Content-Length %q", val)
			}
			clen = n
		case strings.EqualFold(name, "Content-Type"):
			res.ContentType = val
		case strings.EqualFold(name, "Connection"):
			if strings.EqualFold(val, "close") {
				keepAlive = false
			}
		}
	}
	if clen > 0 {
		res.Body = make([]byte, clen)
		if _, err := io.ReadFull(br, res.Body); err != nil {
			return nil, false, err
		}
	}
	return res, keepAlive, nil
}
