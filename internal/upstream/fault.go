package upstream

import (
	"encoding/json"
	"math"
	"time"
)

// FaultSpec is the POST /fault request body: each non-nil field replaces
// that dimension of the backend's runtime fault state, nil fields leave
// it alone, and Clear resets everything first. Campaigns script fault
// storms by POSTing a sequence of these at phase boundaries.
type FaultSpec struct {
	// FailNext drops the connection (no response) for the next N message
	// requests — the same fault -fail-first injects at process start.
	FailNext *int64 `json:"fail_next,omitempty"`
	// ErrorRate answers the given fraction [0,1] of message requests
	// with an injected 500. Selection is deterministic: it hashes the
	// request sequence number with the backend seed, so a campaign rerun
	// errors the same requests.
	ErrorRate *float64 `json:"error_rate,omitempty"`
	// ExtraDelayMS inflates every message response by this much on top
	// of the configured service delay.
	ExtraDelayMS *float64 `json:"extra_delay_ms,omitempty"`
	// DownMS drops every message request for this long from now — a
	// scripted outage window. The /stats and /fault control plane stays
	// up throughout.
	DownMS *float64 `json:"down_ms,omitempty"`
	// Clear resets all fault state before applying the other fields.
	Clear bool `json:"clear,omitempty"`
}

// FaultState is the backend's live fault-injection state, returned by
// GET /fault and by every POST /fault (after applying the spec), and
// embedded in /stats.
type FaultState struct {
	FailNext        int64   `json:"fail_next"`
	ErrorRate       float64 `json:"error_rate"`
	ExtraDelayMS    float64 `json:"extra_delay_ms"`
	DownRemainingMS float64 `json:"down_remaining_ms"`
	Active          bool    `json:"active"`
	Dropped         uint64  `json:"dropped"`
	Errored         uint64  `json:"errored"`
}

// ApplyFault folds a fault spec into the runtime state and returns the
// resulting state. The application is timestamped into /stats
// (last_fault_unix_ms) so a post-mortem can tell from the backend side
// when a storm step actually landed.
func (s *BackendServer) ApplyFault(spec FaultSpec) FaultState {
	s.lastFaultMS.Store(time.Now().UnixMilli())
	if spec.Clear {
		s.failNext.Store(0)
		s.errRateBits.Store(0)
		s.extraDelayNS.Store(0)
		s.downUntilNS.Store(0)
	}
	if spec.FailNext != nil {
		n := *spec.FailNext
		if n < 0 {
			n = 0
		}
		s.failNext.Store(n)
	}
	if spec.ErrorRate != nil {
		r := math.Min(math.Max(*spec.ErrorRate, 0), 1)
		s.errRateBits.Store(math.Float64bits(r))
	}
	if spec.ExtraDelayMS != nil && *spec.ExtraDelayMS >= 0 {
		s.extraDelayNS.Store(int64(*spec.ExtraDelayMS * float64(time.Millisecond)))
	}
	if spec.DownMS != nil {
		until := int64(0)
		if *spec.DownMS > 0 {
			until = time.Now().UnixNano() + int64(*spec.DownMS*float64(time.Millisecond))
		}
		s.downUntilNS.Store(until)
	}
	return s.FaultState()
}

// FaultState snapshots the live fault-injection state.
func (s *BackendServer) FaultState() FaultState {
	st := FaultState{
		FailNext:     s.failNext.Load(),
		ErrorRate:    math.Float64frombits(s.errRateBits.Load()),
		ExtraDelayMS: float64(s.extraDelayNS.Load()) / float64(time.Millisecond),
		Dropped:      s.Failed.Load(),
		Errored:      s.Errored.Load(),
	}
	if until := s.downUntilNS.Load(); until > 0 {
		if rem := until - time.Now().UnixNano(); rem > 0 {
			st.DownRemainingMS = float64(rem) / float64(time.Millisecond)
		}
	}
	st.Active = st.FailNext > 0 || st.ErrorRate > 0 || st.ExtraDelayMS > 0 || st.DownRemainingMS > 0
	return st
}

// faultDrop decides whether message request seq is dropped by the active
// fault state (outage window, then the fail-next budget).
func (s *BackendServer) faultDrop(seq uint64) bool {
	if until := s.downUntilNS.Load(); until > 0 && time.Now().UnixNano() < until {
		return true
	}
	for {
		n := s.failNext.Load()
		if n <= 0 {
			return false
		}
		if s.failNext.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// errorHit decides whether message request seq takes the injected-500
// path. The decision hashes (seq, seed) so it is deterministic across
// reruns yet spread uniformly across the stream.
func (s *BackendServer) errorHit(seq uint64) bool {
	rate := math.Float64frombits(s.errRateBits.Load())
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := splitmix64(seq ^ s.cfg.Seed*0x9E3779B97F4A7C15)
	return float64(h>>11)/(1<<53) < rate
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-distributed
// 64-bit hash for the deterministic error-rate draw.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// handleFault serves the POST /fault control request: decode the spec,
// apply it, answer with the resulting state. Malformed JSON is a 400.
func (s *BackendServer) handleFault(body []byte) []byte {
	if len(body) == 0 {
		// Empty POST: a state query, same as GET /fault.
		return jsonResponse(200, "OK", s.FaultState())
	}
	var spec FaultSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		return jsonResponse(400, "Bad Request", map[string]string{"error": "bad fault spec: " + err.Error()})
	}
	return jsonResponse(200, "OK", s.ApplyFault(spec))
}
