package upstream

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// pconn is one pooled upstream connection: the socket plus its buffered
// reader (response parsing state must travel with the socket) and its
// birth time for max-lifetime eviction.
type pconn struct {
	c      net.Conn
	br     *bufio.Reader
	born   time.Time
	reused bool // true once the conn has served at least one round trip
}

// pool is a bounded LIFO idle set of keep-alive connections to one
// backend address. LIFO keeps the hottest socket hottest (fresh TCP
// window, warm path), and lets the cold tail age out under low load.
// With maxLifetime set, sockets older than the limit are evicted at
// checkout/checkin instead of being reused — bounding how long a single
// TCP connection (and whatever NAT/LB state rides on it) can live.
type pool struct {
	addr        string
	maxIdle     int
	dialTimeout time.Duration
	maxLifetime time.Duration // 0 = no limit

	mu     sync.Mutex
	idle   []*pconn
	closed bool

	open    atomic.Int64  // dialed minus closed, the open-socket gauge
	expired atomic.Uint64 // conns evicted for exceeding maxLifetime
}

func newPool(addr string, maxIdle int, dialTimeout, maxLifetime time.Duration) *pool {
	return &pool{addr: addr, maxIdle: maxIdle, dialTimeout: dialTimeout, maxLifetime: maxLifetime}
}

// tooOld reports whether a connection has outlived maxLifetime.
func (p *pool) tooOld(pc *pconn) bool {
	return p.maxLifetime > 0 && time.Since(pc.born) > p.maxLifetime
}

// get pops an idle connection (pooled=true) or dials a new one
// (pooled=false), evicting expired idle conns along the way. A dial
// error leaves no accounting to undo.
func (p *pool) get() (pc *pconn, pooled bool, err error) {
	for {
		p.mu.Lock()
		n := len(p.idle)
		if n == 0 {
			p.mu.Unlock()
			break
		}
		pc = p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		if p.tooOld(pc) {
			p.expired.Add(1)
			p.discard(pc)
			continue
		}
		return pc, true, nil
	}
	c, err := net.DialTimeout("tcp", p.addr, p.dialTimeout)
	if err != nil {
		return nil, false, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	p.open.Add(1)
	return &pconn{c: c, br: bufio.NewReaderSize(c, 32<<10), born: time.Now()}, false, nil
}

// put returns a healthy connection to the idle set; beyond maxIdle,
// past maxLifetime, or after Close the socket is closed instead.
func (p *pool) put(pc *pconn) {
	pc.reused = true
	if p.tooOld(pc) {
		p.expired.Add(1)
		p.discard(pc)
		return
	}
	p.mu.Lock()
	if !p.closed && len(p.idle) < p.maxIdle {
		p.idle = append(p.idle, pc)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	p.discard(pc)
}

// adopt wraps an externally dialed socket (the prober's probe or
// pre-warm dial) and parks it in the idle set. Returns false — closing
// the socket — if the pool is full or closed.
func (p *pool) adopt(c net.Conn) bool {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	pc := &pconn{c: c, br: bufio.NewReaderSize(c, 32<<10), born: time.Now()}
	p.mu.Lock()
	if p.closed || len(p.idle) >= p.maxIdle {
		p.mu.Unlock()
		c.Close()
		return false
	}
	p.idle = append(p.idle, pc)
	p.mu.Unlock()
	p.open.Add(1)
	return true
}

// discard closes a connection that must not be reused (IO error, server
// asked for Connection: close, pool full, lifetime exceeded).
func (p *pool) discard(pc *pconn) {
	pc.c.Close()
	p.open.Add(-1)
}

// idleCount reads the idle gauge.
func (p *pool) idleCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// Close empties the idle set and closes those sockets; connections
// currently checked out are closed by their users via put/discard.
func (p *pool) Close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, pc := range idle {
		p.discard(pc)
	}
}
