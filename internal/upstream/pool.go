package upstream

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// pconn is one pooled upstream connection: the socket plus its buffered
// reader (response parsing state must travel with the socket).
type pconn struct {
	c      net.Conn
	br     *bufio.Reader
	reused bool // true once the conn has served at least one round trip
}

// pool is a bounded LIFO idle set of keep-alive connections to one
// backend address. LIFO keeps the hottest socket hottest (fresh TCP
// window, warm path), and lets the cold tail age out under low load.
type pool struct {
	addr        string
	maxIdle     int
	dialTimeout time.Duration

	mu     sync.Mutex
	idle   []*pconn
	closed bool

	open atomic.Int64 // dialed minus closed, the open-socket gauge
}

func newPool(addr string, maxIdle int, dialTimeout time.Duration) *pool {
	return &pool{addr: addr, maxIdle: maxIdle, dialTimeout: dialTimeout}
}

// get pops an idle connection (pooled=true) or dials a new one
// (pooled=false). A dial error leaves no accounting to undo.
func (p *pool) get() (pc *pconn, pooled bool, err error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		pc = p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return pc, true, nil
	}
	p.mu.Unlock()
	c, err := net.DialTimeout("tcp", p.addr, p.dialTimeout)
	if err != nil {
		return nil, false, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	p.open.Add(1)
	return &pconn{c: c, br: bufio.NewReaderSize(c, 32<<10)}, false, nil
}

// put returns a healthy connection to the idle set; beyond maxIdle (or
// after Close) the socket is closed instead.
func (p *pool) put(pc *pconn) {
	pc.reused = true
	p.mu.Lock()
	if !p.closed && len(p.idle) < p.maxIdle {
		p.idle = append(p.idle, pc)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	p.discard(pc)
}

// discard closes a connection that must not be reused (IO error, server
// asked for Connection: close, pool full).
func (p *pool) discard(pc *pconn) {
	pc.c.Close()
	p.open.Add(-1)
}

// idleCount reads the idle gauge.
func (p *pool) idleCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// Close empties the idle set and closes those sockets; connections
// currently checked out are closed by their users via put/discard.
func (p *pool) Close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, pc := range idle {
		p.discard(pc)
	}
}
