package upstream

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// BackendConfig parameterizes a BackendServer.
type BackendConfig struct {
	// Name tags responses (and the paper topology role): "order" or
	// "error". Default "order".
	Name string
	// RespBytes pads the response body to approximately this size
	// (default 128) so the reverse path's wire cost is configurable —
	// the paper's endpoints answer with real payloads.
	RespBytes int
	// Delay stalls each response — emulates backend service time so the
	// FR extreme shows real upstream latency (and tests can force 504s).
	Delay time.Duration
	// FailFirst makes the server close the connection without responding
	// for the first N requests — a fault-injection knob for the
	// retry-then-success path.
	FailFirst int
}

// BackendServer is the minimal order/error endpoint of the paper's
// end-to-end FR topology: it accepts keep-alive HTTP/1.1 POSTs and
// answers 200 with a configurable-size JSON ack after a configurable
// delay. cmd/aonback wraps it; tests and benchmarks embed it so a single
// process can stand up the full gateway→backend loopback chain.
type BackendServer struct {
	cfg BackendConfig
	ln  net.Listener

	Requests atomic.Uint64 // messages answered
	Failed   atomic.Uint64 // connections dropped by FailFirst
	BytesIn  atomic.Uint64
	BytesOut atomic.Uint64
	seq      atomic.Uint64 // request sequencing incl. injected failures

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// StartBackend listens on addr and serves until Close.
func StartBackend(addr string, cfg BackendConfig) (*BackendServer, error) {
	if cfg.Name == "" {
		cfg.Name = "order"
	}
	if cfg.RespBytes <= 0 {
		cfg.RespBytes = 128
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &BackendServer{cfg: cfg, ln: ln, conns: map[net.Conn]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *BackendServer) Addr() net.Addr { return s.ln.Addr() }

// Close stops the listener and closes every open connection.
func (s *BackendServer) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *BackendServer) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(c)
	}
}

func (s *BackendServer) handle(c net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
		s.wg.Done()
	}()
	br := bufio.NewReaderSize(c, 32<<10)
	for {
		n, err := discardRequest(br)
		if err != nil {
			return
		}
		s.BytesIn.Add(uint64(n))
		seq := s.seq.Add(1)
		if int(seq) <= s.cfg.FailFirst {
			// Injected fault: drop the connection mid-exchange so the
			// forwarder sees an IO error, not an HTTP status.
			s.Failed.Add(1)
			return
		}
		if s.cfg.Delay > 0 {
			time.Sleep(s.cfg.Delay)
		}
		resp := s.response(seq)
		w, err := c.Write(resp)
		s.BytesOut.Add(uint64(w))
		s.Requests.Add(1)
		if err != nil {
			return
		}
	}
}

// response builds the padded JSON ack.
func (s *BackendServer) response(seq uint64) []byte {
	var body bytes.Buffer
	fmt.Fprintf(&body, `{"backend":%q,"seq":%d,"requests":%d`, s.cfg.Name, seq, s.Requests.Load()+1)
	if pad := s.cfg.RespBytes - body.Len() - 9; pad > 0 {
		body.WriteString(`,"pad":"`)
		body.Write(bytes.Repeat([]byte{'x'}, pad))
		body.WriteByte('"')
	}
	body.WriteByte('}')
	var b bytes.Buffer
	fmt.Fprintf(&b, "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n", body.Len())
	b.Write(body.Bytes())
	return b.Bytes()
}

// discardRequest frames one HTTP/1.1 request off the wire (header block
// to the blank line, then Content-Length body bytes) and throws it away,
// returning the wire size. The backend's job is to terminate the hop,
// not to re-process XML the gateway already handled.
func discardRequest(br *bufio.Reader) (int, error) {
	total := 0
	clen := 0
	sawHeader := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			if err == io.EOF && total == 0 && line == "" {
				return 0, io.EOF
			}
			return 0, err
		}
		total += len(line)
		if total > 64<<10 {
			return 0, errors.New("backend: header block too large")
		}
		trimmed := strings.TrimRight(line, "\r\n")
		if trimmed == "" {
			if sawHeader {
				break
			}
			total = 0 // tolerate blank lines before the request line
			continue
		}
		sawHeader = true
		if i := strings.IndexByte(trimmed, ':'); i > 0 {
			if strings.EqualFold(strings.TrimSpace(trimmed[:i]), "Content-Length") {
				n, err := strconv.Atoi(strings.TrimSpace(trimmed[i+1:]))
				if err != nil || n < 0 {
					return 0, errors.New("backend: bad Content-Length")
				}
				clen = n
			}
		}
	}
	if clen > 0 {
		if _, err := io.CopyN(io.Discard, br, int64(clen)); err != nil {
			return 0, err
		}
		total += clen
	}
	return total, nil
}
