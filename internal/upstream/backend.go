package upstream

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dtrace"
	"repro/internal/httpmsg"
	"repro/internal/lhist"
)

// BackendConfig parameterizes a BackendServer.
type BackendConfig struct {
	// Name tags responses (and the paper topology role): "order" or
	// "error". Default "order".
	Name string
	// RespBytes pads the response body to approximately this size
	// (default 128) so the reverse path's wire cost is configurable —
	// the paper's endpoints answer with real payloads.
	RespBytes int
	// Delay stalls each response — emulates backend service time so the
	// FR extreme shows real upstream latency (and tests can force 504s).
	Delay time.Duration
	// FailFirst makes the server close the connection without responding
	// for the first N requests — a fault-injection knob for the
	// retry-then-success path. It seeds the runtime fail-next budget,
	// which POST /fault can replenish later.
	FailFirst int
	// Seed keys the deterministic error-rate draw (see FaultSpec), so a
	// campaign rerun with the same seed errors the same requests.
	Seed uint64
	// TraceNode names this process in recorded serve spans (default the
	// backend Name); fleet mode passes the topology node key.
	TraceNode string
	// TraceCapacity bounds the serve-span ring served on GET /traces
	// (default 1024). Unlike the gateway, the backend keeps *every*
	// request that arrives with an X-AON-Trace header — the gateway's
	// tail sampler already decided those traces matter, and dropping a
	// serve span here would break cross-node assembly — and lets ring
	// eviction bound memory.
	TraceCapacity int
}

// BackendServer is the minimal order/error endpoint of the paper's
// end-to-end FR topology: it accepts keep-alive HTTP/1.1 POSTs and
// answers 200 with a configurable-size JSON ack after a configurable
// delay. GET /stats returns the live counter set as JSON — the same
// self-reporting surface the gateway has, so a fleet scraper sees
// backends too. cmd/aonback wraps it; tests and benchmarks embed it so a
// single process can stand up the full gateway→backend loopback chain.
type BackendServer struct {
	cfg   BackendConfig
	ln    net.Listener
	start time.Time

	Requests      atomic.Uint64 // messages answered
	Failed        atomic.Uint64 // connections dropped by fault injection
	Errored       atomic.Uint64 // injected 500s served
	StatsRequests atomic.Uint64 // GET /stats scrapes answered
	FaultPosts    atomic.Uint64 // POST /fault control requests applied
	BytesIn       atomic.Uint64
	BytesOut      atomic.Uint64
	seq           atomic.Uint64 // request sequencing incl. injected failures

	// Runtime fault state, scripted over POST /fault (see FaultSpec).
	failNext     atomic.Int64  // remaining requests to drop
	errRateBits  atomic.Uint64 // math.Float64bits of the injected-500 rate
	extraDelayNS atomic.Int64  // added per-response latency
	downUntilNS  atomic.Int64  // outage window end (UnixNano; 0 = none)
	lastFaultMS  atomic.Int64  // wall clock of the last applied /fault step

	// traces holds serve spans for requests that carried an inbound
	// X-AON-Trace header, joined cross-node by trace ID.
	traces *dtrace.Tail

	// Latency is the per-message service histogram (framing complete →
	// response written, the configured Delay included).
	Latency lhist.Hist

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// StartBackend listens on addr and serves until Close.
func StartBackend(addr string, cfg BackendConfig) (*BackendServer, error) {
	if cfg.Name == "" {
		cfg.Name = "order"
	}
	if cfg.RespBytes <= 0 {
		cfg.RespBytes = 128
	}
	if cfg.TraceNode == "" {
		cfg.TraceNode = cfg.Name
	}
	if cfg.TraceCapacity <= 0 {
		cfg.TraceCapacity = 1024
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &BackendServer{cfg: cfg, ln: ln, start: time.Now(), conns: map[net.Conn]struct{}{}}
	s.traces = dtrace.NewTail(dtrace.TailConfig{Capacity: cfg.TraceCapacity})
	s.failNext.Store(int64(cfg.FailFirst))
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *BackendServer) Addr() net.Addr { return s.ln.Addr() }

// Close stops the listener and closes every open connection.
func (s *BackendServer) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *BackendServer) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(c)
	}
}

func (s *BackendServer) handle(c net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
		s.wg.Done()
	}()
	br := bufio.NewReaderSize(c, 32<<10)
	// Per-connection scratch, reused across the keep-alive stream: the
	// request-line buffer frameRequest fills, the captured trace-header
	// value, the write buffer the ack is serialized into, the ack body,
	// and the Response header scratch.
	var (
		lbuf, tbuf, wbuf, bbuf []byte
		ackRes                 = httpmsg.Response{Status: 200, Headers: jsonCT}
	)
	for {
		reqLine, body, traceVal, n, err := frameRequest(br, lbuf[:0], tbuf[:0], isControlPost)
		if err != nil {
			return
		}
		lbuf, tbuf = reqLine, traceVal[:0]
		s.BytesIn.Add(uint64(n))
		method, target, _ := bytes.Cut(reqLine, []byte(" "))
		rawPath, _, _ := bytes.Cut(target, []byte(" "))
		path, query, _ := bytes.Cut(bytes.TrimSpace(rawPath), []byte("?"))
		path = bytes.TrimSuffix(path, []byte("/"))
		if string(method) == "GET" || body != nil {
			// Control plane: /stats, /fault, and /traces bypass fault
			// injection, delay, and the message counters, so observability
			// and fault scripting survive a fault storm — mirroring the
			// gateway's GET fast path.
			var resp []byte
			switch {
			case string(method) == "GET" && bytes.HasSuffix(path, []byte("stats")):
				s.StatsRequests.Add(1)
				resp = jsonResponse(200, "OK", s.Stats())
			case string(method) == "GET" && bytes.HasSuffix(path, []byte("fault")):
				resp = jsonResponse(200, "OK", s.FaultState())
			case string(method) == "GET" && bytes.HasSuffix(path, []byte("traces")):
				resp = jsonResponse(200, "OK", s.tracesResponse(query))
			case body != nil:
				s.FaultPosts.Add(1)
				resp = s.handleFault(body)
			default:
				resp = jsonResponse(404, "Not Found", map[string]string{"error": "not found"})
			}
			w, err := c.Write(resp)
			s.BytesOut.Add(uint64(w))
			if err != nil {
				return
			}
			continue
		}
		t0 := time.Now()
		seq := s.seq.Add(1)
		if s.faultDrop(seq) {
			// Injected fault: drop the connection mid-exchange so the
			// forwarder sees an IO error, not an HTTP status. The serve
			// span is recorded anyway — a dropped hop is exactly the kind
			// of span a cross-node post-mortem needs to see.
			s.Failed.Add(1)
			s.recordServe(traceVal, t0, time.Since(t0), 0, "dropped")
			return
		}
		if delay := s.cfg.Delay + time.Duration(s.extraDelayNS.Load()); delay > 0 {
			time.Sleep(delay)
		}
		status := 200
		if s.errorHit(seq) {
			// Injected error: a served 500, so the forwarder sees an HTTP
			// failure rather than an IO error.
			s.Errored.Add(1)
			status = 500
			wbuf = append(wbuf[:0], jsonResponse(500, "Internal Server Error",
				map[string]any{"backend": s.cfg.Name, "seq": seq, "error": "injected"})...)
		} else {
			bbuf = s.appendAck(bbuf[:0], seq)
			wbuf = httpmsg.AppendResponseHeader(wbuf[:0], &ackRes, len(bbuf))
			wbuf = append(wbuf, bbuf...)
			s.Requests.Add(1)
		}
		w, err := c.Write(wbuf)
		s.BytesOut.Add(uint64(w))
		d := time.Since(t0)
		s.Latency.Observe(d)
		s.recordServe(traceVal, t0, d, status, "")
		if err != nil {
			return
		}
	}
}

// recordServe keeps one server-side span for a data-path request that
// carried an X-AON-Trace header, parented under the gateway's forward
// span (the header's span ID). No header, no work.
func (s *BackendServer) recordServe(traceVal []byte, start time.Time, d time.Duration, status int, outcome string) {
	if len(traceVal) == 0 {
		return
	}
	tid, pid, ok := dtrace.ParseHeaderValue(traceVal)
	if !ok {
		return
	}
	s.traces.Keep(tid, []dtrace.Span{{
		TraceID:  tid,
		SpanID:   dtrace.NewID(),
		ParentID: pid,
		Node:     s.cfg.TraceNode,
		Name:     "serve",
		StartUS:  start.UnixMicro(),
		DurUS:    d.Microseconds(),
		Outcome:  outcome,
		Status:   status,
	}})
}

// backendTracesResponse mirrors the gateway's GET /traces JSON shape,
// so the fleet scraper and aontrace read both ends with one decoder.
type backendTracesResponse struct {
	Node   string           `json:"node"`
	Tail   dtrace.TailStats `json:"tail"`
	Traces []dtrace.Trace   `json:"traces"`
}

// tracesResponse serves GET /traces?last=N (all kept traces when last
// is absent or invalid).
func (s *BackendServer) tracesResponse(query []byte) backendTracesResponse {
	n := 0
	if len(query) > 0 {
		if vals, err := url.ParseQuery(string(query)); err == nil {
			if raw := strings.TrimSpace(vals.Get("last")); raw != "" {
				if v, err := strconv.Atoi(raw); err == nil && v > 0 {
					n = v
				}
			}
		}
	}
	return backendTracesResponse{
		Node:   s.cfg.TraceNode,
		Tail:   s.traces.Stats(),
		Traces: s.traces.Last(n),
	}
}

// isControlPost marks the requests whose bodies frameRequest captures
// rather than discards: the POST /fault control spec.
func isControlPost(reqLine []byte, clen int) bool {
	method, target, _ := bytes.Cut(reqLine, []byte(" "))
	if string(method) != "POST" || clen > 8<<10 {
		return false
	}
	path, _, _ := bytes.Cut(target, []byte(" "))
	return bytes.HasSuffix(bytes.TrimSuffix(bytes.TrimSpace(path), []byte("/")), []byte("fault"))
}

// BackendStats is the GET /stats JSON shape — the backend's
// self-reported counter set, keyed the same way the gateway reports so a
// cross-node scraper treats both uniformly. TMS is the backend's own
// wall clock at snapshot time: cross-node merging aligns on each node's
// monotonic timestamps, never on comparing clocks across machines.
type BackendStats struct {
	Name      string  `json:"name"`
	TMS       int64   `json:"t_ms"`
	UptimeSec float64 `json:"uptime_seconds"`
	// Goroutines is the live goroutine count — the quickest leak/stall
	// tell a campaign post-mortem has from the backend side.
	Goroutines    int     `json:"goroutines"`
	Requests      uint64  `json:"requests"`
	Dropped       uint64  `json:"dropped"`
	Errored       uint64  `json:"errored"`
	StatsRequests uint64  `json:"stats_requests"`
	FaultPosts    uint64  `json:"fault_posts"`
	BytesIn       uint64  `json:"bytes_in"`
	BytesOut      uint64  `json:"bytes_out"`
	RespBytes     int     `json:"resp_bytes"`
	DelayMS       float64 `json:"delay_ms"`
	FailFirst     int     `json:"fail_first"`
	FaultActive   bool    `json:"fault_active"`
	// LastFaultMS is the backend's wall clock (UnixMilli) when the most
	// recent /fault step was applied; 0 when none ever was. Campaign
	// post-mortems line it up with the fault script's acknowledgment log
	// to tell when a storm step actually landed server-side.
	LastFaultMS int64          `json:"last_fault_unix_ms"`
	Fault       FaultState     `json:"fault"`
	Latency     lhist.Snapshot `json:"latency"`
}

// Stats snapshots the live counters.
func (s *BackendServer) Stats() BackendStats {
	fault := s.FaultState()
	return BackendStats{
		Name:          s.cfg.Name,
		TMS:           time.Now().UnixMilli(),
		UptimeSec:     time.Since(s.start).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
		LastFaultMS:   s.lastFaultMS.Load(),
		Requests:      s.Requests.Load(),
		Dropped:       s.Failed.Load(),
		Errored:       s.Errored.Load(),
		StatsRequests: s.StatsRequests.Load(),
		FaultPosts:    s.FaultPosts.Load(),
		BytesIn:       s.BytesIn.Load(),
		BytesOut:      s.BytesOut.Load(),
		RespBytes:     s.cfg.RespBytes,
		DelayMS:       float64(s.cfg.Delay) / float64(time.Millisecond),
		FailFirst:     s.cfg.FailFirst,
		FaultActive:   fault.Active,
		Fault:         fault,
		Latency:       s.Latency.Snapshot(),
	}
}

// jsonCT is the shared Content-Type header set for every backend
// response; read-only, so the per-connection Response scratch and the
// control plane share it.
var jsonCT = []httpmsg.Header{{Name: "Content-Type", Value: "application/json"}}

// jsonResponse wraps v as an HTTP/1.1 JSON response. Control-plane only
// (stats scrapes, fault scripting) — the data path serializes acks into
// per-connection buffers via appendAck instead.
func jsonResponse(status int, phrase string, v any) []byte {
	body, _ := json.MarshalIndent(v, "", "  ")
	return httpmsg.FormatResponseTo(nil, &httpmsg.Response{
		Status:  status,
		Reason:  phrase,
		Headers: jsonCT,
		Body:    body,
	})
}

// appendAck appends the padded JSON ack body to dst and returns the
// extended slice — the append-to-dst twin of the old bytes.Buffer
// builder, byte-identical including the pad arithmetic.
func (s *BackendServer) appendAck(dst []byte, seq uint64) []byte {
	dst = append(dst, `{"backend":`...)
	dst = strconv.AppendQuote(dst, s.cfg.Name)
	dst = append(dst, `,"seq":`...)
	dst = strconv.AppendUint(dst, seq, 10)
	dst = append(dst, `,"requests":`...)
	dst = strconv.AppendUint(dst, s.Requests.Load()+1, 10)
	if pad := s.cfg.RespBytes - len(dst) - 9; pad > 0 {
		dst = append(dst, `,"pad":"`...)
		for i := 0; i < pad; i++ {
			dst = append(dst, 'x')
		}
		dst = append(dst, '"')
	}
	return append(dst, '}')
}

// clenKey is the header name the backend frames on; traceKey is the
// distributed-trace context it additionally captures.
var (
	clenKey  = []byte("Content-Length")
	traceKey = []byte(dtrace.Header)
)

// frameRequest frames one HTTP/1.1 request off the wire (header block to
// the blank line, then Content-Length body bytes). Header lines are
// scanned as buffered-reader views — no per-line allocation — and the
// request line is copied into buf, whose grown backing the caller hands
// back on the next call so the keep-alive stream settles into zero
// framing allocations; an X-AON-Trace header value is likewise copied
// into trbuf (empty when the request carried none). The body is
// normally thrown away — the backend's job is to terminate the hop, not
// to re-process XML the gateway already handled — except when the
// capture predicate claims the request (the /fault control plane), in
// which case the body is read into memory and returned non-nil. Returns
// the request line (valid until the next call reuses buf), the captured
// body (nil when discarded), the trace value, and the wire size.
func frameRequest(br *bufio.Reader, buf, trbuf []byte, capture func(reqLine []byte, clen int) bool) (reqLineOut, bodyOut, traceOut []byte, size int, err error) {
	total := 0
	clen := 0
	reqLine := buf[:0]
	trv := trbuf[:0]
	sawReqLine := false
	for {
		line, err := br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			// A header line longer than the reader window: splice the
			// pieces into buf past the saved request line so the view
			// survives the next fill.
			keep := len(reqLine)
			reqLine = append(reqLine, line...)
			for err == bufio.ErrBufferFull {
				line, err = br.ReadSlice('\n')
				reqLine = append(reqLine, line...)
				if total+len(reqLine)-keep > 64<<10 {
					return nil, nil, nil, 0, errors.New("backend: header block too large")
				}
			}
			line = reqLine[keep:]
			reqLine = reqLine[:keep]
		}
		if err != nil {
			if err == io.EOF && total == 0 && len(line) == 0 {
				return nil, nil, nil, 0, io.EOF
			}
			return nil, nil, nil, 0, err
		}
		total += len(line)
		if total > 64<<10 {
			return nil, nil, nil, 0, errors.New("backend: header block too large")
		}
		trimmed := bytes.TrimRight(line, "\r\n")
		if len(trimmed) == 0 {
			if sawReqLine {
				break
			}
			total = 0 // tolerate blank lines before the request line
			continue
		}
		if !sawReqLine {
			sawReqLine = true
			reqLine = append(reqLine[:0], trimmed...)
		}
		if i := bytes.IndexByte(trimmed, ':'); i > 0 {
			name := bytes.TrimSpace(trimmed[:i])
			if bytes.EqualFold(name, clenKey) {
				n, ok := parseClen(bytes.TrimSpace(trimmed[i+1:]))
				if !ok || n < 0 {
					return nil, nil, nil, 0, errors.New("backend: bad Content-Length")
				}
				clen = n
			} else if bytes.EqualFold(name, traceKey) {
				// Copy the value out of the reader's window: the view dies
				// on the next ReadSlice fill, the span outlives the frame.
				trv = append(trv[:0], bytes.TrimSpace(trimmed[i+1:])...)
			}
		}
	}
	var body []byte
	if capture != nil && capture(reqLine, clen) {
		body = make([]byte, clen)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, nil, nil, 0, err
		}
		total += clen
	} else if clen > 0 {
		if _, err := io.CopyN(io.Discard, br, int64(clen)); err != nil {
			return nil, nil, nil, 0, err
		}
		total += clen
	}
	return reqLine, body, trv, total, nil
}

// parseClen is an allocation-free strconv.Atoi over the small integers
// Content-Length carries, accepting the same optional sign.
func parseClen(b []byte) (int, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		if i++; i == len(b) {
			return 0, false
		}
	}
	n := 0
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
		if n > 1<<50 {
			return 0, false
		}
	}
	if neg {
		return -n, true
	}
	return n, true
}
