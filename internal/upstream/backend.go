package upstream

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lhist"
)

// BackendConfig parameterizes a BackendServer.
type BackendConfig struct {
	// Name tags responses (and the paper topology role): "order" or
	// "error". Default "order".
	Name string
	// RespBytes pads the response body to approximately this size
	// (default 128) so the reverse path's wire cost is configurable —
	// the paper's endpoints answer with real payloads.
	RespBytes int
	// Delay stalls each response — emulates backend service time so the
	// FR extreme shows real upstream latency (and tests can force 504s).
	Delay time.Duration
	// FailFirst makes the server close the connection without responding
	// for the first N requests — a fault-injection knob for the
	// retry-then-success path. It seeds the runtime fail-next budget,
	// which POST /fault can replenish later.
	FailFirst int
	// Seed keys the deterministic error-rate draw (see FaultSpec), so a
	// campaign rerun with the same seed errors the same requests.
	Seed uint64
}

// BackendServer is the minimal order/error endpoint of the paper's
// end-to-end FR topology: it accepts keep-alive HTTP/1.1 POSTs and
// answers 200 with a configurable-size JSON ack after a configurable
// delay. GET /stats returns the live counter set as JSON — the same
// self-reporting surface the gateway has, so a fleet scraper sees
// backends too. cmd/aonback wraps it; tests and benchmarks embed it so a
// single process can stand up the full gateway→backend loopback chain.
type BackendServer struct {
	cfg   BackendConfig
	ln    net.Listener
	start time.Time

	Requests      atomic.Uint64 // messages answered
	Failed        atomic.Uint64 // connections dropped by fault injection
	Errored       atomic.Uint64 // injected 500s served
	StatsRequests atomic.Uint64 // GET /stats scrapes answered
	FaultPosts    atomic.Uint64 // POST /fault control requests applied
	BytesIn       atomic.Uint64
	BytesOut      atomic.Uint64
	seq           atomic.Uint64 // request sequencing incl. injected failures

	// Runtime fault state, scripted over POST /fault (see FaultSpec).
	failNext     atomic.Int64  // remaining requests to drop
	errRateBits  atomic.Uint64 // math.Float64bits of the injected-500 rate
	extraDelayNS atomic.Int64  // added per-response latency
	downUntilNS  atomic.Int64  // outage window end (UnixNano; 0 = none)

	// Latency is the per-message service histogram (framing complete →
	// response written, the configured Delay included).
	Latency lhist.Hist

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// StartBackend listens on addr and serves until Close.
func StartBackend(addr string, cfg BackendConfig) (*BackendServer, error) {
	if cfg.Name == "" {
		cfg.Name = "order"
	}
	if cfg.RespBytes <= 0 {
		cfg.RespBytes = 128
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &BackendServer{cfg: cfg, ln: ln, start: time.Now(), conns: map[net.Conn]struct{}{}}
	s.failNext.Store(int64(cfg.FailFirst))
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *BackendServer) Addr() net.Addr { return s.ln.Addr() }

// Close stops the listener and closes every open connection.
func (s *BackendServer) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *BackendServer) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(c)
	}
}

func (s *BackendServer) handle(c net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
		s.wg.Done()
	}()
	br := bufio.NewReaderSize(c, 32<<10)
	for {
		reqLine, body, n, err := frameRequest(br, isControlPost)
		if err != nil {
			return
		}
		s.BytesIn.Add(uint64(n))
		method, target, _ := strings.Cut(reqLine, " ")
		path, _, _ := strings.Cut(target, " ")
		path = strings.TrimSuffix(strings.TrimSpace(path), "/")
		if method == "GET" || body != nil {
			// Control plane: /stats and /fault bypass fault injection,
			// delay, and the message counters, so observability and fault
			// scripting survive a fault storm — mirroring the gateway's
			// GET fast path.
			var resp []byte
			switch {
			case method == "GET" && strings.HasSuffix(path, "stats"):
				s.StatsRequests.Add(1)
				resp = jsonResponse(200, "OK", s.Stats())
			case method == "GET" && strings.HasSuffix(path, "fault"):
				resp = jsonResponse(200, "OK", s.FaultState())
			case body != nil:
				s.FaultPosts.Add(1)
				resp = s.handleFault(body)
			default:
				resp = jsonResponse(404, "Not Found", map[string]string{"error": "not found"})
			}
			w, err := c.Write(resp)
			s.BytesOut.Add(uint64(w))
			if err != nil {
				return
			}
			continue
		}
		t0 := time.Now()
		seq := s.seq.Add(1)
		if s.faultDrop(seq) {
			// Injected fault: drop the connection mid-exchange so the
			// forwarder sees an IO error, not an HTTP status.
			s.Failed.Add(1)
			return
		}
		if delay := s.cfg.Delay + time.Duration(s.extraDelayNS.Load()); delay > 0 {
			time.Sleep(delay)
		}
		var resp []byte
		if s.errorHit(seq) {
			// Injected error: a served 500, so the forwarder sees an HTTP
			// failure rather than an IO error.
			s.Errored.Add(1)
			resp = jsonResponse(500, "Internal Server Error",
				map[string]any{"backend": s.cfg.Name, "seq": seq, "error": "injected"})
		} else {
			resp = s.response(seq)
			s.Requests.Add(1)
		}
		w, err := c.Write(resp)
		s.BytesOut.Add(uint64(w))
		s.Latency.Observe(time.Since(t0))
		if err != nil {
			return
		}
	}
}

// isControlPost marks the requests whose bodies frameRequest captures
// rather than discards: the POST /fault control spec.
func isControlPost(reqLine string, clen int) bool {
	method, target, _ := strings.Cut(reqLine, " ")
	if method != "POST" || clen > 8<<10 {
		return false
	}
	path, _, _ := strings.Cut(target, " ")
	return strings.HasSuffix(strings.TrimSuffix(strings.TrimSpace(path), "/"), "fault")
}

// BackendStats is the GET /stats JSON shape — the backend's
// self-reported counter set, keyed the same way the gateway reports so a
// cross-node scraper treats both uniformly. TMS is the backend's own
// wall clock at snapshot time: cross-node merging aligns on each node's
// monotonic timestamps, never on comparing clocks across machines.
type BackendStats struct {
	Name          string         `json:"name"`
	TMS           int64          `json:"t_ms"`
	UptimeSec     float64        `json:"uptime_sec"`
	Requests      uint64         `json:"requests"`
	Dropped       uint64         `json:"dropped"`
	Errored       uint64         `json:"errored"`
	StatsRequests uint64         `json:"stats_requests"`
	FaultPosts    uint64         `json:"fault_posts"`
	BytesIn       uint64         `json:"bytes_in"`
	BytesOut      uint64         `json:"bytes_out"`
	RespBytes     int            `json:"resp_bytes"`
	DelayMS       float64        `json:"delay_ms"`
	FailFirst     int            `json:"fail_first"`
	FaultActive   bool           `json:"fault_active"`
	Fault         FaultState     `json:"fault"`
	Latency       lhist.Snapshot `json:"latency"`
}

// Stats snapshots the live counters.
func (s *BackendServer) Stats() BackendStats {
	fault := s.FaultState()
	return BackendStats{
		Name:          s.cfg.Name,
		TMS:           time.Now().UnixMilli(),
		UptimeSec:     time.Since(s.start).Seconds(),
		Requests:      s.Requests.Load(),
		Dropped:       s.Failed.Load(),
		Errored:       s.Errored.Load(),
		StatsRequests: s.StatsRequests.Load(),
		FaultPosts:    s.FaultPosts.Load(),
		BytesIn:       s.BytesIn.Load(),
		BytesOut:      s.BytesOut.Load(),
		RespBytes:     s.cfg.RespBytes,
		DelayMS:       float64(s.cfg.Delay) / float64(time.Millisecond),
		FailFirst:     s.cfg.FailFirst,
		FaultActive:   fault.Active,
		Fault:         fault,
		Latency:       s.Latency.Snapshot(),
	}
}

// jsonResponse wraps v as an HTTP/1.1 JSON response.
func jsonResponse(status int, phrase string, v any) []byte {
	body, _ := json.MarshalIndent(v, "", "  ")
	var b bytes.Buffer
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n",
		status, phrase, len(body))
	b.Write(body)
	return b.Bytes()
}

// response builds the padded JSON ack.
func (s *BackendServer) response(seq uint64) []byte {
	var body bytes.Buffer
	fmt.Fprintf(&body, `{"backend":%q,"seq":%d,"requests":%d`, s.cfg.Name, seq, s.Requests.Load()+1)
	if pad := s.cfg.RespBytes - body.Len() - 9; pad > 0 {
		body.WriteString(`,"pad":"`)
		body.Write(bytes.Repeat([]byte{'x'}, pad))
		body.WriteByte('"')
	}
	body.WriteByte('}')
	var b bytes.Buffer
	fmt.Fprintf(&b, "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n", body.Len())
	b.Write(body.Bytes())
	return b.Bytes()
}

// frameRequest frames one HTTP/1.1 request off the wire (header block to
// the blank line, then Content-Length body bytes). The body is normally
// thrown away — the backend's job is to terminate the hop, not to
// re-process XML the gateway already handled — except when the capture
// predicate claims the request (the /fault control plane), in which case
// the body is read into memory and returned non-nil. Returns the request
// line, the captured body (nil when discarded), and the wire size.
func frameRequest(br *bufio.Reader, capture func(reqLine string, clen int) bool) (string, []byte, int, error) {
	total := 0
	clen := 0
	reqLine := ""
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			if err == io.EOF && total == 0 && line == "" {
				return "", nil, 0, io.EOF
			}
			return "", nil, 0, err
		}
		total += len(line)
		if total > 64<<10 {
			return "", nil, 0, errors.New("backend: header block too large")
		}
		trimmed := strings.TrimRight(line, "\r\n")
		if trimmed == "" {
			if reqLine != "" {
				break
			}
			total = 0 // tolerate blank lines before the request line
			continue
		}
		if reqLine == "" {
			reqLine = trimmed
		}
		if i := strings.IndexByte(trimmed, ':'); i > 0 {
			if strings.EqualFold(strings.TrimSpace(trimmed[:i]), "Content-Length") {
				n, err := strconv.Atoi(strings.TrimSpace(trimmed[i+1:]))
				if err != nil || n < 0 {
					return "", nil, 0, errors.New("backend: bad Content-Length")
				}
				clen = n
			}
		}
	}
	var body []byte
	if capture != nil && capture(reqLine, clen) {
		body = make([]byte, clen)
		if _, err := io.ReadFull(br, body); err != nil {
			return "", nil, 0, err
		}
		total += clen
	} else if clen > 0 {
		if _, err := io.CopyN(io.Discard, br, int64(clen)); err != nil {
			return "", nil, 0, err
		}
		total += clen
	}
	return reqLine, body, total, nil
}
