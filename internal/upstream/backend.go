package upstream

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lhist"
)

// BackendConfig parameterizes a BackendServer.
type BackendConfig struct {
	// Name tags responses (and the paper topology role): "order" or
	// "error". Default "order".
	Name string
	// RespBytes pads the response body to approximately this size
	// (default 128) so the reverse path's wire cost is configurable —
	// the paper's endpoints answer with real payloads.
	RespBytes int
	// Delay stalls each response — emulates backend service time so the
	// FR extreme shows real upstream latency (and tests can force 504s).
	Delay time.Duration
	// FailFirst makes the server close the connection without responding
	// for the first N requests — a fault-injection knob for the
	// retry-then-success path.
	FailFirst int
}

// BackendServer is the minimal order/error endpoint of the paper's
// end-to-end FR topology: it accepts keep-alive HTTP/1.1 POSTs and
// answers 200 with a configurable-size JSON ack after a configurable
// delay. GET /stats returns the live counter set as JSON — the same
// self-reporting surface the gateway has, so a fleet scraper sees
// backends too. cmd/aonback wraps it; tests and benchmarks embed it so a
// single process can stand up the full gateway→backend loopback chain.
type BackendServer struct {
	cfg   BackendConfig
	ln    net.Listener
	start time.Time

	Requests      atomic.Uint64 // messages answered
	Failed        atomic.Uint64 // connections dropped by FailFirst
	StatsRequests atomic.Uint64 // GET /stats scrapes answered
	BytesIn       atomic.Uint64
	BytesOut      atomic.Uint64
	seq           atomic.Uint64 // request sequencing incl. injected failures

	// Latency is the per-message service histogram (framing complete →
	// response written, the configured Delay included).
	Latency lhist.Hist

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// StartBackend listens on addr and serves until Close.
func StartBackend(addr string, cfg BackendConfig) (*BackendServer, error) {
	if cfg.Name == "" {
		cfg.Name = "order"
	}
	if cfg.RespBytes <= 0 {
		cfg.RespBytes = 128
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &BackendServer{cfg: cfg, ln: ln, start: time.Now(), conns: map[net.Conn]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *BackendServer) Addr() net.Addr { return s.ln.Addr() }

// Close stops the listener and closes every open connection.
func (s *BackendServer) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *BackendServer) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(c)
	}
}

func (s *BackendServer) handle(c net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
		s.wg.Done()
	}()
	br := bufio.NewReaderSize(c, 32<<10)
	for {
		reqLine, n, err := discardRequest(br)
		if err != nil {
			return
		}
		s.BytesIn.Add(uint64(n))
		if method, target, _ := strings.Cut(reqLine, " "); method == "GET" {
			// Control plane: /stats bypasses fault injection, delay, and
			// the message counters, so observability survives a fault storm
			// — mirroring the gateway's GET fast path.
			path, _, _ := strings.Cut(target, " ")
			path = strings.TrimSuffix(strings.TrimSpace(path), "/")
			var resp []byte
			if strings.HasSuffix(path, "stats") {
				s.StatsRequests.Add(1)
				resp = jsonResponse(200, "OK", s.Stats())
			} else {
				resp = jsonResponse(404, "Not Found", map[string]string{"error": "not found"})
			}
			w, err := c.Write(resp)
			s.BytesOut.Add(uint64(w))
			if err != nil {
				return
			}
			continue
		}
		t0 := time.Now()
		seq := s.seq.Add(1)
		if int(seq) <= s.cfg.FailFirst {
			// Injected fault: drop the connection mid-exchange so the
			// forwarder sees an IO error, not an HTTP status.
			s.Failed.Add(1)
			return
		}
		if s.cfg.Delay > 0 {
			time.Sleep(s.cfg.Delay)
		}
		resp := s.response(seq)
		w, err := c.Write(resp)
		s.BytesOut.Add(uint64(w))
		s.Requests.Add(1)
		s.Latency.Observe(time.Since(t0))
		if err != nil {
			return
		}
	}
}

// BackendStats is the GET /stats JSON shape — the backend's
// self-reported counter set, keyed the same way the gateway reports so a
// cross-node scraper treats both uniformly. TMS is the backend's own
// wall clock at snapshot time: cross-node merging aligns on each node's
// monotonic timestamps, never on comparing clocks across machines.
type BackendStats struct {
	Name          string         `json:"name"`
	TMS           int64          `json:"t_ms"`
	UptimeSec     float64        `json:"uptime_sec"`
	Requests      uint64         `json:"requests"`
	Dropped       uint64         `json:"dropped"`
	StatsRequests uint64         `json:"stats_requests"`
	BytesIn       uint64         `json:"bytes_in"`
	BytesOut      uint64         `json:"bytes_out"`
	RespBytes     int            `json:"resp_bytes"`
	DelayMS       float64        `json:"delay_ms"`
	FailFirst     int            `json:"fail_first"`
	FaultActive   bool           `json:"fault_active"`
	Latency       lhist.Snapshot `json:"latency"`
}

// Stats snapshots the live counters.
func (s *BackendServer) Stats() BackendStats {
	return BackendStats{
		Name:          s.cfg.Name,
		TMS:           time.Now().UnixMilli(),
		UptimeSec:     time.Since(s.start).Seconds(),
		Requests:      s.Requests.Load(),
		Dropped:       s.Failed.Load(),
		StatsRequests: s.StatsRequests.Load(),
		BytesIn:       s.BytesIn.Load(),
		BytesOut:      s.BytesOut.Load(),
		RespBytes:     s.cfg.RespBytes,
		DelayMS:       float64(s.cfg.Delay) / float64(time.Millisecond),
		FailFirst:     s.cfg.FailFirst,
		FaultActive:   s.seq.Load() < uint64(s.cfg.FailFirst),
		Latency:       s.Latency.Snapshot(),
	}
}

// jsonResponse wraps v as an HTTP/1.1 JSON response.
func jsonResponse(status int, phrase string, v any) []byte {
	body, _ := json.MarshalIndent(v, "", "  ")
	var b bytes.Buffer
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n",
		status, phrase, len(body))
	b.Write(body)
	return b.Bytes()
}

// response builds the padded JSON ack.
func (s *BackendServer) response(seq uint64) []byte {
	var body bytes.Buffer
	fmt.Fprintf(&body, `{"backend":%q,"seq":%d,"requests":%d`, s.cfg.Name, seq, s.Requests.Load()+1)
	if pad := s.cfg.RespBytes - body.Len() - 9; pad > 0 {
		body.WriteString(`,"pad":"`)
		body.Write(bytes.Repeat([]byte{'x'}, pad))
		body.WriteByte('"')
	}
	body.WriteByte('}')
	var b bytes.Buffer
	fmt.Fprintf(&b, "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n", body.Len())
	b.Write(body.Bytes())
	return b.Bytes()
}

// discardRequest frames one HTTP/1.1 request off the wire (header block
// to the blank line, then Content-Length body bytes) and throws the body
// away, returning the request line and the wire size. The backend's job
// is to terminate the hop, not to re-process XML the gateway already
// handled — only the method/target matter (for the /stats control
// plane).
func discardRequest(br *bufio.Reader) (string, int, error) {
	total := 0
	clen := 0
	reqLine := ""
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			if err == io.EOF && total == 0 && line == "" {
				return "", 0, io.EOF
			}
			return "", 0, err
		}
		total += len(line)
		if total > 64<<10 {
			return "", 0, errors.New("backend: header block too large")
		}
		trimmed := strings.TrimRight(line, "\r\n")
		if trimmed == "" {
			if reqLine != "" {
				break
			}
			total = 0 // tolerate blank lines before the request line
			continue
		}
		if reqLine == "" {
			reqLine = trimmed
		}
		if i := strings.IndexByte(trimmed, ':'); i > 0 {
			if strings.EqualFold(strings.TrimSpace(trimmed[:i]), "Content-Length") {
				n, err := strconv.Atoi(strings.TrimSpace(trimmed[i+1:]))
				if err != nil || n < 0 {
					return "", 0, errors.New("backend: bad Content-Length")
				}
				clen = n
			}
		}
	}
	if clen > 0 {
		if _, err := io.CopyN(io.Discard, br, int64(clen)); err != nil {
			return "", 0, err
		}
		total += clen
	}
	return reqLine, total, nil
}
