package upstream

import "sync"

// health is the circuit-style backend state machine: consecutive try
// failures reaching the threshold mark the backend down; while down,
// request traffic fast-fails with no dial at all. Recovery is the
// background prober's job (prober.go) — the request path never pays for
// probing a dead backend.
type health struct {
	mu    sync.Mutex
	fails int  // consecutive failed tries
	down  bool // circuit open: fast-fail new work
}

// onSuccess closes the failure window and, if the backend was down,
// restores it.
func (h *health) onSuccess() {
	h.mu.Lock()
	h.fails = 0
	h.down = false
	h.mu.Unlock()
}

// onFailure records a failed try and reports whether this failure
// transitioned the backend to down.
func (h *health) onFailure(threshold int) (markedDown bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.down {
		return false
	}
	h.fails++
	if h.fails >= threshold {
		h.down = true
		return true
	}
	return false
}

// healthy reports the circuit state.
func (h *health) healthy() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.down
}
