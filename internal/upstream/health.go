package upstream

import (
	"sync"
	"time"
)

// health is the circuit-style backend state machine: consecutive try
// failures reaching the threshold mark the backend down; while down,
// traffic fast-fails except for one passive recovery probe per
// ProbeInterval — a real request let through to test the water. A
// successful probe (or any success) restores the backend.
type health struct {
	mu        sync.Mutex
	fails     int  // consecutive failed tries
	down      bool // circuit open: fast-fail new work
	probing   bool // one probe is in flight
	lastProbe time.Time
}

// allow reports whether a try may proceed, and whether it is the
// recovery probe (at most one in flight, at most one per probeEvery).
func (h *health) allow(now time.Time, probeEvery time.Duration) (ok, isProbe bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.down {
		return true, false
	}
	if h.probing || now.Sub(h.lastProbe) < probeEvery {
		return false, false
	}
	h.probing = true
	h.lastProbe = now
	return true, true
}

// onSuccess closes the failure window and, if the backend was down,
// restores it (the probe succeeded).
func (h *health) onSuccess() {
	h.mu.Lock()
	h.fails = 0
	h.down = false
	h.probing = false
	h.mu.Unlock()
}

// onFailure records a failed try and reports whether this failure
// transitioned the backend to down. A failed probe re-arms the probe
// timer rather than re-marking.
func (h *health) onFailure(threshold int) (markedDown bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.probing = false
	if h.down {
		return false
	}
	h.fails++
	if h.fails >= threshold {
		h.down = true
		return true
	}
	return false
}

// healthy reports the circuit state.
func (h *health) healthy() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.down
}
