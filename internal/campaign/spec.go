// Package campaign is the declarative scenario engine: a JSON spec
// describes a sequence of time-phased traffic shapes — constant,
// linear/diurnal ramps, flash crowds, slow-loris holds — each optionally
// scripting backend fault storms (POST /fault against aonback) at
// offsets within the phase. The runner drives a live gateway through the
// phases open-loop, samples its /stats surface into a phase-tagged
// session timeline (crash-safe JSONL + CSV the stock readers parse), and
// emits per-phase Figure-5/6-style report rows with stage-latency and
// capacity model-error columns.
//
// Where `aonload` answers "what does the gateway do at constant offered
// load N", a campaign answers "what does it do through a day": warmup,
// diurnal swell, a flash crowd landing while a backend degrades, a
// slow-loris siege against the read path. RZBENCH's structured workload
// suites and the stability-campaign literature motivate treating these
// as first-class measurements rather than one-off smokes.
package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/upstream"
	"repro/internal/workload"
)

// Shape names a phase's traffic envelope.
type Shape string

const (
	// ShapeConstant holds Conns senders for the phase.
	ShapeConstant Shape = "constant"
	// ShapeRamp moves linearly from Conns to ConnsTo across the phase.
	ShapeRamp Shape = "ramp"
	// ShapeDiurnal swells sinusoidally Conns→ConnsTo→Conns across the
	// phase — one compressed day.
	ShapeDiurnal Shape = "diurnal"
	// ShapeFlash steps to BurstConns for BurstMS, then decays
	// exponentially (time constant DecayMS) back toward Conns.
	ShapeFlash Shape = "flash"
	// ShapeSlowloris holds Conns trickling connections that drip request
	// bytes slower than the gateway's idle timeout (exercising the
	// read-deadline shed path), with BackgroundConns normal senders
	// alongside to prove the worker pool is not starved.
	ShapeSlowloris Shape = "slowloris"
)

// Spec is the campaign document: global knobs plus the ordered phases.
type Spec struct {
	// Name labels the campaign in reports and artifacts.
	Name string `json:"name"`
	// Addr is the target gateway (host:port). Runner options may
	// override it (aonfleet injects the launched gateway's address).
	Addr string `json:"addr,omitempty"`
	// Backends are aonback control addresses (host:port) that fault
	// steps reference by index.
	Backends []string `json:"backends,omitempty"`
	// Seed perturbs the deterministic message generators and is echoed
	// into reports; same spec + same seed = same traffic.
	Seed uint64 `json:"seed,omitempty"`
	// SizeBytes is the approximate POST body size (default the paper's
	// 5 KB).
	SizeBytes int `json:"size_bytes,omitempty"`
	// SampleIntervalMS is the /stats sampling period for the campaign
	// timeline (default 250ms).
	SampleIntervalMS int `json:"sample_interval_ms,omitempty"`
	// TimeoutMS bounds each request round trip (default 10s).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// TargetP99MS is the latency bound used for capacity model-error
	// reporting (default 100ms).
	TargetP99MS int `json:"target_p99_ms,omitempty"`
	// TraceEvery originates a distributed trace on every Nth request per
	// sender (0 = never): an X-AON-Trace header is spliced into the
	// pooled request bytes so the gateway adopts the client's trace ID
	// and the whole campaign exemplar is followable across the fleet.
	TraceEvery int `json:"trace_every,omitempty"`
	// Phases run in order; at least one is required.
	Phases []Phase `json:"phases"`
}

// Phase is one scenario segment: a traffic shape over a duration, with
// optional scripted fault steps.
type Phase struct {
	Name    string `json:"name"`
	Shape   Shape  `json:"shape"`
	UseCase string `json:"usecase,omitempty"` // default FR
	// DurationMS is the phase length.
	DurationMS int `json:"duration_ms"`
	// Conns is the base sender width (see each Shape for its role).
	Conns int `json:"conns"`
	// ConnsTo is the ramp/diurnal end/peak width.
	ConnsTo int `json:"conns_to,omitempty"`
	// BurstConns is the flash-crowd step height.
	BurstConns int `json:"burst_conns,omitempty"`
	// BurstMS is how long the flash burst holds before decay (default
	// a quarter of the phase).
	BurstMS int `json:"burst_ms,omitempty"`
	// DecayMS is the flash decay time constant (default BurstMS).
	DecayMS int `json:"decay_ms,omitempty"`
	// BackgroundConns is the slow-loris phase's count of normal senders
	// running alongside the held connections.
	BackgroundConns int `json:"background_conns,omitempty"`
	// TrickleIntervalMS paces slow-loris body bytes (default 400ms;
	// must exceed the gateway's idle timeout for the hold to be reaped).
	TrickleIntervalMS int `json:"trickle_interval_ms,omitempty"`
	// InvalidEvery makes every Nth message schema-invalid (0 = never).
	InvalidEvery int `json:"invalid_every,omitempty"`
	// Faults fire against Spec.Backends at offsets within the phase.
	Faults []FaultStep `json:"faults,omitempty"`
}

// FaultStep schedules one POST /fault during a phase.
type FaultStep struct {
	// AtMS is the offset from phase start.
	AtMS int `json:"at_ms"`
	// Backend indexes Spec.Backends.
	Backend int `json:"backend"`
	// Fault is forwarded verbatim as the POST /fault body.
	Fault upstream.FaultSpec `json:"fault"`
}

// knownShapes gates validation.
var knownShapes = map[Shape]bool{
	ShapeConstant: true, ShapeRamp: true, ShapeDiurnal: true,
	ShapeFlash: true, ShapeSlowloris: true,
}

// Validate checks the spec and fills defaults in place.
func (s *Spec) Validate() error {
	if s.Name == "" {
		s.Name = "campaign"
	}
	if s.SizeBytes == 0 {
		s.SizeBytes = workload.MessageBytes
	}
	if s.SizeBytes < 0 {
		return fmt.Errorf("campaign: size_bytes must be positive, got %d", s.SizeBytes)
	}
	if s.SampleIntervalMS == 0 {
		s.SampleIntervalMS = 250
	}
	if s.SampleIntervalMS < 0 {
		return fmt.Errorf("campaign: sample_interval_ms must be positive, got %d", s.SampleIntervalMS)
	}
	if s.TimeoutMS == 0 {
		s.TimeoutMS = 10_000
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("campaign: timeout_ms must be positive, got %d", s.TimeoutMS)
	}
	if s.TargetP99MS == 0 {
		s.TargetP99MS = 100
	}
	if s.TargetP99MS < 0 {
		return fmt.Errorf("campaign: target_p99_ms must be positive, got %d", s.TargetP99MS)
	}
	if s.TraceEvery < 0 {
		return fmt.Errorf("campaign: trace_every must be >= 0, got %d", s.TraceEvery)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("campaign: no phases")
	}
	for i := range s.Phases {
		if err := s.Phases[i].validate(i, len(s.Backends)); err != nil {
			return err
		}
	}
	return nil
}

// validate checks one phase and fills its defaults.
func (p *Phase) validate(idx, numBackends int) error {
	where := fmt.Sprintf("campaign: phase %d (%s)", idx, p.Name)
	if p.Name == "" {
		p.Name = fmt.Sprintf("phase-%d", idx)
		where = fmt.Sprintf("campaign: phase %d", idx)
	}
	if p.Shape == "" {
		p.Shape = ShapeConstant
	}
	p.Shape = Shape(strings.ToLower(string(p.Shape)))
	if !knownShapes[p.Shape] {
		return fmt.Errorf("%s: unknown shape %q", where, p.Shape)
	}
	if p.UseCase == "" {
		p.UseCase = "FR"
	}
	uc, err := workload.ParseUseCase(p.UseCase)
	if err != nil {
		return fmt.Errorf("%s: %v", where, err)
	}
	p.UseCase = uc.String()
	if p.DurationMS <= 0 {
		return fmt.Errorf("%s: duration_ms must be positive, got %d", where, p.DurationMS)
	}
	if p.Conns <= 0 {
		return fmt.Errorf("%s: conns must be positive, got %d", where, p.Conns)
	}
	switch p.Shape {
	case ShapeRamp, ShapeDiurnal:
		if p.ConnsTo <= 0 {
			return fmt.Errorf("%s: %s needs conns_to", where, p.Shape)
		}
	case ShapeFlash:
		if p.BurstConns <= p.Conns {
			return fmt.Errorf("%s: flash needs burst_conns > conns (%d <= %d)", where, p.BurstConns, p.Conns)
		}
		if p.BurstMS == 0 {
			p.BurstMS = p.DurationMS / 4
		}
		if p.BurstMS <= 0 || p.BurstMS > p.DurationMS {
			return fmt.Errorf("%s: burst_ms %d outside phase duration %d", where, p.BurstMS, p.DurationMS)
		}
		if p.DecayMS == 0 {
			p.DecayMS = p.BurstMS
		}
		if p.DecayMS < 0 {
			return fmt.Errorf("%s: decay_ms must be positive, got %d", where, p.DecayMS)
		}
	case ShapeSlowloris:
		if p.TrickleIntervalMS == 0 {
			p.TrickleIntervalMS = 400
		}
		if p.TrickleIntervalMS < 0 {
			return fmt.Errorf("%s: trickle_interval_ms must be positive, got %d", where, p.TrickleIntervalMS)
		}
		if p.BackgroundConns < 0 {
			return fmt.Errorf("%s: background_conns must be >= 0, got %d", where, p.BackgroundConns)
		}
	}
	if p.InvalidEvery < 0 {
		return fmt.Errorf("%s: invalid_every must be >= 0, got %d", where, p.InvalidEvery)
	}
	for j, f := range p.Faults {
		if f.AtMS < 0 || f.AtMS > p.DurationMS {
			return fmt.Errorf("%s: fault %d at_ms %d outside phase duration %d", where, j, f.AtMS, p.DurationMS)
		}
		if f.Backend < 0 || f.Backend >= numBackends {
			return fmt.Errorf("%s: fault %d references backend %d, spec has %d", where, j, f.Backend, numBackends)
		}
	}
	return nil
}

// Duration returns the phase length.
func (p *Phase) Duration() time.Duration {
	return time.Duration(p.DurationMS) * time.Millisecond
}

// TotalDuration sums the phase lengths.
func (s *Spec) TotalDuration() time.Duration {
	var d time.Duration
	for i := range s.Phases {
		d += s.Phases[i].Duration()
	}
	return d
}

// DecodeSpec strictly decodes a campaign document without validating
// it. Unknown fields are rejected — a typoed knob should fail loudly,
// not silently run the default scenario. Callers that rewrite the spec
// before running (aoncamp's -selfback swaps in self-hosted backend
// addresses) decode first, rewrite, then Validate.
func DecodeSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("campaign: bad spec: %w", err)
	}
	return &s, nil
}

// ParseSpec decodes and validates a campaign document.
func ParseSpec(data []byte) (*Spec, error) {
	s, err := DecodeSpec(data)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// LoadSpec reads and decodes a campaign document from a file without
// validating it — callers rewrite (or not) and then Validate.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return DecodeSpec(data)
}
