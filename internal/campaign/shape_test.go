package campaign

import (
	"testing"
	"time"
)

// TestWidthAtConstant pins the trivial envelope.
func TestWidthAtConstant(t *testing.T) {
	p := &Phase{Shape: ShapeConstant, Conns: 7, DurationMS: 1000}
	for _, at := range []time.Duration{0, 500 * time.Millisecond, time.Second, 2 * time.Second} {
		if w := p.WidthAt(at); w != 7 {
			t.Fatalf("constant width at %v = %d, want 7", at, w)
		}
	}
}

// TestWidthAtRamp checks the linear interpolation at the edge and
// midpoint, including a downward ramp.
func TestWidthAtRamp(t *testing.T) {
	p := &Phase{Shape: ShapeRamp, Conns: 2, ConnsTo: 10, DurationMS: 1000}
	cases := []struct {
		at   time.Duration
		want int
	}{
		{0, 2},
		{250 * time.Millisecond, 4},
		{500 * time.Millisecond, 6},
		{time.Second, 10},
		{-time.Second, 2},     // clamped to phase start
		{2 * time.Second, 10}, // clamped to phase end
	}
	for _, c := range cases {
		if w := p.WidthAt(c.at); w != c.want {
			t.Fatalf("ramp width at %v = %d, want %d", c.at, w, c.want)
		}
	}
	down := &Phase{Shape: ShapeRamp, Conns: 10, ConnsTo: 2, DurationMS: 1000}
	if w := down.WidthAt(500 * time.Millisecond); w != 6 {
		t.Fatalf("down-ramp midpoint = %d, want 6", w)
	}
}

// TestWidthAtDiurnal checks trough at the edges and peak at the
// midpoint.
func TestWidthAtDiurnal(t *testing.T) {
	p := &Phase{Shape: ShapeDiurnal, Conns: 2, ConnsTo: 20, DurationMS: 2000}
	if w := p.WidthAt(0); w != 2 {
		t.Fatalf("diurnal start = %d, want 2", w)
	}
	if w := p.WidthAt(time.Second); w != 20 {
		t.Fatalf("diurnal midpoint = %d, want 20", w)
	}
	if w := p.WidthAt(2 * time.Second); w != 2 {
		t.Fatalf("diurnal end = %d, want 2", w)
	}
	// Quarter point: swell = (1-cos(pi/2))/2 = 0.5 → 2 + 18*0.5 = 11.
	if w := p.WidthAt(500 * time.Millisecond); w != 11 {
		t.Fatalf("diurnal quarter = %d, want 11", w)
	}
}

// TestWidthAtFlash checks the step height during the burst and the
// exponential decay after it.
func TestWidthAtFlash(t *testing.T) {
	p := &Phase{Shape: ShapeFlash, Conns: 4, BurstConns: 20, BurstMS: 200, DecayMS: 100, DurationMS: 1000}
	if w := p.WidthAt(0); w != 20 {
		t.Fatalf("flash at burst start = %d, want 20", w)
	}
	if w := p.WidthAt(199 * time.Millisecond); w != 20 {
		t.Fatalf("flash inside burst = %d, want 20", w)
	}
	// One decay constant past the burst: 4 + 16/e ≈ 9.886 → 10.
	if w := p.WidthAt(300 * time.Millisecond); w != 10 {
		t.Fatalf("flash one tau after burst = %d, want 10", w)
	}
	// Far into the decay it settles at the base width.
	if w := p.WidthAt(time.Second); w != 4 {
		t.Fatalf("flash settled = %d, want 4", w)
	}
	if pk := p.PeakWidth(); pk != 20 {
		t.Fatalf("flash peak = %d, want 20", pk)
	}
}

// TestWidthAtNeverZero pins the floor: a live phase never drops to zero
// senders even when the envelope math rounds below one.
func TestWidthAtNeverZero(t *testing.T) {
	p := &Phase{Shape: ShapeRamp, Conns: 1, ConnsTo: 1, DurationMS: 1000}
	for at := 0; at <= 1000; at += 100 {
		if w := p.WidthAt(time.Duration(at) * time.Millisecond); w < 1 {
			t.Fatalf("width at %dms = %d, want >= 1", at, w)
		}
	}
}

// TestSpecValidate covers defaults and the rejection paths.
func TestSpecValidate(t *testing.T) {
	good := `{
		"name": "t",
		"backends": ["127.0.0.1:1"],
		"phases": [
			{"name": "a", "shape": "ramp", "duration_ms": 100, "conns": 1, "conns_to": 4},
			{"name": "b", "shape": "flash", "duration_ms": 100, "conns": 2, "burst_conns": 8,
			 "faults": [{"at_ms": 50, "backend": 0, "fault": {"error_rate": 0.5}}]}
		]
	}`
	s, err := ParseSpec([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if s.SizeBytes == 0 || s.SampleIntervalMS != 250 || s.TimeoutMS != 10000 {
		t.Fatalf("defaults not filled: %+v", s)
	}
	if s.Phases[0].UseCase != "FR" {
		t.Fatalf("usecase default = %q, want FR", s.Phases[0].UseCase)
	}
	if s.Phases[1].BurstMS != 25 || s.Phases[1].DecayMS != 25 {
		t.Fatalf("flash defaults: burst=%d decay=%d, want 25/25", s.Phases[1].BurstMS, s.Phases[1].DecayMS)
	}

	bad := []string{
		`{"phases": []}`, // no phases
		`{"phases": [{"shape": "sawtooth", "duration_ms": 1, "conns": 1}]}`,                // unknown shape
		`{"phases": [{"shape": "ramp", "duration_ms": 1, "conns": 1}]}`,                    // ramp without conns_to
		`{"phases": [{"shape": "flash", "duration_ms": 1, "conns": 2, "burst_conns": 2}]}`, // burst <= base
		`{"phases": [{"duration_ms": 1, "conns": 1, "usecase": "NOPE"}]}`,                  // unknown use case
		`{"phases": [{"duration_ms": 1, "conns": 1,
			"faults": [{"at_ms": 0, "backend": 0, "fault": {}}]}]}`, // fault without backends
		`{"phases": [{"duration_ms": 100, "conns": 1}],
			"backends": ["x"],
			"typo_knob": true}`, // unknown field
	}
	for i, doc := range bad {
		if _, err := ParseSpec([]byte(doc)); err == nil {
			t.Fatalf("bad spec %d accepted: %s", i, doc)
		}
	}
}
