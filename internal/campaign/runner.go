package campaign

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dtrace"
	"repro/internal/gateway"
	"repro/internal/lhist"
	"repro/internal/session"
	"repro/internal/workload"
)

// Options parameterizes one campaign run.
type Options struct {
	// Addr overrides Spec.Addr (aonfleet injects the launched gateway).
	Addr string
	// OutDir receives the session artifacts (JSONL + CSV); empty means
	// no artifacts, report only.
	OutDir string
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// runner carries one campaign's live state.
type runner struct {
	spec    *Spec
	addr    string
	timeout time.Duration
	logf    func(string, ...any)
	http    *http.Client

	mu       sync.Mutex
	curPhase string
	faultLog []FaultEvent
	jsonl    io.Writer
	csvw     *csv.Writer
	samples  int

	// previous cumulative /stats view for delta sampling (sampler
	// goroutine only).
	prevTMS      int64
	prevMessages uint64
	prevBytesIn  uint64
	prevShed     uint64
	primed       bool
}

// Run executes the spec against a live gateway and returns the result.
// The spec must already be validated (ParseSpec/LoadSpec do this).
func Run(spec *Spec, opts Options) (*Result, error) {
	addr := opts.Addr
	if addr == "" {
		addr = spec.Addr
	}
	if addr == "" {
		return nil, fmt.Errorf("campaign: no gateway address (spec addr or Options.Addr)")
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	scrapeTimeout := 2 * time.Second
	r := &runner{
		spec:    spec,
		addr:    addr,
		timeout: time.Duration(spec.TimeoutMS) * time.Millisecond,
		logf:    logf,
		http:    &http.Client{Timeout: scrapeTimeout},
	}

	var artifacts []string
	if opts.OutDir != "" {
		if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		jf, err := os.Create(filepath.Join(opts.OutDir, "session.jsonl"))
		if err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		defer jf.Close()
		cf, err := os.Create(filepath.Join(opts.OutDir, "session.csv"))
		if err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		defer cf.Close()
		r.jsonl = jf
		cw := csv.NewWriter(cf)
		// The campaign CSV is the stock session schema with a leading
		// "phase" column — session.ReadCSV locates columns by name, so the
		// stock readers still parse it.
		if err := cw.Write(append([]string{"phase"}, session.CSVHeader()...)); err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		cw.Flush()
		r.csvw = cw
		artifacts = append(artifacts, jf.Name(), cf.Name())
	}

	// Pre-flight: the gateway must answer /stats before the first phase.
	if _, err := r.fetchStats(); err != nil {
		return nil, fmt.Errorf("campaign: gateway %s not answering /stats: %w", addr, err)
	}

	res := &Result{
		Name:      spec.Name,
		Addr:      addr,
		Seed:      spec.Seed,
		Artifacts: artifacts,
	}

	// One sampler spans the campaign so the timeline is continuous across
	// phase boundaries; each sample is tagged with the phase it landed in.
	stopSample := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		t := time.NewTicker(time.Duration(spec.SampleIntervalMS) * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stopSample:
				return
			case <-t.C:
				r.sampleOnce()
			}
		}
	}()

	start := time.Now()
	for i := range spec.Phases {
		p := &spec.Phases[i]
		rep, err := r.runPhase(p)
		if err != nil {
			close(stopSample)
			sampleWG.Wait()
			return nil, err
		}
		res.Phases = append(res.Phases, *rep)
	}
	close(stopSample)
	sampleWG.Wait()

	res.DurationSec = time.Since(start).Seconds()
	r.mu.Lock()
	res.Faults = r.faultLog
	res.Samples = r.samples
	r.mu.Unlock()
	return res, nil
}

// runPhase drives one phase: envelope-controlled senders (plus trickling
// holds for slowloris), the fault script, and start/end gateway
// snapshots that become the report row.
func (r *runner) runPhase(p *Phase) (*PhaseReport, error) {
	r.setPhase(p.Name)
	r.writeEvent(map[string]any{
		"type": "phase-start", "phase": p.Name, "shape": string(p.Shape),
		"usecase": p.UseCase, "duration_ms": p.DurationMS,
	})
	r.logf("campaign: phase %s: %s %s for %v", p.Name, p.Shape, p.UseCase, p.Duration())

	snapStart, err := r.fetchStats()
	if err != nil {
		return nil, fmt.Errorf("campaign: phase %s: %w", p.Name, err)
	}

	uc, err := workload.ParseUseCase(p.UseCase)
	if err != nil {
		return nil, fmt.Errorf("campaign: phase %s: %v", p.Name, err)
	}
	sp := newSenderPool(r.addr, r.timeout, requestPool(uc, p.InvalidEvery, r.spec.SizeBytes, r.spec.Seed), r.spec.TraceEvery)

	var lp *lorisPool
	if p.Shape == ShapeSlowloris {
		lp = newLorisPool(r.addr, workload.HTTPRequestSeeded(0, uc, r.spec.SizeBytes, r.spec.Seed),
			time.Duration(p.TrickleIntervalMS)*time.Millisecond)
	}

	faultStop := make(chan struct{})
	var faultWG sync.WaitGroup
	if len(p.Faults) > 0 {
		faultWG.Add(1)
		go func() {
			defer faultWG.Done()
			r.faultScript(p, faultStop)
		}()
	}

	// The envelope controller: every tick, resize the pools to the
	// shape's width at this offset.
	start := time.Now()
	tick := time.NewTicker(50 * time.Millisecond)
	for {
		elapsed := time.Since(start)
		if elapsed >= p.Duration() {
			break
		}
		if p.Shape == ShapeSlowloris {
			lp.resize(p.WidthAt(elapsed))
			sp.resize(p.BackgroundConns)
		} else {
			sp.resize(p.WidthAt(elapsed))
		}
		<-tick.C
	}
	tick.Stop()

	close(faultStop)
	sp.stop()
	if lp != nil {
		lp.stop()
	}
	faultWG.Wait()
	activeDur := time.Since(start)

	snapEnd, err := r.fetchStats()
	if err != nil {
		return nil, fmt.Errorf("campaign: phase %s: %w", p.Name, err)
	}

	rep := buildPhaseReport(p, activeDur, sp, lp, snapStart, snapEnd, r.spec)
	r.writeEvent(map[string]any{"type": "phase-end", "phase": p.Name, "report": rep})
	r.logf("campaign: phase %s done: offered %.0f/s ok %.0f/s p99 %dus shed %d",
		p.Name, rep.OfferedPerSec, rep.OKPerSec, rep.LatencyP99US, rep.Shed)
	return rep, nil
}

// requestPool pre-generates the cycled message pool, mirroring
// gateway.RunLoad's indices so seeded campaign traffic matches seeded
// aonload traffic byte for byte.
func requestPool(uc workload.UseCase, invalidEvery, size int, seed uint64) [][]byte {
	const n = 64
	pool := make([][]byte, n)
	for i := range pool {
		if invalidEvery > 0 && i%invalidEvery == invalidEvery-1 {
			pool[i] = gateway.RawPost(uc, workload.InvalidSOAPMessageSeeded(i, size, seed))
		} else {
			pool[i] = workload.HTTPRequestSeeded(i, uc, size, seed)
		}
	}
	return pool
}

// setPhase updates the label the sampler tags rows with.
func (r *runner) setPhase(name string) {
	r.mu.Lock()
	r.curPhase = name
	r.mu.Unlock()
}

// phase reads the current phase label.
func (r *runner) phase() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.curPhase
}

// fetchStats pulls the gateway's cumulative /stats view.
func (r *runner) fetchStats() (*gateway.Snapshot, error) {
	resp, err := r.http.Get("http://" + r.addr + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /stats: %s", resp.Status)
	}
	var snap gateway.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// sampleOnce scrapes /stats and lands one phase-tagged windowed sample
// in the timeline — the same delta idiom the fleet scraper uses, with
// the gateway's own uptime as the monotonic axis.
func (r *runner) sampleOnce() {
	snap, err := r.fetchStats()
	if err != nil {
		return // a missed tick is not fatal; phase snapshots own liveness
	}
	tms := int64(snap.UptimeSec * 1000)
	s := session.Sample{
		TMS:          tms,
		LatencyP50US: snap.Latency.P50US,
		LatencyP99US: snap.Latency.P99US,
	}
	if c := snap.Counters; c != nil {
		s.CPI = c.Derived.CPI
		s.CacheMPI = c.Derived.CacheMPI
		s.BrMPR = c.Derived.BrMPR
		s.DerivedSource = c.DerivedSource
		s.Goroutines = c.Runtime.Goroutines
	}
	if r.primed && tms > r.prevTMS {
		s.WindowSec = float64(tms-r.prevTMS) / 1000
		if snap.Messages >= r.prevMessages {
			s.Messages = snap.Messages - r.prevMessages
		}
		if snap.BytesIn >= r.prevBytesIn {
			s.BytesIn = snap.BytesIn - r.prevBytesIn
		}
		if snap.Shed >= r.prevShed {
			s.Shed = snap.Shed - r.prevShed
		}
		if s.WindowSec > 0 {
			s.MsgsPerSec = float64(s.Messages) / s.WindowSec
		}
	}
	r.prevTMS, r.prevMessages, r.prevBytesIn, r.prevShed = tms, snap.Messages, snap.BytesIn, snap.Shed
	r.primed = true

	phase := r.phase()
	r.writeEvent(map[string]any{"type": "sample", "phase": phase, "sample": s})
	r.mu.Lock()
	r.samples++
	if r.csvw != nil {
		r.csvw.Write(append([]string{phase}, session.CSVRecord(s)...))
		r.csvw.Flush()
	}
	r.mu.Unlock()
}

// writeEvent appends one JSONL line, flushed through — the crash-safety
// contract: every returned write is on disk.
func (r *runner) writeEvent(ev map[string]any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.jsonl == nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	r.jsonl.Write(append(b, '\n'))
}

// sleepOrStop sleeps d unless stop closes first; reports whether the
// caller should keep running.
func sleepOrStop(stop <-chan struct{}, d time.Duration) bool {
	select {
	case <-stop:
		return false
	case <-time.After(d):
		return true
	}
}

// senderPool is the resizable open-loop sender set: the envelope
// controller grows and shrinks it tick by tick, each sender owning one
// keep-alive connection it redials on error.
type senderPool struct {
	addr    string
	timeout time.Duration
	pool    [][]byte
	// traceEvery originates an X-AON-Trace header on every Nth request
	// per sender (0 = never) — Spec.TraceEvery.
	traceEvery int
	next       atomic.Uint64
	stops      []chan struct{} // controller goroutine only
	wg         sync.WaitGroup

	sent, ok, shed, httpErr, netErr         atomic.Uint64
	forwarded, match, routedErr, valid      atomic.Uint64
	translated, parseErr, bytesOut, bytesIn atomic.Uint64
	hist                                    lhist.Hist
}

func newSenderPool(addr string, timeout time.Duration, pool [][]byte, traceEvery int) *senderPool {
	return &senderPool{addr: addr, timeout: timeout, pool: pool, traceEvery: traceEvery}
}

// resize brings the live sender count to n. Called from the envelope
// controller only.
func (sp *senderPool) resize(n int) {
	if n < 0 {
		n = 0
	}
	for len(sp.stops) < n {
		stop := make(chan struct{})
		sp.stops = append(sp.stops, stop)
		sp.wg.Add(1)
		go sp.run(stop)
	}
	for len(sp.stops) > n {
		close(sp.stops[len(sp.stops)-1])
		sp.stops = sp.stops[:len(sp.stops)-1]
	}
}

// stop winds the pool down and joins every sender.
func (sp *senderPool) stop() {
	sp.resize(0)
	sp.wg.Wait()
}

// run is one sender: dial, cycle the shared request pool, count
// outcomes, redial on error.
func (sp *senderPool) run(stop chan struct{}) {
	defer sp.wg.Done()
	var cl *gateway.Client
	defer func() {
		if cl != nil {
			cl.Close()
		}
	}()
	var k uint64 // per-sender request counter for trace origination
	var trbuf []byte
	for {
		select {
		case <-stop:
			return
		default:
		}
		if cl == nil {
			c, err := gateway.Dial(sp.addr)
			if err != nil {
				sp.netErr.Add(1)
				if !sleepOrStop(stop, 50*time.Millisecond) {
					return
				}
				continue
			}
			cl = c
		}
		raw := sp.pool[sp.next.Add(1)%uint64(len(sp.pool))]
		if sp.traceEvery > 0 {
			if k%uint64(sp.traceEvery) == 0 {
				// Originate a trace: the gateway adopts this ID, so the
				// campaign exemplar assembles across nodes. The client
				// span itself is not recorded — the campaign's view of
				// the request is the phase histogram; the trace plane's
				// is the gateway + backend spans under this ID.
				trbuf = dtrace.InjectHeader(trbuf[:0], raw, dtrace.NewID(), dtrace.NewID())
				raw = trbuf
			}
			k++
		}
		t0 := time.Now()
		resp, err := cl.Do(raw, sp.timeout)
		if err != nil {
			sp.netErr.Add(1)
			cl.Close()
			cl = nil
			continue
		}
		sp.sent.Add(1)
		sp.bytesOut.Add(uint64(len(raw)))
		sp.bytesIn.Add(uint64(resp.Bytes))
		switch {
		case resp.Status == 200:
			sp.ok.Add(1)
			sp.hist.Observe(time.Since(t0))
			switch resp.Outcome {
			case "forwarded":
				sp.forwarded.Add(1)
			case "match":
				sp.match.Add(1)
			case "error":
				sp.routedErr.Add(1)
			case "valid":
				sp.valid.Add(1)
			case "translated":
				sp.translated.Add(1)
			}
		case resp.Status == 503:
			sp.shed.Add(1)
		default:
			sp.httpErr.Add(1)
			if resp.Outcome == "parse-error" || resp.Status == 400 {
				sp.parseErr.Add(1)
			}
		}
	}
}

// lorisPool holds slow-loris connections: each trickles one valid
// request in small chunks paced slower than the gateway's idle timeout,
// so the gateway's read deadline reaps the connection mid-request. A
// write or read error is counted as a reap and the loris redials.
type lorisPool struct {
	addr     string
	req      []byte
	interval time.Duration
	stops    []chan struct{} // controller goroutine only
	wg       sync.WaitGroup

	held, reaped, completed atomic.Uint64
}

// lorisChunk is the per-drip byte count — small enough that a 5 KB
// request takes minutes at the default pace.
const lorisChunk = 64

func newLorisPool(addr string, req []byte, interval time.Duration) *lorisPool {
	return &lorisPool{addr: addr, req: req, interval: interval}
}

func (lp *lorisPool) resize(n int) {
	if n < 0 {
		n = 0
	}
	for len(lp.stops) < n {
		stop := make(chan struct{})
		lp.stops = append(lp.stops, stop)
		lp.wg.Add(1)
		go lp.run(stop)
	}
	for len(lp.stops) > n {
		close(lp.stops[len(lp.stops)-1])
		lp.stops = lp.stops[:len(lp.stops)-1]
	}
}

func (lp *lorisPool) stop() {
	lp.resize(0)
	lp.wg.Wait()
}

func (lp *lorisPool) run(stop chan struct{}) {
	defer lp.wg.Done()
	for {
		select {
		case <-stop:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", lp.addr, 2*time.Second)
		if err != nil {
			if !sleepOrStop(stop, 100*time.Millisecond) {
				return
			}
			continue
		}
		lp.held.Add(1)
		reaped := false
		for off := 0; off < len(lp.req); off += lorisChunk {
			end := off + lorisChunk
			if end > len(lp.req) {
				end = len(lp.req)
			}
			if _, err := conn.Write(lp.req[off:end]); err != nil {
				reaped = true
				break
			}
			if end < len(lp.req) {
				if !sleepOrStop(stop, lp.interval) {
					conn.Close()
					return
				}
			}
		}
		if !reaped {
			// The whole request escaped the trickle (idle timeout longer
			// than the drip): read the answer so the hold was still real.
			conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			if _, err := conn.Read(make([]byte, 1)); err != nil {
				reaped = true
			} else {
				lp.completed.Add(1)
			}
		}
		if reaped {
			lp.reaped.Add(1)
		}
		conn.Close()
	}
}
