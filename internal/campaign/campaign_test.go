package campaign

import (
	"bufio"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/gateway"
	"repro/internal/session"
	"repro/internal/upstream"
)

// startBackend brings up one aonback on loopback for fault scripting.
func startBackend(t *testing.T) *upstream.BackendServer {
	t.Helper()
	b, err := upstream.StartBackend("127.0.0.1:0", upstream.BackendConfig{Name: "order", RespBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

// TestFaultScript drives the phase fault scripter against a live
// backend: steps fire in at_ms order regardless of spec order, each
// acknowledgment carries the applied state, and a final clear resets it.
func TestFaultScript(t *testing.T) {
	b := startBackend(t)
	addr := b.Addr().String()

	one := 1.0
	zero := int64(3)
	r := &runner{
		spec:    &Spec{Backends: []string{addr}},
		timeout: 2 * time.Second,
		logf:    func(string, ...any) {},
	}
	phase := &Phase{
		Name:       "storm",
		DurationMS: 1000,
		Faults: []FaultStep{
			// Deliberately out of order: the 60ms step is listed first.
			{AtMS: 60, Backend: 0, Fault: upstream.FaultSpec{Clear: true}},
			{AtMS: 10, Backend: 0, Fault: upstream.FaultSpec{ErrorRate: &one, FailNext: &zero}},
		},
	}
	stop := make(chan struct{})
	defer close(stop)
	r.faultScript(phase, stop)

	if len(r.faultLog) != 2 {
		t.Fatalf("fault log has %d events, want 2: %+v", len(r.faultLog), r.faultLog)
	}
	first, second := r.faultLog[0], r.faultLog[1]
	if first.AtMS != 10 || second.AtMS != 60 {
		t.Fatalf("steps fired out of order: %d then %d", first.AtMS, second.AtMS)
	}
	if first.Err != "" || first.State == nil || !first.State.Active ||
		first.State.ErrorRate != 1 || first.State.FailNext != 3 {
		t.Fatalf("first ack wrong: %+v err=%q", first.State, first.Err)
	}
	if second.Err != "" || second.State == nil || second.State.Active {
		t.Fatalf("clear ack wrong: %+v err=%q", second.State, second.Err)
	}

	// The backend's own view agrees after the script.
	st, err := GetFault(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Active || st.ErrorRate != 0 || st.FailNext != 0 {
		t.Fatalf("backend state not cleared: %+v", st)
	}
}

// TestFaultPostUnreachable pins the contract that a fault storm against
// a dead backend is logged, not fatal.
func TestFaultPostUnreachable(t *testing.T) {
	r := &runner{
		spec:    &Spec{Backends: []string{"127.0.0.1:1"}},
		timeout: 200 * time.Millisecond,
		logf:    func(string, ...any) {},
	}
	phase := &Phase{
		Name:       "dead",
		DurationMS: 100,
		Faults:     []FaultStep{{AtMS: 0, Backend: 0, Fault: upstream.FaultSpec{Clear: true}}},
	}
	stop := make(chan struct{})
	defer close(stop)
	r.faultScript(phase, stop)
	if len(r.faultLog) != 1 || r.faultLog[0].Err == "" {
		t.Fatalf("dead-backend step not logged as error: %+v", r.faultLog)
	}
}

// TestCampaignEndToEnd runs a three-phase campaign — constant warmup, a
// flash crowd with a scripted fault storm, and a slow-loris siege —
// against a live in-process gateway, then checks the per-phase report
// rows, the fault log, the slow-loris shed-without-starvation contract,
// and the session artifacts.
func TestCampaignEndToEnd(t *testing.T) {
	srv, err := gateway.New(gateway.Config{
		Workers:     2,
		TraceEvery:  1,
		IdleTimeout: 120 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	b := startBackend(t)

	one := 1.0
	spec := &Spec{
		Name:             "e2e",
		Backends:         []string{b.Addr().String()},
		SampleIntervalMS: 50,
		TimeoutMS:        3000,
		Phases: []Phase{
			{Name: "warmup", Shape: ShapeConstant, UseCase: "FR", DurationMS: 400, Conns: 2},
			{Name: "surge", Shape: ShapeFlash, UseCase: "XJ", DurationMS: 500,
				Conns: 1, BurstConns: 4, BurstMS: 150, DecayMS: 100,
				Faults: []FaultStep{
					{AtMS: 50, Backend: 0, Fault: upstream.FaultSpec{ErrorRate: &one}},
					{AtMS: 300, Backend: 0, Fault: upstream.FaultSpec{Clear: true}},
				}},
			{Name: "siege", Shape: ShapeSlowloris, UseCase: "FR", DurationMS: 700,
				Conns: 3, BackgroundConns: 2, TrickleIntervalMS: 300},
		},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	outDir := t.TempDir()
	res, err := Run(spec, Options{Addr: srv.Addr().String(), OutDir: outDir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 3 {
		t.Fatalf("got %d phase reports, want 3", len(res.Phases))
	}

	warmup, surge, siege := &res.Phases[0], &res.Phases[1], &res.Phases[2]
	if warmup.OK == 0 || warmup.OKPerSec <= 0 || warmup.Forwarded == 0 {
		t.Fatalf("warmup did no work: %+v", warmup)
	}
	if len(warmup.Stages) == 0 || warmup.Stages["process"].Count == 0 {
		t.Fatalf("warmup stage window missing: %+v", warmup.Stages)
	}
	if warmup.Model == nil || warmup.Model.DemandUS <= 0 || warmup.Model.Workers != 2 {
		t.Fatalf("warmup model row missing: %+v", warmup.Model)
	}

	if surge.Translated == 0 || surge.PeakConns != 4 || surge.FaultSteps != 2 {
		t.Fatalf("surge row wrong: %+v", surge)
	}
	if len(res.Faults) != 2 {
		t.Fatalf("fault log has %d events, want 2: %+v", len(res.Faults), res.Faults)
	}
	if res.Faults[0].Err != "" || res.Faults[0].State == nil || !res.Faults[0].State.Active {
		t.Fatalf("fault storm not acknowledged: %+v", res.Faults[0])
	}
	if res.Faults[1].State == nil || res.Faults[1].State.Active {
		t.Fatalf("fault clear not acknowledged: %+v", res.Faults[1])
	}

	// The slow-loris contract: the gateway's idle deadline reaped held
	// connections (trickle 300ms > idle 120ms), yet the background
	// senders kept completing — holds shed without starving the pool.
	if siege.LorisHeld == 0 {
		t.Fatalf("siege held no connections: %+v", siege)
	}
	if siege.GwIdleTimeouts == 0 {
		t.Fatalf("gateway reaped no loris conns (idle_timeouts delta 0): %+v", siege)
	}
	if siege.OK == 0 {
		t.Fatalf("background senders starved during siege: %+v", siege)
	}

	if res.Samples == 0 {
		t.Fatal("campaign recorded no timeline samples")
	}

	// Artifacts: the CSV parses through the stock session reader despite
	// the leading phase column, and the JSONL carries every boundary.
	cf, err := os.Open(filepath.Join(outDir, "session.csv"))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := session.ReadCSV(cf)
	cf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("session.csv has no rows")
	}
	var sawLoad bool
	for _, row := range rows {
		if row.Messages > 0 {
			sawLoad = true
		}
	}
	if !sawLoad {
		t.Fatalf("no CSV sample recorded load: %d rows", len(rows))
	}

	jf, err := os.Open(filepath.Join(outDir, "session.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	starts := map[string]bool{}
	sc := bufio.NewScanner(jf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, `"type":"phase-start"`) {
			for _, p := range spec.Phases {
				if strings.Contains(line, `"phase":"`+p.Name+`"`) {
					starts[p.Name] = true
				}
			}
		}
	}
	if len(starts) != 3 {
		t.Fatalf("JSONL missing phase boundaries: %v", starts)
	}

	// The formatted report renders a row per phase plus the fault log.
	text := FormatReport(res)
	for _, want := range []string{"warmup", "surge", "siege", "fault log", "loris"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}
}
