package campaign

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/capacity"
	"repro/internal/gateway"
)

// Result is the campaign's final accounting — aoncamp emits it as JSON
// next to the formatted report.
type Result struct {
	Name        string        `json:"name"`
	Addr        string        `json:"addr"`
	Seed        uint64        `json:"seed,omitempty"`
	DurationSec float64       `json:"duration_sec"`
	Phases      []PhaseReport `json:"phases"`
	Faults      []FaultEvent  `json:"faults,omitempty"`
	Samples     int           `json:"samples"`
	Artifacts   []string      `json:"artifacts,omitempty"`
}

// PhaseReport is one phase's Figure-5/6-style row: client-side outcome
// accounting, gateway-side counter deltas, the per-stage service-time
// window, and the capacity model's take on the same load.
type PhaseReport struct {
	Name        string  `json:"name"`
	Shape       string  `json:"shape"`
	UseCase     string  `json:"usecase"`
	DurationSec float64 `json:"duration_sec"`
	PeakConns   int     `json:"peak_conns"`

	// Client-side accounting.
	Sent        uint64 `json:"sent"`
	OK          uint64 `json:"ok_200"`
	Shed        uint64 `json:"shed_503"`
	HTTPErrors  uint64 `json:"http_errors"`
	NetErrors   uint64 `json:"net_errors"`
	Forwarded   uint64 `json:"forwarded"`
	Match       uint64 `json:"routed_match"`
	RoutedError uint64 `json:"routed_error"`
	Valid       uint64 `json:"validation_ok"`
	Translated  uint64 `json:"translated"`
	ParseErrors uint64 `json:"parse_errors"`

	OfferedPerSec float64 `json:"offered_per_sec"` // sent+shed+errors per second
	OKPerSec      float64 `json:"ok_per_sec"`
	LatencyP50US  uint64  `json:"latency_p50_us"`
	LatencyP99US  uint64  `json:"latency_p99_us"`

	// Gateway-side deltas between the phase's start and end snapshots.
	GwMessages     uint64 `json:"gw_messages"`
	GwShed         uint64 `json:"gw_shed"`
	GwIdleTimeouts uint64 `json:"gw_idle_timeouts"`
	GwUpstreamErrs uint64 `json:"gw_upstream_errors"`

	// Slow-loris accounting (zero for other shapes).
	LorisHeld      uint64 `json:"loris_held,omitempty"`
	LorisReaped    uint64 `json:"loris_reaped,omitempty"`
	LorisCompleted uint64 `json:"loris_completed,omitempty"`

	// Stages is the phase's windowed per-stage service-time view
	// (read/queue/parse/process/forward/write), from the gateway's
	// cumulative stage histograms differenced across the phase. Nil when
	// the gateway runs without tracing.
	Stages map[string]StageWindow `json:"stages,omitempty"`

	// Model is the capacity model's prediction at this phase's offered
	// load, seeded from the phase's own stage window. Nil when the stage
	// window is empty (no tracing, or an idle phase).
	Model *ModelError `json:"model,omitempty"`

	// FaultSteps counts the scripted fault posts that fired this phase.
	FaultSteps int `json:"fault_steps,omitempty"`
}

// StageWindow is one pipeline stage's share of the phase: how many
// traced requests crossed it and their mean service time, computed as a
// windowed mean between the phase's start/end cumulative snapshots.
type StageWindow struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
}

// ModelError compares the analytic capacity model against the phase's
// measured throughput and tail, the model-error columns of the report.
type ModelError struct {
	// DemandUS is the per-message worker demand the phase's stage window
	// seeded the model with.
	DemandUS float64 `json:"demand_us"`
	Workers  int     `json:"workers"`
	// PredictedPerSec / PredictedP99US at the phase's offered load.
	PredictedPerSec float64 `json:"predicted_per_sec"`
	PredictedP99US  float64 `json:"predicted_p99_us"`
	// AdmissiblePerSec is the model's max load under the campaign's p99
	// target.
	AdmissiblePerSec float64 `json:"admissible_per_sec"`
	ThroughputErrPct float64 `json:"throughput_err_pct"`
	P99ErrPct        float64 `json:"p99_err_pct"`
}

// buildPhaseReport folds the phase's pools and gateway snapshots into
// one report row.
func buildPhaseReport(p *Phase, dur time.Duration, sp *senderPool, lp *lorisPool,
	snapStart, snapEnd *gateway.Snapshot, spec *Spec) *PhaseReport {
	rep := &PhaseReport{
		Name:        p.Name,
		Shape:       string(p.Shape),
		UseCase:     p.UseCase,
		DurationSec: dur.Seconds(),
		PeakConns:   p.PeakWidth(),
		Sent:        sp.sent.Load(),
		OK:          sp.ok.Load(),
		Shed:        sp.shed.Load(),
		HTTPErrors:  sp.httpErr.Load(),
		NetErrors:   sp.netErr.Load(),
		Forwarded:   sp.forwarded.Load(),
		Match:       sp.match.Load(),
		RoutedError: sp.routedErr.Load(),
		Valid:       sp.valid.Load(),
		Translated:  sp.translated.Load(),
		ParseErrors: sp.parseErr.Load(),
		FaultSteps:  len(p.Faults),
	}
	if rep.DurationSec > 0 {
		rep.OfferedPerSec = float64(rep.Sent) / rep.DurationSec
		rep.OKPerSec = float64(rep.OK) / rep.DurationSec
	}
	h := sp.hist.Snapshot()
	rep.LatencyP50US, rep.LatencyP99US = h.P50US, h.P99US
	if lp != nil {
		rep.LorisHeld = lp.held.Load()
		rep.LorisReaped = lp.reaped.Load()
		rep.LorisCompleted = lp.completed.Load()
	}
	rep.GwMessages = delta(snapEnd.Messages, snapStart.Messages)
	rep.GwShed = delta(snapEnd.Shed, snapStart.Shed)
	rep.GwIdleTimeouts = delta(snapEnd.IdleTimeouts, snapStart.IdleTimeouts)
	rep.GwUpstreamErrs = delta(snapEnd.UpstreamErrs, snapStart.UpstreamErrs)

	rep.Stages = stageWindow(snapStart.Stages[p.UseCase], snapEnd.Stages[p.UseCase])
	rep.Model = modelError(rep, snapEnd.Workers, spec)
	return rep
}

func delta(end, start uint64) uint64 {
	if end < start {
		return 0
	}
	return end - start
}

// stageWindow differences two cumulative per-stage snapshot maps into
// the phase's own window: count deltas, and the windowed mean
// (c2·m2 − c1·m1)/(c2 − c1) that removes pre-phase history from the
// cumulative means.
func stageWindow(start, end map[string]gateway.HistSnapshot) map[string]StageWindow {
	if len(end) == 0 {
		return nil
	}
	out := map[string]StageWindow{}
	for stage, e := range end {
		s := start[stage] // zero value when the phase is the stage's first
		if e.Count <= s.Count {
			continue
		}
		n := e.Count - s.Count
		mean := (float64(e.Count)*e.MeanUS - float64(s.Count)*s.MeanUS) / float64(n)
		if mean < 0 {
			mean = 0
		}
		out[stage] = StageWindow{Count: n, MeanUS: mean}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// modelError seeds the capacity model from the phase's own stage window
// and scores it against the measured row.
func modelError(rep *PhaseReport, workers int, spec *Spec) *ModelError {
	if len(rep.Stages) == 0 || workers <= 0 || rep.OKPerSec <= 0 {
		return nil
	}
	d := capacity.StageDemands{
		Read:    rep.Stages["read"].MeanUS / 1e6,
		Parse:   rep.Stages["parse"].MeanUS / 1e6,
		Process: rep.Stages["process"].MeanUS / 1e6,
		Forward: rep.Stages["forward"].MeanUS / 1e6,
		Write:   rep.Stages["write"].MeanUS / 1e6,
	}
	if d.WorkerDemand() <= 0 {
		return nil
	}
	m := capacity.GatewayModel(d, capacity.GatewayTopology{Workers: workers})
	pred := m.Predict(rep.OfferedPerSec)
	me := &ModelError{
		DemandUS:         d.WorkerDemand() * 1e6,
		Workers:          workers,
		PredictedPerSec:  pred.ThroughputPerSec,
		PredictedP99US:   pred.P99US,
		AdmissiblePerSec: m.MaxLoadForP99(float64(spec.TargetP99MS) * 1000),
	}
	me.ThroughputErrPct = errPct(pred.ThroughputPerSec, rep.OKPerSec)
	me.P99ErrPct = errPct(pred.P99US, float64(rep.LatencyP99US))
	return me
}

func errPct(pred, meas float64) float64 {
	if meas <= 0 {
		return 0
	}
	e := 100 * (pred - meas) / meas
	if e < 0 {
		return -e
	}
	return e
}

// FormatReport renders the human-readable campaign report: the per-phase
// scaling table, the model-error columns, the per-phase stage tables,
// and the fault log.
func FormatReport(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %s against %s: %d phases, %.1fs, %d samples",
		res.Name, res.Addr, len(res.Phases), res.DurationSec, res.Samples)
	if res.Seed != 0 {
		fmt.Fprintf(&b, ", seed %d", res.Seed)
	}
	b.WriteString("\n\n")

	fmt.Fprintf(&b, "%-14s %-9s %-5s %6s %6s %10s %8s %8s %8s %6s %6s %6s\n",
		"phase", "shape", "uc", "dur(s)", "peak", "offered/s", "ok/s",
		"p50us", "p99us", "shed", "idle", "flt")
	for i := range res.Phases {
		p := &res.Phases[i]
		fmt.Fprintf(&b, "%-14s %-9s %-5s %6.1f %6d %10.0f %8.0f %8d %8d %6d %6d %6d\n",
			p.Name, p.Shape, p.UseCase, p.DurationSec, p.PeakConns,
			p.OfferedPerSec, p.OKPerSec, p.LatencyP50US, p.LatencyP99US,
			max64(p.Shed, p.GwShed), // client and gateway shed views can differ under overlap
			p.GwIdleTimeouts, p.FaultSteps)
	}

	if anyModel(res.Phases) {
		fmt.Fprintf(&b, "\ncapacity model vs measured (per phase):\n")
		fmt.Fprintf(&b, "%-14s %9s %7s %10s %7s %10s %7s %12s\n",
			"phase", "demand-us", "workers", "pred/s", "err%", "pred-p99", "err%", "admissible/s")
		for i := range res.Phases {
			p := &res.Phases[i]
			if p.Model == nil {
				fmt.Fprintf(&b, "%-14s %9s\n", p.Name, "-")
				continue
			}
			m := p.Model
			fmt.Fprintf(&b, "%-14s %9.0f %7d %10.0f %7.1f %10.0f %7.1f %12.0f\n",
				p.Name, m.DemandUS, m.Workers, m.PredictedPerSec, m.ThroughputErrPct,
				m.PredictedP99US, m.P99ErrPct, m.AdmissiblePerSec)
		}
	}

	for i := range res.Phases {
		p := &res.Phases[i]
		if len(p.Stages) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\nphase %s stage window (mean us over %d+ traced):\n", p.Name, minStageCount(p.Stages))
		for _, stage := range gateway.StageNames() {
			w, ok := p.Stages[stage]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "  %-8s %8.0fus  (n=%d)\n", stage, w.MeanUS, w.Count)
		}
		if p.LorisHeld > 0 || p.LorisReaped > 0 {
			fmt.Fprintf(&b, "  loris: held=%d reaped=%d completed=%d (gateway reaped %d by idle deadline)\n",
				p.LorisHeld, p.LorisReaped, p.LorisCompleted, p.GwIdleTimeouts)
		}
	}

	if len(res.Faults) > 0 {
		fmt.Fprintf(&b, "\nfault log (%d steps):\n", len(res.Faults))
		for _, ev := range res.Faults {
			state := "ok"
			if ev.Err != "" {
				state = "ERR " + ev.Err
			} else if ev.State != nil {
				state = fmt.Sprintf("active=%v dropped=%d errored=%d", ev.State.Active, ev.State.Dropped, ev.State.Errored)
			}
			fmt.Fprintf(&b, "  %-14s +%-6dms %-21s %-30s %s\n",
				ev.Phase, ev.AtMS, ev.Backend, describeFault(ev.Fault, nil), state)
		}
	}
	return b.String()
}

func anyModel(phases []PhaseReport) bool {
	for i := range phases {
		if phases[i].Model != nil {
			return true
		}
	}
	return false
}

func minStageCount(stages map[string]StageWindow) uint64 {
	counts := make([]uint64, 0, len(stages))
	for _, w := range stages {
		counts = append(counts, w.Count)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] < counts[j] })
	if len(counts) == 0 {
		return 0
	}
	return counts[0]
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
