package campaign

import (
	"math"
	"time"
)

// WidthAt evaluates the phase's traffic envelope: how many concurrent
// senders should be live at `elapsed` since phase start. Pure function
// of the phase and the offset, so the schedule is unit-testable without
// a gateway.
//
//   - constant:  Conns for the whole phase.
//   - ramp:      linear Conns → ConnsTo across the duration.
//   - diurnal:   half-cosine swell Conns → ConnsTo → Conns — one
//     compressed day in a phase.
//   - flash:     BurstConns while elapsed < BurstMS, then exponential
//     decay back toward Conns with time constant DecayMS.
//   - slowloris: Conns held tricklers (the background senders are a
//     separate pool, see Phase.BackgroundConns).
func (p *Phase) WidthAt(elapsed time.Duration) int {
	if elapsed < 0 {
		elapsed = 0
	}
	d := p.Duration()
	if elapsed > d {
		elapsed = d
	}
	t := elapsed.Seconds()
	total := d.Seconds()
	switch p.Shape {
	case ShapeRamp:
		if total <= 0 {
			return p.Conns
		}
		frac := t / total
		return roundWidth(float64(p.Conns) + (float64(p.ConnsTo)-float64(p.Conns))*frac)
	case ShapeDiurnal:
		if total <= 0 {
			return p.Conns
		}
		// (1-cos)/2 runs 0→1→0 over the phase: trough at the edges,
		// peak (ConnsTo) at the midpoint.
		swell := (1 - math.Cos(2*math.Pi*t/total)) / 2
		return roundWidth(float64(p.Conns) + (float64(p.ConnsTo)-float64(p.Conns))*swell)
	case ShapeFlash:
		burst := float64(p.BurstMS) / 1000
		if t < burst {
			return p.BurstConns
		}
		decay := float64(p.DecayMS) / 1000
		if decay <= 0 {
			return p.Conns
		}
		excess := float64(p.BurstConns-p.Conns) * math.Exp(-(t-burst)/decay)
		return roundWidth(float64(p.Conns) + excess)
	default: // constant, slowloris
		return p.Conns
	}
}

// roundWidth rounds to nearest and floors at 1 — a live phase never
// drops to zero senders.
func roundWidth(w float64) int {
	n := int(math.Round(w))
	if n < 1 {
		return 1
	}
	return n
}

// PeakWidth scans the envelope for its maximum — reports use it as the
// "peak conns" column, and the runner sizes its sender pool from it.
func (p *Phase) PeakWidth() int {
	switch p.Shape {
	case ShapeConstant, ShapeSlowloris:
		return p.Conns
	case ShapeFlash:
		return p.BurstConns
	case ShapeRamp, ShapeDiurnal:
		if p.ConnsTo > p.Conns {
			return p.ConnsTo
		}
		return p.Conns
	}
	return p.Conns
}
