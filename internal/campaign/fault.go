package campaign

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/upstream"
)

// FaultEvent records one scripted fault step as it fired: which phase,
// when, against which backend, and the backend's acknowledged state (or
// the error if the POST failed — a fault storm against a dead backend is
// itself a finding, not a campaign abort).
type FaultEvent struct {
	Phase   string               `json:"phase"`
	AtMS    int                  `json:"at_ms"`
	Backend string               `json:"backend"`
	Fault   upstream.FaultSpec   `json:"fault"`
	State   *upstream.FaultState `json:"state,omitempty"`
	Err     string               `json:"err,omitempty"`
}

// PostFault sends one POST /fault to an aonback control plane and
// returns the acknowledged fault state.
func PostFault(addr string, spec upstream.FaultSpec, timeout time.Duration) (*upstream.FaultState, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("campaign: fault spec: %w", err)
	}
	return faultRoundTrip(addr, "POST", body, timeout)
}

// GetFault reads a backend's current fault state without changing it.
func GetFault(addr string, timeout time.Duration) (*upstream.FaultState, error) {
	return faultRoundTrip(addr, "GET", nil, timeout)
}

// faultRoundTrip speaks the backend's minimal HTTP/1.1 control plane
// directly over a fresh connection — the campaign runner must not
// depend on net/http for a two-line exchange the repo frames by hand
// everywhere else.
func faultRoundTrip(addr, method string, body []byte, timeout time.Duration) (*upstream.FaultState, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("campaign: fault %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	req := fmt.Sprintf("%s /fault HTTP/1.1\r\nHost: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s",
		method, addr, len(body), body)
	if _, err := conn.Write([]byte(req)); err != nil {
		return nil, fmt.Errorf("campaign: fault %s: %w", addr, err)
	}
	resp, err := readAll(conn)
	if err != nil {
		return nil, fmt.Errorf("campaign: fault %s: %w", addr, err)
	}
	head, payload, ok := strings.Cut(resp, "\r\n\r\n")
	if !ok {
		return nil, fmt.Errorf("campaign: fault %s: malformed response %.80q", addr, resp)
	}
	if !strings.Contains(head, " 200 ") {
		return nil, fmt.Errorf("campaign: fault %s: %s", addr, strings.SplitN(head, "\r\n", 2)[0])
	}
	var st upstream.FaultState
	if err := json.Unmarshal([]byte(payload), &st); err != nil {
		return nil, fmt.Errorf("campaign: fault %s: bad state payload: %w", addr, err)
	}
	return &st, nil
}

// readAll drains a Connection: close response.
func readAll(conn net.Conn) (string, error) {
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			if sb.Len() > 0 {
				return sb.String(), nil
			}
			return "", err
		}
	}
}

// faultScript runs one phase's fault steps at their offsets, appending
// events to the shared log under mu. It returns when all steps have
// fired or stop closes.
func (r *runner) faultScript(phase *Phase, stop <-chan struct{}) {
	start := time.Now()
	// Steps fire in at_ms order regardless of spec order.
	steps := make([]FaultStep, len(phase.Faults))
	copy(steps, phase.Faults)
	for i := 1; i < len(steps); i++ {
		for j := i; j > 0 && steps[j].AtMS < steps[j-1].AtMS; j-- {
			steps[j], steps[j-1] = steps[j-1], steps[j]
		}
	}
	for _, step := range steps {
		due := time.Duration(step.AtMS)*time.Millisecond - time.Since(start)
		if due > 0 {
			select {
			case <-stop:
				return
			case <-time.After(due):
			}
		}
		addr := r.spec.Backends[step.Backend]
		ev := FaultEvent{Phase: phase.Name, AtMS: step.AtMS, Backend: addr, Fault: step.Fault}
		st, err := PostFault(addr, step.Fault, r.timeout)
		if err != nil {
			ev.Err = err.Error()
		} else {
			ev.State = st
		}
		r.mu.Lock()
		r.faultLog = append(r.faultLog, ev)
		r.mu.Unlock()
		r.logf("campaign: phase %s +%dms fault -> %s (%s)", phase.Name, step.AtMS, addr, describeFault(step.Fault, err))
	}
}

// describeFault renders a one-line human summary of a fault step.
func describeFault(f upstream.FaultSpec, err error) string {
	if err != nil {
		return "post failed: " + err.Error()
	}
	var parts []string
	if f.Clear {
		parts = append(parts, "clear")
	}
	if f.FailNext != nil {
		parts = append(parts, fmt.Sprintf("fail_next=%d", *f.FailNext))
	}
	if f.ErrorRate != nil {
		parts = append(parts, fmt.Sprintf("error_rate=%.2f", *f.ErrorRate))
	}
	if f.ExtraDelayMS != nil {
		parts = append(parts, fmt.Sprintf("extra_delay_ms=%.0f", *f.ExtraDelayMS))
	}
	if f.DownMS != nil {
		parts = append(parts, fmt.Sprintf("down_ms=%.0f", *f.DownMS))
	}
	if len(parts) == 0 {
		return "state query"
	}
	return strings.Join(parts, " ")
}
