// Package netperf is a workalike of the bulk-data-transfer benchmark the
// paper uses for its baseline measurements (Section 3.2.2): the TCP stream
// test in two modes.
//
//   - End-to-end: the system under test runs the netperf sender against a
//     remote netserver across the gigabit link. Throughput is limited by
//     the wire; the interesting observable is how much CPU the stack
//     consumes (and how idle the other processors sit).
//   - Loopback: netperf and netserver run on the same host. No wire is
//     involved; throughput is limited by memory copies, cache behaviour
//     and — on multi-processor configurations — coherence traffic between
//     the processing units, the mechanism behind Figure 2's loopback
//     ordering.
package netperf

import (
	"repro/internal/netsim"
	"repro/internal/perf/trace"
	"repro/internal/sim/sched"
)

// SendSize is netperf's default send-buffer size for the TCP stream test.
const SendSize = 16 << 10

// LoopbackSockBytes is the loopback socket-buffer size (the Linux 2.6
// tcp_wmem default). It bounds the data in flight between the two
// processes: the receiver consumes lines the sender wrote moments ago, so
// on multi-core configurations they are still dirty in the sender's L1 —
// the coherence traffic behind the paper's 2CPm and 2PPx loopback
// degradation (Figure 2, Table 3).
const LoopbackSockBytes = 16 << 10

// Mode selects the benchmark topology.
type Mode int

const (
	// Loopback runs sender and receiver on the same simulated host.
	Loopback Mode = iota
	// EndToEnd runs the sender against a remote sink over the link.
	EndToEnd
)

func (m Mode) String() string {
	if m == Loopback {
		return "loopback"
	}
	return "end-to-end"
}

// Bench is one netperf run's wiring.
type Bench struct {
	E    *sched.Engine
	Mode Mode

	// Loopback plumbing.
	sock *netsim.SockBuf

	// End-to-end plumbing.
	tx *netsim.Link

	// BytesReceived counts payload delivered to the consumer (loopback)
	// or onto the wire (end-to-end).
	BytesReceived uint64
}

// New wires a netperf bench into an engine. For end-to-end mode, tx is the
// transmit link to the remote netserver (pass nil for loopback).
func New(e *sched.Engine, mode Mode, tx *netsim.Link) *Bench {
	b := &Bench{E: e, Mode: mode, tx: tx}
	if mode == Loopback {
		b.sock = netsim.NewSockBuf(LoopbackSockBytes)
	}
	return b
}

// Spawn starts the benchmark's threads. In loopback mode netperf and
// netserver are separate processes: on a single-CPU configuration they
// time-share CPU0 (with address-space switches); with two or more logical
// CPUs they run on CPU0 and CPU1 as the 2.6 kernel would spread them.
func (b *Bench) Spawn() {
	switch b.Mode {
	case Loopback:
		recvCPU := 0
		if b.E.CPUs() > 1 {
			recvCPU = 1
		}
		b.E.Spawn("netperf-send", 0, 1, 0, b.senderLoopback())
		b.E.Spawn("netserver-recv", recvCPU, 2, 0, b.receiverLoopback())
	case EndToEnd:
		b.E.Spawn("netperf-send", 0, 1, 0, b.senderWire())
	}
}

// senderLoopback is the netperf process: copy the user buffer into the
// socket buffer (through the loopback device there is one copy in and one
// copy out, plus per-MSS protocol processing) and block on flow control.
func (b *Bench) senderLoopback() sched.Proc {
	proc := b.E.Space.NewProcess()
	userBuf := proc.Alloc(SendSize)
	// The loopback skb data cycles through the socket-buffer window: at
	// most SockBufBytes are ever in flight, so the receiver pulls lines
	// the sender wrote very recently — still dirty in the sender's L1 on
	// a multi-core configuration. This recycling is what exposes the
	// cross-core coherence cost the paper measures on 2CPm and 2PPx.
	sockArena := trace.SubArena(proc, 2*LoopbackSockBytes)
	metaArena := trace.SubArena(proc, 1<<20)
	buf := trace.NewBuffer(1 << 14)
	return sched.ProcFunc(func(ctx *sched.Ctx) sched.Status {
		if !b.sock.HasSpace(SendSize) {
			return sched.StatusWait(&b.sock.NotFull)
		}
		buf.Reset()
		netsim.EmitSyscall(buf, metaArena.Base(), sendSyscallCost)
		off := 0
		first := uint64(0)
		for _, seg := range netsim.Segments(SendSize) {
			kaddr := sockArena.Alloc(uint64(seg))
			if off == 0 {
				first = kaddr
			}
			netsim.EmitTxHeader(buf, kaddr, off/netsim.MSS)
			netsim.EmitCopy(buf, kaddr, userBuf+uint64(off), seg)
			off += seg
		}
		ctx.ExecBuffer(buf)
		// The chunk becomes visible to the receiver only after the copy
		// work is done (push timestamped post-execution).
		b.sock.Push(netsim.Chunk{Bytes: SendSize, Addr: first}, ctx.Now())
		return sched.StatusYield()
	})
}

// receiverLoopback is the netserver process: pop, per-segment receive
// processing, copy to user space.
func (b *Bench) receiverLoopback() sched.Proc {
	proc := b.E.Space.NewProcess()
	userBuf := proc.Alloc(SendSize)
	metaArena := trace.SubArena(proc, 1<<20)
	buf := trace.NewBuffer(1 << 14)
	return sched.ProcFunc(func(ctx *sched.Ctx) sched.Status {
		chunk, ok := b.sock.Claim()
		if !ok {
			return sched.StatusWait(&b.sock.NotEmpty)
		}
		buf.Reset()
		netsim.EmitSyscall(buf, metaArena.Base(), recvSyscallCost)
		off := 0
		for i, seg := range netsim.Segments(chunk.Bytes) {
			netsim.EmitRxHeader(buf, chunk.Addr+uint64(off), i)
			netsim.EmitCopy(buf, userBuf+uint64(off), chunk.Addr+uint64(off), seg)
			off += seg
		}
		ctx.ExecBuffer(buf)
		// Window reopens only once the data has left the socket buffer.
		b.sock.Free(chunk.Bytes, ctx.Now())
		b.BytesReceived += uint64(chunk.Bytes)
		return sched.StatusYield()
	})
}

// senderWire is the end-to-end sender: full transmit-side stack work per
// segment, DMA to the NIC, and TCP-window-limited wire pacing. The remote
// netserver is an infinite sink.
func (b *Bench) senderWire() sched.Proc {
	proc := b.E.Space.NewProcess()
	userBuf := proc.Alloc(SendSize)
	sockArena := trace.SubArena(proc, 256<<10)
	buf := trace.NewBuffer(1 << 14)
	m := b.E.M
	windowCycles := m.Cycles(float64(netsim.SockBufBytes*8) / b.tx.Bps)
	segTime := m.Cycles(float64(netsim.MSS+netsim.WireOverhead) * 8 / b.tx.Bps)
	return sched.ProcFunc(func(ctx *sched.Ctx) sched.Status {
		// TCP flow control: never run more than one socket buffer ahead
		// of the wire. Wake only once at least a full segment of window
		// has reopened, so the sleep always advances simulated time.
		if lag := b.tx.Backlog(ctx.Now()); lag > windowCycles {
			return sched.StatusSleep(ctx.Now() + (lag - windowCycles) + segTime)
		}
		buf.Reset()
		netsim.EmitSyscall(buf, sockArena.Base(), sendSyscallCost)
		off := 0
		for i, seg := range netsim.Segments(SendSize) {
			kaddr := sockArena.Alloc(uint64(seg))
			netsim.EmitTxHeader(buf, kaddr, i)
			netsim.EmitCopy(buf, kaddr, userBuf+uint64(off), seg)
			off += seg
		}
		ctx.ExecBuffer(buf)
		for _, seg := range netsim.Segments(SendSize) {
			m.DMARead(ctx.Now(), sockArena.Base(), seg)
			b.tx.Reserve(ctx.Now(), seg+netsim.WireOverhead)
		}
		b.tx.AddPayload(SendSize)
		b.BytesReceived += SendSize
		return sched.StatusYield()
	})
}

// Syscall path costs per 16 KB send/recv — far fewer crossings per byte
// than the AON message path since netperf streams large buffers.
const (
	sendSyscallCost = 1800
	recvSyscallCost = 1500
)
