package netperf

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/perf/counters"
	"repro/internal/perf/machine"
	"repro/internal/sim/sched"
)

// benchRun holds a steady-state measurement (post-warmup) of one run.
type benchRun struct {
	bench *Bench
	m     *machine.Machine
	mbps  float64
}

func runBench(t *testing.T, id machine.ConfigID, mode Mode, ms float64) benchRun {
	t.Helper()
	m := machine.New(id, machine.Options{})
	e := sched.NewEngine(m)
	var tx *netsim.Link
	if mode == EndToEnd {
		tx = netsim.NewLink(m, 1e9)
	}
	b := New(e, mode, tx)
	b.Spawn()
	// Warm up past the initial window burst, then measure a delta.
	warm := m.Cycles(1e-3)
	e.Run(func(*sched.Engine) bool { return m.MaxNow() >= warm })
	t0, b0 := m.MaxNow(), b.BytesReceived
	end := t0 + m.Cycles(ms*1e-3)
	e.Run(func(*sched.Engine) bool { return m.MaxNow() >= end })
	rate := float64(b.BytesReceived-b0) * 8 / m.Seconds(m.MaxNow()-t0) / 1e6
	return benchRun{bench: b, m: m, mbps: rate}
}

func TestLoopbackMovesData(t *testing.T) {
	r := runBench(t, machine.OneCPm, Loopback, 2)
	b, m := r.bench, r.m
	if b.BytesReceived == 0 {
		t.Fatal("no data moved")
	}
	if b.BytesReceived%SendSize != 0 {
		t.Fatalf("partial chunks received: %d", b.BytesReceived)
	}
	sys := m.SystemCounters()
	if sys.Get(counters.InstrRetired) == 0 {
		t.Fatal("no instructions")
	}
	// Loopback on a warm single core must not touch the bus much.
	metrics := counters.Derive(sys)
	if metrics.BTPI > 0.1 {
		t.Fatalf("single-CPU loopback BTPI = %.2f%%, want ~0", metrics.BTPI)
	}
}

func TestEndToEndSaturatesWire(t *testing.T) {
	r := runBench(t, machine.OneCPm, EndToEnd, 4)
	if r.mbps < 850 || r.mbps > 1000 {
		t.Fatalf("end-to-end throughput = %.0f Mbps, want ~937", r.mbps)
	}
}

func TestEndToEndWireBoundOnAllConfigs(t *testing.T) {
	var rates []float64
	for _, id := range machine.AllConfigs {
		rates = append(rates, runBench(t, id, EndToEnd, 3).mbps)
	}
	for i, r := range rates {
		if r < 850 || r > 1000 {
			t.Fatalf("config %s end-to-end = %.0f Mbps", machine.AllConfigs[i], r)
		}
	}
}

func TestLoopbackDualPackageCollapse(t *testing.T) {
	single := runBench(t, machine.OneLPx, Loopback, 3)
	dual := runBench(t, machine.TwoPPx, Loopback, 3)
	r1, r2 := single.mbps, dual.mbps
	if r2 >= 0.8*r1 {
		t.Fatalf("2PPx loopback did not collapse: %.0f vs %.0f Mbps", r2, r1)
	}
	// The collapse must come with heavy coherence bus traffic.
	d := counters.Derive(dual.m.SystemCounters())
	if d.BTPI < 0.5 {
		t.Fatalf("2PPx collapse without bus traffic: BTPI=%.2f%%", d.BTPI)
	}
}

func TestLoopbackDualCoreDegrades(t *testing.T) {
	single := runBench(t, machine.OneCPm, Loopback, 3)
	dual := runBench(t, machine.TwoCPm, Loopback, 3)
	r1, r2 := single.mbps, dual.mbps
	if r2 >= r1 {
		t.Fatalf("2CPm loopback did not degrade: %.0f vs %.0f Mbps", r2, r1)
	}
	if r2 < 0.4*r1 {
		t.Fatalf("2CPm degradation too severe (%.0f vs %.0f): shared L2 should soften it", r2, r1)
	}
}

func TestBranchFrequencyPlatformGap(t *testing.T) {
	pmRun := runBench(t, machine.OneCPm, Loopback, 2)
	xeRun := runBench(t, machine.OneLPx, Loopback, 2)
	pm := counters.Derive(pmRun.m.SystemCounters()).BranchFreq
	xe := counters.Derive(xeRun.m.SystemCounters()).BranchFreq
	ratio := pm / xe
	if ratio < 1.5 || ratio > 2.4 {
		t.Fatalf("branch-frequency ratio PM/Xeon = %.2f, want ~2 (Table 3)", ratio)
	}
}

func TestModeString(t *testing.T) {
	if Loopback.String() != "loopback" || EndToEnd.String() != "end-to-end" {
		t.Fatal("mode names wrong")
	}
}
