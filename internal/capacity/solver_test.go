package capacity

import (
	"math"
	"testing"
)

const (
	msD  = 0.010 // 10ms service demand used throughout
	tolF = 1e-9
)

func closeTo(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestMM1ClosedForm pins the solver against the textbook M/M/1 results
// at several loads: R = D/(1-rho), U = rho, Lq = rho^2/(1-rho), and the
// exponential sojourn percentiles that are exact for M/M/1.
func TestMM1ClosedForm(t *testing.T) {
	m := &Model{Stations: []Station{{Name: "workers", Kind: Queue, Servers: 1, Demand: msD}}}
	mu := 1 / msD // 100/s
	for _, lambda := range []float64{10, 50, 80, 95} {
		p := m.Predict(lambda)
		rho := lambda / mu
		wantR := msD / (1 - rho) // seconds
		if !closeTo(p.MeanUS, wantR*1e6, 1e-3) {
			t.Fatalf("lambda=%v: mean %v us, want %v", lambda, p.MeanUS, wantR*1e6)
		}
		if p.ThroughputPerSec != lambda || p.Saturated {
			t.Fatalf("lambda=%v: throughput %v saturated=%v", lambda, p.ThroughputPerSec, p.Saturated)
		}
		st := p.Stations[0]
		if !closeTo(st.Utilization, rho, tolF) {
			t.Fatalf("lambda=%v: util %v, want %v", lambda, st.Utilization, rho)
		}
		wantLq := rho * rho / (1 - rho)
		if !closeTo(st.QueueLen, wantLq, 1e-6) {
			t.Fatalf("lambda=%v: Lq %v, want %v", lambda, st.QueueLen, wantLq)
		}
		// Exact M/M/1 sojourn percentiles: -ln(1-q)/(mu-lambda).
		wantP99 := -math.Log(0.01) / (mu - lambda) * 1e6
		if !closeTo(p.P99US, wantP99, 1e-3) {
			t.Fatalf("lambda=%v: p99 %v us, want %v", lambda, p.P99US, wantP99)
		}
		// Little's law population.
		if !closeTo(p.InSystem, lambda*wantR, 1e-6) {
			t.Fatalf("lambda=%v: in-system %v, want %v", lambda, p.InSystem, lambda*wantR)
		}
	}
}

// TestMMCClosedForm pins M/M/2 against the standard closed form: the
// waiting probability for c=2 is 2*rho^2/(1+rho) and Wq = Pw/(c*mu-lambda).
func TestMMCClosedForm(t *testing.T) {
	m := &Model{Stations: []Station{{Name: "workers", Kind: Queue, Servers: 2, Demand: msD}}}
	mu := 1 / msD
	for _, lambda := range []float64{50, 100, 150, 190} {
		p := m.Predict(lambda)
		rho := lambda / (2 * mu)
		pw := 2 * rho * rho / (1 + rho)
		wq := pw / (2*mu - lambda)
		wantMean := (wq + msD) * 1e6
		if !closeTo(p.MeanUS, wantMean, 1e-3) {
			t.Fatalf("lambda=%v: mean %v us, want %v", lambda, p.MeanUS, wantMean)
		}
		st := p.Stations[0]
		if !closeTo(st.Utilization, rho, tolF) {
			t.Fatalf("lambda=%v: util %v, want %v", lambda, st.Utilization, rho)
		}
		if !closeTo(st.WaitUS, wq*1e6, 1e-3) {
			t.Fatalf("lambda=%v: wait %v us, want %v", lambda, st.WaitUS, wq*1e6)
		}
		if !closeTo(st.QueueLen, lambda*wq, 1e-6) {
			t.Fatalf("lambda=%v: Lq %v, want %v", lambda, st.QueueLen, lambda*wq)
		}
	}
}

// TestSaturationAsymptote drives past capacity: throughput pins at c/D,
// the prediction is flagged saturated, and the bottleneck is named.
func TestSaturationAsymptote(t *testing.T) {
	m := &Model{Stations: []Station{{Name: "workers", Kind: Queue, Servers: 4, Demand: msD}}}
	capacity := 4 / msD // 400/s
	for _, lambda := range []float64{400, 500, 4000} {
		p := m.Predict(lambda)
		if !p.Saturated {
			t.Fatalf("lambda=%v: not saturated", lambda)
		}
		if !closeTo(p.ThroughputPerSec, capacity, tolF) {
			t.Fatalf("lambda=%v: throughput %v, want %v", lambda, p.ThroughputPerSec, capacity)
		}
		if p.Bottleneck != "workers" {
			t.Fatalf("lambda=%v: bottleneck %q", lambda, p.Bottleneck)
		}
		if math.IsInf(p.MeanUS, 1) || math.IsNaN(p.MeanUS) {
			t.Fatalf("lambda=%v: saturated mean must stay finite, got %v", lambda, p.MeanUS)
		}
	}
	// Below capacity throughput equals offered.
	if p := m.Predict(399); p.Saturated || p.ThroughputPerSec != 399 {
		t.Fatalf("just under capacity mispredicted: %+v", p)
	}
}

// TestTandemNetwork checks a two-station tandem: residence adds, the
// slower station is the bottleneck, and each station's report matches
// its own closed form at the shared flow.
func TestTandemNetwork(t *testing.T) {
	fast := Station{Name: "parse", Kind: Queue, Servers: 1, Demand: 0.002}
	slow := Station{Name: "validate", Kind: Queue, Servers: 1, Demand: 0.008}
	m := &Model{Stations: []Station{fast, slow}}
	lambda := 100.0
	p := m.Predict(lambda)
	wantFast := fast.Demand / (1 - lambda*fast.Demand)
	wantSlow := slow.Demand / (1 - lambda*slow.Demand)
	if !closeTo(p.MeanUS, (wantFast+wantSlow)*1e6, 1e-3) {
		t.Fatalf("tandem mean %v us, want %v", p.MeanUS, (wantFast+wantSlow)*1e6)
	}
	if p.Bottleneck != "validate" {
		t.Fatalf("tandem bottleneck %q, want validate", p.Bottleneck)
	}
	if sat := m.Predict(1000); !sat.Saturated || !closeTo(sat.ThroughputPerSec, 1/slow.Demand, tolF) {
		t.Fatalf("tandem saturation wrong: %+v", sat)
	}
}

// TestDelayStationNeverQueues: a delay station contributes its demand to
// residence, no wait, and never saturates.
func TestDelayStationNeverQueues(t *testing.T) {
	m := &Model{Stations: []Station{
		{Name: "frontend", Kind: Delay, Demand: 0.001},
		{Name: "workers", Kind: Queue, Servers: 2, Demand: msD},
	}}
	p := m.Predict(100)
	rho := 100 * msD / 2
	pw := 2 * rho * rho / (1 + rho)
	wq := pw / (2/msD - 100)
	want := (0.001 + wq + msD) * 1e6
	if !closeTo(p.MeanUS, want, 1e-3) {
		t.Fatalf("delay+queue mean %v us, want %v", p.MeanUS, want)
	}
	if p.Bottleneck != "workers" {
		t.Fatalf("bottleneck %q, want workers (delay never binds)", p.Bottleneck)
	}
}

// TestOverlappedStation: an overlapped backend pool bounds saturation
// and reports utilization, but adds no residence time (its holding time
// is nested in the worker demand).
func TestOverlappedStation(t *testing.T) {
	m := &Model{Stations: []Station{
		{Name: "workers", Kind: Queue, Servers: 8, Demand: msD},
		{Name: "backends", Kind: Overlapped, Servers: 2, Demand: 0.008},
	}}
	// Backends saturate at 2/0.008 = 250/s, workers at 800/s.
	p := m.Predict(1000)
	if p.Bottleneck != "backends" || !closeTo(p.ThroughputPerSec, 250, tolF) {
		t.Fatalf("overlapped bottleneck wrong: %+v", p)
	}
	// At a feasible load the overlapped station must not inflate the
	// residence: mean = workers' residence only.
	p = m.Predict(100)
	var workersResidence float64
	for _, st := range p.Stations {
		if st.Name == "workers" {
			workersResidence = st.ResidenceUS
		}
		if st.Name == "backends" && !closeTo(st.Utilization, 100*0.008/2, tolF) {
			t.Fatalf("backend util %v, want %v", st.Utilization, 100*0.008/2)
		}
	}
	if !closeTo(p.MeanUS, workersResidence, 1e-6) {
		t.Fatalf("overlapped station added residence: mean %v vs workers %v", p.MeanUS, workersResidence)
	}
}

// TestMaxLoadForP99 checks the bisection against the exact M/M/1
// inversion: p99(lambda) = ln(100)/(mu-lambda) <= T gives
// lambda* = mu - ln(100)/T.
func TestMaxLoadForP99(t *testing.T) {
	m := &Model{Stations: []Station{{Name: "workers", Kind: Queue, Servers: 1, Demand: msD}}}
	mu := 1 / msD
	targetUS := 100000.0 // 100ms
	want := mu - (-math.Log(0.01))/(targetUS/1e6)
	got := m.MaxLoadForP99(targetUS)
	if !closeTo(got, want, 1e-3) {
		t.Fatalf("lambda* = %v, want %v", got, want)
	}
	// The returned load really meets the target and a nudge above breaks it.
	if p := m.Predict(got); p.P99US > targetUS*(1+1e-6) {
		t.Fatalf("p99 at lambda* = %v > target %v", p.P99US, targetUS)
	}
	if p := m.Predict(got + 1); p.P99US <= targetUS {
		t.Fatalf("lambda*+1 still meets target: %v", p.P99US)
	}
	// An unmeetable target (tighter than the bare service time) admits 0.
	if got := m.MaxLoadForP99(1); got != 0 {
		t.Fatalf("impossible target admitted %v", got)
	}
}

// TestGatewayModelShape: the standard topology builder folds stages into
// the right stations and drops what it cannot model.
func TestGatewayModelShape(t *testing.T) {
	d := StageDemands{Read: 0.0001, Queue: 0.005, Parse: 0.001, Process: 0.002, Forward: 0.003, Write: 0.0002}
	m := GatewayModel(d, GatewayTopology{Workers: 4, BackendConns: 8, Backends: 2})
	if len(m.Stations) != 3 {
		t.Fatalf("stations = %d, want 3: %+v", len(m.Stations), m.Stations)
	}
	byName := map[string]Station{}
	for _, st := range m.Stations {
		byName[st.Name] = st
	}
	if fe := byName["frontend"]; fe.Kind != Delay || !closeTo(fe.Demand, 0.0003, tolF) {
		t.Fatalf("frontend wrong: %+v", fe)
	}
	// Queue-stage time is predicted, never a demand.
	if w := byName["workers"]; w.Servers != 4 || !closeTo(w.Demand, 0.006, tolF) {
		t.Fatalf("workers wrong: %+v", w)
	}
	if b := byName["backends"]; b.Kind != Overlapped || b.Servers != 16 || !closeTo(b.Demand, 0.0015, tolF) {
		t.Fatalf("backends wrong: %+v", b)
	}
	// In-place mode: no backend station.
	if m := GatewayModel(StageDemands{Parse: 0.001, Process: 0.001}, GatewayTopology{Workers: 2}); len(m.Stations) != 1 {
		t.Fatalf("in-place model has %d stations, want 1", len(m.Stations))
	}
	if (&Model{}).Valid() {
		t.Fatal("empty model claims validity")
	}
}
