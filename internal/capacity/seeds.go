package capacity

import "strings"

// seedTable holds the built-in per-use-case stage-demand seeds: rough
// loopback service times for the paper's 5 KB message, measured once on
// the reference development box and rounded. They exist so offline
// what-if modeling (aoncap, campaign pre-flight) has a starting point per
// use case before any session or calibration artifact exists — a seed,
// not a measurement; replace with -csv/-calibration data when available.
//
// The ordering tells the paper's story: FR touches no XML, DPI scans
// bytes, AUTH hashes them, CBR parses + routes, XJ parses + re-emits,
// SV parses + validates.
var seedTable = map[string]StageDemands{
	"FR":   {Read: 40e-6, Parse: 25e-6, Process: 5e-6, Write: 15e-6},
	"CBR":  {Read: 40e-6, Parse: 25e-6, Process: 350e-6, Write: 15e-6},
	"SV":   {Read: 40e-6, Parse: 25e-6, Process: 700e-6, Write: 15e-6},
	"DPI":  {Read: 40e-6, Parse: 25e-6, Process: 120e-6, Write: 15e-6},
	"AUTH": {Read: 40e-6, Parse: 25e-6, Process: 90e-6, Write: 15e-6},
	"XJ":   {Read: 40e-6, Parse: 25e-6, Process: 520e-6, Write: 20e-6},
}

// SeedDemands returns the built-in stage-demand seed for a use-case name
// (case-insensitive), and whether one exists.
func SeedDemands(ucName string) (StageDemands, bool) {
	d, ok := seedTable[strings.ToUpper(strings.TrimSpace(ucName))]
	return d, ok
}

// SeededUseCases lists the use-case names with built-in demand seeds, in
// the paper's network-I/O→CPU-intensive order.
func SeededUseCases() []string {
	return []string{"FR", "CBR", "SV", "DPI", "AUTH", "XJ"}
}
