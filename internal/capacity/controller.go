package capacity

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// ControllerConfig parameterizes the model-driven admission controller.
// Zero values take the documented defaults; the Static* fields are the
// operator's fixed flags, which every fallback path returns to.
type ControllerConfig struct {
	// TargetP99 is the latency bound adaptive admission defends: the
	// admission bound is set so the model's predicted p99 at the
	// admitted load stays at or under it.
	TargetP99 time.Duration
	// StaticWorkers and StaticBound are the fixed-flag settings the
	// controller falls back to on stale observations or model
	// divergence.
	StaticWorkers int
	StaticBound   int64
	// MinWorkers/MaxWorkers clamp the pool width (defaults: 1 and
	// StaticWorkers).
	MinWorkers int
	MaxWorkers int
	// MinInflight/MaxInflight clamp the admission bound (defaults:
	// MinWorkers+1 and 4x StaticBound).
	MinInflight int64
	MaxInflight int64
	// Hysteresis is the relative change a recomputed setting needs
	// before the controller moves it (default 0.15) — the damping that
	// keeps the pool and bound from thrashing on noisy windows.
	Hysteresis float64
	// Headroom is the utilization margin worker sizing keeps over the
	// offered load (default 0.25: size for offered*1.25).
	Headroom float64
	// StaleAfter bounds observation age: anything older falls back to
	// the static flags (default 5s).
	StaleAfter time.Duration
	// DivergeFrac is the model-vs-observed throughput error fraction
	// beyond which the model is distrusted and the static flags rule
	// (default 0.5).
	DivergeFrac float64
}

func (c ControllerConfig) withDefaults() (ControllerConfig, error) {
	if c.TargetP99 <= 0 {
		return c, fmt.Errorf("capacity: TargetP99 must be positive, got %v", c.TargetP99)
	}
	if c.StaticWorkers < 1 {
		return c, fmt.Errorf("capacity: StaticWorkers must be >= 1, got %d", c.StaticWorkers)
	}
	if c.StaticBound < 1 {
		return c, fmt.Errorf("capacity: StaticBound must be >= 1, got %d", c.StaticBound)
	}
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = c.StaticWorkers
	}
	if c.MaxWorkers < c.MinWorkers {
		return c, fmt.Errorf("capacity: MaxWorkers %d < MinWorkers %d", c.MaxWorkers, c.MinWorkers)
	}
	if c.MinInflight <= 0 {
		c.MinInflight = int64(c.MinWorkers) + 1
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4 * c.StaticBound
	}
	if c.MaxInflight < c.MinInflight {
		return c, fmt.Errorf("capacity: MaxInflight %d < MinInflight %d", c.MaxInflight, c.MinInflight)
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 0.15
	}
	if c.Headroom <= 0 {
		c.Headroom = 0.25
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 5 * time.Second
	}
	if c.DivergeFrac <= 0 {
		c.DivergeFrac = 0.5
	}
	return c, nil
}

// Observation is one control-loop input: what the gateway measured over
// the last window, plus the demands that seed the model.
type Observation struct {
	// At stamps when the observation was taken; the controller treats
	// observations older than StaleAfter as a sampling failure.
	At time.Time
	// OfferedPerSec is the arrival rate including shed messages;
	// GoodputPerSec counts only completed ones.
	OfferedPerSec float64
	GoodputPerSec float64
	// P99 is the observed windowed latency percentile.
	P99 time.Duration
	// Demands are the measured per-stage service times seeding the
	// model (zero WorkerDemand means no stage traces landed yet).
	Demands StageDemands
	// Workers is the pool width the window ran with; BackendConns and
	// Backends size the overlapped backend station (0: in-place mode).
	Workers      int
	BackendConns int
	Backends     int
}

// Decision is one control-loop output: the settings to apply plus the
// model view that produced them.
type Decision struct {
	At       time.Time `json:"-"`
	Workers  int       `json:"workers"`
	Bound    int64     `json:"admission_bound"`
	Fallback bool      `json:"fallback"`
	Reason   string    `json:"reason"`
	// AdmissibleLoad is the model's λ*: the highest offered load whose
	// predicted p99 meets the target at the decided width.
	AdmissibleLoad float64 `json:"admissible_per_sec"`
	// Predicted is the model solved at the observed offered load with
	// the decided width; ThroughputErrPct compares its throughput
	// against the observed goodput.
	Predicted        Prediction `json:"predicted"`
	ThroughputErrPct float64    `json:"throughput_err_pct"`
	P99ErrPct        float64    `json:"p99_err_pct"`
}

// ControllerCounters is the lifetime accounting /stats publishes.
type ControllerCounters struct {
	Decisions    uint64 `json:"decisions"`
	BoundChanges uint64 `json:"bound_changes"`
	WidthChanges uint64 `json:"width_changes"`
	Fallbacks    uint64 `json:"fallbacks"`
	Holds        uint64 `json:"holds"`
}

// Controller turns observations into pool-width and admission-bound
// decisions with hysteresis, clamps, and hard fallbacks. Safe for
// concurrent Decide and Last.
type Controller struct {
	cfg ControllerConfig

	mu       sync.Mutex
	cur      Decision
	counters ControllerCounters
}

// NewController validates the configuration and starts from the static
// settings.
func NewController(cfg ControllerConfig) (*Controller, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Controller{
		cfg: cfg,
		cur: Decision{
			Workers: cfg.StaticWorkers,
			Bound:   cfg.StaticBound,
			Reason:  "initial static settings",
		},
	}, nil
}

// Config reports the effective (defaulted) configuration.
func (c *Controller) Config() ControllerConfig { return c.cfg }

// Last returns the most recent decision.
func (c *Controller) Last() Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}

// Counters reports the lifetime decision accounting.
func (c *Controller) Counters() ControllerCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters
}

// Decide runs one control step and records (and returns) the decision.
func (c *Controller) Decide(now time.Time, obs Observation) Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counters.Decisions++

	d := c.step(now, obs)
	d.At = now
	if d.Bound != c.cur.Bound {
		c.counters.BoundChanges++
	}
	if d.Workers != c.cur.Workers {
		c.counters.WidthChanges++
	}
	if d.Fallback {
		c.counters.Fallbacks++
	}
	c.cur = d
	return d
}

// step computes the next decision against the current one (mu held).
func (c *Controller) step(now time.Time, obs Observation) Decision {
	cfg := c.cfg
	if obs.At.IsZero() || now.Sub(obs.At) > cfg.StaleAfter {
		return Decision{
			Workers: cfg.StaticWorkers, Bound: cfg.StaticBound,
			Fallback: true,
			Reason:   fmt.Sprintf("observations stale (age %v > %v); static flags rule", now.Sub(obs.At).Round(time.Millisecond), cfg.StaleAfter),
		}
	}
	if obs.Demands.WorkerDemand() <= 0 {
		d := c.cur
		d.Reason = "no stage demands measured yet; holding"
		c.counters.Holds++
		return d
	}
	if obs.GoodputPerSec <= 0 && obs.OfferedPerSec <= 0 {
		d := c.cur
		d.Reason = "idle window; holding"
		c.counters.Holds++
		return d
	}

	// Model check at the *observed* width: does the model track reality
	// closely enough to be trusted with admission?
	observedModel := GatewayModel(obs.Demands, GatewayTopology{
		Workers: obs.Workers, BackendConns: obs.BackendConns, Backends: obs.Backends,
	})
	atObserved := observedModel.Predict(obs.OfferedPerSec)
	errPct := 0.0
	if obs.GoodputPerSec > 0 {
		errPct = 100 * math.Abs(atObserved.ThroughputPerSec-obs.GoodputPerSec) / obs.GoodputPerSec
	}
	p99ErrPct := 0.0
	if obs.P99 > 0 && atObserved.P99US > 0 {
		p99ErrPct = 100 * math.Abs(atObserved.P99US-float64(obs.P99.Microseconds())) / float64(obs.P99.Microseconds())
	}
	if obs.GoodputPerSec > 0 && errPct > 100*cfg.DivergeFrac {
		return Decision{
			Workers: cfg.StaticWorkers, Bound: cfg.StaticBound,
			Fallback:         true,
			Reason:           fmt.Sprintf("model diverged from measurement (throughput err %.0f%% > %.0f%%); static flags rule", errPct, 100*cfg.DivergeFrac),
			Predicted:        atObserved,
			ThroughputErrPct: errPct,
			P99ErrPct:        p99ErrPct,
		}
	}

	// Width: enough servers to carry the offered load with headroom.
	workers := c.cur.Workers
	if wd := obs.Demands.WorkerDemand(); wd > 0 {
		needed := int(math.Ceil(obs.OfferedPerSec * (1 + cfg.Headroom) * wd))
		needed = clampInt(needed, cfg.MinWorkers, cfg.MaxWorkers)
		if relDiff(float64(needed), float64(workers)) >= cfg.Hysteresis {
			workers = needed
		}
	}

	// Bound: the model at the decided width answers "how many messages
	// may be in the system before predicted p99 breaks the target" —
	// Little's law population at λ*, clamped and damped.
	decidedModel := GatewayModel(obs.Demands, GatewayTopology{
		Workers: workers, BackendConns: obs.BackendConns, Backends: obs.Backends,
	})
	admissible := decidedModel.MaxLoadForP99(float64(cfg.TargetP99.Microseconds()))
	bound := c.cur.Bound
	switch {
	case math.IsInf(admissible, 1):
		bound = cfg.MaxInflight
	case admissible > 0:
		atStar := decidedModel.Predict(admissible)
		want := int64(math.Ceil(atStar.InSystem))
		if min := int64(workers) + 1; want < min {
			want = min
		}
		want = clampInt64(want, cfg.MinInflight, cfg.MaxInflight)
		if relDiff(float64(want), float64(bound)) >= cfg.Hysteresis {
			bound = want
		}
	default:
		// Even an idle system misses the target: admit as little as the
		// floor allows.
		bound = cfg.MinInflight
	}

	return Decision{
		Workers:          workers,
		Bound:            bound,
		Reason:           fmt.Sprintf("model: admissible %.0f/s at width %d for p99<=%v", admissible, workers, cfg.TargetP99),
		AdmissibleLoad:   admissible,
		Predicted:        decidedModel.Predict(obs.OfferedPerSec),
		ThroughputErrPct: errPct,
		P99ErrPct:        p99ErrPct,
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampInt64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// relDiff is |a-b| relative to b (b=0 counts as a full change).
func relDiff(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	return math.Abs(a-b) / math.Abs(b)
}
