package capacity

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func testConfig() ControllerConfig {
	return ControllerConfig{
		TargetP99:     100 * time.Millisecond,
		StaticWorkers: 4,
		StaticBound:   16,
		MaxWorkers:    8,
		MaxInflight:   256,
	}
}

// obsAt builds a healthy observation at the given offered load: demands
// make a 4-worker pool saturate at 4/0.004 = 1000/s, and the goodput is
// whatever the model itself would predict (so divergence never trips by
// construction).
func obsAt(now time.Time, offered float64, workers int) Observation {
	d := StageDemands{Read: 0.0001, Parse: 0.001, Process: 0.003, Write: 0.0001}
	m := GatewayModel(d, GatewayTopology{Workers: workers})
	p := m.Predict(offered)
	return Observation{
		At:            now,
		OfferedPerSec: offered,
		GoodputPerSec: p.ThroughputPerSec,
		P99:           time.Duration(p.P99US) * time.Microsecond,
		Demands:       d,
		Workers:       workers,
	}
}

func TestControllerValidation(t *testing.T) {
	if _, err := NewController(ControllerConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
	bad := testConfig()
	bad.MaxWorkers = 2
	bad.MinWorkers = 4
	if _, err := NewController(bad); err == nil {
		t.Fatal("MaxWorkers < MinWorkers accepted")
	}
	c, err := NewController(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d := c.Last(); d.Workers != 4 || d.Bound != 16 {
		t.Fatalf("initial decision not static: %+v", d)
	}
}

// TestControllerTracksLoad: a healthy observation produces a model-backed
// decision whose bound respects the clamps and whose reason names the
// admissible load.
func TestControllerTracksLoad(t *testing.T) {
	c, err := NewController(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	d := c.Decide(now, obsAt(now, 500, 4))
	if d.Fallback {
		t.Fatalf("healthy observation fell back: %+v", d)
	}
	if d.AdmissibleLoad <= 0 {
		t.Fatalf("no admissible load computed: %+v", d)
	}
	if d.Bound < 5 || d.Bound > 256 {
		t.Fatalf("bound %d outside clamps", d.Bound)
	}
	if !strings.Contains(d.Reason, "model") {
		t.Fatalf("reason %q", d.Reason)
	}
	if got := c.Counters(); got.Decisions != 1 || got.Fallbacks != 0 {
		t.Fatalf("counters %+v", got)
	}
}

// TestControllerHysteresis: tiny load changes hold the settings, big
// ones move them.
func TestControllerHysteresis(t *testing.T) {
	c, err := NewController(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	first := c.Decide(now, obsAt(now, 500, 4))
	// A 2% load change stays under the 15% hysteresis: nothing moves.
	second := c.Decide(now, obsAt(now, 510, first.Workers))
	if second.Bound != first.Bound || second.Workers != first.Workers {
		t.Fatalf("small change moved settings: %+v -> %+v", first, second)
	}
	// Doubling the offered load must move the width.
	third := c.Decide(now, obsAt(now, 1400, second.Workers))
	if third.Workers <= second.Workers {
		t.Fatalf("doubled load did not widen the pool: %+v -> %+v", second, third)
	}
	cnt := c.Counters()
	if cnt.WidthChanges == 0 {
		t.Fatalf("width change not counted: %+v", cnt)
	}
}

// TestControllerClamps: overload pins the width at MaxWorkers and an
// unmeetable latency target pins the bound at the floor.
func TestControllerClamps(t *testing.T) {
	cfg := testConfig()
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	d := c.Decide(now, obsAt(now, 100000, 4))
	if d.Workers != cfg.MaxWorkers {
		t.Fatalf("overload width %d, want clamp %d", d.Workers, cfg.MaxWorkers)
	}
	if d.Bound > cfg.MaxInflight {
		t.Fatalf("bound %d above ceiling %d", d.Bound, cfg.MaxInflight)
	}

	// Target tighter than the bare service time: bound floors.
	tight := cfg
	tight.TargetP99 = time.Microsecond
	c2, err := NewController(tight)
	if err != nil {
		t.Fatal(err)
	}
	d2 := c2.Decide(now, obsAt(now, 100, 4))
	if d2.Bound != c2.Config().MinInflight {
		t.Fatalf("unmeetable target bound %d, want floor %d", d2.Bound, c2.Config().MinInflight)
	}
}

// TestControllerStaleFallback: an observation older than StaleAfter
// falls hard back to the static flags.
func TestControllerStaleFallback(t *testing.T) {
	c, err := NewController(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	c.Decide(now, obsAt(now, 900, 4)) // move off static first
	stale := obsAt(now.Add(-10*time.Second), 900, 4)
	d := c.Decide(now, stale)
	if !d.Fallback || d.Workers != 4 || d.Bound != 16 {
		t.Fatalf("stale observation not a static fallback: %+v", d)
	}
	if !strings.Contains(d.Reason, "stale") {
		t.Fatalf("reason %q", d.Reason)
	}
	if got := c.Counters(); got.Fallbacks != 1 {
		t.Fatalf("fallbacks %d, want 1", got.Fallbacks)
	}
}

// TestControllerDivergenceFallback: when measurement contradicts the
// model by more than DivergeFrac, static flags rule.
func TestControllerDivergenceFallback(t *testing.T) {
	c, err := NewController(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	obs := obsAt(now, 500, 4)
	obs.GoodputPerSec = obs.GoodputPerSec / 10 // reality far below prediction
	d := c.Decide(now, obs)
	if !d.Fallback || !strings.Contains(d.Reason, "diverged") {
		t.Fatalf("divergence not detected: %+v", d)
	}
	if d.Workers != 4 || d.Bound != 16 {
		t.Fatalf("divergence fallback not static: %+v", d)
	}
	if d.ThroughputErrPct < 100*c.Config().DivergeFrac {
		t.Fatalf("err pct %v under threshold yet fell back", d.ThroughputErrPct)
	}
}

// TestControllerHoldsOnMissingSignal: no demands or an idle window keep
// the previous decision instead of flapping to static and back.
func TestControllerHoldsOnMissingSignal(t *testing.T) {
	c, err := NewController(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	moved := c.Decide(now, obsAt(now, 900, 4))

	noDemand := Observation{At: now, OfferedPerSec: 100, GoodputPerSec: 100, Workers: moved.Workers}
	d := c.Decide(now, noDemand)
	if d.Workers != moved.Workers || d.Bound != moved.Bound || !strings.Contains(d.Reason, "holding") {
		t.Fatalf("missing demands did not hold: %+v vs %+v", d, moved)
	}

	idle := obsAt(now, 0, moved.Workers)
	idle.GoodputPerSec = 0
	d = c.Decide(now, idle)
	if d.Workers != moved.Workers || d.Bound != moved.Bound {
		t.Fatalf("idle window did not hold: %+v vs %+v", d, moved)
	}
	if got := c.Counters(); got.Holds != 2 {
		t.Fatalf("holds %d, want 2", got.Holds)
	}
}

// TestControllerConcurrency exercises Decide/Last/Counters from racing
// goroutines (meaningful under -race).
func TestControllerConcurrency(t *testing.T) {
	c, err := NewController(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			now := time.Now()
			c.Decide(now, obsAt(now, float64(100+i*10), 4))
		}
		close(stop)
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = c.Last()
				_ = c.Counters()
			}
		}
	}()
	wg.Wait()
	if got := c.Counters(); got.Decisions != 200 {
		t.Fatalf("decisions %d, want 200", got.Decisions)
	}
}
