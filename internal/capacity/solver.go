// Package capacity is the analytic queueing model behind the gateway's
// adaptive admission control: an open M/M/c-style network over the
// client→gateway→backend topology that predicts throughput, utilization,
// queue length, and latency percentiles as a function of offered load,
// worker-pool width, and backend replica count.
//
// The model is the live-system analogue of the layered-queueing models
// the paper's methodology implies (and the lqns exemplars in SNIPPETS.md
// spell out): each resource is a station with a per-message service
// demand — the connection readers are a delay station (one server per
// connection, no queueing), the worker pool is an M/M/c queueing station
// whose demand covers the parse/process/forward stages, and each backend
// pool is an overlapped station whose holding time is nested inside the
// worker's forward stage (so it contributes utilization and a saturation
// bound but no extra residence time). Service demands are seeded from
// live calibration artifacts or measured stage traces; the solver is
// pure arithmetic, so predictions are cheap enough to run on every
// control-loop tick.
package capacity

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind classifies how a station queues.
type Kind int

const (
	// Queue is an M/M/c queueing station: jobs wait when all c servers
	// are busy (the worker pool, a bounded backend pool).
	Queue Kind = iota
	// Delay is an infinite-server station: jobs never wait (the
	// connection readers — every connection brings its own server).
	Delay
	// Overlapped is a queueing station whose holding time is already
	// counted inside another station's demand (a backend pool held
	// across the worker's forward stage): it bounds saturation and
	// reports utilization but adds no residence time of its own.
	Overlapped
)

func (k Kind) String() string {
	switch k {
	case Queue:
		return "queue"
	case Delay:
		return "delay"
	case Overlapped:
		return "overlapped"
	}
	return "invalid"
}

// Station is one resource in the model.
type Station struct {
	Name string
	Kind Kind
	// Servers is the multiprogramming level c (workers, pooled
	// connections). Ignored for Delay stations.
	Servers int
	// Demand is the mean service time one message holds a server for,
	// in seconds.
	Demand float64
}

// saturation is the station's maximum sustainable throughput (jobs/s);
// +Inf for delay stations and stations with zero demand.
func (st Station) saturation() float64 {
	if st.Kind == Delay || st.Demand <= 0 {
		return math.Inf(1)
	}
	c := st.Servers
	if c < 1 {
		c = 1
	}
	return float64(c) / st.Demand
}

// Model is an open network of stations every message flows through.
type Model struct {
	Stations []Station
}

// Valid reports whether the model can predict anything: at least one
// station with positive demand.
func (m *Model) Valid() bool {
	if m == nil {
		return false
	}
	for _, st := range m.Stations {
		if st.Demand > 0 {
			return true
		}
	}
	return false
}

// StationReport is one station's steady-state prediction at a given
// arrival rate.
type StationReport struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"`
	Servers     int     `json:"servers"`
	DemandUS    float64 `json:"demand_us"`
	Utilization float64 `json:"utilization"` // per-server busy fraction, 0..1 (capped)
	WaitUS      float64 `json:"wait_us"`     // mean queue wait
	ResidenceUS float64 `json:"residence_us"`
	QueueLen    float64 `json:"queue_len"` // mean jobs waiting (not in service)
	Saturated   bool    `json:"saturated"`
}

// Prediction is the network's steady-state answer for one offered load.
type Prediction struct {
	OfferedPerSec    float64 `json:"offered_per_sec"`
	ThroughputPerSec float64 `json:"throughput_per_sec"` // min(offered, bottleneck capacity)
	Saturated        bool    `json:"saturated"`
	Bottleneck       string  `json:"bottleneck,omitempty"` // station that binds at saturation
	// Residence percentiles over the non-overlapped stations; the
	// sojourn distribution is approximated as exponential around the
	// mean (exact for M/M/1, a documented approximation for M/M/c).
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P99US  float64 `json:"p99_us"`
	// InSystem is the mean population over non-overlapped stations
	// (Little's law) — the model's admission-bound candidate.
	InSystem float64         `json:"in_system"`
	Stations []StationReport `json:"stations,omitempty"`
}

// erlangC is the probability an arriving job waits in an M/M/c queue
// with offered load a = λ·D Erlangs spread over c servers (requires
// a < c). Computed with the numerically stable recurrence on the
// inverse of the Erlang-B blocking probability.
func erlangC(c int, a float64) float64 {
	if c < 1 || a <= 0 {
		return 0
	}
	// Erlang B via recurrence: B(0)=1; B(k) = a·B(k-1)/(k + a·B(k-1)).
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	// C = B / (1 - rho·(1-B))
	return b / (1 - rho*(1-b))
}

// solveStation fills one station's report at arrival rate lambda.
func solveStation(st Station, lambda float64) StationReport {
	rep := StationReport{
		Name:     st.Name,
		Kind:     st.Kind.String(),
		Servers:  st.Servers,
		DemandUS: st.Demand * 1e6,
	}
	if st.Demand <= 0 || lambda <= 0 {
		return rep
	}
	if st.Kind == Delay {
		rep.Utilization = 0
		rep.ResidenceUS = st.Demand * 1e6
		return rep
	}
	c := st.Servers
	if c < 1 {
		c = 1
	}
	rep.Servers = c
	a := lambda * st.Demand // offered Erlangs
	rho := a / float64(c)
	if rho >= 1 {
		rep.Utilization = 1
		rep.Saturated = true
		rep.WaitUS = math.Inf(1)
		rep.ResidenceUS = math.Inf(1)
		rep.QueueLen = math.Inf(1)
		return rep
	}
	rep.Utilization = rho
	pw := erlangC(c, a)
	// Wq = C(c,a) / (c·μ − λ), μ = 1/D.
	wq := pw / (float64(c)/st.Demand - lambda)
	rep.WaitUS = wq * 1e6
	rep.ResidenceUS = (wq + st.Demand) * 1e6
	rep.QueueLen = lambda * wq
	return rep
}

// Predict solves the network at one offered arrival rate (messages/s).
func (m *Model) Predict(offered float64) Prediction {
	p := Prediction{OfferedPerSec: offered}
	if !m.Valid() || offered < 0 {
		return p
	}
	// Bottleneck: the station with the lowest saturation throughput.
	capacity := math.Inf(1)
	for _, st := range m.Stations {
		if s := st.saturation(); s < capacity {
			capacity = s
			p.Bottleneck = st.Name
		}
	}
	lambda := offered
	if !math.IsInf(capacity, 1) && offered >= capacity {
		// Saturated: the carried flow is the bottleneck's capacity;
		// residence times are evaluated just under it so the reports
		// stay finite ("effectively infinite" queue shows up as the
		// admission controller's job, not as Inf in a JSON field).
		p.Saturated = true
		lambda = capacity * 0.999
	}
	p.ThroughputPerSec = math.Min(offered, capacity)

	var meanSec float64
	for _, st := range m.Stations {
		rep := solveStation(st, lambda)
		p.Stations = append(p.Stations, rep)
		if st.Kind != Overlapped && !math.IsInf(rep.ResidenceUS, 1) {
			meanSec += rep.ResidenceUS / 1e6
		}
	}
	p.MeanUS = meanSec * 1e6
	// Exponential-sojourn approximation: percentile q at −mean·ln(1−q).
	// Exact for a single M/M/1 station; a stated approximation for the
	// general network.
	p.P50US = p.MeanUS * math.Ln2
	p.P99US = p.MeanUS * -math.Log(0.01)
	p.InSystem = lambda * meanSec
	return p
}

// MaxLoadForP99 finds the highest offered load whose predicted p99 stays
// at or under targetUS, by bisection inside (0, bottleneck capacity).
// Returns 0 when even an idle system misses the target (demand too
// high), and the saturation capacity when the target is never binding.
func (m *Model) MaxLoadForP99(targetUS float64) float64 {
	if !m.Valid() || targetUS <= 0 {
		return 0
	}
	capacity := math.Inf(1)
	for _, st := range m.Stations {
		if s := st.saturation(); s < capacity {
			capacity = s
		}
	}
	if math.IsInf(capacity, 1) {
		// Delay-only model: load never queues, the target either always
		// or never holds.
		if m.Predict(1).P99US <= targetUS {
			return math.Inf(1)
		}
		return 0
	}
	if m.Predict(capacity * 1e-6).P99US > targetUS {
		return 0
	}
	lo, hi := 0.0, capacity
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if m.Predict(mid).P99US <= targetUS {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// LoadPoint is one row of a predicted load sweep.
type LoadPoint struct {
	Offered    float64
	Prediction Prediction
}

// SweepLoads predicts the model at each offered load, for
// Figure-5/6-style predicted curves.
func (m *Model) SweepLoads(loads []float64) []LoadPoint {
	out := make([]LoadPoint, 0, len(loads))
	for _, l := range loads {
		out = append(out, LoadPoint{Offered: l, Prediction: m.Predict(l)})
	}
	return out
}

// StageDemands carries the measured per-stage mean service times
// (seconds) that seed a gateway model — the live read/queue/parse/
// process/forward/write breakdown from the PR-4 stage tracer. Queue is
// accepted but ignored: queueing delay is what the model *predicts*,
// not a demand.
type StageDemands struct {
	Read    float64
	Queue   float64
	Parse   float64
	Process float64
	Forward float64
	Write   float64
}

// WorkerDemand is the time one message holds a pool worker: parse +
// process + forward (the forward round trip blocks the worker).
func (d StageDemands) WorkerDemand() float64 { return d.Parse + d.Process + d.Forward }

// FrontendDemand is the connection-reader time per message: framing the
// request plus writing the response.
func (d StageDemands) FrontendDemand() float64 { return d.Read + d.Write }

// Total is the full no-contention service time.
func (d StageDemands) Total() float64 {
	return d.Read + d.Parse + d.Process + d.Forward + d.Write
}

// GatewayTopology sizes the client→gateway→backend model.
type GatewayTopology struct {
	Workers int
	// BackendConns bounds each backend pool (0: no backend station —
	// in-place mode or unknown pool size).
	BackendConns int
	// Backends is the number of backend replicas sharing the forward
	// demand (default 1 when BackendConns > 0).
	Backends int
}

// GatewayModel builds the standard gateway network from measured stage
// demands: a delay station for the connection readers, an M/M/c station
// for the worker pool, and (in forwarding mode) an overlapped station
// per backend-pool bound whose holding time nests inside the workers'
// forward stage.
func GatewayModel(d StageDemands, topo GatewayTopology) *Model {
	m := &Model{}
	if fd := d.FrontendDemand(); fd > 0 {
		m.Stations = append(m.Stations, Station{Name: "frontend", Kind: Delay, Demand: fd})
	}
	workers := topo.Workers
	if workers < 1 {
		workers = 1
	}
	m.Stations = append(m.Stations, Station{
		Name: "workers", Kind: Queue, Servers: workers, Demand: d.WorkerDemand(),
	})
	if topo.BackendConns > 0 && d.Forward > 0 {
		replicas := topo.Backends
		if replicas < 1 {
			replicas = 1
		}
		m.Stations = append(m.Stations, Station{
			Name:    "backends",
			Kind:    Overlapped,
			Servers: topo.BackendConns * replicas,
			// The forward demand spreads across the replicas.
			Demand: d.Forward / float64(replicas),
		})
	}
	return m
}

// FormatTable renders a predicted load sweep as a fixed-width table —
// the model-side twin of the live sweep table.
func FormatTable(points []LoadPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %12s %8s %9s %9s %9s %8s  %s\n",
		"offered/s", "predicted/s", "util", "p50(us)", "p99(us)", "in-sys", "sat", "bottleneck")
	for _, pt := range points {
		p := pt.Prediction
		util := 0.0
		for _, st := range p.Stations {
			if st.Name == "workers" {
				util = st.Utilization
			}
		}
		sat := ""
		if p.Saturated {
			sat = "yes"
		}
		fmt.Fprintf(&b, "%12.0f %12.0f %8.2f %9.0f %9.0f %9.1f %8s  %s\n",
			p.OfferedPerSec, p.ThroughputPerSec, util, p.P50US, p.P99US, p.InSystem, sat, p.Bottleneck)
	}
	return b.String()
}

// SortedStations returns the prediction's station reports ordered by
// name, for stable rendering.
func (p Prediction) SortedStations() []StationReport {
	out := append([]StationReport(nil), p.Stations...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
