package harness

// This file closes the loop between the reproduction's two halves: a
// live sampling session (internal/session driven by the gateway's
// perf-counter measurement layer) is replayed against the simulated
// machine's model, and the per-use-case deltas are written as a
// calibration artifact the simulator side can ingest — live CPI feeding
// back into the model. It also hosts the cached model predictions the
// gateway's runtime-only fallback publishes.

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/perf/counters"
	"repro/internal/perf/machine"
	"repro/internal/workload"
)

// CalibrationEntry is one use case's live-vs-model delta. Scales are
// live/sim ratios; Apply multiplies model predictions by them. When the
// live side itself ran in the model fallback (no perf events), LiveSource
// is "model" and every scale is pinned to 1 — a session cannot calibrate
// the model against itself.
type CalibrationEntry struct {
	Samples    int     `json:"samples"`     // timeline samples averaged
	LiveSource string  `json:"live_source"` // "hw" or "model"
	SimCPI     float64 `json:"sim_cpi"`
	LiveCPI    float64 `json:"live_cpi"`
	CPIScale   float64 `json:"cpi_scale"`
	SimMPI     float64 `json:"sim_l2mpi_pct"`
	LiveMPI    float64 `json:"live_cache_mpi_pct"`
	MPIScale   float64 `json:"mpi_scale"`
	SimBrMPR   float64 `json:"sim_br_mpr_pct"`
	LiveBrMPR  float64 `json:"live_br_mpr_pct"`
	BrMPRScale float64 `json:"br_mpr_scale"`
	// Width is the worker-pool width the live session ran with (0:
	// width-agnostic, the pre-width artifact format). Width-specific
	// entries live under "UC@N" keys; EntryFor selects or interpolates
	// among them.
	Width int `json:"width,omitempty"`
	// LiveP50US is the live session's median end-to-end latency — the
	// no-contention service-demand seed the capacity model can start
	// from before stage traces land.
	LiveP50US float64 `json:"live_p50_us,omitempty"`
	// LiveMsgsPerSec is the session's measured throughput at this width,
	// the measured side of a predicted-vs-measured capacity table.
	LiveMsgsPerSec float64 `json:"live_msgs_per_sec,omitempty"`
}

// Calibration is the on-disk artifact: one entry per use case measured
// against one simulated configuration.
type Calibration struct {
	Config  string                      `json:"config"` // simulated machine, e.g. "2CPm"
	Entries map[string]CalibrationEntry `json:"entries"`
}

// NewCalibrationEntry builds one delta from a session's mean live
// metrics and the simulator's predicted ones. Ratios with a zero sim
// denominator, a zero live reading, or a model-sourced live side stay 1.
func NewCalibrationEntry(sim counters.Metrics, liveCPI, liveMPI, liveBrMPR float64, samples int, liveSource string) CalibrationEntry {
	e := CalibrationEntry{
		Samples: samples, LiveSource: liveSource,
		SimCPI: sim.CPI, LiveCPI: liveCPI, CPIScale: 1,
		SimMPI: sim.L2MPI, LiveMPI: liveMPI, MPIScale: 1,
		SimBrMPR: sim.BrMPR, LiveBrMPR: liveBrMPR, BrMPRScale: 1,
	}
	if liveSource != "hw" {
		return e
	}
	if sim.CPI > 0 && liveCPI > 0 {
		e.CPIScale = liveCPI / sim.CPI
	}
	if sim.L2MPI > 0 && liveMPI > 0 {
		e.MPIScale = liveMPI / sim.L2MPI
	}
	if sim.BrMPR > 0 && liveBrMPR > 0 {
		e.BrMPRScale = liveBrMPR / sim.BrMPR
	}
	return e
}

// EntryKey names a calibration entry: "UC" for width-agnostic entries,
// "UC@N" for entries recorded at worker-pool width N.
func EntryKey(uc workload.UseCase, width int) string {
	if width > 0 {
		return fmt.Sprintf("%s@%d", uc, width)
	}
	return uc.String()
}

// EntryFor selects the calibration entry for uc at the given pool width:
// an exact "UC@width" entry wins; otherwise the two nearest recorded
// widths interpolate linearly (clamping outside the recorded range);
// otherwise the width-agnostic "UC" entry stands in. ok is false when
// the artifact knows nothing about uc.
func (c *Calibration) EntryFor(uc workload.UseCase, width int) (CalibrationEntry, bool) {
	if c == nil {
		return CalibrationEntry{}, false
	}
	if width > 0 {
		if e, ok := c.Entries[EntryKey(uc, width)]; ok {
			return e, true
		}
		// Collect this use case's width-specific entries and bracket.
		var lo, hi *CalibrationEntry
		for k := range c.Entries {
			e := c.Entries[k]
			if e.Width <= 0 || k != EntryKey(uc, e.Width) {
				continue
			}
			if e.Width < width {
				if lo == nil || e.Width > lo.Width {
					e := e
					lo = &e
				}
			} else {
				if hi == nil || e.Width < hi.Width {
					e := e
					hi = &e
				}
			}
		}
		switch {
		case lo != nil && hi != nil:
			return interpolateEntries(*lo, *hi, width), true
		case lo != nil:
			return *lo, true
		case hi != nil:
			return *hi, true
		}
	}
	e, ok := c.Entries[uc.String()]
	return e, ok
}

// interpolateEntries blends two width-bracketing entries linearly at
// width w. Source metadata comes from the nearer endpoint.
func interpolateEntries(lo, hi CalibrationEntry, w int) CalibrationEntry {
	span := float64(hi.Width - lo.Width)
	if span <= 0 {
		return lo
	}
	f := (float64(w) - float64(lo.Width)) / span
	lerp := func(a, b float64) float64 { return a + f*(b-a) }
	out := lo
	if f > 0.5 {
		out = hi
	}
	out.Width = w
	out.CPIScale = lerp(lo.CPIScale, hi.CPIScale)
	out.MPIScale = lerp(lo.MPIScale, hi.MPIScale)
	out.BrMPRScale = lerp(lo.BrMPRScale, hi.BrMPRScale)
	out.LiveCPI = lerp(lo.LiveCPI, hi.LiveCPI)
	out.LiveMPI = lerp(lo.LiveMPI, hi.LiveMPI)
	out.LiveBrMPR = lerp(lo.LiveBrMPR, hi.LiveBrMPR)
	out.LiveP50US = lerp(lo.LiveP50US, hi.LiveP50US)
	out.LiveMsgsPerSec = lerp(lo.LiveMsgsPerSec, hi.LiveMsgsPerSec)
	return out
}

// Apply scales a model prediction by the stored live/sim ratios for uc.
// Unknown use cases and identity entries pass m through unchanged.
func (c *Calibration) Apply(uc workload.UseCase, m counters.Metrics) counters.Metrics {
	return c.ApplyWidth(uc, 0, m)
}

// ApplyWidth scales a model prediction by the ratios recorded for uc at
// the given pool width (see EntryFor for the selection rules).
func (c *Calibration) ApplyWidth(uc workload.UseCase, width int, m counters.Metrics) counters.Metrics {
	e, ok := c.EntryFor(uc, width)
	if !ok {
		return m
	}
	if e.CPIScale > 0 {
		m.CPI *= e.CPIScale
	}
	if e.MPIScale > 0 {
		m.L2MPI *= e.MPIScale
	}
	if e.BrMPRScale > 0 {
		m.BrMPR *= e.BrMPRScale
	}
	return m
}

// ApplyMatrix scales every result in a measured matrix by the artifact's
// per-use-case ratios, in place — how cmd/aonsim ingests a live
// calibration before rendering its predicted tables.
func (c *Calibration) ApplyMatrix(amx AONMatrix) {
	if c == nil {
		return
	}
	for uc, byCfg := range amx {
		for id, r := range byCfg {
			r.Metrics = c.Apply(uc, r.Metrics)
			byCfg[id] = r
		}
	}
}

// Identity reports whether applying c would change nothing — every entry
// carries unit scales (e.g. a session recorded in model-fallback mode).
func (c *Calibration) Identity() bool {
	for _, e := range c.Entries {
		if e.CPIScale != 1 || e.MPIScale != 1 || e.BrMPRScale != 1 {
			return false
		}
	}
	return true
}

// WriteFile persists the artifact as indented JSON.
func (c *Calibration) WriteFile(path string) error {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadCalibration reads an artifact written by WriteFile (or by
// hwreport -timeline).
func LoadCalibration(path string) (*Calibration, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Calibration
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("harness: bad calibration file %s: %w", path, err)
	}
	if len(c.Entries) == 0 {
		return nil, fmt.Errorf("harness: calibration file %s has no entries", path)
	}
	return &c, nil
}

// predictedOpts sizes the cached model runs below: long enough for a
// steady window, short enough that a lazy first computation stays
// sub-second.
var predictedOpts = AONOpts{WarmupMsgs: 20, MeasureMsgs: 60, Window: 32}

type predictedKey struct {
	id machine.ConfigID
	uc workload.UseCase
}

type predictedEntry struct {
	once sync.Once
	done atomic.Bool // set when once's body has finished
	m    counters.Metrics
	err  error
}

var (
	predictedMu    sync.Mutex
	predictedCache = map[predictedKey]*predictedEntry{}
)

// PredictedMetrics runs (once per process, then caches) a short
// simulated measurement of uc on configuration id and returns the
// model's predicted counter metrics. It is the source of the per-use-
// case cache-MPI the runtime-only fallback publishes on /stats — the
// paper's tables publish no per-use-case L2MPI, so the calibrated model
// is the best available reference. The first call per key costs a model
// run (~0.5s); callers on a sampling path should use
// TryPredictedMetrics and warm this in the background.
func PredictedMetrics(id machine.ConfigID, uc workload.UseCase) (counters.Metrics, error) {
	key := predictedKey{id, uc}
	predictedMu.Lock()
	e, ok := predictedCache[key]
	if !ok {
		e = &predictedEntry{}
		predictedCache[key] = e
	}
	predictedMu.Unlock()
	e.once.Do(func() {
		defer e.done.Store(true)
		r, err := RunAON(id, uc, predictedOpts)
		if err != nil {
			e.err = err
			return
		}
		e.m = r.Metrics
	})
	return e.m, e.err
}

// TryPredictedMetrics returns the cached prediction without computing:
// ok is false until some PredictedMetrics call for the key has finished
// (successfully). Sampling paths call this so a model run never blocks a
// 100ms sampling tick.
func TryPredictedMetrics(id machine.ConfigID, uc workload.UseCase) (counters.Metrics, bool) {
	predictedMu.Lock()
	e, ok := predictedCache[predictedKey{id, uc}]
	predictedMu.Unlock()
	if !ok || !e.done.Load() || e.err != nil {
		return counters.Metrics{}, false
	}
	return e.m, true
}
