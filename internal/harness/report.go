package harness

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netperf"
	"repro/internal/perf/counters"
	"repro/internal/perf/machine"
	"repro/internal/workload"
)

// Metric selects one derived metric from a counter set for table rendering
// and shape checks.
type Metric struct {
	Name string
	Get  func(counters.Metrics) float64
}

// The paper's microarchitectural metrics.
var (
	MetricCPI        = Metric{"CPI", func(m counters.Metrics) float64 { return m.CPI }}
	MetricL2MPI      = Metric{"L2MPI (%)", func(m counters.Metrics) float64 { return m.L2MPI }}
	MetricBTPI       = Metric{"BTPI (%)", func(m counters.Metrics) float64 { return m.BTPI }}
	MetricBranchFreq = Metric{"Branch freq (%)", func(m counters.Metrics) float64 { return m.BranchFreq }}
	MetricBrMPR      = Metric{"BrMPR (%)", func(m counters.Metrics) float64 { return m.BrMPR }}
)

// Table is a rendered paper-vs-measured comparison.
type Table struct {
	Title string
	Rows  []TableRow
}

// TableRow is one labelled series across the five configurations.
type TableRow struct {
	Label  string
	Values map[machine.ConfigID]float64
}

// Render formats the table with one column per configuration.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-28s", "")
	for _, id := range machine.AllConfigs {
		fmt.Fprintf(&b, "%10s", string(id))
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-28s", r.Label)
		for _, id := range machine.AllConfigs {
			v, ok := r.Values[id]
			if !ok {
				fmt.Fprintf(&b, "%10s", "-")
				continue
			}
			fmt.Fprintf(&b, "%10.2f", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ShapeCheck is one qualitative relation the paper's prose asserts; the
// benchmark harness and the integration tests verify each against the
// measured data.
type ShapeCheck struct {
	Name string
	OK   bool
	Note string
}

// checkRel builds a ShapeCheck for a binary relation with 10% slack for
// "approximately equal" and strict inequality otherwise.
func checkGreater(name string, a, b float64) ShapeCheck {
	return ShapeCheck{Name: name, OK: a > b, Note: fmt.Sprintf("%.3f > %.3f", a, b)}
}

func checkNear(name string, a, b, tol float64) ShapeCheck {
	ratio := a / b
	ok := ratio > 1-tol && ratio < 1+tol
	return ShapeCheck{Name: name, OK: ok, Note: fmt.Sprintf("%.3f vs %.3f (ratio %.2f)", a, b, ratio)}
}

// FormatChecks renders shape-check results.
func FormatChecks(checks []ShapeCheck) string {
	var b strings.Builder
	for _, c := range checks {
		mark := "ok  "
		if !c.OK {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %-58s %s\n", mark, c.Name, c.Note)
	}
	return b.String()
}

// ---- Figure 2 / Table 3 ----

// Figure2Table renders netperf throughput, paper vs measured.
func Figure2Table(mx NetperfMatrix) Table {
	t := Table{Title: "Figure 2: Netperf throughput (Mbps)"}
	for _, mode := range []netperf.Mode{netperf.Loopback, netperf.EndToEnd} {
		paper := PaperNetperfLoopback
		if mode == netperf.EndToEnd {
			paper = PaperNetperfEndToEnd
		}
		t.Rows = append(t.Rows, TableRow{Label: mode.String() + " (paper)", Values: paper.ThroughputMbps})
		meas := map[machine.ConfigID]float64{}
		for id, r := range mx[mode] {
			meas[id] = r.Mbps
		}
		t.Rows = append(t.Rows, TableRow{Label: mode.String() + " (measured)", Values: meas})
	}
	return t
}

// Figure2Checks verifies the loopback ordering and end-to-end saturation
// the paper reports.
func Figure2Checks(mx NetperfMatrix) []ShapeCheck {
	lb := mx[netperf.Loopback]
	ee := mx[netperf.EndToEnd]
	checks := []ShapeCheck{
		checkGreater("loopback: 1CPm is the fastest single unit", lb[machine.OneCPm].Mbps, lb[machine.OneLPx].Mbps),
		checkGreater("loopback: 1CPm > 2CPm (dual-core degradation)", lb[machine.OneCPm].Mbps, lb[machine.TwoCPm].Mbps),
		checkGreater("loopback: 1LPx > 2PPx (severe dual-package degradation)", lb[machine.OneLPx].Mbps, lb[machine.TwoPPx].Mbps),
		checkGreater("loopback: 2PPx degradation exceeds 2CPm degradation",
			lb[machine.TwoCPm].Mbps/lb[machine.OneCPm].Mbps, lb[machine.TwoPPx].Mbps/lb[machine.OneLPx].Mbps),
		checkGreater("loopback: 2CPm > 2PPx", lb[machine.TwoCPm].Mbps, lb[machine.TwoPPx].Mbps),
	}
	for _, id := range machine.AllConfigs {
		checks = append(checks, checkNear(
			fmt.Sprintf("end-to-end: %s saturates the gigabit wire", id),
			ee[id].Mbps, 937, 0.05))
	}
	return checks
}

// Table3Tables renders the netperf microarchitectural metrics.
func Table3Tables(mx NetperfMatrix) []Table {
	var out []Table
	for _, mode := range []netperf.Mode{netperf.Loopback, netperf.EndToEnd} {
		paper := PaperNetperfLoopback
		if mode == netperf.EndToEnd {
			paper = PaperNetperfEndToEnd
		}
		t := Table{Title: fmt.Sprintf("Table 3 (%s): netperf performance metrics", mode)}
		add := func(metric Metric, paperVals map[machine.ConfigID]float64) {
			t.Rows = append(t.Rows, TableRow{Label: metric.Name + " (paper)", Values: paperVals})
			meas := map[machine.ConfigID]float64{}
			for id, r := range mx[mode] {
				meas[id] = metric.Get(r.Metrics)
			}
			t.Rows = append(t.Rows, TableRow{Label: metric.Name + " (measured)", Values: meas})
		}
		add(MetricCPI, paper.CPI)
		add(MetricL2MPI, paper.L2MPI)
		add(MetricBTPI, paper.BTPI)
		add(MetricBranchFreq, paper.BranchFreq)
		add(MetricBrMPR, paper.BrMPR)
		out = append(out, t)
	}
	return out
}

// Table3Checks verifies the baseline relations Section 4 draws.
func Table3Checks(mx NetperfMatrix) []ShapeCheck {
	lb := mx[netperf.Loopback]
	return []ShapeCheck{
		checkGreater("loopback CPI: 2PPx worst", lb[machine.TwoPPx].Metrics.CPI, lb[machine.TwoLPx].Metrics.CPI),
		checkGreater("loopback CPI rises 1CPm -> 2CPm", lb[machine.TwoCPm].Metrics.CPI, lb[machine.OneCPm].Metrics.CPI),
		checkGreater("loopback CPI rises 1LPx -> 2LPx", lb[machine.TwoLPx].Metrics.CPI, lb[machine.OneLPx].Metrics.CPI),
		checkGreater("loopback bus traffic: order-of-magnitude jump 1CPm -> 2CPm",
			lb[machine.TwoCPm].Metrics.BTPI, 5*lb[machine.OneCPm].Metrics.BTPI+0.5),
		checkGreater("loopback bus traffic: 2PPx >> 1LPx", lb[machine.TwoPPx].Metrics.BTPI, 2*lb[machine.OneLPx].Metrics.BTPI),
		checkGreater("loopback L2MPI: 2PPx >> 1LPx", lb[machine.TwoPPx].Metrics.L2MPI, lb[machine.OneLPx].Metrics.L2MPI+0.2),
		checkNear("branch freq: PM ~2x Xeon (loopback)",
			lb[machine.OneCPm].Metrics.BranchFreq/lb[machine.OneLPx].Metrics.BranchFreq, 2.0, 0.25),
		checkGreater("BrMPR: Xeon above PM (loopback)", lb[machine.OneLPx].Metrics.BrMPR, lb[machine.OneCPm].Metrics.BrMPR),
	}
}

// ---- Figure 3 ----

// Figure3Table renders dual-processor throughput scaling.
func Figure3Table(mx AONMatrix) Table {
	t := Table{Title: "Figure 3: Dual-processor throughput scaling"}
	for _, p := range ScalingPairs {
		for _, uc := range workload.AllUseCases {
			t.Rows = append(t.Rows, TableRow{
				Label:  fmt.Sprintf("%s %s (paper)", p.Name, uc),
				Values: map[machine.ConfigID]float64{p.To: PaperScaling[p.Name][uc]},
			})
			t.Rows = append(t.Rows, TableRow{
				Label:  fmt.Sprintf("%s %s (measured)", p.Name, uc),
				Values: map[machine.ConfigID]float64{p.To: mx.Scaling(p, uc)},
			})
		}
	}
	return t
}

// Figure3Checks verifies Section 5.1's three scaling trends.
func Figure3Checks(mx AONMatrix) []ShapeCheck {
	pm := func(uc workload.UseCase) float64 { return mx.Scaling(ScalingPairs[0], uc) }
	ht := func(uc workload.UseCase) float64 { return mx.Scaling(ScalingPairs[1], uc) }
	pp := func(uc workload.UseCase) float64 { return mx.Scaling(ScalingPairs[2], uc) }
	return []ShapeCheck{
		checkGreater("PM scaling grows FR -> CBR", pm(workload.CBR), pm(workload.FR)),
		checkGreater("PM scaling grows FR -> SV", pm(workload.SV), pm(workload.FR)),
		checkGreater("HT scaling reverses: FR > CBR", ht(workload.FR), ht(workload.CBR)),
		checkGreater("HT scaling reverses: CBR >= SV", ht(workload.CBR)+0.02, ht(workload.SV)),
		checkNear("2PPx scales ~2x for FR", pp(workload.FR), 1.97, 0.12),
		checkNear("2PPx scales ~2x for CBR", pp(workload.CBR), 1.98, 0.12),
		checkNear("2PPx scales ~2x for SV", pp(workload.SV), 1.97, 0.12),
		checkGreater("2PPx scales better than 2CPm (FR)", pp(workload.FR), pm(workload.FR)),
		checkGreater("HT scales worst overall (SV)", pm(workload.SV), ht(workload.SV)),
	}
}

// ---- Tables 4-6, Figures 4-5 ----

// metricTable renders one use-case x configuration grid, paper vs
// measured, for the given metric.
func metricTable(title string, mx AONMatrix, metric Metric, paper map[workload.UseCase]map[machine.ConfigID]float64) Table {
	t := Table{Title: title}
	for _, uc := range []workload.UseCase{workload.SV, workload.CBR, workload.FR} {
		if paper != nil {
			t.Rows = append(t.Rows, TableRow{Label: fmt.Sprintf("%s (paper)", uc), Values: paper[uc]})
		}
		meas := map[machine.ConfigID]float64{}
		for id, r := range mx[uc] {
			meas[id] = metric.Get(r.Metrics)
		}
		t.Rows = append(t.Rows, TableRow{Label: fmt.Sprintf("%s (measured)", uc), Values: meas})
	}
	return t
}

// Table4Table renders AON CPIs.
func Table4Table(mx AONMatrix) Table {
	return metricTable("Table 4: CPIs for the AON use cases", mx, MetricCPI, PaperCPI)
}

// Table4Checks verifies Section 5.2's CPI relations.
func Table4Checks(mx AONMatrix) []ShapeCheck {
	cpi := func(uc workload.UseCase, id machine.ConfigID) float64 { return mx[uc][id].Metrics.CPI }
	var checks []ShapeCheck
	for _, id := range machine.AllConfigs {
		checks = append(checks, checkGreater(
			fmt.Sprintf("CPI grows CPU-intensive -> I/O-intensive on %s (FR > SV)", id),
			cpi(workload.FR, id), cpi(workload.SV, id)))
	}
	for _, uc := range workload.AllUseCases {
		checks = append(checks,
			checkGreater(fmt.Sprintf("Xeon CPI above PM CPI (%s, single unit)", uc),
				cpi(uc, machine.OneLPx), cpi(uc, machine.OneCPm)),
			checkGreater(fmt.Sprintf("Hyperthreading inflates CPI (%s)", uc),
				cpi(uc, machine.TwoLPx), cpi(uc, machine.OneLPx)),
			checkNear(fmt.Sprintf("2PPx CPI ~ 1LPx CPI (%s)", uc),
				cpi(uc, machine.TwoPPx), cpi(uc, machine.OneLPx), 0.35),
		)
	}
	return checks
}

// Figure4Table renders AON L2MPI.
func Figure4Table(mx AONMatrix) Table {
	return metricTable("Figure 4: L2 cache misses per retired instruction (%)", mx, MetricL2MPI, nil)
}

// Figure4Checks verifies Section 5.3's relations.
func Figure4Checks(mx AONMatrix) []ShapeCheck {
	l2 := func(uc workload.UseCase, id machine.ConfigID) float64 { return mx[uc][id].Metrics.L2MPI }
	var checks []ShapeCheck
	for _, id := range machine.AllConfigs {
		checks = append(checks, checkGreater(
			fmt.Sprintf("L2MPI grows with I/O intensity on %s (FR > SV)", id),
			l2(workload.FR, id), l2(workload.SV, id)))
	}
	for _, uc := range workload.AllUseCases {
		checks = append(checks,
			checkGreater(fmt.Sprintf("Xeon L2MPI above PM (%s)", uc),
				l2(uc, machine.OneLPx), l2(uc, machine.OneCPm)),
			checkGreater(fmt.Sprintf("L2MPI rises 1CPm -> 2CPm (shared L2, %s)", uc),
				l2(uc, machine.TwoCPm)*1.02, l2(uc, machine.OneCPm)),
		)
	}
	return checks
}

// Figure5Table renders AON BTPI.
func Figure5Table(mx AONMatrix) Table {
	return metricTable("Figure 5: Bus transactions per retired instruction (%)", mx, MetricBTPI, nil)
}

// Figure5Checks verifies Section 5.4's relations.
func Figure5Checks(mx AONMatrix) []ShapeCheck {
	bt := func(uc workload.UseCase, id machine.ConfigID) float64 { return mx[uc][id].Metrics.BTPI }
	var checks []ShapeCheck
	for _, id := range machine.AllConfigs {
		checks = append(checks, checkGreater(
			fmt.Sprintf("BTPI grows with I/O intensity on %s (FR > SV)", id),
			bt(workload.FR, id), bt(workload.SV, id)))
	}
	for _, uc := range workload.AllUseCases {
		checks = append(checks,
			checkGreater(fmt.Sprintf("BTPI rises 1CPm -> 2CPm (%s)", uc),
				bt(uc, machine.TwoCPm)*1.02, bt(uc, machine.OneCPm)),
			checkNear(fmt.Sprintf("BTPI 1LPx ~ 2PPx (independent L2s, %s)", uc),
				bt(uc, machine.TwoPPx), bt(uc, machine.OneLPx), 0.35),
		)
	}
	return checks
}

// Table5Table renders branch frequencies.
func Table5Table(mx AONMatrix) Table {
	return metricTable("Table 5: Branch instructions retired per instruction retired (%)", mx, MetricBranchFreq, PaperBranchFreq)
}

// Table5Checks verifies Section 5.5's branch-frequency findings.
func Table5Checks(mx AONMatrix) []ShapeCheck {
	bf := func(uc workload.UseCase, id machine.ConfigID) float64 { return mx[uc][id].Metrics.BranchFreq }
	var checks []ShapeCheck
	for _, uc := range workload.AllUseCases {
		checks = append(checks, checkNear(
			fmt.Sprintf("PM retires ~2x the branch frequency of Xeon (%s)", uc),
			bf(uc, machine.OneCPm)/bf(uc, machine.OneLPx), 2.0, 0.25))
	}
	checks = append(checks,
		checkGreater("FR has ~25% more branches than SV (PM)",
			bf(workload.FR, machine.OneCPm), 1.1*bf(workload.SV, machine.OneCPm)),
		checkNear("branch freq constant within PM configs (SV)",
			bf(workload.SV, machine.OneCPm), bf(workload.SV, machine.TwoCPm), 0.1),
		checkNear("branch freq constant within Xeon configs (SV)",
			bf(workload.SV, machine.OneLPx), bf(workload.SV, machine.TwoPPx), 0.1),
	)
	return checks
}

// Table6Table renders branch misprediction ratios.
func Table6Table(mx AONMatrix) Table {
	return metricTable("Table 6: Branch misprediction ratios (%)", mx, MetricBrMPR, PaperBrMPR)
}

// Table6Checks verifies Section 5.5's misprediction findings.
func Table6Checks(mx AONMatrix) []ShapeCheck {
	mp := func(uc workload.UseCase, id machine.ConfigID) float64 { return mx[uc][id].Metrics.BrMPR }
	var checks []ShapeCheck
	for _, id := range machine.AllConfigs {
		checks = append(checks, checkGreater(
			fmt.Sprintf("SV mispredicts more than CBR on %s", id),
			mp(workload.SV, id), mp(workload.CBR, id)))
	}
	for _, uc := range workload.AllUseCases {
		checks = append(checks,
			checkGreater(fmt.Sprintf("PM BrMPR significantly below Xeon (%s)", uc),
				mp(uc, machine.OneLPx), 2*mp(uc, machine.OneCPm)),
			checkGreater(fmt.Sprintf("Hyperthreading does not reduce BrMPR (%s)", uc),
				mp(uc, machine.TwoLPx)*1.05, mp(uc, machine.OneLPx)),
			checkNear(fmt.Sprintf("BrMPR stable 1LPx -> 2PPx (%s)", uc),
				mp(uc, machine.TwoPPx), mp(uc, machine.OneLPx), 0.15),
			checkNear(fmt.Sprintf("BrMPR stable 1CPm -> 2CPm (%s)", uc),
				mp(uc, machine.TwoCPm), mp(uc, machine.OneCPm), 0.15),
		)
	}
	return checks
}

// AllChecks runs every shape check against measured matrices.
func AllChecks(nmx NetperfMatrix, amx AONMatrix) []ShapeCheck {
	var out []ShapeCheck
	out = append(out, Figure2Checks(nmx)...)
	out = append(out, Table3Checks(nmx)...)
	out = append(out, Figure3Checks(amx)...)
	out = append(out, Table4Checks(amx)...)
	out = append(out, Figure4Checks(amx)...)
	out = append(out, Figure5Checks(amx)...)
	out = append(out, Table5Checks(amx)...)
	out = append(out, Table6Checks(amx)...)
	return out
}

// FailedChecks filters to the failing subset, sorted by name.
func FailedChecks(checks []ShapeCheck) []ShapeCheck {
	var out []ShapeCheck
	for _, c := range checks {
		if !c.OK {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ThroughputTable renders AON application throughput (not in the paper as
// absolutes, but needed to interpret Figure 3).
func ThroughputTable(mx AONMatrix) Table {
	t := Table{Title: "AON application throughput (Mbps of message payload)"}
	for _, uc := range workload.AllUseCases {
		meas := map[machine.ConfigID]float64{}
		for id, r := range mx[uc] {
			meas[id] = r.Mbps
		}
		t.Rows = append(t.Rows, TableRow{Label: uc.String(), Values: meas})
	}
	return t
}
