package harness

import (
	"testing"

	"repro/internal/netperf"
	"repro/internal/perf/counters"
	"repro/internal/perf/machine"
	"repro/internal/workload"
)

// Conservation laws from DESIGN.md: these hold for any run on any
// configuration, and catch double-counting bugs in the simulator.

func checkConservation(t *testing.T, raw counters.Set, label string) {
	t.Helper()
	clk := raw.Get(counters.Clockticks)
	busy := raw.Get(counters.BusyCycles)
	if busy > clk {
		t.Errorf("%s: busy cycles (%d) exceed clockticks (%d)", label, busy, clk)
	}
	instr := raw.Get(counters.InstrRetired)
	if instr == 0 {
		t.Errorf("%s: no instructions", label)
	}
	// An instruction cannot retire faster than the fastest issue width
	// allows: instr <= busy * maxIPC (generous bound of 4).
	if instr > busy*4 {
		t.Errorf("%s: %d instructions in %d busy cycles", label, instr, busy)
	}
	br := raw.Get(counters.BranchRetired)
	mp := raw.Get(counters.BranchMispredict)
	if mp > br {
		t.Errorf("%s: mispredicts (%d) exceed branches (%d)", label, mp, br)
	}
	if br > instr {
		t.Errorf("%s: branches (%d) exceed instructions (%d)", label, br, instr)
	}
	mem := raw.Get(counters.DataMemAccesses)
	l1 := raw.Get(counters.L1Misses)
	l2 := raw.Get(counters.L2Misses)
	if l1 > mem {
		t.Errorf("%s: L1 misses (%d) exceed accesses (%d)", label, l1, mem)
	}
	if l2 > l1 {
		t.Errorf("%s: L2 misses (%d) exceed L1 misses (%d)", label, l2, l1)
	}
	if mem > instr {
		t.Errorf("%s: memory accesses (%d) exceed instructions (%d)", label, mem, instr)
	}
}

func TestCounterConservationNetperf(t *testing.T) {
	for _, id := range machine.AllConfigs {
		for _, mode := range []netperf.Mode{netperf.Loopback, netperf.EndToEnd} {
			r := RunNetperf(id, mode, NetperfOpts{WarmupMs: 1, MeasureMs: 2})
			checkConservation(t, r.Raw, string(id)+"/"+mode.String())
		}
	}
}

func TestCounterConservationAON(t *testing.T) {
	configs := append([]machine.ConfigID{}, machine.AllConfigs...)
	configs = append(configs, machine.ExtendedConfigs...)
	for _, id := range configs {
		for _, uc := range []workload.UseCase{workload.FR, workload.SV, workload.AUTH} {
			r, err := RunAON(id, uc, AONOpts{WarmupMsgs: 15, MeasureMsgs: 60, Window: 24})
			if err != nil {
				t.Fatalf("%s/%v: %v", id, uc, err)
			}
			checkConservation(t, r.Raw, string(id)+"/"+uc.String())
			// Every measured message was forwarded byte-for-byte.
			if r.Stats.BytesOut != r.Stats.BytesIn {
				t.Errorf("%s/%v: proxy lost bytes: in=%d out=%d", id, uc, r.Stats.BytesIn, r.Stats.BytesOut)
			}
		}
	}
}
