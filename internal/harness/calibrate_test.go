package harness

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/perf/counters"
	"repro/internal/perf/machine"
	"repro/internal/workload"
)

// TestCalibrationEntryScales pins the delta arithmetic: hw-sourced live
// readings produce live/sim ratios, model-sourced ones pin to identity
// (the model must not calibrate against itself).
func TestCalibrationEntryScales(t *testing.T) {
	sim := counters.Metrics{CPI: 2.0, L2MPI: 0.4, BrMPR: 1.5}
	e := NewCalibrationEntry(sim, 3.0, 0.2, 3.0, 10, "hw")
	if math.Abs(e.CPIScale-1.5) > 1e-9 || math.Abs(e.MPIScale-0.5) > 1e-9 || math.Abs(e.BrMPRScale-2.0) > 1e-9 {
		t.Fatalf("hw scales wrong: %+v", e)
	}
	e = NewCalibrationEntry(sim, 3.0, 0.2, 3.0, 10, "model")
	if e.CPIScale != 1 || e.MPIScale != 1 || e.BrMPRScale != 1 {
		t.Fatalf("model-sourced entry must be identity: %+v", e)
	}
	// Zero denominators stay identity instead of Inf.
	e = NewCalibrationEntry(counters.Metrics{}, 3.0, 0.2, 3.0, 10, "hw")
	if e.CPIScale != 1 || e.MPIScale != 1 || e.BrMPRScale != 1 {
		t.Fatalf("zero-sim entry must be identity: %+v", e)
	}
}

// TestCalibrationApplyRoundTrip writes, loads, and applies an artifact.
func TestCalibrationApplyRoundTrip(t *testing.T) {
	c := &Calibration{
		Config: "2CPm",
		Entries: map[string]CalibrationEntry{
			"CBR": NewCalibrationEntry(counters.Metrics{CPI: 2, L2MPI: 0.4, BrMPR: 1.5}, 3, 0.2, 3, 12, "hw"),
		},
	}
	path := filepath.Join(t.TempDir(), "calib.json")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCalibration(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config != "2CPm" || len(got.Entries) != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	m := got.Apply(workload.CBR, counters.Metrics{CPI: 2, L2MPI: 0.4, BrMPR: 1.5})
	if math.Abs(m.CPI-3) > 1e-9 || math.Abs(m.L2MPI-0.2) > 1e-9 || math.Abs(m.BrMPR-3) > 1e-9 {
		t.Fatalf("applied metrics wrong: %+v", m)
	}
	// Unknown use case passes through.
	orig := counters.Metrics{CPI: 5}
	if got.Apply(workload.FR, orig) != orig {
		t.Fatal("unknown use case must pass through unchanged")
	}
	if got.Identity() {
		t.Fatal("non-unit calibration reported identity")
	}
	// A nil calibration is a no-op, so callers can apply unconditionally.
	var nilC *Calibration
	if nilC.Apply(workload.CBR, orig) != orig {
		t.Fatal("nil calibration must pass through")
	}
}

// TestLoadCalibrationRejectsEmpty refuses artifacts with nothing in them.
func TestLoadCalibrationRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := (&Calibration{Config: "2CPm"}).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCalibration(path); err == nil {
		t.Fatal("empty calibration accepted")
	}
	if _, err := LoadCalibration(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestPredictedMetricsCached runs the short model once and then serves
// from cache: the second call must be effectively free and Try must see
// the value. This is the source of the fallback path's cache-MPI.
func TestPredictedMetricsCached(t *testing.T) {
	if _, ok := TryPredictedMetrics(machine.TwoCPm, workload.SV); ok {
		t.Log("prediction already cached by an earlier test; continuing")
	}
	m, err := PredictedMetrics(machine.TwoCPm, workload.SV)
	if err != nil {
		t.Fatal(err)
	}
	if m.CPI <= 0 {
		t.Fatalf("predicted CPI=%v, want > 0", m.CPI)
	}
	got, ok := TryPredictedMetrics(machine.TwoCPm, workload.SV)
	if !ok || got != m {
		t.Fatalf("Try after compute: ok=%v got=%+v want %+v", ok, got, m)
	}
	m2, err := PredictedMetrics(machine.TwoCPm, workload.SV)
	if err != nil || m2 != m {
		t.Fatalf("second call not served from cache: %+v vs %+v (err %v)", m2, m, err)
	}
}
