package harness

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/perf/counters"
	"repro/internal/perf/machine"
	"repro/internal/workload"
)

// TestCalibrationEntryScales pins the delta arithmetic: hw-sourced live
// readings produce live/sim ratios, model-sourced ones pin to identity
// (the model must not calibrate against itself).
func TestCalibrationEntryScales(t *testing.T) {
	sim := counters.Metrics{CPI: 2.0, L2MPI: 0.4, BrMPR: 1.5}
	e := NewCalibrationEntry(sim, 3.0, 0.2, 3.0, 10, "hw")
	if math.Abs(e.CPIScale-1.5) > 1e-9 || math.Abs(e.MPIScale-0.5) > 1e-9 || math.Abs(e.BrMPRScale-2.0) > 1e-9 {
		t.Fatalf("hw scales wrong: %+v", e)
	}
	e = NewCalibrationEntry(sim, 3.0, 0.2, 3.0, 10, "model")
	if e.CPIScale != 1 || e.MPIScale != 1 || e.BrMPRScale != 1 {
		t.Fatalf("model-sourced entry must be identity: %+v", e)
	}
	// Zero denominators stay identity instead of Inf.
	e = NewCalibrationEntry(counters.Metrics{}, 3.0, 0.2, 3.0, 10, "hw")
	if e.CPIScale != 1 || e.MPIScale != 1 || e.BrMPRScale != 1 {
		t.Fatalf("zero-sim entry must be identity: %+v", e)
	}
}

// TestCalibrationApplyRoundTrip writes, loads, and applies an artifact.
func TestCalibrationApplyRoundTrip(t *testing.T) {
	c := &Calibration{
		Config: "2CPm",
		Entries: map[string]CalibrationEntry{
			"CBR": NewCalibrationEntry(counters.Metrics{CPI: 2, L2MPI: 0.4, BrMPR: 1.5}, 3, 0.2, 3, 12, "hw"),
		},
	}
	path := filepath.Join(t.TempDir(), "calib.json")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCalibration(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config != "2CPm" || len(got.Entries) != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	m := got.Apply(workload.CBR, counters.Metrics{CPI: 2, L2MPI: 0.4, BrMPR: 1.5})
	if math.Abs(m.CPI-3) > 1e-9 || math.Abs(m.L2MPI-0.2) > 1e-9 || math.Abs(m.BrMPR-3) > 1e-9 {
		t.Fatalf("applied metrics wrong: %+v", m)
	}
	// Unknown use case passes through.
	orig := counters.Metrics{CPI: 5}
	if got.Apply(workload.FR, orig) != orig {
		t.Fatal("unknown use case must pass through unchanged")
	}
	if got.Identity() {
		t.Fatal("non-unit calibration reported identity")
	}
	// A nil calibration is a no-op, so callers can apply unconditionally.
	var nilC *Calibration
	if nilC.Apply(workload.CBR, orig) != orig {
		t.Fatal("nil calibration must pass through")
	}
}

// TestLoadCalibrationRejectsEmpty refuses artifacts with nothing in them.
func TestLoadCalibrationRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := (&Calibration{Config: "2CPm"}).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCalibration(path); err == nil {
		t.Fatal("empty calibration accepted")
	}
	if _, err := LoadCalibration(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestPredictedMetricsCached runs the short model once and then serves
// from cache: the second call must be effectively free and Try must see
// the value. This is the source of the fallback path's cache-MPI.
func TestPredictedMetricsCached(t *testing.T) {
	if _, ok := TryPredictedMetrics(machine.TwoCPm, workload.SV); ok {
		t.Log("prediction already cached by an earlier test; continuing")
	}
	m, err := PredictedMetrics(machine.TwoCPm, workload.SV)
	if err != nil {
		t.Fatal(err)
	}
	if m.CPI <= 0 {
		t.Fatalf("predicted CPI=%v, want > 0", m.CPI)
	}
	got, ok := TryPredictedMetrics(machine.TwoCPm, workload.SV)
	if !ok || got != m {
		t.Fatalf("Try after compute: ok=%v got=%+v want %+v", ok, got, m)
	}
	m2, err := PredictedMetrics(machine.TwoCPm, workload.SV)
	if err != nil || m2 != m {
		t.Fatalf("second call not served from cache: %+v vs %+v (err %v)", m2, m, err)
	}
}

// TestEntryForWidthSelection pins the per-width selection rules: exact
// width wins, bracketing widths interpolate linearly, out-of-range
// widths clamp to the nearest endpoint, and the width-agnostic entry is
// the last resort.
func TestEntryForWidthSelection(t *testing.T) {
	mk := func(w int, scale, p50 float64) CalibrationEntry {
		return CalibrationEntry{Width: w, LiveSource: "hw", CPIScale: scale, MPIScale: 1, BrMPRScale: 1, LiveP50US: p50}
	}
	c := &Calibration{
		Config: "2CPm",
		Entries: map[string]CalibrationEntry{
			"CBR":   {LiveSource: "hw", CPIScale: 9, MPIScale: 1, BrMPRScale: 1},
			"CBR@1": mk(1, 1.0, 100),
			"CBR@4": mk(4, 2.0, 400),
		},
	}

	// Exact hit.
	e, ok := c.EntryFor(workload.CBR, 4)
	if !ok || e.CPIScale != 2.0 {
		t.Fatalf("exact width: ok=%v %+v", ok, e)
	}
	// Interpolation at width 2: 1/3 of the way from 1 to 4.
	e, ok = c.EntryFor(workload.CBR, 2)
	if !ok || math.Abs(e.CPIScale-(1.0+1.0/3)) > 1e-9 {
		t.Fatalf("interpolated scale: ok=%v %+v", ok, e)
	}
	if math.Abs(e.LiveP50US-200) > 1e-9 {
		t.Fatalf("interpolated p50: %+v", e)
	}
	if e.Width != 2 {
		t.Fatalf("interpolated width: %+v", e)
	}
	// Clamp above the recorded range.
	e, ok = c.EntryFor(workload.CBR, 8)
	if !ok || e.CPIScale != 2.0 {
		t.Fatalf("clamp-high: ok=%v %+v", ok, e)
	}
	// Clamp below.
	if e, ok = c.EntryFor(workload.CBR, 1); !ok || e.CPIScale != 1.0 {
		t.Fatalf("clamp-low/exact: ok=%v %+v", ok, e)
	}
	// Width 0 asks for the width-agnostic entry.
	if e, ok = c.EntryFor(workload.CBR, 0); !ok || e.CPIScale != 9 {
		t.Fatalf("width-agnostic: ok=%v %+v", ok, e)
	}
	// Unknown use case.
	if _, ok = c.EntryFor(workload.SV, 2); ok {
		t.Fatal("unknown use case must miss")
	}
	// A use case with only width entries still resolves when asked
	// width-specifically, and ApplyWidth uses it.
	delete(c.Entries, "CBR")
	m := c.ApplyWidth(workload.CBR, 4, counters.Metrics{CPI: 2})
	if math.Abs(m.CPI-4) > 1e-9 {
		t.Fatalf("ApplyWidth: %+v", m)
	}
	// EntryKey round-trips both formats.
	if EntryKey(workload.CBR, 0) != "CBR" || EntryKey(workload.CBR, 4) != "CBR@4" {
		t.Fatalf("EntryKey: %q %q", EntryKey(workload.CBR, 0), EntryKey(workload.CBR, 4))
	}
}
