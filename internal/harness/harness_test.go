package harness

import (
	"strings"
	"testing"

	"repro/internal/netperf"
	"repro/internal/perf/machine"
	"repro/internal/workload"
)

// Small experiment sizes keep the integration tests quick; the full-size
// runs live in the root benchmarks.
var testNetperfOpts = NetperfOpts{WarmupMs: 1, MeasureMs: 4}
var testAONOpts = AONOpts{WarmupMsgs: 60, MeasureMsgs: 260, Window: 32}

func TestRunNetperfBasic(t *testing.T) {
	r := RunNetperf(machine.OneCPm, netperf.Loopback, testNetperfOpts)
	if r.Mbps <= 0 {
		t.Fatal("no throughput")
	}
	if r.Metrics.CPI <= 0 {
		t.Fatal("no CPI")
	}
	if r.Config != machine.OneCPm || r.Mode != netperf.Loopback {
		t.Fatal("result labels wrong")
	}
}

func TestRunAONBasic(t *testing.T) {
	r, err := RunAON(machine.TwoCPm, workload.CBR, AONOpts{WarmupMsgs: 20, MeasureMsgs: 60, Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mbps <= 0 || r.MsgPerSec <= 0 {
		t.Fatalf("throughput = %v / %v", r.Mbps, r.MsgPerSec)
	}
	if r.Stats.ParseErrors != 0 {
		t.Fatalf("parse errors: %d", r.Stats.ParseErrors)
	}
}

// TestNetperfShapes runs the full baseline grid once and asserts every
// Figure 2 / Table 3 shape relation.
func TestNetperfShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in short mode")
	}
	mx := RunNetperfMatrix(testNetperfOpts)
	checks := append(Figure2Checks(mx), Table3Checks(mx)...)
	for _, c := range checks {
		if !c.OK {
			t.Errorf("shape check failed: %s (%s)", c.Name, c.Note)
		}
	}
	// Rendering must include every configuration.
	out := Figure2Table(mx).Render()
	for _, id := range machine.AllConfigs {
		if !strings.Contains(out, string(id)) {
			t.Errorf("figure 2 table missing %s", id)
		}
	}
	for _, tb := range Table3Tables(mx) {
		if !strings.Contains(tb.Render(), "CPI") {
			t.Error("table 3 missing CPI rows")
		}
	}
}

// TestAONShapes runs the full application grid once and asserts the
// Figure 3-5 / Table 4-6 shape relations.
func TestAONShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in short mode")
	}
	mx, err := RunAONMatrix(testAONOpts)
	if err != nil {
		t.Fatal(err)
	}
	groups := map[string][]ShapeCheck{
		"figure3": Figure3Checks(mx),
		"table4":  Table4Checks(mx),
		"figure4": Figure4Checks(mx),
		"figure5": Figure5Checks(mx),
		"table5":  Table5Checks(mx),
		"table6":  Table6Checks(mx),
	}
	for group, checks := range groups {
		for _, c := range checks {
			if !c.OK {
				t.Errorf("%s: %s (%s)", group, c.Name, c.Note)
			}
		}
	}
	// Scaling values must be sane.
	for _, p := range ScalingPairs {
		for _, uc := range workload.AllUseCases {
			s := mx.Scaling(p, uc)
			if s < 0.5 || s > 2.3 {
				t.Errorf("scaling %s %v = %.2f out of range", p.Name, uc, s)
			}
		}
	}
}

func TestPaperDataComplete(t *testing.T) {
	for _, id := range machine.AllConfigs {
		if PaperNetperfLoopback.ThroughputMbps[id] == 0 {
			t.Errorf("missing loopback throughput for %s", id)
		}
		if PaperNetperfEndToEnd.CPI[id] == 0 {
			t.Errorf("missing end-to-end CPI for %s", id)
		}
		for _, uc := range workload.AllUseCases {
			if PaperCPI[uc][id] == 0 {
				t.Errorf("missing Table 4 CPI for %v/%s", uc, id)
			}
			if PaperBranchFreq[uc][id] == 0 || PaperBrMPR[uc][id] == 0 {
				t.Errorf("missing Table 5/6 data for %v/%s", uc, id)
			}
		}
	}
	for _, p := range ScalingPairs {
		for _, uc := range workload.AllUseCases {
			if PaperScaling[p.Name][uc] == 0 {
				t.Errorf("missing Figure 3 value for %s/%v", p.Name, uc)
			}
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{
		Title: "test",
		Rows: []TableRow{{
			Label:  "row",
			Values: map[machine.ConfigID]float64{machine.OneCPm: 1.5},
		}},
	}
	out := tb.Render()
	if !strings.Contains(out, "1.50") || !strings.Contains(out, "-") {
		t.Fatalf("render = %q", out)
	}
}

func TestFormatChecksAndFilter(t *testing.T) {
	checks := []ShapeCheck{
		{Name: "a", OK: true, Note: "x"},
		{Name: "b", OK: false, Note: "y"},
	}
	out := FormatChecks(checks)
	if !strings.Contains(out, "ok") || !strings.Contains(out, "FAIL") {
		t.Fatalf("format = %q", out)
	}
	failed := FailedChecks(checks)
	if len(failed) != 1 || failed[0].Name != "b" {
		t.Fatalf("failed = %+v", failed)
	}
}
