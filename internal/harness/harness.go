package harness

import (
	"fmt"

	aon "repro/internal/core"
	"repro/internal/netperf"
	"repro/internal/netsim"
	"repro/internal/perf/counters"
	"repro/internal/perf/machine"
	"repro/internal/sim/sched"
	"repro/internal/workload"
)

// GigabitBps is the testbed link speed.
const GigabitBps = 1e9

// NetperfOpts sizes a netperf run.
type NetperfOpts struct {
	WarmupMs  float64 // simulated warmup before the counter window opens
	MeasureMs float64 // simulated measurement window
	Machine   machine.Options
}

// DefaultNetperfOpts is long enough for caches and predictors to reach
// steady state while keeping host runtime modest.
var DefaultNetperfOpts = NetperfOpts{WarmupMs: 2, MeasureMs: 10}

// NetperfResult is one netperf measurement.
type NetperfResult struct {
	Config  machine.ConfigID
	Mode    netperf.Mode
	Mbps    float64
	Metrics counters.Metrics
	Raw     counters.Set
}

// RunNetperf measures one configuration in one mode.
func RunNetperf(id machine.ConfigID, mode netperf.Mode, o NetperfOpts) NetperfResult {
	m := machine.New(id, o.Machine)
	e := sched.NewEngine(m)
	var tx *netsim.Link
	if mode == netperf.EndToEnd {
		tx = netsim.NewLink(m, GigabitBps)
	}
	b := netperf.New(e, mode, tx)
	b.Spawn()

	warmEnd := m.Cycles(o.WarmupMs * 1e-3)
	e.Run(func(*sched.Engine) bool { return m.MaxNow() >= warmEnd })

	m.ResetWindow()
	start := b.BytesReceived
	measureEnd := m.MaxNow() + m.Cycles(o.MeasureMs*1e-3)
	e.Run(func(*sched.Engine) bool { return m.MaxNow() >= measureEnd })
	end := m.MaxNow()
	m.CloseWindow(end)

	bytes := b.BytesReceived - start
	seconds := m.Seconds(end - warmEnd)
	raw := m.SystemCounters()
	return NetperfResult{
		Config:  id,
		Mode:    mode,
		Mbps:    float64(bytes) * 8 / seconds / 1e6,
		Metrics: counters.Derive(raw),
		Raw:     raw,
	}
}

// AONOpts sizes an XML-server run.
type AONOpts struct {
	WarmupMsgs  int
	MeasureMsgs int
	Window      int // client closed-loop window
	Machine     machine.Options
}

// DefaultAONOpts balances steady state against host runtime.
var DefaultAONOpts = AONOpts{WarmupMsgs: 60, MeasureMsgs: 240, Window: 32}

// AONResult is one XML-server measurement.
type AONResult struct {
	Config    machine.ConfigID
	UseCase   workload.UseCase
	Mbps      float64 // application payload throughput
	MsgPerSec float64
	Metrics   counters.Metrics
	Raw       counters.Set
	Stats     aon.Stats
}

// RunAON measures one use case on one configuration.
func RunAON(id machine.ConfigID, uc workload.UseCase, o AONOpts) (AONResult, error) {
	m := machine.New(id, o.Machine)
	e := sched.NewEngine(m)
	rx := netsim.NewLink(m, GigabitBps)
	tx := netsim.NewLink(m, GigabitBps)
	kern := e.Space.NewProcess()
	nic := netsim.NewNIC(e, kern, rx, tx)
	s, err := aon.New(e, nic, aon.Config{UseCase: uc})
	if err != nil {
		return AONResult{}, err
	}
	s.SpawnThreads()
	client := aon.NewClient(s, uc, o.Window)
	client.Start()

	warmTarget := uint64(o.WarmupMsgs)
	e.Run(func(*sched.Engine) bool { return s.Stats.Messages >= warmTarget })

	m.ResetWindow()
	t0 := m.MaxNow()
	msgs0, bytes0 := s.Stats.Messages, s.Stats.BytesIn
	target := msgs0 + uint64(o.MeasureMsgs)
	e.Run(func(*sched.Engine) bool { return s.Stats.Messages >= target })
	t1 := m.MaxNow()
	m.CloseWindow(t1)

	seconds := m.Seconds(t1 - t0)
	if seconds <= 0 {
		return AONResult{}, fmt.Errorf("harness: empty measurement window")
	}
	msgs := float64(s.Stats.Messages - msgs0)
	bytes := float64(s.Stats.BytesIn - bytes0)
	raw := m.SystemCounters()
	return AONResult{
		Config:    id,
		UseCase:   uc,
		Mbps:      bytes * 8 / seconds / 1e6,
		MsgPerSec: msgs / seconds,
		Metrics:   counters.Derive(raw),
		Raw:       raw,
		Stats:     s.Stats,
	}, nil
}

// AONMatrix runs every use case on every configuration and returns the
// results indexed [useCase][config]. Most table/figure experiments consume
// this matrix; RunAONMatrix lets them share one set of simulations.
type AONMatrix map[workload.UseCase]map[machine.ConfigID]AONResult

// RunAONMatrix measures the full evaluation grid.
func RunAONMatrix(o AONOpts) (AONMatrix, error) {
	out := AONMatrix{}
	for _, uc := range workload.AllUseCases {
		out[uc] = map[machine.ConfigID]AONResult{}
		for _, id := range machine.AllConfigs {
			r, err := RunAON(id, uc, o)
			if err != nil {
				return nil, fmt.Errorf("%v on %v: %w", uc, id, err)
			}
			out[uc][id] = r
		}
	}
	return out, nil
}

// Scaling computes Figure 3's ratio for one transition and use case.
func (mx AONMatrix) Scaling(p ScalingPair, uc workload.UseCase) float64 {
	from := mx[uc][p.From].Mbps
	to := mx[uc][p.To].Mbps
	if from == 0 {
		return 0
	}
	return to / from
}

// NetperfMatrix holds both modes across all configurations.
type NetperfMatrix map[netperf.Mode]map[machine.ConfigID]NetperfResult

// RunNetperfMatrix measures the full baseline grid.
func RunNetperfMatrix(o NetperfOpts) NetperfMatrix {
	out := NetperfMatrix{}
	for _, mode := range []netperf.Mode{netperf.Loopback, netperf.EndToEnd} {
		out[mode] = map[machine.ConfigID]NetperfResult{}
		for _, id := range machine.AllConfigs {
			out[mode][id] = RunNetperf(id, mode, o)
		}
	}
	return out
}
