// Package harness runs the paper's experiments on the simulated machines
// and renders paper-vs-measured comparisons for every table and figure in
// the evaluation (Figure 2 through Table 6).
package harness

import (
	"repro/internal/perf/machine"
	"repro/internal/workload"
)

// PaperNetperf holds the published Figure 2 / Table 3 values, indexed by
// configuration in the paper's order 1CPm, 2CPm, 1LPx, 2LPx, 2PPx.
type PaperNetperf struct {
	ThroughputMbps map[machine.ConfigID]float64
	CPI            map[machine.ConfigID]float64
	L2MPI          map[machine.ConfigID]float64
	BTPI           map[machine.ConfigID]float64
	BranchFreq     map[machine.ConfigID]float64
	BrMPR          map[machine.ConfigID]float64
}

func cfgMap(v1CPm, v2CPm, v1LPx, v2LPx, v2PPx float64) map[machine.ConfigID]float64 {
	return map[machine.ConfigID]float64{
		machine.OneCPm: v1CPm, machine.TwoCPm: v2CPm,
		machine.OneLPx: v1LPx, machine.TwoLPx: v2LPx, machine.TwoPPx: v2PPx,
	}
}

// PaperNetperfLoopback is the published loopback-mode data (Figure 2 bars
// and the Table 3 upper block).
var PaperNetperfLoopback = PaperNetperf{
	ThroughputMbps: cfgMap(9550, 6252, 8897, 8496, 2823),
	CPI:            cfgMap(3.03, 6.05, 6.38, 7.70, 22.13),
	L2MPI:          cfgMap(0.00, 0.35, 0.00, 23.32, 24.64),
	BTPI:           cfgMap(0.00, 9.84, 0.19, 0.10, 10.48),
	BranchFreq:     cfgMap(36, 34, 18, 19, 18),
	BrMPR:          cfgMap(0.96, 0.70, 3.23, 3.04, 2.30),
}

// PaperNetperfEndToEnd is the published end-to-end-mode data (Figure 2
// bars and the Table 3 lower block). Throughput saturates the gigabit
// wire on every configuration.
var PaperNetperfEndToEnd = PaperNetperf{
	ThroughputMbps: cfgMap(940, 920, 936, 940, 936),
	CPI:            cfgMap(3.46, 6.27, 8.10, 18.52, 11.53),
	L2MPI:          cfgMap(0.05, 0.08, 0.33, 2.89, 2.71),
	BTPI:           cfgMap(2.13, 5.99, 0.53, 0.95, 0.57),
	BranchFreq:     cfgMap(33, 34, 18, 19, 17),
	BrMPR:          cfgMap(0.85, 0.83, 1.68, 3.96, 1.87),
}

// PaperCPI is Table 4: CPIs for the AON use cases on all configurations.
var PaperCPI = map[workload.UseCase]map[machine.ConfigID]float64{
	workload.SV:  cfgMap(1.02, 1.05, 1.91, 3.50, 1.96),
	workload.CBR: cfgMap(1.12, 1.22, 2.26, 4.34, 2.32),
	workload.FR:  cfgMap(2.24, 2.96, 5.71, 7.65, 5.92),
}

// ScalingPair names one of Figure 3's dual-processing transitions.
type ScalingPair struct {
	Name     string
	From, To machine.ConfigID
}

// ScalingPairs are Figure 3's three transitions.
var ScalingPairs = []ScalingPair{
	{"1CPm->2CPm", machine.OneCPm, machine.TwoCPm},
	{"1LPx->2LPx", machine.OneLPx, machine.TwoLPx},
	{"1LPx->2PPx", machine.OneLPx, machine.TwoPPx},
}

// PaperScaling is Figure 3: dual-processor throughput scaling per use case
// and transition.
var PaperScaling = map[string]map[workload.UseCase]float64{
	"1CPm->2CPm": {workload.FR: 1.51, workload.CBR: 1.84, workload.SV: 1.91},
	"1LPx->2LPx": {workload.FR: 1.49, workload.CBR: 1.32, workload.SV: 1.12},
	"1LPx->2PPx": {workload.FR: 1.97, workload.CBR: 1.98, workload.SV: 1.97},
}

// PaperBranchFreq is Table 5: branch instructions retired per instruction
// retired (%).
var PaperBranchFreq = map[workload.UseCase]map[machine.ConfigID]float64{
	workload.SV:  cfgMap(27, 28, 15, 15, 15),
	workload.CBR: cfgMap(28, 27, 15, 15, 15),
	workload.FR:  cfgMap(35, 36, 19, 19, 19),
}

// PaperBrMPR is Table 6: branch misprediction ratios (%).
var PaperBrMPR = map[workload.UseCase]map[machine.ConfigID]float64{
	workload.SV:  cfgMap(1.98, 1.97, 3.62, 4.61, 3.65),
	workload.CBR: cfgMap(1.07, 1.04, 2.01, 2.91, 1.96),
	workload.FR:  cfgMap(1.13, 1.21, 2.65, 3.96, 2.71),
}

// Figures 4 and 5 are published as plots without numeric labels; the
// reproduction contract for them is the set of shape relations the paper's
// prose asserts. See ShapeChecksFigure4 and ShapeChecksFigure5 in
// report.go.
