// Package netsim is the network substrate of the simulation: a gigabit
// link with serialization delay and frame overhead, socket buffers with
// backpressure, a NIC that DMAs arriving segments into kernel memory and
// raises a softirq, and the instrumented TCP/IP-stack kernels (checksum,
// header processing, buffer copies) whose micro-op streams drive the CPU
// model.
//
// The paper's testbed is a Gigabit Ethernet between the system under test
// and the load generator, plus the loopback device for the CPU-intensive
// netperf mode (Section 3.2.2); this package reproduces both paths.
package netsim

import (
	"repro/internal/perf/machine"
	"repro/internal/perf/trace"
	"repro/internal/sim/sched"
)

const (
	// MSS is the TCP maximum segment payload on a 1500-byte MTU.
	MSS = 1460
	// WireOverhead is the non-payload bytes a full segment occupies on
	// the wire: Ethernet preamble+IFG (20), Ethernet header+FCS (18),
	// IP (20), TCP (20).
	WireOverhead = 78
	// SockBufBytes is the kernel socket buffer size (Linux 2.6 default
	// scale for TCP on these systems).
	SockBufBytes = 64 << 10
)

// Chunk is a unit of data in flight: a TCP segment or an assembled
// application message, carrying both its simulated size/placement and (for
// message chunks) the real payload bytes the XML stack will process.
type Chunk struct {
	Bytes int
	Addr  uint64 // synthetic address of the data in kernel memory
	Data  []byte // real content for application processing (may be nil)
	Meta  any    // workload-specific tag (use case, message id, ...)
}

// SockBuf is a byte-capacity FIFO with wait queues on both ends — the
// simulation's socket buffer / accept queue primitive.
type SockBuf struct {
	Cap      int // byte capacity; 0 means unlimited
	NotEmpty sched.Waiter
	NotFull  sched.Waiter

	bytes int
	q     []Chunk
	head  int
}

// NewSockBuf returns a socket buffer with the given byte capacity.
func NewSockBuf(capBytes int) *SockBuf { return &SockBuf{Cap: capBytes} }

// Bytes returns the bytes currently queued.
func (s *SockBuf) Bytes() int { return s.bytes }

// Len returns the number of queued chunks.
func (s *SockBuf) Len() int { return len(s.q) - s.head }

// HasSpace reports whether n more bytes fit.
func (s *SockBuf) HasSpace(n int) bool { return s.Cap == 0 || s.bytes+n <= s.Cap }

// Push enqueues a chunk at time now and wakes readers. Callers are
// responsible for honoring HasSpace first (TCP flow control).
func (s *SockBuf) Push(c Chunk, now float64) {
	s.q = append(s.q, c)
	s.bytes += c.Bytes
	s.NotEmpty.Signal(now)
}

// Pop dequeues the oldest chunk at time now, waking writers.
func (s *SockBuf) Pop(now float64) (Chunk, bool) {
	c, ok := s.Claim()
	if !ok {
		return Chunk{}, false
	}
	s.Free(c.Bytes, now)
	return c, true
}

// Claim dequeues the oldest chunk without releasing its buffer space; the
// consumer calls Free after it has actually copied the data out. This is
// TCP's real flow-control timing: the sender's window reopens only when
// the receiver has drained the data, which serializes a sender/receiver
// pair sharing a small socket buffer.
func (s *SockBuf) Claim() (Chunk, bool) {
	if s.head >= len(s.q) {
		return Chunk{}, false
	}
	c := s.q[s.head]
	s.head++
	if s.head == len(s.q) {
		s.q = s.q[:0]
		s.head = 0
	}
	return c, true
}

// Free releases n bytes of buffer space at time now, waking writers.
func (s *SockBuf) Free(n int, now float64) {
	s.bytes -= n
	s.NotFull.Signal(now)
}

// Link is one direction of a full-duplex wire: bytes serialize at Bps and
// back-to-back sends queue behind each other.
type Link struct {
	M   *machine.Machine
	Bps float64

	freeAt float64
	sent   uint64 // payload bytes carried (for reports)
}

// NewLink builds a link attached to a machine's clock domain.
func NewLink(m *machine.Machine, bps float64) *Link {
	return &Link{M: m, Bps: bps}
}

// Reserve schedules wireBytes onto the link no earlier than cycle now and
// returns the cycle at which the last bit arrives at the far end.
func (l *Link) Reserve(now float64, wireBytes int) float64 {
	start := now
	if l.freeAt > start {
		start = l.freeAt
	}
	dur := l.M.Cycles(float64(wireBytes) * 8 / l.Bps)
	l.freeAt = start + dur
	return l.freeAt
}

// Backlog returns how far ahead of now the link is already committed.
func (l *Link) Backlog(now float64) float64 {
	if l.freeAt > now {
		return l.freeAt - now
	}
	return 0
}

// AddPayload accounts payload bytes carried (goodput).
func (l *Link) AddPayload(n int) { l.sent += uint64(n) }

// Payload returns the goodput bytes carried so far.
func (l *Link) Payload() uint64 { return l.sent }

// WireBytes returns the wire footprint of a payload of n bytes after TCP
// segmentation (per-segment protocol overhead included).
func WireBytes(n int) int {
	segs := (n + MSS - 1) / MSS
	if segs == 0 {
		segs = 1
	}
	return n + segs*WireOverhead
}

// Segments returns the segment payload sizes for an n-byte message.
func Segments(n int) []int {
	var out []int
	for n > 0 {
		s := n
		if s > MSS {
			s = MSS
		}
		out = append(out, s)
		n -= s
	}
	if len(out) == 0 {
		out = []int{0}
	}
	return out
}

// memWord rounds n bytes up to whole machine words.
func memWords(n int) int { return (n + trace.WordBytes - 1) / trace.WordBytes }
