package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/perf/machine"
	"repro/internal/perf/trace"
	"repro/internal/sim/sched"
)

func TestSockBufFIFOAndBytes(t *testing.T) {
	s := NewSockBuf(100)
	s.Push(Chunk{Bytes: 40}, 0)
	s.Push(Chunk{Bytes: 40}, 0)
	if s.HasSpace(40) {
		t.Fatal("overfull buffer reports space")
	}
	if s.Bytes() != 80 || s.Len() != 2 {
		t.Fatalf("bytes/len = %d/%d", s.Bytes(), s.Len())
	}
	c, ok := s.Pop(1)
	if !ok || c.Bytes != 40 {
		t.Fatalf("pop = %+v %v", c, ok)
	}
	if !s.HasSpace(40) {
		t.Fatal("space not reclaimed")
	}
}

func TestSockBufClaimFree(t *testing.T) {
	s := NewSockBuf(50)
	s.Push(Chunk{Bytes: 50}, 0)
	c, ok := s.Claim()
	if !ok {
		t.Fatal("claim failed")
	}
	if s.HasSpace(1) {
		t.Fatal("claim released space prematurely")
	}
	signalled := false
	s.NotFull.OnSignal(func(float64) { signalled = true })
	s.Free(c.Bytes, 10)
	if !s.HasSpace(50) || !signalled {
		t.Fatal("free did not reclaim space / signal writers")
	}
}

func TestSockBufUnlimited(t *testing.T) {
	s := NewSockBuf(0)
	for i := 0; i < 100; i++ {
		if !s.HasSpace(1 << 20) {
			t.Fatal("unlimited buffer full")
		}
		s.Push(Chunk{Bytes: 1 << 20}, 0)
	}
	if s.Len() != 100 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestSockBufEmptyPop(t *testing.T) {
	s := NewSockBuf(10)
	if _, ok := s.Pop(0); ok {
		t.Fatal("pop from empty succeeded")
	}
	if _, ok := s.Claim(); ok {
		t.Fatal("claim from empty succeeded")
	}
}

func TestLinkSerialization(t *testing.T) {
	m := machine.New(machine.OneCPm, machine.Options{})
	l := NewLink(m, 1e9)
	// 1250 bytes at 1 Gbps = 10 microseconds = 10us * clock cycles.
	end1 := l.Reserve(0, 1250)
	wantCycles := m.Cycles(10e-6)
	if end1 < wantCycles*0.99 || end1 > wantCycles*1.01 {
		t.Fatalf("first reservation ends at %.0f, want %.0f", end1, wantCycles)
	}
	// Back-to-back: second starts after the first.
	end2 := l.Reserve(0, 1250)
	if end2 < 2*wantCycles*0.99 {
		t.Fatalf("no serialization: %.0f", end2)
	}
	if l.Backlog(0) != end2 {
		t.Fatalf("backlog = %.0f", l.Backlog(0))
	}
	if l.Backlog(end2+1) != 0 {
		t.Fatal("backlog after drain")
	}
}

func TestLinkThroughputCap(t *testing.T) {
	// Property: k back-to-back frames never finish faster than wire rate.
	m := machine.New(machine.OneLPx, machine.Options{})
	l := NewLink(m, 1e9)
	check := func(frames uint8) bool {
		l2 := NewLink(m, 1e9)
		n := int(frames%32) + 1
		var end float64
		for i := 0; i < n; i++ {
			end = l2.Reserve(0, 1500)
		}
		minSeconds := float64(n*1500*8) / 1e9
		return m.Seconds(end) >= minSeconds*0.999
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	_ = l
}

func TestSegments(t *testing.T) {
	if got := Segments(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Segments(0) = %v", got)
	}
	segs := Segments(5300)
	total := 0
	for i, s := range segs {
		total += s
		if s > MSS {
			t.Fatalf("segment %d oversize: %d", i, s)
		}
	}
	if total != 5300 || len(segs) != 4 {
		t.Fatalf("segments = %v", segs)
	}
	if WireBytes(5300) != 5300+4*WireOverhead {
		t.Fatalf("WireBytes = %d", WireBytes(5300))
	}
}

func TestEmitCopyMix(t *testing.T) {
	var c trace.Counting
	EmitCopy(&c, 0x2000, 0x1000, 1024)
	words := uint64(1024 / 8)
	if c.Loads != words || c.Stores != words {
		t.Fatalf("loads/stores = %d/%d, want %d", c.Loads, c.Stores, words)
	}
	// One abstract branch per two words (+ tail): the Table 3 mix.
	if c.Branches < words/2 || c.Branches > words/2+4 {
		t.Fatalf("branches = %d", c.Branches)
	}
}

func TestEmitChecksumTouchesAllWords(t *testing.T) {
	var c trace.Counting
	EmitChecksum(&c, 0x1000, 512, []byte{1, 2, 3})
	if c.Loads != 64 {
		t.Fatalf("loads = %d", c.Loads)
	}
}

func TestEmitSyscallScalesWithCost(t *testing.T) {
	var small, large trace.Counting
	EmitSyscall(&small, 0x1000, 1000)
	EmitSyscall(&large, 0x1000, 10000)
	if large.Instr < 8*small.Instr {
		t.Fatalf("syscall cost does not scale: %d vs %d", small.Instr, large.Instr)
	}
	if small.Loads == 0 || small.Branches == 0 {
		t.Fatalf("syscall mix missing loads/branches: %+v", small)
	}
}

func TestNICDeliverAndSoftirq(t *testing.T) {
	m := machine.New(machine.OneCPm, machine.Options{})
	e := sched.NewEngine(m)
	rx := NewLink(m, 1e9)
	tx := NewLink(m, 1e9)
	nic := NewNIC(e, e.Space.NewProcess(), rx, tx)
	irq := e.Spawn("softirq", 0, sched.KernelProcessID, 0, nic.SoftirqProc())
	irq.Priority = 10

	payload := make([]byte, 4000)
	var delivered Chunk
	var deliveredAt float64
	last := nic.InjectMessage(0, Chunk{Bytes: len(payload), Data: payload}, func(now float64, msg Chunk) {
		delivered = msg
		deliveredAt = now
	})
	e.Run(func(*sched.Engine) bool { return deliveredAt > 0 })
	if delivered.Bytes != 4000 {
		t.Fatalf("delivered %d bytes", delivered.Bytes)
	}
	if delivered.Addr == 0 {
		t.Fatal("no kernel placement for the message")
	}
	if deliveredAt < last {
		t.Fatalf("delivered at %.0f before last bit arrived at %.0f", deliveredAt, last)
	}
	if rx.Payload() != 4000 {
		t.Fatalf("link payload accounting = %d", rx.Payload())
	}
}

func TestNICTransmit(t *testing.T) {
	m := machine.New(machine.OneCPm, machine.Options{})
	e := sched.NewEngine(m)
	tx := NewLink(m, 1e9)
	nic := NewNIC(e, e.Space.NewProcess(), NewLink(m, 1e9), tx)
	buf := trace.NewBuffer(4096)
	done := false
	e.Spawn("sender", 0, 1, 0, sched.ProcFunc(func(ctx *sched.Ctx) sched.Status {
		end := nic.Transmit(ctx, buf, nil, 1<<30, 5000)
		if end <= 0 {
			t.Error("transmit returned no wire time")
		}
		done = true
		return sched.StatusDone()
	}))
	e.Run(nil)
	if !done || tx.Payload() != 5000 {
		t.Fatalf("transmit incomplete: done=%v payload=%d", done, tx.Payload())
	}
}
