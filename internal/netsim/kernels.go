package netsim

import (
	"sync/atomic"

	"repro/internal/perf/trace"
)

// Instrumented network-stack kernels. Each Emit* function produces the
// micro-op stream of one operation of the simulated kernel's TCP/IP stack.
// Branch sites use stable synthetic PCs so the predictors see the same
// static code across calls, and branch outcomes follow the actual control
// flow (loop back-edges taken until the final iteration, validity checks
// almost always falling through), which is what gives the netperf rows of
// Table 3 their characteristic ~1% misprediction ratios.

var (
	copyCode = trace.NewCodeRegion(256)
	csumCode = trace.NewCodeRegion(256)
	hdrCode  = trace.NewCodeRegion(1024)
	syscCode = trace.NewCodeRegion(1024)

	copyLoopPC  = copyCode.Site()
	copyTailPC  = copyCode.Site()
	csumLoopPC  = csumCode.Site()
	csumOKPC    = csumCode.Site()
	hdrValidPC  = hdrCode.Site()
	hdrOptsPC   = hdrCode.Site()
	hdrAckPC    = hdrCode.Site()
	hdrWndPC    = hdrCode.Site()
	hdrTimerPC  = hdrCode.Site()
	hdrPushPC   = hdrCode.Site()
	syscLoopPC  = syscCode.Site()
	syscFlagPC  = syscCode.Site()
	syscEpollPC = syscCode.Site()
)

// EmitCopy emits the stream of copying n bytes from src to dst: one load
// and one store per machine word, with the loop unrolled two words per
// iteration (one back-edge branch per two words). The resulting abstract
// mix of one branch in five lands the netperf rows of Table 3 on the
// paper's branch frequencies: ~34% of retired events on the Pentium M
// (which counts two branch events per actual branch) and ~19% on Xeon.
// It is the workhorse of both netperf modes and of every socket
// read/write.
func EmitCopy(em trace.Emitter, dst, src uint64, n int) {
	words := memWords(n)
	for w := 0; w < words; w += 2 {
		k := 2
		if w+k > words {
			k = words - w
		}
		em.Load(src+uint64(w)*trace.WordBytes, k)
		em.Store(dst+uint64(w)*trace.WordBytes, k)
		em.Branch(copyLoopPC, w+k < words)
	}
	em.Branch(copyTailPC, n%trace.WordBytes != 0)
}

// EmitChecksum emits the stream of the Internet checksum over n bytes at
// addr: one load and one add per word. The final compare branch depends
// on the data (modelled via the low bits of the payload content sum when
// available).
func EmitChecksum(em trace.Emitter, addr uint64, n int, data []byte) {
	words := memWords(n)
	for w := 0; w < words; w += 2 {
		k := 2
		if w+k > words {
			k = words - w
		}
		em.Load(addr+uint64(w)*trace.WordBytes, k)
		em.ALU(k)
		em.Branch(csumLoopPC, w+k < words)
	}
	ok := true
	if len(data) > 0 {
		// Data-dependent but almost always "checksum valid".
		ok = data[0]%97 != 0
	}
	em.Branch(csumOKPC, ok)
}

// segSeq is the global TCP segment sequence the periodic control branches
// key off. Real stacks branch on conditions with medium-period regularity
// (delayed-ACK every other segment, window updates every few segments,
// timer work on a coarser period). Predictors with long global histories
// learn the longer periods; short-history predictors cannot — one of the
// structural reasons the Pentium M's misprediction ratios sit well below
// Netburst's in Table 3/Table 6. The counter is shared across all
// simulated machines in the process and atomic, so simulator runs may
// proceed concurrently (e.g. the harness's background model warming next
// to a foreground run); interleaving only dephases the medium-period
// patterns, which is noise the predictors already see.
var segSeq atomic.Uint64

// EmitRxHeader emits the per-segment receive-side header processing: IP
// validation, TCP state lookup, sequence/ack handling.
func EmitRxHeader(em trace.Emitter, hdrAddr uint64, segIndex int) {
	seq := segSeq.Add(1)
	em.Load(hdrAddr, 6) // header words
	em.ALU(22)          // field extraction, validation arithmetic
	em.Branch(hdrValidPC, true)
	em.Branch(hdrOptsPC, segIndex == 0) // options parsed on first segment
	em.Load(hdrAddr+64, 8)              // socket/TCB lookup
	em.ALU(30)                          // state machine, window update
	em.Branch(hdrAckPC, seq%2 == 0)     // delayed ACK
	em.Branch(hdrWndPC, seq%7 == 0)     // window update
	em.Branch(hdrTimerPC, seq%13 == 0)  // timer/bookkeeping slow path
	em.Store(hdrAddr+128, 6)              // TCB writeback
	em.ALU(12)
	em.Branch(hdrPushPC, true)
}

// EmitTxHeader emits the per-segment transmit-side header construction:
// TCB read, header build, checksum of the header, queueing to the device.
func EmitTxHeader(em trace.Emitter, hdrAddr uint64, segIndex int) {
	seq := segSeq.Add(1)
	em.Load(hdrAddr, 8) // TCB
	em.ALU(28)          // header assembly, seq arithmetic
	em.Store(hdrAddr+64, 8)
	em.ALU(14) // qdisc enqueue
	em.Branch(hdrValidPC, true)
	em.Branch(hdrAckPC, segIndex != 0)
	em.Branch(hdrWndPC, seq%7 == 0)
	em.Branch(hdrTimerPC, seq%13 == 0)
}

// EmitSyscall emits the fixed cost of one socket system call (user/kernel
// crossing, fd lookup, locking): nInstr of work walking scattered kernel
// metadata at metaAddr. The metadata stride defeats spatial locality the
// way real socket/file/epoll structures do, which is what keeps the
// network-I/O-intensive workloads memory-bound (Figure 4's FR > CBR > SV
// L2MPI ordering). The kernel fast paths are short basic blocks — about
// one branch in four instructions.
func EmitSyscall(em trace.Emitter, metaAddr uint64, nInstr int) {
	iters := nInstr / 8
	if iters < 1 {
		iters = 1
	}
	stride := uint64(192) // three lines apart: no spatial reuse
	for i := 0; i < iters; i++ {
		em.Load(metaAddr+uint64(i)*stride, 1)
		em.ALU(4)
		em.Branch(syscFlagPC, i&3 == 0) // state checks with mixed outcomes
		em.ALU(1)
		em.Branch(syscLoopPC, i+1 < iters)
	}
	em.Branch(syscEpollPC, true)
}
