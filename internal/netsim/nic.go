package netsim

import (
	"repro/internal/perf/machine"
	"repro/internal/perf/trace"
	"repro/internal/sim/sched"
)

// NIC is the system-under-test's network interface: arriving segments are
// DMA'd into rotating kernel buffers (invalidating any cached copies and
// occupying the front-side bus, exactly the path that makes network-I/O
// workloads memory-bound), then handed to the softirq thread.
type NIC struct {
	E  *sched.Engine
	M  *machine.Machine
	Rx *Link
	Tx *Link

	// KernSpace is the kernel address-space arena the NIC (and the rest
	// of the kernel model) carves its regions from.
	KernSpace *trace.Arena

	// DMAArena provides the rotating kernel segment buffers. Its size is
	// chosen to model a ring of sk_buffs much larger than L1 but
	// recycled through L2.
	DMAArena *trace.Arena
	// SockArena provides socket-buffer data placement.
	SockArena *trace.Arena

	// Pending holds DMA-complete segments awaiting softirq processing.
	Pending *SockBuf
	// IRQ wakes the softirq thread.
	IRQ sched.Waiter
}

// NewNIC wires a NIC to an engine, carving its kernel arenas out of the
// kernel address space (process 0 by convention).
func NewNIC(e *sched.Engine, kernSpace *trace.Arena, rx, tx *Link) *NIC {
	return &NIC{
		E:         e,
		M:         e.M,
		Rx:        rx,
		Tx:        tx,
		KernSpace: kernSpace,
		DMAArena:  trace.SubArena(kernSpace, 512<<10),
		SockArena: trace.SubArena(kernSpace, 1<<20),
		Pending:   NewSockBuf(0),
	}
}

// inflight tracks reassembly of one application message.
type inflight struct {
	msg       Chunk
	remaining int
	deliver   func(now float64, msg Chunk)
}

// DeliverSegment is called by the link-arrival event for one segment: the
// NIC DMA-writes the payload into a kernel buffer and raises the softirq.
func (n *NIC) DeliverSegment(now float64, seg Chunk) {
	addr := n.DMAArena.Alloc(uint64(seg.Bytes) + 256) // headroom for headers
	n.M.DMAWrite(now, addr, seg.Bytes+64)
	seg.Addr = addr
	n.Pending.Push(seg, now)
	n.IRQ.Signal(now)
}

// SoftirqProc returns the Proc of the network softirq thread. On the
// paper-era Linux 2.6 kernels all receive processing runs on the CPU that
// takes the NIC interrupt — CPU0 — which serializes a slice of every
// message's work regardless of how many CPUs the box has. The thread
// performs per-segment header processing and checksum verification, copies
// the payload into the destination socket buffer, and on final-segment
// arrival completes message reassembly.
func (n *NIC) SoftirqProc() sched.Proc {
	buf := trace.NewBuffer(4096)
	return sched.ProcFunc(func(ctx *sched.Ctx) sched.Status {
		seg, ok := n.Pending.Pop(ctx.Now())
		if !ok {
			return sched.StatusWait(&n.IRQ)
		}
		fl := seg.Meta.(*inflight)

		buf.Reset()
		EmitRxHeader(buf, seg.Addr, fl.remaining)
		EmitChecksum(buf, seg.Addr, seg.Bytes, fl.msg.Data)
		sockAddr := n.SockArena.Alloc(uint64(seg.Bytes))
		EmitCopy(buf, sockAddr, seg.Addr, seg.Bytes)
		ctx.ExecBuffer(buf)

		if fl.msg.Addr == 0 {
			fl.msg.Addr = sockAddr // message starts at its first segment
		}
		fl.remaining--
		if fl.remaining == 0 {
			fl.deliver(ctx.Now(), fl.msg)
		}
		return sched.StatusYield()
	})
}

// InjectMessage schedules the arrival of one application message over the
// receive link starting no earlier than cycle now: each MSS segment
// serializes on the wire, then DMAs and queues for the softirq. deliver is
// called (in softirq context/time) when the last segment has been
// processed. It returns the cycle at which the last bit arrives.
func (n *NIC) InjectMessage(now float64, msg Chunk, deliver func(now float64, msg Chunk)) float64 {
	segs := Segments(msg.Bytes)
	fl := &inflight{msg: msg, remaining: len(segs), deliver: deliver}
	var last float64
	for _, sz := range segs {
		arrive := n.Rx.Reserve(now, sz+WireOverhead)
		seg := Chunk{Bytes: sz, Meta: fl}
		n.E.At(arrive, func(t float64) { n.DeliverSegment(t, seg) })
		last = arrive
	}
	n.Rx.AddPayload(msg.Bytes)
	return last
}

// Transmit emits the transmit-side kernel work for sending an n-byte
// message whose user-space copy lives at userAddr, running in the calling
// thread (sendmsg executes on the caller's CPU): per-segment header
// construction, the user-to-kernel copy with checksum folded in, the
// device DMA read, and the wire reservation. txArena supplies the sk_buff
// placement; callers pass a per-CPU arena, mirroring the kernel's per-CPU
// slab caches — without that, transmit buffers bounce between packages.
// It returns the cycle at which the last bit leaves.
func (n *NIC) Transmit(ctx *sched.Ctx, buf *trace.Buffer, txArena *trace.Arena, userAddr uint64, nBytes int) float64 {
	if txArena == nil {
		txArena = n.SockArena
	}
	segs := Segments(nBytes)
	var last float64
	off := uint64(0)
	for i, sz := range segs {
		buf.Reset()
		kaddr := txArena.Alloc(uint64(sz))
		EmitTxHeader(buf, kaddr, i)
		EmitCopy(buf, kaddr, userAddr+off, sz)
		ctx.ExecBuffer(buf)
		n.M.DMARead(ctx.Now(), kaddr, sz)
		last = n.Tx.Reserve(ctx.Now(), sz+WireOverhead)
		off += uint64(sz)
	}
	n.Tx.AddPayload(nBytes)
	return last
}
