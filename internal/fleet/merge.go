package fleet

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/session"
)

// NodeSample is one node's sample inside the merged cross-node session:
// the node identity (role/id), the node-local timestamp it was recorded
// at, the skew-aligned relative timestamp, and the sample itself.
type NodeSample struct {
	// Node is the sample's origin, "role/id" (e.g. "gateway/gw0").
	Node string `json:"node"`
	// Role is the origin's role, denormalized for filtering.
	Role string `json:"role"`
	// TMS is the node's own clock at sample time, in milliseconds. For
	// timeline samples it is the node's wall clock; for samples
	// synthesized from /stats deltas it may be an uptime-derived
	// monotonic value. Either way it is NODE-LOCAL: comparing TMS across
	// nodes compares clocks, not events.
	TMS int64 `json:"t_ms"`
	// RelMS is the skew-aligned timeline position: TMS minus the node's
	// epoch (its first sample's TMS). Each node's RelMS advances with its
	// own monotonic clock from a common zero, so cross-node ordering
	// never depends on wall clocks agreeing — the alignment rule for
	// fleets whose machines aren't NTP-disciplined against each other.
	RelMS int64 `json:"rel_ms"`

	Sample session.Sample `json:"sample"`
}

// Merger accumulates per-node samples into one deduplicated, skew-
// aligned session. Safe for concurrent Add (the scraper) and read (the
// report builder). An optional sink observes every accepted sample in
// arrival order — the JSONL persister, so the merged session is on disk
// while the campaign is still running.
type Merger struct {
	mu    sync.Mutex
	epoch map[string]int64              // node key → first-seen TMS
	seen  map[string]map[int64]struct{} // node key → TMS dedup set
	all   []NodeSample
	sink  func(NodeSample) error
	sinkE error
}

// NewMerger builds a merger; sink may be nil.
func NewMerger(sink func(NodeSample) error) *Merger {
	return &Merger{
		epoch: map[string]int64{},
		seen:  map[string]map[int64]struct{}{},
		sink:  sink,
	}
}

// Add records one sample for node (key "role/id"). Duplicate (node, TMS)
// pairs — the same ring sample scraped twice — are suppressed; added
// reports whether the sample was new. The first sample a node ever
// contributes pins that node's epoch; a node joining the session late
// simply starts its RelMS axis at its own first observation.
func (m *Merger) Add(node, role string, s session.Sample) (added bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	set, ok := m.seen[node]
	if !ok {
		set = map[int64]struct{}{}
		m.seen[node] = set
		m.epoch[node] = s.TMS
	}
	if _, dup := set[s.TMS]; dup {
		return false
	}
	set[s.TMS] = struct{}{}
	ns := NodeSample{
		Node:   node,
		Role:   role,
		TMS:    s.TMS,
		RelMS:  s.TMS - m.epoch[node],
		Sample: s,
	}
	m.all = append(m.all, ns)
	if m.sink != nil && m.sinkE == nil {
		m.sinkE = m.sink(ns)
	}
	return true
}

// Len is the number of accepted samples so far.
func (m *Merger) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.all)
}

// SinkErr reports the first persistence failure, if any.
func (m *Merger) SinkErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sinkE
}

// Slice returns accepted samples [from, to) in arrival order — the
// report builder's per-load-point window.
func (m *Merger) Slice(from, to int) []NodeSample {
	m.mu.Lock()
	defer m.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if to > len(m.all) {
		to = len(m.all)
	}
	if from >= to {
		return nil
	}
	out := make([]NodeSample, to-from)
	copy(out, m.all[from:to])
	return out
}

// Merged returns the full session ordered by aligned time (RelMS), ties
// broken by node key then TMS — the canonical cross-node timeline.
func (m *Merger) Merged() []NodeSample {
	m.mu.Lock()
	out := make([]NodeSample, len(m.all))
	copy(out, m.all)
	m.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].RelMS != out[j].RelMS {
			return out[i].RelMS < out[j].RelMS
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].TMS < out[j].TMS
	})
	return out
}

// PerNode splits the session by node key, each node's samples in
// node-local chronological order.
func (m *Merger) PerNode() map[string][]session.Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[string][]session.Sample{}
	for _, ns := range m.all {
		out[ns.Node] = append(out[ns.Node], ns.Sample)
	}
	for _, ss := range out {
		sort.SliceStable(ss, func(i, j int) bool { return ss[i].TMS < ss[j].TMS })
	}
	return out
}

// Nodes lists the node keys that contributed samples, sorted.
func (m *Merger) Nodes() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]string, 0, len(m.seen))
	for k := range m.seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Epoch returns node's epoch TMS (false when the node never reported).
func (m *Merger) Epoch(node string) (int64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.epoch[node]
	return e, ok
}

// Summary is a one-line accounting for logs and the campaign report.
func (m *Merger) Summary() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return fmt.Sprintf("%d samples across %d nodes", len(m.all), len(m.seen))
}
