package fleet

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/gateway"
	"repro/internal/session"
)

// NodeWindow aggregates one node's samples over a sweep point's window:
// total messages, window-weighted throughput and counter metrics, and
// the latency view at the window's close.
type NodeWindow struct {
	Node string `json:"node"`
	Role string `json:"role"`
	// Samples is how many merged-session samples fell in the window.
	Samples  int    `json:"samples"`
	Messages uint64 `json:"messages"`
	// MsgsPerSec is total messages over total sampled window time.
	MsgsPerSec float64 `json:"msgs_per_sec"`
	// P50/P99 are the last sample's view (cumulative histograms — the
	// freshest read wins).
	LatencyP50US uint64 `json:"latency_p50_us"`
	LatencyP99US uint64 `json:"latency_p99_us"`
	// CPI/CacheMPI are window-weighted means over samples that carried
	// counter views; Source is "hw" when any sample was hardware-derived,
	// else "model", else "" (no counter view at all — backends).
	CPI      float64 `json:"cpi,omitempty"`
	CacheMPI float64 `json:"cache_mpi_pct,omitempty"`
	Source   string  `json:"derived_source,omitempty"`
}

// PointReport is one sweep point: the client-side load report, the
// per-node windows cut from the merged session, and the gateway's
// capacity-model error view at the point's close.
type PointReport struct {
	Conns int `json:"conns"`
	// Client is the load generator's accounting for this point.
	Client gateway.Report `json:"client"`
	// Nodes are the per-node observability windows, sorted gateway
	// first, then backends, by key.
	Nodes []NodeWindow `json:"nodes"`
	// FleetMsgsPerSec sums the gateway nodes' window throughput — the
	// fleet-total forwarding rate the scaling column compares.
	FleetMsgsPerSec float64 `json:"fleet_msgs_per_sec"`
	// Capacity carries the first gateway's model-error section when
	// adaptive admission runs (nil otherwise).
	Capacity *gateway.CapacitySnapshot `json:"capacity,omitempty"`
}

// windowNodes cuts per-node aggregates from the slice of merged-session
// samples that arrived during one sweep point.
func windowNodes(samples []NodeSample) []NodeWindow {
	type agg struct {
		w      NodeWindow
		winSec float64
		cpiW   float64 // Σ cpi·window
		mpiW   float64
		cW     float64 // Σ window over counter-bearing samples
		last   session.Sample
	}
	byNode := map[string]*agg{}
	for _, ns := range samples {
		a, ok := byNode[ns.Node]
		if !ok {
			a = &agg{w: NodeWindow{Node: ns.Node, Role: ns.Role}}
			byNode[ns.Node] = a
		}
		s := ns.Sample
		a.w.Samples++
		a.w.Messages += s.Messages
		a.winSec += s.WindowSec
		if s.DerivedSource != "" && s.WindowSec > 0 {
			a.cpiW += s.CPI * s.WindowSec
			a.mpiW += s.CacheMPI * s.WindowSec
			a.cW += s.WindowSec
			if s.DerivedSource == "hw" || a.w.Source == "" {
				a.w.Source = s.DerivedSource
			}
		}
		a.last = s
	}
	out := make([]NodeWindow, 0, len(byNode))
	for _, a := range byNode {
		if a.winSec > 0 {
			a.w.MsgsPerSec = float64(a.w.Messages) / a.winSec
		}
		if a.cW > 0 {
			a.w.CPI = a.cpiW / a.cW
			a.w.CacheMPI = a.mpiW / a.cW
		}
		a.w.LatencyP50US = a.last.LatencyP50US
		a.w.LatencyP99US = a.last.LatencyP99US
		out = append(out, a.w)
	}
	sort.Slice(out, func(i, j int) bool {
		if ri, rj := roleRank(out[i].Role), roleRank(out[j].Role); ri != rj {
			return ri < rj
		}
		return out[i].Node < out[j].Node
	})
	return out
}

func roleRank(role string) int {
	switch role {
	case RoleGateway:
		return 0
	case RoleBackend:
		return 1
	default:
		return 2
	}
}

// buildPoint assembles one sweep point's report.
func buildPoint(conns int, client gateway.Report, window []NodeSample, snap *gateway.Snapshot) PointReport {
	pr := PointReport{Conns: conns, Client: client, Nodes: windowNodes(window)}
	for _, nw := range pr.Nodes {
		if nw.Role == RoleGateway {
			pr.FleetMsgsPerSec += nw.MsgsPerSec
		}
	}
	if snap != nil {
		pr.Capacity = snap.Capacity
	}
	return pr
}

// FormatFleetReport renders the campaign as the combined Figure-5/6
// analogue: the client view (throughput, p50/p99, scaling factor vs the
// first point), the per-node windows (per-node and fleet-total
// throughput, CPI and cache MPI where a node carried counters), and the
// capacity model-error columns when adaptive admission ran.
func FormatFleetReport(points []PointReport, merger *Merger) string {
	var b strings.Builder
	b.WriteString("Fleet sweep report (" + merger.Summary() + ")\n")
	b.WriteString("\nClient view (per sweep point):\n")
	b.WriteString(fmt.Sprintf("%-6s %12s %10s %10s %10s %8s\n",
		"conns", "msgs/s", "p50(us)", "p99(us)", "errors", "scale"))
	base := 0.0
	for i, p := range points {
		if i == 0 {
			base = p.Client.MsgsPerSec
		}
		scale := 0.0
		if base > 0 {
			scale = p.Client.MsgsPerSec / base
		}
		errs := p.Client.HTTPErrors + p.Client.NetErrors + p.Client.Shed
		b.WriteString(fmt.Sprintf("%-6d %12.1f %10d %10d %10d %7.2fx\n",
			p.Conns, p.Client.MsgsPerSec, p.Client.Latency.P50US,
			p.Client.Latency.P99US, errs, scale))
	}
	b.WriteString("\nPer-node view (merged session windows):\n")
	b.WriteString(fmt.Sprintf("%-6s %-24s %8s %10s %12s %10s %10s %8s %10s %6s\n",
		"conns", "node", "samples", "msgs", "msgs/s", "p50(us)", "p99(us)", "cpi", "cacheMPI%", "src"))
	for _, p := range points {
		for _, nw := range p.Nodes {
			cpi, mpi, src := "-", "-", nw.Source
			if src == "" {
				src = "-"
			} else {
				cpi = fmt.Sprintf("%.3f", nw.CPI)
				mpi = fmt.Sprintf("%.4f", nw.CacheMPI)
			}
			b.WriteString(fmt.Sprintf("%-6d %-24s %8d %10d %12.1f %10d %10d %8s %10s %6s\n",
				p.Conns, nw.Node, nw.Samples, nw.Messages, nw.MsgsPerSec,
				nw.LatencyP50US, nw.LatencyP99US, cpi, mpi, src))
		}
		b.WriteString(fmt.Sprintf("%-6d %-24s %8s %10s %12.1f\n",
			p.Conns, "fleet-total(gateways)", "", "", p.FleetMsgsPerSec))
	}
	if hasCapacity(points) {
		b.WriteString("\nCapacity model error (gateway adaptive admission):\n")
		b.WriteString(fmt.Sprintf("%-6s %10s %10s %10s %14s\n",
			"conns", "bound", "thr_err%", "p99_err%", "admissible/s"))
		for _, p := range points {
			c := p.Capacity
			if c == nil || !c.Enabled {
				continue
			}
			b.WriteString(fmt.Sprintf("%-6d %10d %10.1f %10.1f %14.1f\n",
				p.Conns, c.AdmissionBound, c.ThroughputErrPct, c.P99ErrPct,
				c.AdmissiblePerSec))
		}
	}
	return b.String()
}

func hasCapacity(points []PointReport) bool {
	for _, p := range points {
		if p.Capacity != nil && p.Capacity.Enabled {
			return true
		}
	}
	return false
}
