package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/session"
)

// Artifact names inside Config.OutDir.
const (
	JSONLName     = "merged-session.jsonl"
	MergedCSVName = "merged-session.csv"
	ReportName    = "fleet-report.txt"
)

// SessionWriter persists the merged session to disk as it is collected:
// one JSON line per accepted NodeSample, flushed per sample, so a
// crashed campaign still leaves the session on disk up to its last
// scrape.
type SessionWriter struct {
	f    *os.File
	w    *bufio.Writer
	path string
	rows int
}

// NewSessionWriter creates (truncating) <outDir>/merged-session.jsonl.
func NewSessionWriter(outDir string) (*SessionWriter, error) {
	path := filepath.Join(outDir, JSONLName)
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: session jsonl: %w", err)
	}
	return &SessionWriter{f: f, w: bufio.NewWriter(f), path: path}, nil
}

// Path is the JSONL file's location.
func (sw *SessionWriter) Path() string { return sw.path }

// Rows is the number of samples written so far.
func (sw *SessionWriter) Rows() int { return sw.rows }

// Write appends one sample as a JSON line and flushes it to the OS —
// the crash-safety contract.
func (sw *SessionWriter) Write(ns NodeSample) error {
	b, err := json.Marshal(ns)
	if err != nil {
		return fmt.Errorf("fleet: session jsonl: %w", err)
	}
	if _, err := sw.w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("fleet: session jsonl: %w", err)
	}
	if err := sw.w.Flush(); err != nil {
		return fmt.Errorf("fleet: session jsonl: %w", err)
	}
	sw.rows++
	return nil
}

// Close flushes and closes the JSONL file.
func (sw *SessionWriter) Close() error {
	if sw.f == nil {
		return nil
	}
	err := sw.w.Flush()
	if cerr := sw.f.Close(); err == nil {
		err = cerr
	}
	sw.f = nil
	return err
}

// ReadJSONL loads a persisted merged session back — the round-trip half
// of the format, used by tests and by offline report tooling.
func ReadJSONL(path string) ([]NodeSample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: session jsonl: %w", err)
	}
	defer f.Close()
	var out []NodeSample
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ns NodeSample
		if err := json.Unmarshal(sc.Bytes(), &ns); err != nil {
			return nil, fmt.Errorf("fleet: session jsonl line %d: %w", line, err)
		}
		out = append(out, ns)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: session jsonl: %w", err)
	}
	return out, nil
}

// WriteCSVs renders the merged session to CSV: one session-<role>-<id>.csv
// per node in the plain session schema (readable by session.ReadCSV and
// every existing tool), plus merged-session.csv with node, role, and
// aligned rel_ms columns prefixed — session.ReadCSV resolves columns by
// header name, so the merged file stays readable by the same parser.
func WriteCSVs(outDir string, m *Merger) error {
	for node, samples := range m.PerNode() {
		path := filepath.Join(outDir, "session-"+sanitize(node)+".csv")
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("fleet: %s: %w", path, err)
		}
		err = session.WriteCSV(f, samples)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("fleet: %s: %w", path, err)
		}
	}
	path := filepath.Join(outDir, MergedCSVName)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fleet: %s: %w", path, err)
	}
	err = writeMergedCSV(f, m.Merged())
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("fleet: %s: %w", path, err)
	}
	return nil
}

func writeMergedCSV(f *os.File, merged []NodeSample) error {
	w := bufio.NewWriter(f)
	header := append([]string{"node", "role", "rel_ms"}, session.CSVHeader()...)
	if err := writeCSVRow(w, header); err != nil {
		return err
	}
	for _, ns := range merged {
		row := append([]string{ns.Node, ns.Role, strconv.FormatInt(ns.RelMS, 10)},
			session.CSVRecord(ns.Sample)...)
		if err := writeCSVRow(w, row); err != nil {
			return err
		}
	}
	return w.Flush()
}

// writeCSVRow emits one comma-joined line. Fields here are numbers,
// role names, and sanitized node keys — never quoted material.
func writeCSVRow(w *bufio.Writer, fields []string) error {
	for i, fld := range fields {
		if i > 0 {
			if err := w.WriteByte(','); err != nil {
				return err
			}
		}
		if _, err := w.WriteString(fld); err != nil {
			return err
		}
	}
	return w.WriteByte('\n')
}
