package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/gateway"
	"repro/internal/session"
	"repro/internal/upstream"
)

// scraper pulls each node's self-reported observability over HTTP and
// feeds it into the merger. Gateways serve a full sampling session on
// GET /timeline (preferred — native 100ms samples with counter views);
// when a gateway runs without -timeline, or for backends (which only
// expose cumulative /stats), the scraper synthesizes windowed samples
// from consecutive snapshot deltas.
type scraper struct {
	client *http.Client
	merger *Merger

	// traces receives every node's tail-sampled spans when the fleet's
	// trace plane is on (nil otherwise).
	traces *TraceStore

	mu       sync.Mutex
	prev     map[string]prevCounters // node key → last cumulative view
	noTraces map[string]bool         // node key → /traces answered 404 (tracing off)
}

// prevCounters is the previous cumulative observation for delta-based
// sample synthesis.
type prevCounters struct {
	tms      int64
	messages uint64
	bytesIn  uint64
	shed     uint64
}

func newScraper(merger *Merger, timeout time.Duration) *scraper {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &scraper{
		client:   &http.Client{Timeout: timeout},
		merger:   merger,
		prev:     map[string]prevCounters{},
		noTraces: map[string]bool{},
	}
}

// getJSON fetches http://<addr><path> and decodes the body into v.
// Non-200 statuses are errors carrying the body's first line.
func (sc *scraper) getJSON(addr, path string, v any) error {
	resp, err := sc.client.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		msg := string(body)
		if len(msg) > 200 {
			msg = msg[:200]
		}
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, msg)
	}
	return json.Unmarshal(body, v)
}

// scrapeNode pulls one node's current view into the merger. Load nodes
// have no stats surface and are skipped.
func (sc *scraper) scrapeNode(n *Node) error {
	switch n.Role {
	case RoleGateway:
		if err := sc.scrapeGateway(n); err != nil {
			return err
		}
		return sc.scrapeTraces(n)
	case RoleBackend:
		if err := sc.scrapeBackend(n); err != nil {
			return err
		}
		return sc.scrapeTraces(n)
	default:
		return nil
	}
}

// scrapeTraces pulls a node's tail-sampled traces into the fleet's
// cross-node span store. The rings are cumulative, so re-reads dedup in
// the store. A node without tracing enabled answers 404 once and is
// remembered as trace-less — an attached node running an older build or
// without -trace must not spam the error log every tick.
func (sc *scraper) scrapeTraces(n *Node) error {
	if sc.traces == nil {
		return nil
	}
	key := n.Key()
	sc.mu.Lock()
	skip := sc.noTraces[key]
	sc.mu.Unlock()
	if skip {
		return nil
	}
	resp, err := sc.client.Get("http://" + n.Addr + "/traces")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusNotFound {
		sc.mu.Lock()
		sc.noTraces[key] = true
		sc.mu.Unlock()
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		msg := string(body)
		if len(msg) > 200 {
			msg = msg[:200]
		}
		return fmt.Errorf("GET /traces: %s: %s", resp.Status, msg)
	}
	var tr gateway.TracesResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		return fmt.Errorf("GET /traces: %w", err)
	}
	for _, t := range tr.Traces {
		sc.traces.AddSpans(t.Spans)
	}
	return nil
}

// scrapeAll sweeps every node once, collecting per-node errors keyed for
// diagnostics. A node that fails to answer one tick is not fatal — it
// may be mid-start or mid-stop; the campaign-level readiness and exit
// checks own liveness.
func (sc *scraper) scrapeAll(nodes []*Node) []error {
	var errs []error
	for _, n := range nodes {
		if err := sc.scrapeNode(n); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", n.Key(), err))
		}
	}
	return errs
}

// scrapeGateway prefers the gateway's own sampling session: every kept
// /timeline sample lands in the merger, dedup suppressing re-reads of
// the ring. Without a timeline it falls back to /stats deltas.
func (sc *scraper) scrapeGateway(n *Node) error {
	var tr gateway.TimelineResponse
	if err := sc.getJSON(n.Addr, "/timeline", &tr); err == nil {
		for _, s := range tr.Samples {
			sc.merger.Add(n.Key(), n.Role, s)
		}
		return nil
	}
	// No sampling session on this gateway — synthesize from /stats.
	var snap gateway.Snapshot
	if err := sc.getJSON(n.Addr, "/stats", &snap); err != nil {
		return err
	}
	// Uptime is the gateway's own monotonic axis: immune to wall-clock
	// skew and steps, which is exactly what cross-node alignment needs.
	tms := int64(snap.UptimeSec * 1000)
	s := session.Sample{
		TMS:          tms,
		LatencyP50US: snap.Latency.P50US,
		LatencyP99US: snap.Latency.P99US,
	}
	if c := snap.Counters; c != nil {
		s.CPI = c.Derived.CPI
		s.CacheMPI = c.Derived.CacheMPI
		s.BrMPR = c.Derived.BrMPR
		s.DerivedSource = c.DerivedSource
		s.Goroutines = c.Runtime.Goroutines
	}
	sc.addDelta(n, s, snap.Messages, snap.BytesIn, snap.Shed)
	return nil
}

// scrapeBackend turns the backend's cumulative /stats into windowed
// samples: requests become Messages deltas, the latency histogram
// (cumulative, like the gateway's) supplies the percentiles.
func (sc *scraper) scrapeBackend(n *Node) error {
	var bs upstream.BackendStats
	if err := sc.getJSON(n.Addr, "/stats", &bs); err != nil {
		return err
	}
	s := session.Sample{
		TMS:          int64(bs.UptimeSec * 1000),
		LatencyP50US: bs.Latency.P50US,
		LatencyP99US: bs.Latency.P99US,
	}
	sc.addDelta(n, s, bs.Requests, bs.BytesIn, bs.Dropped)
	return nil
}

// addDelta completes a synthesized sample with windowed deltas against
// the node's previous cumulative view and feeds it to the merger. The
// first observation primes the window state and lands as a zero-window
// sample — it pins the node's epoch in the merged session.
func (sc *scraper) addDelta(n *Node, s session.Sample, messages, bytesIn, shed uint64) {
	sc.mu.Lock()
	key := n.Key()
	if p, ok := sc.prev[key]; ok && s.TMS > p.tms {
		s.WindowSec = float64(s.TMS-p.tms) / 1000
		if messages >= p.messages {
			s.Messages = messages - p.messages
		}
		if bytesIn >= p.bytesIn {
			s.BytesIn = bytesIn - p.bytesIn
		}
		if shed >= p.shed {
			s.Shed = shed - p.shed
		}
		if s.WindowSec > 0 {
			s.MsgsPerSec = float64(s.Messages) / s.WindowSec
		}
	}
	sc.prev[key] = prevCounters{tms: s.TMS, messages: messages, bytesIn: bytesIn, shed: shed}
	sc.mu.Unlock()
	sc.merger.Add(key, n.Role, s)
}

// gatewaySnapshot fetches a gateway's full /stats view — the report
// builder reads throughput, latency, and the capacity model-error
// section from it at each sweep point.
func (sc *scraper) gatewaySnapshot(n *Node) (*gateway.Snapshot, error) {
	var snap gateway.Snapshot
	if err := sc.getJSON(n.Addr, "/stats", &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}
