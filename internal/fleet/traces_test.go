package fleet

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dtrace"
	"repro/internal/gateway"
	"repro/internal/upstream"
	"repro/internal/workload"
)

// TestFleetTracePlane is the cross-node assembly acceptance path: an
// attach-mode fleet over an in-process tracing gateway and backend, the
// sweep originating a trace on every request. The scrape loop must join
// the client, gateway, and backend spans by trace ID into assembled
// cross-node traces, and the traces.jsonl artifact must round-trip
// through the dtrace reader. Runs under -race in CI.
func TestFleetTracePlane(t *testing.T) {
	t.Setenv(gateway.ForceRuntimeOnlyEnv, "1")

	order, err := upstream.StartBackend("127.0.0.1:0", upstream.BackendConfig{
		Name:      "order",
		TraceNode: "backend/b-order",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer order.Close()

	srv, err := gateway.New(gateway.Config{
		UseCase:        workload.FR,
		Workers:        2,
		Trace:          true,
		TraceNode:      "gateway/gw0",
		TraceKeepEvery: 1, // keep every trace: assembly assertions are deterministic
		Upstream:       upstream.Config{Order: order.Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	outDir := t.TempDir()
	cfg := &Config{
		OutDir:           outDir,
		ScrapeIntervalMS: 20,
		ReadyTimeoutMS:   5000,
		Trace:            true,
		TraceClientEvery: 1,
		Nodes: []NodeConfig{
			{Role: RoleBackend, ID: "b-order", Addr: order.Addr().String(), Endpoint: "order", Attach: true},
			{Role: RoleGateway, ID: "gw0", Addr: srv.Addr().String(), Attach: true},
		},
		Sweep: SweepConfig{Conns: []int{2}, Messages: 100},
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	co.Logf = t.Logf
	if err := co.Start(); err != nil {
		t.Fatal(err)
	}
	defer co.Shutdown()

	if err := co.RunSweep(); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := co.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	store := co.Traces()
	if store == nil || store.Len() == 0 {
		t.Fatal("trace store empty")
	}
	asm := store.Assemble()
	if len(asm) == 0 {
		t.Fatal("no assembled traces")
	}
	// Every request was traced end to end: at least one trace must span
	// all three fleet vantage points, joined purely by trace ID.
	want := "backend/b-order,gateway/gw0,load/client"
	full := 0
	for _, at := range asm {
		if strings.Join(at.Nodes, ",") == want {
			full++
			if len(at.Roots) != 1 {
				t.Fatalf("trace %v: %d roots, want 1 (the client span)", at.TraceID, len(at.Roots))
			}
			root := at.Spans[at.Roots[0]]
			if root.Node != "load/client" {
				t.Fatalf("trace %v root on %q, want load/client", at.TraceID, root.Node)
			}
		}
	}
	if full == 0 {
		nodes := map[string]bool{}
		for _, at := range asm {
			nodes[strings.Join(at.Nodes, ",")] = true
		}
		t.Fatalf("no trace spans all three nodes (%s); saw node sets %v", want, nodes)
	}

	// The on-disk artifact holds every span the store collected and
	// reads back through the stock dtrace JSONL reader.
	f, err := os.Open(filepath.Join(outDir, TracesJSONLName))
	if err != nil {
		t.Fatal(err)
	}
	spans, err := dtrace.ReadSpansJSONL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != store.Len() {
		t.Fatalf("traces.jsonl has %d spans, store has %d", len(spans), store.Len())
	}
	back := dtrace.Assemble(spans)
	if len(back) != len(asm) {
		t.Fatalf("jsonl assembles to %d traces, store to %d", len(back), len(asm))
	}
}

// TestTraceStoreDedup feeds the same spans twice: the second pass adds
// nothing and the sink sees each span exactly once.
func TestTraceStoreDedup(t *testing.T) {
	var sunk []dtrace.Span
	ts := NewTraceStore(func(sp dtrace.Span) error {
		sunk = append(sunk, sp)
		return nil
	})
	spans := []dtrace.Span{
		{TraceID: 1, SpanID: 10, Node: "gateway/gw0", Name: "gateway"},
		{TraceID: 1, SpanID: 11, ParentID: 10, Node: "gateway/gw0", Name: "forward"},
		{TraceID: 2, SpanID: 20, Node: "backend/b0", Name: "serve"},
	}
	if added := ts.AddSpans(spans); added != 3 {
		t.Fatalf("first add: %d, want 3", added)
	}
	if added := ts.AddSpans(spans); added != 0 {
		t.Fatalf("re-add: %d, want 0", added)
	}
	if ts.Len() != 3 || len(sunk) != 3 {
		t.Fatalf("len=%d sunk=%d, want 3/3", ts.Len(), len(sunk))
	}
	if err := ts.SinkErr(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetTraceConfigDefaults checks the trace plane's knob defaults.
func TestFleetTraceConfigDefaults(t *testing.T) {
	cfg := Config{Trace: true, Nodes: []NodeConfig{{Role: "gateway", Addr: "x:1"}}}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.TraceClientEvery != 16 {
		t.Fatalf("TraceClientEvery=%d, want default 16", cfg.TraceClientEvery)
	}
	off := Config{Nodes: []NodeConfig{{Role: "gateway", Addr: "x:1"}}}
	if err := off.Validate(); err != nil {
		t.Fatal(err)
	}
	if off.Trace || off.TraceClientEvery != 0 {
		t.Fatalf("trace plane on by default: %+v", off)
	}
	bad := Config{TraceClientEvery: -1, Nodes: []NodeConfig{{Role: "gateway", Addr: "x:1"}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative trace_client_every validated")
	}
}
