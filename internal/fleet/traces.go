package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/dtrace"
)

// TracesJSONLName is the per-span trace artifact inside Config.OutDir:
// one dtrace.Span JSON object per line, every node's spans interleaved
// in scrape order. cmd/aontrace reads it back (-in) and joins spans into
// cross-node traces purely by trace ID.
const TracesJSONLName = "traces.jsonl"

// TraceStore is the fleet's cross-node span collector: every scrape of a
// node's GET /traces lands here, deduplicated by (trace ID, span ID) —
// the tail rings are cumulative, so consecutive scrapes mostly re-read
// spans the store already holds. New spans stream to the sink (the
// traces.jsonl writer) as they arrive, so a crashed campaign keeps its
// trace plane up to the last scrape.
type TraceStore struct {
	mu      sync.Mutex
	seen    map[[2]dtrace.ID]struct{}
	spans   []dtrace.Span
	sink    func(dtrace.Span) error
	sinkErr error
}

// NewTraceStore builds a store; sink (may be nil) receives each new span
// exactly once, in arrival order.
func NewTraceStore(sink func(dtrace.Span) error) *TraceStore {
	return &TraceStore{seen: map[[2]dtrace.ID]struct{}{}, sink: sink}
}

// AddSpans folds a batch of spans in, returning how many were new.
func (ts *TraceStore) AddSpans(spans []dtrace.Span) int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	added := 0
	for _, sp := range spans {
		key := [2]dtrace.ID{sp.TraceID, sp.SpanID}
		if _, dup := ts.seen[key]; dup {
			continue
		}
		ts.seen[key] = struct{}{}
		ts.spans = append(ts.spans, sp)
		added++
		if ts.sink != nil && ts.sinkErr == nil {
			ts.sinkErr = ts.sink(sp)
		}
	}
	return added
}

// Spans returns a copy of every collected span in arrival order.
func (ts *TraceStore) Spans() []dtrace.Span {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]dtrace.Span, len(ts.spans))
	copy(out, ts.spans)
	return out
}

// Len is the number of distinct spans collected.
func (ts *TraceStore) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.spans)
}

// Assemble joins the collected spans into cross-node traces.
func (ts *TraceStore) Assemble() []*dtrace.AssembledTrace {
	return dtrace.Assemble(ts.Spans())
}

// SinkErr reports the first sink failure (the campaign should stop
// rather than silently lose its trace artifact).
func (ts *TraceStore) SinkErr() error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.sinkErr
}

// TraceWriter persists spans to <outDir>/traces.jsonl, flushed per span
// — same crash-safety contract as SessionWriter.
type TraceWriter struct {
	f    *os.File
	w    *bufio.Writer
	path string
	rows int
}

// NewTraceWriter creates (truncating) <outDir>/traces.jsonl.
func NewTraceWriter(outDir string) (*TraceWriter, error) {
	path := filepath.Join(outDir, TracesJSONLName)
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: traces jsonl: %w", err)
	}
	return &TraceWriter{f: f, w: bufio.NewWriter(f), path: path}, nil
}

// Path is the JSONL file's location.
func (tw *TraceWriter) Path() string { return tw.path }

// Rows is the number of spans written so far.
func (tw *TraceWriter) Rows() int { return tw.rows }

// Write appends one span as a JSON line and flushes it.
func (tw *TraceWriter) Write(sp dtrace.Span) error {
	b, err := json.Marshal(sp)
	if err != nil {
		return fmt.Errorf("fleet: traces jsonl: %w", err)
	}
	if _, err := tw.w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("fleet: traces jsonl: %w", err)
	}
	if err := tw.w.Flush(); err != nil {
		return fmt.Errorf("fleet: traces jsonl: %w", err)
	}
	tw.rows++
	return nil
}

// Close flushes and closes the JSONL file. Idempotent.
func (tw *TraceWriter) Close() error {
	if tw.f == nil {
		return nil
	}
	err := tw.w.Flush()
	if cerr := tw.f.Close(); err == nil {
		err = cerr
	}
	tw.f = nil
	return err
}
