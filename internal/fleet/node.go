package fleet

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// Node is one fleet member: either a process the coordinator launched
// (cmd set) or a running instance it attached to by address (cmd nil).
type Node struct {
	Role     string
	ID       string
	Addr     string
	Endpoint string // backend only: order | error
	Attach   bool
	Flags    []string

	cmd     *exec.Cmd
	logFile *os.File
	logPath string
	waitCh  chan error

	// ExitErr is the collected exit status after stop: nil for a clean
	// exit (or an attached/never-launched node), non-nil otherwise.
	ExitErr error
}

// Key is the node's session identity: role/id, the cross-node sample key.
func (n *Node) Key() string { return n.Role + "/" + n.ID }

// roleBinaries maps roles to the commands that implement them.
var roleBinaries = map[string]string{
	RoleBackend: "aonback",
	RoleGateway: "aongate",
	RoleLoad:    "aonload",
}

// binary resolves the node's executable: an absolute/relative path under
// binDir when set, else a bare name for PATH lookup.
func (n *Node) binary(binDir string) string {
	name := roleBinaries[n.Role]
	if binDir == "" {
		return name
	}
	p := filepath.Join(binDir, name)
	if !filepath.IsAbs(p) && !strings.ContainsRune(p, os.PathSeparator) {
		// Join cleans "./aonback" to "aonback"; keep the ./ so exec runs
		// the binDir copy instead of falling back to a PATH lookup.
		p = "." + string(os.PathSeparator) + p
	}
	return p
}

// launch starts the node's process with stdout+stderr captured to
// <outDir>/<role>-<id>.log. args are the coordinator-built flags;
// n.Flags append after them so the config can override.
func (n *Node) launch(binDir, outDir string, args []string) error {
	if n.Attach {
		return nil
	}
	logPath := filepath.Join(outDir, sanitize(n.Role+"-"+n.ID)+".log")
	lf, err := os.Create(logPath)
	if err != nil {
		return fmt.Errorf("fleet: %s: log: %w", n.Key(), err)
	}
	cmd := exec.Command(n.binary(binDir), append(append([]string{}, args...), n.Flags...)...)
	cmd.Stdout = lf
	cmd.Stderr = lf
	if err := cmd.Start(); err != nil {
		lf.Close()
		os.Remove(logPath)
		return fmt.Errorf("fleet: %s: start %s: %w", n.Key(), n.binary(binDir), err)
	}
	n.cmd = cmd
	n.logFile = lf
	n.logPath = logPath
	n.waitCh = make(chan error, 1)
	go func() { n.waitCh <- cmd.Wait() }()
	return nil
}

// exited reports whether a launched process has already terminated (its
// exit error is then recorded). Attached nodes never report exited.
func (n *Node) exited() bool {
	if n.cmd == nil {
		return false
	}
	select {
	case err := <-n.waitCh:
		n.ExitErr = err
		n.waitCh <- err // keep it readable for stop
		return true
	default:
		return false
	}
}

// stop terminates a launched node: SIGTERM (the graceful path every
// command handles — aongate drains, aonback/aonload print their final
// report), escalating to SIGKILL after grace, and collects the exit
// status into ExitErr. Attached nodes are left running — the coordinator
// only ever joins them. Idempotent.
func (n *Node) stop(grace time.Duration) {
	if n.cmd == nil {
		return
	}
	defer func() {
		if n.logFile != nil {
			n.logFile.Close()
			n.logFile = nil
		}
		n.cmd = nil
	}()
	// Already exited (crash or natural completion): just collect.
	select {
	case err := <-n.waitCh:
		n.ExitErr = err
		return
	default:
	}
	n.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case err := <-n.waitCh:
		n.ExitErr = err
	case <-time.After(grace):
		n.cmd.Process.Kill()
		err := <-n.waitCh
		if err == nil {
			err = fmt.Errorf("killed after %v grace", grace)
		}
		n.ExitErr = fmt.Errorf("fleet: %s: did not stop within %v: %w", n.Key(), grace, err)
	}
}

// logTail returns the last maxBytes of the node's captured log — the
// diagnostic attached to readiness and exit failures.
func (n *Node) logTail(maxBytes int64) string {
	if n.logPath == "" {
		return ""
	}
	b, err := os.ReadFile(n.logPath)
	if err != nil {
		return ""
	}
	if int64(len(b)) > maxBytes {
		b = b[int64(len(b))-maxBytes:]
	}
	return strings.TrimSpace(string(b))
}

// sanitize keeps node-derived file names path-safe.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}
