package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/session"
)

func sample(tms int64, msgs uint64) session.Sample {
	return session.Sample{
		TMS:        tms,
		WindowSec:  0.1,
		Messages:   msgs,
		MsgsPerSec: float64(msgs) / 0.1,
	}
}

// Two nodes whose wall clocks disagree by hours must still land on one
// aligned axis: each node's RelMS counts from its own first sample.
func TestMergerSkewedClocks(t *testing.T) {
	m := NewMerger(nil)
	// Gateway clock: ~epoch 1_000_000. Backend clock: three hours ahead.
	const gwEpoch, beEpoch = int64(1_000_000), int64(1_000_000 + 3*3600*1000)
	for i := int64(0); i < 5; i++ {
		m.Add("gateway/gw0", RoleGateway, sample(gwEpoch+i*100, 10))
		m.Add("backend/b0", RoleBackend, sample(beEpoch+i*100, 10))
	}
	merged := m.Merged()
	if len(merged) != 10 {
		t.Fatalf("merged %d samples, want 10", len(merged))
	}
	// Aligned: samples interleave by RelMS, not cluster by absolute clock.
	for i, ns := range merged {
		wantRel := int64(i/2) * 100
		if ns.RelMS != wantRel {
			t.Fatalf("sample %d: rel_ms %d, want %d (skew leaked into alignment)", i, ns.RelMS, wantRel)
		}
	}
	if e, _ := m.Epoch("gateway/gw0"); e != gwEpoch {
		t.Errorf("gateway epoch %d, want %d", e, gwEpoch)
	}
	if e, _ := m.Epoch("backend/b0"); e != beEpoch {
		t.Errorf("backend epoch %d, want %d", e, beEpoch)
	}
}

// A node that joins mid-session starts its own RelMS axis at zero; a
// node that leaves early simply stops contributing — neither distorts
// the other's timeline.
func TestMergerLateJoinEarlyLeave(t *testing.T) {
	m := NewMerger(nil)
	for i := int64(0); i < 10; i++ {
		m.Add("backend/early", RoleBackend, sample(5000+i*100, 1))
	}
	// Late joiner: first sample long after the early node started.
	for i := int64(0); i < 3; i++ {
		m.Add("backend/late", RoleBackend, sample(90_000+i*100, 1))
	}
	per := m.PerNode()
	if n := len(per["backend/early"]); n != 10 {
		t.Fatalf("early node kept %d samples, want 10", n)
	}
	if n := len(per["backend/late"]); n != 3 {
		t.Fatalf("late node kept %d samples, want 3", n)
	}
	if e, ok := m.Epoch("backend/late"); !ok || e != 90_000 {
		t.Fatalf("late epoch %d (ok=%v), want 90000", e, ok)
	}
	// The late joiner's first sample sits at RelMS 0 like everyone else's.
	for _, ns := range m.Merged() {
		if ns.Node == "backend/late" && ns.TMS == 90_000 && ns.RelMS != 0 {
			t.Fatalf("late joiner first sample rel_ms %d, want 0", ns.RelMS)
		}
	}
	if got := m.Nodes(); !reflect.DeepEqual(got, []string{"backend/early", "backend/late"}) {
		t.Fatalf("nodes %v", got)
	}
}

// Re-scraping a gateway's timeline ring re-reads old samples; the
// merger must accept each (node, TMS) once and call the sink once.
func TestMergerDuplicateSuppression(t *testing.T) {
	var sunk []NodeSample
	m := NewMerger(func(ns NodeSample) error {
		sunk = append(sunk, ns)
		return nil
	})
	s := sample(1000, 7)
	if !m.Add("gateway/gw0", RoleGateway, s) {
		t.Fatal("first add rejected")
	}
	for i := 0; i < 3; i++ {
		if m.Add("gateway/gw0", RoleGateway, s) {
			t.Fatal("duplicate (node, TMS) accepted")
		}
	}
	// Same TMS from a different node is a distinct sample.
	if !m.Add("gateway/gw1", RoleGateway, s) {
		t.Fatal("same TMS on another node rejected")
	}
	if m.Len() != 2 || len(sunk) != 2 {
		t.Fatalf("len %d, sink calls %d, want 2 and 2", m.Len(), len(sunk))
	}
}

// The merged session must survive a disk round trip bit-for-bit, and
// the writer must be safe as a sink under concurrent scraping (-race
// covers the interleaving).
func TestJSONLRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := NewSessionWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMerger(w.Write)

	const nodes, perNode = 4, 25
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			key := fmt.Sprintf("backend/b%d", n)
			for i := int64(0); i < perNode; i++ {
				s := sample(int64(n)*1_000_000+i*100, uint64(n*100+int(i)))
				m.Add(key, RoleBackend, s)
				m.Add(key, RoleBackend, s) // concurrent duplicate, must be dropped
			}
		}(n)
	}
	wg.Wait()
	if err := m.SinkErr(); err != nil {
		t.Fatalf("sink: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	back, err := ReadJSONL(filepath.Join(dir, JSONLName))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != nodes*perNode {
		t.Fatalf("read %d samples back, want %d", len(back), nodes*perNode)
	}
	// The file holds arrival order; compare as sets keyed by (node, TMS)
	// and require full struct equality per sample.
	want := map[string]NodeSample{}
	for _, ns := range m.Merged() {
		want[ns.Node+"@"+fmt.Sprint(ns.TMS)] = ns
	}
	for _, ns := range back {
		ref, ok := want[ns.Node+"@"+fmt.Sprint(ns.TMS)]
		if !ok {
			t.Fatalf("read back unknown sample %s@%d", ns.Node, ns.TMS)
		}
		if !reflect.DeepEqual(ns, ref) {
			t.Fatalf("round trip mutated sample %s@%d:\n got %+v\nwant %+v", ns.Node, ns.TMS, ns, ref)
		}
	}
}

// The merged CSV prefixes node/role/rel_ms columns but stays readable
// by the stock session.ReadCSV parser (header-name column resolution).
func TestMergedCSVReadableBySessionReader(t *testing.T) {
	dir := t.TempDir()
	m := NewMerger(nil)
	for i := int64(0); i < 6; i++ {
		m.Add("gateway/gw0", RoleGateway, sample(1000+i*100, 5))
		m.Add("backend/b0", RoleBackend, sample(8_000_000+i*100, 5))
	}
	if err := WriteCSVs(dir, m); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, MergedCSVName))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := session.ReadCSV(f)
	if err != nil {
		t.Fatalf("session.ReadCSV on merged CSV: %v", err)
	}
	if len(rows) != 12 {
		t.Fatalf("parsed %d rows, want 12", len(rows))
	}
	var msgs uint64
	for _, r := range rows {
		msgs += r.Messages
	}
	if msgs != 60 {
		t.Fatalf("messages sum %d, want 60", msgs)
	}
}
