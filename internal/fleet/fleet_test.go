package fleet

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/gateway"
	"repro/internal/session"
	"repro/internal/upstream"
	"repro/internal/workload"
)

func TestConfigValidateDefaults(t *testing.T) {
	cfg := Config{Nodes: []NodeConfig{
		{Role: "backend", Addr: "127.0.0.1:9081"},
		{Role: "gateway", Addr: "127.0.0.1:8080"},
	}}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.OutDir != "fleet-out" || cfg.ScrapeIntervalMS != 200 || cfg.Sweep.Messages != 1000 || cfg.Sweep.UseCase != "FR" {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.Nodes[0].Endpoint != "order" || cfg.Nodes[0].ID != "backend0" {
		t.Fatalf("node defaults not applied: %+v", cfg.Nodes[0])
	}

	for _, bad := range []Config{
		{},
		{Nodes: []NodeConfig{{Role: "backend", Addr: "x:1"}}},                                                    // no gateway
		{Nodes: []NodeConfig{{Role: "gateway"}}},                                                                 // no addr
		{Nodes: []NodeConfig{{Role: "widget", Addr: "x:1"}}},                                                     // bad role
		{Nodes: []NodeConfig{{Role: "backend", Addr: "x:1", Endpoint: "cache"}, {Role: "gateway", Addr: "x:2"}}}, // bad endpoint
		{Nodes: []NodeConfig{{Role: "gateway", Addr: "x:1"}}, // sweep and campaign both set
			Sweep:    SweepConfig{Conns: []int{1}},
			Campaign: &campaign.Spec{Phases: []campaign.Phase{{DurationMS: 100, Conns: 1}}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("config %+v validated, want error", bad)
		}
	}

	// A campaign without a sweep validates; the embedded spec is only
	// checked at RunCampaign time (after backend injection), so even a
	// deliberately broken one passes here.
	withCampaign := Config{
		Nodes:    []NodeConfig{{Role: "gateway", Addr: "x:1"}},
		Campaign: &campaign.Spec{Phases: []campaign.Phase{{Shape: "sawtooth"}}},
	}
	if err := withCampaign.Validate(); err != nil {
		t.Fatalf("campaign-only config rejected: %v", err)
	}
}

func TestConfigExpandReplicas(t *testing.T) {
	cfg := Config{Nodes: []NodeConfig{
		{Role: "backend", ID: "be", Addr: "127.0.0.1:9081", Count: 3},
		{Role: "gateway", Addr: "127.0.0.1:8080"},
	}}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	nodes, err := cfg.expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 4 {
		t.Fatalf("expanded to %d nodes, want 4", len(nodes))
	}
	for i, want := range []struct{ id, addr string }{
		{"be-0", "127.0.0.1:9081"}, {"be-1", "127.0.0.1:9082"}, {"be-2", "127.0.0.1:9083"},
	} {
		if nodes[i].ID != want.id || nodes[i].Addr != want.addr {
			t.Fatalf("replica %d = %s@%s, want %s@%s", i, nodes[i].ID, nodes[i].Addr, want.id, want.addr)
		}
	}
}

// End-to-end attach-mode campaign on loopback: a real gateway (with a
// live sampling session) forwarding to two real backends, all running
// in-process, joined by the coordinator purely through their HTTP stats
// surfaces — then a sweep, and every artifact checked on disk.
func TestFleetAttachCampaign(t *testing.T) {
	t.Setenv(gateway.ForceRuntimeOnlyEnv, "1")

	order, err := upstream.StartBackend("127.0.0.1:0", upstream.BackendConfig{Name: "order"})
	if err != nil {
		t.Fatal(err)
	}
	defer order.Close()
	errBack, err := upstream.StartBackend("127.0.0.1:0", upstream.BackendConfig{Name: "error"})
	if err != nil {
		t.Fatal(err)
	}
	defer errBack.Close()

	srv, err := gateway.New(gateway.Config{
		UseCase:        workload.FR,
		Workers:        2,
		Timeline:       true,
		SampleInterval: 10 * time.Millisecond,
		Upstream:       upstream.Config{Order: order.Addr().String(), Error: errBack.Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	outDir := t.TempDir()
	cfg := &Config{
		OutDir:           outDir,
		ScrapeIntervalMS: 20,
		ReadyTimeoutMS:   5000,
		Nodes: []NodeConfig{
			{Role: RoleBackend, ID: "b-order", Addr: order.Addr().String(), Endpoint: "order", Attach: true},
			{Role: RoleBackend, ID: "b-error", Addr: errBack.Addr().String(), Endpoint: "error", Attach: true},
			{Role: RoleGateway, ID: "gw0", Addr: srv.Addr().String(), Attach: true},
		},
		Sweep: SweepConfig{Conns: []int{1, 2}, Messages: 200},
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	co.Logf = t.Logf
	if err := co.Start(); err != nil {
		t.Fatal(err)
	}
	defer co.Shutdown()

	if err := co.RunSweep(); err != nil {
		t.Fatal(err)
	}
	report, err := co.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Every node contributed to the merged session.
	wantNodes := []string{"backend/b-error", "backend/b-order", "gateway/gw0"}
	if got := co.Merger().Nodes(); strings.Join(got, ",") != strings.Join(wantNodes, ",") {
		t.Fatalf("session nodes %v, want %v", got, wantNodes)
	}

	// The on-disk JSONL covers the same session.
	back, err := ReadJSONL(filepath.Join(outDir, JSONLName))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != co.Merger().Len() {
		t.Fatalf("jsonl has %d samples, merger has %d", len(back), co.Merger().Len())
	}
	seen := map[string]bool{}
	for _, ns := range back {
		seen[ns.Node] = true
	}
	for _, n := range wantNodes {
		if !seen[n] {
			t.Fatalf("jsonl missing node %s", n)
		}
	}

	// The merged CSV parses with the stock session reader.
	f, err := os.Open(filepath.Join(outDir, MergedCSVName))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := session.ReadCSV(f)
	f.Close()
	if err != nil {
		t.Fatalf("merged csv: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("merged csv is empty")
	}

	// Per-node CSVs exist for all three nodes.
	for _, n := range wantNodes {
		p := filepath.Join(outDir, "session-"+sanitize(n)+".csv")
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Fatalf("per-node csv %s missing or empty (err=%v)", p, err)
		}
	}

	// The combined report carries both sweep points, the per-node view,
	// and the fleet total; gateway throughput reached the client.
	for _, want := range []string{"conns", "gateway/gw0", "backend/b-order", "fleet-total(gateways)"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	if len(co.points) != 2 {
		t.Fatalf("%d sweep points, want 2", len(co.points))
	}
	for _, p := range co.points {
		if p.Client.OK == 0 {
			t.Fatalf("point %d conns: no successful messages: %+v", p.Conns, p.Client)
		}
	}
	if st, err := os.Stat(filepath.Join(outDir, ReportName)); err != nil || st.Size() == 0 {
		t.Fatalf("report file missing or empty (err=%v)", err)
	}
}

// TestFleetScenarioCampaign runs a topology whose config carries a
// scenario campaign instead of a sweep: the coordinator injects the
// attached gateway and backend addresses into the spec, the fault step
// lands on the live backend's /fault endpoint, and the per-phase report
// artifacts land next to the fleet session.
func TestFleetScenarioCampaign(t *testing.T) {
	t.Setenv(gateway.ForceRuntimeOnlyEnv, "1")

	order, err := upstream.StartBackend("127.0.0.1:0", upstream.BackendConfig{Name: "order"})
	if err != nil {
		t.Fatal(err)
	}
	defer order.Close()

	srv, err := gateway.New(gateway.Config{
		UseCase:    workload.FR,
		Workers:    2,
		TraceEvery: 1,
		Upstream:   upstream.Config{Order: order.Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	one := 1.0
	outDir := t.TempDir()
	cfg := &Config{
		OutDir:           outDir,
		ScrapeIntervalMS: 20,
		Nodes: []NodeConfig{
			{Role: RoleBackend, ID: "b-order", Addr: order.Addr().String(), Endpoint: "order", Attach: true},
			{Role: RoleGateway, ID: "gw0", Addr: srv.Addr().String(), Attach: true},
		},
		Campaign: &campaign.Spec{
			Name:             "fleet-e2e",
			SampleIntervalMS: 50,
			TimeoutMS:        3000,
			Phases: []campaign.Phase{
				{Name: "steady", Shape: campaign.ShapeConstant, DurationMS: 300, Conns: 2},
				{Name: "storm", Shape: campaign.ShapeRamp, DurationMS: 400, Conns: 1, ConnsTo: 3,
					Faults: []campaign.FaultStep{
						{AtMS: 50, Backend: 0, Fault: upstream.FaultSpec{ErrorRate: &one}},
						{AtMS: 250, Backend: 0, Fault: upstream.FaultSpec{Clear: true}},
					}},
			},
		},
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	co.Logf = t.Logf
	if err := co.Start(); err != nil {
		t.Fatal(err)
	}
	defer co.Shutdown()

	if err := co.RunCampaign(); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := co.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	res := co.CampaignResult()
	if res == nil || len(res.Phases) != 2 {
		t.Fatalf("campaign result missing or wrong: %+v", res)
	}
	// The spec's backends list was filled from the topology, so the
	// fault storm reached the live backend.
	if len(cfg.Campaign.Backends) != 1 || cfg.Campaign.Backends[0] != order.Addr().String() {
		t.Fatalf("backends not injected from topology: %v", cfg.Campaign.Backends)
	}
	if len(res.Faults) != 2 || res.Faults[0].Err != "" || res.Faults[0].State == nil || !res.Faults[0].State.Active {
		t.Fatalf("fault storm not acknowledged: %+v", res.Faults)
	}
	if res.Phases[0].OK == 0 {
		t.Fatalf("steady phase did no work: %+v", res.Phases[0])
	}

	// Artifacts: campaign report + result beside the fleet session, and
	// the runner's phase-tagged session under the campaign subdir.
	for _, name := range []string{CampaignReportName, CampaignResultName,
		filepath.Join(CampaignDirName, "session.csv"), filepath.Join(CampaignDirName, "session.jsonl")} {
		p := filepath.Join(outDir, name)
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Fatalf("campaign artifact %s missing or empty (err=%v)", p, err)
		}
	}
	report := co.CampaignReport()
	for _, want := range []string{"steady", "storm", "fault log"} {
		if !strings.Contains(report, want) {
			t.Fatalf("campaign report missing %q:\n%s", want, report)
		}
	}
	// The fleet's own cross-node session ran alongside the campaign.
	if co.Merger().Len() == 0 {
		t.Fatal("fleet session recorded no samples during the campaign")
	}
}
