package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/campaign"
)

// Campaign artifact names under cfg.OutDir. The runner's own session
// JSONL/CSV land in the CampaignDirName subdirectory, keeping the
// campaign's phase-tagged timeline separate from the fleet's merged
// cross-node session (both run concurrently).
const (
	CampaignDirName    = "campaign"
	CampaignReportName = "campaign-report.txt"
	CampaignResultName = "campaign-result.json"
)

// RunCampaign drives the config's scenario campaign against the fleet's
// first gateway: the spec's addr is the launched (or attached) gateway,
// and an empty backends list is filled with the topology's backend
// addresses so fault steps land on their live POST /fault endpoints.
// The cross-node scrape keeps running throughout, so the merged fleet
// session records every node's view of the same phases the campaign
// tags in its own timeline.
func (c *Coordinator) RunCampaign() error {
	spec := c.cfg.Campaign
	if spec == nil {
		return fmt.Errorf("fleet: config has no campaign")
	}
	gw := c.byRole(RoleGateway)[0]
	if len(spec.Backends) == 0 {
		for _, b := range c.byRole(RoleBackend) {
			spec.Backends = append(spec.Backends, dialable(b.Addr))
		}
	}
	if c.cfg.Trace && spec.TraceEvery == 0 {
		// The fleet's trace plane is on: make the campaign originate
		// client trace IDs at the fleet's configured cadence.
		spec.TraceEvery = c.cfg.TraceClientEvery
	}
	if err := spec.Validate(); err != nil {
		return err
	}

	res, err := campaign.Run(spec, campaign.Options{
		Addr:   dialable(gw.Addr),
		OutDir: filepath.Join(c.cfg.OutDir, CampaignDirName),
		Logf:   c.Logf,
	})
	if err != nil {
		return err
	}
	c.campaignRes = res

	report := campaign.FormatReport(res)
	if err := os.WriteFile(filepath.Join(c.cfg.OutDir, CampaignReportName), []byte(report), 0o644); err != nil {
		return fmt.Errorf("fleet: campaign report: %w", err)
	}
	resJSON, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: campaign result: %w", err)
	}
	if err := os.WriteFile(filepath.Join(c.cfg.OutDir, CampaignResultName), append(resJSON, '\n'), 0o644); err != nil {
		return fmt.Errorf("fleet: campaign result: %w", err)
	}
	c.Logf("campaign %s done: %d phases, %d fault steps, %d samples → %s",
		res.Name, len(res.Phases), len(res.Faults), res.Samples,
		filepath.Join(c.cfg.OutDir, CampaignReportName))
	return nil
}

// CampaignResult returns the scenario campaign's result (nil before
// RunCampaign completes).
func (c *Coordinator) CampaignResult() *campaign.Result { return c.campaignRes }

// CampaignReport renders the scenario campaign's formatted report, or
// "" when no campaign has run.
func (c *Coordinator) CampaignReport() string {
	if c.campaignRes == nil {
		return ""
	}
	return campaign.FormatReport(c.campaignRes)
}
