package fleet

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/gateway"
	"repro/internal/workload"
)

// Coordinator owns one fleet campaign: launch (or attach to) the
// topology, keep a cross-node sampling session running, drive the sweep,
// and tear everything down with exit-status collection.
type Coordinator struct {
	cfg   *Config
	nodes []*Node

	merger  *Merger
	writer  *SessionWriter
	scraper *scraper

	// traces and traceWriter are the fleet trace plane (nil unless
	// Config.Trace): cross-node span store + traces.jsonl sink.
	traces      *TraceStore
	traceWriter *TraceWriter

	scrapeStop chan struct{}
	scrapeDone chan struct{}

	points []PointReport

	campaignRes *campaign.Result

	// Logf receives progress lines (default os.Stderr).
	Logf func(format string, args ...any)
}

// New validates and expands the topology. Nothing is launched yet.
func New(cfg *Config) (*Coordinator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nodes, err := cfg.expand()
	if err != nil {
		return nil, err
	}
	return &Coordinator{
		cfg:   cfg,
		nodes: nodes,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "aonfleet: "+format+"\n", args...)
		},
	}, nil
}

// Nodes exposes the expanded topology (ordered backends, gateways, load).
func (c *Coordinator) Nodes() []*Node { return c.nodes }

// Merger exposes the live merged session (nil before Start).
func (c *Coordinator) Merger() *Merger { return c.merger }

// byRole returns the expanded nodes with the given role, in config order.
func (c *Coordinator) byRole(role string) []*Node {
	var out []*Node
	for _, n := range c.nodes {
		if n.Role == role {
			out = append(out, n)
		}
	}
	return out
}

// scrapable lists the nodes with a stats surface.
func (c *Coordinator) scrapable() []*Node {
	var out []*Node
	for _, n := range c.nodes {
		if n.Role != RoleLoad {
			out = append(out, n)
		}
	}
	return out
}

// dialable rewrites a listen address ("" or ":8080" host parts) into one
// a client can connect to on this machine.
func dialable(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// Start brings the fleet up in dependency order — backends, then
// gateways — with a readiness probe against each node's /stats before
// the next tier launches, and starts the cross-node scrape loop feeding
// the merged on-disk session.
func (c *Coordinator) Start() error {
	if err := os.MkdirAll(c.cfg.OutDir, 0o755); err != nil {
		return fmt.Errorf("fleet: out dir: %w", err)
	}
	writer, err := NewSessionWriter(c.cfg.OutDir)
	if err != nil {
		return err
	}
	c.writer = writer
	c.merger = NewMerger(writer.Write)
	c.scraper = newScraper(c.merger, c.cfg.ScrapeInterval()*4)
	if c.cfg.Trace {
		tw, err := NewTraceWriter(c.cfg.OutDir)
		if err != nil {
			return err
		}
		c.traceWriter = tw
		c.traces = NewTraceStore(tw.Write)
		c.scraper.traces = c.traces
	}

	for _, n := range c.byRole(RoleBackend) {
		args := []string{"-addr", n.Addr, "-name", n.Endpoint}
		if c.cfg.Trace {
			args = append(args, "-trace-node", n.Key())
		}
		if err := c.bringUp(n, args); err != nil {
			return err
		}
	}
	orderAddr, errorAddr := c.backendAddrs()
	for _, n := range c.byRole(RoleGateway) {
		args := []string{"-addr", n.Addr, "-timeline"}
		if c.cfg.Trace {
			args = append(args, "-trace", "-trace-node", n.Key())
		}
		if orderAddr != "" {
			args = append(args, "-order", orderAddr)
		}
		if errorAddr != "" {
			args = append(args, "-error", errorAddr)
		}
		if err := c.bringUp(n, args); err != nil {
			return err
		}
	}

	c.scrapeStop = make(chan struct{})
	c.scrapeDone = make(chan struct{})
	go c.scrapeLoop()
	return nil
}

// backendAddrs picks the first order and first error backend for the
// gateways' forwarding flags.
func (c *Coordinator) backendAddrs() (order, errAddr string) {
	for _, n := range c.byRole(RoleBackend) {
		switch {
		case n.Endpoint == "order" && order == "":
			order = dialable(n.Addr)
		case n.Endpoint == "error" && errAddr == "":
			errAddr = dialable(n.Addr)
		}
	}
	return order, errAddr
}

// bringUp launches (unless attached) and readiness-probes one node.
func (c *Coordinator) bringUp(n *Node, args []string) error {
	if n.Attach {
		c.Logf("%s: attaching to %s", n.Key(), n.Addr)
	} else {
		if err := n.launch(c.cfg.BinDir, c.cfg.OutDir, args); err != nil {
			return err
		}
		c.Logf("%s: launched on %s (pid %d)", n.Key(), n.Addr, n.cmd.Process.Pid)
	}
	return c.waitReady(n)
}

// waitReady polls the node's /stats until it answers 200, the node's
// process dies (fail fast, with the log tail as diagnosis), or the
// configured timeout lapses.
func (c *Coordinator) waitReady(n *Node) error {
	deadline := time.Now().Add(c.cfg.ReadyTimeout())
	addr := dialable(n.Addr)
	for {
		if n.exited() {
			return fmt.Errorf("fleet: %s: exited during startup: %v\n--- log tail ---\n%s",
				n.Key(), n.ExitErr, n.logTail(2048))
		}
		var probe json.RawMessage
		if err := c.scraper.getJSON(addr, "/stats", &probe); err == nil {
			c.Logf("%s: ready", n.Key())
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet: %s: not ready on %s after %v\n--- log tail ---\n%s",
				n.Key(), addr, c.cfg.ReadyTimeout(), n.logTail(2048))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// scrapeLoop samples every stats-bearing node on the configured
// interval until stopped.
func (c *Coordinator) scrapeLoop() {
	defer close(c.scrapeDone)
	t := time.NewTicker(c.cfg.ScrapeInterval())
	defer t.Stop()
	for {
		select {
		case <-c.scrapeStop:
			return
		case <-t.C:
			c.scrapeOnce()
		}
	}
}

// scrapeOnce sweeps all nodes now — the loop's tick body, also called
// synchronously at sweep-point boundaries so windows close on fresh
// data. Scrape errors are logged, not fatal (liveness is owned by the
// readiness and exit checks).
func (c *Coordinator) scrapeOnce() {
	for _, err := range c.scraper.scrapeAll(c.scrapable()) {
		c.Logf("scrape: %v", err)
	}
}

// RunSweep drives one load point per configured connection count and
// cuts a per-node window from the merged session around each.
func (c *Coordinator) RunSweep() error {
	conns := c.cfg.Sweep.Conns
	if len(conns) == 0 {
		conns = []int{1}
	}
	gateways := c.byRole(RoleGateway)
	target := dialable(gateways[0].Addr)
	for _, cc := range conns {
		c.scrapeOnce()
		mark := c.merger.Len()
		c.Logf("sweep: %d conns, %d messages against %s", cc, c.cfg.Sweep.Messages, target)
		rep, err := c.runLoad(target, cc)
		if err != nil {
			return fmt.Errorf("fleet: load point %d conns: %w", cc, err)
		}
		// Let each node's own sampler tick past the load before the
		// window closes, so a short point still carries its trailing
		// samples (a gateway timeline samples on its own clock).
		time.Sleep(c.cfg.ScrapeInterval())
		c.scrapeOnce()
		snap, err := c.scraper.gatewaySnapshot(gateways[0])
		if err != nil {
			c.Logf("sweep: gateway snapshot: %v", err)
		}
		window := c.merger.Slice(mark, c.merger.Len())
		c.points = append(c.points, buildPoint(cc, rep, window, snap))
		if err := c.merger.SinkErr(); err != nil {
			return err
		}
	}
	return nil
}

// runLoad executes one load point: through a launched aonload process
// when the topology declares a load node (its -out report file is read
// back), in-process otherwise — attach-mode fleets need no local
// binaries at all.
func (c *Coordinator) runLoad(target string, conns int) (gateway.Report, error) {
	var loadNode *Node
	for _, n := range c.byRole(RoleLoad) {
		if !n.Attach {
			loadNode = n
			break
		}
	}
	sw := c.cfg.Sweep
	if loadNode == nil {
		uc, err := workload.ParseUseCase(sw.UseCase)
		if err != nil {
			return gateway.Report{}, err
		}
		lc := gateway.LoadConfig{
			Addr:     target,
			UseCase:  uc,
			Conns:    conns,
			Messages: sw.Messages,
			Size:     sw.SizeBytes,
		}
		if c.cfg.Trace {
			lc.TraceEvery = c.cfg.TraceClientEvery
			lc.TraceNode = "load/client"
		}
		rep, err := gateway.RunLoad(lc)
		if err == nil {
			c.foldClientSpans(rep)
		}
		return rep, err
	}
	outPath := filepath.Join(c.cfg.OutDir,
		fmt.Sprintf("load-%s-c%d.json", sanitize(loadNode.ID), conns))
	args := []string{
		"-addr", target,
		"-usecase", sw.UseCase,
		"-conns", strconv.Itoa(conns),
		"-n", strconv.Itoa(sw.Messages),
		"-out", outPath,
	}
	if sw.SizeBytes > 0 {
		args = append(args, "-size", strconv.Itoa(sw.SizeBytes))
	}
	if c.cfg.Trace {
		args = append(args, "-trace-client", strconv.Itoa(c.cfg.TraceClientEvery),
			"-trace-node", loadNode.Key())
	}
	args = append(args, loadNode.Flags...)
	logPath := filepath.Join(c.cfg.OutDir, sanitize(loadNode.Role+"-"+loadNode.ID)+".log")
	lf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return gateway.Report{}, err
	}
	defer lf.Close()
	loadNode.logPath = logPath
	cmd := exec.Command(loadNode.binary(c.cfg.BinDir), args...)
	cmd.Stdout = lf
	cmd.Stderr = lf
	if err := cmd.Run(); err != nil {
		return gateway.Report{}, fmt.Errorf("%s: %v\n--- log tail ---\n%s",
			loadNode.Key(), err, loadNode.logTail(2048))
	}
	b, err := os.ReadFile(outPath)
	if err != nil {
		return gateway.Report{}, fmt.Errorf("%s: report: %w", loadNode.Key(), err)
	}
	var rep gateway.Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return gateway.Report{}, fmt.Errorf("%s: report %s: %w", loadNode.Key(), outPath, err)
	}
	c.foldClientSpans(rep)
	return rep, nil
}

// foldClientSpans joins a load report's client-side spans into the
// fleet's trace store — the client vantage point completes the
// cross-node trace (the gateway and backend contribute theirs via the
// /traces scrape).
func (c *Coordinator) foldClientSpans(rep gateway.Report) {
	if c.traces == nil || len(rep.ClientSpans) == 0 {
		return
	}
	c.traces.AddSpans(rep.ClientSpans)
}

// Traces exposes the fleet's cross-node span store (nil unless
// Config.Trace).
func (c *Coordinator) Traces() *TraceStore { return c.traces }

// Finish stops the scrape loop, takes a final sample, renders every
// artifact (per-node CSVs, the merged CSV, the combined report), and
// returns the report text.
func (c *Coordinator) Finish() (string, error) {
	if c.scrapeStop != nil {
		close(c.scrapeStop)
		<-c.scrapeDone
		c.scrapeStop = nil
	}
	c.scrapeOnce()
	if err := c.merger.SinkErr(); err != nil {
		return "", err
	}
	if c.traces != nil {
		if err := c.traces.SinkErr(); err != nil {
			return "", err
		}
		asm := c.traces.Assemble()
		cross := 0
		for _, t := range asm {
			if len(t.Nodes) > 1 {
				cross++
			}
		}
		c.Logf("traces: %d spans, %d assembled traces (%d cross-node) → %s",
			c.traces.Len(), len(asm), cross, filepath.Join(c.cfg.OutDir, TracesJSONLName))
	}
	if err := WriteCSVs(c.cfg.OutDir, c.merger); err != nil {
		return "", err
	}
	report := FormatFleetReport(c.points, c.merger)
	path := filepath.Join(c.cfg.OutDir, ReportName)
	if err := os.WriteFile(path, []byte(report), 0o644); err != nil {
		return "", fmt.Errorf("fleet: report: %w", err)
	}
	c.Logf("artifacts in %s: %s, %s, %s, per-node CSVs and logs",
		c.cfg.OutDir, JSONLName, MergedCSVName, ReportName)
	return report, nil
}

// Shutdown fans out the stop in reverse dependency order — gateways
// first (they drain in-flight forwards), then backends — and reports
// every non-clean exit as one error. Attached nodes are left running.
// Safe to call on a partially started fleet and after Finish.
func (c *Coordinator) Shutdown() error {
	if c.scrapeStop != nil {
		close(c.scrapeStop)
		<-c.scrapeDone
		c.scrapeStop = nil
	}
	order := append(c.byRole(RoleGateway), c.byRole(RoleBackend)...)
	for _, n := range order {
		n.stop(c.cfg.Grace())
	}
	if c.writer != nil {
		if err := c.writer.Close(); err != nil {
			c.Logf("session writer: %v", err)
		}
		c.writer = nil
	}
	if c.traceWriter != nil {
		if err := c.traceWriter.Close(); err != nil {
			c.Logf("trace writer: %v", err)
		}
		c.traceWriter = nil
	}
	var failed []string
	for _, n := range order {
		if n.ExitErr != nil {
			failed = append(failed, fmt.Sprintf("%s: %v", n.Key(), n.ExitErr))
		}
	}
	if len(failed) > 0 {
		sort.Strings(failed)
		return fmt.Errorf("fleet: %d node(s) exited uncleanly:\n  %s",
			len(failed), strings.Join(failed, "\n  "))
	}
	return nil
}
