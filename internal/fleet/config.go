// Package fleet is the coordinator behind cmd/aonfleet: it launches a
// topology of aongate/aonback/aonload processes (or attaches to already
// -running instances by their listen/stats addresses — no SSH, no agent),
// drives a sweep campaign against the gateway, and merges every node's
// self-reported observability (/stats, /timeline) into one cross-node
// sampling session persisted to disk as it is collected.
//
// The paper's scaling study compares one processing unit against two
// inside a single chassis; the ROADMAP pushes that question to fleet
// size. This package makes the multi-process half of that repeatable:
// the EXPERIMENTS.md two-machine recipe becomes one declarative config
// and one command, with ordered start (backends → gateway → load),
// readiness probes, per-node log capture, graceful fan-out shutdown with
// exit-status collection, and a merged Figure-5/6-style report at the
// end.
package fleet

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strconv"
	"time"

	"repro/internal/campaign"
)

// Node roles. Backends start first, then gateways, then load — the
// dependency order of the paper's client → device → endpoint chain.
const (
	RoleBackend = "backend"
	RoleGateway = "gateway"
	RoleLoad    = "load"
)

// NodeConfig is one topology entry in the declarative fleet config.
type NodeConfig struct {
	// Role is backend, gateway, or load.
	Role string `json:"role"`
	// ID names the node in logs, session keys, and reports. Default
	// role<index>; with Count > 1 each replica gets "-<i>" appended.
	ID string `json:"id,omitempty"`
	// Addr is the node's listen (and stats) address, host:port. Required
	// for backend and gateway nodes; load nodes have none.
	Addr string `json:"addr,omitempty"`
	// Endpoint is a backend's role in the gateway topology: "order" or
	// "error". The coordinator wires the gateway's -order/-error flags
	// from these. Default "order".
	Endpoint string `json:"endpoint,omitempty"`
	// Count expands this entry into Count replicas with consecutive
	// ports. 0 means 1.
	Count int `json:"count,omitempty"`
	// Attach joins an already-running instance at Addr instead of
	// launching a process: the coordinator only probes and scrapes it —
	// the SSH-free way to pull remote machines into one session.
	Attach bool `json:"attach,omitempty"`
	// Flags are extra command-line flags appended to the launch command
	// (ignored for attached nodes).
	Flags []string `json:"flags,omitempty"`
}

// SweepConfig drives the load campaign: one load point per connection
// count, each sending Messages messages.
type SweepConfig struct {
	// Conns lists the concurrency steps (e.g. [1, 2, 4, 8]) — the fleet
	// analogue of the paper's 1-unit→2-unit x axis.
	Conns []int `json:"conns"`
	// Messages per load point (default 1000).
	Messages int `json:"messages,omitempty"`
	// UseCase selects the pipeline (default FR).
	UseCase string `json:"usecase,omitempty"`
	// SizeBytes is the approximate POST body size (0 = the paper's 5 KB).
	SizeBytes int `json:"size_bytes,omitempty"`
}

// Config is the declarative fleet topology, loaded from JSON.
type Config struct {
	// OutDir receives every artifact: per-node logs, the merged JSONL
	// session, per-node and merged CSVs, and the campaign report.
	// Default "fleet-out".
	OutDir string `json:"out_dir,omitempty"`
	// BinDir holds the aonback/aongate/aonload binaries. Empty means
	// resolve from PATH.
	BinDir string `json:"bin_dir,omitempty"`
	// ScrapeIntervalMS is the cross-node sampling period (default 200).
	ScrapeIntervalMS int `json:"scrape_interval_ms,omitempty"`
	// ReadyTimeoutMS bounds each node's readiness probe (default 10000).
	ReadyTimeoutMS int `json:"ready_timeout_ms,omitempty"`
	// GraceMS is the per-node SIGTERM→SIGKILL escalation budget at
	// shutdown (default 10000).
	GraceMS int `json:"grace_ms,omitempty"`
	// Trace turns on the fleet's distributed-trace plane: launched
	// gateways get -trace (tail-based sampling + GET /traces), every
	// launched node gets -trace-node <role/id> so spans carry fleet
	// identities, the load driver originates a trace every
	// TraceClientEvery requests, and the scrape loop joins every node's
	// kept spans into <out_dir>/traces.jsonl for cmd/aontrace. Off by
	// default — the trace plane is opt-in per campaign.
	Trace bool `json:"trace,omitempty"`
	// TraceClientEvery originates a client-side trace every Nth request
	// per connection (default 16 when Trace is set; ignored otherwise).
	TraceClientEvery int `json:"trace_client_every,omitempty"`

	Nodes []NodeConfig `json:"nodes"`
	Sweep SweepConfig  `json:"sweep"`
	// Campaign embeds a scenario campaign spec (internal/campaign): the
	// fleet launches the topology, then drives the phased scenario
	// against its first gateway instead of the connection sweep. The
	// spec's addr and (when empty) backends list are filled from the
	// topology at run time. Mutually exclusive with sweep.conns.
	Campaign *campaign.Spec `json:"campaign,omitempty"`
}

// LoadFile reads and validates a fleet config.
func LoadFile(path string) (*Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: config: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(b, &cfg); err != nil {
		return nil, fmt.Errorf("fleet: config %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// Validate applies defaults and rejects impossible topologies.
func (c *Config) Validate() error {
	if c.OutDir == "" {
		c.OutDir = "fleet-out"
	}
	if c.ScrapeIntervalMS == 0 {
		c.ScrapeIntervalMS = 200
	}
	if c.ScrapeIntervalMS < 0 {
		return fmt.Errorf("fleet: scrape_interval_ms %d, want > 0", c.ScrapeIntervalMS)
	}
	if c.ReadyTimeoutMS <= 0 {
		c.ReadyTimeoutMS = 10000
	}
	if c.GraceMS <= 0 {
		c.GraceMS = 10000
	}
	if c.TraceClientEvery < 0 {
		return fmt.Errorf("fleet: trace_client_every %d, want >= 0", c.TraceClientEvery)
	}
	if c.Trace && c.TraceClientEvery == 0 {
		c.TraceClientEvery = 16
	}
	if c.Sweep.Messages <= 0 {
		c.Sweep.Messages = 1000
	}
	if c.Sweep.UseCase == "" {
		c.Sweep.UseCase = "FR"
	}
	if len(c.Nodes) == 0 {
		return fmt.Errorf("fleet: config has no nodes")
	}
	gateways := 0
	for i := range c.Nodes {
		n := &c.Nodes[i]
		switch n.Role {
		case RoleBackend:
			if n.Endpoint == "" {
				n.Endpoint = "order"
			}
			if n.Endpoint != "order" && n.Endpoint != "error" {
				return fmt.Errorf("fleet: node %d: endpoint %q, want order or error", i, n.Endpoint)
			}
		case RoleGateway:
			gateways++
		case RoleLoad:
		default:
			return fmt.Errorf("fleet: node %d: role %q, want backend, gateway, or load", i, n.Role)
		}
		if n.Role != RoleLoad && n.Addr == "" {
			return fmt.Errorf("fleet: node %d (%s): addr required", i, n.Role)
		}
		if n.Count < 0 {
			return fmt.Errorf("fleet: node %d: count %d, want >= 0", i, n.Count)
		}
		if n.Count > 1 && n.Role != RoleLoad {
			if _, _, err := net.SplitHostPort(n.Addr); err != nil {
				return fmt.Errorf("fleet: node %d: count %d needs a host:port addr: %v", i, n.Count, err)
			}
		}
		if n.ID == "" {
			n.ID = fmt.Sprintf("%s%d", n.Role, i)
		}
	}
	if gateways == 0 {
		return fmt.Errorf("fleet: topology has no gateway node")
	}
	if c.Campaign != nil && len(c.Sweep.Conns) > 0 {
		return fmt.Errorf("fleet: config sets both sweep.conns and campaign — pick one load driver")
	}
	// The campaign spec itself is validated in RunCampaign, after the
	// coordinator has injected the topology's gateway and backend
	// addresses (fault steps are checked against the backends that will
	// actually serve them).
	return nil
}

// ScrapeInterval returns the sampling period as a duration.
func (c *Config) ScrapeInterval() time.Duration {
	return time.Duration(c.ScrapeIntervalMS) * time.Millisecond
}

// ReadyTimeout returns the readiness-probe budget as a duration.
func (c *Config) ReadyTimeout() time.Duration {
	return time.Duration(c.ReadyTimeoutMS) * time.Millisecond
}

// Grace returns the shutdown escalation budget as a duration.
func (c *Config) Grace() time.Duration {
	return time.Duration(c.GraceMS) * time.Millisecond
}

// expand flattens Count replicas into individual nodes: replica i of a
// host:port entry listens on port+i and is named "<id>-<i>".
func (c *Config) expand() ([]*Node, error) {
	var out []*Node
	for i := range c.Nodes {
		nc := c.Nodes[i]
		count := nc.Count
		if count == 0 {
			count = 1
		}
		for r := 0; r < count; r++ {
			n := &Node{
				Role:     nc.Role,
				ID:       nc.ID,
				Addr:     nc.Addr,
				Endpoint: nc.Endpoint,
				Attach:   nc.Attach,
				Flags:    nc.Flags,
			}
			if count > 1 {
				n.ID = fmt.Sprintf("%s-%d", nc.ID, r)
				if nc.Addr != "" {
					host, portStr, err := net.SplitHostPort(nc.Addr)
					if err != nil {
						return nil, fmt.Errorf("fleet: node %s: %v", nc.ID, err)
					}
					port, err := strconv.Atoi(portStr)
					if err != nil {
						return nil, fmt.Errorf("fleet: node %s: bad port %q", nc.ID, portStr)
					}
					n.Addr = net.JoinHostPort(host, strconv.Itoa(port+r))
				}
			}
			out = append(out, n)
		}
	}
	return out, nil
}
