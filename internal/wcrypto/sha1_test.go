package wcrypto

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha1"
	"testing"
	"testing/quick"

	"repro/internal/perf/trace"
)

// Known-answer tests from FIPS 180-1.
func TestSHA1KnownAnswers(t *testing.T) {
	cases := map[string]string{
		"":    "da39a3ee5e6b4b0d3255bfef95601890afd80709",
		"abc": "a9993e364706816aba3e25717850c26c9cd0d89d",
		"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq": "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
	}
	for in, want := range cases {
		if got := HexSum1([]byte(in)); got != want {
			t.Errorf("SHA1(%q) = %s, want %s", in, got, want)
		}
	}
}

// Property: our implementation agrees with crypto/sha1 on arbitrary input.
func TestAgainstStdlib(t *testing.T) {
	check := func(data []byte) bool {
		want := sha1.Sum(data)
		got := Sum1(data)
		return bytes.Equal(got[:], want[:])
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: incremental writes produce the same digest as one-shot.
func TestIncrementalWrites(t *testing.T) {
	check := func(a, b, c []byte) bool {
		oneShot := Sum1(append(append(append([]byte{}, a...), b...), c...))
		d := New()
		d.Write(a)
		d.Write(b)
		d.Write(c)
		var inc [Size]byte
		copy(inc[:], d.Sum(nil))
		return inc == oneShot
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSumDoesNotMutateState(t *testing.T) {
	d := New()
	d.Write([]byte("hello"))
	s1 := d.Sum(nil)
	s2 := d.Sum(nil)
	if !bytes.Equal(s1, s2) {
		t.Fatal("Sum mutates state")
	}
	d.Write([]byte(" world"))
	want := Sum1([]byte("hello world"))
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Fatal("continued write broken after Sum")
	}
}

func TestHMACAgainstStdlib(t *testing.T) {
	check := func(key, data []byte) bool {
		mac := hmac.New(sha1.New, key)
		mac.Write(data)
		want := mac.Sum(nil)
		got := HMAC(key, data, nil, 0)
		return bytes.Equal(got[:], want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHMACLongKey(t *testing.T) {
	key := bytes.Repeat([]byte("k"), 200) // beyond BlockSize: pre-hashed
	mac := hmac.New(sha1.New, key)
	mac.Write([]byte("msg"))
	want := mac.Sum(nil)
	got := HMAC(key, []byte("msg"), nil, 0)
	if !bytes.Equal(got[:], want) {
		t.Fatal("long-key HMAC mismatch")
	}
}

func TestInstrumentationEmitsPerBlock(t *testing.T) {
	var one, four trace.Counting
	d1 := NewInstrumented(&one, 0x1000)
	d1.Write(make([]byte, 64))
	d1.Sum(nil)
	d4 := NewInstrumented(&four, 0x1000)
	d4.Write(make([]byte, 256))
	d4.Sum(nil)
	if one.Instr == 0 {
		t.Fatal("no ops emitted")
	}
	// Four data blocks vs one: roughly (4+1)/(1+1) more compression work.
	if four.Instr <= one.Instr {
		t.Fatalf("instruction stream does not scale: %d vs %d", one.Instr, four.Instr)
	}
	// The kernel must be ALU-dominated (the crypto workload profile).
	if one.Loads*10 > one.Instr {
		t.Fatalf("crypto kernel too load-heavy: %d loads of %d instr", one.Loads, one.Instr)
	}
}

func TestReset(t *testing.T) {
	d := New()
	d.Write([]byte("garbage"))
	d.Reset()
	d.Write([]byte("abc"))
	want := Sum1([]byte("abc"))
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Fatal("reset did not restore initial state")
	}
}
