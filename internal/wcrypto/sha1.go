// Package wcrypto implements the cryptographic workload kernel the
// paper's future work names ("crypto functions", Section 6): SHA-1 and
// HMAC-SHA1, written from scratch so the real compression-function
// control flow can be instrumented into a micro-op stream. Message
// authentication (WS-Security style) is the fifth use case of the XML
// server application: pure register-pressure ALU work with a small
// working set — the most CPU-bound point on the paper's spectrum, beyond
// even SV.
package wcrypto

import (
	"encoding/binary"
	"encoding/hex"

	"repro/internal/perf/trace"
)

// Size is the SHA-1 digest length in bytes.
const Size = 20

// BlockSize is the SHA-1 block length in bytes.
const BlockSize = 64

var (
	shaCode    = trace.NewCodeRegion(512)
	pcBlock    = shaCode.Site()
	pcRound    = shaCode.Site()
	pcPadCheck = shaCode.Site()
	pcHMACKey  = shaCode.Site()
)

// Digest is a SHA-1 hash state.
type Digest struct {
	h   [5]uint32
	len uint64
	buf [BlockSize]byte
	n   int

	em   trace.Emitter
	base uint64
}

// New returns an uninstrumented SHA-1 digest.
func New() *Digest { return NewInstrumented(trace.Nop{}, 0) }

// NewInstrumented returns a digest that emits the compression function's
// micro-op stream to em; base is the synthetic address of the input data.
func NewInstrumented(em trace.Emitter, base uint64) *Digest {
	d := &Digest{em: em, base: base}
	d.Reset()
	return d
}

// Reset reinitializes the hash state.
func (d *Digest) Reset() {
	d.h = [5]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}
	d.len = 0
	d.n = 0
}

// Write absorbs data (io.Writer-compatible signature).
func (d *Digest) Write(p []byte) (int, error) {
	n := len(p)
	d.len += uint64(n)
	off := 0
	if d.n > 0 {
		c := copy(d.buf[d.n:], p)
		d.n += c
		off += c
		if d.n == BlockSize {
			d.block(d.buf[:], d.base)
			d.n = 0
		}
	}
	for off+BlockSize <= len(p) {
		d.block(p[off:off+BlockSize], d.base+uint64(off))
		off += BlockSize
	}
	if off < len(p) {
		d.n = copy(d.buf[:], p[off:])
	}
	return n, nil
}

// Sum finalizes a copy of the state and returns the digest appended to in.
func (d *Digest) Sum(in []byte) []byte {
	dd := *d
	dd.pad()
	var out [Size]byte
	for i, v := range dd.h {
		binary.BigEndian.PutUint32(out[i*4:], v)
	}
	return append(in, out[:]...)
}

func (d *Digest) pad() {
	bits := d.len * 8
	d.em.Branch(pcPadCheck, d.n >= 56)
	var pad [BlockSize * 2]byte
	pad[0] = 0x80
	padLen := 56 - d.n
	if padLen <= 0 {
		padLen += BlockSize
	}
	msg := append(append([]byte{}, d.buf[:d.n]...), pad[:padLen]...)
	var lenb [8]byte
	binary.BigEndian.PutUint64(lenb[:], bits)
	msg = append(msg, lenb[:]...)
	for off := 0; off < len(msg); off += BlockSize {
		d.block(msg[off:off+BlockSize], d.base)
	}
	d.n = 0
}

// block runs the SHA-1 compression function on one 64-byte block,
// emitting its instruction stream: 16 word loads, the 64-entry message
// schedule, and 80 rounds of ~10 ALU operations with the round-type
// branches a compiled implementation retires.
func (d *Digest) block(p []byte, simAddr uint64) {
	var w [80]uint32
	for i := 0; i < 16; i++ {
		w[i] = binary.BigEndian.Uint32(p[i*4:])
	}
	d.em.Load(simAddr, 8) // 64 bytes of input
	d.em.ALU(16 * 2)      // byte-swaps
	for i := 16; i < 80; i++ {
		v := w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16]
		w[i] = v<<1 | v>>31
	}
	d.em.ALU(64 * 5) // message schedule

	a, b, c, dd, e := d.h[0], d.h[1], d.h[2], d.h[3], d.h[4]
	for i := 0; i < 80; i++ {
		var f, k uint32
		switch {
		case i < 20:
			f = (b & c) | (^b & dd)
			k = 0x5A827999
		case i < 40:
			f = b ^ c ^ dd
			k = 0x6ED9EBA1
		case i < 60:
			f = (b & c) | (b & dd) | (c & dd)
			k = 0x8F1BBCDC
		default:
			f = b ^ c ^ dd
			k = 0xCA62C1D6
		}
		t := (a<<5 | a>>27) + f + e + k + w[i]
		e, dd, c, b, a = dd, c, (b<<30 | b>>2), a, t
		d.em.ALU(10)
		if i%20 == 19 {
			d.em.Branch(pcRound, i != 79) // round-group boundary
		}
	}
	d.h[0] += a
	d.h[1] += b
	d.h[2] += c
	d.h[3] += dd
	d.h[4] += e
	d.em.ALU(5)
	d.em.Branch(pcBlock, true)
}

// Sum1 computes the SHA-1 of data in one call.
func Sum1(data []byte) [Size]byte {
	d := New()
	d.Write(data)
	var out [Size]byte
	copy(out[:], d.Sum(nil))
	return out
}

// HexSum1 returns the hex-encoded SHA-1 of data.
func HexSum1(data []byte) string {
	s := Sum1(data)
	return hex.EncodeToString(s[:])
}

// HMAC computes HMAC-SHA1(key, data), optionally instrumented.
func HMAC(key, data []byte, em trace.Emitter, base uint64) [Size]byte {
	if em == nil {
		em = trace.Nop{}
	}
	var k [BlockSize]byte
	em.Branch(pcHMACKey, len(key) > BlockSize)
	if len(key) > BlockSize {
		sum := Sum1(key)
		copy(k[:], sum[:])
	} else {
		copy(k[:], key)
	}
	var ipad, opad [BlockSize]byte
	for i := range k {
		ipad[i] = k[i] ^ 0x36
		opad[i] = k[i] ^ 0x5c
	}
	em.ALU(BlockSize / 4)

	inner := NewInstrumented(em, base)
	inner.Write(ipad[:])
	inner.Write(data)
	innerSum := inner.Sum(nil)

	outer := NewInstrumented(em, base)
	outer.Write(opad[:])
	outer.Write(innerSum)
	var out [Size]byte
	copy(out[:], outer.Sum(nil))
	return out
}
