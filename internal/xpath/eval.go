package xpath

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/perf/trace"
	"repro/internal/xmldom"
)

// Evaluator runs compiled expressions against a document, optionally
// emitting the micro-op stream of the traversal: every node visited costs
// pointer-chasing loads on the node's simulated address, every name test a
// short compare with a data-dependent branch. This is the computation at
// the heart of the paper's CBR use case.
type Evaluator struct {
	em trace.Emitter
}

var (
	evalCode    = trace.NewCodeRegion(2048)
	pcVisit     = evalCode.Site()
	pcNameTest  = evalCode.Site()
	pcKindTest  = evalCode.Site()
	pcPredTest  = evalCode.Site()
	pcCmpBranch = evalCode.Site()
	pcFuncDisp  = evalCode.Site()
)

// NewEvaluator returns an evaluator emitting to em (trace.Nop{} for plain
// library use).
func NewEvaluator(em trace.Emitter) *Evaluator {
	if em == nil {
		em = trace.Nop{}
	}
	return &Evaluator{em: em}
}

// Eval evaluates a compiled expression with ctx as the context node.
func (ev *Evaluator) Eval(e *Expr, ctx *xmldom.Node) (Value, error) {
	return ev.eval(e.root, &evalCtx{node: ctx, pos: 1, size: 1})
}

// EvalString evaluates and converts to string.
func (ev *Evaluator) EvalString(e *Expr, ctx *xmldom.Node) (string, error) {
	v, err := ev.Eval(e, ctx)
	if err != nil {
		return "", err
	}
	return v.String(), nil
}

// EvalBool evaluates and converts to boolean.
func (ev *Evaluator) EvalBool(e *Expr, ctx *xmldom.Node) (bool, error) {
	v, err := ev.Eval(e, ctx)
	if err != nil {
		return false, err
	}
	return v.Boolean(), nil
}

// Eval is a convenience one-shot uninstrumented evaluation.
func Eval(e *Expr, ctx *xmldom.Node) (Value, error) {
	return NewEvaluator(nil).Eval(e, ctx)
}

type evalCtx struct {
	node *xmldom.Node
	pos  int // 1-based position()
	size int // last()
}

// attrNode materializes attributes as transient text-like nodes so they
// can live in node-sets. Parent links identify the owner.
func attrValueNode(owner *xmldom.Node, a xmldom.Attr) *xmldom.Node {
	return &xmldom.Node{Kind: xmldom.Text, Name: a.Name, Data: a.Value, Parent: owner, SimAddr: owner.SimAddr}
}

func (ev *Evaluator) eval(n node, c *evalCtx) (Value, error) {
	switch x := n.(type) {
	case *litExpr:
		return StringValue(x.s), nil
	case *numExpr:
		return NumberValue(x.v), nil
	case *negExpr:
		v, err := ev.eval(x.x, c)
		if err != nil {
			return Value{}, err
		}
		ev.em.ALU(1)
		return NumberValue(-v.Number()), nil
	case *binExpr:
		return ev.evalBin(x, c)
	case *unionExpr:
		l, err := ev.eval(x.l, c)
		if err != nil {
			return Value{}, err
		}
		r, err := ev.eval(x.r, c)
		if err != nil {
			return Value{}, err
		}
		if !l.IsNodeSet() || !r.IsNodeSet() {
			return Value{}, fmt.Errorf("xpath: union of non-node-sets")
		}
		return NodeSetValue(unionDocOrder(l.Nodes, r.Nodes)), nil
	case *pathExpr:
		ns, err := ev.evalPath(x, c)
		if err != nil {
			return Value{}, err
		}
		return NodeSetValue(ns), nil
	case *callExpr:
		return ev.evalCall(x, c)
	case *filterExpr:
		return ev.evalFilter(x, c)
	}
	return Value{}, fmt.Errorf("xpath: unknown AST node %T", n)
}

func (ev *Evaluator) evalBin(x *binExpr, c *evalCtx) (Value, error) {
	// Short-circuit booleans.
	if x.op == tokAnd || x.op == tokOr {
		l, err := ev.eval(x.l, c)
		if err != nil {
			return Value{}, err
		}
		lb := l.Boolean()
		ev.em.Branch(pcCmpBranch, lb)
		if x.op == tokAnd && !lb {
			return BoolValue(false), nil
		}
		if x.op == tokOr && lb {
			return BoolValue(true), nil
		}
		r, err := ev.eval(x.r, c)
		if err != nil {
			return Value{}, err
		}
		return BoolValue(r.Boolean()), nil
	}
	l, err := ev.eval(x.l, c)
	if err != nil {
		return Value{}, err
	}
	r, err := ev.eval(x.r, c)
	if err != nil {
		return Value{}, err
	}
	switch x.op {
	case tokEq, tokNeq, tokLt, tokLte, tokGt, tokGte:
		res := compare(x.op, l, r)
		ev.em.ALU(4)
		ev.em.Branch(pcCmpBranch, res)
		return BoolValue(res), nil
	case tokPlus:
		ev.em.ALU(1)
		return NumberValue(l.Number() + r.Number()), nil
	case tokMinus:
		ev.em.ALU(1)
		return NumberValue(l.Number() - r.Number()), nil
	case tokStar:
		ev.em.ALU(3)
		return NumberValue(l.Number() * r.Number()), nil
	case tokDiv:
		ev.em.ALU(20)
		return NumberValue(l.Number() / r.Number()), nil
	case tokMod:
		ev.em.ALU(20)
		return NumberValue(math.Mod(l.Number(), r.Number())), nil
	}
	return Value{}, fmt.Errorf("xpath: unknown operator")
}

func (ev *Evaluator) evalFilter(x *filterExpr, c *evalCtx) (Value, error) {
	v, err := ev.eval(x.primary, c)
	if err != nil {
		return Value{}, err
	}
	if len(x.preds) > 0 || x.trail != nil {
		if !v.IsNodeSet() {
			return Value{}, fmt.Errorf("xpath: predicate/path applied to non-node-set")
		}
	}
	ns := v.Nodes
	for _, pred := range x.preds {
		ns, err = ev.filterPred(ns, pred)
		if err != nil {
			return Value{}, err
		}
	}
	if x.trail != nil {
		var out []*xmldom.Node
		for _, n := range ns {
			sub, err := ev.evalPath(x.trail, &evalCtx{node: n, pos: 1, size: 1})
			if err != nil {
				return Value{}, err
			}
			out = unionDocOrder(out, sub)
		}
		ns = out
	}
	return NodeSetValue(ns), nil
}

// evalPath runs a location path from the context node.
func (ev *Evaluator) evalPath(p *pathExpr, c *evalCtx) ([]*xmldom.Node, error) {
	start := c.node
	if p.absolute {
		start = c.node.Root()
	}
	current := []*xmldom.Node{start}
	for _, st := range p.steps {
		var next []*xmldom.Node
		for _, n := range current {
			cands := ev.axisNodes(st, n)
			matched := cands[:0:0]
			size := 0
			for _, cand := range cands {
				if ev.nodeTest(st, cand) {
					size++
					matched = append(matched, cand)
				}
			}
			// Predicates with position semantics relative to this
			// context node's matched candidates.
			for _, pred := range st.preds {
				var err error
				matched, err = ev.filterPred(matched, pred)
				if err != nil {
					return nil, err
				}
			}
			next = unionDocOrder(next, matched)
		}
		current = next
	}
	return current, nil
}

func (ev *Evaluator) filterPred(ns []*xmldom.Node, pred node) ([]*xmldom.Node, error) {
	var out []*xmldom.Node
	for i, n := range ns {
		v, err := ev.eval(pred, &evalCtx{node: n, pos: i + 1, size: len(ns)})
		if err != nil {
			return nil, err
		}
		var keep bool
		if v.kindOf == kindNumber {
			keep = int(v.Num) == i+1 // positional predicate
		} else {
			keep = v.Boolean()
		}
		ev.em.ALU(2)
		ev.em.Branch(pcPredTest, keep)
		if keep {
			out = append(out, n)
		}
	}
	return out, nil
}

// axisNodes collects the candidate nodes along a step's axis, emitting the
// traversal's pointer-chasing loads.
func (ev *Evaluator) axisNodes(st *step, n *xmldom.Node) []*xmldom.Node {
	switch st.ax {
	case axisSelf:
		ev.visit(n)
		return []*xmldom.Node{n}
	case axisParent:
		ev.visit(n)
		if n.Parent == nil {
			return nil
		}
		return []*xmldom.Node{n.Parent}
	case axisChild:
		ev.visit(n)
		return n.Children
	case axisAttribute:
		ev.visit(n)
		out := make([]*xmldom.Node, 0, len(n.Attrs))
		for _, a := range n.Attrs {
			out = append(out, attrValueNode(n, a))
		}
		return out
	case axisDescendantOrSelf:
		var out []*xmldom.Node
		n.Walk(func(d *xmldom.Node) bool {
			ev.visit(d)
			out = append(out, d)
			return true
		})
		return out
	}
	return nil
}

// visit charges the cost of touching one tree node: pointer-chasing loads
// on the node and its child vector plus kind dispatch.
func (ev *Evaluator) visit(n *xmldom.Node) {
	ev.em.Load(n.SimAddr, 3)
	ev.em.ALU(11)
	ev.em.Branch(pcVisit, n.Kind == xmldom.Element)
}

// nodeTest applies a step's node test, emitting the compare.
func (ev *Evaluator) nodeTest(st *step, n *xmldom.Node) bool {
	switch st.tk {
	case testAny:
		ok := st.ax == axisAttribute || n.Kind == xmldom.Element
		ev.em.Branch(pcKindTest, ok)
		return ok
	case testText:
		ok := n.Kind == xmldom.Text
		ev.em.Branch(pcKindTest, ok)
		return ok
	case testComment:
		ok := n.Kind == xmldom.Comment
		ev.em.Branch(pcKindTest, ok)
		return ok
	case testNode:
		return true
	case testName:
		var ok bool
		if st.ax == axisAttribute {
			ok = n.Name == st.name
		} else if n.Kind == xmldom.Element {
			// Accept either exact qualified match or local-name match,
			// the pragmatic prefix handling of an AON device.
			ok = n.Name == st.name || n.Local == st.name
		}
		ev.em.Load(n.SimAddr+24, 1)
		ev.em.ALU(2 + len(st.name)/trace.WordBytes)
		ev.em.Branch(pcNameTest, ok)
		return ok
	}
	return false
}

// unionDocOrder merges two node-sets preserving document order without
// duplicates. Node identity is pointer identity.
func unionDocOrder(a, b []*xmldom.Node) []*xmldom.Node {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	seen := make(map[*xmldom.Node]bool, len(a)+len(b))
	var out []*xmldom.Node
	for _, n := range a {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, n := range b {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	// Document order: index nodes by a walk from the common root.
	order := make(map[*xmldom.Node]int, len(out))
	i := 0
	out[0].Root().Walk(func(n *xmldom.Node) bool {
		order[n] = i
		i++
		return true
	})
	sortByOrder(out, order)
	return out
}

func sortByOrder(ns []*xmldom.Node, order map[*xmldom.Node]int) {
	// Insertion sort: node-sets here are small and nearly ordered.
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && order[ns[j]] < order[ns[j-1]]; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

// evalCall dispatches the XPath core function library.
func (ev *Evaluator) evalCall(x *callExpr, c *evalCtx) (Value, error) {
	ev.em.ALU(3)
	ev.em.Branch(pcFuncDisp, true)
	argVals := make([]Value, len(x.args))
	for i, a := range x.args {
		v, err := ev.eval(a, c)
		if err != nil {
			return Value{}, err
		}
		argVals[i] = v
	}
	arg := func(i int) Value {
		if i < len(argVals) {
			return argVals[i]
		}
		// Default argument: the context node.
		return NodeSetValue([]*xmldom.Node{c.node})
	}
	switch x.name {
	case "last":
		return NumberValue(float64(c.size)), nil
	case "position":
		return NumberValue(float64(c.pos)), nil
	case "count":
		if len(argVals) != 1 || !argVals[0].IsNodeSet() {
			return Value{}, fmt.Errorf("xpath: count() wants one node-set")
		}
		return NumberValue(float64(len(argVals[0].Nodes))), nil
	case "name", "local-name":
		ns := arg(0)
		if !ns.IsNodeSet() || len(ns.Nodes) == 0 {
			return StringValue(""), nil
		}
		n := ns.Nodes[0]
		if x.name == "local-name" {
			return StringValue(n.Local), nil
		}
		return StringValue(n.Name), nil
	case "string":
		return StringValue(arg(0).String()), nil
	case "number":
		return NumberValue(arg(0).Number()), nil
	case "boolean":
		if len(argVals) != 1 {
			return Value{}, fmt.Errorf("xpath: boolean() wants one argument")
		}
		return BoolValue(argVals[0].Boolean()), nil
	case "not":
		if len(argVals) != 1 {
			return Value{}, fmt.Errorf("xpath: not() wants one argument")
		}
		return BoolValue(!argVals[0].Boolean()), nil
	case "true":
		return BoolValue(true), nil
	case "false":
		return BoolValue(false), nil
	case "concat":
		var b strings.Builder
		for _, v := range argVals {
			b.WriteString(v.String())
		}
		ev.em.ALU(b.Len() / 2)
		return StringValue(b.String()), nil
	case "contains":
		s, sub := arg(0).String(), arg(1).String()
		ok := strings.Contains(s, sub)
		ev.em.ALU(len(s))
		ev.em.Branch(pcCmpBranch, ok)
		return BoolValue(ok), nil
	case "starts-with":
		s, pre := arg(0).String(), arg(1).String()
		ok := strings.HasPrefix(s, pre)
		ev.em.ALU(len(pre))
		ev.em.Branch(pcCmpBranch, ok)
		return BoolValue(ok), nil
	case "string-length":
		s := arg(0).String()
		return NumberValue(float64(len(s))), nil
	case "normalize-space":
		s := strings.Join(strings.Fields(arg(0).String()), " ")
		ev.em.ALU(len(s))
		return StringValue(s), nil
	case "substring":
		if len(argVals) < 2 {
			return Value{}, fmt.Errorf("xpath: substring() wants 2 or 3 arguments")
		}
		s := argVals[0].String()
		start := int(math.Round(argVals[1].Number())) - 1
		end := len(s)
		if len(argVals) == 3 {
			end = start + int(math.Round(argVals[2].Number()))
		}
		if start < 0 {
			start = 0
		}
		if end > len(s) {
			end = len(s)
		}
		if start >= end {
			return StringValue(""), nil
		}
		return StringValue(s[start:end]), nil
	case "sum":
		if len(argVals) != 1 || !argVals[0].IsNodeSet() {
			return Value{}, fmt.Errorf("xpath: sum() wants one node-set")
		}
		total := 0.0
		for _, n := range argVals[0].Nodes {
			total += StringValue(nodeStringValue(n)).Number()
		}
		return NumberValue(total), nil
	case "floor":
		return NumberValue(math.Floor(arg(0).Number())), nil
	case "ceiling":
		return NumberValue(math.Ceil(arg(0).Number())), nil
	case "round":
		return NumberValue(math.Round(arg(0).Number())), nil
	}
	return Value{}, fmt.Errorf("xpath: unknown function %s()", x.name)
}
