package xpath

import (
	"math"
	"strings"
	"testing"

	"repro/internal/perf/trace"
	"repro/internal/xmldom"
)

const orderDoc = `<?xml version="1.0"?>
<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">
  <soap:Body>
    <purchaseOrder id="po-7">
      <item sku="A1"><quantity>1</quantity><price>10.5</price></item>
      <item sku="B2"><quantity>3</quantity><price>2.0</price></item>
      <item sku="C3"><quantity>1</quantity><price>7</price></item>
      <note>rush order</note>
    </purchaseOrder>
  </soap:Body>
</soap:Envelope>`

func doc(t *testing.T) *xmldom.Node {
	t.Helper()
	d, err := xmldom.Parse([]byte(orderDoc))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func evalStr(t *testing.T, d *xmldom.Node, expr string) string {
	t.Helper()
	e, err := Compile(expr)
	if err != nil {
		t.Fatalf("Compile(%q): %v", expr, err)
	}
	s, err := NewEvaluator(nil).EvalString(e, d)
	if err != nil {
		t.Fatalf("Eval(%q): %v", expr, err)
	}
	return s
}

func evalNodes(t *testing.T, d *xmldom.Node, expr string) []*xmldom.Node {
	t.Helper()
	e, err := Compile(expr)
	if err != nil {
		t.Fatalf("Compile(%q): %v", expr, err)
	}
	v, err := Eval(e, d)
	if err != nil {
		t.Fatalf("Eval(%q): %v", expr, err)
	}
	if !v.IsNodeSet() {
		t.Fatalf("Eval(%q) is not a node-set", expr)
	}
	return v.Nodes
}

func TestPaperExpression(t *testing.T) {
	// The exact CBR expression from the paper: //quantity/text() with the
	// routing condition "equals the string 1".
	d := doc(t)
	e := MustCompile(`//quantity/text()`)
	v, err := Eval(e, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Nodes) != 3 {
		t.Fatalf("got %d text nodes, want 3", len(v.Nodes))
	}
	if v.String() != "1" {
		t.Fatalf("string-value = %q, want \"1\"", v.String())
	}
	ok, err := NewEvaluator(nil).EvalBool(MustCompile(`//quantity/text() = "1"`), d)
	if err != nil || !ok {
		t.Fatalf("routing condition = %v, %v; want true", ok, err)
	}
}

func TestDescendantAndChild(t *testing.T) {
	d := doc(t)
	if n := len(evalNodes(t, d, `//item`)); n != 3 {
		t.Fatalf("//item = %d, want 3", n)
	}
	if n := len(evalNodes(t, d, `/Envelope/Body/purchaseOrder/item`)); n != 3 {
		t.Fatalf("absolute path = %d, want 3", n)
	}
	if n := len(evalNodes(t, d, `//purchaseOrder/*`)); n != 4 {
		t.Fatalf("wildcard children = %d, want 4", n)
	}
}

func TestAttributes(t *testing.T) {
	d := doc(t)
	if got := evalStr(t, d, `//purchaseOrder/@id`); got != "po-7" {
		t.Fatalf("@id = %q", got)
	}
	if n := len(evalNodes(t, d, `//item[@sku="B2"]`)); n != 1 {
		t.Fatalf("attribute predicate = %d, want 1", n)
	}
	if n := len(evalNodes(t, d, `//item/@sku`)); n != 3 {
		t.Fatalf("attribute axis = %d, want 3", n)
	}
}

func TestPredicates(t *testing.T) {
	d := doc(t)
	if got := evalStr(t, d, `//item[2]/quantity`); got != "3" {
		t.Fatalf("positional = %q, want 3", got)
	}
	if got := evalStr(t, d, `//item[last()]/@sku`); got != "C3" {
		t.Fatalf("last() = %q, want C3", got)
	}
	if n := len(evalNodes(t, d, `//item[quantity="1"]`)); n != 2 {
		t.Fatalf("value predicate = %d, want 2", n)
	}
	if n := len(evalNodes(t, d, `//item[quantity="1" and price>8]`)); n != 1 {
		t.Fatalf("and predicate = %d, want 1", n)
	}
}

func TestFunctions(t *testing.T) {
	d := doc(t)
	cases := []struct {
		expr, want string
	}{
		{`count(//item)`, "3"},
		{`string(//note)`, "rush order"},
		{`normalize-space("  a   b ")`, "a b"},
		{`concat("x", "-", "y")`, "x-y"},
		{`substring("hello", 2, 3)`, "ell"},
		{`string-length("abcd")`, "4"},
		{`local-name(//purchaseOrder/*[last()])`, "note"},
		{`sum(//price)`, "19.5"},
		{`floor(2.7)`, "2"},
		{`ceiling(2.1)`, "3"},
		{`round(2.5)`, "3"},
		{`string(1 + 2 * 3)`, "7"},
		{`string(10 div 4)`, "2.5"},
		{`string(10 mod 4)`, "2"},
		{`string(-(3))`, "-3"},
	}
	for _, c := range cases {
		if got := evalStr(t, d, c.expr); got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
	for _, expr := range []string{
		`contains("hello", "ell")`, `starts-with("hello", "he")`,
		`not(false())`, `true()`, `boolean(//item)`,
		`//item[position()=2]/quantity = 3`,
		`count(//item | //note) = 4`,
	} {
		ok, err := NewEvaluator(nil).EvalBool(MustCompile(expr), d)
		if err != nil || !ok {
			t.Errorf("%s = %v, %v; want true", expr, ok, err)
		}
	}
}

func TestNumberConversions(t *testing.T) {
	if v := StringValue("  42 ").Number(); v != 42 {
		t.Errorf("number(' 42 ') = %v", v)
	}
	if v := StringValue("x").Number(); !math.IsNaN(v) {
		t.Errorf("number('x') = %v, want NaN", v)
	}
	if BoolValue(true).Number() != 1 || BoolValue(false).Number() != 0 {
		t.Error("boolean to number failed")
	}
	if NumberValue(2.5).String() != "2.5" || NumberValue(3).String() != "3" {
		t.Error("number formatting failed")
	}
	if NumberValue(math.NaN()).String() != "NaN" {
		t.Error("NaN formatting failed")
	}
}

func TestUnionDocumentOrder(t *testing.T) {
	d := doc(t)
	ns := evalNodes(t, d, `//note | //item`)
	if len(ns) != 4 {
		t.Fatalf("union = %d, want 4", len(ns))
	}
	// Document order: the three items precede the note.
	if ns[3].Local != "note" {
		t.Fatalf("union order wrong: last = %s", ns[3].Local)
	}
}

func TestParentAndSelf(t *testing.T) {
	d := doc(t)
	if got := evalStr(t, d, `//quantity/../@sku`); got != "A1" {
		t.Fatalf("parent axis = %q, want A1", got)
	}
	if n := len(evalNodes(t, d, `//item/.`)); n != 3 {
		t.Fatalf("self axis = %d, want 3", n)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		``, `//`, `//[`, `foo(`, `"unterminated`, `1 +`, `//a[`,
		`//a]`, `@@`, `count(//a`, `$var`, `//a[1]extra"`,
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	d := doc(t)
	for _, src := range []string{
		`unknown-fn()`, `count("s")`, `not()`, `"a" | "b"`, `substring("x")`,
	} {
		e, err := Compile(src)
		if err != nil {
			continue // compile-time rejection also acceptable
		}
		if _, err := Eval(e, d); err == nil {
			t.Errorf("Eval(%q) succeeded, want error", src)
		}
	}
}

func TestInstrumentedEvalEmitsOps(t *testing.T) {
	d := doc(t)
	var c trace.Counting
	ev := NewEvaluator(&c)
	v, err := ev.Eval(MustCompile(`//quantity/text()`), d)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "1" {
		t.Fatalf("instrumented result = %q", v.String())
	}
	if c.Instr == 0 || c.Loads == 0 || c.Branches == 0 {
		t.Fatalf("no ops emitted: %+v", c)
	}
	// A descendant scan must visit every node at least once.
	if c.Loads < uint64(d.CountNodes()) {
		t.Fatalf("loads %d < node count %d", c.Loads, d.CountNodes())
	}
}

func TestLargerDocumentScaling(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 200; i++ {
		sb.WriteString("<item><quantity>2</quantity></item>")
	}
	sb.WriteString("</r>")
	d, err := xmldom.Parse([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	var small, large trace.Counting
	if _, err := NewEvaluator(&large).Eval(MustCompile(`//quantity`), d); err != nil {
		t.Fatal(err)
	}
	if _, err := NewEvaluator(&small).Eval(MustCompile(`//quantity`), doc(t)); err != nil {
		t.Fatal(err)
	}
	if large.Instr < 10*small.Instr {
		t.Fatalf("traversal cost did not scale: %d vs %d", large.Instr, small.Instr)
	}
	if n := len(mustNodes(t, d, `//quantity`)); n != 200 {
		t.Fatalf("got %d, want 200", n)
	}
}

func mustNodes(t *testing.T, d *xmldom.Node, expr string) []*xmldom.Node {
	t.Helper()
	v, err := Eval(MustCompile(expr), d)
	if err != nil {
		t.Fatal(err)
	}
	return v.Nodes
}
