package xpath

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/xmldom"
)

func fmtSprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// Value is an XPath 1.0 value: node-set, string, number or boolean.
type Value struct {
	Nodes  []*xmldom.Node
	Str    string
	Num    float64
	Bool   bool
	kindOf valueKind
}

type valueKind int

const (
	kindNodeSet valueKind = iota
	kindString
	kindNumber
	kindBool
)

// NodeSetValue wraps a node-set.
func NodeSetValue(ns []*xmldom.Node) Value { return Value{Nodes: ns, kindOf: kindNodeSet} }

// StringValue wraps a string.
func StringValue(s string) Value { return Value{Str: s, kindOf: kindString} }

// NumberValue wraps a number.
func NumberValue(f float64) Value { return Value{Num: f, kindOf: kindNumber} }

// BoolValue wraps a boolean.
func BoolValue(b bool) Value { return Value{Bool: b, kindOf: kindBool} }

// IsNodeSet reports whether the value is a node-set.
func (v Value) IsNodeSet() bool { return v.kindOf == kindNodeSet }

// String converts per the XPath string() rules.
func (v Value) String() string {
	switch v.kindOf {
	case kindNodeSet:
		if len(v.Nodes) == 0 {
			return ""
		}
		return nodeStringValue(v.Nodes[0])
	case kindString:
		return v.Str
	case kindNumber:
		return formatNumber(v.Num)
	default:
		if v.Bool {
			return "true"
		}
		return "false"
	}
}

// Number converts per the XPath number() rules.
func (v Value) Number() float64 {
	switch v.kindOf {
	case kindNumber:
		return v.Num
	case kindBool:
		if v.Bool {
			return 1
		}
		return 0
	default:
		s := strings.TrimSpace(v.String())
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return math.NaN()
		}
		return f
	}
}

// Boolean converts per the XPath boolean() rules.
func (v Value) Boolean() bool {
	switch v.kindOf {
	case kindNodeSet:
		return len(v.Nodes) > 0
	case kindString:
		return len(v.Str) > 0
	case kindNumber:
		return v.Num != 0 && !math.IsNaN(v.Num)
	default:
		return v.Bool
	}
}

// nodeStringValue is the XPath string-value of a node.
func nodeStringValue(n *xmldom.Node) string {
	switch n.Kind {
	case xmldom.Text, xmldom.Comment, xmldom.ProcInst:
		return n.Data
	default:
		return n.TextContent()
	}
}

// formatNumber renders a float the XPath way: integers without a point.
func formatNumber(f float64) string {
	if math.IsNaN(f) {
		return "NaN"
	}
	if math.IsInf(f, 1) {
		return "Infinity"
	}
	if math.IsInf(f, -1) {
		return "-Infinity"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// compare applies an XPath comparison between two values, handling the
// node-set existential semantics.
func compare(op tokKind, a, b Value) bool {
	// Node-set vs anything: existential over string-values.
	if a.IsNodeSet() && b.IsNodeSet() {
		for _, na := range a.Nodes {
			for _, nb := range b.Nodes {
				if cmpAtom(op, StringValue(nodeStringValue(na)), StringValue(nodeStringValue(nb))) {
					return true
				}
			}
		}
		return false
	}
	if a.IsNodeSet() {
		for _, na := range a.Nodes {
			if cmpAtom(op, StringValue(nodeStringValue(na)), b) {
				return true
			}
		}
		return false
	}
	if b.IsNodeSet() {
		for _, nb := range b.Nodes {
			if cmpAtom(op, a, StringValue(nodeStringValue(nb))) {
				return true
			}
		}
		return false
	}
	return cmpAtom(op, a, b)
}

func cmpAtom(op tokKind, a, b Value) bool {
	switch op {
	case tokEq, tokNeq:
		var eq bool
		switch {
		case a.kindOf == kindBool || b.kindOf == kindBool:
			eq = a.Boolean() == b.Boolean()
		case a.kindOf == kindNumber || b.kindOf == kindNumber:
			eq = a.Number() == b.Number()
		default:
			eq = a.String() == b.String()
		}
		if op == tokNeq {
			return !eq
		}
		return eq
	case tokLt:
		return a.Number() < b.Number()
	case tokLte:
		return a.Number() <= b.Number()
	case tokGt:
		return a.Number() > b.Number()
	case tokGte:
		return a.Number() >= b.Number()
	}
	return false
}
