// Package xpath implements the XPath 1.0 subset the AON use cases need —
// location paths with child/descendant/attribute/self/parent axes, node
// tests (names, *, text(), node(), comment()), predicates, the four value
// types (node-set, string, number, boolean), comparison and boolean
// operators, and the core function library. Content-based routing (the
// paper's CBR use case) evaluates expressions like //quantity/text()
// against incoming SOAP messages through this package.
//
// Like the XML parser, evaluation is dual-use: plain, or instrumented to
// emit the micro-op stream of the equivalent compiled evaluator.
package xpath

import "fmt"

type tokKind int

const (
	tokEOF  tokKind = iota
	tokName         // element or function name
	tokNumber
	tokLiteral    // quoted string
	tokSlash      // /
	tokSlashSlash // //
	tokLBracket   // [
	tokRBracket   // ]
	tokLParen     // (
	tokRParen     // )
	tokAt         // @
	tokDot        // .
	tokDotDot     // ..
	tokStar       // *
	tokComma      // ,
	tokPipe       // |
	tokEq         // =
	tokNeq        // !=
	tokLt         // <
	tokLte        // <=
	tokGt         // >
	tokGte        // >=
	tokPlus       // +
	tokMinus      // -
	tokAnd        // and
	tokOr         // or
	tokDiv        // div
	tokMod        // mod
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// SyntaxError reports a malformed expression.
type SyntaxError struct {
	Expr string
	Pos  int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xpath: %q at %d: %s", e.Expr, e.Pos, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return &SyntaxError{Expr: l.src, Pos: l.pos, Msg: fmt.Sprintf(format, args...)}
}

func isXDigit(b byte) bool { return b >= '0' && b <= '9' }

func isXNameStart(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || b >= 0x80
}

func isXNameChar(b byte) bool {
	return isXNameStart(b) || b == '-' || b == '.' || b == ':' || isXDigit(b)
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\n') {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch {
	case two == "//":
		l.pos += 2
		return token{tokSlashSlash, "//", start}, nil
	case two == "..":
		l.pos += 2
		return token{tokDotDot, "..", start}, nil
	case two == "!=":
		l.pos += 2
		return token{tokNeq, "!=", start}, nil
	case two == "<=":
		l.pos += 2
		return token{tokLte, "<=", start}, nil
	case two == ">=":
		l.pos += 2
		return token{tokGte, ">=", start}, nil
	}
	switch c {
	case '/':
		l.pos++
		return token{tokSlash, "/", start}, nil
	case '[':
		l.pos++
		return token{tokLBracket, "[", start}, nil
	case ']':
		l.pos++
		return token{tokRBracket, "]", start}, nil
	case '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case '@':
		l.pos++
		return token{tokAt, "@", start}, nil
	case '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case '|':
		l.pos++
		return token{tokPipe, "|", start}, nil
	case '=':
		l.pos++
		return token{tokEq, "=", start}, nil
	case '<':
		l.pos++
		return token{tokLt, "<", start}, nil
	case '>':
		l.pos++
		return token{tokGt, ">", start}, nil
	case '+':
		l.pos++
		return token{tokPlus, "+", start}, nil
	case '-':
		l.pos++
		return token{tokMinus, "-", start}, nil
	case '.':
		if l.pos+1 < len(l.src) && isXDigit(l.src[l.pos+1]) {
			return l.lexNumber()
		}
		l.pos++
		return token{tokDot, ".", start}, nil
	case '"', '\'':
		quote := c
		l.pos++
		s := l.pos
		for l.pos < len(l.src) && l.src[l.pos] != quote {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated literal")
		}
		text := l.src[s:l.pos]
		l.pos++
		return token{tokLiteral, text, start}, nil
	}
	if isXDigit(c) {
		return l.lexNumber()
	}
	if isXNameStart(c) {
		l.pos++
		for l.pos < len(l.src) && isXNameChar(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		switch text {
		case "and":
			return token{tokAnd, text, start}, nil
		case "or":
			return token{tokOr, text, start}, nil
		case "div":
			return token{tokDiv, text, start}, nil
		case "mod":
			return token{tokMod, text, start}, nil
		}
		return token{tokName, text, start}, nil
	}
	return token{}, l.errf("unexpected character %q", string(c))
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isXDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && isXDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	return token{tokNumber, l.src[start:l.pos], start}, nil
}
