package xpath

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xmldom"
)

// Additional coverage: operator precedence, conversions, unions, deep
// documents and adversarial inputs.

func TestOperatorPrecedence(t *testing.T) {
	d := doc(t)
	cases := []struct {
		expr, want string
	}{
		{`string(2 + 3 * 4)`, "14"},
		{`string((2 + 3) * 4)`, "20"},
		{`string(2 - 3 - 4)`, "-5"},
		{`string(12 div 2 div 3)`, "2"},
		{`string(1 < 2)`, "true"},
		{`string(2 <= 2 and 3 > 1)`, "true"},
		{`string(1 = 1 or unknown-fn())`, "true"}, // short-circuit skips the error
		{`string(-2 * -3)`, "6"},
	}
	for _, c := range cases {
		if got := evalStr(t, d, c.expr); got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
}

func TestExistentialComparison(t *testing.T) {
	d := doc(t)
	// Node-set = value is existential: true if ANY node matches.
	for expr, want := range map[string]bool{
		`//quantity = 1`:                    true,  // one of them is 1
		`//quantity = 3`:                    true,  // another is 3
		`//quantity = 99`:                   false, // none
		`//quantity != 1`:                   true,  // some are not 1
		`//quantity > 2`:                    true,
		`//item/@sku = "B2"`:                true,
		`//quantity = //price`:              false,
		`count(//item) = count(//quantity)`: true,
	} {
		ok, err := NewEvaluator(nil).EvalBool(MustCompile(expr), d)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		if ok != want {
			t.Errorf("%s = %v, want %v", expr, ok, want)
		}
	}
}

func TestFilterExpression(t *testing.T) {
	d := doc(t)
	if got := evalStr(t, d, `(//item)[2]/@sku`); got != "B2" {
		t.Fatalf("(//item)[2] = %q", got)
	}
	if got := evalStr(t, d, `string((//quantity)[last()])`); got != "1" {
		t.Fatalf("last quantity = %q", got)
	}
}

func TestBareRoot(t *testing.T) {
	d := doc(t)
	ns := evalNodes(t, d, `/`)
	if len(ns) != 1 || ns[0].Kind != xmldom.Document {
		t.Fatalf("bare / = %+v", ns)
	}
}

func TestTextNodeTest(t *testing.T) {
	d := doc(t)
	ns := evalNodes(t, d, `//note/text()`)
	if len(ns) != 1 || ns[0].Data != "rush order" {
		t.Fatalf("text() = %+v", ns)
	}
	// node() matches everything below items.
	all := evalNodes(t, d, `//item/node()`)
	if len(all) < 6 {
		t.Fatalf("node() = %d nodes", len(all))
	}
}

func TestDeepDocument(t *testing.T) {
	var b strings.Builder
	depth := 60
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&b, "<d%d>", i)
	}
	b.WriteString("<leaf>found</leaf>")
	for i := depth - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "</d%d>", i)
	}
	d, err := xmldom.Parse([]byte(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := evalStr(t, d, `//leaf`); got != "found" {
		t.Fatalf("deep descendant = %q", got)
	}
}

// Property: count(//x) equals the number of <x> elements actually written.
func TestCountMatchesConstruction(t *testing.T) {
	check := func(n uint8) bool {
		k := int(n % 50)
		var b strings.Builder
		b.WriteString("<r>")
		for i := 0; i < k; i++ {
			b.WriteString("<x/>")
		}
		b.WriteString("<y/></r>")
		d, err := xmldom.Parse([]byte(b.String()))
		if err != nil {
			return false
		}
		v, err := Eval(MustCompile(`count(//x)`), d)
		if err != nil {
			return false
		}
		return int(v.Number()) == k
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: //name finds an element if and only if its serialized form
// contains the tag.
func TestDescendantFindsAll(t *testing.T) {
	names := []string{"alpha", "beta", "gamma"}
	check := func(mask uint8) bool {
		var b strings.Builder
		b.WriteString("<root>")
		for i, n := range names {
			if mask&(1<<i) != 0 {
				fmt.Fprintf(&b, "<%s/>", n)
			}
		}
		b.WriteString("</root>")
		d, err := xmldom.Parse([]byte(b.String()))
		if err != nil {
			return false
		}
		for i, n := range names {
			v, err := Eval(MustCompile("//"+n), d)
			if err != nil {
				return false
			}
			want := mask&(1<<i) != 0
			if (len(v.Nodes) > 0) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}

func TestSyntaxErrorReporting(t *testing.T) {
	_, err := Compile(`//a[`)
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Expr != `//a[` || !strings.Contains(se.Error(), "xpath") {
		t.Fatalf("error = %v", se)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile accepted garbage")
		}
	}()
	MustCompile(`]]]`)
}
