package xpath

import "strconv"

// Compile parses an XPath expression into an evaluatable form.
func Compile(src string) (*Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %q", p.peek().text)
	}
	return &Expr{Source: src, root: root}, nil
}

// MustCompile is Compile that panics on error, for init-time expressions.
func MustCompile(src string) *Expr {
	e, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k tokKind) bool {
	if p.peek().kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, what string) error {
	if !p.accept(k) {
		return p.errf("expected %s, found %q", what, p.peek().text)
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Expr: p.src, Pos: p.peek().pos, Msg: sprintf(format, args...)}
}

func sprintf(format string, args ...any) string {
	if len(args) == 0 {
		return format
	}
	return fmtSprintf(format, args...)
}

func (p *parser) parseOr() (node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOr) {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: tokOr, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (node, error) {
	l, err := p.parseEquality()
	if err != nil {
		return nil, err
	}
	for p.accept(tokAnd) {
		r, err := p.parseEquality()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: tokAnd, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseEquality() (node, error) {
	l, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().kind
		if k != tokEq && k != tokNeq {
			return l, nil
		}
		p.advance()
		r, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: k, l: l, r: r}
	}
}

func (p *parser) parseRelational() (node, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().kind
		if k != tokLt && k != tokLte && k != tokGt && k != tokGte {
			return l, nil
		}
		p.advance()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: k, l: l, r: r}
	}
}

func (p *parser) parseAdditive() (node, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().kind
		if k != tokPlus && k != tokMinus {
			return l, nil
		}
		p.advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: k, l: l, r: r}
	}
}

func (p *parser) parseMultiplicative() (node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().kind
		// '*' is multiplication only in operator position; the lexer
		// cannot tell, so the parser decides: after a complete operand a
		// star is an operator.
		if k != tokDiv && k != tokMod && k != tokStar {
			return l, nil
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: k, l: l, r: r}
	}
}

func (p *parser) parseUnary() (node, error) {
	if p.accept(tokMinus) {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &negExpr{x: x}, nil
	}
	return p.parseUnion()
}

func (p *parser) parseUnion() (node, error) {
	l, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	for p.accept(tokPipe) {
		r, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		l = &unionExpr{l: l, r: r}
	}
	return l, nil
}

// parsePath handles location paths and primary expressions with optional
// trailing paths (filter expressions).
func (p *parser) parsePath() (node, error) {
	switch p.peek().kind {
	case tokLiteral:
		return &litExpr{s: p.advance().text}, nil
	case tokNumber:
		t := p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &numExpr{v: v}, nil
	case tokLParen:
		p.advance()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return p.parseFilterTail(inner)
	case tokName:
		// Function call if followed by '(' and not a node-test keyword.
		if p.toks[p.pos+1].kind == tokLParen && !isNodeTestName(p.peek().text) {
			return p.parseCall()
		}
	}
	return p.parseLocationPath()
}

func isNodeTestName(s string) bool {
	return s == "text" || s == "node" || s == "comment"
}

func (p *parser) parseCall() (node, error) {
	name := p.advance().text
	if err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	var args []node
	if p.peek().kind != tokRParen {
		for {
			a, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.accept(tokComma) {
				break
			}
		}
	}
	if err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	call := &callExpr{name: name, args: args}
	return p.parseFilterTail(call)
}

// parseFilterTail wraps a primary with predicates and a trailing path if
// present: primary[pred]/rest.
func (p *parser) parseFilterTail(primary node) (node, error) {
	var preds []node
	for p.peek().kind == tokLBracket {
		pr, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pr)
	}
	var trail *pathExpr
	if p.peek().kind == tokSlash || p.peek().kind == tokSlashSlash {
		path, err := p.parseRelativePathAfter(p.peek().kind == tokSlashSlash)
		if err != nil {
			return nil, err
		}
		trail = path
	}
	if len(preds) == 0 && trail == nil {
		return primary, nil
	}
	return &filterExpr{primary: primary, preds: preds, trail: trail}, nil
}

// parseRelativePathAfter consumes the leading / or // then steps.
func (p *parser) parseRelativePathAfter(dslash bool) (*pathExpr, error) {
	p.advance() // the slash token
	path := &pathExpr{}
	if dslash {
		path.steps = append(path.steps, &step{ax: axisDescendantOrSelf, tk: testNode})
	}
	if err := p.parseSteps(path); err != nil {
		return nil, err
	}
	return path, nil
}

func (p *parser) parseLocationPath() (node, error) {
	path := &pathExpr{}
	switch p.peek().kind {
	case tokSlash:
		p.advance()
		path.absolute = true
		if !p.stepStarts() {
			return path, nil // bare "/" selects the root
		}
	case tokSlashSlash:
		p.advance()
		path.absolute = true
		path.steps = append(path.steps, &step{ax: axisDescendantOrSelf, tk: testNode})
	}
	if err := p.parseSteps(path); err != nil {
		return nil, err
	}
	if len(path.steps) == 0 && !path.absolute {
		return nil, p.errf("expected expression, found %q", p.peek().text)
	}
	return path, nil
}

func (p *parser) stepStarts() bool {
	switch p.peek().kind {
	case tokName, tokStar, tokAt, tokDot, tokDotDot:
		return true
	}
	return false
}

func (p *parser) parseSteps(path *pathExpr) error {
	for {
		st, err := p.parseStep()
		if err != nil {
			return err
		}
		path.steps = append(path.steps, st)
		switch p.peek().kind {
		case tokSlash:
			p.advance()
		case tokSlashSlash:
			p.advance()
			path.steps = append(path.steps, &step{ax: axisDescendantOrSelf, tk: testNode})
		default:
			return nil
		}
	}
}

func (p *parser) parseStep() (*step, error) {
	st := &step{ax: axisChild}
	switch p.peek().kind {
	case tokDot:
		p.advance()
		st.ax, st.tk = axisSelf, testNode
		return st, nil
	case tokDotDot:
		p.advance()
		st.ax, st.tk = axisParent, testNode
		return st, nil
	case tokAt:
		p.advance()
		st.ax = axisAttribute
	}
	switch p.peek().kind {
	case tokStar:
		p.advance()
		st.tk = testAny
	case tokName:
		name := p.advance().text
		if p.peek().kind == tokLParen && isNodeTestName(name) {
			p.advance()
			if err := p.expect(tokRParen, ")"); err != nil {
				return nil, err
			}
			switch name {
			case "text":
				st.tk = testText
			case "node":
				st.tk = testNode
			case "comment":
				st.tk = testComment
			}
		} else {
			st.tk = testName
			st.name = name
		}
	default:
		return nil, p.errf("expected step, found %q", p.peek().text)
	}
	for p.peek().kind == tokLBracket {
		pr, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		st.preds = append(st.preds, pr)
	}
	return st, nil
}

func (p *parser) parsePredicate() (node, error) {
	if err := p.expect(tokLBracket, "["); err != nil {
		return nil, err
	}
	inner, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokRBracket, "]"); err != nil {
		return nil, err
	}
	return inner, nil
}
