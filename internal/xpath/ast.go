package xpath

import "fmt"

// Expr is a compiled XPath expression.
type Expr struct {
	Source string
	root   node
}

// node is an AST node.
type node interface{ String() string }

// axis identifies the traversal direction of a step.
type axis int

const (
	axisChild axis = iota
	axisDescendantOrSelf
	axisAttribute
	axisSelf
	axisParent
)

func (a axis) String() string {
	switch a {
	case axisChild:
		return "child"
	case axisDescendantOrSelf:
		return "descendant-or-self"
	case axisAttribute:
		return "attribute"
	case axisSelf:
		return "self"
	case axisParent:
		return "parent"
	}
	return "?"
}

// testKind is the node-test variant of a step.
type testKind int

const (
	testName    testKind = iota // element (or attribute) by name
	testAny                     // *
	testText                    // text()
	testNode                    // node()
	testComment                 // comment()
)

// step is one location step: axis::test[pred]*
type step struct {
	ax    axis
	tk    testKind
	name  string // testName: local name or prefix:local; "*" prefix unsupported
	preds []node
}

func (s *step) String() string {
	return fmt.Sprintf("%s::%s/%d-preds", s.ax, s.name, len(s.preds))
}

// pathExpr is a location path: absolute or relative chain of steps.
type pathExpr struct {
	absolute bool
	steps    []*step
}

func (p *pathExpr) String() string {
	return fmt.Sprintf("path(abs=%v,%d steps)", p.absolute, len(p.steps))
}

// binExpr is a binary operation.
type binExpr struct {
	op   tokKind
	l, r node
}

func (b *binExpr) String() string { return fmt.Sprintf("bin(%d)", b.op) }

// negExpr is unary minus.
type negExpr struct{ x node }

func (n *negExpr) String() string { return "neg" }

// unionExpr is a node-set union.
type unionExpr struct{ l, r node }

func (u *unionExpr) String() string { return "union" }

// litExpr is a string literal.
type litExpr struct{ s string }

func (l *litExpr) String() string { return fmt.Sprintf("lit(%q)", l.s) }

// numExpr is a numeric literal.
type numExpr struct{ v float64 }

func (n *numExpr) String() string { return fmt.Sprintf("num(%g)", n.v) }

// callExpr is a function call.
type callExpr struct {
	name string
	args []node
}

func (c *callExpr) String() string { return fmt.Sprintf("%s/%d", c.name, len(c.args)) }

// filterExpr applies predicates (and a trailing path) to a primary.
type filterExpr struct {
	primary node
	preds   []node
	trail   *pathExpr // may be nil
}

func (f *filterExpr) String() string { return "filter" }
