package aon

import (
	"testing"

	"repro/internal/perf/counters"
	"repro/internal/perf/machine"
	"repro/internal/workload"
)

// The extension use cases (the paper's future work: DPI and crypto).

func TestProcessOneDPI(t *testing.T) {
	// AONBench messages are clean: no signatures fire.
	ok, err := ProcessOne(workload.DPI, workload.HTTPRequest(2, workload.DPI))
	if err != nil || !ok {
		t.Fatalf("clean message flagged: %v %v", ok, err)
	}
}

func TestProcessOneAUTH(t *testing.T) {
	for i := 0; i < workload.TamperEvery+2; i++ {
		ok, err := ProcessOne(workload.AUTH, workload.HTTPRequest(i, workload.AUTH))
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		tampered := i%workload.TamperEvery == workload.TamperEvery-1
		if ok == tampered {
			t.Fatalf("message %d: auth=%v tampered=%v", i, ok, tampered)
		}
	}
}

func TestServerEndToEndDPI(t *testing.T) {
	s, _ := runServer(t, machine.TwoCPm, workload.DPI, 30)
	if s.Stats.CleanDPI == 0 {
		t.Fatal("no clean messages")
	}
	if s.Stats.ParseErrors != 0 {
		t.Fatalf("parse errors: %d", s.Stats.ParseErrors)
	}
}

func TestServerEndToEndAUTH(t *testing.T) {
	s, _ := runServer(t, machine.OneCPm, workload.AUTH, 30)
	if s.Stats.AuthOK == 0 {
		t.Fatal("no authenticated messages")
	}
	if s.Stats.RoutedError == 0 {
		t.Fatal("no tampered message rejected (TamperEvery should fire)")
	}
}

func TestExtensionCostSpectrum(t *testing.T) {
	// AUTH (crypto) must be the most instruction-heavy use case; DPI sits
	// between FR and the XML-processing cases.
	cost := map[workload.UseCase]float64{}
	for _, uc := range []workload.UseCase{workload.FR, workload.CBR, workload.DPI, workload.AUTH} {
		s, m := runServer(t, machine.OneCPm, uc, 25)
		sys := m.SystemCounters()
		cost[uc] = float64(sys.Get(counters.InstrRetired)) / float64(s.Stats.Messages)
	}
	if !(cost[workload.DPI] > cost[workload.FR]) {
		t.Fatalf("DPI (%.0f) not above FR (%.0f)", cost[workload.DPI], cost[workload.FR])
	}
	if !(cost[workload.AUTH] > cost[workload.CBR]) {
		t.Fatalf("AUTH (%.0f) not above CBR (%.0f)", cost[workload.AUTH], cost[workload.CBR])
	}
}

func TestFourCoreExtensionRuns(t *testing.T) {
	s, m := runServer(t, machine.FourCPm, workload.SV, 60)
	if s.Stats.Messages < 60 {
		t.Fatal("four-core machine did not process the load")
	}
	busy := 0
	for _, lc := range m.LCPUs {
		if lc.Busy() > 0 {
			busy++
		}
	}
	if busy < 3 {
		t.Fatalf("only %d of 4 cores did work", busy)
	}
}
