package aon

import (
	"bytes"
	"testing"

	"repro/internal/netsim"
	"repro/internal/perf/machine"
	"repro/internal/sim/sched"
	"repro/internal/workload"
)

// Failure injection: the server must absorb malformed traffic — broken
// HTTP, truncated XML, schema violations — by routing to the error paths,
// never by wedging the simulation.

// corruptClient injects a deterministic mix of healthy and damaged
// requests directly through the NIC.
func corruptClient(s *Server, n int) {
	payloads := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		raw := workload.HTTPRequest(i, workload.SV)
		switch i % 5 {
		case 1: // broken request line
			raw = append([]byte("GARBAGE NONSENSE\r\n"), raw...)
		case 2: // truncated XML body (content-length still consistent)
			raw = bytes.Replace(raw, []byte("</soap:Envelope>"), []byte("<unterminated>>"), 1)
		case 3: // schema violation
			raw = bytes.Replace(raw, []byte("<quantity>"), []byte("<quantity>x"), 1)
		}
		payloads = append(payloads, raw)
	}
	var inject func(now float64, i int)
	inject = func(now float64, i int) {
		if i >= len(payloads) {
			return
		}
		p := payloads[i]
		last := s.NIC.InjectMessage(now, netsim.Chunk{Bytes: len(p), Data: p}, func(t float64, m netsim.Chunk) {
			s.Deliver(t, m)
		})
		inject(last, i+1)
	}
	inject(0, 0)
}

func TestServerSurvivesCorruptTraffic(t *testing.T) {
	m := machine.New(machine.TwoCPm, machine.Options{})
	e := sched.NewEngine(m)
	nic := netsim.NewNIC(e, e.Space.NewProcess(), netsim.NewLink(m, 1e9), netsim.NewLink(m, 1e9))
	s, err := New(e, nic, Config{UseCase: workload.SV})
	if err != nil {
		t.Fatal(err)
	}
	s.SpawnThreads()

	const n = 40
	corruptClient(s, n)
	e.Run(func(*sched.Engine) bool {
		// Every injected message is either forwarded or consumed by an
		// error path; HTTP-level rejects do not count as Messages.
		return s.Stats.Messages+s.Stats.ParseErrors >= n
	})

	if s.Stats.ParseErrors == 0 {
		t.Fatal("no parse errors despite corrupted traffic")
	}
	if s.Stats.RoutedError == 0 {
		t.Fatal("no schema violations routed to the error endpoint")
	}
	if s.Stats.ValidationOK == 0 {
		t.Fatal("healthy messages did not survive")
	}
	// 1/5 broken HTTP + 1/5 broken XML -> parse errors; 1/5 schema
	// violations -> routed errors; 2/5 healthy.
	if s.Stats.ValidationOK < n/4 {
		t.Fatalf("only %d healthy messages of %d", s.Stats.ValidationOK, n)
	}
}

func TestServerSurvivesTinyAndHugeMessages(t *testing.T) {
	m := machine.New(machine.OneCPm, machine.Options{})
	e := sched.NewEngine(m)
	nic := netsim.NewNIC(e, e.Space.NewProcess(), netsim.NewLink(m, 1e9), netsim.NewLink(m, 1e9))
	s, err := New(e, nic, Config{UseCase: workload.CBR})
	if err != nil {
		t.Fatal(err)
	}
	s.SpawnThreads()

	tiny := []byte("POST / HTTP/1.1\r\nContent-Length: 6\r\n\r\n<a>1</")
	huge := []byte("POST / HTTP/1.1\r\nContent-Length: 120000\r\n\r\n<r>" +
		string(bytes.Repeat([]byte("<quantity>1</quantity>"), 5000)) + "</r>")
	// Fix content-length of the huge request.
	huge = []byte("POST / HTTP/1.1\r\nContent-Length: " +
		itoa(len(huge)-bytes.Index(huge, []byte("\r\n\r\n"))-4) + "\r\n\r\n" +
		string(huge[bytes.Index(huge, []byte("\r\n\r\n"))+4:]))

	for _, p := range [][]byte{tiny, huge} {
		p := p
		s.NIC.InjectMessage(0, netsim.Chunk{Bytes: len(p), Data: p}, func(t float64, m netsim.Chunk) {
			s.Deliver(t, m)
		})
	}
	e.Run(func(*sched.Engine) bool {
		return s.Stats.Messages+s.Stats.ParseErrors+s.Stats.RoutedError >= 2
	})
	total := s.Stats.Messages + s.Stats.ParseErrors
	if total < 2 {
		t.Fatalf("messages unaccounted for: %+v", s.Stats)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
