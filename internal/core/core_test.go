package aon

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/perf/counters"
	"repro/internal/perf/machine"
	"repro/internal/sim/sched"
	"repro/internal/workload"
)

func TestProcessOneFunctional(t *testing.T) {
	// Even messages match the routing condition; odd do not.
	for i := 0; i < 6; i++ {
		ok, err := ProcessOne(workload.CBR, workload.HTTPRequest(i, workload.CBR))
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if ok != (i%2 == 0) {
			t.Fatalf("message %d routed %v", i, ok)
		}
	}
	ok, err := ProcessOne(workload.SV, workload.HTTPRequest(1, workload.SV))
	if err != nil || !ok {
		t.Fatalf("SV: %v %v", ok, err)
	}
	ok, err = ProcessOne(workload.FR, workload.HTTPRequest(1, workload.FR))
	if err != nil || !ok {
		t.Fatalf("FR: %v %v", ok, err)
	}
}

func TestProcessOneErrors(t *testing.T) {
	if _, err := ProcessOne(workload.CBR, []byte("not http")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ProcessOne(workload.UseCase(9), workload.HTTPRequest(0, workload.FR)); err == nil {
		t.Fatal("unknown use case accepted")
	}
}

func TestNewRejectsBadExpression(t *testing.T) {
	m := machine.New(machine.OneCPm, machine.Options{})
	e := sched.NewEngine(m)
	nic := netsim.NewNIC(e, e.Space.NewProcess(), netsim.NewLink(m, 1e9), netsim.NewLink(m, 1e9))
	if _, err := New(e, nic, Config{UseCase: workload.CBR, Expr: "///"}); err == nil {
		t.Fatal("bad XPath accepted")
	}
}

// runServer spins up a full simulated server and processes n messages.
func runServer(t *testing.T, id machine.ConfigID, uc workload.UseCase, n int) (*Server, *machine.Machine) {
	t.Helper()
	m := machine.New(id, machine.Options{})
	e := sched.NewEngine(m)
	rx := netsim.NewLink(m, 1e9)
	tx := netsim.NewLink(m, 1e9)
	nic := netsim.NewNIC(e, e.Space.NewProcess(), rx, tx)
	s, err := New(e, nic, Config{UseCase: uc})
	if err != nil {
		t.Fatal(err)
	}
	s.SpawnThreads()
	NewClient(s, uc, 16).Start()
	target := uint64(n)
	e.Run(func(*sched.Engine) bool { return s.Stats.Messages >= target })
	return s, m
}

func TestServerEndToEndCBR(t *testing.T) {
	s, m := runServer(t, machine.OneCPm, workload.CBR, 40)
	if s.Stats.ParseErrors != 0 {
		t.Fatalf("parse errors: %d", s.Stats.ParseErrors)
	}
	if s.Stats.RoutedMatch == 0 || s.Stats.RoutedError == 0 {
		t.Fatalf("routing degenerate: match=%d error=%d", s.Stats.RoutedMatch, s.Stats.RoutedError)
	}
	// Roughly half the pool matches.
	total := s.Stats.RoutedMatch + s.Stats.RoutedError
	if s.Stats.RoutedMatch < total/4 || s.Stats.RoutedMatch > 3*total/4 {
		t.Fatalf("match fraction off: %d/%d", s.Stats.RoutedMatch, total)
	}
	if s.Stats.BytesOut != s.Stats.BytesIn {
		t.Fatalf("proxy byte accounting: in=%d out=%d", s.Stats.BytesIn, s.Stats.BytesOut)
	}
	sys := m.SystemCounters()
	if sys.Get(counters.InstrRetired) == 0 || sys.Get(counters.BranchRetired) == 0 {
		t.Fatal("no instructions simulated")
	}
}

func TestServerEndToEndSV(t *testing.T) {
	s, _ := runServer(t, machine.TwoCPm, workload.SV, 40)
	if s.Stats.ValidationOK == 0 {
		t.Fatal("no messages validated")
	}
	if s.Stats.ParseErrors != 0 {
		t.Fatalf("parse errors: %d", s.Stats.ParseErrors)
	}
}

func TestServerUsesAllCPUs(t *testing.T) {
	_, m := runServer(t, machine.TwoPPx, workload.SV, 60)
	for i, lc := range m.LCPUs {
		if lc.Busy() == 0 {
			t.Fatalf("logical CPU %d never executed", i)
		}
	}
}

func TestUseCaseCostOrdering(t *testing.T) {
	// Per-message instruction cost must grow FR < CBR <= SV, the premise
	// of the paper's workload spectrum (Figure 1).
	cost := map[workload.UseCase]float64{}
	for _, uc := range workload.AllUseCases {
		s, m := runServer(t, machine.OneCPm, uc, 30)
		sys := m.SystemCounters()
		cost[uc] = float64(sys.Get(counters.InstrRetired)) / float64(s.Stats.Messages)
	}
	if !(cost[workload.FR] < cost[workload.CBR]) {
		t.Fatalf("FR (%.0f) not cheaper than CBR (%.0f)", cost[workload.FR], cost[workload.CBR])
	}
	if !(cost[workload.CBR] <= cost[workload.SV]*1.05) {
		t.Fatalf("CBR (%.0f) above SV (%.0f)", cost[workload.CBR], cost[workload.SV])
	}
}

func TestDualCoreOutperformsSingle(t *testing.T) {
	// The headline claim: two processing units beat one for CPU-bound
	// AON work.
	_, m1 := runServer(t, machine.OneCPm, workload.SV, 60)
	_, m2 := runServer(t, machine.TwoCPm, workload.SV, 60)
	t1 := m1.Seconds(m1.MaxNow())
	t2 := m2.Seconds(m2.MaxNow())
	if t2 >= t1 {
		t.Fatalf("dual core not faster: %.2fms vs %.2fms", t2*1e3, t1*1e3)
	}
}

func TestWorkerCountOverride(t *testing.T) {
	m := machine.New(machine.TwoCPm, machine.Options{})
	e := sched.NewEngine(m)
	nic := netsim.NewNIC(e, e.Space.NewProcess(), netsim.NewLink(m, 1e9), netsim.NewLink(m, 1e9))
	s, err := New(e, nic, Config{UseCase: workload.FR, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Cfg.Workers != 1 {
		t.Fatal("worker override ignored")
	}
}
