package aon

import (
	"repro/internal/netsim"
	"repro/internal/workload"
)

// Client is the load generator: it plays the role of the paper's test
// harness machine, injecting HTTP POST requests over the receive link as
// fast as the window allows. It consumes no CPU on the system under test —
// only link bandwidth, DMA and softirq work, as a real external client
// would.
type Client struct {
	S      *Server
	UC     workload.UseCase
	Window int // closed-loop limit on undelivered + queued messages

	pool     [][]byte // pre-built distinct requests, cycled
	next     int
	inflight int
	waiting  bool

	Sent uint64 // messages injected
}

// PoolSize is how many distinct request bodies circulate; large enough to
// defeat trivial content memoization, small enough to build quickly.
const PoolSize = 48

// NewClient builds a load generator for a server.
func NewClient(s *Server, uc workload.UseCase, window int) *Client {
	if window <= 0 {
		window = 32
	}
	c := &Client{S: s, UC: uc, Window: window}
	c.pool = make([][]byte, PoolSize)
	for i := range c.pool {
		c.pool[i] = workload.HTTPRequest(i, uc)
	}
	return c
}

// Start begins injecting at simulation time zero.
func (c *Client) Start() { c.pump(0) }

// pump keeps the window full, re-arming itself on queue drain.
func (c *Client) pump(now float64) {
	for c.inflight+c.S.Accept.Len() < c.Window {
		payload := c.pool[c.next%len(c.pool)]
		c.next++
		c.inflight++
		c.Sent++
		last := c.S.NIC.InjectMessage(now, netsim.Chunk{
			Bytes: len(payload),
			Data:  payload,
		}, func(t float64, m netsim.Chunk) {
			c.inflight--
			c.S.Deliver(t, m)
		})
		// Subsequent messages queue behind this one on the wire.
		now = last
	}
	if !c.waiting {
		c.waiting = true
		c.S.Accept.NotFull.OnSignal(func(t float64) {
			c.waiting = false
			c.pump(t)
		})
	}
}
