// Package aon is the paper's primary subject: the XML server application —
// an HTTP proxy with message-level XML functions layered on top, run as
// one worker thread per logical CPU (Section 3.2.1). It supports the three
// use cases the paper characterizes:
//
//   - FR  (Forward Request): parse the HTTP POST, rewrite the target, and
//     forward — the network-I/O-intensive baseline.
//   - CBR (Content-Based Routing): additionally parse the XML body and
//     evaluate the XPath //quantity/text(); route to the order endpoint if
//     it equals "1", to the error endpoint otherwise.
//   - SV  (Schema Validation): validate the body against the pre-stored
//     purchase-order schema and route on the verdict — the CPU-intensive
//     extreme.
//
// Every processing stage is real code (HTTP parsing, DOM construction,
// XPath evaluation, XSD validation) instrumented to emit the micro-op
// stream that drives the simulated machine.
package aon

import (
	"encoding/hex"
	"fmt"

	"repro/internal/dpi"
	"repro/internal/httpmsg"
	"repro/internal/netsim"
	"repro/internal/perf/trace"
	"repro/internal/sim/sched"
	"repro/internal/wcrypto"
	"repro/internal/workload"
	"repro/internal/xmldom"
	"repro/internal/xpath"
	"repro/internal/xsd"
)

// RouteExprSource is the paper's CBR lookup expression.
const RouteExprSource = "//quantity/text()"

// RouteMatchValue is the routing condition: forward to the intended
// endpoint when the expression's string-value equals this.
const RouteMatchValue = "1"

// Config parameterizes a server instance.
type Config struct {
	UseCase workload.UseCase
	// Workers is the number of worker threads; the paper keeps it equal
	// to the number of logical CPUs (0 = auto).
	Workers int
	// Expr overrides the CBR XPath (default RouteExprSource).
	Expr string
	// Schema overrides the SV schema (default the AONBench order schema).
	Schema *xsd.Schema
}

// Stats aggregates server-side outcomes.
type Stats struct {
	Messages     uint64 // messages fully processed and forwarded
	BytesIn      uint64 // HTTP payload bytes received
	BytesOut     uint64 // bytes forwarded
	RoutedMatch  uint64 // CBR: matched the routing condition
	RoutedError  uint64 // CBR/SV/DPI/AUTH: sent to the error endpoint
	ParseErrors  uint64 // malformed HTTP/XML
	ValidationOK uint64 // SV: schema-valid messages
	CleanDPI     uint64 // DPI: messages with no signature hit
	AuthOK       uint64 // AUTH: messages with a valid MAC
}

// Server is one simulated AON device instance.
type Server struct {
	E   *sched.Engine
	NIC *netsim.NIC
	Cfg Config

	Accept *netsim.SockBuf // assembled request queue feeding the workers
	Stats  Stats

	expr   *xpath.Expr
	schema *xsd.Schema

	// kernMeta is the kernel's socket/fd/epoll metadata region. It is one
	// shared region — there is one kernel — sized at L2 scale: resident on
	// the 2 MB Pentium M L2, contended on the 1 MB Xeon L2. Workers walk
	// it from per-thread offsets.
	kernMeta *trace.Arena

	// matcher is the DPI signature automaton (extension use case); its
	// transition table lives in the simulated process space so scans
	// exercise the caches.
	matcher *dpi.Matcher

	// Per-message kernel cost knobs; see costs.go.
	costs Costs
}

// New builds a server wired to an engine and NIC. The caller spawns the
// threads via SpawnThreads, which binds one worker per logical CPU and the
// softirq thread to CPU0.
func New(e *sched.Engine, nic *netsim.NIC, cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = e.CPUs()
	}
	exprSrc := cfg.Expr
	if exprSrc == "" {
		exprSrc = RouteExprSource
	}
	expr, err := xpath.Compile(exprSrc)
	if err != nil {
		return nil, fmt.Errorf("aon: bad routing expression: %w", err)
	}
	schema := cfg.Schema
	if schema == nil {
		schema = workload.OrderSchema()
	}
	matcher := dpi.MustNewMatcher(dpi.DefaultSignatures)
	return &Server{
		E:        e,
		NIC:      nic,
		Cfg:      cfg,
		Accept:   netsim.NewSockBuf(0),
		expr:     expr,
		schema:   schema,
		kernMeta: trace.SubArena(nic.KernSpace, 1<<20),
		matcher:  matcher,
		costs:    DefaultCosts,
	}, nil
}

// init placement for the DPI automaton happens lazily when the first
// worker is built (the engine's address space assigns it a region).

// Deliver is the NIC reassembly callback: a complete request enters the
// accept queue.
func (s *Server) Deliver(now float64, msg netsim.Chunk) {
	s.Accept.Push(msg, now)
}

// SpawnThreads starts the softirq thread on CPU0 and one worker per
// logical CPU.
func (s *Server) SpawnThreads() {
	irq := s.E.Spawn("softirq", 0, sched.KernelProcessID, 0, s.NIC.SoftirqProc())
	irq.Priority = 10
	for w := 0; w < s.Cfg.Workers; w++ {
		cpu := w % s.E.CPUs()
		s.E.Spawn(fmt.Sprintf("worker-%d", w), cpu, 1, 0, s.newWorker(w))
	}
}

// worker holds one worker thread's state: its arenas model the thread's
// slice of the process address space.
type worker struct {
	s *Server
	// userArena rotates receive buffers: each message lands in fresh
	// virtual addresses, like a buffer pool cycling through a large heap.
	userArena *trace.Arena
	// domArena is the recycled per-request DOM/scratch heap — reset every
	// message, giving the CPU-intensive use cases the temporal locality
	// the paper observes ("improved temporal locality of data, which
	// undergo XML content based processing", Section 6).
	domArena *trace.Arena
	// txArena is this worker's per-CPU sk_buff slab for the transmit path.
	txArena *trace.Arena
	metaOff int
	dpiBase uint64
	buf     *trace.Buffer
}

func (s *Server) newWorker(idx int) sched.Proc {
	proc := s.E.Space.NewProcess()
	w := &worker{
		s:         s,
		userArena: trace.SubArena(proc, 2<<20),
		domArena:  trace.SubArena(proc, 512<<10),
		txArena:   trace.SubArena(nicKernSpace(s), 256<<10),
		metaOff:   idx * 24683 * 7,
		buf:       trace.NewBuffer(1 << 15),
	}
	return sched.ProcFunc(w.step)
}

// step processes one complete request per scheduling quantum.
func (w *worker) step(ctx *sched.Ctx) sched.Status {
	s := w.s
	msg, ok := s.Accept.Pop(ctx.Now())
	if !ok {
		return sched.StatusWait(&s.Accept.NotEmpty)
	}

	em := w.buf
	// 1. Connection handling (accept/epoll/fd bookkeeping), then recvmsg:
	// syscall overhead plus the kernel-to-user copy.
	em.Reset()
	userAddr := w.userArena.Alloc(uint64(msg.Bytes))
	netsim.EmitSyscall(em, w.metaAddr(), s.costs.Connection)
	netsim.EmitSyscall(em, w.metaAddr(), s.costs.RecvSyscall)
	netsim.EmitCopy(em, userAddr, msg.Addr, msg.Bytes)
	ctx.ExecBuffer(em)

	// 2. HTTP parsing (real + instrumented).
	em.Reset()
	req, err := httpmsg.ParseRequestInstrumented(msg.Data, em, userAddr)
	ctx.ExecBuffer(em)
	if err != nil {
		s.Stats.ParseErrors++
		return sched.StatusYield()
	}
	s.Stats.BytesIn += uint64(msg.Bytes)
	bodyAddr := userAddr + uint64(msg.Bytes-len(req.Body))

	// 3. Use-case processing.
	routeOK := true
	switch s.Cfg.UseCase {
	case workload.FR:
		// Forwarding only: target rewrite.
		em.Reset()
		httpmsg.RewriteTarget(req, em)
		ctx.ExecBuffer(em)
	case workload.CBR:
		routeOK = w.contentRoute(ctx, req.Body, bodyAddr)
	case workload.SV:
		routeOK = w.validate(ctx, req.Body, bodyAddr)
	case workload.DPI:
		routeOK = w.inspect(ctx, req.Body, bodyAddr)
	case workload.AUTH:
		routeOK = w.authenticate(ctx, req, bodyAddr)
	}
	if routeOK {
		switch s.Cfg.UseCase {
		case workload.SV:
			s.Stats.ValidationOK++
		case workload.CBR:
			s.Stats.RoutedMatch++
		case workload.DPI:
			s.Stats.CleanDPI++
		case workload.AUTH:
			s.Stats.AuthOK++
		}
	} else {
		s.Stats.RoutedError++
	}

	// 4. Forward to the selected endpoint: sendmsg syscall, then the
	// transmit path (headers, copy, DMA, wire).
	em.Reset()
	netsim.EmitSyscall(em, w.metaAddr(), s.costs.SendSyscall)
	ctx.ExecBuffer(em)
	em.Reset()
	s.NIC.Transmit(ctx, em, w.txArena, userAddr, msg.Bytes)

	s.Stats.Messages++
	s.Stats.BytesOut += uint64(msg.Bytes)
	return sched.StatusYield()
}

// nicKernSpace returns the kernel arena TX slabs are carved from.
func nicKernSpace(s *Server) *trace.Arena { return s.NIC.KernSpace }

// metaAddr walks the shared kernel metadata region with a large stride so
// successive syscalls touch different structures.
func (w *worker) metaAddr() uint64 {
	w.metaOff = (w.metaOff + 24683) % (1<<20 - 192*4096)
	return w.s.kernMeta.Base() + uint64(w.metaOff)&^63
}

// contentRoute runs the CBR pipeline: parse the body, evaluate the XPath,
// compare against the routing value.
func (w *worker) contentRoute(ctx *sched.Ctx, body []byte, bodyAddr uint64) bool {
	s := w.s
	w.domArena.Reset()
	em := w.buf
	em.Reset()
	doc, err := xmldom.ParseInstrumented(body, em, bodyAddr, w.domArena)
	if err != nil {
		ctx.ExecBuffer(em)
		s.Stats.ParseErrors++
		return false
	}
	ev := xpath.NewEvaluator(em)
	val, err := ev.EvalString(s.expr, doc)
	ctx.ExecBuffer(em)
	if err != nil {
		s.Stats.ParseErrors++
		return false
	}
	return val == RouteMatchValue
}

// validate runs the SV pipeline: parse the body, validate against the
// schema.
func (w *worker) validate(ctx *sched.Ctx, body []byte, bodyAddr uint64) bool {
	s := w.s
	w.domArena.Reset()
	em := w.buf
	em.Reset()
	doc, err := xmldom.ParseInstrumented(body, em, bodyAddr, w.domArena)
	if err != nil {
		ctx.ExecBuffer(em)
		s.Stats.ParseErrors++
		return false
	}
	v := xsd.NewValidator(s.schema, em)
	ok := v.Valid(doc)
	ctx.ExecBuffer(em)
	return ok
}

// inspect runs the DPI pipeline (extension use case): scan the payload
// against the signature automaton; a clean message routes forward, a hit
// routes to the quarantine endpoint.
func (w *worker) inspect(ctx *sched.Ctx, body []byte, bodyAddr uint64) bool {
	s := w.s
	if w.dpiBase == 0 {
		w.dpiBase = w.domArena.Base() // table aliases the scratch heap region
		s.matcher.SetSimBase(w.dpiBase)
	}
	em := w.buf
	em.Reset()
	matches := s.matcher.ScanInstrumented(body, em, bodyAddr)
	ctx.ExecBuffer(em)
	return len(matches) == 0
}

// authenticate runs the AUTH pipeline (extension use case): HMAC-SHA1 the
// payload with the device key and compare against the X-AON-MAC header.
func (w *worker) authenticate(ctx *sched.Ctx, req *httpmsg.Request, bodyAddr uint64) bool {
	s := w.s
	claimed, ok := req.Get("X-AON-MAC")
	if !ok {
		return false
	}
	em := w.buf
	em.Reset()
	mac := wcrypto.HMAC(workload.AuthKey, req.Body, em, bodyAddr)
	ctx.ExecBuffer(em)
	want, err := hex.DecodeString(claimed)
	if err != nil || len(want) != len(mac) {
		s.Stats.ParseErrors++
		return false
	}
	equal := true
	for i := range mac {
		if mac[i] != want[i] {
			equal = false
		}
	}
	return equal
}

// ProcessOne runs the full use-case pipeline on raw request bytes without
// a simulation engine — the plain-library entry point used by examples and
// functional tests. It returns whether the message was routed to the
// intended endpoint.
func ProcessOne(uc workload.UseCase, raw []byte) (bool, error) {
	req, err := httpmsg.ParseRequest(raw)
	if err != nil {
		return false, err
	}
	switch uc {
	case workload.FR:
		return true, nil
	case workload.CBR:
		doc, err := xmldom.Parse(req.Body)
		if err != nil {
			return false, err
		}
		val, err := xpath.NewEvaluator(nil).EvalString(xpath.MustCompile(RouteExprSource), doc)
		if err != nil {
			return false, err
		}
		return val == RouteMatchValue, nil
	case workload.SV:
		doc, err := xmldom.Parse(req.Body)
		if err != nil {
			return false, err
		}
		return len(xsd.Validate(workload.OrderSchema(), doc)) == 0, nil
	case workload.DPI:
		return !dpi.MustNewMatcher(dpi.DefaultSignatures).Contains(req.Body), nil
	case workload.AUTH:
		claimed, ok := req.Get("X-AON-MAC")
		if !ok {
			return false, fmt.Errorf("aon: missing X-AON-MAC header")
		}
		mac := wcrypto.HMAC(workload.AuthKey, req.Body, nil, 0)
		return hex.EncodeToString(mac[:]) == claimed, nil
	}
	return false, fmt.Errorf("aon: unknown use case %v", uc)
}
