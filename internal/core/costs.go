package aon

// Costs are the per-message kernel-path costs in abstract instructions.
// They model the socket/syscall work a 2007-era Linux 2.6 network stack
// performs around the application-visible processing, and they are the
// main calibration surface for the absolute throughput of the FR use case
// (which is nothing but this overhead plus two copies).
type Costs struct {
	// Connection is the per-request connection-handling path: accept or
	// keep-alive dispatch, epoll bookkeeping, fd table, timers.
	Connection int
	// RecvSyscall is the recvmsg path per message.
	RecvSyscall int
	// SendSyscall is the sendmsg path per message (excluding per-segment
	// work, which netsim charges separately).
	SendSyscall int
}

// DefaultCosts reflect a 2007-era HTTP proxy on a 2.6 kernel: tens of
// thousands of instructions of socket, epoll and proxy bookkeeping per
// proxied request. They are calibrated so the FR use case lands below the
// gigabit ingress on one Pentium M core with roughly the headroom Figure 3
// implies (2CPm FR saturates the wire at a 1.5x scaling).
var DefaultCosts = Costs{
	Connection:  19000,
	RecvSyscall: 16000,
	SendSyscall: 14000,
}
