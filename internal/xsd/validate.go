package xsd

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/perf/trace"
	"repro/internal/xmldom"
)

// ValidationError reports one schema violation.
type ValidationError struct {
	Path string
	Msg  string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("xsd: %s: %s", e.Path, e.Msg)
}

// Validator validates instance documents against a schema, optionally
// emitting the micro-op stream of the equivalent compiled validator. The
// content-model automaton branches on incoming element names — actual
// data-dependent outcomes — so validation is the branchiest, least
// predictable kernel in the workload suite, matching the paper's
// observation that SV shows the highest misprediction ratios (Table 6).
type Validator struct {
	s  *Schema
	em trace.Emitter

	errs []*ValidationError
}

var (
	valCode     = trace.NewCodeRegion(4096)
	pcElemMatch = valCode.Site()
	pcOccurs    = valCode.Site()
	pcChoice    = valCode.Site()
	pcAttrReq   = valCode.Site()
	pcFacet     = valCode.Site()
	pcCharScan  = valCode.Site()
	pcMixed     = valCode.Site()
)

// NewValidator builds a validator for a schema; em may be nil for plain
// library use.
func NewValidator(s *Schema, em trace.Emitter) *Validator {
	if em == nil {
		em = trace.Nop{}
	}
	return &Validator{s: s, em: em}
}

// Validate checks an instance document (or element) against the schema's
// global element declarations. It returns all violations found (nil means
// valid).
func Validate(s *Schema, doc *xmldom.Node) []*ValidationError {
	return NewValidator(s, nil).Validate(doc)
}

// Validate checks an instance document, returning all violations.
func (v *Validator) Validate(doc *xmldom.Node) []*ValidationError {
	v.errs = nil
	root := doc
	if doc.Kind == xmldom.Document {
		root = doc.DocumentElement()
	}
	if root == nil {
		v.fail("/", "empty document")
		return v.errs
	}
	decl := v.s.Elements[root.Local]
	v.emitNameLookup(root.Local, decl != nil)
	if decl == nil {
		v.fail("/"+root.Local, "no global declaration for element")
		return v.errs
	}
	v.validateElement(decl, root, "/"+root.Local)
	return v.errs
}

// Valid is a convenience wrapper returning a single verdict.
func (v *Validator) Valid(doc *xmldom.Node) bool {
	return len(v.Validate(doc)) == 0
}

func (v *Validator) fail(path, format string, args ...any) {
	v.errs = append(v.errs, &ValidationError{Path: path, Msg: fmt.Sprintf(format, args...)})
}

// probe runs fn speculatively: errors recorded inside are discarded and no
// micro-ops are emitted. Deterministic XSD content models make lookahead
// cheap; the compiled validator's dispatch cost is modeled by the loud
// branch the caller emits on the probe's verdict.
func (v *Validator) probe(fn func() int) int {
	savedEm := v.em
	savedLen := len(v.errs)
	v.em = trace.Nop{}
	n := fn()
	v.em = savedEm
	v.errs = v.errs[:savedLen]
	return n
}

func (v *Validator) probeParticle(p *Particle, kids []*xmldom.Node, pos int, path string) int {
	return v.probe(func() int { return v.matchParticle(p, kids, pos, path) })
}

func (v *Validator) probeOnce(p *Particle, kids []*xmldom.Node, pos int, path string) int {
	return v.probe(func() int { return v.matchOnce(p, kids, pos, path, false) })
}

func (v *Validator) validateElement(decl *ElementDecl, el *xmldom.Node, path string) {
	v.em.Load(el.SimAddr, 3)
	v.em.ALU(40) // declaration lookup, occurrence bookkeeping
	switch {
	case decl.Type != nil:
		v.validateComplex(decl.Type, el, path)
	case decl.Simple != nil:
		text := el.TextContent()
		if kids := el.ChildElements(""); len(kids) > 0 {
			v.fail(path, "element children not allowed in simple type %s", decl.Simple.Base)
			return
		}
		v.checkSimple(decl.Simple, text, path)
	}
}

func (v *Validator) validateComplex(ct *ComplexType, el *xmldom.Node, path string) {
	// Attributes.
	for _, ad := range ct.Attrs {
		val, present := el.Attr(ad.Name)
		v.em.ALU(4 + len(ad.Name)/2)
		v.em.Branch(pcAttrReq, present)
		if !present {
			if ad.Required {
				v.fail(path, "missing required attribute %q", ad.Name)
			}
			continue
		}
		v.checkSimple(ad.Type, val, path+"/@"+ad.Name)
	}
	// Unexpected attributes (xmlns declarations are tolerated).
	for _, a := range el.Attrs {
		if strings.HasPrefix(a.Name, "xmlns") || strings.Contains(a.Name, ":") {
			continue
		}
		known := false
		for _, ad := range ct.Attrs {
			if ad.Name == a.Name {
				known = true
				break
			}
		}
		v.em.Branch(pcAttrReq, known)
		if !known {
			v.fail(path, "undeclared attribute %q", a.Name)
		}
	}

	kids := el.ChildElements("")
	// Non-whitespace text inside element-only content.
	if !ct.Mixed {
		for _, c := range el.Children {
			if c.Kind == xmldom.Text {
				ws := strings.TrimSpace(c.Data) == ""
				v.emitCharScan(c.Data)
				v.em.Branch(pcMixed, ws)
				if !ws {
					v.fail(path, "character content not allowed in element-only type")
					break
				}
			}
		}
	}

	if ct.Content == nil {
		if len(kids) > 0 && !ct.Mixed {
			v.fail(path, "no children allowed, found <%s>", kids[0].Local)
		}
		return
	}

	pos := 0
	n := v.matchParticle(ct.Content, kids, 0, path)
	if n < 0 {
		return // error already recorded
	}
	pos = n
	if pos < len(kids) {
		v.fail(path, "unexpected element <%s>", kids[pos].Local)
	}
}

// matchParticle consumes children of kids starting at pos according to the
// particle, returning the new position or -1 after recording an error.
func (v *Validator) matchParticle(p *Particle, kids []*xmldom.Node, pos int, path string) int {
	occurs := 0
	for {
		v.em.ALU(3)
		required := occurs < p.MinOccurs
		if !required {
			// Optional occurrence: look ahead quietly so a non-match
			// leaves no spurious errors.
			if v.probeOnce(p, kids, pos, path) < 0 {
				v.em.Branch(pcOccurs, false)
				return pos
			}
		}
		next := v.matchOnce(p, kids, pos, path, required)
		progressed := next > pos
		v.em.Branch(pcOccurs, progressed)
		if next < 0 {
			if occurs >= p.MinOccurs {
				return pos // optional tail not present
			}
			return -1
		}
		if !progressed && p.Kind != PElement {
			// Group matched emptily (all-optional children): count one
			// occurrence and stop to avoid spinning.
			occurs++
			if occurs >= p.MinOccurs {
				return next
			}
			return next
		}
		pos = next
		occurs++
		if p.MaxOccurs >= 0 && occurs >= p.MaxOccurs {
			return pos
		}
		if pos >= len(kids) {
			if occurs < p.MinOccurs {
				v.fail(path, "%s requires at least %d occurrences, found %d", p.Kind, p.MinOccurs, occurs)
				return -1
			}
			return pos
		}
	}
}

// matchOnce tries to match one occurrence of p at pos. Returns the new
// position, or -1 if it does not match (recording an error only when
// required is true).
func (v *Validator) matchOnce(p *Particle, kids []*xmldom.Node, pos int, path string, required bool) int {
	switch p.Kind {
	case PElement:
		if pos >= len(kids) {
			if required {
				v.fail(path, "missing required element <%s>", p.Elem.Name)
			}
			return -1
		}
		match := kids[pos].Local == p.Elem.Name
		v.emitNameCompare(kids[pos].Local, p.Elem.Name, match)
		if !match {
			if required {
				v.fail(path, "expected <%s>, found <%s>", p.Elem.Name, kids[pos].Local)
			}
			return -1
		}
		v.validateElement(p.Elem, kids[pos], path+"/"+kids[pos].Local)
		return pos + 1
	case PSequence:
		cur := pos
		for _, c := range p.Children {
			next := v.matchParticle(c, kids, cur, path)
			if next < 0 {
				if required {
					return -1
				}
				// Distinguish "matched nothing at all" from a partial
				// match: a partial match of a required sequence is an
				// error either way; we already recorded it.
				return -1
			}
			cur = next
		}
		return cur
	case PChoice:
		for _, c := range p.Children {
			n := v.probeParticle(c, kids, pos, path)
			ok := n > pos
			v.em.Branch(pcChoice, ok)
			if ok {
				return v.matchParticle(c, kids, pos, path)
			}
		}
		// Allow an all-optional branch to satisfy the choice emptily.
		for _, c := range p.Children {
			if v.probeParticle(c, kids, pos, path) == pos {
				return pos
			}
		}
		if required {
			v.fail(path, "no branch of choice matched at <%s>", kidName(kids, pos))
		}
		return -1
	case PAll:
		used := make([]bool, len(p.Children))
		cur := pos
		for cur < len(kids) {
			matched := false
			for i, c := range p.Children {
				if used[i] || c.Kind != PElement {
					continue
				}
				ok := kids[cur].Local == c.Elem.Name
				v.emitNameCompare(kids[cur].Local, c.Elem.Name, ok)
				if ok {
					v.validateElement(c.Elem, kids[cur], path+"/"+kids[cur].Local)
					used[i] = true
					cur++
					matched = true
					break
				}
			}
			if !matched {
				break
			}
		}
		for i, c := range p.Children {
			if !used[i] && c.MinOccurs > 0 {
				if required {
					v.fail(path, "missing required element <%s> in all-group", c.Elem.Name)
					return -1
				}
				return -1
			}
		}
		return cur
	}
	return -1
}

func minOccursOf(p *Particle) int { return p.MinOccurs }

func kidName(kids []*xmldom.Node, pos int) string {
	if pos < len(kids) {
		return kids[pos].Local
	}
	return "(end)"
}

// checkSimple validates text against a simple type, scanning the
// characters the way a compiled validator would.
func (v *Validator) checkSimple(st *SimpleType, text, path string) {
	v.emitCharScan(text)
	val := strings.TrimSpace(text)
	switch st.Base {
	case TString:
		// always lexically valid
	case TToken:
		if val != strings.Join(strings.Fields(val), " ") {
			v.fail(path, "not a valid token: %q", text)
		}
	case TInt:
		if _, err := strconv.ParseInt(val, 10, 64); err != nil {
			v.fail(path, "not a valid integer: %q", val)
			v.em.Branch(pcFacet, false)
			return
		}
	case TPositiveInt:
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n <= 0 {
			v.fail(path, "not a positive integer: %q", val)
			v.em.Branch(pcFacet, false)
			return
		}
	case TDecimal:
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			v.fail(path, "not a valid decimal: %q", val)
			v.em.Branch(pcFacet, false)
			return
		}
	case TBoolean:
		if val != "true" && val != "false" && val != "0" && val != "1" {
			v.fail(path, "not a valid boolean: %q", val)
			v.em.Branch(pcFacet, false)
			return
		}
	case TDate:
		if !isDate(val) {
			v.fail(path, "not a valid date: %q", val)
			v.em.Branch(pcFacet, false)
			return
		}
	}
	v.em.Branch(pcFacet, true)

	if len(st.Enumeration) > 0 {
		found := false
		for _, e := range st.Enumeration {
			ok := e == val
			v.emitNameCompare(val, e, ok)
			if ok {
				found = true
				break
			}
		}
		if !found {
			v.fail(path, "value %q not in enumeration", val)
		}
	}
	if st.MinLength > 0 && len(val) < st.MinLength {
		v.fail(path, "length %d below minLength %d", len(val), st.MinLength)
	}
	if st.MaxLength > 0 && len(val) > st.MaxLength {
		v.fail(path, "length %d above maxLength %d", len(val), st.MaxLength)
	}
	if st.MinSet || st.MaxSet {
		f, err := strconv.ParseFloat(val, 64)
		if err == nil {
			if st.MinSet && f < st.Min {
				v.fail(path, "value %v below minInclusive %v", f, st.Min)
			}
			if st.MaxSet && f > st.Max {
				v.fail(path, "value %v above maxInclusive %v", f, st.Max)
			}
		}
	}
}

func isDate(s string) bool {
	// YYYY-MM-DD
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return false
	}
	for i, c := range s {
		if i == 4 || i == 7 {
			continue
		}
		if c < '0' || c > '9' {
			return false
		}
	}
	m := (s[5]-'0')*10 + (s[6] - '0')
	d := (s[8]-'0')*10 + (s[9] - '0')
	return m >= 1 && m <= 12 && d >= 1 && d <= 31
}

// ---- instrumentation helpers ----

func (v *Validator) emitNameLookup(name string, hit bool) {
	v.em.ALU(6 + len(name))
	v.em.Branch(pcElemMatch, hit)
}

func (v *Validator) emitNameCompare(a, b string, match bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	v.em.ALU(2 + n/4)
	v.em.Branch(pcElemMatch, match)
}

func (v *Validator) emitCharScan(s string) {
	words := (len(s) + trace.WordBytes - 1) / trace.WordBytes
	for w := 0; w < words; w++ {
		v.em.ALU(10) // lexical-space checks, whitespace facets
		if w%2 == 0 {
			v.em.Branch(pcCharScan, w+2 < words)
		}
	}
	v.em.ALU(len(s) % trace.WordBytes)
}
