package xsd

import (
	"strings"
	"testing"

	"repro/internal/perf/trace"
	"repro/internal/xmldom"
)

const orderSchema = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:simpleType name="skuType">
    <xs:restriction base="xs:string">
      <xs:minLength value="2"/>
      <xs:maxLength value="8"/>
    </xs:restriction>
  </xs:simpleType>
  <xs:complexType name="itemType">
    <xs:sequence>
      <xs:element name="quantity" type="xs:positiveInteger"/>
      <xs:element name="price" type="xs:decimal"/>
      <xs:element name="note" type="xs:string" minOccurs="0"/>
    </xs:sequence>
    <xs:attribute name="sku" type="skuType" use="required"/>
  </xs:complexType>
  <xs:element name="purchaseOrder">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="customer" type="xs:string"/>
        <xs:element name="date" type="xs:date" minOccurs="0"/>
        <xs:element name="item" type="itemType" maxOccurs="unbounded"/>
        <xs:choice minOccurs="0">
          <xs:element name="express" type="xs:boolean"/>
          <xs:element name="carrier" type="xs:string"/>
        </xs:choice>
      </xs:sequence>
      <xs:attribute name="id" type="xs:string" use="required"/>
    </xs:complexType>
  </xs:element>
</xs:schema>`

const validOrder = `<purchaseOrder id="po-1">
  <customer>ACME Corp</customer>
  <date>2007-03-14</date>
  <item sku="A1X"><quantity>1</quantity><price>10.50</price></item>
  <item sku="B22"><quantity>3</quantity><price>2</price><note>gift</note></item>
  <express>true</express>
</purchaseOrder>`

func compile(t *testing.T) *Schema {
	t.Helper()
	s, err := ParseSchema([]byte(orderSchema))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func parseDoc(t *testing.T, src string) *xmldom.Node {
	t.Helper()
	d, err := xmldom.Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestValidDocument(t *testing.T) {
	s := compile(t)
	errs := Validate(s, parseDoc(t, validOrder))
	if len(errs) != 0 {
		t.Fatalf("valid document rejected: %v", errs[0])
	}
}

func TestInvalidDocuments(t *testing.T) {
	s := compile(t)
	cases := []struct {
		name, doc, wantSub string
	}{
		{"unknown root", `<other/>`, "no global declaration"},
		{"missing required attr", `<purchaseOrder><customer>c</customer><item sku="AB"><quantity>1</quantity><price>1</price></item></purchaseOrder>`, "missing required attribute"},
		{"missing required child", `<purchaseOrder id="1"><item sku="AB"><quantity>1</quantity><price>1</price></item></purchaseOrder>`, "expected <customer>"},
		{"bad integer", `<purchaseOrder id="1"><customer>c</customer><item sku="AB"><quantity>zero</quantity><price>1</price></item></purchaseOrder>`, "not a positive integer"},
		{"negative quantity", `<purchaseOrder id="1"><customer>c</customer><item sku="AB"><quantity>-2</quantity><price>1</price></item></purchaseOrder>`, "not a positive integer"},
		{"bad decimal", `<purchaseOrder id="1"><customer>c</customer><item sku="AB"><quantity>1</quantity><price>abc</price></item></purchaseOrder>`, "not a valid decimal"},
		{"bad date", `<purchaseOrder id="1"><customer>c</customer><date>14-03-2007</date><item sku="AB"><quantity>1</quantity><price>1</price></item></purchaseOrder>`, "not a valid date"},
		{"sku too short", `<purchaseOrder id="1"><customer>c</customer><item sku="A"><quantity>1</quantity><price>1</price></item></purchaseOrder>`, "minLength"},
		{"sku too long", `<purchaseOrder id="1"><customer>c</customer><item sku="ABCDEFGHIJ"><quantity>1</quantity><price>1</price></item></purchaseOrder>`, "maxLength"},
		{"wrong order", `<purchaseOrder id="1"><customer>c</customer><item sku="AB"><price>1</price><quantity>1</quantity></item></purchaseOrder>`, "expected <quantity>"},
		{"unexpected element", `<purchaseOrder id="1"><customer>c</customer><item sku="AB"><quantity>1</quantity><price>1</price></item><bogus/></purchaseOrder>`, "unexpected element"},
		{"no items", `<purchaseOrder id="1"><customer>c</customer></purchaseOrder>`, "missing required element <item>"},
		{"bad boolean", `<purchaseOrder id="1"><customer>c</customer><item sku="AB"><quantity>1</quantity><price>1</price></item><express>yes</express></purchaseOrder>`, "not a valid boolean"},
		{"undeclared attribute", `<purchaseOrder id="1" color="red"><customer>c</customer><item sku="AB"><quantity>1</quantity><price>1</price></item></purchaseOrder>`, "undeclared attribute"},
		{"text in element-only", `<purchaseOrder id="1">stray<customer>c</customer><item sku="AB"><quantity>1</quantity><price>1</price></item></purchaseOrder>`, "character content"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			errs := Validate(s, parseDoc(t, c.doc))
			if len(errs) == 0 {
				t.Fatalf("accepted invalid document")
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), c.wantSub) {
					found = true
				}
			}
			if !found {
				t.Fatalf("errors %v do not mention %q", errs, c.wantSub)
			}
		})
	}
}

func TestChoiceBranches(t *testing.T) {
	s := compile(t)
	carrier := `<purchaseOrder id="1"><customer>c</customer><item sku="AB"><quantity>1</quantity><price>1</price></item><carrier>UPS</carrier></purchaseOrder>`
	if errs := Validate(s, parseDoc(t, carrier)); len(errs) != 0 {
		t.Fatalf("carrier branch rejected: %v", errs[0])
	}
	none := `<purchaseOrder id="1"><customer>c</customer><item sku="AB"><quantity>1</quantity><price>1</price></item></purchaseOrder>`
	if errs := Validate(s, parseDoc(t, none)); len(errs) != 0 {
		t.Fatalf("optional choice omitted but rejected: %v", errs[0])
	}
}

func TestUnboundedOccurs(t *testing.T) {
	s := compile(t)
	var b strings.Builder
	b.WriteString(`<purchaseOrder id="1"><customer>c</customer>`)
	for i := 0; i < 50; i++ {
		b.WriteString(`<item sku="AB"><quantity>1</quantity><price>1</price></item>`)
	}
	b.WriteString(`</purchaseOrder>`)
	if errs := Validate(s, parseDoc(t, b.String())); len(errs) != 0 {
		t.Fatalf("unbounded occurrence rejected: %v", errs[0])
	}
}

func TestAllGroup(t *testing.T) {
	schema := MustParseSchema(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="cfg">
	    <xs:complexType>
	      <xs:all>
	        <xs:element name="a" type="xs:string"/>
	        <xs:element name="b" type="xs:int"/>
	        <xs:element name="c" type="xs:string" minOccurs="0"/>
	      </xs:all>
	    </xs:complexType>
	  </xs:element>
	</xs:schema>`)
	ok := []string{
		`<cfg><a>x</a><b>1</b></cfg>`,
		`<cfg><b>1</b><a>x</a></cfg>`,
		`<cfg><c>y</c><a>x</a><b>1</b></cfg>`,
	}
	for _, doc := range ok {
		if errs := Validate(schema, parseDoc(t, doc)); len(errs) != 0 {
			t.Errorf("%s rejected: %v", doc, errs[0])
		}
	}
	bad := []string{
		`<cfg><a>x</a></cfg>`,                 // missing b
		`<cfg><a>x</a><b>1</b><a>y</a></cfg>`, // a twice
	}
	for _, doc := range bad {
		if errs := Validate(schema, parseDoc(t, doc)); len(errs) == 0 {
			t.Errorf("%s accepted", doc)
		}
	}
}

func TestEnumerationFacet(t *testing.T) {
	schema := MustParseSchema(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:simpleType name="color">
	    <xs:restriction base="xs:string">
	      <xs:enumeration value="red"/>
	      <xs:enumeration value="green"/>
	    </xs:restriction>
	  </xs:simpleType>
	  <xs:element name="paint" type="color"/>
	</xs:schema>`)
	if errs := Validate(schema, parseDoc(t, `<paint>red</paint>`)); len(errs) != 0 {
		t.Fatalf("enumerated value rejected: %v", errs[0])
	}
	if errs := Validate(schema, parseDoc(t, `<paint>blue</paint>`)); len(errs) == 0 {
		t.Fatal("non-enumerated value accepted")
	}
}

func TestRangeFacets(t *testing.T) {
	schema := MustParseSchema(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:simpleType name="pct">
	    <xs:restriction base="xs:int">
	      <xs:minInclusive value="0"/>
	      <xs:maxInclusive value="100"/>
	    </xs:restriction>
	  </xs:simpleType>
	  <xs:element name="p" type="pct"/>
	</xs:schema>`)
	if errs := Validate(schema, parseDoc(t, `<p>55</p>`)); len(errs) != 0 {
		t.Fatalf("in-range rejected: %v", errs[0])
	}
	for _, doc := range []string{`<p>-1</p>`, `<p>101</p>`} {
		if errs := Validate(schema, parseDoc(t, doc)); len(errs) == 0 {
			t.Errorf("%s accepted", doc)
		}
	}
}

func TestSchemaErrors(t *testing.T) {
	bad := []string{
		`<notschema/>`,
		`<xs:schema xmlns:xs="x"><xs:element/></xs:schema>`,
		`<xs:schema xmlns:xs="x"><xs:element name="e" type="xs:nosuch"/></xs:schema>`,
		`<xs:schema xmlns:xs="x"><xs:complexType/></xs:schema>`,
		`<xs:schema xmlns:xs="x"></xs:schema>`,
		`<xs:schema xmlns:xs="x"><xs:simpleType name="s"/></xs:schema>`,
	}
	for _, src := range bad {
		if _, err := ParseSchema([]byte(src)); err == nil {
			t.Errorf("ParseSchema(%q) succeeded", src)
		}
	}
}

func TestInstrumentedValidationEmitsOps(t *testing.T) {
	s := compile(t)
	var c trace.Counting
	v := NewValidator(s, &c)
	if !v.Valid(parseDoc(t, validOrder)) {
		t.Fatal("valid doc rejected under instrumentation")
	}
	if c.Instr == 0 || c.Branches == 0 {
		t.Fatalf("no ops emitted: %+v", c)
	}
	// Branch outcomes must be mixed (data-dependent): both taken and
	// not-taken present.
	if c.Taken == 0 || c.Taken == c.Branches {
		t.Fatalf("degenerate branch outcomes: taken=%d of %d", c.Taken, c.Branches)
	}
}

func TestInstrumentedMatchesPlain(t *testing.T) {
	s := compile(t)
	docs := []string{validOrder,
		`<purchaseOrder id="1"><customer>c</customer></purchaseOrder>`,
	}
	for _, src := range docs {
		plain := len(Validate(s, parseDoc(t, src)))
		inst := len(NewValidator(s, &trace.Counting{}).Validate(parseDoc(t, src)))
		if plain != inst {
			t.Errorf("instrumented verdict differs for %q: %d vs %d", src, plain, inst)
		}
	}
}

func TestTypeNameHelper(t *testing.T) {
	s := compile(t)
	if s.Elements["purchaseOrder"].typeName() != "anonymous" {
		t.Error("inline type should report anonymous")
	}
}
