// Package xsd implements an XML Schema (XSD) subset validator: global
// element declarations, named and anonymous complex types with sequence /
// choice / all content models and occurrence bounds, attribute
// declarations with use constraints, and simple-type checking with the
// common built-ins and restriction facets. It is the compute kernel of the
// paper's Schema Validation (SV) use case — the predominantly CPU-bound
// end of the AON workload spectrum.
//
// Validation is dual-use like the rest of the stack: plain, or
// instrumented to emit the micro-op stream of the equivalent compiled
// validator. Its branch outcomes follow element-name matching against the
// content model, which is what gives SV the highest branch-misprediction
// ratios in the paper's Table 6.
package xsd

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/xmldom"
)

// Schema is a compiled schema: global element declarations and named
// types.
type Schema struct {
	Elements map[string]*ElementDecl
	types    map[string]*ComplexType
	simple   map[string]*SimpleType
}

// ElementDecl declares one element.
type ElementDecl struct {
	Name      string
	Type      *ComplexType // nil for pure simple-type elements
	Simple    *SimpleType  // non-nil when the element carries typed text
	MinOccurs int
	MaxOccurs int // -1 = unbounded
}

// ComplexType is a content model plus attribute declarations.
type ComplexType struct {
	Name    string
	Content *Particle // nil = empty content (attributes only)
	Attrs   []AttrDecl
	Mixed   bool
}

// AttrDecl declares one attribute.
type AttrDecl struct {
	Name     string
	Type     *SimpleType
	Required bool
}

// ParticleKind classifies content-model particles.
type ParticleKind int

const (
	// PElement is a leaf particle referencing an element declaration.
	PElement ParticleKind = iota
	// PSequence requires its children in order.
	PSequence
	// PChoice requires exactly one of its children (per occurrence).
	PChoice
	// PAll requires each child at most once, any order.
	PAll
)

func (k ParticleKind) String() string {
	switch k {
	case PElement:
		return "element"
	case PSequence:
		return "sequence"
	case PChoice:
		return "choice"
	case PAll:
		return "all"
	}
	return "invalid"
}

// Particle is one node of a content model.
type Particle struct {
	Kind      ParticleKind
	Elem      *ElementDecl // PElement
	Children  []*Particle  // groups
	MinOccurs int
	MaxOccurs int // -1 = unbounded
}

// SimpleType is a built-in or restricted atomic type.
type SimpleType struct {
	Name string
	Base BuiltinType

	// Restriction facets (zero values = unconstrained).
	Enumeration []string
	MinLength   int
	MaxLength   int // 0 = unconstrained
	MinSet      bool
	Min         float64
	MaxSet      bool
	Max         float64
}

// BuiltinType enumerates supported primitive types.
type BuiltinType int

const (
	TString BuiltinType = iota
	TInt
	TDecimal
	TBoolean
	TDate
	TPositiveInt
	TToken
)

func (b BuiltinType) String() string {
	switch b {
	case TString:
		return "string"
	case TInt:
		return "integer"
	case TDecimal:
		return "decimal"
	case TBoolean:
		return "boolean"
	case TDate:
		return "date"
	case TPositiveInt:
		return "positiveInteger"
	case TToken:
		return "token"
	}
	return "invalid"
}

var builtins = map[string]BuiltinType{
	"string":             TString,
	"normalizedString":   TString,
	"token":              TToken,
	"int":                TInt,
	"integer":            TInt,
	"long":               TInt,
	"short":              TInt,
	"decimal":            TDecimal,
	"double":             TDecimal,
	"float":              TDecimal,
	"boolean":            TBoolean,
	"date":               TDate,
	"positiveInteger":    TPositiveInt,
	"nonNegativeInteger": TPositiveInt,
}

// SchemaError reports a malformed schema document.
type SchemaError struct{ Msg string }

func (e *SchemaError) Error() string { return "xsd: " + e.Msg }

func schemaErrf(format string, args ...any) error {
	return &SchemaError{Msg: fmt.Sprintf(format, args...)}
}

// ParseSchema compiles a schema from XSD source text.
func ParseSchema(src []byte) (*Schema, error) {
	doc, err := xmldom.Parse(src)
	if err != nil {
		return nil, err
	}
	root := doc.DocumentElement()
	if root == nil || root.Local != "schema" {
		return nil, schemaErrf("document element is not xs:schema")
	}
	s := &Schema{
		Elements: map[string]*ElementDecl{},
		types:    map[string]*ComplexType{},
		simple:   map[string]*SimpleType{},
	}
	// First pass: named types.
	for _, c := range root.ChildElements("") {
		switch c.Local {
		case "complexType":
			name, _ := c.Attr("name")
			if name == "" {
				return nil, schemaErrf("top-level complexType without name")
			}
			s.types[name] = &ComplexType{Name: name}
		case "simpleType":
			name, _ := c.Attr("name")
			if name == "" {
				return nil, schemaErrf("top-level simpleType without name")
			}
			st, err := s.parseSimpleType(c)
			if err != nil {
				return nil, err
			}
			st.Name = name
			s.simple[name] = st
		}
	}
	// Second pass: fill complex types (so forward references resolve).
	for _, c := range root.ChildElements("") {
		if c.Local == "complexType" {
			name, _ := c.Attr("name")
			ct, err := s.parseComplexType(c)
			if err != nil {
				return nil, err
			}
			*s.types[name] = *ct
			s.types[name].Name = name
		}
	}
	// Third pass: global elements.
	for _, c := range root.ChildElements("") {
		if c.Local == "element" {
			decl, err := s.parseElementDecl(c)
			if err != nil {
				return nil, err
			}
			s.Elements[decl.Name] = decl
		}
	}
	if len(s.Elements) == 0 {
		return nil, schemaErrf("schema declares no global elements")
	}
	return s, nil
}

// MustParseSchema is ParseSchema that panics, for init-time schemas.
func MustParseSchema(src string) *Schema {
	s, err := ParseSchema([]byte(src))
	if err != nil {
		panic(err)
	}
	return s
}

func stripPrefix(s string) string {
	_, local := xmldom.SplitName(s)
	return local
}

func (s *Schema) parseElementDecl(el *xmldom.Node) (*ElementDecl, error) {
	d := &ElementDecl{MinOccurs: 1, MaxOccurs: 1}
	d.Name, _ = el.Attr("name")
	if d.Name == "" {
		return nil, schemaErrf("element without name")
	}
	if v, ok := el.Attr("minOccurs"); ok {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return nil, schemaErrf("element %s: bad minOccurs %q", d.Name, v)
		}
		d.MinOccurs = n
	}
	if v, ok := el.Attr("maxOccurs"); ok {
		if v == "unbounded" {
			d.MaxOccurs = -1
		} else {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return nil, schemaErrf("element %s: bad maxOccurs %q", d.Name, v)
			}
			d.MaxOccurs = n
		}
	}
	if tn, ok := el.Attr("type"); ok {
		local := stripPrefix(tn)
		if bt, ok := builtins[local]; ok {
			d.Simple = &SimpleType{Name: local, Base: bt}
			return d, nil
		}
		if ct, ok := s.types[local]; ok {
			d.Type = ct
			return d, nil
		}
		if st, ok := s.simple[local]; ok {
			d.Simple = st
			return d, nil
		}
		return nil, schemaErrf("element %s: unknown type %q", d.Name, tn)
	}
	if ctEl := el.FirstChildElement("complexType"); ctEl != nil {
		ct, err := s.parseComplexType(ctEl)
		if err != nil {
			return nil, err
		}
		d.Type = ct
		return d, nil
	}
	if stEl := el.FirstChildElement("simpleType"); stEl != nil {
		st, err := s.parseSimpleType(stEl)
		if err != nil {
			return nil, err
		}
		d.Simple = st
		return d, nil
	}
	// No type: anyType-ish; accept any content as string.
	d.Simple = &SimpleType{Name: "string", Base: TString}
	return d, nil
}

func (s *Schema) parseComplexType(el *xmldom.Node) (*ComplexType, error) {
	ct := &ComplexType{}
	if v, ok := el.Attr("mixed"); ok && v == "true" {
		ct.Mixed = true
	}
	for _, c := range el.ChildElements("") {
		switch c.Local {
		case "sequence", "choice", "all":
			p, err := s.parseGroup(c)
			if err != nil {
				return nil, err
			}
			ct.Content = p
		case "attribute":
			a, err := s.parseAttrDecl(c)
			if err != nil {
				return nil, err
			}
			ct.Attrs = append(ct.Attrs, a)
		case "simpleContent":
			// <extension base="..."> with attributes.
			ext := c.FirstChildElement("extension")
			if ext == nil {
				return nil, schemaErrf("simpleContent without extension")
			}
			base, _ := ext.Attr("base")
			local := stripPrefix(base)
			bt, ok := builtins[local]
			if !ok {
				if st, found := s.simple[local]; found {
					ct.Mixed = true
					_ = st
					bt = st.Base
				} else {
					return nil, schemaErrf("simpleContent: unknown base %q", base)
				}
			}
			ct.Mixed = true
			_ = bt
			for _, ac := range ext.ChildElements("attribute") {
				a, err := s.parseAttrDecl(ac)
				if err != nil {
					return nil, err
				}
				ct.Attrs = append(ct.Attrs, a)
			}
		}
	}
	return ct, nil
}

func (s *Schema) parseGroup(el *xmldom.Node) (*Particle, error) {
	p := &Particle{MinOccurs: 1, MaxOccurs: 1}
	switch el.Local {
	case "sequence":
		p.Kind = PSequence
	case "choice":
		p.Kind = PChoice
	case "all":
		p.Kind = PAll
	default:
		return nil, schemaErrf("unknown group %q", el.Local)
	}
	if v, ok := el.Attr("minOccurs"); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, schemaErrf("bad minOccurs %q", v)
		}
		p.MinOccurs = n
	}
	if v, ok := el.Attr("maxOccurs"); ok {
		if v == "unbounded" {
			p.MaxOccurs = -1
		} else {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, schemaErrf("bad maxOccurs %q", v)
			}
			p.MaxOccurs = n
		}
	}
	for _, c := range el.ChildElements("") {
		switch c.Local {
		case "element":
			d, err := s.parseElementDecl(c)
			if err != nil {
				return nil, err
			}
			p.Children = append(p.Children, &Particle{
				Kind: PElement, Elem: d,
				MinOccurs: d.MinOccurs, MaxOccurs: d.MaxOccurs,
			})
		case "sequence", "choice", "all":
			sub, err := s.parseGroup(c)
			if err != nil {
				return nil, err
			}
			p.Children = append(p.Children, sub)
		default:
			return nil, schemaErrf("unsupported particle %q", c.Local)
		}
	}
	return p, nil
}

func (s *Schema) parseAttrDecl(el *xmldom.Node) (AttrDecl, error) {
	a := AttrDecl{Type: &SimpleType{Name: "string", Base: TString}}
	a.Name, _ = el.Attr("name")
	if a.Name == "" {
		return a, schemaErrf("attribute without name")
	}
	if v, ok := el.Attr("use"); ok && v == "required" {
		a.Required = true
	}
	if tn, ok := el.Attr("type"); ok {
		local := stripPrefix(tn)
		if bt, found := builtins[local]; found {
			a.Type = &SimpleType{Name: local, Base: bt}
		} else if st, found := s.simple[local]; found {
			a.Type = st
		} else {
			return a, schemaErrf("attribute %s: unknown type %q", a.Name, tn)
		}
	}
	return a, nil
}

func (s *Schema) parseSimpleType(el *xmldom.Node) (*SimpleType, error) {
	r := el.FirstChildElement("restriction")
	if r == nil {
		return nil, schemaErrf("simpleType without restriction")
	}
	base, _ := r.Attr("base")
	bt, ok := builtins[stripPrefix(base)]
	if !ok {
		return nil, schemaErrf("restriction: unknown base %q", base)
	}
	st := &SimpleType{Base: bt}
	for _, f := range r.ChildElements("") {
		v, _ := f.Attr("value")
		switch f.Local {
		case "enumeration":
			st.Enumeration = append(st.Enumeration, v)
		case "minLength":
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, schemaErrf("bad minLength %q", v)
			}
			st.MinLength = n
		case "maxLength":
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, schemaErrf("bad maxLength %q", v)
			}
			st.MaxLength = n
		case "minInclusive":
			x, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, schemaErrf("bad minInclusive %q", v)
			}
			st.MinSet, st.Min = true, x
		case "maxInclusive":
			x, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, schemaErrf("bad maxInclusive %q", v)
			}
			st.MaxSet, st.Max = true, x
		case "pattern":
			// Patterns are noted but not enforced (no regexp engine in
			// the validation hot path; see DESIGN.md).
		default:
			return nil, schemaErrf("unsupported facet %q", f.Local)
		}
	}
	return st, nil
}

// typeName is a debugging helper.
func (d *ElementDecl) typeName() string {
	switch {
	case d.Type != nil && d.Type.Name != "":
		return d.Type.Name
	case d.Type != nil:
		return "anonymous"
	case d.Simple != nil:
		return d.Simple.Base.String()
	}
	return "any"
}

var _ = strings.TrimSpace // reserved for facet normalization extensions
