// Package zc holds the one unsafe primitive the zero-copy hot path is
// built on: viewing a byte slice as a string without copying.
//
// A view string aliases the bytes it was made from. The contract every
// caller must keep is lifetime discipline: the view is only valid while
// the backing buffer is alive and unmodified. The gateway's pooled
// buffers enforce this structurally — a request frame is recycled only
// after the write stage for its response has completed, and a pooled
// parser's tree is dead once the parser is released — so no view ever
// outlives its bytes.
package zc

import "unsafe"

// String returns a string view over b without copying. The result aliases
// b: it is valid only while b's backing array is alive and unmodified.
func String(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}
