package xmldom

import "repro/internal/perf/trace"

// Instrumentation densities: how many micro-ops a compiled scanner retires
// per byte of input for each scanning mode. These constants, together with
// the codegen profiles, determine the AON workloads' instruction mix; they
// are calibrated so the branch frequencies land on the paper's Table 5
// (27-28% of retired instructions on Pentium M for the XML-heavy use
// cases).
//
//   - Name scanning: a character-class check per byte (branch) plus class
//     table arithmetic.
//   - Text/space scanning: word-at-a-time delimiter search (the memchr
//     idiom): fewer branches per byte.
//   - Structural matches and decisions: one branch each at a stable PC.
const (
	nodeSimBytes = 96 // simulated footprint of a Node struct

	nameALUPerByte  = 5  // class lookup, case folding, hash accumulate
	textALUPerWord  = 11 // SWAR delimiter test, UTF-8 validation, copy-out
	spaceALUPerWord = 6
	// nameBranchEvery spaces the class-check branches: table-driven
	// scanners resolve several bytes per conditional.
	nameBranchEvery = 3
	// textBranchEvery spaces the content-scan loop branches.
	textBranchEvery = 2
)

var (
	scanCode = trace.NewCodeRegion(4096)

	pcNameLoop  = scanCode.Site()
	pcTextLoop  = scanCode.Site()
	pcSpaceLoop = scanCode.Site()
	pcMatch     = scanCode.Site()
	pcAttrMore  = scanCode.Site()
	pcAttrDup   = scanCode.Site()
	pcSelfClose = scanCode.Site()
	pcEndMatch  = scanCode.Site()
	pcAllocPC   = scanCode.Site()
	pcCmpLoop   = scanCode.Site()
)

func (p *Parser) addr(pos int) uint64 { return p.base + uint64(pos) }

// emitNameRun models table-driven name scanning over src[start:end]: a
// load per word, class arithmetic per byte, and a loop branch per few
// bytes (taken while the class check succeeds, falling out at the
// delimiter). The branch-poor, arithmetic-rich mix is what pulls the XML
// use cases' retired branch frequency below the forwarding path's, as in
// the paper's Table 5 (27-28% for SV/CBR vs 35-36% for FR on Pentium M).
func (p *Parser) emitNameRun(start, end int) {
	n := end - start
	if n <= 0 {
		return
	}
	p.em.Load(p.addr(start), (n+trace.WordBytes-1)/trace.WordBytes)
	p.em.ALU(n * nameALUPerByte)
	for i := 0; i < n; i += nameBranchEvery {
		p.em.Branch(pcNameLoop, i+nameBranchEvery < n)
	}
}

// emitTextRun models word-at-a-time content scanning (searching for '<'
// or '&'): a load, SWAR arithmetic and a loop branch per word.
func (p *Parser) emitTextRun(start, end int) {
	n := end - start
	if n <= 0 {
		return
	}
	words := (n + trace.WordBytes - 1) / trace.WordBytes
	for w := 0; w < words; w++ {
		p.em.Load(p.addr(start+w*trace.WordBytes), 1)
		p.em.ALU(textALUPerWord)
		if w%textBranchEvery == 0 {
			p.em.Branch(pcTextLoop, w+textBranchEvery < words)
		}
	}
}

// emitSpaceRun models whitespace skipping, same shape as text scanning.
func (p *Parser) emitSpaceRun(start, end int) {
	n := end - start
	if n <= 0 {
		return
	}
	words := (n + trace.WordBytes - 1) / trace.WordBytes
	for w := 0; w < words; w++ {
		p.em.Load(p.addr(start+w*trace.WordBytes), 1)
		p.em.ALU(spaceALUPerWord)
		if w%textBranchEvery == 0 {
			p.em.Branch(pcSpaceLoop, w+textBranchEvery < words)
		}
	}
}

// emitMatch models a short literal comparison (expect).
func (p *Parser) emitMatch(pos, n int) {
	p.em.Load(p.addr(pos), 1)
	p.em.ALU(2 + n/trace.WordBytes)
	p.em.Branch(pcMatch, true)
}

// emitDecision models one data-dependent structural branch at a stable PC.
func (p *Parser) emitDecision(pc uint64, taken bool) {
	p.em.ALU(1)
	p.em.Branch(pc, taken)
}

// emitNameCompare models comparing an end-tag name against the open
// element's name (a short string compare).
func (p *Parser) emitNameCompare(a, b string, match bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	words := n/trace.WordBytes + 1
	p.em.Load(p.addr(p.pos), words)
	p.em.ALU(2 * words)
	p.em.Branch(pcEndMatch, match)
}

// emitAlloc models allocating and initializing a tree node (and copying
// its character data into the simulated heap).
func (p *Parser) emitAlloc(n *Node, dataLen int) {
	p.em.ALU(30) // allocator fast path, node initialization
	p.em.Store(n.SimAddr, 6)
	if dataLen > 0 {
		words := (dataLen + trace.WordBytes - 1) / trace.WordBytes
		p.em.Store(n.SimAddr+nodeSimBytes, words)
	}
	p.em.Branch(pcAllocPC, true)
}

// emitAttach models linking a child into its parent (pointer stores plus
// the occasional slice growth).
func (p *Parser) emitAttach(parent, child *Node) {
	p.em.Load(parent.SimAddr, 2)
	p.em.Store(parent.SimAddr+16, 1)
	p.em.Store(child.SimAddr+8, 1)
	p.em.ALU(4)
	grow := len(parent.Children)&(len(parent.Children)-1) == 0 // power of two
	p.em.Branch(pcAllocPC+4, grow)
}

// emitAttr models interning one attribute (hashing the name, storing the
// pair).
func (p *Parser) emitAttr(name, value string) {
	p.em.ALU(len(name) + 4)
	p.em.Store(0, 0) // placeholder keeps shape explicit; no-op (N=0)
	p.em.ALU(len(value) / 2)
	p.em.Branch(pcCmpLoop, len(value) > 0)
}
