// Package xmldom is a from-scratch, namespace-aware XML 1.0 parser and
// document object model. It is the foundation of the paper's XML server
// application: XPath evaluation (content-based routing) and schema
// validation both operate on the tree this package builds.
//
// The parser is dual-use: called through Parse it is a plain library;
// called through ParseInstrumented it additionally emits the micro-op
// stream of an equivalent compiled parser — loads walking the input
// buffer, stores building the tree, and branches with the scanner's actual
// outcomes — which is what lets the simulator characterize XML parsing the
// way the paper's VTune measurements do.
package xmldom

import (
	"fmt"
	"strings"
)

// NodeKind classifies tree nodes.
type NodeKind uint8

const (
	// Document is the synthetic root above the document element.
	Document NodeKind = iota
	// Element is a tag.
	Element
	// Text is character data (entity references already resolved).
	Text
	// Comment is a <!-- --> node.
	Comment
	// ProcInst is a processing instruction.
	ProcInst
)

func (k NodeKind) String() string {
	switch k {
	case Document:
		return "document"
	case Element:
		return "element"
	case Text:
		return "text"
	case Comment:
		return "comment"
	case ProcInst:
		return "proc-inst"
	}
	return "invalid"
}

// Attr is one attribute.
type Attr struct {
	Name  string // as written, possibly prefixed
	Value string
}

// Node is one tree node.
type Node struct {
	Kind     NodeKind
	Name     string // element: full name as written (prefix:local)
	Prefix   string // element: namespace prefix ("" if none)
	Local    string // element: local part
	NS       string // element: resolved namespace URI ("" if none)
	Attrs    []Attr
	Children []*Node
	Parent   *Node
	Data     string // text/comment/PI content

	// SimAddr is the node's synthetic address in the simulated heap;
	// zero when the tree was built without instrumentation.
	SimAddr uint64
}

// Root walks up to the document node.
func (n *Node) Root() *Node {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}

// DocumentElement returns the top-level element of a Document node (nil
// if absent).
func (n *Node) DocumentElement() *Node {
	for _, c := range n.Children {
		if c.Kind == Element {
			return c
		}
	}
	return nil
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// ChildElements returns the element children, optionally filtered by local
// name ("" matches all).
func (n *Node) ChildElements(local string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == Element && (local == "" || c.Local == local) {
			out = append(out, c)
		}
	}
	return out
}

// FirstChildElement returns the first element child with the given local
// name ("" matches any), or nil.
func (n *Node) FirstChildElement(local string) *Node {
	for _, c := range n.Children {
		if c.Kind == Element && (local == "" || c.Local == local) {
			return c
		}
	}
	return nil
}

// TextContent concatenates all descendant text, the XPath string-value of
// an element.
func (n *Node) TextContent() string {
	var b strings.Builder
	n.appendText(&b)
	return b.String()
}

func (n *Node) appendText(b *strings.Builder) {
	if n.Kind == Text {
		b.WriteString(n.Data)
		return
	}
	for _, c := range n.Children {
		c.appendText(b)
	}
}

// Walk visits n and every descendant in document order; returning false
// from fn stops the walk.
func (n *Node) Walk(fn func(*Node) bool) bool {
	if !fn(n) {
		return false
	}
	for _, c := range n.Children {
		if !c.Walk(fn) {
			return false
		}
	}
	return true
}

// CountNodes returns the number of nodes in the subtree rooted at n.
func (n *Node) CountNodes() int {
	count := 0
	n.Walk(func(*Node) bool { count++; return true })
	return count
}

// LookupNamespace resolves a prefix in scope at this node by walking the
// xmlns declarations up the ancestor chain ("" resolves the default
// namespace). The empty string return means unbound.
func (n *Node) LookupNamespace(prefix string) string {
	target := "xmlns"
	if prefix != "" {
		target = "xmlns:" + prefix
	}
	for cur := n; cur != nil; cur = cur.Parent {
		if cur.Kind != Element && cur.Kind != Document {
			continue
		}
		for _, a := range cur.Attrs {
			if a.Name == target {
				return a.Value
			}
		}
	}
	return ""
}

// SplitName splits a qualified name into prefix and local part.
func SplitName(name string) (prefix, local string) {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return "", name
}

// ParseError reports a malformed document with byte offset context.
type ParseError struct {
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xmldom: offset %d: %s", e.Offset, e.Msg)
}
