package xmldom

import (
	"sync"

	"repro/internal/zc"
)

// nodeChunk is the node-slab chunk size. Chunks are fixed-size so *Node
// pointers handed out stay valid as the slab grows (a single growing
// []Node would move nodes on reallocation).
const nodeChunk = 256

// StreamParser builds DOM trees over the streaming Tokenizer with pooled
// memory: nodes come from reusable slabs, children slices from a grow-only
// arena, and every string in the tree is a zero-copy view into either the
// source buffer or the parser's entity-decode scratch.
//
// Lifetime contract: the tree returned by Parse is valid only until the
// next Parse or Release call on the same parser, and only while the source
// buffer passed to Parse is alive and unmodified. Callers that need the
// tree to outlive those windows must copy what they keep. The gateway's
// pipeline honors this by holding the parser (and the request frame) until
// the response for the request is fully formatted.
//
// A StreamParser is not safe for concurrent use; Acquire one per worker.
type StreamParser struct {
	tz Tokenizer

	chunks [][]Node // fixed-size node slabs (pointers stay valid)
	ci, ni int      // next free node: chunks[ci][ni]

	kids    []*Node // grow-only children arena; claimed as capped subslices
	pending []*Node // completed siblings awaiting their parent's end tag
	marks   []int   // per-open-element start index into pending
	open    []*Node // open element stack (parallels the tokenizer's)
	scratch []byte  // entity-decode output; views into it live in the tree
}

var streamPool = sync.Pool{New: func() any { return new(StreamParser) }}

// AcquireStreamParser returns a pooled parser. Release it when the tree
// it produced is no longer needed.
func AcquireStreamParser() *StreamParser {
	return streamPool.Get().(*StreamParser)
}

// Release returns the parser (and the tree memory of its last Parse) to
// the pool. The last tree is invalid after this call.
func (p *StreamParser) Release() {
	streamPool.Put(p)
}

// alloc hands out the next slab node, reusing the node's previous Attrs
// backing array.
func (p *StreamParser) alloc(kind NodeKind) *Node {
	if p.ci == len(p.chunks) {
		p.chunks = append(p.chunks, make([]Node, nodeChunk))
	}
	n := &p.chunks[p.ci][p.ni]
	p.ni++
	if p.ni == nodeChunk {
		p.ci++
		p.ni = 0
	}
	attrs := n.Attrs[:0]
	*n = Node{Kind: kind, Attrs: attrs}
	return n
}

// claim copies a completed sibling run into the children arena and
// returns a capped subslice (so a consumer appending to Children cannot
// scribble over the next claim).
func (p *StreamParser) claim(c []*Node) []*Node {
	if len(c) == 0 {
		return nil
	}
	start := len(p.kids)
	p.kids = append(p.kids, c...)
	end := len(p.kids)
	return p.kids[start:end:end]
}

// decode resolves entity references in raw into the scratch slab and
// returns a view of the decoded bytes. The tokenizer already validated
// every reference, so decodeEntityAt cannot fail here.
func (p *StreamParser) decode(raw []byte) string {
	start := len(p.scratch)
	run := 0
	for i := 0; i < len(raw); {
		if raw[i] == '&' {
			p.scratch = append(p.scratch, raw[run:i]...)
			s, next, _ := decodeEntityAt(raw, i)
			p.scratch = append(p.scratch, s...)
			i = next
			run = i
			continue
		}
		i++
	}
	p.scratch = append(p.scratch, raw[run:]...)
	return zc.String(p.scratch[start:])
}

func (p *StreamParser) top(doc *Node) *Node {
	if len(p.open) > 0 {
		return p.open[len(p.open)-1]
	}
	return doc
}

// Parse builds a DOM tree from src without copying character data. It
// accepts and rejects exactly the documents Parse does (enforced by a
// differential fuzz test); node Data/Name/Attr strings are views into
// src or the parser's scratch, subject to the lifetime contract above.
func (p *StreamParser) Parse(src []byte) (*Node, error) {
	p.ci, p.ni = 0, 0
	p.kids = p.kids[:0]
	p.pending = p.pending[:0]
	p.marks = p.marks[:0]
	p.open = p.open[:0]
	p.scratch = p.scratch[:0]
	p.tz.Reset(src)

	doc := p.alloc(Document)
	for {
		tok, err := p.tz.Next()
		if err != nil {
			return nil, err
		}
		switch tok.Kind {
		case TokEOF:
			doc.Children = p.claim(p.pending)
			if doc.DocumentElement() == nil {
				return nil, &ParseError{Offset: len(src), Msg: "no document element"}
			}
			return doc, nil

		case TokStart:
			n := p.alloc(Element)
			n.Name = zc.String(tok.Name)
			n.Prefix, n.Local = SplitName(n.Name)
			n.Parent = p.top(doc)
			for _, a := range tok.Attrs {
				val := zc.String(a.RawValue)
				if a.HasEntity {
					val = p.decode(a.RawValue)
				}
				n.Attrs = append(n.Attrs, Attr{Name: zc.String(a.Name), Value: val})
			}
			n.NS = lookupNS(n, n.Prefix)
			if tok.SelfClose {
				p.pending = append(p.pending, n)
			} else {
				p.open = append(p.open, n)
				p.marks = append(p.marks, len(p.pending))
			}

		case TokEnd:
			n := p.open[len(p.open)-1]
			mark := p.marks[len(p.marks)-1]
			p.open = p.open[:len(p.open)-1]
			p.marks = p.marks[:len(p.marks)-1]
			n.Children = p.claim(p.pending[mark:])
			p.pending = append(p.pending[:mark], n)

		case TokText, TokCDATA:
			if len(tok.Raw) == 0 {
				continue
			}
			n := p.alloc(Text)
			if tok.HasEntity {
				n.Data = p.decode(tok.Raw)
			} else {
				n.Data = zc.String(tok.Raw)
			}
			n.Parent = p.top(doc)
			p.pending = append(p.pending, n)

		case TokComment:
			n := p.alloc(Comment)
			n.Data = zc.String(tok.Raw)
			n.Parent = p.top(doc)
			p.pending = append(p.pending, n)

		case TokProcInst, TokDecl:
			n := p.alloc(ProcInst)
			n.Data = zc.String(tok.Raw)
			n.Parent = p.top(doc)
			p.pending = append(p.pending, n)

		case TokDoctype:
			// Skipped, matching the DOM parser (no node).
		}
	}
}

// lookupNS is LookupNamespace without the "xmlns:"+prefix concatenation —
// the streaming builder calls it once per element, so the allocation
// matters. Semantics are identical.
func lookupNS(n *Node, prefix string) string {
	for cur := n; cur != nil; cur = cur.Parent {
		if cur.Kind != Element && cur.Kind != Document {
			continue
		}
		for _, a := range cur.Attrs {
			if matchXmlns(a.Name, prefix) {
				return a.Value
			}
		}
	}
	return ""
}

func matchXmlns(name, prefix string) bool {
	if prefix == "" {
		return name == "xmlns"
	}
	return len(name) == len("xmlns:")+len(prefix) &&
		name[:len("xmlns:")] == "xmlns:" && name[len("xmlns:"):] == prefix
}
