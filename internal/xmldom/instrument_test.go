package xmldom

import (
	"strings"
	"testing"

	"repro/internal/perf/trace"
)

// Tests for the instrumentation layer's structural properties: the op
// stream must reflect the input faithfully enough to drive the simulator.

func TestBranchOutcomesAreMixed(t *testing.T) {
	src := []byte(`<root a="1"><x>text with words</x><y/><z attr="v">more</z></root>`)
	var c trace.Counting
	if _, err := ParseInstrumented(src, &c, 0, trace.NewArena(1<<30, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if c.Taken == 0 || c.Taken == c.Branches {
		t.Fatalf("degenerate outcomes: taken=%d of %d", c.Taken, c.Branches)
	}
}

func TestBranchFractionInXMLRange(t *testing.T) {
	// The calibrated abstract branch fraction of parsing must sit in the
	// range that maps (through the retirement profiles) onto the paper's
	// Table 5: roughly 4-9% abstract.
	src := []byte(`<r>` + strings.Repeat(`<item><sku>SKU-1234</sku><quantity>3</quantity><note>some filler text here</note></item>`, 30) + `</r>`)
	var c trace.Counting
	if _, err := ParseInstrumented(src, &c, 0, trace.NewArena(1<<30, 1<<20)); err != nil {
		t.Fatal(err)
	}
	frac := float64(c.Branches) / float64(c.Instr)
	if frac < 0.03 || frac > 0.12 {
		t.Fatalf("abstract branch fraction %.3f outside the calibrated window", frac)
	}
	// And it must be load-bearing but ALU-dominated.
	if c.Loads == 0 || c.Loads > c.Instr/2 {
		t.Fatalf("load fraction off: %d of %d", c.Loads, c.Instr)
	}
}

func TestInstructionDensityPerByte(t *testing.T) {
	// Parsing cost must scale with input size at a plausible density
	// (the calibration target is ~4-8 abstract instructions per byte).
	small := []byte(`<r>` + strings.Repeat(`<a>xy</a>`, 20) + `</r>`)
	big := []byte(`<r>` + strings.Repeat(`<a>xy</a>`, 200) + `</r>`)
	var cs, cb trace.Counting
	arena := trace.NewArena(1<<30, 1<<22)
	if _, err := ParseInstrumented(small, &cs, 0, arena); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseInstrumented(big, &cb, 0, arena); err != nil {
		t.Fatal(err)
	}
	densS := float64(cs.Instr) / float64(len(small))
	densB := float64(cb.Instr) / float64(len(big))
	// Structure-dense documents (tag per ~9 bytes) run hotter per byte
	// than the AONBench text-heavy messages (~5 instr/byte).
	if densB < 2 || densB > 25 {
		t.Fatalf("density %.1f instr/byte outside plausible range", densB)
	}
	if densB > densS*1.5 || densS > densB*1.5 {
		t.Fatalf("density not stable: %.1f vs %.1f", densS, densB)
	}
}

func TestLoadsWalkTheInputBuffer(t *testing.T) {
	src := []byte(`<root><child>payload text</child></root>`)
	base := uint64(0x7000_0000)
	buf := trace.NewBuffer(4096)
	if _, err := ParseInstrumented(src, buf, base, trace.NewArena(1<<30, 1<<20)); err != nil {
		t.Fatal(err)
	}
	inBuffer := 0
	for _, op := range buf.Ops {
		if op.Kind == trace.Load && op.Addr >= base && op.Addr < base+uint64(len(src))+8 {
			inBuffer++
		}
	}
	if inBuffer == 0 {
		t.Fatal("no loads touch the input buffer")
	}
}

func TestNodeAllocationsUseArena(t *testing.T) {
	arena := trace.NewArena(0x5_0000_0000, 1<<20)
	doc, err := ParseInstrumented([]byte(`<a><b/><c>t</c></a>`), &trace.Counting{}, 0, arena)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	doc.Walk(func(n *Node) bool {
		if n.SimAddr < 0x5_0000_0000 || n.SimAddr >= 0x5_0000_0000+1<<20 {
			t.Fatalf("node %v allocated at %#x outside arena", n.Kind, n.SimAddr)
		}
		count++
		return true
	})
	if arena.Used() == 0 {
		t.Fatal("arena untouched")
	}
	if count < 5 {
		t.Fatalf("only %d nodes", count)
	}
}

func TestStablePCsAcrossParses(t *testing.T) {
	// The same document parsed twice must emit branches at the same PCs
	// (static code identity is what lets predictors learn).
	collect := func() map[uint64]bool {
		buf := trace.NewBuffer(4096)
		if _, err := ParseInstrumented([]byte(`<a x="1"><b>t</b></a>`), buf, 0, trace.NewArena(1<<30, 1<<20)); err != nil {
			t.Fatal(err)
		}
		pcs := map[uint64]bool{}
		for _, op := range buf.Ops {
			if op.Kind == trace.Branch {
				pcs[op.Addr] = true
			}
		}
		return pcs
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("pc sets differ in size: %d vs %d", len(a), len(b))
	}
	for pc := range a {
		if !b[pc] {
			t.Fatalf("pc %#x not stable", pc)
		}
	}
	if len(a) < 3 {
		t.Fatalf("too few distinct branch sites: %d", len(a))
	}
}
