package xmldom_test

import (
	"testing"

	"repro/internal/workload"
	"repro/internal/xmldom"
)

// corpus is the seeded differential corpus: workload-generator output
// (the traffic the gateway actually parses) plus grammar edge cases
// covering every accept/reject path the two parsers share.
func corpus() [][]byte {
	docs := [][]byte{
		// Workload traffic at a few sizes and indices (i%2 flips the CBR
		// routing branch; seeded variants perturb content).
		workload.SOAPMessage(0),
		workload.SOAPMessage(1),
		workload.SOAPMessageSized(2, 512),
		workload.SOAPMessageSeeded(3, 2048, 7),
		workload.InvalidSOAPMessage(4),
		workload.InvalidSOAPMessageSized(5, 1024),
	}
	edges := []string{
		// Well-formed shapes.
		`<a/>`,
		`<a></a>`,
		`<a b="1" c='2'>x</a>`,
		`<?xml version="1.0"?><a/>`,
		`<?xml version="1.0"?><!--c--><!DOCTYPE a [<!ELEMENT a EMPTY>]><a/><!--tail-->`,
		`<a><!--c--><?pi data?><![CDATA[<raw&>]]></a>`,
		`<a>&lt;&gt;&amp;&quot;&apos;&#65;&#x41;</a>`,
		`<a b="&lt;v&gt;"/>`,
		`<ns:a xmlns:ns="u"><ns:b/></ns:a>`,
		`<a xmlns="d"><b xmlns=""/></a>`,
		"  \r\n\t<a> mixed <b>text</b> runs </a>\n ",
		`<a b="1"c="2"/>`, // no space between attrs — accepted quirk
		`<?xmlfoo?><a/>`,  // decl prefix-match quirk
		`<a>x<b/>y<b/>z</a>`,
		// Rejections.
		``,
		`   `,
		`<a>`,
		`<a></b>`,
		`<a`,
		`<a b/>`,
		`<a b=>`,
		`<a b="1" b="2"/>`,
		`<a b="<"/>`,
		`<a b="1/>`,
		`<a>&unknown;</a>`,
		`<a>&lt</a>`,
		`<a>&#xZZ;</a>`,
		`<a>&#;</a>`,
		`<a/><b/>`,
		`<a/>text`,
		`<a/><?pi?>`,
		`<!--only a comment-->`,
		`<?foo?><a/>`,
		`<!DOCTYPE a`,
		`<?xml version="1.0"`,
		`<a><!--unterminated</a>`,
		`<a><![CDATA[unterminated</a>`,
		`<a><?pi unterminated</a>`,
		`<!a/>`,
		`<a ="v"/>`,
		`<a>&toolongentityname;</a>`,
	}
	for _, e := range edges {
		docs = append(docs, []byte(e))
	}
	return docs
}

// sameTree asserts deep structural equality between a DOM-parser tree
// and a streaming-parser tree (ignoring SimAddr, which only the
// instrumented path populates).
func sameTree(t *testing.T, want, got *xmldom.Node, path string) {
	t.Helper()
	if want.Kind != got.Kind {
		t.Fatalf("%s: kind %v != %v", path, got.Kind, want.Kind)
	}
	if want.Name != got.Name || want.Prefix != got.Prefix || want.Local != got.Local || want.NS != got.NS {
		t.Fatalf("%s: name %q/%q/%q/%q != %q/%q/%q/%q", path,
			got.Name, got.Prefix, got.Local, got.NS, want.Name, want.Prefix, want.Local, want.NS)
	}
	if want.Data != got.Data {
		t.Fatalf("%s: data %q != %q", path, got.Data, want.Data)
	}
	if len(want.Attrs) != len(got.Attrs) {
		t.Fatalf("%s: %d attrs != %d", path, len(got.Attrs), len(want.Attrs))
	}
	for i := range want.Attrs {
		if want.Attrs[i] != got.Attrs[i] {
			t.Fatalf("%s: attr %d %+v != %+v", path, i, got.Attrs[i], want.Attrs[i])
		}
	}
	if len(want.Children) != len(got.Children) {
		t.Fatalf("%s: %d children != %d", path, len(got.Children), len(want.Children))
	}
	for i := range want.Children {
		sameTree(t, want.Children[i], got.Children[i], path+"/"+want.Children[i].Kind.String())
	}
}

// checkDifferential runs both parsers on src and asserts they agree on
// accept/reject and, when accepting, produce equivalent trees.
func checkDifferential(t *testing.T, sp *xmldom.StreamParser, src []byte) {
	t.Helper()
	domTree, domErr := xmldom.Parse(src)
	streamTree, streamErr := sp.Parse(src)
	if (domErr == nil) != (streamErr == nil) {
		t.Fatalf("accept/reject mismatch on %q: dom err=%v, stream err=%v", src, domErr, streamErr)
	}
	if domErr != nil {
		return
	}
	sameTree(t, domTree, streamTree, "doc")
}

// TestStreamVsDOMCorpus runs the seeded corpus deterministically (this
// is what CI exercises; `go test -fuzz=FuzzStreamVsDOM` explores
// further). The single reused StreamParser also exercises slab/arena
// reset across documents.
func TestStreamVsDOMCorpus(t *testing.T) {
	sp := xmldom.AcquireStreamParser()
	defer sp.Release()
	for _, doc := range corpus() {
		checkDifferential(t, sp, doc)
	}
	// Second pass over the same corpus: a parser that mis-resets pooled
	// state produces wrong trees only on reuse.
	for _, doc := range corpus() {
		checkDifferential(t, sp, doc)
	}
}

// FuzzStreamVsDOM is the differential fuzzer: any input where the
// streaming tokenizer and the DOM parser disagree — on acceptance or on
// tree shape — is a bug in one of them.
func FuzzStreamVsDOM(f *testing.F) {
	for _, doc := range corpus() {
		f.Add(doc)
	}
	sp := xmldom.AcquireStreamParser()
	defer sp.Release()
	f.Fuzz(func(t *testing.T, src []byte) {
		checkDifferential(t, sp, src)
	})
}
