package xmldom

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/perf/trace"
)

// Parser is a recursive-descent XML parser over a byte slice. It performs
// real parsing work and, when instrumented, mirrors that work as a
// micro-op stream.
type Parser struct {
	src []byte
	pos int

	em    trace.Emitter
	base  uint64       // synthetic address of src[0]
	arena *trace.Arena // synthetic heap for tree nodes
}

// Parse parses a document without instrumentation. It is safe for
// concurrent use, and allocates no synthetic-heap bookkeeping at all:
// the micro-op stream goes nowhere, so node placement is skipped (every
// SimAddr stays zero).
func Parse(src []byte) (*Node, error) {
	return ParseInstrumented(src, trace.Nop{}, 0, nil)
}

// ParseInstrumented parses a document while emitting the equivalent
// micro-op stream to em. base is the synthetic address of src in the
// simulated address space; arena provides node placement (nil with a
// real emitter allocates a private scratch arena, which keeps concurrent
// parses from sharing allocator state). With a Nop emitter and no arena
// the synthetic heap is skipped entirely — the live gateway path pays
// nothing for the sim path's bookkeeping.
func ParseInstrumented(src []byte, em trace.Emitter, base uint64, arena *trace.Arena) (*Node, error) {
	if arena == nil {
		if _, nop := em.(trace.Nop); !nop {
			arena = trace.NewArena(1<<40, 1<<26)
		}
	}
	p := &Parser{src: src, em: em, base: base, arena: arena}
	doc := p.newNode(Document, "")
	if err := p.parseProlog(doc); err != nil {
		return nil, err
	}
	p.skipSpace()
	if err := p.parseElement(doc); err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			break
		}
		if p.peekIs("<!--") {
			if err := p.parseComment(doc); err != nil {
				return nil, err
			}
			continue
		}
		return nil, p.errf("content after document element")
	}
	if doc.DocumentElement() == nil {
		return nil, p.errf("no document element")
	}
	return doc, nil
}

func (p *Parser) errf(format string, args ...any) error {
	return &ParseError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) newNode(kind NodeKind, data string) *Node {
	n := &Node{Kind: kind, Data: data}
	if p.arena != nil {
		n.SimAddr = p.arena.Alloc(nodeSimBytes + uint64(len(data)))
		p.emitAlloc(n, len(data))
	}
	return n
}

func (p *Parser) attach(parent, child *Node) {
	child.Parent = parent
	parent.Children = append(parent.Children, child)
	p.emitAttach(parent, child)
}

// ---- low-level scanning ----

func (p *Parser) peekIs(s string) bool {
	if p.pos+len(s) > len(p.src) {
		return false
	}
	return string(p.src[p.pos:p.pos+len(s)]) == s
}

func (p *Parser) expect(s string) error {
	if !p.peekIs(s) {
		return p.errf("expected %q", s)
	}
	p.emitMatch(p.pos, len(s))
	p.pos += len(s)
	return nil
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\r' || b == '\n' }

func isNameStart(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || b >= 0x80
}

func isNameChar(b byte) bool {
	return isNameStart(b) || b == '-' || b == '.' || b == ':' || (b >= '0' && b <= '9')
}

func (p *Parser) skipSpace() {
	start := p.pos
	for p.pos < len(p.src) && isSpace(p.src[p.pos]) {
		p.pos++
	}
	p.emitSpaceRun(start, p.pos)
}

func (p *Parser) scanName() (string, error) {
	start := p.pos
	if p.pos >= len(p.src) || !isNameStart(p.src[p.pos]) {
		return "", p.errf("expected name")
	}
	p.pos++
	for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	p.emitNameRun(start, p.pos)
	return string(p.src[start:p.pos]), nil
}

// errUnterminatedEntity is the decodeEntityAt message for a missing ';'.
// The DOM parser reports it without advancing, unlike the other entity
// errors — the sentinel keeps that behavior exact.
const errUnterminatedEntity = "unterminated entity reference"

// decodeEntityAt decodes one entity reference at src[pos] (which must
// point at '&'). It returns the decoded text, the offset just past the
// ';', and an empty msg — or a non-empty error message. Both the DOM
// parser and the streaming tokenizer route through it, so the two accept
// and reject exactly the same entity forms by construction.
func decodeEntityAt(src []byte, pos int) (s string, next int, msg string) {
	semi := -1
	limit := pos + 12
	if limit > len(src) {
		limit = len(src)
	}
	for i := pos + 1; i < limit; i++ {
		if src[i] == ';' {
			semi = i
			break
		}
	}
	if semi < 0 {
		return "", pos, errUnterminatedEntity
	}
	name := src[pos+1 : semi]
	next = semi + 1
	switch {
	case len(name) == 2 && name[0] == 'l' && name[1] == 't':
		return "<", next, ""
	case len(name) == 2 && name[0] == 'g' && name[1] == 't':
		return ">", next, ""
	case len(name) == 3 && name[0] == 'a' && name[1] == 'm' && name[2] == 'p':
		return "&", next, ""
	case len(name) == 4 && string(name) == "quot":
		return `"`, next, ""
	case len(name) == 4 && string(name) == "apos":
		return "'", next, ""
	}
	if len(name) >= 2 && name[0] == '#' && (name[1] == 'x' || name[1] == 'X') {
		v, err := strconv.ParseUint(string(name[2:]), 16, 32)
		if err != nil {
			return "", next, "bad character reference &" + string(name) + ";"
		}
		return string(rune(v)), next, ""
	}
	if len(name) >= 1 && name[0] == '#' {
		v, err := strconv.ParseUint(string(name[1:]), 10, 32)
		if err != nil {
			return "", next, "bad character reference &" + string(name) + ";"
		}
		return string(rune(v)), next, ""
	}
	return "", next, "unknown entity &" + string(name) + ";"
}

// scanEntity decodes one entity reference at p.pos (which points at '&').
func (p *Parser) scanEntity() (string, error) {
	s, next, msg := decodeEntityAt(p.src, p.pos)
	if msg == errUnterminatedEntity {
		return "", p.errf("%s", msg)
	}
	p.emitNameRun(p.pos, next)
	p.pos = next
	if msg != "" {
		return "", p.errf("%s", msg)
	}
	return s, nil
}

func (p *Parser) scanAttrValue() (string, error) {
	if p.pos >= len(p.src) || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
		return "", p.errf("expected quoted attribute value")
	}
	quote := p.src[p.pos]
	p.pos++
	start := p.pos
	var b strings.Builder
	for {
		if p.pos >= len(p.src) {
			return "", p.errf("unterminated attribute value")
		}
		c := p.src[p.pos]
		if c == quote {
			break
		}
		if c == '<' {
			return "", p.errf("'<' in attribute value")
		}
		if c == '&' {
			p.emitTextRun(start, p.pos)
			b.Write(p.src[start:p.pos])
			r, err := p.scanEntity()
			if err != nil {
				return "", err
			}
			b.WriteString(r)
			start = p.pos
			continue
		}
		p.pos++
	}
	p.emitTextRun(start, p.pos)
	b.Write(p.src[start:p.pos])
	p.pos++ // closing quote
	return b.String(), nil
}

// ---- document structure ----

func (p *Parser) parseProlog(doc *Node) error {
	p.skipSpace()
	if p.peekIs("<?xml") {
		end := strings.Index(string(p.src[p.pos:]), "?>")
		if end < 0 {
			return p.errf("unterminated XML declaration")
		}
		decl := string(p.src[p.pos+2 : p.pos+end])
		p.emitTextRun(p.pos, p.pos+end+2)
		p.pos += end + 2
		p.attach(doc, p.newNode(ProcInst, decl))
	}
	for {
		p.skipSpace()
		switch {
		case p.peekIs("<!--"):
			if err := p.parseComment(doc); err != nil {
				return err
			}
		case p.peekIs("<!DOCTYPE"):
			depth := 0
			start := p.pos
			for p.pos < len(p.src) {
				switch p.src[p.pos] {
				case '<':
					depth++
				case '>':
					depth--
				}
				p.pos++
				if depth == 0 {
					break
				}
			}
			if depth != 0 {
				return p.errf("unterminated DOCTYPE")
			}
			p.emitTextRun(start, p.pos)
		default:
			return nil
		}
	}
}

func (p *Parser) parseComment(parent *Node) error {
	start := p.pos
	if err := p.expect("<!--"); err != nil {
		return err
	}
	end := strings.Index(string(p.src[p.pos:]), "-->")
	if end < 0 {
		return p.errf("unterminated comment")
	}
	data := string(p.src[p.pos : p.pos+end])
	p.emitTextRun(start, p.pos+end+3)
	p.pos += end + 3
	p.attach(parent, p.newNode(Comment, data))
	return nil
}

// parseElement parses one element starting at '<' and attaches it.
func (p *Parser) parseElement(parent *Node) error {
	if err := p.expect("<"); err != nil {
		return err
	}
	name, err := p.scanName()
	if err != nil {
		return err
	}
	el := p.newNode(Element, "")
	el.Name = name
	el.Prefix, el.Local = SplitName(name)
	p.attach(parent, el)

	// Attributes.
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return p.errf("unterminated start tag <%s", name)
		}
		c := p.src[p.pos]
		p.emitDecision(pcAttrMore, isNameStart(c))
		if c == '/' || c == '>' {
			break
		}
		aname, err := p.scanName()
		if err != nil {
			return err
		}
		p.skipSpace()
		if err := p.expect("="); err != nil {
			return err
		}
		p.skipSpace()
		aval, err := p.scanAttrValue()
		if err != nil {
			return err
		}
		for _, a := range el.Attrs {
			p.emitDecision(pcAttrDup, a.Name == aname)
			if a.Name == aname {
				return p.errf("duplicate attribute %q", aname)
			}
		}
		el.Attrs = append(el.Attrs, Attr{Name: aname, Value: aval})
		p.emitAttr(aname, aval)
	}

	el.NS = el.LookupNamespace(el.Prefix)

	if p.peekIs("/>") {
		p.pos += 2
		p.emitDecision(pcSelfClose, true)
		return nil
	}
	p.emitDecision(pcSelfClose, false)
	if err := p.expect(">"); err != nil {
		return err
	}

	// Content.
	for {
		if p.pos >= len(p.src) {
			return p.errf("unterminated element <%s>", name)
		}
		switch {
		case p.peekIs("</"):
			p.pos += 2
			cname, err := p.scanName()
			if err != nil {
				return err
			}
			match := cname == name
			p.emitNameCompare(cname, name, match)
			if !match {
				return p.errf("mismatched end tag </%s>, open <%s>", cname, name)
			}
			p.skipSpace()
			return p.expect(">")
		case p.peekIs("<!--"):
			if err := p.parseComment(el); err != nil {
				return err
			}
		case p.peekIs("<![CDATA["):
			if err := p.parseCDATA(el); err != nil {
				return err
			}
		case p.peekIs("<?"):
			if err := p.parsePI(el); err != nil {
				return err
			}
		case p.src[p.pos] == '<':
			if err := p.parseElement(el); err != nil {
				return err
			}
		default:
			if err := p.parseText(el); err != nil {
				return err
			}
		}
	}
}

func (p *Parser) parsePI(parent *Node) error {
	start := p.pos
	p.pos += 2
	end := strings.Index(string(p.src[p.pos:]), "?>")
	if end < 0 {
		return p.errf("unterminated processing instruction")
	}
	data := string(p.src[p.pos : p.pos+end])
	p.emitTextRun(start, p.pos+end+2)
	p.pos += end + 2
	p.attach(parent, p.newNode(ProcInst, data))
	return nil
}

func (p *Parser) parseCDATA(parent *Node) error {
	start := p.pos
	p.pos += len("<![CDATA[")
	end := strings.Index(string(p.src[p.pos:]), "]]>")
	if end < 0 {
		return p.errf("unterminated CDATA section")
	}
	data := string(p.src[p.pos : p.pos+end])
	p.emitTextRun(start, p.pos+end+3)
	p.pos += end + 3
	p.attach(parent, p.newNode(Text, data))
	return nil
}

func (p *Parser) parseText(parent *Node) error {
	start := p.pos
	var b strings.Builder
	for p.pos < len(p.src) && p.src[p.pos] != '<' {
		if p.src[p.pos] == '&' {
			p.emitTextRun(start, p.pos)
			b.Write(p.src[start:p.pos])
			r, err := p.scanEntity()
			if err != nil {
				return err
			}
			b.WriteString(r)
			start = p.pos
			continue
		}
		p.pos++
	}
	p.emitTextRun(start, p.pos)
	b.Write(p.src[start:p.pos])
	if b.Len() > 0 {
		p.attach(parent, p.newNode(Text, b.String()))
	}
	return nil
}
