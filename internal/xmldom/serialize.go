package xmldom

import "strings"

// Serialize renders the tree back to XML text. Round-tripping through
// Parse and Serialize is exercised by the property-based tests.
func Serialize(n *Node) string {
	var b strings.Builder
	writeNode(&b, n)
	return b.String()
}

func writeNode(b *strings.Builder, n *Node) {
	switch n.Kind {
	case Document:
		for _, c := range n.Children {
			writeNode(b, c)
		}
	case Element:
		b.WriteByte('<')
		b.WriteString(n.Name)
		for _, a := range n.Attrs {
			b.WriteByte(' ')
			b.WriteString(a.Name)
			b.WriteString(`="`)
			b.WriteString(EscapeAttr(a.Value))
			b.WriteByte('"')
		}
		if len(n.Children) == 0 {
			b.WriteString("/>")
			return
		}
		b.WriteByte('>')
		for _, c := range n.Children {
			writeNode(b, c)
		}
		b.WriteString("</")
		b.WriteString(n.Name)
		b.WriteByte('>')
	case Text:
		b.WriteString(EscapeText(n.Data))
	case Comment:
		b.WriteString("<!--")
		b.WriteString(n.Data)
		b.WriteString("-->")
	case ProcInst:
		b.WriteString("<?")
		b.WriteString(n.Data)
		b.WriteString("?>")
	}
}

// EscapeText escapes character data for element content.
func EscapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// EscapeAttr escapes character data for a double-quoted attribute value.
func EscapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", `"`, "&quot;")
	return r.Replace(s)
}
