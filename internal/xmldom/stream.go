package xmldom

import (
	"bytes"
	"fmt"
)

// TokKind classifies streaming tokens.
type TokKind uint8

const (
	// TokEOF marks the end of a well-formed document.
	TokEOF TokKind = iota
	// TokStart is an element start tag (SelfClose distinguishes <a/>).
	TokStart
	// TokEnd is an element end tag.
	TokEnd
	// TokText is character data; Raw is undecoded (HasEntity tells the
	// consumer whether entity references remain to be resolved).
	TokText
	// TokCDATA is a CDATA section; Raw is the literal section body.
	TokCDATA
	// TokComment is a comment body.
	TokComment
	// TokProcInst is a processing instruction (target and data together).
	TokProcInst
	// TokDecl is the <?xml ...?> declaration.
	TokDecl
	// TokDoctype is a skipped DOCTYPE declaration.
	TokDoctype
)

// TokAttr is one attribute of a start tag. RawValue is the undecoded
// value body between the quotes; HasEntity reports whether it contains
// entity references (already validated by the tokenizer).
type TokAttr struct {
	Name      []byte
	RawValue  []byte
	HasEntity bool
}

// Token is one pull-parser event. Every byte slice is a view into the
// source buffer — no copies are made. A Token (and its Attrs) is only
// valid until the next call to Next.
type Token struct {
	Kind      TokKind
	Name      []byte    // start/end tag name
	Raw       []byte    // text/CDATA/comment/PI/decl payload
	Attrs     []TokAttr // start tag attributes (reused backing array)
	SelfClose bool
	HasEntity bool // Raw contains entity references (TokText only)
}

// Tokenizer phases.
const (
	phProlog = iota // before the document element
	phContent       // inside the document element
	phEpilog        // after the document element closed
)

// Tokenizer is a streaming pull scanner over the same grammar the DOM
// Parser accepts — the two are kept byte-for-byte compatible (shared
// entity decoding, identical accept/reject decisions; a differential
// fuzz test enforces it). The tokenizer makes no per-token copies: all
// token contents are subslices of src. A zero Tokenizer is not ready;
// call Reset first. Tokenizers are reusable across documents and are
// not safe for concurrent use.
type Tokenizer struct {
	src     []byte
	pos     int
	phase   int
	sawDecl bool

	// stack holds open element names (views into src) for end-tag
	// matching; attrs is the reused attribute backing for start tags.
	stack [][]byte
	attrs []TokAttr
}

// Reset points the tokenizer at a new document, retaining internal
// scratch capacity from prior runs.
func (t *Tokenizer) Reset(src []byte) {
	t.src = src
	t.pos = 0
	t.phase = phProlog
	t.sawDecl = false
	t.stack = t.stack[:0]
	t.attrs = t.attrs[:0]
}

func (t *Tokenizer) errf(format string, args ...any) error {
	return &ParseError{Offset: t.pos, Msg: fmt.Sprintf(format, args...)}
}

func (t *Tokenizer) peekIs(s string) bool {
	if t.pos+len(s) > len(t.src) {
		return false
	}
	return string(t.src[t.pos:t.pos+len(s)]) == s
}

func (t *Tokenizer) skipSpace() {
	for t.pos < len(t.src) && isSpace(t.src[t.pos]) {
		t.pos++
	}
}

func (t *Tokenizer) scanName() ([]byte, error) {
	start := t.pos
	if t.pos >= len(t.src) || !isNameStart(t.src[t.pos]) {
		return nil, t.errf("expected name")
	}
	t.pos++
	for t.pos < len(t.src) && isNameChar(t.src[t.pos]) {
		t.pos++
	}
	return t.src[start:t.pos], nil
}

// Next returns the next token. After TokEOF or an error the tokenizer
// must be Reset before reuse.
func (t *Tokenizer) Next() (Token, error) {
	switch t.phase {
	case phProlog:
		return t.nextProlog()
	case phContent:
		return t.nextContent()
	default:
		return t.nextEpilog()
	}
}

func (t *Tokenizer) nextProlog() (Token, error) {
	t.skipSpace()
	if !t.sawDecl {
		t.sawDecl = true
		if t.peekIs("<?xml") {
			end := bytes.Index(t.src[t.pos:], []byte("?>"))
			if end < 0 {
				return Token{}, t.errf("unterminated XML declaration")
			}
			raw := t.src[t.pos+2 : t.pos+end]
			t.pos += end + 2
			return Token{Kind: TokDecl, Raw: raw}, nil
		}
	}
	switch {
	case t.peekIs("<!--"):
		return t.scanComment()
	case t.peekIs("<!DOCTYPE"):
		depth := 0
		for t.pos < len(t.src) {
			switch t.src[t.pos] {
			case '<':
				depth++
			case '>':
				depth--
			}
			t.pos++
			if depth == 0 {
				break
			}
		}
		if depth != 0 {
			return Token{}, t.errf("unterminated DOCTYPE")
		}
		return Token{Kind: TokDoctype}, nil
	default:
		// The document element. Anything else fails inside scanStartTag
		// exactly the way the DOM parser's parseElement would.
		return t.scanStartTag()
	}
}

func (t *Tokenizer) nextContent() (Token, error) {
	open := t.stack[len(t.stack)-1]
	if t.pos >= len(t.src) {
		return Token{}, t.errf("unterminated element <%s>", open)
	}
	switch {
	case t.peekIs("</"):
		t.pos += 2
		cname, err := t.scanName()
		if err != nil {
			return Token{}, err
		}
		if !bytes.Equal(cname, open) {
			return Token{}, t.errf("mismatched end tag </%s>, open <%s>", cname, open)
		}
		t.skipSpace()
		if err := t.expect(">"); err != nil {
			return Token{}, err
		}
		t.stack = t.stack[:len(t.stack)-1]
		if len(t.stack) == 0 {
			t.phase = phEpilog
		}
		return Token{Kind: TokEnd, Name: cname}, nil
	case t.peekIs("<!--"):
		return t.scanComment()
	case t.peekIs("<![CDATA["):
		t.pos += len("<![CDATA[")
		end := bytes.Index(t.src[t.pos:], []byte("]]>"))
		if end < 0 {
			return Token{}, t.errf("unterminated CDATA section")
		}
		raw := t.src[t.pos : t.pos+end]
		t.pos += end + 3
		return Token{Kind: TokCDATA, Raw: raw}, nil
	case t.peekIs("<?"):
		t.pos += 2
		end := bytes.Index(t.src[t.pos:], []byte("?>"))
		if end < 0 {
			return Token{}, t.errf("unterminated processing instruction")
		}
		raw := t.src[t.pos : t.pos+end]
		t.pos += end + 2
		return Token{Kind: TokProcInst, Raw: raw}, nil
	case t.src[t.pos] == '<':
		return t.scanStartTag()
	default:
		return t.scanText()
	}
}

func (t *Tokenizer) nextEpilog() (Token, error) {
	t.skipSpace()
	if t.pos >= len(t.src) {
		return Token{Kind: TokEOF}, nil
	}
	if t.peekIs("<!--") {
		return t.scanComment()
	}
	return Token{}, t.errf("content after document element")
}

func (t *Tokenizer) expect(s string) error {
	if !t.peekIs(s) {
		return t.errf("expected %q", s)
	}
	t.pos += len(s)
	return nil
}

func (t *Tokenizer) scanComment() (Token, error) {
	if err := t.expect("<!--"); err != nil {
		return Token{}, err
	}
	end := bytes.Index(t.src[t.pos:], []byte("-->"))
	if end < 0 {
		return Token{}, t.errf("unterminated comment")
	}
	raw := t.src[t.pos : t.pos+end]
	t.pos += end + 3
	return Token{Kind: TokComment, Raw: raw}, nil
}

// scanStartTag parses `<name attr="v"... >` or `.../>` and pushes the
// element on the open stack unless self-closed.
func (t *Tokenizer) scanStartTag() (Token, error) {
	if err := t.expect("<"); err != nil {
		return Token{}, err
	}
	name, err := t.scanName()
	if err != nil {
		return Token{}, err
	}
	t.attrs = t.attrs[:0]
	for {
		t.skipSpace()
		if t.pos >= len(t.src) {
			return Token{}, t.errf("unterminated start tag <%s", name)
		}
		c := t.src[t.pos]
		if c == '/' || c == '>' {
			break
		}
		aname, err := t.scanName()
		if err != nil {
			return Token{}, err
		}
		t.skipSpace()
		if err := t.expect("="); err != nil {
			return Token{}, err
		}
		t.skipSpace()
		aval, hasEnt, err := t.scanAttrValue()
		if err != nil {
			return Token{}, err
		}
		for _, a := range t.attrs {
			if bytes.Equal(a.Name, aname) {
				return Token{}, t.errf("duplicate attribute %q", aname)
			}
		}
		t.attrs = append(t.attrs, TokAttr{Name: aname, RawValue: aval, HasEntity: hasEnt})
	}
	tok := Token{Kind: TokStart, Name: name, Attrs: t.attrs}
	if t.peekIs("/>") {
		t.pos += 2
		tok.SelfClose = true
		if len(t.stack) == 0 {
			t.phase = phEpilog
		}
		return tok, nil
	}
	if err := t.expect(">"); err != nil {
		return Token{}, err
	}
	t.stack = append(t.stack, name)
	t.phase = phContent
	return tok, nil
}

// scanAttrValue returns the raw bytes between the quotes. Entity
// references are validated (so malformed ones are rejected here, with
// the same decisions the DOM parser makes) but not decoded — decoding
// happens in the consumer, off the copy-free path.
func (t *Tokenizer) scanAttrValue() ([]byte, bool, error) {
	if t.pos >= len(t.src) || (t.src[t.pos] != '"' && t.src[t.pos] != '\'') {
		return nil, false, t.errf("expected quoted attribute value")
	}
	quote := t.src[t.pos]
	t.pos++
	start := t.pos
	hasEnt := false
	for {
		if t.pos >= len(t.src) {
			return nil, false, t.errf("unterminated attribute value")
		}
		c := t.src[t.pos]
		if c == quote {
			break
		}
		if c == '<' {
			return nil, false, t.errf("'<' in attribute value")
		}
		if c == '&' {
			_, next, msg := decodeEntityAt(t.src, t.pos)
			if msg == errUnterminatedEntity {
				return nil, false, t.errf("%s", msg)
			}
			t.pos = next
			if msg != "" {
				return nil, false, t.errf("%s", msg)
			}
			hasEnt = true
			continue
		}
		t.pos++
	}
	raw := t.src[start:t.pos]
	t.pos++ // closing quote
	return raw, hasEnt, nil
}

// scanText returns the character-data run up to the next '<' (or EOF —
// the following Next call reports the unterminated element). Entities
// are validated in place; Raw keeps them undecoded.
func (t *Tokenizer) scanText() (Token, error) {
	start := t.pos
	hasEnt := false
	for t.pos < len(t.src) && t.src[t.pos] != '<' {
		if t.src[t.pos] == '&' {
			_, next, msg := decodeEntityAt(t.src, t.pos)
			if msg == errUnterminatedEntity {
				return Token{}, t.errf("%s", msg)
			}
			t.pos = next
			if msg != "" {
				return Token{}, t.errf("%s", msg)
			}
			hasEnt = true
			continue
		}
		t.pos++
	}
	return Token{Kind: TokText, Raw: t.src[start:t.pos], HasEntity: hasEnt}, nil
}
