package xmldom

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/perf/trace"
)

func mustParse(t *testing.T, src string) *Node {
	t.Helper()
	doc, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return doc
}

func TestParseMinimal(t *testing.T) {
	doc := mustParse(t, `<a/>`)
	el := doc.DocumentElement()
	if el == nil || el.Name != "a" {
		t.Fatalf("document element = %+v, want <a>", el)
	}
	if len(el.Children) != 0 {
		t.Fatalf("children = %d, want 0", len(el.Children))
	}
}

func TestParseNested(t *testing.T) {
	doc := mustParse(t, `<a><b><c>x</c></b><b>y</b></a>`)
	a := doc.DocumentElement()
	bs := a.ChildElements("b")
	if len(bs) != 2 {
		t.Fatalf("got %d <b> children, want 2", len(bs))
	}
	c := bs[0].FirstChildElement("c")
	if c == nil || c.TextContent() != "x" {
		t.Fatalf("c = %v", c)
	}
	if got := a.TextContent(); got != "xy" {
		t.Fatalf("TextContent = %q, want %q", got, "xy")
	}
}

func TestParseAttributes(t *testing.T) {
	doc := mustParse(t, `<a x="1" y='two' ns:z="a&amp;b"/>`)
	el := doc.DocumentElement()
	cases := map[string]string{"x": "1", "y": "two", "ns:z": "a&b"}
	for k, want := range cases {
		got, ok := el.Attr(k)
		if !ok || got != want {
			t.Errorf("attr %q = %q,%v; want %q", k, got, ok, want)
		}
	}
	if _, ok := el.Attr("missing"); ok {
		t.Error("missing attribute reported present")
	}
}

func TestParseEntities(t *testing.T) {
	doc := mustParse(t, `<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos; &#65;&#x42;</a>`)
	want := `<tag> & "q" 'a' AB`
	if got := doc.DocumentElement().TextContent(); got != want {
		t.Fatalf("text = %q, want %q", got, want)
	}
}

func TestParseCDATAAndComments(t *testing.T) {
	doc := mustParse(t, `<a><!-- note --><![CDATA[<raw>&amp;]]>tail</a>`)
	el := doc.DocumentElement()
	if got := el.TextContent(); got != "<raw>&amp;tail" {
		t.Fatalf("text = %q", got)
	}
	var comments int
	el.Walk(func(n *Node) bool {
		if n.Kind == Comment {
			comments++
			if n.Data != " note " {
				t.Errorf("comment = %q", n.Data)
			}
		}
		return true
	})
	if comments != 1 {
		t.Fatalf("comments = %d, want 1", comments)
	}
}

func TestParseProlog(t *testing.T) {
	doc := mustParse(t, "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!-- hdr -->\n<root/>")
	if doc.DocumentElement().Name != "root" {
		t.Fatal("missing root after prolog")
	}
}

func TestParseDoctypeSkipped(t *testing.T) {
	doc := mustParse(t, `<!DOCTYPE html><root/>`)
	if doc.DocumentElement().Name != "root" {
		t.Fatal("missing root after DOCTYPE")
	}
}

func TestParseNamespacePrefix(t *testing.T) {
	doc := mustParse(t, `<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/"><soap:Body/></soap:Envelope>`)
	env := doc.DocumentElement()
	if env.Prefix != "soap" || env.Local != "Envelope" {
		t.Fatalf("prefix/local = %q/%q", env.Prefix, env.Local)
	}
	if env.FirstChildElement("Body") == nil {
		t.Fatal("Body not found by local name")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`<`,
		`<a>`,
		`<a></b>`,
		`<a x=1/>`,
		`<a x="1" x="2"/>`,
		`<a>&unknown;</a>`,
		`<a>&#zz;</a>`,
		`<a><b></a></b>`,
		`<a/><b/>`,
		`text only`,
		`<a b="<"/>`,
		`<!-- unterminated`,
		`<a><![CDATA[x</a>`,
	}
	for _, src := range bad {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
	var pe *ParseError
	_, err := Parse([]byte(`<a></b>`))
	if err == nil {
		t.Fatal("want error")
	}
	var ok bool
	pe, ok = err.(*ParseError)
	if !ok || pe.Offset <= 0 {
		t.Fatalf("error %v is not a positioned ParseError", err)
	}
}

func TestParseSelfClosingMixed(t *testing.T) {
	doc := mustParse(t, `<a><b/>text<c/></a>`)
	el := doc.DocumentElement()
	if len(el.Children) != 3 {
		t.Fatalf("children = %d, want 3", len(el.Children))
	}
	if el.Children[1].Kind != Text || el.Children[1].Data != "text" {
		t.Fatalf("middle child = %+v", el.Children[1])
	}
}

func TestRoundTrip(t *testing.T) {
	srcs := []string{
		`<a/>`,
		`<a x="1"><b>t</b><c/></a>`,
		`<a>&lt;&amp;&gt;</a>`,
		`<soap:Envelope><soap:Body><order><quantity>1</quantity></order></soap:Body></soap:Envelope>`,
	}
	for _, src := range srcs {
		doc := mustParse(t, src)
		out := Serialize(doc)
		doc2 := mustParse(t, out)
		out2 := Serialize(doc2)
		if out != out2 {
			t.Errorf("serialize not stable: %q -> %q -> %q", src, out, out2)
		}
	}
}

// TestRoundTripProperty: any tree serialized and reparsed yields the same
// serialization (parse . serialize is idempotent on generated trees).
func TestRoundTripProperty(t *testing.T) {
	gen := func(seed int64) bool {
		src := genDoc(seed)
		doc, err := Parse([]byte(src))
		if err != nil {
			t.Logf("generated doc failed to parse: %q: %v", src, err)
			return false
		}
		out := Serialize(doc)
		doc2, err := Parse([]byte(out))
		if err != nil {
			t.Logf("reparse failed: %q: %v", out, err)
			return false
		}
		return Serialize(doc2) == out
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// genDoc builds a small pseudo-random but well-formed document.
func genDoc(seed int64) string {
	rng := uint64(seed)*2654435761 + 1
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	names := []string{"a", "bee", "c1", "data", "ns:el"}
	texts := []string{"", "hello", "x & y", "1", "  spaced  ", "<escaped>"}
	var build func(depth int) string
	build = func(depth int) string {
		name := names[next(len(names))]
		var b strings.Builder
		b.WriteByte('<')
		b.WriteString(name)
		if next(3) == 0 {
			b.WriteString(` attr="`)
			b.WriteString(EscapeAttr(texts[next(len(texts))]))
			b.WriteByte('"')
		}
		b.WriteByte('>')
		kids := next(3)
		if depth >= 3 {
			kids = 0
		}
		for i := 0; i < kids; i++ {
			if next(2) == 0 {
				b.WriteString(build(depth + 1))
			} else {
				b.WriteString(EscapeText(texts[next(len(texts))]))
			}
		}
		b.WriteString("</")
		b.WriteString(name)
		b.WriteByte('>')
		return b.String()
	}
	return build(0)
}

func TestInstrumentedParseEmitsOps(t *testing.T) {
	src := []byte(`<a x="1"><b>some text content here</b><c/></a>`)
	var c trace.Counting
	arena := trace.NewArena(1<<30, 1<<20)
	doc, err := ParseInstrumented(src, &c, 0x1000, arena)
	if err != nil {
		t.Fatal(err)
	}
	if doc.DocumentElement() == nil {
		t.Fatal("no document element")
	}
	if c.Instr == 0 || c.Loads == 0 || c.Stores == 0 || c.Branches == 0 {
		t.Fatalf("instrumentation missing events: %+v", c)
	}
	// The op stream should scale with input size.
	var c2 trace.Counting
	big := []byte(`<a>` + strings.Repeat(`<b>payload text</b>`, 50) + `</a>`)
	if _, err := ParseInstrumented(big, &c2, 0x1000, arena); err != nil {
		t.Fatal(err)
	}
	if c2.Instr < 2*c.Instr {
		t.Fatalf("instruction stream does not scale: small=%d big=%d", c.Instr, c2.Instr)
	}
}

func TestInstrumentedMatchesUninstrumented(t *testing.T) {
	src := []byte(`<root a="1"><x>1</x><y>&amp;2</y><!--c--><z/></root>`)
	plain, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := ParseInstrumented(src, &trace.Counting{}, 0, trace.NewArena(1<<30, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if Serialize(plain) != Serialize(inst) {
		t.Fatalf("instrumented parse differs:\n%s\n%s", Serialize(plain), Serialize(inst))
	}
}

func TestCountNodes(t *testing.T) {
	doc := mustParse(t, `<a><b/><c>t</c></a>`)
	// document + a + b + c + text = 5
	if got := doc.CountNodes(); got != 5 {
		t.Fatalf("CountNodes = %d, want 5", got)
	}
}

func TestWalkStops(t *testing.T) {
	doc := mustParse(t, `<a><b/><c/><d/></a>`)
	seen := 0
	doc.Walk(func(n *Node) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Fatalf("walk visited %d, want 3", seen)
	}
}

func TestNamespaceResolution(t *testing.T) {
	doc := mustParse(t, `<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/" xmlns="urn:default">
	  <soap:Body>
	    <order xmlns="urn:orders"><qty>1</qty></order>
	    <plain/>
	  </soap:Body>
	</soap:Envelope>`)
	env := doc.DocumentElement()
	if env.NS != "http://schemas.xmlsoap.org/soap/envelope/" {
		t.Fatalf("envelope NS = %q", env.NS)
	}
	body := env.FirstChildElement("Body")
	if body.NS != env.NS {
		t.Fatalf("body NS = %q", body.NS)
	}
	order := body.FirstChildElement("order")
	if order.NS != "urn:orders" {
		t.Fatalf("order NS = %q (default override)", order.NS)
	}
	qty := order.FirstChildElement("qty")
	if qty.NS != "urn:orders" {
		t.Fatalf("qty NS = %q (inherits overridden default)", qty.NS)
	}
	plain := body.FirstChildElement("plain")
	if plain.NS != "urn:default" {
		t.Fatalf("plain NS = %q (outer default in scope)", plain.NS)
	}
	if got := plain.LookupNamespace("soap"); got != env.NS {
		t.Fatalf("prefix lookup from leaf = %q", got)
	}
	if got := plain.LookupNamespace("nosuch"); got != "" {
		t.Fatalf("unbound prefix resolved to %q", got)
	}
}

func TestNamespaceUnboundPrefix(t *testing.T) {
	doc := mustParse(t, `<a:root/>`)
	if doc.DocumentElement().NS != "" {
		t.Fatal("unbound prefix got a namespace")
	}
}
