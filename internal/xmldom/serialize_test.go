package xmldom

import (
	"strings"
	"testing"
)

// treeEqual compares two trees structurally, ignoring representation
// details that serialization legitimately normalizes (CDATA becomes
// escaped text, entities are resolved).
func treeEqual(t *testing.T, path string, a, b *Node) {
	t.Helper()
	if a.Kind != b.Kind {
		t.Fatalf("%s: kind %v != %v", path, a.Kind, b.Kind)
	}
	if a.Name != b.Name || a.Prefix != b.Prefix || a.Local != b.Local {
		t.Fatalf("%s: name %q/%q/%q != %q/%q/%q", path, a.Name, a.Prefix, a.Local, b.Name, b.Prefix, b.Local)
	}
	if a.NS != b.NS {
		t.Fatalf("%s: ns %q != %q", path, a.NS, b.NS)
	}
	if a.Data != b.Data {
		t.Fatalf("%s: data %q != %q", path, a.Data, b.Data)
	}
	if len(a.Attrs) != len(b.Attrs) {
		t.Fatalf("%s: attr count %d != %d", path, len(a.Attrs), len(b.Attrs))
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			t.Fatalf("%s: attr %d: %+v != %+v", path, i, a.Attrs[i], b.Attrs[i])
		}
	}
	if len(a.Children) != len(b.Children) {
		t.Fatalf("%s: child count %d != %d", path, len(a.Children), len(b.Children))
	}
	for i := range a.Children {
		treeEqual(t, path+"/"+a.Children[i].Name, a.Children[i], b.Children[i])
	}
}

// roundTrip parses src, serializes, reparses, and demands the two trees
// and the two serializations agree (serialization is a fixed point after
// one normalization pass).
func roundTrip(t *testing.T, src string) *Node {
	t.Helper()
	doc1, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	out1 := Serialize(doc1)
	doc2, err := Parse([]byte(out1))
	if err != nil {
		t.Fatalf("reparse: %v\nserialized: %s", err, out1)
	}
	treeEqual(t, "", doc1, doc2)
	if out2 := Serialize(doc2); out2 != out1 {
		t.Fatalf("serialization not a fixed point:\n1: %s\n2: %s", out1, out2)
	}
	return doc1
}

func TestRoundTripAttributes(t *testing.T) {
	doc := roundTrip(t, `<order id="po-1" state="open" note="a &lt; b &amp; c &quot;q&quot;"><item sku="S-1"/></order>`)
	el := doc.DocumentElement()
	if v, _ := el.Attr("note"); v != `a < b & c "q"` {
		t.Fatalf("attr entity resolution: %q", v)
	}
}

func TestRoundTripCDATA(t *testing.T) {
	doc := roundTrip(t, `<doc><![CDATA[literal <tags> & "quotes" stay]]></doc>`)
	got := doc.DocumentElement().TextContent()
	if got != `literal <tags> & "quotes" stay` {
		t.Fatalf("CDATA content: %q", got)
	}
	// After one round trip the CDATA is escaped text; content survives.
	out := Serialize(doc)
	if strings.Contains(out, "CDATA") {
		t.Fatalf("serializer should emit escaped text, got %s", out)
	}
}

func TestRoundTripEntities(t *testing.T) {
	doc := roundTrip(t, `<m>&lt;q&gt; &amp; &apos;x&apos; &quot;y&quot; &#65;&#x42;</m>`)
	got := doc.DocumentElement().TextContent()
	if got != `<q> & 'x' "y" AB` {
		t.Fatalf("entity resolution: %q", got)
	}
}

func TestRoundTripNamespacePrefixes(t *testing.T) {
	src := `<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/" xmlns="urn:default">` +
		`<soap:Body><order xmlns:x="urn:x"><x:ref/><plain/></order></soap:Body></soap:Envelope>`
	doc := roundTrip(t, src)
	env := doc.DocumentElement()
	if env.Prefix != "soap" || env.Local != "Envelope" || env.NS != "http://schemas.xmlsoap.org/soap/envelope/" {
		t.Fatalf("envelope: %+v", env)
	}
	order := env.FirstChildElement("Body").FirstChildElement("order")
	if order.NS != "urn:default" {
		t.Fatalf("default ns not inherited: %q", order.NS)
	}
	ref := order.FirstChildElement("ref")
	if ref.Prefix != "x" || ref.NS != "urn:x" {
		t.Fatalf("prefixed child: %+v", ref)
	}
}

func TestRoundTripMixedContent(t *testing.T) {
	roundTrip(t, `<?xml version="1.0"?><!-- head --><doc a="1">text <b>bold</b> tail<?pi data?><!-- in --></doc>`)
}

func TestRoundTripWorkloadMessage(t *testing.T) {
	// The AONBench order document itself — the bytes every live gateway
	// message carries — must round-trip exactly.
	src := `<?xml version="1.0" encoding="UTF-8"?>
<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">
<soap:Header><transactionID>txn-00000007</transactionID></soap:Header>
<soap:Body><purchaseOrder id="po-7"><customer>ACME &amp; Co</customer>
<item><sku>SKU-1</sku><quantity>1</quantity><price>9.99</price></item>
<filler>transit warehouse</filler></purchaseOrder></soap:Body></soap:Envelope>`
	doc := roundTrip(t, src)
	q := doc.DocumentElement().FirstChildElement("Body").
		FirstChildElement("purchaseOrder").FirstChildElement("item").
		FirstChildElement("quantity")
	if q.TextContent() != "1" {
		t.Fatalf("quantity lost: %q", q.TextContent())
	}
}

func TestEscapeHelpers(t *testing.T) {
	if got := EscapeText(`a<b>&c`); got != "a&lt;b&gt;&amp;c" {
		t.Fatalf("EscapeText: %q", got)
	}
	if got := EscapeAttr(`he said "hi" & left<`); got != `he said &quot;hi&quot; &amp; left&lt;` {
		t.Fatalf("EscapeAttr: %q", got)
	}
}
